#!/usr/bin/env bash
# Benchmark the parallel subsystem and record the results as JSON.
#
# Runs BenchmarkGroupEngineParallel and BenchmarkSelectParallel (each at
# workers=1 and workers=GOMAXPROCS), plus BenchmarkWeightedSumWide (the
# reach≈1e12 integer convolution on the scale-aware grid; no workers
# dimension), with BENCHTIME iterations per rep (default 5x) and COUNT
# repetitions (default 3), and writes BENCH_parallel.json at the repo
# root: per benchmark the min and median ns/op across reps, plus a
# median-based speedup summary per benchmark family (families without a
# workers dimension are recorded but excluded from speedups). A single
# 1x pass is noise; min/median over repetitions is what makes cross-run
# comparisons meaningful.
#
# The script exits non-zero when any speedup measured at
# workers=GOMAXPROCS falls below MIN_SPEEDUP (default 0.9), so a
# parallelism regression fails the CI bench job instead of shipping as
# a quietly slower pool. On a single-core runner (GOMAXPROCS=1) the
# many-worker run is oversubscribed by design and the gate is skipped.
#
#   ./scripts/bench.sh
#   BENCHTIME=20x COUNT=5 ./scripts/bench.sh
#   MIN_SPEEDUP=0 ./scripts/bench.sh     # record numbers, never fail
set -euo pipefail
cd "$(dirname "$0")/.."

benchtime="${BENCHTIME:-5x}"
count="${COUNT:-3}"
min_speedup="${MIN_SPEEDUP:-0.9}"
out="${BENCH_OUT:-BENCH_parallel.json}"
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench 'BenchmarkGroupEngineParallel|BenchmarkSelectParallel|BenchmarkWeightedSumWide' \
  -benchtime "$benchtime" -count "$count" . ./internal/dist | tee "$raw"

awk -v benchtime="$benchtime" -v count="$count" -v min_speedup="$min_speedup" '
  BEGIN { gomaxprocs = 1 }              # go test omits the -N suffix when GOMAXPROCS=1
  /^Benchmark/ && /ns\/op/ {
    name = $1
    ns = $3 + 0
    if (match(name, /-[0-9]+$/))        # trailing -N is GOMAXPROCS
      gomaxprocs = substr(name, RSTART + 1)
    sub(/-[0-9]+$/, "", name)
    n = split(name, parts, "/")
    family = parts[1]
    workers = parts[n]
    sub(/^workers=/, "", workers)
    if (workers !~ /^[0-9]+$/) workers = "null"   # no workers dimension
    reps[name]++
    samples[name "|" reps[name]] = ns
    fam_of[name] = family
    workers_of[name] = workers
    if (!(name in seen)) { order[++nkeys] = name; seen[name] = 1 }
  }
  # med/minv compute the median/min ns/op across the reps of one line.
  function med(key,   m, i, j, v, arr) {
    m = reps[key]
    for (i = 1; i <= m; i++) arr[i] = samples[key "|" i]
    for (i = 2; i <= m; i++) {
      v = arr[i]
      for (j = i - 1; j >= 1 && arr[j] > v; j--) arr[j + 1] = arr[j]
      arr[j + 1] = v
    }
    if (m % 2) return arr[(m + 1) / 2]
    return (arr[m / 2] + arr[m / 2 + 1]) / 2
  }
  function minv(key,   m, i, mv) {
    m = reps[key]
    mv = samples[key "|" 1]
    for (i = 2; i <= m; i++) if (samples[key "|" i] < mv) mv = samples[key "|" i]
    return mv
  }
  END {
    printf "{\n  \"benchtime\": \"%s\",\n  \"count\": %d,\n  \"gomaxprocs\": %s,\n  \"results\": [", benchtime, count, gomaxprocs
    for (i = 1; i <= nkeys; i++) {
      key = order[i]
      printf "%s\n    {\"name\":\"%s\",\"workers\":%s,\"reps\":%d,\"ns_per_op_min\":%.0f,\"ns_per_op_median\":%.0f}", \
        (i > 1 ? "," : ""), key, workers_of[key], reps[key], minv(key), med(key)
    }
    for (i = 1; i <= nkeys; i++) {
      key = order[i]
      if (workers_of[key] == "null") continue     # not a workers sweep
      f = fam_of[key]
      if (workers_of[key] == 1) base[f] = med(key)
      else { many[f] = med(key); manyw[f] = workers_of[key] }
      if (!(f in famseen)) { forder[++nf] = f; famseen[f] = 1 }
    }
    printf "\n  ],\n  \"speedup_basis\": \"median\",\n  \"speedup\": {"
    first = 1
    for (i = 1; i <= nf; i++) {
      f = forder[i]
      if (!(f in base) || !(f in many) || many[f] <= 0) continue
      sp = base[f] / many[f]
      printf "%s\n    \"%s\": %.3f", (first ? "" : ","), f, sp
      first = 0
      if (min_speedup + 0 > 0 && manyw[f] == gomaxprocs && sp < min_speedup + 0)
        failmsg[++nfail] = sprintf("%s: %.3fx at workers=%s (floor %s)", f, sp, manyw[f], min_speedup)
    }
    printf "\n  }\n}\n"
    for (i = 1; i <= nfail; i++) print "SPEEDUP-FAIL " failmsg[i] > "/dev/stderr"
    if (nfail > 0) exit 1
  }
' "$raw" > "$out" || {
  echo "wrote $out (parallel speedup below floor $min_speedup):" >&2
  cat "$out" >&2
  exit 1
}

echo "wrote $out:"
cat "$out"
