#!/usr/bin/env bash
# Benchmark the parallel subsystem and record the results as JSON.
#
# Runs BenchmarkGroupEngineParallel and BenchmarkSelectParallel across
# the full worker curve (workers=1, every power of two up to GOMAXPROCS,
# and GOMAXPROCS itself — see benchWorkerCounts in bench_test.go), plus
# BenchmarkWeightedSumWide (the reach≈1e12 integer convolution on the
# scale-aware grid; no workers dimension), with BENCHTIME iterations per
# rep (default 5x) and COUNT repetitions (default 3), and writes
# BENCH_parallel.json at the repo root: per benchmark the min and median
# ns/op across reps, plus a median-based speedup per (family, workers)
# point relative to that family's workers=1 baseline — the whole scaling
# curve, not just the endpoints. Families without a workers dimension
# are recorded but excluded from speedups. A single 1x pass is noise;
# min/median over repetitions is what makes cross-run comparisons
# meaningful.
#
# The benchmarks run at the machine's full GOMAXPROCS (the script
# refuses an inherited GOMAXPROCS restriction unless BENCH_ALLOW_NARROW
# is set) so the recorded curve reflects real parallel hardware.
#
# The script exits non-zero when the speedup measured at
# workers=GOMAXPROCS falls below MIN_SPEEDUP (default 0.9), so a
# parallelism regression fails the CI bench job instead of shipping as
# a quietly slower pool. Intermediate curve points are recorded but not
# gated: they are diagnostics for where scaling flattens. On a
# single-core runner (GOMAXPROCS=1) the many-worker run is
# oversubscribed by design and the gate is skipped.
#
#   ./scripts/bench.sh
#   BENCHTIME=20x COUNT=5 ./scripts/bench.sh
#   MIN_SPEEDUP=0 ./scripts/bench.sh     # record numbers, never fail
set -euo pipefail
cd "$(dirname "$0")/.."

benchtime="${BENCHTIME:-5x}"
count="${COUNT:-3}"
min_speedup="${MIN_SPEEDUP:-0.9}"
out="${BENCH_OUT:-BENCH_parallel.json}"
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

# Benchmark at the machine's full width: a GOMAXPROCS cap inherited from
# the environment would silently shrink the curve and the gate point.
ncpu=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)
if [ -n "${GOMAXPROCS:-}" ] && [ "${GOMAXPROCS}" != "$ncpu" ] && [ -z "${BENCH_ALLOW_NARROW:-}" ]; then
  echo "bench.sh: GOMAXPROCS=$GOMAXPROCS restricts the curve below the $ncpu available CPUs;" >&2
  echo "bench.sh: unset it (or set BENCH_ALLOW_NARROW=1 to record a narrowed curve anyway)" >&2
  exit 1
fi
export GOMAXPROCS="${GOMAXPROCS:-$ncpu}"

go test -run '^$' -bench 'BenchmarkGroupEngineParallel|BenchmarkSelectParallel|BenchmarkWeightedSumWide' \
  -benchtime "$benchtime" -count "$count" . ./internal/dist | tee "$raw"

awk -v benchtime="$benchtime" -v count="$count" -v min_speedup="$min_speedup" '
  BEGIN { gomaxprocs = 1 }              # go test omits the -N suffix when GOMAXPROCS=1
  /^Benchmark/ && /ns\/op/ {
    name = $1
    ns = $3 + 0
    if (match(name, /-[0-9]+$/))        # trailing -N is GOMAXPROCS
      gomaxprocs = substr(name, RSTART + 1)
    sub(/-[0-9]+$/, "", name)
    n = split(name, parts, "/")
    family = parts[1]
    workers = parts[n]
    sub(/^workers=/, "", workers)
    if (workers !~ /^[0-9]+$/) workers = "null"   # no workers dimension
    reps[name]++
    samples[name "|" reps[name]] = ns
    fam_of[name] = family
    workers_of[name] = workers
    if (!(name in seen)) { order[++nkeys] = name; seen[name] = 1 }
  }
  # med/minv compute the median/min ns/op across the reps of one line.
  function med(key,   m, i, j, v, arr) {
    m = reps[key]
    for (i = 1; i <= m; i++) arr[i] = samples[key "|" i]
    for (i = 2; i <= m; i++) {
      v = arr[i]
      for (j = i - 1; j >= 1 && arr[j] > v; j--) arr[j + 1] = arr[j]
      arr[j + 1] = v
    }
    if (m % 2) return arr[(m + 1) / 2]
    return (arr[m / 2] + arr[m / 2 + 1]) / 2
  }
  function minv(key,   m, i, mv) {
    m = reps[key]
    mv = samples[key "|" 1]
    for (i = 2; i <= m; i++) if (samples[key "|" i] < mv) mv = samples[key "|" i]
    return mv
  }
  END {
    printf "{\n  \"benchtime\": \"%s\",\n  \"count\": %d,\n  \"gomaxprocs\": %s,\n  \"results\": [", benchtime, count, gomaxprocs
    for (i = 1; i <= nkeys; i++) {
      key = order[i]
      printf "%s\n    {\"name\":\"%s\",\"workers\":%s,\"reps\":%d,\"ns_per_op_min\":%.0f,\"ns_per_op_median\":%.0f}", \
        (i > 1 ? "," : ""), key, workers_of[key], reps[key], minv(key), med(key)
    }
    for (i = 1; i <= nkeys; i++) {
      key = order[i]
      if (workers_of[key] == "null") continue     # not a workers sweep
      if (workers_of[key] == 1) base[fam_of[key]] = med(key)
    }
    # One speedup per (family, workers) curve point, relative to that
    # family`s workers=1 baseline; only the workers=GOMAXPROCS point is
    # gated — the rest of the curve is scaling diagnostics.
    printf "\n  ],\n  \"speedup_basis\": \"median\",\n  \"speedup\": {"
    first = 1
    for (i = 1; i <= nkeys; i++) {
      key = order[i]
      w = workers_of[key]
      if (w == "null" || w == 1) continue
      f = fam_of[key]
      m = med(key)
      if (!(f in base) || m <= 0) continue
      sp = base[f] / m
      printf "%s\n    \"%s/workers=%s\": %.3f", (first ? "" : ","), f, w, sp
      first = 0
      if (min_speedup + 0 > 0 && w == gomaxprocs && sp < min_speedup + 0)
        failmsg[++nfail] = sprintf("%s: %.3fx at workers=%s (floor %s)", f, sp, w, min_speedup)
    }
    printf "\n  }\n}\n"
    for (i = 1; i <= nfail; i++) print "SPEEDUP-FAIL " failmsg[i] > "/dev/stderr"
    if (nfail > 0) exit 1
  }
' "$raw" > "$out" || {
  echo "wrote $out (parallel speedup below floor $min_speedup):" >&2
  cat "$out" >&2
  exit 1
}

echo "wrote $out:"
cat "$out"
