#!/usr/bin/env bash
# Benchmark the parallel subsystem and record the results as JSON.
#
# Runs BenchmarkGroupEngineParallel and BenchmarkSelectParallel across
# the full worker curve (workers=1, every power of two up to GOMAXPROCS,
# and GOMAXPROCS itself — see benchWorkerCounts in bench_test.go), plus
# BenchmarkWeightedSumWide (the reach≈1e12 integer convolution on the
# scale-aware grid; no workers dimension) and its dense-vs-map pair —
# BenchmarkWeightedSumDense (the dense lattice kernel on the wide
# workload shape) against BenchmarkWeightedSumMap (the same shape forced
# down the hashed-map path) — with BENCHTIME iterations per rep (default
# 5x) and COUNT repetitions (default 3), and writes BENCH_parallel.json
# at the repo root: per benchmark the min and median ns/op across reps,
# plus a median-based speedup per (family, workers) point relative to
# that family's workers=1 baseline — the whole scaling curve, not just
# the endpoints. Families without a workers dimension are recorded but
# excluded from worker speedups; the dense-vs-map ratio lands in the
# speedup object as "BenchmarkWeightedSumDense/vs=map" and is gated by
# MIN_DENSE_SPEEDUP (default 5) — the dense convolution engine exists to
# beat hashing by well over that on wide integer supports, and a drop
# below the floor means the kernel quietly stopped engaging or paying.
# A single 1x pass is noise; min/median over repetitions is what makes
# cross-run comparisons meaningful.
#
# The benchmarks run at the machine's full GOMAXPROCS (the script
# refuses an inherited GOMAXPROCS restriction unless BENCH_ALLOW_NARROW
# is set) so the recorded curve reflects real parallel hardware.
#
# The script exits non-zero when the speedup measured at
# workers=GOMAXPROCS falls below MIN_SPEEDUP (default 0.9), so a
# parallelism regression fails the CI bench job instead of shipping as
# a quietly slower pool. Intermediate curve points are recorded but not
# gated: they are diagnostics for where scaling flattens. On a
# single-core runner (GOMAXPROCS=1) the many-worker run is
# oversubscribed by design and the gate is skipped.
#
#   ./scripts/bench.sh
#   BENCHTIME=20x COUNT=5 ./scripts/bench.sh
#   MIN_SPEEDUP=0 ./scripts/bench.sh     # record numbers, never fail
#
# A second phase benchmarks the serving path end to end: it starts
# cleanseld, fires SERVE_N select requests (default 200, mixing cache
# misses and hits), and derives p50/p99 latency from the
# cleanseld_request_seconds histogram scraped off /metrics — the same
# numbers an operator's dashboards would show — into BENCH_serve.json.
# SERVE_N=0 skips the phase.
#
# A third phase benchmarks bulk triage amortization: it runs
# BenchmarkTriageThroughput (one claim stream posted as per-claim
# /v1/assess requests vs one /v1/triage batch) at batch sizes 1, 10 and
# 100, and writes BENCH_triage.json with claims/sec for both paths and
# the amortized-over-naive speedup per batch size. The batch=100
# speedup is gated by MIN_TRIAGE_SPEEDUP (default 5): the whole point
# of the bulk endpoint is that cross-claim amortization wins by an
# order of magnitude at firehose batch sizes, and a regression below
# 5x means the shared EV cache or signature dedup quietly stopped
# paying. TRIAGE=0 skips the phase.
set -euo pipefail
cd "$(dirname "$0")/.."

benchtime="${BENCHTIME:-5x}"
count="${COUNT:-3}"
min_speedup="${MIN_SPEEDUP:-0.9}"
min_dense_speedup="${MIN_DENSE_SPEEDUP:-5}"
out="${BENCH_OUT:-BENCH_parallel.json}"
raw=$(mktemp)
servedir=""
spid=""
cleanup() {
  rm -f "$raw"
  [ -n "$spid" ] && kill "$spid" 2>/dev/null || true
  [ -n "$servedir" ] && rm -rf "$servedir"
}
trap cleanup EXIT

# Benchmark at the machine's full width: a GOMAXPROCS cap inherited from
# the environment would silently shrink the curve and the gate point.
ncpu=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)
if [ -n "${GOMAXPROCS:-}" ] && [ "${GOMAXPROCS}" != "$ncpu" ] && [ -z "${BENCH_ALLOW_NARROW:-}" ]; then
  echo "bench.sh: GOMAXPROCS=$GOMAXPROCS restricts the curve below the $ncpu available CPUs;" >&2
  echo "bench.sh: unset it (or set BENCH_ALLOW_NARROW=1 to record a narrowed curve anyway)" >&2
  exit 1
fi
export GOMAXPROCS="${GOMAXPROCS:-$ncpu}"

go test -run '^$' -bench 'BenchmarkGroupEngineParallel|BenchmarkSelectParallel|BenchmarkWeightedSumWide|BenchmarkWeightedSumDense|BenchmarkWeightedSumMap' \
  -benchtime "$benchtime" -count "$count" . ./internal/dist | tee "$raw"

awk -v benchtime="$benchtime" -v count="$count" -v min_speedup="$min_speedup" -v min_dense="$min_dense_speedup" '
  BEGIN { gomaxprocs = 1 }              # go test omits the -N suffix when GOMAXPROCS=1
  /^Benchmark/ && /ns\/op/ {
    name = $1
    ns = $3 + 0
    if (match(name, /-[0-9]+$/))        # trailing -N is GOMAXPROCS
      gomaxprocs = substr(name, RSTART + 1)
    sub(/-[0-9]+$/, "", name)
    n = split(name, parts, "/")
    family = parts[1]
    workers = parts[n]
    sub(/^workers=/, "", workers)
    if (workers !~ /^[0-9]+$/) workers = "null"   # no workers dimension
    reps[name]++
    samples[name "|" reps[name]] = ns
    fam_of[name] = family
    workers_of[name] = workers
    if (!(name in seen)) { order[++nkeys] = name; seen[name] = 1 }
  }
  # med/minv compute the median/min ns/op across the reps of one line.
  function med(key,   m, i, j, v, arr) {
    m = reps[key]
    for (i = 1; i <= m; i++) arr[i] = samples[key "|" i]
    for (i = 2; i <= m; i++) {
      v = arr[i]
      for (j = i - 1; j >= 1 && arr[j] > v; j--) arr[j + 1] = arr[j]
      arr[j + 1] = v
    }
    if (m % 2) return arr[(m + 1) / 2]
    return (arr[m / 2] + arr[m / 2 + 1]) / 2
  }
  function minv(key,   m, i, mv) {
    m = reps[key]
    mv = samples[key "|" 1]
    for (i = 2; i <= m; i++) if (samples[key "|" i] < mv) mv = samples[key "|" i]
    return mv
  }
  END {
    printf "{\n  \"benchtime\": \"%s\",\n  \"count\": %d,\n  \"gomaxprocs\": %s,\n  \"results\": [", benchtime, count, gomaxprocs
    for (i = 1; i <= nkeys; i++) {
      key = order[i]
      printf "%s\n    {\"name\":\"%s\",\"workers\":%s,\"reps\":%d,\"ns_per_op_min\":%.0f,\"ns_per_op_median\":%.0f}", \
        (i > 1 ? "," : ""), key, workers_of[key], reps[key], minv(key), med(key)
    }
    for (i = 1; i <= nkeys; i++) {
      key = order[i]
      if (workers_of[key] == "null") continue     # not a workers sweep
      if (workers_of[key] == 1) base[fam_of[key]] = med(key)
    }
    # One speedup per (family, workers) curve point, relative to that
    # family`s workers=1 baseline; only the workers=GOMAXPROCS point is
    # gated — the rest of the curve is scaling diagnostics.
    printf "\n  ],\n  \"speedup_basis\": \"median\",\n  \"speedup\": {"
    first = 1
    for (i = 1; i <= nkeys; i++) {
      key = order[i]
      w = workers_of[key]
      if (w == "null" || w == 1) continue
      f = fam_of[key]
      m = med(key)
      if (!(f in base) || m <= 0) continue
      sp = base[f] / m
      printf "%s\n    \"%s/workers=%s\": %.3f", (first ? "" : ","), f, w, sp
      first = 0
      if (min_speedup + 0 > 0 && w == gomaxprocs && sp < min_speedup + 0)
        failmsg[++nfail] = sprintf("%s: %.3fx at workers=%s (floor %s)", f, sp, w, min_speedup)
    }
    # Dense-vs-map: the wide-convolution workload on the dense lattice
    # kernel against the same shape forced down the hashed-map path.
    # Unlike the worker curve this ratio is CPU-count independent, so it
    # is gated on every runner.
    if (reps["BenchmarkWeightedSumMap"] > 0 && reps["BenchmarkWeightedSumDense"] > 0) {
      dd = med("BenchmarkWeightedSumDense")
      if (dd > 0) {
        sp = med("BenchmarkWeightedSumMap") / dd
        printf "%s\n    \"BenchmarkWeightedSumDense/vs=map\": %.3f", (first ? "" : ","), sp
        first = 0
        if (min_dense + 0 > 0 && sp < min_dense + 0)
          failmsg[++nfail] = sprintf("dense-vs-map: %.3fx on the wide convolution (floor %s)", sp, min_dense)
      }
    }
    printf "\n  }\n}\n"
    for (i = 1; i <= nfail; i++) print "SPEEDUP-FAIL " failmsg[i] > "/dev/stderr"
    if (nfail > 0) exit 1
  }
' "$raw" > "$out" || {
  echo "wrote $out (speedup below a floor: parallel $min_speedup, dense-vs-map $min_dense_speedup):" >&2
  cat "$out" >&2
  exit 1
}

echo "wrote $out:"
cat "$out"

########################################################################
# Serve-path latency, measured where operators measure it: fire
# requests at a live daemon and read the p50/p99 off the Prometheus
# latency histogram it exports. Four distinct budgets rotate through
# the request stream, so the mix covers uncached solves and cache hits
# in roughly the proportion a warm production cache would see.
serve_n="${SERVE_N:-200}"
serve_out="${BENCH_SERVE_OUT:-BENCH_serve.json}"
if [ "$serve_n" -gt 0 ]; then
  servedir=$(mktemp -d)
  go build -o "$servedir/cleanseld" ./cmd/cleanseld
  "$servedir/cleanseld" -addr 127.0.0.1:0 -addr-file "$servedir/addr" >"$servedir/log" 2>&1 &
  spid=$!
  for _ in $(seq 1 50); do
    [ -s "$servedir/addr" ] && break
    sleep 0.1
  done
  [ -s "$servedir/addr" ] || { echo "bench.sh: cleanseld never wrote its address" >&2; exit 1; }
  base="http://$(cat "$servedir/addr")"

  for b in 1 2 3 4; do
    jq --argjson b "$b" '.budget = $b' examples/quickstart/select.json > "$servedir/req$b.json"
  done
  for i in $(seq 1 "$serve_n"); do
    curl -sf -o /dev/null -X POST --data @"$servedir/req$(( i % 4 + 1 )).json" "$base/v1/select" \
      || { echo "bench.sh: select request $i failed" >&2; exit 1; }
  done
  curl -sf "$base/metrics" > "$servedir/metrics"
  kill "$spid"
  wait "$spid" 2>/dev/null || true
  spid=""

  awk -v n="$serve_n" '
    /^cleanseld_request_seconds_bucket\{endpoint="select",le="/ {
      le = $1
      sub(/.*le="/, "", le); sub(/".*/, "", le)
      nb++
      inf[nb] = (le == "+Inf")
      bound[nb] = inf[nb] ? 0 : le + 0
      cum[nb] = $2 + 0
    }
    $1 == "cleanseld_request_seconds_count{endpoint=\"select\"}" { total = $2 + 0 }
    $1 == "cleanseld_request_seconds_sum{endpoint=\"select\"}"   { sum = $2 + 0 }
    $1 == "cleanseld_cache_requests_total{status=\"hit\"}"       { hits = $2 + 0 }
    $1 == "cleanseld_cache_requests_total{status=\"miss\"}"      { misses = $2 + 0 }
    # quantile interpolates linearly inside the first bucket whose
    # cumulative count reaches q*total (the standard histogram_quantile
    # estimate); the open +Inf bucket reports its lower bound.
    function quantile(q,   target, i, lo, clo) {
      target = q * total
      clo = 0; lo = 0
      for (i = 1; i <= nb; i++) {
        if (cum[i] >= target) {
          if (inf[i] || cum[i] == clo) return lo
          return lo + (bound[i] - lo) * (target - clo) / (cum[i] - clo)
        }
        clo = cum[i]; lo = bound[i]
      }
      return lo
    }
    END {
      if (total != n) {
        printf "bench.sh: histogram counted %d selects, fired %d\n", total, n > "/dev/stderr"
        exit 1
      }
      printf "{\n  \"requests\": %d,\n  \"mean_seconds\": %.6f,\n  \"p50_seconds\": %.6f,\n  \"p99_seconds\": %.6f,\n  \"quantile_basis\": \"histogram-interpolated\",\n  \"cache\": {\"hit\": %d, \"miss\": %d}\n}\n", \
        total, sum / total, quantile(0.5), quantile(0.99), hits, misses
    }
  ' "$servedir/metrics" > "$serve_out"
  echo "wrote $serve_out:"
  cat "$serve_out"
fi

########################################################################
# Bulk-triage amortization: the naive path replays the claim stream as
# standalone /v1/assess requests (renamed per arrival, so the result
# cache cannot shortcut — the paraphrased-repost worst case); the
# amortized path posts the same stream as one /v1/triage batch. Both
# report claims/sec; the ratio at batch=100 is the amortization win the
# endpoint exists to deliver, and it is gated.
triage="${TRIAGE:-1}"
triage_out="${BENCH_TRIAGE_OUT:-BENCH_triage.json}"
min_triage_speedup="${MIN_TRIAGE_SPEEDUP:-5}"
if [ "$triage" != "0" ]; then
  go test -run '^$' -bench 'BenchmarkTriageThroughput' \
    -benchtime "$benchtime" -count "$count" ./internal/server | tee "$raw"

  awk -v benchtime="$benchtime" -v count="$count" -v floor="$min_triage_speedup" '
    /^BenchmarkTriageThroughput\// && /ns\/op/ {
      name = $1
      sub(/-[0-9]+$/, "", name)
      split(name, parts, "/")
      path = parts[2]                    # naive | amortized
      batch = parts[3]
      sub(/^batch=/, "", batch)
      key = path "|" batch
      reps[key]++
      samples[key "|" reps[key]] = $3 + 0
      if (path == "naive" && !(batch in seen)) { order[++nb] = batch; seen[batch] = 1 }
    }
    function med(key,   m, i, j, v, arr) {
      m = reps[key]
      for (i = 1; i <= m; i++) arr[i] = samples[key "|" i]
      for (i = 2; i <= m; i++) {
        v = arr[i]
        for (j = i - 1; j >= 1 && arr[j] > v; j--) arr[j + 1] = arr[j]
        arr[j + 1] = v
      }
      if (m % 2) return arr[(m + 1) / 2]
      return (arr[m / 2] + arr[m / 2 + 1]) / 2
    }
    END {
      if (nb == 0) { print "bench.sh: no triage benchmark output parsed" > "/dev/stderr"; exit 1 }
      printf "{\n  \"benchtime\": \"%s\",\n  \"count\": %d,\n  \"speedup_basis\": \"median\",\n  \"results\": [", benchtime, count
      for (i = 1; i <= nb; i++) {
        b = order[i]
        nn = med("naive|" b); na = med("amortized|" b)
        if (nn <= 0 || na <= 0) continue
        sp = nn / na
        printf "%s\n    {\"batch\":%s,\"naive_claims_per_sec\":%.1f,\"amortized_claims_per_sec\":%.1f,\"speedup\":%.3f}", \
          (i > 1 ? "," : ""), b, b * 1e9 / nn, b * 1e9 / na, sp
        maxbatch_sp[b + 0] = sp
        if (b + 0 > maxb) maxb = b + 0
      }
      printf "\n  ]\n}\n"
      if (floor + 0 > 0 && maxbatch_sp[maxb] < floor + 0) {
        printf "TRIAGE-SPEEDUP-FAIL batch=%d: %.3fx (floor %s)\n", maxb, maxbatch_sp[maxb], floor > "/dev/stderr"
        exit 1
      }
    }
  ' "$raw" > "$triage_out" || {
    echo "wrote $triage_out (triage amortization below floor $min_triage_speedup):" >&2
    cat "$triage_out" >&2
    exit 1
  }
  echo "wrote $triage_out:"
  cat "$triage_out"
fi
