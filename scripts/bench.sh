#!/usr/bin/env bash
# Benchmark the parallel subsystem and record the results as JSON.
#
# Runs BenchmarkGroupEngineParallel and BenchmarkSelectParallel (each at
# workers=1 and workers=GOMAXPROCS) and writes BENCH_parallel.json at
# the repo root: one object per benchmark line plus a speedup summary
# per benchmark family. Used by the CI bench job and runnable locally:
#
#   ./scripts/bench.sh            # quick: -benchtime 1x
#   BENCHTIME=5x ./scripts/bench.sh
set -euo pipefail
cd "$(dirname "$0")/.."

benchtime="${BENCHTIME:-1x}"
out="${BENCH_OUT:-BENCH_parallel.json}"
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench 'BenchmarkGroupEngineParallel|BenchmarkSelectParallel' \
  -benchtime "$benchtime" -count 1 . | tee "$raw"

awk -v benchtime="$benchtime" '
  /^Benchmark/ && /ns\/op/ {
    name = $1
    iters = $2
    ns = $3
    sub(/-[0-9]+$/, "", name)   # strip the -GOMAXPROCS suffix
    n = split(name, parts, "/")
    family = parts[1]
    workers = parts[n]
    sub(/^workers=/, "", workers)
    results[++count] = sprintf("{\"name\":\"%s\",\"workers\":%s,\"iterations\":%s,\"ns_per_op\":%s}", name, workers, iters, ns)
    ns_by[family "|" workers] = ns
    fams[family] = 1
  }
  END {
    printf "{\n  \"benchtime\": \"%s\",\n  \"results\": [", benchtime
    for (i = 1; i <= count; i++) printf "%s\n    %s", (i > 1 ? "," : ""), results[i]
    printf "\n  ],\n  \"speedup\": {"
    first = 1
    for (f in fams) {
      base = ""
      best = ""
      for (key in ns_by) {
        split(key, kp, "|")
        if (kp[1] != f) continue
        if (kp[2] == "1") base = ns_by[key]
        else best = ns_by[key]
      }
      if (base != "" && best != "" && best + 0 > 0) {
        printf "%s\n    \"%s\": %.3f", (first ? "" : ","), f, base / best
        first = 0
      }
    }
    printf "\n  }\n}\n"
  }
' "$raw" > "$out"

echo "wrote $out:"
cat "$out"
