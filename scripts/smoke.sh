#!/usr/bin/env bash
# Smoke test for cleanseld: build the daemon, start it on a random port,
# exercise the dataset + select + cache flow with the quickstart
# requests, and assert well-formed 200 responses. Used by CI and
# runnable locally: ./scripts/smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
pid=""
cleanup() {
  [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/cleanseld" ./cmd/cleanseld

"$workdir/cleanseld" -addr 127.0.0.1:0 -addr-file "$workdir/addr" &
pid=$!

for _ in $(seq 1 50); do
  [ -s "$workdir/addr" ] && break
  sleep 0.1
done
[ -s "$workdir/addr" ] || { echo "FAIL: daemon never wrote its address"; exit 1; }
base="http://$(cat "$workdir/addr")"

status=$(curl -s -o "$workdir/health" -w '%{http_code}' "$base/healthz")
[ "$status" = 200 ] || { echo "FAIL: /healthz -> $status"; exit 1; }
jq -e '.status == "ok"' "$workdir/health" >/dev/null || { echo "FAIL: bad health body"; cat "$workdir/health"; exit 1; }

# Inline select request must return a well-formed result.
status=$(curl -s -o "$workdir/select1" -w '%{http_code}' \
  -X POST --data @examples/quickstart/select.json "$base/v1/select")
[ "$status" = 200 ] || { echo "FAIL: /v1/select -> $status"; cat "$workdir/select1"; exit 1; }
jq -e '(.chosen | length) >= 1 and (.ids | length) == (.chosen | length)
       and .objective_before >= .objective_after and (.cost_spent | type) == "number"' \
  "$workdir/select1" >/dev/null || { echo "FAIL: malformed select result"; cat "$workdir/select1"; exit 1; }

# Upload the dataset once, select against the returned ID.
status=$(curl -s -o "$workdir/dataset" -w '%{http_code}' \
  -X POST --data @examples/quickstart/dataset.json "$base/v1/datasets")
[ "$status" = 200 ] || { echo "FAIL: /v1/datasets -> $status"; cat "$workdir/dataset"; exit 1; }
id=$(jq -re '.id' "$workdir/dataset")

jq --arg id "$id" 'del(.objects) + {dataset_id: $id}' examples/quickstart/select.json > "$workdir/byref.json"
status=$(curl -s -o "$workdir/select2" -w '%{http_code}' \
  -X POST --data @"$workdir/byref.json" "$base/v1/select")
[ "$status" = 200 ] || { echo "FAIL: select by dataset_id -> $status"; cat "$workdir/select2"; exit 1; }

# The repeated identical request must be served from the result cache.
curl -s -D "$workdir/headers" -o "$workdir/select3" \
  -X POST --data @"$workdir/byref.json" "$base/v1/select"
grep -qi '^x-cache: hit' "$workdir/headers" || { echo "FAIL: repeat select not a cache hit"; cat "$workdir/headers"; exit 1; }
diff "$workdir/select2" "$workdir/select3" || { echo "FAIL: cached answer differs"; exit 1; }

kill "$pid"
wait "$pid" 2>/dev/null || true
pid=""
echo "smoke OK: $base served healthz, datasets, select (miss+hit)"
