#!/usr/bin/env bash
# Smoke test for cleanseld: build the daemon, start it on a random port,
# exercise the dataset + select + cache flow with the quickstart
# requests, and assert well-formed 200 responses. A final phase drives
# /v1/triage over the quickstart claim stream and asserts the bulk path
# serves the exact bytes /v1/assess serves claim by claim, with renamed
# duplicate claims deduplicated. Used by CI and runnable locally:
# ./scripts/smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
pid=""
cleanup() {
  [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/cleanseld" ./cmd/cleanseld

"$workdir/cleanseld" -addr 127.0.0.1:0 -addr-file "$workdir/addr" &
pid=$!

for _ in $(seq 1 50); do
  [ -s "$workdir/addr" ] && break
  sleep 0.1
done
[ -s "$workdir/addr" ] || { echo "FAIL: daemon never wrote its address"; exit 1; }
base="http://$(cat "$workdir/addr")"

status=$(curl -s -o "$workdir/health" -w '%{http_code}' "$base/healthz")
[ "$status" = 200 ] || { echo "FAIL: /healthz -> $status"; exit 1; }
jq -e '.status == "ok"' "$workdir/health" >/dev/null || { echo "FAIL: bad health body"; cat "$workdir/health"; exit 1; }

# Inline select request must return a well-formed result.
status=$(curl -s -o "$workdir/select1" -w '%{http_code}' \
  -X POST --data @examples/quickstart/select.json "$base/v1/select")
[ "$status" = 200 ] || { echo "FAIL: /v1/select -> $status"; cat "$workdir/select1"; exit 1; }
jq -e '(.chosen | length) >= 1 and (.ids | length) == (.chosen | length)
       and .objective_before >= .objective_after and (.cost_spent | type) == "number"' \
  "$workdir/select1" >/dev/null || { echo "FAIL: malformed select result"; cat "$workdir/select1"; exit 1; }

# Upload the dataset once, select against the returned ID.
status=$(curl -s -o "$workdir/dataset" -w '%{http_code}' \
  -X POST --data @examples/quickstart/dataset.json "$base/v1/datasets")
[ "$status" = 200 ] || { echo "FAIL: /v1/datasets -> $status"; cat "$workdir/dataset"; exit 1; }
id=$(jq -re '.id' "$workdir/dataset")

jq --arg id "$id" 'del(.objects) + {dataset_id: $id}' examples/quickstart/select.json > "$workdir/byref.json"
status=$(curl -s -o "$workdir/select2" -w '%{http_code}' \
  -X POST --data @"$workdir/byref.json" "$base/v1/select")
[ "$status" = 200 ] || { echo "FAIL: select by dataset_id -> $status"; cat "$workdir/select2"; exit 1; }

# The repeated identical request must be served from the result cache.
curl -s -D "$workdir/headers" -o "$workdir/select3" \
  -X POST --data @"$workdir/byref.json" "$base/v1/select"
grep -qi '^x-cache: hit' "$workdir/headers" || { echo "FAIL: repeat select not a cache hit"; cat "$workdir/headers"; exit 1; }
diff "$workdir/select2" "$workdir/select3" || { echo "FAIL: cached answer differs"; exit 1; }

# ?trace=1 wraps the same result in an envelope carrying the request ID
# and per-stage solve timings; served from cache, the payload must still
# be the cached bytes.
curl -s -o "$workdir/traced" "$base/v1/select?trace=1" -X POST --data @"$workdir/byref.json"
jq -e '.cache == "hit" and (.request_id | length) > 0 and (.trace | type) == "object"' \
  "$workdir/traced" >/dev/null || { echo "FAIL: malformed trace envelope"; cat "$workdir/traced"; exit 1; }
diff <(jq -S .result "$workdir/traced") <(jq -S . "$workdir/select3") \
  || { echo "FAIL: traced result differs from cached answer"; exit 1; }
# A fresh (uncached) traced solve must report compile and solve stages.
jq '.budget = ((.budget // 2) + 1)' "$workdir/byref.json" > "$workdir/byref2.json"
curl -s -o "$workdir/traced2" "$base/v1/select?trace=1" -X POST --data @"$workdir/byref2.json"
jq -e '.cache == "miss" and ([.trace.stages[].name] | (index("compile") != null and index("solve") != null))' \
  "$workdir/traced2" >/dev/null || { echo "FAIL: fresh trace missing solve stages"; cat "$workdir/traced2"; exit 1; }

# /metrics must expose the traffic above in Prometheus text format:
# 5 completed selects (miss, miss, hit, traced hit, traced miss) and
# matching result-cache outcome counts.
status=$(curl -s -o "$workdir/metrics" -w '%{http_code}' "$base/metrics")
[ "$status" = 200 ] || { echo "FAIL: /metrics -> $status"; exit 1; }
metric() { # prints the sample value; runs in $(...), so failures go to stderr
  awk -v want="$1" '$1 == want { print $2; found = 1 } END { if (!found) exit 1 }' "$workdir/metrics" \
    || { echo "FAIL: metric $1 missing from /metrics" >&2; exit 1; }
}
v=$(metric 'cleanseld_requests_total{endpoint="select",code="200"}')
[ "$v" = 5 ] || { echo "FAIL: select request count $v != 5"; exit 1; }
v=$(metric 'cleanseld_request_seconds_count{endpoint="select"}')
[ "$v" = 5 ] || { echo "FAIL: select latency histogram count $v != 5"; exit 1; }
v=$(metric 'cleanseld_cache_requests_total{status="hit"}')
[ "$v" = 2 ] || { echo "FAIL: cache hits $v != 2"; exit 1; }
v=$(metric 'cleanseld_cache_requests_total{status="miss"}')
[ "$v" = 3 ] || { echo "FAIL: cache misses $v != 3"; exit 1; }
metric 'cleanseld_solve_stage_seconds_total{stage="solve"}' >/dev/null

# Bulk triage: the quickstart claim stream (three claims, two of which
# are the same claim under different names) must come back fully
# ranked, with the renamed repost deduplicated.
status=$(curl -s -o "$workdir/triage" -w '%{http_code}' \
  -X POST --data @examples/quickstart/triage.json "$base/v1/triage")
[ "$status" = 200 ] || { echo "FAIL: /v1/triage -> $status"; cat "$workdir/triage"; exit 1; }
jq -e '.stats == {claims: 3, unique: 2, errors: 0}
       and (.claims | length) == 3
       and ([.claims[].rank] | sort) == [1, 2, 3]' \
  "$workdir/triage" >/dev/null || { echo "FAIL: malformed triage result"; cat "$workdir/triage"; exit 1; }

# Signature dedup: "mar-vs-jan" and its renamed repost carry the
# identical report.
diff <(jq -S '.claims[] | select(.index == 0) | .report' "$workdir/triage") \
     <(jq -S '.claims[] | select(.index == 1) | .report' "$workdir/triage") \
  || { echo "FAIL: deduplicated claims report differently"; exit 1; }

# Amortization round-trip: every triage report must be byte-identical
# to the standalone /v1/assess answer for the same claim.
for i in 0 1 2; do
  jq --argjson i "$i" '{objects} + (.claims[$i] | {claim, direction, perturbations})' \
    examples/quickstart/triage.json > "$workdir/assess$i.json"
  status=$(curl -s -o "$workdir/assess$i" -w '%{http_code}' \
    -X POST --data @"$workdir/assess$i.json" "$base/v1/assess")
  [ "$status" = 200 ] || { echo "FAIL: /v1/assess claim $i -> $status"; cat "$workdir/assess$i"; exit 1; }
  diff <(jq -S --argjson i "$i" '.claims[] | select(.index == $i) | .report' "$workdir/triage") \
       <(jq -S . "$workdir/assess$i") \
    || { echo "FAIL: triage report for claim $i differs from standalone assess"; exit 1; }
done

# The batch shows up in the triage claim counter (all three scored).
curl -s -o "$workdir/metrics" "$base/metrics"
v=$(metric 'cleanseld_triage_claims_total{outcome="ok"}')
[ "$v" = 3 ] || { echo "FAIL: triage ok-claim count $v != 3"; exit 1; }

kill "$pid"
wait "$pid" 2>/dev/null || true
pid=""
echo "smoke OK: $base served healthz, datasets, select (miss+hit), trace, metrics, triage (dedup + assess parity)"
