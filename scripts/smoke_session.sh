#!/usr/bin/env bash
# Interactive-session smoke test for cleanseld: start the daemon with a
# session snapshot, drive a full adaptive episode over HTTP (create ->
# follow the recommendation -> report the cleaned value -> repeat until
# the budget-constrained loop exhausts), assert the protocol rejects
# duplicate step reports, SIGTERM-restart the daemon and assert the
# episode survives bit-identically, then check /metrics, /healthz,
# DELETE, and TTL expiry. Used by CI and runnable locally:
# ./scripts/smoke_session.sh
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
pid=""
cleanup() {
  [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/cleanseld" ./cmd/cleanseld
snapshot="$workdir/sessions.snap"

start_daemon() { # args: extra daemon flags
  rm -f "$workdir/addr"
  "$workdir/cleanseld" -addr 127.0.0.1:0 -addr-file "$workdir/addr" "$@" &
  pid=$!
  for _ in $(seq 1 50); do
    [ -s "$workdir/addr" ] && break
    sleep 0.1
  done
  [ -s "$workdir/addr" ] || { echo "FAIL: daemon never wrote its address"; exit 1; }
  base="http://$(cat "$workdir/addr")"
}

start_daemon -session-snapshot "$snapshot"

# Create an episode from the quickstart problem (maxpr, tau 1, budget
# 3). The claim compares mar against jan, so the opening recommendation
# is deterministic: jan (object 0, the tie-break winner).
status=$(curl -s -o "$workdir/create" -w '%{http_code}' \
  -X POST --data @examples/quickstart/session.json "$base/v1/sessions")
[ "$status" = 200 ] || { echo "FAIL: POST /v1/sessions -> $status"; cat "$workdir/create"; exit 1; }
jq -e '.status == "active" and .steps == 0 and .recommendation.object == 0
       and .recommendation.name == "jan" and .budget == 3 and (.cleaned | length) == 0' \
  "$workdir/create" >/dev/null || { echo "FAIL: bad create state"; cat "$workdir/create"; exit 1; }
id=$(jq -re '.id' "$workdir/create")

# GET answers with the same episode state.
curl -s -o "$workdir/get0" "$base/v1/sessions/$id"
diff "$workdir/create" "$workdir/get0" || { echo "FAIL: GET differs from create state"; exit 1; }

# Step 0: clean jan, find its reported value was right after all. The
# engine conditions the posterior incrementally and recommends mar next.
status=$(curl -s -o "$workdir/clean0" -w '%{http_code}' \
  -X POST --data '{"step": 0, "object": 0, "value": 100}' "$base/v1/sessions/$id/clean")
[ "$status" = 200 ] || { echo "FAIL: clean step 0 -> $status"; cat "$workdir/clean0"; exit 1; }
jq -e '.status == "active" and .steps == 1 and .spent == 1
       and .recommendation.object == 2 and .recommendation.name == "mar"
       and (.cleaned | length) == 1 and .cleaned[0].name == "jan"' \
  "$workdir/clean0" >/dev/null || { echo "FAIL: bad state after step 0"; cat "$workdir/clean0"; exit 1; }

# Re-delivering the step-0 report must be rejected, not double-applied.
status=$(curl -s -o "$workdir/dup" -w '%{http_code}' \
  -X POST --data '{"step": 0, "object": 0, "value": 100}' "$base/v1/sessions/$id/clean")
[ "$status" = 409 ] || { echo "FAIL: duplicate clean -> $status, want 409"; cat "$workdir/dup"; exit 1; }
jq -e '.error.code == "conflict"' "$workdir/dup" >/dev/null \
  || { echo "FAIL: bad conflict body"; cat "$workdir/dup"; exit 1; }

# Step 1: clean mar, again confirming the current value. feb cannot
# move the claim (zero coefficient), so the episode terminates with
# budget left over: every useful object is clean, no counter found.
status=$(curl -s -o "$workdir/clean1" -w '%{http_code}' \
  -X POST --data '{"step": 1, "object": 2, "value": 140}' "$base/v1/sessions/$id/clean")
[ "$status" = 200 ] || { echo "FAIL: clean step 1 -> $status"; cat "$workdir/clean1"; exit 1; }
jq -e '.status == "exhausted" and .steps == 2 and .spent == 2 and .remaining == 1
       and (has("recommendation") | not) and (.cleaned | length) == 2' \
  "$workdir/clean1" >/dev/null || { echo "FAIL: bad terminal state"; cat "$workdir/clean1"; exit 1; }

# A terminal episode accepts no further reports.
status=$(curl -s -o "$workdir/late" -w '%{http_code}' \
  -X POST --data '{"step": 2, "object": 1, "value": 120}' "$base/v1/sessions/$id/clean")
[ "$status" = 409 ] || { echo "FAIL: clean after terminal -> $status, want 409"; cat "$workdir/late"; exit 1; }

# ?trace=1 wraps the state in the same envelope the solve endpoints
# use; sessions are never cached, so the envelope says so.
curl -s -o "$workdir/traced" "$base/v1/sessions/$id?trace=1"
jq -e '.cache == "none" and (.request_id | length) > 0 and .result.id == "'"$id"'"' \
  "$workdir/traced" >/dev/null || { echo "FAIL: malformed trace envelope"; cat "$workdir/traced"; exit 1; }

# Graceful restart: the snapshot must bring the episode back
# bit-identically — same step counter, same posterior, same log.
curl -s -o "$workdir/before" "$base/v1/sessions/$id"
kill -TERM "$pid"
wait "$pid" || { echo "FAIL: daemon exited non-zero on SIGTERM"; exit 1; }
pid=""
[ -s "$snapshot" ] || { echo "FAIL: no session snapshot written on shutdown"; exit 1; }

start_daemon -session-snapshot "$snapshot"
status=$(curl -s -o "$workdir/after" -w '%{http_code}' "$base/v1/sessions/$id")
[ "$status" = 200 ] || { echo "FAIL: session lost across restart -> $status"; cat "$workdir/after"; exit 1; }
diff "$workdir/before" "$workdir/after" || { echo "FAIL: episode changed across restart"; exit 1; }

# /healthz and /metrics report the lifecycle: one session restored and
# active, nothing lost.
curl -s "$base/healthz" > "$workdir/health"
jq -e '.sessions.restored == 1 and .sessions.active == 1 and .sessions.load_errors == 0' \
  "$workdir/health" >/dev/null || { echo "FAIL: bad session health stats"; cat "$workdir/health"; exit 1; }

curl -s "$base/metrics" > "$workdir/metrics"
metric() { # prints the sample value; runs in $(...), so failures go to stderr
  awk -v want="$1" '$1 == want { print $2; found = 1 } END { if (!found) exit 1 }' "$workdir/metrics" \
    || { echo "FAIL: metric $1 missing from /metrics" >&2; exit 1; }
}
v=$(metric 'cleanseld_sessions_total{event="restored"}')
[ "$v" = 1 ] || { echo "FAIL: restored count $v != 1"; exit 1; }
v=$(metric 'cleanseld_sessions_active')
[ "$v" = 1 ] || { echo "FAIL: active gauge $v != 1"; exit 1; }
metric 'cleanseld_requests_total{endpoint="sessions",code="200"}' >/dev/null

# DELETE ends the episode; the ID stops resolving.
status=$(curl -s -o "$workdir/deleted" -w '%{http_code}' -X DELETE "$base/v1/sessions/$id")
[ "$status" = 200 ] || { echo "FAIL: DELETE -> $status"; cat "$workdir/deleted"; exit 1; }
status=$(curl -s -o "$workdir/gone" -w '%{http_code}' "$base/v1/sessions/$id")
[ "$status" = 404 ] || { echo "FAIL: GET after DELETE -> $status, want 404"; exit 1; }

kill "$pid"
wait "$pid" 2>/dev/null || true
pid=""

# TTL expiry: with a 1-second TTL, an idle session answers 410 Gone —
# distinguishable from an ID that never existed (404).
start_daemon -session-ttl 1s
curl -s -o "$workdir/short" -X POST --data @examples/quickstart/session.json "$base/v1/sessions"
sid=$(jq -re '.id' "$workdir/short")
sleep 1.3
status=$(curl -s -o "$workdir/expired" -w '%{http_code}' "$base/v1/sessions/$sid")
[ "$status" = 410 ] || { echo "FAIL: idle session -> $status, want 410"; cat "$workdir/expired"; exit 1; }
jq -e '.error.code == "expired"' "$workdir/expired" >/dev/null \
  || { echo "FAIL: bad expiry body"; cat "$workdir/expired"; exit 1; }
status=$(curl -s -o /dev/null -w '%{http_code}' "$base/v1/sessions/s_0123456789abcdef")
[ "$status" = 404 ] || { echo "FAIL: unknown session -> $status, want 404"; exit 1; }

kill "$pid"
wait "$pid" 2>/dev/null || true
pid=""
echo "session smoke OK: $base served a full adaptive episode, restart recovery, expiry"
