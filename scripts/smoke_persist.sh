#!/usr/bin/env bash
# Durability smoke test for cleanseld: start with -data-dir and
# -cache-snapshot, upload the quickstart dataset, solve against it,
# SIGTERM the daemon (graceful shutdown writes a final snapshot), then
# restart on the same state directory and assert the dataset survived
# (GET by id), the repeated select answers byte-identically, the result
# cache came back from the snapshot (X-Cache: hit), and /healthz
# reports clean persist stats. Used by CI and runnable locally:
# ./scripts/smoke_persist.sh
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
pid=""
cleanup() {
  [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/cleanseld" ./cmd/cleanseld
datadir="$workdir/state"
snapshot="$workdir/state/cache.snap"

start_daemon() {
  rm -f "$workdir/addr"
  "$workdir/cleanseld" -addr 127.0.0.1:0 -addr-file "$workdir/addr" \
    -data-dir "$datadir" -cache-snapshot "$snapshot" &
  pid=$!
  for _ in $(seq 1 50); do
    [ -s "$workdir/addr" ] && break
    sleep 0.1
  done
  [ -s "$workdir/addr" ] || { echo "FAIL: daemon never wrote its address"; exit 1; }
  base="http://$(cat "$workdir/addr")"
}

start_daemon

# Upload the quickstart dataset and solve against its id.
status=$(curl -s -o "$workdir/dataset" -w '%{http_code}' \
  -X POST --data @examples/quickstart/dataset.json "$base/v1/datasets")
[ "$status" = 200 ] || { echo "FAIL: /v1/datasets -> $status"; cat "$workdir/dataset"; exit 1; }
id=$(jq -re '.id' "$workdir/dataset")

jq --arg id "$id" 'del(.objects) + {dataset_id: $id}' examples/quickstart/select.json > "$workdir/byref.json"
status=$(curl -s -o "$workdir/select1" -w '%{http_code}' \
  -X POST --data @"$workdir/byref.json" "$base/v1/select")
[ "$status" = 200 ] || { echo "FAIL: select before restart -> $status"; cat "$workdir/select1"; exit 1; }

# Graceful shutdown: SIGTERM must exit 0 and leave a final snapshot.
kill -TERM "$pid"
wait "$pid" || { echo "FAIL: daemon exited non-zero on SIGTERM"; exit 1; }
pid=""
[ -s "$snapshot" ] || { echo "FAIL: no cache snapshot written on shutdown"; exit 1; }
ls "$datadir/datasets/${id}.json" >/dev/null || { echo "FAIL: no dataset file on disk"; exit 1; }

# Restart over the same state: the dataset and the cached result must
# both survive.
start_daemon

status=$(curl -s -o "$workdir/meta" -w '%{http_code}' "$base/v1/datasets/$id")
[ "$status" = 200 ] || { echo "FAIL: dataset lost across restart -> $status"; cat "$workdir/meta"; exit 1; }
jq -e '.objects == 3 and .name == "quickstart"' "$workdir/meta" >/dev/null \
  || { echo "FAIL: bad dataset metadata after restart"; cat "$workdir/meta"; exit 1; }

curl -s -D "$workdir/headers" -o "$workdir/select2" \
  -X POST --data @"$workdir/byref.json" "$base/v1/select"
jq -e '(.chosen | length) >= 1 and (.ids | length) == (.chosen | length)
       and .objective_before >= .objective_after and (.cost_spent | type) == "number"' \
  "$workdir/select2" >/dev/null || { echo "FAIL: malformed select after restart"; cat "$workdir/select2"; exit 1; }
diff "$workdir/select1" "$workdir/select2" || { echo "FAIL: answer changed across restart"; exit 1; }
grep -qi '^x-cache: hit' "$workdir/headers" \
  || { echo "FAIL: restart did not restore the cache snapshot"; cat "$workdir/headers"; exit 1; }

# /healthz reports the durable state, with nothing skipped.
curl -s "$base/healthz" > "$workdir/health"
jq -e '.persist.datasets_on_disk == 1 and .persist.load_errors == 0
       and .persist.snapshot_age_seconds >= 0' "$workdir/health" >/dev/null \
  || { echo "FAIL: bad persist stats"; cat "$workdir/health"; exit 1; }

kill "$pid"
wait "$pid" 2>/dev/null || true
pid=""
echo "persist smoke OK: dataset + warm cache survived a SIGTERM restart at $base"
