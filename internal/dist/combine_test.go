package dist

import (
	"math"
	"testing"

	"github.com/factcheck/cleansel/internal/numeric"
	"github.com/factcheck/cleansel/internal/rng"
)

func TestMixtureBasics(t *testing.T) {
	m, err := Mixture([]*Discrete{PointMass(0), PointMass(10)}, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Mean(); got != 5 {
		t.Fatalf("mean %v, want 5", got)
	}
	if got := m.Variance(); got != 25 {
		t.Fatalf("variance %v, want 25", got)
	}
	// Shared atoms merge; support comes out sorted.
	m2, err := Mixture(
		[]*Discrete{UniformOver([]float64{1, 2}), UniformOver([]float64{2, 3})},
		[]float64{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	if m2.Size() != 3 || m2.Values[0] != 1 || m2.Values[1] != 2 || m2.Values[2] != 3 {
		t.Fatalf("pooled support %v, want [1 2 3]", m2.Values)
	}
	// Pr[2] = (3·1/2 + 1·1/2)/4 = 1/2.
	if got := m2.Prob(2); !numeric.AlmostEqual(got, 0.5, 1e-12) {
		t.Fatalf("pooled Prob(2) = %v, want 0.5", got)
	}
	// Zero-weight components drop out entirely.
	m3, err := Mixture([]*Discrete{PointMass(1), PointMass(9)}, []float64{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if m3.Size() != 1 || m3.Values[0] != 1 {
		t.Fatalf("zero-weight component kept: %v", m3.Values)
	}
}

func TestMixtureValidation(t *testing.T) {
	ok := PointMass(1)
	cases := []struct {
		name    string
		dists   []*Discrete
		weights []float64
	}{
		{"empty", nil, nil},
		{"length-mismatch", []*Discrete{ok}, []float64{1, 2}},
		{"nil-component", []*Discrete{nil}, []float64{1}},
		{"negative-weight", []*Discrete{ok, ok}, []float64{1, -1}},
		{"nan-weight", []*Discrete{ok}, []float64{math.NaN()}},
		{"zero-total", []*Discrete{ok, ok}, []float64{0, 0}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Mixture(tc.dists, tc.weights); err == nil {
				t.Fatal("invalid mixture accepted")
			}
		})
	}
}

// Law of total variance: the mixture's moments must satisfy
// E = Σ w̄_k μ_k and Var = Σ w̄_k (σ_k² + μ_k²) − E².
func TestMixtureLawOfTotalVariance(t *testing.T) {
	r := rng.New(424242)
	for trial := 0; trial < 50; trial++ {
		nComp := 1 + r.Intn(4)
		dists := make([]*Discrete, nComp)
		weights := make([]float64, nComp)
		var wsum float64
		for k := range dists {
			sz := 1 + r.Intn(5)
			vals := make([]float64, sz)
			probs := make([]float64, sz)
			for j := range vals {
				vals[j] = r.Uniform(-50, 50)
				probs[j] = r.Float64() + 0.05
			}
			dists[k] = MustDiscrete(vals, probs)
			weights[k] = r.Float64() + 0.1
			wsum += weights[k]
		}
		m, err := Mixture(dists, weights)
		if err != nil {
			t.Fatal(err)
		}
		var wantMean, wantSecond float64
		for k, d := range dists {
			wbar := weights[k] / wsum
			mu := d.Mean()
			wantMean += wbar * mu
			wantSecond += wbar * (d.Variance() + mu*mu)
		}
		wantVar := wantSecond - wantMean*wantMean
		if !numeric.AlmostEqual(m.Mean(), wantMean, 1e-9) {
			t.Fatalf("trial %d: mixture mean %v, law of total expectation %v", trial, m.Mean(), wantMean)
		}
		if !numeric.AlmostEqual(m.Variance(), wantVar, 1e-9) {
			t.Fatalf("trial %d: mixture variance %v, law of total variance %v", trial, m.Variance(), wantVar)
		}
	}
}

func TestWeightedSumExactConvolution(t *testing.T) {
	// D = 1 + 2·X1 − X2 with X1 ~ U{0,1}, X2 ~ U{0,1,2}: brute force over
	// the 6 outcomes.
	x1 := UniformOver([]float64{0, 1})
	x2 := UniformOver([]float64{0, 1, 2})
	d, err := WeightedSum(1, []float64{2, -1}, []*Discrete{x1, x2})
	if err != nil {
		t.Fatal(err)
	}
	want := map[float64]float64{
		-1: 1.0 / 6, 0: 1.0 / 6, 1: 2.0 / 6, 2: 1.0 / 6, 3: 1.0 / 6,
	}
	if d.Size() != len(want) {
		t.Fatalf("support %v, want keys of %v", d.Values, want)
	}
	for v, p := range want {
		if got := d.Prob(v); !numeric.AlmostEqual(got, p, 1e-12) {
			t.Fatalf("Pr[D=%v] = %v, want %v", v, got, p)
		}
	}
	// Moments follow from linearity/independence.
	if !numeric.AlmostEqual(d.Mean(), 1+2*x1.Mean()-x2.Mean(), 1e-12) {
		t.Fatalf("mean %v", d.Mean())
	}
	if !numeric.AlmostEqual(d.Variance(), 4*x1.Variance()+x2.Variance(), 1e-12) {
		t.Fatalf("variance %v", d.Variance())
	}
}

func TestWeightedSumRandomAgainstEnumeration(t *testing.T) {
	r := rng.New(1717)
	for trial := 0; trial < 30; trial++ {
		n := 1 + r.Intn(4)
		parts := make([]*Discrete, n)
		weights := make([]float64, n)
		for i := range parts {
			sz := 1 + r.Intn(4)
			vals := make([]float64, sz)
			probs := make([]float64, sz)
			for j := range vals {
				vals[j] = float64(r.IntRange(-5, 5))
				probs[j] = r.Float64() + 0.1
			}
			parts[i] = MustDiscrete(vals, probs)
			weights[i] = float64(r.IntRange(-2, 2))
		}
		offset := r.Uniform(-3, 3)
		d, err := WeightedSum(offset, weights, parts)
		if err != nil {
			t.Fatal(err)
		}
		// Enumerate the joint support and accumulate the same law.
		want := map[int64]float64{}
		var rec func(i int, sum, p float64)
		rec = func(i int, sum, p float64) {
			if i == n {
				want[numeric.QuantizeKey(sum)] += p
				return
			}
			for j, v := range parts[i].Values {
				rec(i+1, sum+weights[i]*v, p*parts[i].Probs[j])
			}
		}
		rec(0, offset, 1)
		if d.Size() != len(want) {
			t.Fatalf("trial %d: support size %d, want %d", trial, d.Size(), len(want))
		}
		for j, v := range d.Values {
			wp, ok := want[numeric.QuantizeKey(v)]
			if !ok {
				t.Fatalf("trial %d: unexpected atom %v", trial, v)
			}
			if !numeric.AlmostEqual(d.Probs[j], wp, 1e-9) {
				t.Fatalf("trial %d: Pr[%v] = %v, want %v", trial, v, d.Probs[j], wp)
			}
		}
		// PrBelow agrees with direct enumeration at a random threshold.
		thr := r.Uniform(-10, 10)
		var wantBelow float64
		for k, p := range want {
			if numeric.UnquantizeKey(k) < thr {
				wantBelow += p
			}
		}
		if got := d.PrBelow(thr); !numeric.AlmostEqual(got, wantBelow, 1e-9) {
			t.Fatalf("trial %d: PrBelow(%v) = %v, want %v", trial, thr, got, wantBelow)
		}
	}
}

func TestWeightedSumEdgeCases(t *testing.T) {
	// No parts (or all-zero weights): D is the deterministic offset.
	d, err := WeightedSum(2.5, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.Size() != 1 || d.Values[0] != 2.5 || d.Variance() != 0 {
		t.Fatalf("empty sum %+v, want point mass at 2.5", d)
	}
	z, err := WeightedSum(1, []float64{0}, []*Discrete{UniformOver([]float64{5, 9})})
	if err != nil {
		t.Fatal(err)
	}
	if z.Size() != 1 || z.Values[0] != 1 {
		t.Fatalf("zero-weight part contributed: %+v", z)
	}
	// Validation failures.
	if _, err := WeightedSum(0, []float64{1}, nil); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := WeightedSum(math.NaN(), nil, nil); err == nil {
		t.Fatal("NaN offset accepted")
	}
	if _, err := WeightedSum(0, []float64{math.Inf(1)}, []*Discrete{PointMass(1)}); err == nil {
		t.Fatal("infinite weight accepted")
	}
	if _, err := WeightedSum(0, []float64{1}, []*Discrete{nil}); err == nil {
		t.Fatal("nil part accepted")
	}
}

func TestFuseNormalsPrecisionWeighting(t *testing.T) {
	a, _ := NewNormal(10, 2)
	b, _ := NewNormal(14, 2)
	f, err := FuseNormals([]Normal{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if f.Mu != 12 {
		t.Fatalf("equal-precision fusion mean %v, want midpoint 12", f.Mu)
	}
	if want := math.Sqrt(2); !numeric.AlmostEqual(f.Sigma, want, 1e-12) {
		t.Fatalf("fused sigma %v, want √2", f.Sigma)
	}
	// Unequal precisions pull toward the sharper report.
	sharp, _ := NewNormal(0, 1)
	vague, _ := NewNormal(10, 3)
	g, err := FuseNormals([]Normal{sharp, vague})
	if err != nil {
		t.Fatal(err)
	}
	if want := 1.0; math.Abs(g.Mu-want) > 1e-12 {
		t.Fatalf("precision-weighted mean %v, want %v", g.Mu, want)
	}
	// Single report passes through.
	solo, err := FuseNormals([]Normal{vague})
	if err != nil || solo != vague {
		t.Fatalf("single-report fusion %+v, %v", solo, err)
	}
}

// Fusing two or more uncertain reports must strictly shrink variance
// below every input's — the whole point of consulting more sources.
func TestFuseNormalsShrinksVariance(t *testing.T) {
	r := rng.New(31337)
	for trial := 0; trial < 50; trial++ {
		n := 2 + r.Intn(4)
		reports := make([]Normal, n)
		minVar := math.Inf(1)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range reports {
			nd, err := NewNormal(r.Uniform(-20, 20), 0.2+3*r.Float64())
			if err != nil {
				t.Fatal(err)
			}
			reports[i] = nd
			minVar = math.Min(minVar, nd.Variance())
			lo = math.Min(lo, nd.Mu)
			hi = math.Max(hi, nd.Mu)
		}
		f, err := FuseNormals(reports)
		if err != nil {
			t.Fatal(err)
		}
		if f.Variance() >= minVar {
			t.Fatalf("trial %d: fused variance %v not below min input %v", trial, f.Variance(), minVar)
		}
		if f.Mu < lo-1e-12 || f.Mu > hi+1e-12 {
			t.Fatalf("trial %d: fused mean %v outside report range [%v, %v]", trial, f.Mu, lo, hi)
		}
	}
}

func TestFuseNormalsExactReports(t *testing.T) {
	exact, _ := NewNormal(5, 0)
	noisy, _ := NewNormal(8, 2)
	f, err := FuseNormals([]Normal{noisy, exact})
	if err != nil {
		t.Fatal(err)
	}
	if f.Mu != 5 || f.Sigma != 0 {
		t.Fatalf("exact report should dominate: %+v", f)
	}
	other, _ := NewNormal(6, 0)
	if _, err := FuseNormals([]Normal{exact, other}); err == nil {
		t.Fatal("contradictory exact reports accepted")
	}
	agree, _ := NewNormal(5, 0)
	if f, err := FuseNormals([]Normal{exact, agree}); err != nil || f.Mu != 5 {
		t.Fatalf("agreeing exact reports rejected: %+v, %v", f, err)
	}
	if _, err := FuseNormals(nil); err == nil {
		t.Fatal("empty report list accepted")
	}
}

func TestFuseNormalsDegenerateInputs(t *testing.T) {
	// A sigma whose square underflows to zero must not poison the
	// precision weighting with Inf/Inf = NaN.
	tiny := Normal{Mu: 1, Sigma: 1e-170}
	noisy, _ := NewNormal(2, 1)
	f, err := FuseNormals([]Normal{tiny, noisy})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(f.Mu) || f.Mu != 1 || f.Sigma != 0 {
		t.Fatalf("underflowing sigma should act as an exact report: %+v", f)
	}
	// Hand-built invalid reports (the exported fields bypass NewNormal)
	// are rejected instead of propagating NaN.
	for _, bad := range []Normal{
		{Mu: 0, Sigma: math.NaN()},
		{Mu: math.NaN(), Sigma: 1},
		{Mu: 0, Sigma: -1},
		{Mu: math.Inf(1), Sigma: 1},
	} {
		if _, err := FuseNormals([]Normal{bad, noisy}); err == nil {
			t.Fatalf("invalid report %+v accepted", bad)
		}
	}
}
