// Package dist implements the value-distribution layer of §2.1: each
// uncertain object o_i carries a random true value X_i, and everything
// else in the library — expected-variance engines, MaxPr evaluators,
// greedy selectors — consumes X_i only through the laws defined here.
//
// Two concrete laws cover the paper's experiments:
//
//   - *Discrete is a finite-support probability mass function
//     Pr[X = v_j] = p_j, the form of the synthetic §4.3 generators
//     (URx, LNx, SMx) and of the worked Examples 3, 5 and 6. Exported
//     Values/Probs expose the support directly to the enumeration
//     engines; probabilities are normalized to sum to one on
//     construction.
//   - Normal is the Gaussian error model X ~ N(μ, σ²) used for the
//     real-world series of §4.2 (reported estimate μ = u_i with a
//     published standard error σ). Sigma = 0 degenerates to a point
//     mass, which several Lemma 3.3 edge cases rely on.
//
// Both satisfy model.Value (Mean, Variance). Combinators build
// compound laws: Mixture pools conflicting source reports into a
// credibility-weighted opinion pool, WeightedSum convolves the exact
// law of offset + Σ w_i·X_i (the "drop" variable of Eq. (2)), and
// FuseNormals resolves independent Gaussian reports of one quantity by
// precision weighting. Mixture and WeightedSum merge colliding
// outcomes on a shared scale-aware quantization grid (numeric.Grid):
// the legacy 1e-9 grid inside ±1e8, an exact integer grid for
// integral/dyadic supports at any magnitude, and relative quantization
// beyond — see ConvGrid and the big.Rat reference implementation in
// the nested oracle package.
//
// Sampling is deterministic given an rng.RNG stream: Discrete samples
// by inverse CDF and Normal draws from the generator's Box-Muller
// stream, so a fixed seed reproduces every Monte-Carlo figure
// bit-for-bit.
package dist
