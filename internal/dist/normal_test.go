package dist

import (
	"math"
	"testing"

	"github.com/factcheck/cleansel/internal/numeric"
	"github.com/factcheck/cleansel/internal/rng"
)

func TestNewNormal(t *testing.T) {
	tests := []struct {
		name      string
		mu, sigma float64
		ok        bool
	}{
		{"standard", 0, 1, true},
		{"shifted", 10, 2.5, true},
		{"degenerate", 5, 0, true},
		{"negative-sigma", 0, -1, false},
		{"nan-sigma", 0, math.NaN(), false},
		{"inf-sigma", 0, math.Inf(1), false},
		{"nan-mu", math.NaN(), 1, false},
		{"inf-mu", math.Inf(-1), 1, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			n, err := NewNormal(tc.mu, tc.sigma)
			if tc.ok != (err == nil) {
				t.Fatalf("err = %v, want ok=%v", err, tc.ok)
			}
			if !tc.ok {
				return
			}
			if n.Mean() != tc.mu {
				t.Fatalf("mean %v, want %v", n.Mean(), tc.mu)
			}
			if want := tc.sigma * tc.sigma; n.Variance() != want {
				t.Fatalf("variance %v, want %v", n.Variance(), want)
			}
		})
	}
}

func TestNormalSampleDeterministicUnderSeed(t *testing.T) {
	n, _ := NewNormal(10, 2)
	a := rng.New(77)
	b := rng.New(77)
	for i := 0; i < 100; i++ {
		if va, vb := n.Sample(a), n.Sample(b); va != vb {
			t.Fatalf("draw %d diverged: %v vs %v", i, va, vb)
		}
	}
}

func TestNormalSampleMoments(t *testing.T) {
	n, _ := NewNormal(-3, 4)
	r := rng.New(11)
	var w numeric.Welford
	for i := 0; i < 200000; i++ {
		w.Add(n.Sample(r))
	}
	if math.Abs(w.Mean()-(-3)) > 0.05 {
		t.Fatalf("sample mean %v, want ≈ -3", w.Mean())
	}
	if math.Abs(w.SampleVar()-16) > 0.5 {
		t.Fatalf("sample variance %v, want ≈ 16", w.SampleVar())
	}
}

func TestNormalSampleDegenerate(t *testing.T) {
	n, _ := NewNormal(7, 0)
	r := rng.New(3)
	for i := 0; i < 10; i++ {
		if n.Sample(r) != 7 {
			t.Fatal("degenerate normal sampled off its mean")
		}
	}
}

func TestDiscretize(t *testing.T) {
	n, _ := NewNormal(10, 2)
	for _, k := range []int{1, 2, 3, 4, 6, 64} {
		d := n.Discretize(k)
		if d.Size() != k {
			t.Fatalf("k=%d: size %d", k, d.Size())
		}
		// Symmetric quantile grid: mean is exact.
		if got := d.Mean(); !numeric.AlmostEqual(got, 10, 1e-9) {
			t.Fatalf("k=%d: mean %v, want 10", k, got)
		}
		// Equal-probability bin centers under-disperse: variance below σ².
		if v := d.Variance(); v > 4 {
			t.Fatalf("k=%d: variance %v exceeds σ²=4", k, v)
		}
	}
	// Variance converges to σ² from below as k grows.
	v6 := n.Discretize(6).Variance()
	v64 := n.Discretize(64).Variance()
	if !(v6 < v64 && v64 < 4) {
		t.Fatalf("variance not converging: v6=%v v64=%v σ²=4", v6, v64)
	}
	if v64 < 3.8 {
		t.Fatalf("k=64 variance %v too far from σ²=4", v64)
	}
}

func TestDiscretizeDegenerateAndInvalid(t *testing.T) {
	n, _ := NewNormal(5, 0)
	d := n.Discretize(6)
	if d.Size() != 1 || d.Values[0] != 5 {
		t.Fatalf("zero-sigma discretization %+v, want point mass at 5", d)
	}
	pos, _ := NewNormal(0, 1)
	assertPanics(t, func() { pos.Discretize(0) })
}
