package dist

import (
	"math"
	"sync"

	"github.com/factcheck/cleansel/internal/numeric"
)

// Dense-span convolution and pooling.
//
// After PR 5 every convolution lives on a known uniform numeric.Grid, so
// whenever the working support is an integer lattice the per-layer
// map[int64]float64 (hash, bucket chase, SortedKeys re-sort) is a dense
// []float64 in disguise: cell index = (key − lo)/stride. The kernel here
// runs exactly that layout, and is used only when a pre-flight
// certificate (convLattice / poolDense's checks) proves the result is
// bit-identical to the map path:
//
//   - every atom the convolution adds — the offset and each fp product
//     weights[i]·v — is a multiple of a common dyadic stride d = 2^-shift
//     (the same dyadicShift test the exact-grid ladder already uses);
//   - one stride spans an exact integer number of grid cells ≥ 1
//     (numeric.Grid.CellsPerStride), so lattice order and key order agree
//     and distinct lattice points get distinct keys;
//   - every reachable partial sum, measured in strides on the actual
//     integer atoms (sumAbs below), stays inside float64's exact-integer
//     range both as a value (≤ 2^53 strides) and as a scaled key
//     (≤ 2^53 cells) — so every fp add the map path performs is exact,
//     merge-by-key coincides with merge-by-lattice-point, and the
//     first-seen value the map keeps per key reconstructs bit-for-bit
//     as float64(units)·d.
//
// Under that certificate the dense pass visits source cells in ascending
// index order (= ascending key order, = the map path's SortedKeys order)
// and atoms in slice order, so every float64 addition happens in the same
// sequence with the same operands: the output Discrete is bit-identical,
// and the conv_ops/conv_atoms_merged trace counters tick identically.
// Anything that fails the certificate — non-dyadic values, a relative
// (scale < 1) grid, spans past the width caps, a −0.0 that the map path
// would preserve but value reconstruction cannot — falls back to the map
// path unchanged. FuzzDenseVsMap pins the equivalence.

// maxDenseWidth caps a dense span at 2^20 cells (8 MiB per float buffer):
// wider lattices fall back to the map path rather than committing
// unbounded memory to a sparse support.
const maxDenseWidth = 1 << 20

// maxDenseFanout bounds span width relative to the work the map path
// would do (the product state space for a convolution, the atom count
// for a pool): a span more than 64× wider than the atom traffic is
// sparse territory where scanning cells loses to hashing atoms.
const maxDenseFanout = 64

// denseScratch holds the reusable buffers of one dense convolution: the
// ping-pong probability spans, their occupancy masks, and the per-layer
// integer step table. Pooled so steady-state convolutions allocate
// nothing beyond the result Discrete; every cell is (re)initialized
// before it is read, so reuse cannot leak state between convolutions.
type denseScratch struct {
	probsA, probsB []float64
	seenA, seenB   []bool
	steps          []int64
}

var denseScratchPool = sync.Pool{New: func() any { return new(denseScratch) }}

func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

func growInts(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	return s[:n]
}

// gcd64 folds |b| into the running non-negative gcd a.
func gcd64(a, b int64) int64 {
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// convLattice is the certificate weightedSumLattice produces before the
// dense kernel may run: the common dyadic stride, the lattice step, the
// integer offset, and the exact final span width.
type convLattice struct {
	shift  int   // atoms are multiples of d = 2^-shift
	g      int64 // lattice step in strides: gcd of within-part atom deltas
	offInt int64 // offset in strides
	width  int   // final span cells: 1 + Σ_i (maxA_i − minA_i)/g
}

// weightedSumLattice checks the dense-kernel certificate for one
// convolution (see the package comment above for the conditions) and
// derives the span geometry from the already-validated reach — the
// allocation is exact, never speculative. Returns ok=false whenever any
// condition fails; the caller then takes the map path.
func weightedSumLattice(offset float64, weights []float64, parts []*Discrete, grid numeric.Grid, reach float64) (convLattice, bool) {
	if !grid.KeysExactWithin(reach) {
		return convLattice{}, false
	}
	// A −0.0 offset that survives to the output (no layer shifts it)
	// would reconstruct as +0.0; the map path keeps the exact −0.0 bits.
	if offset == 0 && math.Signbit(offset) {
		return convLattice{}, false
	}
	shift, ok := dyadicShift(offset)
	if !ok {
		return convLattice{}, false
	}
	states := 1
	for i, w := range weights {
		if w == 0 {
			continue
		}
		for _, v := range parts[i].Values {
			s, ok := dyadicShift(w * v)
			if !ok {
				return convLattice{}, false
			}
			if s > shift {
				shift = s
			}
		}
		// Saturating product: the bound below only needs to know
		// whether the state space dwarfs the span, not its exact size.
		if states <= maxDenseWidth*maxDenseFanout {
			states *= parts[i].Size()
		}
	}
	t, ok := grid.CellsPerStride(math.Ldexp(1, -shift))
	if !ok {
		return convLattice{}, false
	}
	// Integer atoms, lattice gcd, span extent, and the authoritative
	// exactness bound. KeysExactWithin above guarantees every product
	// below is far inside int64 before conversion; the integer sumAbs
	// check then certifies — on the actual atoms, immune to fp slop in
	// reach — that no reachable partial sum or key leaves the exact
	// range.
	pow2 := math.Ldexp(1, shift)
	offInt := int64(offset * pow2)
	sumAbs := offInt
	if sumAbs < 0 {
		sumAbs = -sumAbs
	}
	var g, span int64
	for i, w := range weights {
		if w == 0 {
			continue
		}
		first := int64(w * parts[i].Values[0] * pow2)
		minA, maxA := first, first
		for _, v := range parts[i].Values[1:] {
			a := int64(w * v * pow2)
			if a < minA {
				minA = a
			}
			if a > maxA {
				maxA = a
			}
			g = gcd64(g, a-first)
		}
		span += maxA - minA
		if -minA > maxA {
			sumAbs += -minA
		} else {
			sumAbs += maxA
		}
	}
	if sumAbs > maxExactInt/t {
		return convLattice{}, false
	}
	if g == 0 {
		g = 1
	}
	width := span/g + 1
	if width > maxDenseWidth || width > int64(maxDenseFanout)*int64(states) {
		return convLattice{}, false
	}
	return convLattice{shift: shift, g: g, offInt: offInt, width: int(width)}, true
}

// weightedSumDense is the dense twin of weightedSumMap, run only under a
// convLattice certificate. Same layer structure, same visit order
// (source cells ascending = keys ascending, atoms in slice order), same
// fp operands — bit-identical output and trace counters.
func weightedSumDense(st *convStats, offset float64, weights []float64, parts []*Discrete, lat convLattice) (*Discrete, error) {
	sc := denseScratchPool.Get().(*denseScratch)
	cur := growFloats(sc.probsA, lat.width)
	next := growFloats(sc.probsB, lat.width)
	curSeen := growBools(sc.seenA, lat.width)
	nextSeen := growBools(sc.seenB, lat.width)
	pow2 := math.Ldexp(1, lat.shift)
	cur[0], curSeen[0] = 1, true
	curLo, curN := lat.offInt, 1
	for i, part := range parts {
		if weights[i] == 0 {
			continue
		}
		steps := growInts(sc.steps, part.Size())
		sc.steps = steps
		minA := int64(math.MaxInt64)
		for j, v := range part.Values {
			a := int64(weights[i] * v * pow2)
			steps[j] = a
			if a < minA {
				minA = a
			}
		}
		var maxStep int64
		for j := range steps {
			steps[j] = (steps[j] - minA) / lat.g
			if steps[j] > maxStep {
				maxStep = steps[j]
			}
		}
		destN := curN + int(maxStep)
		clear(next[:destN])
		clear(nextSeen[:destN])
		for m := 0; m < curN; m++ {
			if !curSeen[m] {
				continue
			}
			p := cur[m]
			for j, step := range steps {
				idx := m + int(step)
				if !nextSeen[idx] {
					nextSeen[idx] = true
				} else if st != nil {
					st.merged++
				}
				if st != nil {
					st.ops++
				}
				next[idx] += p * part.Probs[j]
			}
		}
		cur, next = next, cur
		curSeen, nextSeen = nextSeen, curSeen
		curLo += minA
		curN = destN
	}
	n := 0
	for m := 0; m < curN; m++ {
		if curSeen[m] {
			n++
		}
	}
	values := make([]float64, 0, n)
	probs := make([]float64, 0, n)
	d := math.Ldexp(1, -lat.shift)
	for m := 0; m < curN; m++ {
		if !curSeen[m] {
			continue
		}
		// Exact reconstruction of the first-seen sum the map path would
		// store: the units fit 2^53, so float64(units)·d is the exact
		// lattice value, bit for bit.
		values = append(values, float64(curLo+int64(m)*lat.g)*d)
		probs = append(probs, cur[m])
	}
	sc.probsA, sc.probsB = cur, next
	sc.seenA, sc.seenB = curSeen, nextSeen
	denseScratchPool.Put(sc)
	return NewDiscrete(values, probs)
}

// poolGroup is one component of a pooling pass: atoms, their masses, and
// a mass multiplier (a mixture weight, or 1 for a plain pmf
// accumulation). Atom order inside a group and group order across the
// slice fix the fp accumulation order.
type poolGroup struct {
	values []float64
	probs  []float64
	w      float64
}

// poolOnGrid pools a fixed-order atom stream onto grid keys: mass
// w·probs[j] accumulates per key in stream order, each key keeps the
// first exact value seen, and the pooled support comes back in ascending
// key order. The dense lattice path runs when the certificate holds and
// is bit-identical to the map fallback (same adds, same order); Mixture
// and ev.Entropy both pool through here.
func poolOnGrid(st *convStats, grid numeric.Grid, groups []poolGroup) ([]float64, []float64) {
	if values, masses, ok := poolDense(st, grid, groups); ok {
		return values, masses
	}
	return poolMap(st, grid, groups)
}

// PoolPMF pools an already-enumerated outcome stream (values[i] with
// mass probs[i], in stream order) onto the grid: masses accumulate per
// key in stream order, and both returned slices come back in ascending
// key order, values holding the first exact outcome seen per key. It is
// exactly the map accumulation `pmf[grid.Key(v)] += p` followed by a
// SortedKeys walk — bit for bit, via the same dense-or-map kernel
// Mixture pools through. ev.Entropy uses it to collapse its two-pass
// reach-then-pool enumeration into one buffered pass.
func PoolPMF(grid numeric.Grid, values, probs []float64) ([]float64, []float64) {
	return poolOnGrid(nil, grid, []poolGroup{{values: values, probs: probs, w: 1}})
}

func poolMap(st *convStats, grid numeric.Grid, groups []poolGroup) ([]float64, []float64) {
	pooled := map[int64]float64{}
	vals := map[int64]float64{}
	for _, gr := range groups {
		for j, v := range gr.values {
			key := grid.Key(v)
			if _, seen := vals[key]; !seen {
				vals[key] = v
			} else if st != nil {
				st.merged++
			}
			if st != nil {
				st.ops++
			}
			pooled[key] += gr.w * gr.probs[j]
		}
	}
	keys := numeric.SortedKeys(pooled)
	values := make([]float64, len(keys))
	masses := make([]float64, len(keys))
	for i, k := range keys {
		values[i] = vals[k]
		masses[i] = pooled[k]
	}
	return values, masses
}

func poolDense(st *convStats, grid numeric.Grid, groups []poolGroup) ([]float64, []float64, bool) {
	shift, atoms := 0, 0
	var maxAbs float64
	for _, gr := range groups {
		for _, v := range gr.values {
			// −0.0 is a first-seen value the map path preserves but
			// lattice reconstruction turns into +0.0.
			if v == 0 && math.Signbit(v) {
				return nil, nil, false
			}
			s, ok := dyadicShift(v)
			if !ok {
				return nil, nil, false
			}
			if s > shift {
				shift = s
			}
			if a := math.Abs(v); a > maxAbs {
				maxAbs = a
			}
		}
		atoms += len(gr.values)
	}
	if atoms == 0 {
		return nil, nil, false
	}
	if !grid.KeysExactWithin(maxAbs) {
		return nil, nil, false
	}
	t, ok := grid.CellsPerStride(math.Ldexp(1, -shift))
	if !ok {
		return nil, nil, false
	}
	pow2 := math.Ldexp(1, shift)
	var lo, hi, g int64
	started := false
	var first int64
	for _, gr := range groups {
		for _, v := range gr.values {
			a := int64(v * pow2)
			if !started {
				started = true
				first, lo, hi = a, a, a
				continue
			}
			if a < lo {
				lo = a
			}
			if a > hi {
				hi = a
			}
			g = gcd64(g, a-first)
		}
	}
	// Authoritative exactness bound on the actual integer atoms: the
	// value and its key must both stay inside float64's exact-integer
	// range (see numeric.Grid.KeysExactWithin).
	if lo < -maxExactInt/t || hi > maxExactInt/t {
		return nil, nil, false
	}
	if g == 0 {
		g = 1
	}
	width := (hi-lo)/g + 1
	if width > maxDenseWidth || width > int64(maxDenseFanout)*int64(atoms) {
		return nil, nil, false
	}
	sc := denseScratchPool.Get().(*denseScratch)
	probs := growFloats(sc.probsA, int(width))
	seen := growBools(sc.seenA, int(width))
	clear(probs)
	clear(seen)
	for _, gr := range groups {
		for j, v := range gr.values {
			idx := (int64(v*pow2) - lo) / g
			if !seen[idx] {
				seen[idx] = true
			} else if st != nil {
				st.merged++
			}
			if st != nil {
				st.ops++
			}
			probs[idx] += gr.w * gr.probs[j]
		}
	}
	n := 0
	for idx := range seen {
		if seen[idx] {
			n++
		}
	}
	values := make([]float64, 0, n)
	masses := make([]float64, 0, n)
	d := math.Ldexp(1, -shift)
	for idx := range seen {
		if !seen[idx] {
			continue
		}
		values = append(values, float64(lo+int64(idx)*g)*d)
		masses = append(masses, probs[idx])
	}
	sc.probsA, sc.seenA = probs, seen
	denseScratchPool.Put(sc)
	return values, masses, true
}

// maxConvMapHint caps the bucket pre-allocation of one map-path
// convolution or pooling layer. The raw product len(probs)·Size() is an
// upper bound that wide-support workloads overshoot by orders of
// magnitude once grid merges collapse the layer — and that can overflow
// int outright on adversarial sizes. Past the cap the map grows on
// demand like any other.
const maxConvMapHint = 1 << 16

// mapSizeHint returns a safe make() capacity hint for a layer producing
// up to n·m entries: never negative, never the overflowed product,
// never more than maxConvMapHint.
func mapSizeHint(n, m int) int {
	if n <= 0 || m <= 0 {
		return 0
	}
	if n > maxConvMapHint/m {
		return maxConvMapHint
	}
	return n * m
}
