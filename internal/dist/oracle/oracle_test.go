package oracle

import (
	"math/big"
	"testing"
)

func rat(a, b int64) *big.Rat { return big.NewRat(a, b) }

func TestWeightedSumHandComputed(t *testing.T) {
	// D = 1 + 2·X − Y with X ~ U{0, 1}, Y ~ U{0, 2}:
	// atoms −1, 0, 1, 2, 3 with masses 1/4 except 1 (from two paths? no:
	// sums are 1+{0,2}−{0,2} = {1,3,−1,1} → 1 twice).
	atoms := WeightedSum(1, []float64{2, -1},
		[][]float64{{0, 1}, {0, 2}},
		[][]float64{{1, 1}, {1, 1}})
	wantV := []*big.Rat{rat(-1, 1), rat(1, 1), rat(3, 1)}
	wantP := []*big.Rat{rat(1, 4), rat(1, 2), rat(1, 4)}
	if len(atoms) != len(wantV) {
		t.Fatalf("got %d atoms", len(atoms))
	}
	for i := range atoms {
		if atoms[i].Value.Cmp(wantV[i]) != 0 || atoms[i].Prob.Cmp(wantP[i]) != 0 {
			t.Fatalf("atom %d = (%v, %v), want (%v, %v)", i, atoms[i].Value, atoms[i].Prob, wantV[i], wantP[i])
		}
	}
	if m := Mean(atoms); m.Cmp(rat(1, 1)) != 0 {
		t.Fatalf("mean %v, want 1", m)
	}
	if v := Variance(atoms); v.Cmp(rat(2, 1)) != 0 {
		t.Fatalf("variance %v, want 2", v)
	}
	if p := PrBelow(atoms, rat(1, 1)); p.Cmp(rat(1, 4)) != 0 {
		t.Fatalf("PrBelow(1) = %v, want 1/4 (strict)", p)
	}
}

func TestWeightedSumSkipsZeroWeights(t *testing.T) {
	atoms := WeightedSum(0, []float64{0, 1},
		[][]float64{{1e300, -1e300}, {5}},
		[][]float64{{1, 1}, {1}})
	if len(atoms) != 1 || atoms[0].Value.Cmp(rat(5, 1)) != 0 || atoms[0].Prob.Cmp(rat(1, 1)) != 0 {
		t.Fatalf("atoms = %v", atoms)
	}
}

func TestWeightedSumExactAtLargeMagnitude(t *testing.T) {
	// 1e12 + 0.25 is exact in float64 and in the oracle; no drift.
	atoms := WeightedSum(-1e12, []float64{1},
		[][]float64{{1e12 + 0.25, 1e12 + 0.75}},
		[][]float64{{3, 1}})
	if len(atoms) != 2 {
		t.Fatalf("got %d atoms", len(atoms))
	}
	if atoms[0].Value.Cmp(rat(1, 4)) != 0 || atoms[0].Prob.Cmp(rat(3, 4)) != 0 {
		t.Fatalf("atom 0 = (%v, %v)", atoms[0].Value, atoms[0].Prob)
	}
	if atoms[1].Value.Cmp(rat(3, 4)) != 0 || atoms[1].Prob.Cmp(rat(1, 4)) != 0 {
		t.Fatalf("atom 1 = (%v, %v)", atoms[1].Value, atoms[1].Prob)
	}
}

func TestMixtureHandComputed(t *testing.T) {
	// Pool U{0,1} (weight 3) with U{1,2} (weight 1): atom 1 gets
	// 3/4·1/2 + 1/4·1/2 = 1/2.
	atoms := Mixture(
		[][]float64{{0, 1}, {1, 2}},
		[][]float64{{1, 1}, {1, 1}},
		[]float64{3, 1})
	wantV := []*big.Rat{rat(0, 1), rat(1, 1), rat(2, 1)}
	wantP := []*big.Rat{rat(3, 8), rat(1, 2), rat(1, 8)}
	if len(atoms) != 3 {
		t.Fatalf("got %d atoms", len(atoms))
	}
	for i := range atoms {
		if atoms[i].Value.Cmp(wantV[i]) != 0 || atoms[i].Prob.Cmp(wantP[i]) != 0 {
			t.Fatalf("atom %d = (%v, %v), want (%v, %v)", i, atoms[i].Value, atoms[i].Prob, wantV[i], wantP[i])
		}
	}
}
