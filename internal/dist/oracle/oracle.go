// Package oracle computes reference distributions in exact rational
// arithmetic (math/big.Rat). It is the verification substrate for the
// float64 convolution and pooling code in internal/dist: every finite
// float is a dyadic rational, so converting the exact inputs of a
// WeightedSum or Mixture call to big.Rat and carrying out the same
// arithmetic without rounding yields the ground-truth law the float
// implementation approximates — and, on the exact integer grid, must
// reproduce bit for bit.
//
// The package deliberately does not import internal/dist: it consumes
// plain value/probability slices, so dist's own tests can compare
// against it without an import cycle. It is not performance-sensitive;
// supports in oracle-backed tests stay small.
package oracle

import (
	"math/big"
	"sort"
)

// Atom is one support point of an exact law.
type Atom struct {
	Value *big.Rat
	Prob  *big.Rat
}

// WeightedSum returns the exact law of offset + Σ_i weights[i]·X_i for
// independent X_i, where X_i has support values[i] with (possibly
// unnormalized) masses probs[i]. Every float input is converted exactly;
// products and sums are carried out in big.Rat; atoms merge only on
// exact rational equality; masses are normalized to sum to one at the
// end. Atoms come out sorted ascending by value. Zero-weight parts are
// skipped, mirroring dist.WeightedSum.
func WeightedSum(offset float64, weights []float64, values, probs [][]float64) []Atom {
	acc := map[string]*Atom{}
	off := new(big.Rat).SetFloat64(offset)
	one := big.NewRat(1, 1)
	acc[off.RatString()] = &Atom{Value: off, Prob: one}
	for i := range values {
		w := new(big.Rat).SetFloat64(weights[i])
		if w.Sign() == 0 {
			continue
		}
		next := map[string]*Atom{}
		for _, a := range acc {
			for j, v := range values[i] {
				term := new(big.Rat).Mul(w, new(big.Rat).SetFloat64(v))
				sum := new(big.Rat).Add(a.Value, term)
				p := new(big.Rat).Mul(a.Prob, new(big.Rat).SetFloat64(probs[i][j]))
				key := sum.RatString()
				if ex, ok := next[key]; ok {
					ex.Prob.Add(ex.Prob, p)
				} else {
					next[key] = &Atom{Value: sum, Prob: p}
				}
			}
		}
		acc = next
	}
	return normalize(acc)
}

// Mixture returns the exact credibility-weighted opinion pool
// Σ_k w̄_k·p_k(v) with w̄ = w/Σw, pooling atoms on exact rational
// equality and normalizing at the end. Zero-weight components are
// skipped, mirroring dist.Mixture.
func Mixture(values, probs [][]float64, weights []float64) []Atom {
	acc := map[string]*Atom{}
	for k := range values {
		w := new(big.Rat).SetFloat64(weights[k])
		if w.Sign() == 0 {
			continue
		}
		for j, v := range values[k] {
			rv := new(big.Rat).SetFloat64(v)
			p := new(big.Rat).Mul(w, new(big.Rat).SetFloat64(probs[k][j]))
			key := rv.RatString()
			if ex, ok := acc[key]; ok {
				ex.Prob.Add(ex.Prob, p)
			} else {
				acc[key] = &Atom{Value: rv, Prob: p}
			}
		}
	}
	return normalize(acc)
}

// normalize flattens an atom map into a sorted, mass-one law.
//
//lint:allow maporder — atoms are sorted by value right after collection and the mass total is exact big.Rat arithmetic, so map order cannot reach the result
func normalize(acc map[string]*Atom) []Atom {
	atoms := make([]Atom, 0, len(acc))
	total := new(big.Rat)
	for _, a := range acc {
		atoms = append(atoms, *a)
		total.Add(total, a.Prob)
	}
	sort.Slice(atoms, func(i, j int) bool { return atoms[i].Value.Cmp(atoms[j].Value) < 0 })
	if total.Sign() != 0 {
		inv := new(big.Rat).Inv(total)
		for i := range atoms {
			atoms[i].Prob = new(big.Rat).Mul(atoms[i].Prob, inv)
		}
	}
	return atoms
}

// PrBelow returns the exact Pr[X < x] (strict, matching
// dist.Discrete.PrBelow).
func PrBelow(atoms []Atom, x *big.Rat) *big.Rat {
	p := new(big.Rat)
	for _, a := range atoms {
		if a.Value.Cmp(x) < 0 {
			p.Add(p, a.Prob)
		}
	}
	return p
}

// Mean returns the exact E[X].
func Mean(atoms []Atom) *big.Rat {
	m := new(big.Rat)
	for _, a := range atoms {
		m.Add(m, new(big.Rat).Mul(a.Value, a.Prob))
	}
	return m
}

// Variance returns the exact Var[X].
func Variance(atoms []Atom) *big.Rat {
	mean := Mean(atoms)
	v := new(big.Rat)
	for _, a := range atoms {
		dev := new(big.Rat).Sub(a.Value, mean)
		dev.Mul(dev, dev)
		v.Add(v, dev.Mul(dev, a.Prob))
	}
	return v
}
