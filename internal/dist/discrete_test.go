package dist

import (
	"math"
	"testing"

	"github.com/factcheck/cleansel/internal/numeric"
	"github.com/factcheck/cleansel/internal/rng"
)

func TestConstructorMoments(t *testing.T) {
	tests := []struct {
		name     string
		d        *Discrete
		mean     float64
		variance float64
	}{
		{"uniform3", UniformOver([]float64{9, 10, 11}), 10, 2.0 / 3.0},
		{"point", PointMass(42), 42, 0},
		{"bernoulli-half", Bernoulli(0.5), 0.5, 0.25},
		{"bernoulli-quarter", Bernoulli(0.25), 0.25, 0.25 * 0.75},
		{"bernoulli-sure", Bernoulli(1), 1, 0},
		{"two-point", MustDiscrete([]float64{0, 100}, []float64{0.9, 0.1}), 10, 900},
		{"unnormalized", MustDiscrete([]float64{1, 3}, []float64{2, 6}), 2.5, 0.75},
		{"duplicates", MustDiscrete([]float64{5, 5}, []float64{0.3, 0.7}), 5, 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.d.Mean(); !numeric.AlmostEqual(got, tc.mean, 1e-12) {
				t.Fatalf("mean %v, want %v", got, tc.mean)
			}
			if got := tc.d.Variance(); !numeric.AlmostEqual(got, tc.variance, 1e-12) {
				t.Fatalf("variance %v, want %v", got, tc.variance)
			}
			var sum numeric.KahanAcc
			for _, p := range tc.d.Probs {
				sum.Add(p)
			}
			if !numeric.AlmostEqual(sum.Value(), 1, 1e-12) {
				t.Fatalf("probabilities sum to %v", sum.Value())
			}
		})
	}
}

func TestNewDiscreteValidation(t *testing.T) {
	tests := []struct {
		name   string
		values []float64
		probs  []float64
	}{
		{"empty", nil, nil},
		{"length-mismatch", []float64{1, 2}, []float64{1}},
		{"nan-value", []float64{math.NaN()}, []float64{1}},
		{"inf-value", []float64{math.Inf(1)}, []float64{1}},
		{"negative-prob", []float64{1, 2}, []float64{0.5, -0.5}},
		{"nan-prob", []float64{1}, []float64{math.NaN()}},
		{"inf-prob", []float64{1}, []float64{math.Inf(1)}},
		{"zero-mass", []float64{1, 2}, []float64{0, 0}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewDiscrete(tc.values, tc.probs); err == nil {
				t.Fatal("invalid input accepted")
			}
		})
	}
	if d, err := NewDiscrete([]float64{7}, []float64{3}); err != nil || d.Probs[0] != 1 {
		t.Fatalf("valid input rejected: %v %v", d, err)
	}
}

func TestMustDiscreteAndBernoulliPanic(t *testing.T) {
	assertPanics(t, func() { MustDiscrete(nil, nil) })
	assertPanics(t, func() { Bernoulli(-0.1) })
	assertPanics(t, func() { Bernoulli(1.1) })
	assertPanics(t, func() { LogNormalQuantized(0, 4) })
	assertPanics(t, func() { LogNormalQuantized(0.5, 0) })
}

func assertPanics(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

func TestProbAndPrBelow(t *testing.T) {
	d := MustDiscrete([]float64{1, 2, 2, 4}, []float64{0.1, 0.2, 0.3, 0.4})
	if got := d.Prob(2); !numeric.AlmostEqual(got, 0.5, 1e-12) {
		t.Fatalf("Prob(2) = %v, want duplicate mass 0.5", got)
	}
	if got := d.Prob(3); got != 0 {
		t.Fatalf("Prob(3) = %v, want 0", got)
	}
	if got := d.PrBelow(2); !numeric.AlmostEqual(got, 0.1, 1e-12) {
		t.Fatalf("PrBelow(2) = %v, want strict 0.1", got)
	}
	if got := d.PrBelow(4.5); !numeric.AlmostEqual(got, 1, 1e-12) {
		t.Fatalf("PrBelow(4.5) = %v, want 1", got)
	}
	if got := d.PrBelow(-1); got != 0 {
		t.Fatalf("PrBelow(-1) = %v, want 0", got)
	}
}

func TestLenSizeClone(t *testing.T) {
	d := UniformOver([]float64{1, 2, 3})
	if d.Len() != 3 || d.Size() != 3 {
		t.Fatalf("Len/Size = %d/%d", d.Len(), d.Size())
	}
	c := d.Clone()
	c.Values[0] = 99
	c.Probs[0] = 0
	if d.Values[0] != 1 || d.Probs[0] != 1.0/3.0 {
		t.Fatal("Clone aliases the original")
	}
}

func TestSampleDeterministicUnderSeed(t *testing.T) {
	d := MustDiscrete([]float64{-1, 0, 3, 7}, []float64{0.1, 0.4, 0.3, 0.2})
	a := rng.New(1234)
	b := rng.New(1234)
	for i := 0; i < 200; i++ {
		if va, vb := d.Sample(a), d.Sample(b); va != vb {
			t.Fatalf("draw %d diverged: %v vs %v", i, va, vb)
		}
	}
}

func TestSampleFrequenciesMatchProbs(t *testing.T) {
	d := MustDiscrete([]float64{-1, 0, 3, 7}, []float64{0.1, 0.4, 0.3, 0.2})
	r := rng.New(99)
	const n = 200000
	counts := map[float64]int{}
	for i := 0; i < n; i++ {
		counts[d.Sample(r)]++
	}
	for j, v := range d.Values {
		got := float64(counts[v]) / n
		if math.Abs(got-d.Probs[j]) > 0.01 {
			t.Fatalf("value %v frequency %v, want ≈ %v", v, got, d.Probs[j])
		}
	}
}

func TestSamplePointMassAndZeroProbAtoms(t *testing.T) {
	r := rng.New(5)
	p := PointMass(3)
	for i := 0; i < 10; i++ {
		if p.Sample(r) != 3 {
			t.Fatal("point mass sampled elsewhere")
		}
	}
	// A trailing zero-probability atom must never be drawn.
	d := MustDiscrete([]float64{1, 2}, []float64{1, 0})
	for i := 0; i < 200; i++ {
		if d.Sample(r) != 1 {
			t.Fatal("zero-probability atom drawn")
		}
	}
}

// wideDiscrete builds a support large enough to engage the sorted-index
// fast path, with duplicates and a zero-mass atom mixed in, in an order
// that is deliberately not sorted.
func wideDiscrete(t *testing.T, n int) *Discrete {
	t.Helper()
	values := make([]float64, n)
	probs := make([]float64, n)
	r := rng.New(7)
	for i := range values {
		values[i] = math.Floor(r.Float64()*20) - 10 // many duplicates
		probs[i] = r.Float64()
	}
	probs[n/2] = 0
	d, err := NewDiscrete(values, probs)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestWideSupportMatchesLinearScan(t *testing.T) {
	d := wideDiscrete(t, 10*smallSupport)
	queries := append(append([]float64(nil), d.Values...),
		-100, 100, 0.5, math.Inf(1), math.Inf(-1), math.NaN())
	for _, v := range queries {
		var prob, below numeric.KahanAcc
		for j, sv := range d.Values {
			if sv == v {
				prob.Add(d.Probs[j])
			}
			if sv < v {
				below.Add(d.Probs[j])
			}
		}
		if got := d.Prob(v); !numeric.AlmostEqual(got, prob.Value(), 1e-12) {
			t.Fatalf("Prob(%v) = %v, want %v", v, got, prob.Value())
		}
		if got := d.PrBelow(v); !numeric.AlmostEqual(got, below.Value(), 1e-12) {
			t.Fatalf("PrBelow(%v) = %v, want %v", v, got, below.Value())
		}
	}
}

func TestWideSupportSampleMatchesLinearScan(t *testing.T) {
	d := wideDiscrete(t, 10*smallSupport)
	ref, scan := rng.New(321), rng.New(321)
	for i := 0; i < 5000; i++ {
		// Reference: the pre-index inverse-CDF linear scan.
		u := ref.Float64()
		want := math.NaN()
		cum := 0.0
		for j, p := range d.Probs {
			cum += p
			if u < cum {
				want = d.Values[j]
				break
			}
		}
		if math.IsNaN(want) {
			want = d.Values[len(d.Values)-1]
		}
		if got := d.Sample(scan); got != want {
			t.Fatalf("draw %d: %v, want %v", i, got, want)
		}
	}
}

func TestWideSupportConcurrentQueries(t *testing.T) {
	// First queries race to build the index; all must agree.
	d := wideDiscrete(t, 10*smallSupport)
	want := 0.0
	for j, sv := range d.Values {
		if sv < 0 {
			want += d.Probs[j]
		}
	}
	done := make(chan float64, 8)
	for g := 0; g < 8; g++ {
		go func() { done <- d.PrBelow(0) }()
	}
	for g := 0; g < 8; g++ {
		if got := <-done; !numeric.AlmostEqual(got, want, 1e-9) {
			t.Fatalf("concurrent PrBelow(0) = %v, want %v", got, want)
		}
	}
}

// benchWide builds a 4096-atom law for the index-path benchmarks.
func benchWide(b *testing.B) *Discrete {
	b.Helper()
	n := 4096
	values := make([]float64, n)
	probs := make([]float64, n)
	r := rng.New(11)
	for i := range values {
		values[i] = r.Float64() * 1e6
		probs[i] = r.Float64()
	}
	d, err := NewDiscrete(values, probs)
	if err != nil {
		b.Fatal(err)
	}
	return d
}

func BenchmarkPrBelowWide(b *testing.B) {
	d := benchWide(b)
	d.PrBelow(0) // build the index outside the timer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.PrBelow(float64(i%1000) * 1e3)
	}
}

func BenchmarkSampleWide(b *testing.B) {
	d := benchWide(b)
	r := rng.New(13)
	d.Sample(r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Sample(r)
	}
}

func TestLogNormalQuantized(t *testing.T) {
	for _, k := range []int{1, 2, 5, 6} {
		d := LogNormalQuantized(0.7, k)
		if d.Size() != k {
			t.Fatalf("k=%d: size %d", k, d.Size())
		}
		for j, v := range d.Values {
			if v <= 0 {
				t.Fatalf("k=%d: non-positive value %v", k, v)
			}
			if d.Probs[j] != 1/float64(k) {
				t.Fatalf("k=%d: probability %v not equal-weight", k, d.Probs[j])
			}
			if j > 0 && v <= d.Values[j-1] {
				t.Fatalf("k=%d: values not strictly increasing", k)
			}
		}
	}
	// The median atom of an odd quantization is exp(0) = 1.
	d := LogNormalQuantized(0.7, 5)
	if got := d.Values[2]; !numeric.AlmostEqual(got, 1, 1e-12) {
		t.Fatalf("median atom %v, want 1", got)
	}
}

func TestDiscreteSampleRespectsDistributionShift(t *testing.T) {
	// Two disjoint supports sampled from split streams of one seed stay
	// reproducible — the per-goroutine idiom the Monte-Carlo engines use.
	d1 := UniformOver([]float64{0, 1})
	d2 := UniformOver([]float64{10, 20, 30})
	root := rng.New(2024)
	s1, s2 := root.Split(), root.Split()
	root2 := rng.New(2024)
	t1, t2 := root2.Split(), root2.Split()
	for i := 0; i < 50; i++ {
		if d1.Sample(s1) != d1.Sample(t1) || d2.Sample(s2) != d2.Sample(t2) {
			t.Fatal("split streams diverged")
		}
	}
}
