package dist

import (
	"errors"
	"fmt"
	"math"

	"github.com/factcheck/cleansel/internal/numeric"
	"github.com/factcheck/cleansel/internal/obs"
)

// convStats counts the elementary work of one pooling or convolution:
// ops is the number of atom products visited, merged the number that
// collided with an existing grid key. The counts are write-only
// observability — nothing reads them back into the computation.
type convStats struct {
	ops    int64
	merged int64
}

// report ticks the stats into a recorder (nil-safe).
func (st *convStats) report(rec *obs.Recorder) {
	rec.Add("conv_ops", st.ops)
	rec.Add("conv_atoms_merged", st.merged)
}

// Mixture pools conflicting source laws for one object into the
// credibility-weighted opinion pool Σ_k w̄_k·p_k(v) with w̄ = w/Σw (the
// §2.1 discussion of merging source reports). Weights must be
// non-negative with positive total. Atoms that collide on the pooling
// grid merge — the same regime ladder WeightedSum convolves on (legacy
// 1e-9 grid inside ±1e8, exact dyadic grid for integral/dyadic atoms,
// relative quantization otherwise; see poolGrid), so two sources
// reporting the same quantity up to round-off pool into one atom
// instead of two spuriously distinct ones. Each merged atom keeps the
// first exact value seen; the pooled support comes out sorted
// ascending.
func Mixture(dists []*Discrete, weights []float64) (*Discrete, error) {
	return mixture(nil, dists, weights)
}

// MixtureRec is Mixture with write-only trace counters: the pooled
// atom count and grid-collision merges tick into rec (nil rec is the
// plain Mixture). The returned law is bit-identical either way.
func MixtureRec(rec *obs.Recorder, dists []*Discrete, weights []float64) (*Discrete, error) {
	if rec == nil {
		return mixture(nil, dists, weights)
	}
	var st convStats
	d, err := mixture(&st, dists, weights)
	st.report(rec)
	return d, err
}

func mixture(st *convStats, dists []*Discrete, weights []float64) (*Discrete, error) {
	if len(dists) == 0 {
		return nil, errors.New("dist: Mixture needs at least one component")
	}
	if len(dists) != len(weights) {
		return nil, fmt.Errorf("dist: %d components vs %d weights", len(dists), len(weights))
	}
	var wsum numeric.KahanAcc
	for k, w := range weights {
		if dists[k] == nil {
			return nil, fmt.Errorf("dist: component %d is nil", k)
		}
		if math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
			return nil, fmt.Errorf("dist: weight %d is %v", k, w)
		}
		wsum.Add(w)
	}
	if wsum.Value() <= 0 {
		return nil, errors.New("dist: Mixture weights sum to zero")
	}
	grid := poolGrid(dists, weights)
	groups := make([]poolGroup, 0, len(dists))
	for k, d := range dists {
		if weights[k] == 0 {
			continue
		}
		groups = append(groups, poolGroup{values: d.Values, probs: d.Probs, w: weights[k]})
	}
	values, masses := poolOnGrid(st, grid, groups)
	return NewDiscrete(values, masses)
}

// WeightedSum returns the exact law of D = offset + Σ_i weights[i]·X_i
// for independent discrete X_i — the drop variable of Eq. (2), built by
// support convolution. Sums that collide on the quantization grid merge,
// which keeps the state space at the number of distinct outcomes rather
// than the raw product. Callers bound the product of support sizes
// beforehand; see maxpr.DiscreteAffine.
//
// The grid is chosen per convolution from the reachable magnitude
// |offset| + Σ|wᵢ|·max|Xᵢ| (see ConvGrid):
//
//   - reach ≤ numeric.QuantizeMaxAbs: the legacy fixed 1e-9 grid,
//     bit-identical with every result the library ever produced there;
//   - integral supports (or integral after scaling by a common
//     power-of-two denominator) with reach·scale ≤ 2^53: an exact
//     integer grid — zero rounding at any magnitude, so integer-count
//     datasets in the 1e9..1e15 range convolve exactly;
//   - everything else: relative quantization on the finest power-of-ten
//     grid whose keys fit ±numeric.GridKeyMax, pinning the relative
//     resolution at the top of the range to ~1e-15 — at the round-off
//     float64 arithmetic itself accumulates.
//
// Merged outcomes keep the first exact sum seen, so the grid never
// perturbs a support value by more than one resolution. The only
// magnitude WeightedSum still rejects is a reach that overflows float64
// entirely.
func WeightedSum(offset float64, weights []float64, parts []*Discrete) (*Discrete, error) {
	return weightedSum(nil, offset, weights, parts)
}

// WeightedSumRec is WeightedSum with write-only trace counters: the
// number of atom products convolved and the grid-collision merges tick
// into rec (nil rec is the plain WeightedSum). The returned law is
// bit-identical either way.
func WeightedSumRec(rec *obs.Recorder, offset float64, weights []float64, parts []*Discrete) (*Discrete, error) {
	if rec == nil {
		return weightedSum(nil, offset, weights, parts)
	}
	var st convStats
	d, err := weightedSum(&st, offset, weights, parts)
	st.report(rec)
	return d, err
}

func weightedSum(st *convStats, offset float64, weights []float64, parts []*Discrete) (*Discrete, error) {
	grid, reach, err := ConvGrid(offset, weights, parts)
	if err != nil {
		return nil, err
	}
	if lat, ok := weightedSumLattice(offset, weights, parts, grid, reach); ok {
		return weightedSumDense(st, offset, weights, parts, lat)
	}
	return weightedSumMap(st, grid, offset, weights, parts)
}

// weightedSumMap is the hashed-key convolution: the general path for
// supports the dense certificate rejects (non-dyadic values, relative
// grids, sparse wide spans), and the reference the dense kernel is
// fuzz-pinned against.
func weightedSumMap(st *convStats, grid numeric.Grid, offset float64, weights []float64, parts []*Discrete) (*Discrete, error) {
	probs := map[int64]float64{grid.Key(offset): 1}
	vals := map[int64]float64{grid.Key(offset): offset}
	for i, part := range parts {
		if weights[i] == 0 {
			continue
		}
		// The raw product is only an upper bound on the layer size (and
		// can overflow int); mapSizeHint caps the pre-allocation.
		nextProbs := make(map[int64]float64, mapSizeHint(len(probs), part.Size()))
		nextVals := make(map[int64]float64, mapSizeHint(len(probs), part.Size()))
		// Sorted iteration: several source atoms can land on one
		// destination key, and the += below must add them in a fixed
		// order for the sum to be bit-stable across runs.
		for _, key := range numeric.SortedKeys(probs) {
			p := probs[key]
			base := vals[key]
			for j, v := range part.Values {
				s := base + weights[i]*v
				k := grid.Key(s)
				if _, seen := nextVals[k]; !seen {
					nextVals[k] = s
				} else if st != nil {
					st.merged++
				}
				if st != nil {
					st.ops++
				}
				nextProbs[k] += p * part.Probs[j]
			}
		}
		probs, vals = nextProbs, nextVals
	}
	keys := numeric.SortedKeys(probs)
	values := make([]float64, len(keys))
	ps := make([]float64, len(keys))
	for i, k := range keys {
		values[i] = vals[k]
		ps[i] = probs[k]
	}
	return NewDiscrete(values, ps)
}

// poolGrid chooses Mixture's pooling grid with the same regime ladder
// as ConvGrid, over the pooled atoms themselves (pooling never scales a
// value, so there are no weight products to consider): the legacy grid
// inside ±QuantizeMaxAbs, the exact dyadic grid when every atom is
// integral after a common power-of-two scaling, and relative
// quantization otherwise.
func poolGrid(dists []*Discrete, weights []float64) numeric.Grid {
	var reach float64
	for k, d := range dists {
		if weights[k] == 0 {
			continue
		}
		for _, v := range d.Values {
			if a := math.Abs(v); a > reach {
				reach = a
			}
		}
	}
	if reach <= numeric.QuantizeMaxAbs {
		return numeric.DefaultGrid()
	}
	shift := 0
	for k, d := range dists {
		if weights[k] == 0 {
			continue
		}
		for _, v := range d.Values {
			s, ok := dyadicShift(v)
			if !ok {
				return numeric.GridFor(reach)
			}
			if s > shift {
				shift = s
			}
		}
	}
	scale := float64(int64(1) << shift)
	if reach*scale > maxExactInt {
		return numeric.GridFor(reach)
	}
	return numeric.ExactGrid(scale)
}

// maxDyadicShift bounds the common-denominator search of the exact
// integer path: supports integral after scaling by 2^k for some
// k ≤ maxDyadicShift (denominators up to 4096 — halves, quarters,
// dyadic rates) qualify. Scaling a float by a power of two is lossless,
// which is what makes the detected path provably exact.
const maxDyadicShift = 12

// maxExactInt is the largest magnitude at which float64 represents every
// integer exactly (2^53); integer-grid convolutions are exact while
// reach·scale stays within it.
const maxExactInt = 1 << 53

// ConvGrid validates the inputs and returns the quantization grid
// WeightedSum will convolve on, together with the reachable magnitude
// |offset| + Σ|wᵢ|·max|Xᵢ| the choice was derived from. Exposed so tests
// and diagnostics can reason about the resolution a given workload gets.
func ConvGrid(offset float64, weights []float64, parts []*Discrete) (numeric.Grid, float64, error) {
	if len(weights) != len(parts) {
		return numeric.Grid{}, 0, fmt.Errorf("dist: %d weights vs %d parts", len(weights), len(parts))
	}
	if math.IsNaN(offset) || math.IsInf(offset, 0) {
		return numeric.Grid{}, 0, fmt.Errorf("dist: offset %v must be finite", offset)
	}
	reach := math.Abs(offset)
	for i, w := range weights {
		if parts[i] == nil {
			return numeric.Grid{}, 0, fmt.Errorf("dist: part %d is nil", i)
		}
		if math.IsNaN(w) || math.IsInf(w, 0) {
			return numeric.Grid{}, 0, fmt.Errorf("dist: weight %d is %v", i, w)
		}
		var maxAbs float64
		for _, v := range parts[i].Values {
			if a := math.Abs(v); a > maxAbs {
				maxAbs = a
			}
		}
		reach += math.Abs(w) * maxAbs
	}
	if math.IsInf(reach, 0) {
		return numeric.Grid{}, 0, fmt.Errorf(
			"dist: WeightedSum reachable magnitude overflows float64; rescale the weights or supports (the law of c·D determines the law of D exactly)")
	}
	if reach <= numeric.QuantizeMaxAbs {
		// The historical regime: every figure ever produced used this
		// grid, and within the bound it is exact — keep it bit-identical.
		return numeric.DefaultGrid(), reach, nil
	}
	if scale, ok := exactPow2Scale(offset, reach, weights, parts); ok {
		return numeric.ExactGrid(scale), reach, nil
	}
	return numeric.GridFor(reach), reach, nil
}

// exactPow2Scale looks for the smallest power-of-two scale making the
// offset and every weighted support value integral, so the convolution
// can run on an exact integer grid. The products weights[i]·v are tested
// because those are the exact terms the convolution adds.
func exactPow2Scale(offset, reach float64, weights []float64, parts []*Discrete) (float64, bool) {
	shift, ok := dyadicShift(offset)
	if !ok {
		return 0, false
	}
	for i, w := range weights {
		if w == 0 {
			continue
		}
		for _, v := range parts[i].Values {
			s, ok := dyadicShift(w * v)
			if !ok {
				return 0, false
			}
			if s > shift {
				shift = s
			}
		}
	}
	scale := float64(int64(1) << shift)
	if reach*scale > maxExactInt {
		return 0, false
	}
	return scale, true
}

// dyadicShift returns the smallest k ≤ maxDyadicShift with x·2^k
// integral. Multiplying by 2^k only adjusts the exponent, so the test is
// exact.
//
//lint:allow floateq — both compares are exact-representation predicates: Trunc(x·2^k)==x·2^k tests integrality after an exponent-only shift, and σ²!=0 tests underflow to literal zero
func dyadicShift(x float64) (int, bool) {
	s := 1.0
	for k := 0; k <= maxDyadicShift; k++ {
		if xs := x * s; math.Trunc(xs) == xs {
			return k, true
		}
		s *= 2
	}
	return 0, false
}

// FuseNormals resolves independent normal reports of the same quantity
// by precision weighting (§2.1 discussion of conflicting sources): with
// precisions λ_i = 1/σ_i², the fused law is N(Σλ_iμ_i / Σλ_i, 1/Σλ_i).
// Its variance is strictly below every input's when two or more
// uncertain reports are fused. A zero-sigma report is exact and
// dominates; two exact reports that disagree are contradictory and
// return an error.
func FuseNormals(reports []Normal) (Normal, error) {
	if len(reports) == 0 {
		return Normal{}, errors.New("dist: FuseNormals needs at least one report")
	}
	for i, n := range reports {
		if math.IsNaN(n.Mu) || math.IsInf(n.Mu, 0) || math.IsNaN(n.Sigma) || math.IsInf(n.Sigma, 0) || n.Sigma < 0 {
			return Normal{}, fmt.Errorf("dist: report %d is not a valid normal (mu %v, sigma %v)", i, n.Mu, n.Sigma)
		}
	}
	if len(reports) == 1 {
		return reports[0], nil
	}
	exact := false
	var exactMu float64
	for _, n := range reports {
		// A sigma whose square underflows to zero carries effectively
		// infinite precision; treat it as exact so the weighting below
		// never divides by zero.
		if n.Sigma*n.Sigma != 0 {
			continue
		}
		if exact && exactMu != n.Mu {
			return Normal{}, fmt.Errorf("dist: contradictory exact reports %v and %v", exactMu, n.Mu)
		}
		exact = true
		exactMu = n.Mu
	}
	if exact {
		return Normal{Mu: exactMu, Sigma: 0}, nil
	}
	var lambda, weighted numeric.KahanAcc
	for _, n := range reports {
		l := 1 / (n.Sigma * n.Sigma)
		lambda.Add(l)
		weighted.Add(l * n.Mu)
	}
	return Normal{
		Mu:    weighted.Value() / lambda.Value(),
		Sigma: math.Sqrt(1 / lambda.Value()),
	}, nil
}
