package dist

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"github.com/factcheck/cleansel/internal/numeric"
)

// Mixture pools conflicting source laws for one object into the
// credibility-weighted opinion pool Σ_k w̄_k·p_k(v) with w̄ = w/Σw (the
// §2.1 discussion of merging source reports). Weights must be
// non-negative with positive total. Atoms that are exactly equal across
// sources merge; the pooled support comes out sorted ascending.
func Mixture(dists []*Discrete, weights []float64) (*Discrete, error) {
	if len(dists) == 0 {
		return nil, errors.New("dist: Mixture needs at least one component")
	}
	if len(dists) != len(weights) {
		return nil, fmt.Errorf("dist: %d components vs %d weights", len(dists), len(weights))
	}
	var wsum numeric.KahanAcc
	for k, w := range weights {
		if dists[k] == nil {
			return nil, fmt.Errorf("dist: component %d is nil", k)
		}
		if math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
			return nil, fmt.Errorf("dist: weight %d is %v", k, w)
		}
		wsum.Add(w)
	}
	if wsum.Value() <= 0 {
		return nil, errors.New("dist: Mixture weights sum to zero")
	}
	pooled := map[float64]float64{}
	for k, d := range dists {
		if weights[k] == 0 {
			continue
		}
		for j, v := range d.Values {
			pooled[v] += weights[k] * d.Probs[j]
		}
	}
	values, probs := sortedAtoms(pooled)
	return NewDiscrete(values, probs)
}

// WeightedSum returns the exact law of D = offset + Σ_i weights[i]·X_i
// for independent discrete X_i — the drop variable of Eq. (2), built by
// support convolution. Sums that collide within 1e-9 merge (the same
// quantization the entropy engine uses), which keeps the state space at
// the number of distinct outcomes rather than the raw product. Callers
// bound the product of support sizes beforehand; see
// maxpr.DiscreteAffine.
//
// The quantization grid is only exact while every reachable sum stays
// inside ±numeric.QuantizeMaxAbs (≈1e8): beyond that the float64
// spacing overtakes the 1e-9 resolution and distinct outcomes can
// silently merge. WeightedSum bounds the reachable magnitude up front
// (|offset| + Σ|wᵢ|·max|Xᵢ|) and returns a descriptive error instead
// of a degraded law when the bound is exceeded — rescale the claim or
// the data (the law of c·D determines the law of D exactly).
func WeightedSum(offset float64, weights []float64, parts []*Discrete) (*Discrete, error) {
	if len(weights) != len(parts) {
		return nil, fmt.Errorf("dist: %d weights vs %d parts", len(weights), len(parts))
	}
	if math.IsNaN(offset) || math.IsInf(offset, 0) {
		return nil, fmt.Errorf("dist: offset %v must be finite", offset)
	}
	reach := math.Abs(offset)
	for i, w := range weights {
		if parts[i] == nil {
			return nil, fmt.Errorf("dist: part %d is nil", i)
		}
		if math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("dist: weight %d is %v", i, w)
		}
		var maxAbs float64
		for _, v := range parts[i].Values {
			if a := math.Abs(v); a > maxAbs {
				maxAbs = a
			}
		}
		reach += math.Abs(w) * maxAbs
	}
	if reach > numeric.QuantizeMaxAbs {
		return nil, fmt.Errorf(
			"dist: WeightedSum reachable magnitude %.3g exceeds the quantization grid's exact range ±%g; rescale the weights or supports (e.g. convolve c·X for small c) to stay within it",
			reach, float64(numeric.QuantizeMaxAbs))
	}
	// vals keeps the first exact sum seen for each quantized key so the
	// grid never perturbs a support value by more than one round-off.
	probs := map[int64]float64{numeric.QuantizeKey(offset): 1}
	vals := map[int64]float64{numeric.QuantizeKey(offset): offset}
	for i, part := range parts {
		if weights[i] == 0 {
			continue
		}
		nextProbs := make(map[int64]float64, len(probs)*part.Size())
		nextVals := make(map[int64]float64, len(probs)*part.Size())
		for key, p := range probs {
			base := vals[key]
			for j, v := range part.Values {
				s := base + weights[i]*v
				k := numeric.QuantizeKey(s)
				if _, seen := nextVals[k]; !seen {
					nextVals[k] = s
				}
				nextProbs[k] += p * part.Probs[j]
			}
		}
		probs, vals = nextProbs, nextVals
	}
	keys := numeric.SortedKeys(probs)
	values := make([]float64, len(keys))
	ps := make([]float64, len(keys))
	for i, k := range keys {
		values[i] = vals[k]
		ps[i] = probs[k]
	}
	return NewDiscrete(values, ps)
}

// FuseNormals resolves independent normal reports of the same quantity
// by precision weighting (§2.1 discussion of conflicting sources): with
// precisions λ_i = 1/σ_i², the fused law is N(Σλ_iμ_i / Σλ_i, 1/Σλ_i).
// Its variance is strictly below every input's when two or more
// uncertain reports are fused. A zero-sigma report is exact and
// dominates; two exact reports that disagree are contradictory and
// return an error.
func FuseNormals(reports []Normal) (Normal, error) {
	if len(reports) == 0 {
		return Normal{}, errors.New("dist: FuseNormals needs at least one report")
	}
	for i, n := range reports {
		if math.IsNaN(n.Mu) || math.IsInf(n.Mu, 0) || math.IsNaN(n.Sigma) || math.IsInf(n.Sigma, 0) || n.Sigma < 0 {
			return Normal{}, fmt.Errorf("dist: report %d is not a valid normal (mu %v, sigma %v)", i, n.Mu, n.Sigma)
		}
	}
	if len(reports) == 1 {
		return reports[0], nil
	}
	exact := false
	var exactMu float64
	for _, n := range reports {
		// A sigma whose square underflows to zero carries effectively
		// infinite precision; treat it as exact so the weighting below
		// never divides by zero.
		if n.Sigma*n.Sigma != 0 {
			continue
		}
		if exact && exactMu != n.Mu {
			return Normal{}, fmt.Errorf("dist: contradictory exact reports %v and %v", exactMu, n.Mu)
		}
		exact = true
		exactMu = n.Mu
	}
	if exact {
		return Normal{Mu: exactMu, Sigma: 0}, nil
	}
	var lambda, weighted numeric.KahanAcc
	for _, n := range reports {
		l := 1 / (n.Sigma * n.Sigma)
		lambda.Add(l)
		weighted.Add(l * n.Mu)
	}
	return Normal{
		Mu:    weighted.Value() / lambda.Value(),
		Sigma: math.Sqrt(1 / lambda.Value()),
	}, nil
}

// sortedAtoms flattens an atom→mass map into parallel slices sorted by
// value ascending.
func sortedAtoms(m map[float64]float64) (values, probs []float64) {
	values = make([]float64, 0, len(m))
	for v := range m {
		values = append(values, v)
	}
	sort.Float64s(values)
	probs = make([]float64, len(values))
	for i, v := range values {
		probs[i] = m[v]
	}
	return values, probs
}
