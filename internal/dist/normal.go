package dist

import (
	"fmt"
	"math"

	"github.com/factcheck/cleansel/internal/rng"
)

// Normal is the Gaussian error model X ~ N(Mu, Sigma²) of §2.1: the
// database's reported estimate is the mean, the published standard error
// is Sigma. It is a small value type — copy freely. Sigma = 0 is the
// degenerate point mass at Mu.
type Normal struct {
	Mu    float64
	Sigma float64
}

// NewNormal builds a validated normal law. Sigma must be finite and
// non-negative; zero is allowed (Lemma 3.3's deterministic edge cases).
func NewNormal(mu, sigma float64) (Normal, error) {
	if math.IsNaN(mu) || math.IsInf(mu, 0) {
		return Normal{}, fmt.Errorf("dist: normal mean %v must be finite", mu)
	}
	if math.IsNaN(sigma) || math.IsInf(sigma, 0) || sigma < 0 {
		return Normal{}, fmt.Errorf("dist: normal sigma %v must be finite and non-negative", sigma)
	}
	return Normal{Mu: mu, Sigma: sigma}, nil
}

// Mean returns E[X] = Mu.
func (n Normal) Mean() float64 { return n.Mu }

// Variance returns Var[X] = Sigma².
func (n Normal) Variance() float64 { return n.Sigma * n.Sigma }

// Sample draws from N(Mu, Sigma²) using the generator's Box-Muller
// stream; a fixed seed reproduces the draw sequence exactly.
func (n Normal) Sample(r *rng.RNG) float64 {
	if n.Sigma == 0 {
		return n.Mu
	}
	return r.Normal(n.Mu, n.Sigma)
}

// Discretize returns the k-point equal-probability discretization used
// when an exact discrete engine needs a finite support (§4.2 feeds the
// CDC normals to the group engines this way): point j sits at the
// conditional bin center Mu + Sigma·Φ⁻¹((j+1/2)/k). The quantile grid is
// exactly symmetric, so the discretized mean equals Mu; the variance is
// slightly below Sigma² and converges to it as k grows. A zero-Sigma
// model discretizes to its point mass regardless of k.
func (n Normal) Discretize(k int) *Discrete {
	if n.Sigma == 0 {
		return PointMass(n.Mu)
	}
	zs := symmetricQuantiles(k)
	values := make([]float64, k)
	probs := make([]float64, k)
	for j, z := range zs {
		values[j] = n.Mu + n.Sigma*z
		probs[j] = 1 / float64(k)
	}
	return MustDiscrete(values, probs)
}
