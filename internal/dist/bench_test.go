package dist

import (
	"testing"

	"github.com/factcheck/cleansel/internal/rng"
)

// BenchmarkWeightedSumWide convolves a reach≈1e12 integer workload —
// eight 4-point integer supports around 1e11 — on the exact integer
// grid (the scale-aware regime the fixed 1e-9 grid used to reject).
// scripts/bench.sh records it into BENCH_parallel.json so regressions
// in the wide-magnitude hot path are visible next to the parallel
// numbers.
func BenchmarkWeightedSumWide(b *testing.B) {
	r := rng.New(7)
	const nParts = 8
	parts := make([]*Discrete, nParts)
	weights := make([]float64, nParts)
	for i := range parts {
		vals := make([]float64, 4)
		for j := range vals {
			vals[j] = float64(r.IntRange(-1000, 1001)) * 1e8
		}
		parts[i] = UniformOver(vals)
		weights[i] = float64(r.IntRange(1, 3))
	}
	g, reach, err := ConvGrid(12345, weights, parts)
	if err != nil {
		b.Fatal(err)
	}
	if reach < 1e11 || g.IsDefault() {
		b.Fatalf("workload not wide: reach %v, scale %v", reach, g.Scale())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := WeightedSum(12345, weights, parts); err != nil {
			b.Fatal(err)
		}
	}
}
