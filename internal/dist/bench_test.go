package dist

import (
	"testing"

	"github.com/factcheck/cleansel/internal/rng"
)

// wideConvWorkload builds the reach≈1e12 integer workload the wide
// benchmarks (and the BENCH_parallel.json dense-vs-map gate) share:
// eight 4-point integer supports around 1e11 on the exact integer grid
// — the scale-aware regime the fixed 1e-9 grid used to reject, and a
// shape whose 4^8 product state space collapses onto a ~3e4-cell dense
// lattice once the common 1e8 factor is divided out.
func wideConvWorkload() (offset float64, weights []float64, parts []*Discrete) {
	r := rng.New(7)
	const nParts = 8
	parts = make([]*Discrete, nParts)
	weights = make([]float64, nParts)
	for i := range parts {
		vals := make([]float64, 4)
		for j := range vals {
			vals[j] = float64(r.IntRange(-1000, 1001)) * 1e8
		}
		parts[i] = UniformOver(vals)
		weights[i] = float64(r.IntRange(1, 3))
	}
	return 12345, weights, parts
}

// BenchmarkWeightedSumWide convolves the wide integer workload through
// the public path (the dense kernel, since the shape certifies).
// scripts/bench.sh records it into BENCH_parallel.json so regressions
// in the wide-magnitude hot path are visible next to the parallel
// numbers.
func BenchmarkWeightedSumWide(b *testing.B) {
	offset, weights, parts := wideConvWorkload()
	g, reach, err := ConvGrid(offset, weights, parts)
	if err != nil {
		b.Fatal(err)
	}
	if reach < 1e11 || g.IsDefault() {
		b.Fatalf("workload not wide: reach %v, scale %v", reach, g.Scale())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := WeightedSum(offset, weights, parts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWeightedSumDense is the dense side of the BENCH_parallel.json
// dense-vs-map speedup row: BenchmarkWeightedSumWide's workload shape,
// asserted onto the dense lattice kernel.
func BenchmarkWeightedSumDense(b *testing.B) {
	offset, weights, parts := wideConvWorkload()
	grid, reach, err := ConvGrid(offset, weights, parts)
	if err != nil {
		b.Fatal(err)
	}
	if _, ok := weightedSumLattice(offset, weights, parts, grid, reach); !ok {
		b.Fatal("workload does not certify for the dense kernel")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := WeightedSum(offset, weights, parts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWeightedSumMap forces the same workload down the hashed-map
// path: the denominator of the dense-vs-map speedup gate (≥5× floor,
// enforced by scripts/bench.sh).
func BenchmarkWeightedSumMap(b *testing.B) {
	offset, weights, parts := wideConvWorkload()
	grid, _, err := ConvGrid(offset, weights, parts)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := weightedSumMap(nil, grid, offset, weights, parts); err != nil {
			b.Fatal(err)
		}
	}
}
