package dist

import (
	"math"
	"sync"
	"testing"

	"github.com/factcheck/cleansel/internal/numeric"
	"github.com/factcheck/cleansel/internal/obs"
	"github.com/factcheck/cleansel/internal/rng"
)

// assertSameLaw asserts two laws are bit-identical: same support, same
// probabilities, compared on the raw float64 bits (so ±0.0 and exact
// round-off placement both count).
func assertSameLaw(t *testing.T, got, want *Discrete) {
	t.Helper()
	if got.Size() != want.Size() {
		t.Fatalf("support sizes differ: %d vs %d", got.Size(), want.Size())
	}
	for i := range want.Values {
		if math.Float64bits(got.Values[i]) != math.Float64bits(want.Values[i]) {
			t.Fatalf("value %d: %v (%#x) vs %v (%#x)",
				i, got.Values[i], math.Float64bits(got.Values[i]),
				want.Values[i], math.Float64bits(want.Values[i]))
		}
		if math.Float64bits(got.Probs[i]) != math.Float64bits(want.Probs[i]) {
			t.Fatalf("prob %d (value %v): %v vs %v", i, want.Values[i], got.Probs[i], want.Probs[i])
		}
	}
}

// diffWeightedSum runs one convolution through the public path and
// through the forced map path, asserts both laws and both trace-counter
// sets are bit-identical, and reports whether the dense kernel engaged.
func diffWeightedSum(t *testing.T, offset float64, weights []float64, parts []*Discrete) bool {
	t.Helper()
	grid, reach, err := ConvGrid(offset, weights, parts)
	if err != nil {
		t.Fatal(err)
	}
	var stAuto, stMap convStats
	auto, err := weightedSum(&stAuto, offset, weights, parts)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := weightedSumMap(&stMap, grid, offset, weights, parts)
	if err != nil {
		t.Fatal(err)
	}
	assertSameLaw(t, auto, ref)
	if stAuto != stMap {
		t.Fatalf("trace counters diverge: auto %+v vs map %+v", stAuto, stMap)
	}
	_, dense := weightedSumLattice(offset, weights, parts, grid, reach)
	return dense
}

func TestWeightedSumDenseMatchesMap(t *testing.T) {
	cases := []struct {
		name    string
		offset  float64
		weights []float64
		parts   []*Discrete
		dense   bool
	}{
		{
			name:    "legacy grid small integers",
			offset:  3,
			weights: []float64{1, 2, 1},
			parts: []*Discrete{
				UniformOver([]float64{-2, 0, 1, 5}),
				UniformOver([]float64{10, 11, 13}),
				UniformOver([]float64{-7, 7}),
			},
			dense: true,
		},
		{
			name:    "legacy grid dyadic quarters",
			offset:  0.25,
			weights: []float64{1, 1},
			parts: []*Discrete{
				UniformOver([]float64{-0.75, 0.5, 2.25}),
				UniformOver([]float64{0, 0.25, 1}),
			},
			dense: true,
		},
		{
			name:    "exact grid wide integers with common factor",
			offset:  12345,
			weights: []float64{1, 2},
			parts: []*Discrete{
				UniformOver([]float64{-3e10, 1e10, 7e10}),
				UniformOver([]float64{2e10, 5e10}),
			},
			dense: true,
		},
		{
			name:    "colliding sums merge identically",
			offset:  0,
			weights: []float64{1, 1},
			parts: []*Discrete{
				MustDiscrete([]float64{0, 1, 2}, []float64{0.25, 0.5, 0.25}),
				MustDiscrete([]float64{0, 1, 2}, []float64{0.5, 0.25, 0.25}),
			},
			dense: true,
		},
		{
			name:    "zero-probability atoms stay in the support",
			offset:  1,
			weights: []float64{1, 1},
			parts: []*Discrete{
				MustDiscrete([]float64{0, 3}, []float64{1, 0}),
				MustDiscrete([]float64{0, 1}, []float64{0.5, 0.5}),
			},
			dense: true,
		},
		{
			name:    "zero weights drop layers",
			offset:  -4,
			weights: []float64{0, 1, 0},
			parts: []*Discrete{
				UniformOver([]float64{1e300, -1e300}), // skipped entirely
				UniformOver([]float64{1, 2}),
				UniformOver([]float64{5}),
			},
			dense: true,
		},
		{
			name:    "all weights zero",
			offset:  7,
			weights: []float64{0},
			parts:   []*Discrete{UniformOver([]float64{1, 2})},
			dense:   true,
		},
		{
			name:    "negative offset negative values",
			offset:  -1000,
			weights: []float64{3, -2},
			parts: []*Discrete{
				UniformOver([]float64{-5, -1, 4}),
				UniformOver([]float64{-8, 0, 2}),
			},
			dense: true,
		},
		{
			name:    "non-dyadic values fall back",
			offset:  0,
			weights: []float64{1, 1},
			parts: []*Discrete{
				UniformOver([]float64{0.1, 0.2}),
				UniformOver([]float64{1.0 / 3, 2}),
			},
			dense: false,
		},
		{
			name:    "negative-zero offset falls back",
			offset:  math.Copysign(0, -1),
			weights: []float64{1},
			parts:   []*Discrete{UniformOver([]float64{0, 1})},
			dense:   false,
		},
		{
			name:    "sparse wide span falls back on fanout",
			offset:  0,
			weights: []float64{1},
			parts:   []*Discrete{UniformOver([]float64{0, 1, 1e6})},
			dense:   false,
		},
		{
			name:    "legacy grid past exact keys falls back",
			offset:  0,
			weights: []float64{1},
			// reach 9.9e7 ≤ QuantizeMaxAbs keeps the legacy grid, but
			// 9.9e7·1e9 > 2^53 so keys are no longer exact products.
			parts: []*Discrete{UniformOver([]float64{9.9e7, -9.9e7, 1})},
			dense: false,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := diffWeightedSum(t, c.offset, c.weights, c.parts); got != c.dense {
				t.Errorf("dense engagement = %v, want %v", got, c.dense)
			}
		})
	}
}

// TestWeightedSumWideBenchShapeIsDense pins that the workload the
// BENCH_parallel.json speedup gate measures actually runs the dense
// kernel, and bit-identically to the map path.
func TestWeightedSumWideBenchShapeIsDense(t *testing.T) {
	offset, weights, parts := wideConvWorkload()
	if !diffWeightedSum(t, offset, weights, parts) {
		t.Fatal("the wide bench workload no longer takes the dense path")
	}
}

func TestMixtureDenseMatchesMap(t *testing.T) {
	cases := []struct {
		name    string
		weights []float64
		comps   []*Discrete
		dense   bool
	}{
		{
			name:    "integer pool with shared atoms",
			weights: []float64{1, 2, 0.5},
			comps: []*Discrete{
				UniformOver([]float64{1, 2, 3}),
				UniformOver([]float64{2, 3, 4}),
				UniformOver([]float64{0, 4}),
			},
			dense: true,
		},
		{
			name:    "zero-weight component skipped",
			weights: []float64{1, 0},
			comps: []*Discrete{
				UniformOver([]float64{0.5, 1.25}),
				UniformOver([]float64{1e300, -1e300}),
			},
			dense: true,
		},
		{
			name:    "wide integer pool",
			weights: []float64{1, 1},
			comps: []*Discrete{
				UniformOver([]float64{1e12, 3e12}),
				UniformOver([]float64{2e12, 3e12}),
			},
			dense: true,
		},
		{
			name:    "non-dyadic pool falls back",
			weights: []float64{1, 1},
			comps: []*Discrete{
				UniformOver([]float64{0.1, 0.7}),
				UniformOver([]float64{0.3}),
			},
			dense: false,
		},
		{
			name:    "negative-zero atom falls back",
			weights: []float64{1},
			comps:   []*Discrete{UniformOver([]float64{math.Copysign(0, -1), 1})},
			dense:   false,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var stAuto, stMap convStats
			auto, err := mixture(&stAuto, c.comps, c.weights)
			if err != nil {
				t.Fatal(err)
			}
			grid := poolGrid(c.comps, c.weights)
			groups := make([]poolGroup, 0, len(c.comps))
			for k, d := range c.comps {
				if c.weights[k] == 0 {
					continue
				}
				groups = append(groups, poolGroup{values: d.Values, probs: d.Probs, w: c.weights[k]})
			}
			values, masses := poolMap(&stMap, grid, groups)
			ref, err := NewDiscrete(values, masses)
			if err != nil {
				t.Fatal(err)
			}
			assertSameLaw(t, auto, ref)
			if stAuto != stMap {
				t.Fatalf("trace counters diverge: auto %+v vs map %+v", stAuto, stMap)
			}
			_, _, dense := poolDense(nil, grid, groups)
			if dense != c.dense {
				t.Errorf("dense engagement = %v, want %v", dense, c.dense)
			}
		})
	}
}

// TestPoolPMFMatchesMapAccumulation pins the exported pooling bridge
// ev.Entropy collapses its two-pass enumeration through: identical to
// the pmf[grid.Key(v)] += p map accumulation, in ascending key order.
func TestPoolPMFMatchesMapAccumulation(t *testing.T) {
	grid := numeric.GridFor(5e8)
	vals := []float64{3e8, -1e8, 3e8, 0, 5e8, -1e8 + 0.25}
	probs := []float64{0.125, 0.25, 0.125, 0.25, 0.125, 0.125}
	gotVals, gotMasses := PoolPMF(grid, vals, probs)
	pmf := map[int64]float64{}
	first := map[int64]float64{}
	for i, v := range vals {
		k := grid.Key(v)
		if _, ok := first[k]; !ok {
			first[k] = v
		}
		pmf[k] += probs[i]
	}
	keys := numeric.SortedKeys(pmf)
	if len(gotVals) != len(keys) {
		t.Fatalf("%d pooled atoms, want %d", len(gotVals), len(keys))
	}
	for i, k := range keys {
		if math.Float64bits(gotVals[i]) != math.Float64bits(first[k]) {
			t.Errorf("value %d: %v vs %v", i, gotVals[i], first[k])
		}
		if math.Float64bits(gotMasses[i]) != math.Float64bits(pmf[k]) {
			t.Errorf("mass %d: %v vs %v", i, gotMasses[i], pmf[k])
		}
	}
}

// TestDenseCountersReachRecorder is the TestRecorderIsOffPath companion
// for the dense path: the conv_ops/conv_atoms_merged counters a recorded
// convolution reports must equal the map path's counts even when the
// dense kernel did the work.
func TestDenseCountersReachRecorder(t *testing.T) {
	offset, weights, parts := wideConvWorkload()
	rec := obs.NewRecorder(nil)
	if _, err := WeightedSumRec(rec, offset, weights, parts); err != nil {
		t.Fatal(err)
	}
	got := map[string]int64{}
	for _, c := range rec.Snapshot().Counters {
		got[c.Name] = c.Value
	}
	grid, _, err := ConvGrid(offset, weights, parts)
	if err != nil {
		t.Fatal(err)
	}
	var st convStats
	if _, err := weightedSumMap(&st, grid, offset, weights, parts); err != nil {
		t.Fatal(err)
	}
	if got["conv_ops"] != st.ops || got["conv_atoms_merged"] != st.merged {
		t.Fatalf("dense-path counters {ops %d, merged %d} vs map {ops %d, merged %d}",
			got["conv_ops"], got["conv_atoms_merged"], st.ops, st.merged)
	}
	if st.ops == 0 || st.merged == 0 {
		t.Fatal("workload should both convolve and merge")
	}
}

// TestMapSizeHint is the regression test for the layer-hint overflow:
// the pre-fix code handed make() the raw product len(probs)·Size(),
// which overflows int on adversarial sizes (a negative make size
// panics) and overshoots real layers by orders of magnitude. The hint
// must stay within [0, maxConvMapHint] for every input.
func TestMapSizeHint(t *testing.T) {
	cases := []struct {
		n, m, want int
	}{
		{0, 5, 0},
		{5, 0, 0},
		{-3, 7, 0},
		{7, -3, 0},
		{10, 12, 120},
		{256, 256, maxConvMapHint},
		{maxConvMapHint, 2, maxConvMapHint},
		{math.MaxInt, math.MaxInt, maxConvMapHint}, // pre-fix: n*m overflows to 1
		{math.MaxInt/2 + 1, 2, maxConvMapHint},     // pre-fix: n*m overflows negative, make panics
		{3, math.MaxInt, maxConvMapHint},
	}
	for _, c := range cases {
		got := mapSizeHint(c.n, c.m)
		if got != c.want {
			t.Errorf("mapSizeHint(%d, %d) = %d, want %d", c.n, c.m, got, c.want)
		}
		_ = make(map[int64]float64, got) // the pre-fix panic this guards against
	}
}

// TestDenseScratchConcurrent exercises the scratch-buffer pool from
// concurrent convolutions (the serving path runs solves in parallel):
// every goroutine must get bit-identical results while buffers recycle
// through sync.Pool. Run under -race in CI.
func TestDenseScratchConcurrent(t *testing.T) {
	offset, weights, parts := wideConvWorkload()
	ref, err := WeightedSum(offset, weights, parts)
	if err != nil {
		t.Fatal(err)
	}
	small := []*Discrete{UniformOver([]float64{-2, 0.5, 3})}
	refSmall, err := WeightedSum(1, []float64{2}, small)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				d, err := WeightedSum(offset, weights, parts)
				if err != nil {
					errs <- err.Error()
					return
				}
				for j := range ref.Values {
					if d.Values[j] != ref.Values[j] || d.Probs[j] != ref.Probs[j] {
						errs <- "wide convolution diverged across goroutines"
						return
					}
				}
				s, err := WeightedSum(1, []float64{2}, small)
				if err != nil {
					errs <- err.Error()
					return
				}
				for j := range refSmall.Values {
					if s.Values[j] != refSmall.Values[j] || s.Probs[j] != refSmall.Probs[j] {
						errs <- "small convolution diverged across goroutines"
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}

// FuzzDenseVsMap is the differential pin of the dense kernel: whatever
// the regime (legacy grid, exact dyadic grid, relative grid — seeds
// cover all three), the public convolution and the forced map path must
// produce bit-identical laws and identical trace counters, and the
// opinion pool likewise.
func FuzzDenseVsMap(f *testing.F) {
	f.Add(uint64(1), 0.0, 1.0, 1.0, 100.0, uint8(0))    // legacy grid, integers
	f.Add(uint64(2), 12345.0, 2.0, 1.0, 1e11, uint8(0)) // exact grid, wide integers
	f.Add(uint64(3), 0.25, 1.0, 0.5, 50.0, uint8(1))    // legacy grid, quarters
	f.Add(uint64(4), 0.1, 1.5, -0.5, 9e11, uint8(2))    // relative grid, fractional
	f.Add(uint64(5), -3.0, 0.0, 1.0, 1e6, uint8(0))     // zero weight
	f.Add(uint64(6), 1e8, 1.0, 1.0, 1e8, uint8(1))      // straddles the legacy ceiling
	f.Fuzz(func(t *testing.T, seed uint64, offset, w0, w1, mag float64, mode uint8) {
		if math.IsNaN(offset) || math.IsInf(offset, 0) ||
			math.IsNaN(w0) || math.IsInf(w0, 0) || math.IsNaN(w1) || math.IsInf(w1, 0) ||
			math.IsNaN(mag) || math.IsInf(mag, 0) {
			t.Skip()
		}
		mag = math.Abs(mag)
		if mag > 1e14 || math.Abs(offset) > 1e14 || math.Abs(w0) > 1e6 || math.Abs(w1) > 1e6 {
			t.Skip()
		}
		r := rng.New(seed)
		shape := func() *Discrete {
			switch mode % 3 {
			case 0:
				return fuzzSupport(r, mag, true) // integral
			case 1: // dyadic: integers over a random power-of-two denominator
				den := float64(int64(1) << (r.Intn(13)))
				size := 2 + r.Intn(4)
				vals := make([]float64, size)
				for j := range vals {
					vals[j] = math.Round(r.Uniform(-mag, mag)) / den
				}
				return UniformOver(vals)
			default:
				return fuzzSupport(r, mag, false) // fractional: usually map fallback
			}
		}
		parts := []*Discrete{shape(), shape()}
		weights := []float64{w0, w1}
		grid, _, err := ConvGrid(offset, weights, parts)
		if err != nil {
			t.Skip() // reach overflow: out of scope here
		}
		var stAuto, stMap convStats
		auto, err := weightedSum(&stAuto, offset, weights, parts)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := weightedSumMap(&stMap, grid, offset, weights, parts)
		if err != nil {
			t.Fatal(err)
		}
		assertSameLaw(t, auto, ref)
		if stAuto != stMap {
			t.Fatalf("trace counters diverge: auto %+v vs map %+v", stAuto, stMap)
		}

		// The opinion pool, over the same components.
		mw := []float64{math.Abs(w0) + 0.5, math.Abs(w1) + 0.5}
		var pAuto, pMap convStats
		pooled, err := mixture(&pAuto, parts, mw)
		if err != nil {
			t.Fatal(err)
		}
		pg := poolGrid(parts, mw)
		groups := []poolGroup{
			{values: parts[0].Values, probs: parts[0].Probs, w: mw[0]},
			{values: parts[1].Values, probs: parts[1].Probs, w: mw[1]},
		}
		values, masses := poolMap(&pMap, pg, groups)
		pRef, err := NewDiscrete(values, masses)
		if err != nil {
			t.Fatal(err)
		}
		assertSameLaw(t, pooled, pRef)
		if pAuto != pMap {
			t.Fatalf("pool counters diverge: auto %+v vs map %+v", pAuto, pMap)
		}
	})
}
