package dist

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"github.com/factcheck/cleansel/internal/numeric"
	"github.com/factcheck/cleansel/internal/rng"
)

// Discrete is a finite-support law Pr[X = Values[j]] = Probs[j]. The
// support order is whatever the constructor received (generators rely on
// drawing "the current value" by support index); probabilities always sum
// to one. Mutating the exported slices after construction breaks the
// invariants — clean code treats a built Discrete as immutable and uses
// Clone when it needs a variant.
type Discrete struct {
	Values []float64
	Probs  []float64

	// idx caches the sorted-support/cumulative tables that turn
	// Prob/PrBelow/Sample from linear scans into binary searches on wide
	// supports. It is built lazily on first query and shared safely across
	// goroutines (engines query one law concurrently); Clone drops it.
	idx atomic.Pointer[discreteIndex]
}

// smallSupport is the support size below which the plain linear scans
// win: they touch a handful of contiguous floats and allocate nothing.
const smallSupport = 16

// discreteIndex holds the query-acceleration tables of one Discrete.
type discreteIndex struct {
	// cum[j] is the running probability sum over the support order,
	// accumulated exactly like the legacy Sample loop so inverse-CDF
	// draws stay bit-identical under a fixed seed.
	cum []float64
	// lastPositive is the largest j with Probs[j] > 0 (round-off
	// fall-through target of Sample), or len-1 when all mass is zero.
	lastPositive int
	// order is the support permutation sorting values ascending;
	// sortedVals[i] = Values[order[i]].
	order      []int
	sortedVals []float64
	// below[i] = Pr[X < sortedVals[i]] (Kahan-accumulated over the
	// sorted order), with below[len] = 1-ish total for queries above the
	// support.
	below []float64
}

// index returns the cached tables, building them on first use. Two
// racing builders do redundant work but agree on the result.
func (d *Discrete) index() *discreteIndex {
	if ix := d.idx.Load(); ix != nil {
		return ix
	}
	n := len(d.Values)
	ix := &discreteIndex{
		cum:          make([]float64, n),
		lastPositive: n - 1,
		order:        make([]int, n),
		sortedVals:   make([]float64, n),
		below:        make([]float64, n+1),
	}
	var cum float64
	for j, p := range d.Probs {
		cum += p
		ix.cum[j] = cum
	}
	for j := n - 1; j >= 0; j-- {
		if d.Probs[j] > 0 {
			ix.lastPositive = j
			break
		}
	}
	for j := range ix.order {
		ix.order[j] = j
	}
	sort.SliceStable(ix.order, func(a, b int) bool {
		return d.Values[ix.order[a]] < d.Values[ix.order[b]]
	})
	var acc numeric.KahanAcc
	for i, j := range ix.order {
		ix.sortedVals[i] = d.Values[j]
		ix.below[i] = acc.Value()
		acc.Add(d.Probs[j])
	}
	ix.below[n] = acc.Value()
	d.idx.Store(ix)
	return ix
}

// NewDiscrete builds a validated law from a support and (possibly
// unnormalized) non-negative weights. The weights are normalized to
// probabilities; duplicate support values are allowed and simply share
// the value's total mass across entries.
func NewDiscrete(values, probs []float64) (*Discrete, error) {
	if len(values) == 0 {
		return nil, errors.New("dist: empty support")
	}
	if len(values) != len(probs) {
		return nil, fmt.Errorf("dist: %d values vs %d probabilities", len(values), len(probs))
	}
	for i, v := range values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("dist: support value %d is %v", i, v)
		}
	}
	var sum numeric.KahanAcc
	for i, p := range probs {
		if math.IsNaN(p) || p < 0 || math.IsInf(p, 0) {
			return nil, fmt.Errorf("dist: probability %d is %v", i, p)
		}
		sum.Add(p)
	}
	total := sum.Value()
	if total <= 0 {
		return nil, errors.New("dist: probabilities sum to zero")
	}
	d := &Discrete{
		Values: append([]float64(nil), values...),
		Probs:  make([]float64, len(probs)),
	}
	for i, p := range probs {
		d.Probs[i] = p / total
	}
	return d, nil
}

// MustDiscrete is NewDiscrete that panics on invalid input; for literals
// and generators whose inputs are correct by construction.
func MustDiscrete(values, probs []float64) *Discrete {
	d, err := NewDiscrete(values, probs)
	if err != nil {
		panic(err)
	}
	return d
}

// UniformOver builds the uniform law over the given support. Like
// MustDiscrete it panics on invalid input (an empty or non-finite
// support); use NewDiscrete when the support comes from untrusted data.
func UniformOver(values []float64) *Discrete {
	probs := make([]float64, len(values))
	for i := range probs {
		probs[i] = 1 / float64(len(values))
	}
	return MustDiscrete(values, probs)
}

// PointMass builds the degenerate law concentrated at v — the posterior
// of a cleaned object (§2.1: cleaning reveals the true value).
func PointMass(v float64) *Discrete {
	return MustDiscrete([]float64{v}, []float64{1})
}

// Bernoulli builds the {0, 1} law with Pr[X = 1] = p (Example 3's
// indicator objects).
func Bernoulli(p float64) *Discrete {
	if math.IsNaN(p) || p < 0 || p > 1 {
		panic(fmt.Sprintf("dist: Bernoulli probability %v outside [0, 1]", p))
	}
	return MustDiscrete([]float64{0, 1}, []float64{1 - p, p})
}

// LogNormalQuantized builds the k-point equal-probability quantization of
// LogNormal(0, sigma²): the §4.3 LNx generator's skewed, small-range
// value model. Point j sits at the conditional bin center
// exp(sigma·Φ⁻¹((j+1/2)/k)); values come out sorted ascending.
func LogNormalQuantized(sigma float64, k int) *Discrete {
	if sigma <= 0 || math.IsNaN(sigma) || math.IsInf(sigma, 0) {
		panic(fmt.Sprintf("dist: log-normal sigma %v must be positive and finite", sigma))
	}
	zs := symmetricQuantiles(k)
	values := make([]float64, k)
	probs := make([]float64, k)
	for j, z := range zs {
		values[j] = math.Exp(sigma * z)
		probs[j] = 1 / float64(k)
	}
	return MustDiscrete(values, probs)
}

// Len returns the support size.
func (d *Discrete) Len() int { return len(d.Values) }

// Size is Len under the name the enumeration engines use when bounding
// product state spaces.
func (d *Discrete) Size() int { return len(d.Values) }

// Mean returns E[X].
func (d *Discrete) Mean() float64 {
	var acc numeric.KahanAcc
	for j, v := range d.Values {
		acc.Add(d.Probs[j] * v)
	}
	return acc.Value()
}

// Variance returns Var[X], computed against the mean so it is
// non-negative even for wide supports.
func (d *Discrete) Variance() float64 {
	mean := d.Mean()
	var acc numeric.KahanAcc
	for j, v := range d.Values {
		dev := v - mean
		acc.Add(d.Probs[j] * dev * dev)
	}
	variance := acc.Value()
	if variance < 0 {
		variance = 0
	}
	return variance
}

// Prob returns Pr[X = v], summing over duplicate support entries. The
// comparison is exact; callers that quantized their arithmetic should
// query with values from the support itself.
//
//lint:allow floateq — Prob/CDF document exact support-membership semantics: callers query with values taken from the support, so the compare is identity, not round-off pooling
func (d *Discrete) Prob(v float64) float64 {
	if len(d.Values) <= smallSupport {
		var acc numeric.KahanAcc
		for j, sv := range d.Values {
			if sv == v {
				acc.Add(d.Probs[j])
			}
		}
		return acc.Value()
	}
	ix := d.index()
	// The stable sort keeps duplicates in support order, so this Kahan
	// sum visits the same masses in the same order as the linear scan.
	var acc numeric.KahanAcc
	for i := sort.SearchFloat64s(ix.sortedVals, v); i < len(ix.sortedVals) && ix.sortedVals[i] == v; i++ {
		acc.Add(d.Probs[ix.order[i]])
	}
	return acc.Value()
}

// PrBelow returns Pr[X < v] (strictly below — the Eq. (2) surprise event
// D < −τ is a strict inequality).
func (d *Discrete) PrBelow(v float64) float64 {
	if len(d.Values) <= smallSupport {
		var acc numeric.KahanAcc
		for j, sv := range d.Values {
			if sv < v {
				acc.Add(d.Probs[j])
			}
		}
		return acc.Value()
	}
	if math.IsNaN(v) {
		return 0 // matches the linear scan: no value compares below NaN
	}
	ix := d.index()
	return ix.below[sort.SearchFloat64s(ix.sortedVals, v)]
}

// Sample draws from the law by inverse CDF over the support order, so a
// fixed rng.RNG seed yields a reproducible stream.
func (d *Discrete) Sample(r *rng.RNG) float64 {
	u := r.Float64()
	if len(d.Values) <= smallSupport {
		var cum float64
		for j, p := range d.Probs {
			cum += p
			if u < cum {
				return d.Values[j]
			}
		}
		// Round-off can leave cum a hair under 1; the draw belongs to
		// the last positive-probability atom.
		for j := len(d.Probs) - 1; j >= 0; j-- {
			if d.Probs[j] > 0 {
				return d.Values[j]
			}
		}
		return d.Values[len(d.Values)-1]
	}
	// ix.cum repeats the linear loop's running sums, so the first index
	// with u < cum[j] — and therefore the drawn stream — is unchanged.
	ix := d.index()
	j := sort.Search(len(ix.cum), func(i int) bool { return u < ix.cum[i] })
	if j == len(ix.cum) {
		j = ix.lastPositive
	}
	return d.Values[j]
}

// Clone returns a deep copy safe to mutate.
func (d *Discrete) Clone() *Discrete {
	return &Discrete{
		Values: append([]float64(nil), d.Values...),
		Probs:  append([]float64(nil), d.Probs...),
	}
}

// symmetricQuantiles returns the k standard-normal quantiles at
// (j+1/2)/k, mirrored so the grid is exactly symmetric about zero (the
// property that makes equal-probability discretizations mean-exact).
func symmetricQuantiles(k int) []float64 {
	if k <= 0 {
		panic(fmt.Sprintf("dist: quantization needs k >= 1, got %d", k))
	}
	zs := make([]float64, k)
	for j := 0; j < k/2; j++ {
		z := numeric.NormalQuantile((float64(j) + 0.5) / float64(k))
		zs[j] = z
		zs[k-1-j] = -z
	}
	if k%2 == 1 {
		zs[k/2] = 0
	}
	return zs
}
