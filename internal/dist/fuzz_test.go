package dist

import (
	"math"
	"testing"

	"github.com/factcheck/cleansel/internal/rng"
)

// fuzzSupport derives a small support from a seeded stream: sizes 2–5,
// magnitudes up to mag, optionally rounded to integers.
func fuzzSupport(r *rng.RNG, mag float64, integral bool) *Discrete {
	size := 2 + r.Intn(4)
	vals := make([]float64, size)
	for j := range vals {
		v := r.Uniform(-mag, mag)
		if integral {
			v = math.Round(v)
		}
		vals[j] = v
	}
	probs := make([]float64, size)
	for j := range probs {
		probs[j] = r.Uniform(0.1, 1)
	}
	d, err := NewDiscrete(vals, probs)
	if err != nil {
		panic(err)
	}
	return d
}

// checkLaw asserts the structural invariants every WeightedSum/Mixture
// result must satisfy: finite ascending support, probabilities in [0, 1]
// summing to one.
func checkLaw(t *testing.T, d *Discrete) {
	t.Helper()
	var mass float64
	for i, v := range d.Values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("atom %d value %v", i, v)
		}
		if i > 0 && v < d.Values[i-1] {
			t.Fatalf("support not ascending at %d: %v after %v", i, v, d.Values[i-1])
		}
		p := d.Probs[i]
		if math.IsNaN(p) || p < 0 || p > 1+1e-12 {
			t.Fatalf("atom %d prob %v", i, p)
		}
		mass += p
	}
	if math.Abs(mass-1) > 1e-9 {
		t.Fatalf("total mass %v", mass)
	}
}

// FuzzWeightedSum fuzzes the convolution across all three grid regimes:
// whatever the magnitudes, a successful convolution must be a valid law
// whose mean obeys linearity of expectation up to the grid resolution.
func FuzzWeightedSum(f *testing.F) {
	f.Add(uint64(1), 0.0, 1.0, -1.0, 100.0, false)
	f.Add(uint64(2), 5.0, 2.0, 0.5, 1e3, true)
	f.Add(uint64(3), -1e12, 1.0, 1.0, 1e12, true)  // integer exact regime
	f.Add(uint64(4), 0.25, 1.5, -0.5, 9e11, false) // relative-grid regime
	f.Add(uint64(5), 1e8, 1.0, 1.0, 1e8, false)    // straddles the legacy ceiling
	f.Add(uint64(6), 0.0, 0.0, 0.0, 10.0, false)   // all-zero weights
	f.Fuzz(func(t *testing.T, seed uint64, offset, w0, w1, mag float64, integral bool) {
		if math.IsNaN(offset) || math.IsInf(offset, 0) ||
			math.IsNaN(w0) || math.IsInf(w0, 0) || math.IsNaN(w1) || math.IsInf(w1, 0) ||
			math.IsNaN(mag) || math.IsInf(mag, 0) {
			t.Skip()
		}
		mag = math.Abs(mag)
		if mag > 1e14 {
			t.Skip()
		}
		// Keep the reachable magnitude finite so the one legitimate
		// error path (reach overflowing float64) stays out of scope.
		if math.Abs(offset) > 1e200 || math.Abs(w0) > 1e200 || math.Abs(w1) > 1e200 {
			t.Skip()
		}
		r := rng.New(seed)
		parts := []*Discrete{fuzzSupport(r, mag, integral), fuzzSupport(r, mag, integral)}
		weights := []float64{w0, w1}
		d, err := WeightedSum(offset, weights, parts)
		if err != nil {
			t.Fatalf("finite inputs rejected: %v", err) // only an overflowing reach may error
		}
		checkLaw(t, d)
		g, reach, err := ConvGrid(offset, weights, parts)
		if err != nil {
			t.Fatal(err)
		}
		want := offset + w0*parts[0].Mean() + w1*parts[1].Mean()
		tol := 8 * (g.Resolution() + 1e-12*reach + 1e-12)
		if math.Abs(d.Mean()-want) > tol {
			t.Fatalf("mean %v, linearity gives %v (tol %v, scale %v)", d.Mean(), want, tol, g.Scale())
		}
	})
}

// FuzzMixture fuzzes the opinion pool: valid pooled law, conserved mean.
func FuzzMixture(f *testing.F) {
	f.Add(uint64(1), 1.0, 1.0, 100.0)
	f.Add(uint64(2), 3.0, 0.0, 1e6)
	f.Add(uint64(3), 0.5, 2.5, 1e12)
	f.Add(uint64(4), 1e-6, 1e6, 10.0)
	f.Fuzz(func(t *testing.T, seed uint64, w0, w1, mag float64) {
		if math.IsNaN(w0) || math.IsInf(w0, 0) || math.IsNaN(w1) || math.IsInf(w1, 0) ||
			math.IsNaN(mag) || math.IsInf(mag, 0) {
			t.Skip()
		}
		if w0 < 0 || w1 < 0 || w0+w1 <= 0 || w0 > 1e100 || w1 > 1e100 {
			t.Skip()
		}
		mag = math.Abs(mag)
		if mag > 1e14 {
			t.Skip()
		}
		r := rng.New(seed)
		comps := []*Discrete{fuzzSupport(r, mag, false), fuzzSupport(r, mag, false)}
		m, err := Mixture(comps, []float64{w0, w1})
		if err != nil {
			t.Fatalf("valid pool rejected: %v", err)
		}
		checkLaw(t, m)
		wsum := w0 + w1
		want := (w0/wsum)*comps[0].Mean() + (w1/wsum)*comps[1].Mean()
		// Pooled atoms keep first-seen values, each within one grid cell
		// of every atom merged into it.
		res := 1e-9
		if mag > 1e8 {
			res = mag / 1e14
		}
		tol := 8*(res+1e-12*mag) + 1e-9
		if math.Abs(m.Mean()-want) > tol {
			t.Fatalf("mean %v, pool gives %v (tol %v)", m.Mean(), want, tol)
		}
	})
}
