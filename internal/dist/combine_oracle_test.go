package dist

import (
	"math"
	"math/big"
	"testing"

	"github.com/factcheck/cleansel/internal/dist/oracle"
	"github.com/factcheck/cleansel/internal/rng"
)

// oracleParts converts parts to the value/prob slices the oracle takes.
func oracleParts(parts []*Discrete) (values, probs [][]float64) {
	for _, p := range parts {
		values = append(values, p.Values)
		probs = append(probs, p.Probs)
	}
	return values, probs
}

// assertAtomsExact requires d to equal the oracle law bit for bit: same
// support length, and every value and probability exactly the rational
// the oracle computed.
func assertAtomsExact(t *testing.T, d *Discrete, want []oracle.Atom) {
	t.Helper()
	if d.Size() != len(want) {
		t.Fatalf("support size %d, oracle has %d atoms", d.Size(), len(want))
	}
	for i := range want {
		if new(big.Rat).SetFloat64(d.Values[i]).Cmp(want[i].Value) != 0 {
			t.Fatalf("atom %d value %v != oracle %v", i, d.Values[i], want[i].Value)
		}
		if new(big.Rat).SetFloat64(d.Probs[i]).Cmp(want[i].Prob) != 0 {
			t.Fatalf("atom %d prob %v != oracle %v", i, d.Probs[i], want[i].Prob)
		}
	}
}

// TestWeightedSumMatchesOracleExactIntegerWide is the acceptance
// property of the integer fast path: randomized integer supports with
// reachable magnitudes around 1e12 — far beyond the old ±1e8 grid
// ceiling — convolve with zero rounding, so every atom matches the
// big.Rat oracle exactly. Support sizes are powers of two so the
// uniform masses are dyadic and the probability arithmetic is exact
// end to end.
func TestWeightedSumMatchesOracleExactIntegerWide(t *testing.T) {
	r := rng.New(0x1dead)
	for trial := 0; trial < 60; trial++ {
		nParts := 1 + r.Intn(4)
		parts := make([]*Discrete, nParts)
		weights := make([]float64, nParts)
		for i := range parts {
			size := 2 << r.Intn(2) // 2 or 4
			vals := make([]float64, size)
			for j := range vals {
				vals[j] = float64(r.IntRange(-1000, 1000))*1e9 + float64(r.IntRange(-1e6, 1e6))
			}
			parts[i] = UniformOver(vals)
			weights[i] = float64(r.IntRange(-3, 4))
		}
		offset := float64(r.IntRange(-1000, 1000)) * 1e9
		d, err := WeightedSum(offset, weights, parts)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		ov, op := oracleParts(parts)
		assertAtomsExact(t, d, oracle.WeightedSum(offset, weights, ov, op))
	}
}

// TestWeightedSumMatchesOracleDyadicWide extends the exact property to
// supports that are integral only after scaling by a power of two
// (quarters at 1e11), exercising the detected-common-denominator path.
func TestWeightedSumMatchesOracleDyadicWide(t *testing.T) {
	r := rng.New(0x9a7c)
	for trial := 0; trial < 40; trial++ {
		nParts := 1 + r.Intn(3)
		parts := make([]*Discrete, nParts)
		weights := make([]float64, nParts)
		for i := range parts {
			vals := make([]float64, 2)
			for j := range vals {
				vals[j] = float64(r.IntRange(-4e5, 4e5))*1e6 + float64(r.IntRange(-64, 64))/4
			}
			parts[i] = UniformOver(vals)
			weights[i] = float64(r.IntRange(1, 3)) / 2 // 0.5 or 1
		}
		d, err := WeightedSum(0.25, weights, parts)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		g, _, err := ConvGrid(0.25, weights, parts)
		if err != nil {
			t.Fatal(err)
		}
		if _, frac := math.Modf(math.Log2(g.Scale())); frac != 0 || g.Scale() > 4096 || g.IsDefault() {
			t.Fatalf("trial %d: expected a dyadic exact grid, got scale %v", trial, g.Scale())
		}
		ov, op := oracleParts(parts)
		assertAtomsExact(t, d, oracle.WeightedSum(0.25, weights, ov, op))
	}
}

// assertLawClose checks d against the oracle law where float round-off
// is in play: total mass, mean, and the CDF at every midpoint between
// well-separated oracle atoms (where quantization cannot move mass
// across the query point).
func assertLawClose(t *testing.T, d *Discrete, want []oracle.Atom, res float64, reach float64) {
	t.Helper()
	var mass float64
	for _, p := range d.Probs {
		mass += p
	}
	if math.Abs(mass-1) > 1e-9 {
		t.Fatalf("total mass %v", mass)
	}
	wantMean, _ := oracle.Mean(want).Float64()
	meanTol := 2*res + 1e-12*math.Abs(reach) + 1e-12
	if math.Abs(d.Mean()-wantMean) > meanTol {
		t.Fatalf("mean %v, oracle %v (tol %v)", d.Mean(), wantMean, meanTol)
	}
	for i := 1; i < len(want); i++ {
		lo, _ := want[i-1].Value.Float64()
		hi, _ := want[i].Value.Float64()
		if hi-lo < 20*res {
			continue
		}
		mid := lo + (hi-lo)/2
		got := d.PrBelow(mid)
		exact, _ := oracle.PrBelow(want, new(big.Rat).SetFloat64(mid)).Float64()
		if math.Abs(got-exact) > 1e-9 {
			t.Fatalf("PrBelow(%v) = %v, oracle %v", mid, got, exact)
		}
	}
}

// TestWeightedSumMatchesOracleLegacyRegime checks the unchanged ≤1e8
// regime against the oracle: arbitrary float weights and supports, so
// the comparison is CDF/mean-based with round-off tolerances.
func TestWeightedSumMatchesOracleLegacyRegime(t *testing.T) {
	r := rng.New(0x1e9acc)
	for trial := 0; trial < 60; trial++ {
		nParts := 1 + r.Intn(3)
		parts := make([]*Discrete, nParts)
		weights := make([]float64, nParts)
		for i := range parts {
			size := 2 + r.Intn(3)
			vals := make([]float64, size)
			for j := range vals {
				vals[j] = r.Uniform(-1e3, 1e3)
			}
			parts[i] = UniformOver(vals)
			weights[i] = r.Uniform(-2, 2)
		}
		offset := r.Uniform(-10, 10)
		g, reach, err := ConvGrid(offset, weights, parts)
		if err != nil {
			t.Fatal(err)
		}
		if !g.IsDefault() {
			t.Fatalf("trial %d: legacy workload left the 1e-9 grid", trial)
		}
		d, err := WeightedSum(offset, weights, parts)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		ov, op := oracleParts(parts)
		assertLawClose(t, d, oracle.WeightedSum(offset, weights, ov, op), g.Resolution(), reach)
	}
}

// TestWeightedSumMatchesOracleRelativeGridWide drives the third regime:
// non-integral supports with reach ≈ 1e12 land on the relative
// power-of-ten grid, and the law still tracks the oracle through the
// CDF and the mean at the grid's resolution.
func TestWeightedSumMatchesOracleRelativeGridWide(t *testing.T) {
	r := rng.New(0x51de)
	for trial := 0; trial < 40; trial++ {
		nParts := 1 + r.Intn(3)
		parts := make([]*Discrete, nParts)
		weights := make([]float64, nParts)
		for i := range parts {
			size := 2 + r.Intn(3)
			vals := make([]float64, size)
			for j := range vals {
				vals[j] = float64(r.IntRange(-1000, 1000))*1e9 + r.Uniform(-1, 1)
			}
			parts[i] = UniformOver(vals)
			weights[i] = r.Uniform(0.5, 2)
		}
		offset := r.Uniform(-10, 10)
		g, reach, err := ConvGrid(offset, weights, parts)
		if err != nil {
			t.Fatal(err)
		}
		if reach <= 1e8 {
			continue // weights drew tiny; not the regime under test
		}
		if g.IsDefault() {
			t.Fatalf("trial %d: wide workload stayed on the legacy grid (reach %v)", trial, reach)
		}
		d, err := WeightedSum(offset, weights, parts)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		ov, op := oracleParts(parts)
		assertLawClose(t, d, oracle.WeightedSum(offset, weights, ov, op), g.Resolution(), reach)
	}
}

// TestMixtureMatchesOracle pools randomized components and checks the
// result against the exact opinion pool.
func TestMixtureMatchesOracle(t *testing.T) {
	r := rng.New(0x3134)
	for trial := 0; trial < 40; trial++ {
		n := 1 + r.Intn(3)
		comps := make([]*Discrete, n)
		weights := make([]float64, n)
		values := make([][]float64, n)
		probs := make([][]float64, n)
		for k := range comps {
			size := 2 << r.Intn(2)
			vals := make([]float64, size)
			for j := range vals {
				vals[j] = float64(r.IntRange(-1e6, 1e6))
			}
			comps[k] = UniformOver(vals)
			weights[k] = float64(int(1) << r.Intn(3)) // 1, 2, or 4: dyadic pool
			values[k] = comps[k].Values
			probs[k] = comps[k].Probs
		}
		m, err := Mixture(comps, weights)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := oracle.Mixture(values, probs, weights)
		// Total pooled weight is a power-of-two sum (≤ 12), so the
		// normalization may divide by a non-dyadic total; compare with a
		// tiny tolerance instead of exactly.
		if m.Size() != len(want) {
			t.Fatalf("trial %d: %d atoms, oracle %d", trial, m.Size(), len(want))
		}
		for i := range want {
			wv, _ := want[i].Value.Float64()
			wp, _ := want[i].Prob.Float64()
			if m.Values[i] != wv {
				t.Fatalf("trial %d atom %d value %v, oracle %v", trial, i, m.Values[i], wv)
			}
			if math.Abs(m.Probs[i]-wp) > 1e-15 {
				t.Fatalf("trial %d atom %d prob %v, oracle %v", trial, i, m.Probs[i], wp)
			}
		}
	}
}
