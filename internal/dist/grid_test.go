package dist

import (
	"strings"
	"testing"

	"github.com/factcheck/cleansel/internal/numeric"
)

// TestWeightedSumGuardsQuantizationGrid pins the grid-overflow guard:
// supports whose reachable sums exceed ±numeric.QuantizeMaxAbs must be
// rejected with a descriptive error instead of silently aliasing keys.
func TestWeightedSumGuardsQuantizationGrid(t *testing.T) {
	big := UniformOver([]float64{0, 9e9})
	_, err := WeightedSum(0, []float64{1}, []*Discrete{big})
	if err == nil {
		t.Fatal("magnitude 9e9 accepted")
	}
	if !strings.Contains(err.Error(), "quantization grid") {
		t.Fatalf("error is not descriptive: %v", err)
	}

	// The bound is on the reachable sum, not individual supports: many
	// moderate parts can overflow together…
	parts := make([]*Discrete, 20)
	weights := make([]float64, 20)
	for i := range parts {
		parts[i] = UniformOver([]float64{0, 9e6})
		weights[i] = 1000
	}
	if _, err := WeightedSum(0, weights, parts); err == nil {
		t.Fatal("aggregate overflow accepted")
	}
	// …and the offset counts too.
	small := UniformOver([]float64{0, 1})
	if _, err := WeightedSum(1.5e8, []float64{1}, []*Discrete{small}); err == nil {
		t.Fatal("offset overflow accepted")
	}

	// Zero-weight parts do not contribute reach: a huge support with
	// weight 0 stays legal.
	if _, err := WeightedSum(0, []float64{0, 1}, []*Discrete{big, small}); err != nil {
		t.Fatalf("zero-weight part rejected: %v", err)
	}

	// In-range convolution is untouched.
	d, err := WeightedSum(2, []float64{1, -1}, []*Discrete{
		UniformOver([]float64{1e7, 2e7}),
		UniformOver([]float64{0, 5e6}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.Size() != 4 {
		t.Fatalf("support size %d, want 4", d.Size())
	}
}

// TestWeightedSumBoundaryStillWorks checks magnitudes just inside the
// ceiling convolve fine.
func TestWeightedSumBoundaryStillWorks(t *testing.T) {
	nearMax := 0.49 * numeric.QuantizeMaxAbs
	d, err := WeightedSum(0, []float64{1, 1}, []*Discrete{
		UniformOver([]float64{0, nearMax}),
		UniformOver([]float64{0, nearMax}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.Size() != 3 { // 0, nearMax, 2*nearMax (two paths merge at nearMax)
		t.Fatalf("support size %d, want 3", d.Size())
	}
	if got := d.Prob(nearMax); got != 0.5 {
		t.Fatalf("merged atom mass %v, want 0.5", got)
	}
}
