package dist

import (
	"math"
	"strings"
	"testing"

	"github.com/factcheck/cleansel/internal/numeric"
)

// TestConvGridRegimes pins which quantization grid WeightedSum chooses:
// the legacy 1e-9 grid inside ±numeric.QuantizeMaxAbs, the exact integer
// grid for integral (or dyadic) weighted supports beyond it, and the
// relative power-of-ten grid for everything else.
func TestConvGridRegimes(t *testing.T) {
	small := UniformOver([]float64{0, 1})
	g, reach, err := ConvGrid(2, []float64{1}, []*Discrete{small})
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsDefault() {
		t.Fatalf("legacy regime got scale %v, want 1e9", g.Scale())
	}
	if reach != 3 {
		t.Fatalf("reach = %v, want 3", reach)
	}

	// Integer supports at 1e12: exact integer grid (scale 1).
	big := UniformOver([]float64{0, 1e12})
	g, _, err = ConvGrid(5, []float64{1}, []*Discrete{big})
	if err != nil {
		t.Fatal(err)
	}
	if g.Scale() != 1 {
		t.Fatalf("integer workload got scale %v, want 1", g.Scale())
	}

	// Quarter-integral supports: dyadic scale 4.
	dy := UniformOver([]float64{0.25, 2.5e11})
	g, _, err = ConvGrid(0, []float64{1}, []*Discrete{dy})
	if err != nil {
		t.Fatal(err)
	}
	if g.Scale() != 4 {
		t.Fatalf("dyadic workload got scale %v, want 4", g.Scale())
	}

	// Non-integral large magnitudes: relative power-of-ten grid with all
	// keys inside ±numeric.GridKeyMax.
	odd := UniformOver([]float64{0.3, 1e12 + 0.3})
	g, reach, err = ConvGrid(0, []float64{1}, []*Discrete{odd})
	if err != nil {
		t.Fatal(err)
	}
	if g.IsDefault() || g.Scale() == 1 {
		t.Fatalf("relative regime got scale %v", g.Scale())
	}
	if reach*g.Scale() > numeric.GridKeyMax {
		t.Fatalf("keys reach %v beyond GridKeyMax", reach*g.Scale())
	}
	if reach*g.Scale() < numeric.GridKeyMax/10 {
		t.Fatalf("grid coarser than necessary: keys only reach %v", reach*g.Scale())
	}

	// Zero-weight parts do not contribute reach: a huge support with
	// weight 0 keeps the legacy grid.
	g, _, err = ConvGrid(0, []float64{0, 1}, []*Discrete{big, small})
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsDefault() {
		t.Fatalf("zero-weight part changed the grid to scale %v", g.Scale())
	}
}

// TestWeightedSumLargeMagnitudeSolves pins the headline behavior change:
// reachable magnitudes beyond the old ±1e8 ceiling convolve instead of
// erroring, and integer supports do so exactly.
func TestWeightedSumLargeMagnitudeSolves(t *testing.T) {
	big := UniformOver([]float64{0, 9e9})
	d, err := WeightedSum(0, []float64{1}, []*Discrete{big})
	if err != nil {
		t.Fatalf("magnitude 9e9 rejected: %v", err)
	}
	if d.Size() != 2 || d.Values[0] != 0 || d.Values[1] != 9e9 {
		t.Fatalf("support = %v", d.Values)
	}

	// Aggregate reach beyond the old bound through many moderate parts.
	parts := make([]*Discrete, 20)
	weights := make([]float64, 20)
	for i := range parts {
		parts[i] = UniformOver([]float64{0, 9e6})
		weights[i] = 1000
	}
	if _, err := WeightedSum(0, weights, parts); err != nil {
		t.Fatalf("aggregate 1.8e11 rejected: %v", err)
	}

	// Exactness at 1e12: D = X0 + X1 − u with integer supports. All
	// probabilities are dyadic, so every mass below is exact.
	u := 2e12
	x0 := UniformOver([]float64{1e12, 1e12 - 4096})
	x1 := UniformOver([]float64{1e12, 1e12 - 8192})
	d, err = WeightedSum(-u, []float64{1, 1}, []*Discrete{x0, x1})
	if err != nil {
		t.Fatal(err)
	}
	wantVals := []float64{-12288, -8192, -4096, 0}
	wantProbs := []float64{0.25, 0.25, 0.25, 0.25}
	if d.Size() != len(wantVals) {
		t.Fatalf("support = %v", d.Values)
	}
	for i := range wantVals {
		if d.Values[i] != wantVals[i] || d.Probs[i] != wantProbs[i] {
			t.Fatalf("atom %d = (%v, %v), want (%v, %v)", i, d.Values[i], d.Probs[i], wantVals[i], wantProbs[i])
		}
	}
	if got := d.PrBelow(-4096); got != 0.5 {
		t.Fatalf("PrBelow(-4096) = %v, want exactly 0.5", got)
	}

	// An infinite reach is the one magnitude still rejected.
	huge := UniformOver([]float64{0, math.MaxFloat64})
	if _, err := WeightedSum(0, []float64{1, 1}, []*Discrete{huge, huge}); err == nil {
		t.Fatal("overflowing reach accepted")
	} else if !strings.Contains(err.Error(), "overflows") {
		t.Fatalf("error is not descriptive: %v", err)
	}
}

// TestWeightedSumLegacyRegimeUnchanged checks magnitudes inside the old
// ceiling behave exactly as before: the 1e-9 grid merges equal-up-to-
// round-off sums and keeps the first exact value seen.
func TestWeightedSumLegacyRegimeUnchanged(t *testing.T) {
	nearMax := 0.49 * numeric.QuantizeMaxAbs
	d, err := WeightedSum(0, []float64{1, 1}, []*Discrete{
		UniformOver([]float64{0, nearMax}),
		UniformOver([]float64{0, nearMax}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.Size() != 3 { // 0, nearMax, 2*nearMax (two paths merge at nearMax)
		t.Fatalf("support size %d, want 3", d.Size())
	}
	if got := d.Prob(nearMax); got != 0.5 {
		t.Fatalf("merged atom mass %v, want 0.5", got)
	}

	// In-range convolution support arithmetic is untouched.
	d, err = WeightedSum(2, []float64{1, -1}, []*Discrete{
		UniformOver([]float64{1e7, 2e7}),
		UniformOver([]float64{0, 5e6}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.Size() != 4 {
		t.Fatalf("support size %d, want 4", d.Size())
	}
}

// TestMixtureGridMerge pins the Mixture/WeightedSum atom-merge
// unification: atoms within one grid cell pool into a single atom (they
// formerly pooled only on exact float equality), and the merged atom
// keeps the first exact value seen.
func TestMixtureGridMerge(t *testing.T) {
	a := UniformOver([]float64{1.0, 2.0})
	b := UniformOver([]float64{1.0 + 1e-12, 3.0})
	m, err := Mixture([]*Discrete{a, b}, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.Size() != 3 {
		t.Fatalf("support = %v, want the 1e-12-apart atoms merged", m.Values)
	}
	if m.Values[0] != 1.0 {
		t.Fatalf("merged atom value %v, want the first-seen 1.0", m.Values[0])
	}
	if got := m.Prob(1.0); got != 0.5 {
		t.Fatalf("merged atom mass %v, want 0.5", got)
	}

	// Atoms a full resolution apart stay distinct.
	c := UniformOver([]float64{1.0 + 1e-6, 3.0})
	m, err = Mixture([]*Discrete{a, c}, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.Size() != 4 {
		t.Fatalf("support = %v, want 4 distinct atoms", m.Values)
	}

	// Dyadic atoms at large magnitude pool on the exact grid, so atoms
	// 1/32 apart at 1e14 stay distinct even though the relative
	// power-of-ten grid (resolution 0.1 there) would merge them.
	fine := UniformOver([]float64{1e14, 1e14 + 0.03125})
	m, err = Mixture([]*Discrete{fine}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if m.Size() != 2 {
		t.Fatalf("dyadic atoms at 1e14 merged: support = %v", m.Values)
	}

	// Large-magnitude mixtures pool on the scale-aware grid instead of
	// overflowing the fixed one.
	wide := UniformOver([]float64{1e12, 2e12})
	m, err = Mixture([]*Discrete{wide, UniformOver([]float64{1e12, 3e12})}, []float64{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.Size() != 3 {
		t.Fatalf("support = %v", m.Values)
	}
	if got := m.Prob(1e12); got != 0.5 {
		t.Fatalf("pooled mass at 1e12 = %v, want 0.5", got)
	}
}
