// Package rng provides a small, deterministic pseudo-random number
// generator used throughout the library.
//
// Experiments in the paper are defined over randomly generated value
// distributions, costs, and hidden ground truths. To make every figure
// reproducible bit-for-bit across runs and Go versions, we avoid math/rand
// (whose stream is not guaranteed stable across releases for all helpers)
// and implement a splitmix64 generator with the samplers we need.
package rng

import "math"

// RNG is a deterministic splitmix64 pseudo-random generator.
// It is not safe for concurrent use; derive per-goroutine streams
// with Split.
type RNG struct {
	state uint64
	// spare holds a cached standard normal variate from Box-Muller.
	spare    float64
	hasSpare bool
}

// New returns a generator seeded with seed.
func New(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Split derives an independent generator from r in a deterministic way.
// The i-th Split of a given RNG state is always the same stream.
func (r *RNG) Split() *RNG {
	return New(r.Uint64() ^ 0x9e3779b97f4a7c15)
}

// Uint64 returns the next 64 pseudo-random bits (splitmix64).
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	// 53 high-quality bits.
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Uniform returns a uniform value in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire-style rejection-free enough for our sizes: use modulo of a
	// 64-bit draw with rejection to remove bias.
	bound := uint64(n)
	threshold := -bound % bound // (2^64 - bound) % bound
	for {
		v := r.Uint64()
		if v >= threshold {
			return int(v % bound)
		}
	}
}

// IntRange returns a uniform integer in [lo, hi] inclusive.
func (r *RNG) IntRange(lo, hi int) int {
	if hi < lo {
		panic("rng: IntRange with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// NormFloat64 returns a standard normal variate (Box-Muller with caching).
func (r *RNG) NormFloat64() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	m := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * m
	r.hasSpare = true
	return u * m
}

// Normal returns a normal variate with the given mean and standard deviation.
func (r *RNG) Normal(mean, sd float64) float64 {
	return mean + sd*r.NormFloat64()
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// SampleWithoutReplacement returns k distinct integers drawn uniformly from
// [lo, hi] inclusive. It panics if the range holds fewer than k integers.
func (r *RNG) SampleWithoutReplacement(lo, hi, k int) []int {
	n := hi - lo + 1
	if k > n {
		panic("rng: sample larger than population")
	}
	// Floyd's algorithm keeps memory O(k) even for huge ranges.
	chosen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for j := n - k; j < n; j++ {
		t := r.Intn(j + 1)
		if _, ok := chosen[t]; ok {
			t = j
		}
		chosen[t] = struct{}{}
		out = append(out, lo+t)
	}
	// Shuffle so the order itself is uniform.
	for i := len(out) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// Shuffle pseudo-randomly permutes the first n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
