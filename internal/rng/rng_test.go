package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSplitIndependentButDeterministic(t *testing.T) {
	a, b := New(7), New(7)
	sa, sb := a.Split(), b.Split()
	for i := 0; i < 100; i++ {
		if sa.Uint64() != sb.Uint64() {
			t.Fatalf("split streams diverged at step %d", i)
		}
	}
	// Parent and child streams should differ.
	p, c := New(7), New(7).Split()
	same := 0
	for i := 0; i < 100; i++ {
		if p.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("parent and split streams look identical (%d collisions)", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(1)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(3)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean = %v, want about 0.5", mean)
	}
}

func TestIntnUniformity(t *testing.T) {
	r := New(5)
	const n, buckets = 120000, 6
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[r.Intn(buckets)]++
	}
	want := float64(n) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 0.05*want {
			t.Fatalf("bucket %d count %d too far from %v", b, c, want)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntRange(t *testing.T) {
	r := New(11)
	for i := 0; i < 1000; i++ {
		v := r.IntRange(3, 9)
		if v < 3 || v > 9 {
			t.Fatalf("IntRange out of bounds: %d", v)
		}
	}
	if got := r.IntRange(4, 4); got != 4 {
		t.Fatalf("degenerate IntRange = %d, want 4", got)
	}
}

func TestNormMoments(t *testing.T) {
	r := New(9)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Fatalf("normal mean = %v, want about 0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("normal variance = %v, want about 1", variance)
	}
}

func TestNormalAffine(t *testing.T) {
	r := New(13)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Normal(10, 2)
	}
	if mean := sum / n; math.Abs(mean-10) > 0.05 {
		t.Fatalf("Normal(10,2) mean = %v", mean)
	}
}

func TestPerm(t *testing.T) {
	r := New(17)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	r := New(19)
	for trial := 0; trial < 100; trial++ {
		s := r.SampleWithoutReplacement(1, 100, 6)
		if len(s) != 6 {
			t.Fatalf("sample size %d", len(s))
		}
		seen := map[int]bool{}
		for _, v := range s {
			if v < 1 || v > 100 || seen[v] {
				t.Fatalf("bad sample %v", s)
			}
			seen[v] = true
		}
	}
	// Exhaustive draw returns the whole population.
	s := r.SampleWithoutReplacement(5, 9, 5)
	seen := map[int]bool{}
	for _, v := range s {
		seen[v] = true
	}
	for v := 5; v <= 9; v++ {
		if !seen[v] {
			t.Fatalf("exhaustive sample missing %d: %v", v, s)
		}
	}
}

func TestSampleWithoutReplacementPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("oversized sample should panic")
		}
	}()
	New(1).SampleWithoutReplacement(1, 3, 4)
}

func TestShuffle(t *testing.T) {
	r := New(23)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make([]bool, 8)
	for _, v := range xs {
		seen[v] = true
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("shuffle lost element %d", i)
		}
	}
}

func TestUniform(t *testing.T) {
	r := New(29)
	for i := 0; i < 1000; i++ {
		v := r.Uniform(-2, 5)
		if v < -2 || v >= 5 {
			t.Fatalf("Uniform out of range: %v", v)
		}
	}
}
