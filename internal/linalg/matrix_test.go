package linalg

import (
	"math"
	"testing"

	"github.com/factcheck/cleansel/internal/rng"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Max(math.Abs(a), math.Abs(b)))
}

// randSPD builds a random symmetric positive definite n×n matrix A·Aᵀ + I.
func randSPD(r *rng.RNG, n int) *Matrix {
	a := NewMatrix(n, n)
	for i := range a.Data {
		a.Data[i] = r.Uniform(-1, 1)
	}
	spd := a.Mul(a.T())
	for i := 0; i < n; i++ {
		spd.Set(i, i, spd.At(i, i)+1)
	}
	return spd
}

func TestMatrixBasics(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Fatal("At broken")
	}
	m.Set(0, 0, 9)
	if m.At(0, 0) != 9 {
		t.Fatal("Set broken")
	}
	c := m.Clone()
	c.Set(0, 0, 0)
	if m.At(0, 0) != 9 {
		t.Fatal("Clone is shallow")
	}
	tr := m.T()
	if tr.At(1, 0) != m.At(0, 1) {
		t.Fatal("T broken")
	}
}

func TestMulAgainstHand(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	b := FromRows([][]float64{{7, 8}, {9, 10}, {11, 12}})
	got := a.Mul(b)
	want := FromRows([][]float64{{58, 64}, {139, 154}})
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if got.At(i, j) != want.At(i, j) {
				t.Fatalf("Mul = %+v", got)
			}
		}
	}
}

func TestMulVec(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	got := a.MulVec([]float64{5, 6})
	if got[0] != 17 || got[1] != 39 {
		t.Fatalf("MulVec = %v", got)
	}
}

func TestIdentityAndSub(t *testing.T) {
	i3 := Identity(3)
	z := i3.Sub(i3)
	for _, v := range z.Data {
		if v != 0 {
			t.Fatal("I - I != 0")
		}
	}
}

func TestSubmatrix(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})
	s := m.Submatrix([]int{0, 2}, []int{1})
	if s.Rows != 2 || s.Cols != 1 || s.At(0, 0) != 2 || s.At(1, 0) != 8 {
		t.Fatalf("Submatrix = %+v", s)
	}
}

func TestCholeskyRoundTrip(t *testing.T) {
	r := rng.New(101)
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(8)
		m := randSPD(r, n)
		l, err := Cholesky(m)
		if err != nil {
			t.Fatalf("Cholesky failed on SPD matrix: %v", err)
		}
		back := l.Mul(l.T())
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if !almostEq(back.At(i, j), m.At(i, j), 1e-9) {
					t.Fatalf("trial %d: L·Lᵀ != M at (%d,%d): %v vs %v",
						trial, i, j, back.At(i, j), m.At(i, j))
				}
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := Cholesky(m); err == nil {
		t.Fatal("expected ErrNotPD")
	}
}

func TestSolveSPD(t *testing.T) {
	r := rng.New(7)
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(8)
		m := randSPD(r, n)
		want := make([]float64, n)
		for i := range want {
			want[i] = r.Uniform(-5, 5)
		}
		b := m.MulVec(want)
		got, err := SolveSPD(m, b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if !almostEq(got[i], want[i], 1e-7) {
				t.Fatalf("solve mismatch at %d: %v vs %v", i, got[i], want[i])
			}
		}
	}
}

func TestInverseSPD(t *testing.T) {
	r := rng.New(13)
	m := randSPD(r, 5)
	inv, err := InverseSPD(m)
	if err != nil {
		t.Fatal(err)
	}
	prod := m.Mul(inv)
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if !almostEq(prod.At(i, j), want, 1e-8) {
				t.Fatalf("M·M⁻¹ not identity at (%d,%d): %v", i, j, prod.At(i, j))
			}
		}
	}
}

func TestQuadForm(t *testing.T) {
	m := FromRows([][]float64{{2, 1}, {1, 3}})
	x := []float64{1, 2}
	// xᵀMx = 2 + 2 + 2 + 12 = 18.
	if got := QuadForm(m, x); got != 18 {
		t.Fatalf("QuadForm = %v", got)
	}
}

// Conditional covariance of a 2-var normal must match the textbook formula
// σ2²(1-ρ²).
func TestConditionalCovarianceBivariate(t *testing.T) {
	s1, s2, rho := 2.0, 3.0, 0.6
	sigma := FromRows([][]float64{
		{s1 * s1, rho * s1 * s2},
		{rho * s1 * s2, s2 * s2},
	})
	cc, err := ConditionalCovariance(sigma, []int{1}, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	want := s2 * s2 * (1 - rho*rho)
	if !almostEq(cc.At(0, 0), want, 1e-12) {
		t.Fatalf("conditional var = %v, want %v", cc.At(0, 0), want)
	}
}

func TestConditionalCovarianceEmptyCond(t *testing.T) {
	sigma := FromRows([][]float64{{4, 1}, {1, 9}})
	cc, err := ConditionalCovariance(sigma, []int{0, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cc.At(0, 0) != 4 || cc.At(1, 1) != 9 {
		t.Fatal("empty conditioning should return marginal covariance")
	}
}

// Property: conditioning on more variables never increases the conditional
// variance of the remaining ones (diagonal entries shrink).
func TestConditioningShrinksVariance(t *testing.T) {
	r := rng.New(31)
	for trial := 0; trial < 30; trial++ {
		n := 4 + r.Intn(4)
		sigma := randSPD(r, n)
		keep := []int{0}
		c1, err := ConditionalCovariance(sigma, keep, []int{1})
		if err != nil {
			t.Fatal(err)
		}
		c2, err := ConditionalCovariance(sigma, keep, []int{1, 2})
		if err != nil {
			t.Fatal(err)
		}
		if c2.At(0, 0) > c1.At(0, 0)+1e-9 {
			t.Fatalf("conditioning on more increased variance: %v > %v",
				c2.At(0, 0), c1.At(0, 0))
		}
		if c1.At(0, 0) > sigma.At(0, 0)+1e-9 {
			t.Fatalf("conditioning increased variance over marginal")
		}
	}
}

// Verify the Schur complement via Monte Carlo on a 3-variable normal.
func TestConditionalCovarianceMonteCarlo(t *testing.T) {
	r := rng.New(77)
	sigma := randSPD(r, 3)
	l, err := Cholesky(sigma)
	if err != nil {
		t.Fatal(err)
	}
	// Sample jointly; regress X0 on X2 bucketed near a value. Instead of
	// bucketing (noisy), use the identity: residual variance of X0 after
	// subtracting the best linear predictor from X2 equals Σ_{0|2}.
	shift, err := ConditionalMeanShift(sigma, []int{0}, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	b := shift.At(0, 0)
	const nSamp = 200000
	var acc, acc2 float64
	z := make([]float64, 3)
	for i := 0; i < nSamp; i++ {
		for j := range z {
			z[j] = r.NormFloat64()
		}
		x := l.MulVec(z)
		res := x[0] - b*x[2]
		acc += res
		acc2 += res * res
	}
	mean := acc / nSamp
	gotVar := acc2/nSamp - mean*mean
	cc, err := ConditionalCovariance(sigma, []int{0}, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gotVar-cc.At(0, 0)) > 0.02*cc.At(0, 0) {
		t.Fatalf("MC residual var %v vs Schur %v", gotVar, cc.At(0, 0))
	}
}

func TestConditionalMeanShiftBivariate(t *testing.T) {
	s1, s2, rho := 2.0, 3.0, 0.5
	sigma := FromRows([][]float64{
		{s1 * s1, rho * s1 * s2},
		{rho * s1 * s2, s2 * s2},
	})
	b, err := ConditionalMeanShift(sigma, []int{1}, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	want := rho * s2 / s1
	if !almostEq(b.At(0, 0), want, 1e-12) {
		t.Fatalf("mean shift = %v, want %v", b.At(0, 0), want)
	}
}

func TestNearestPSDJitter(t *testing.T) {
	// Rank-deficient PSD matrix (perfectly correlated pair).
	m := FromRows([][]float64{{1, 1}, {1, 1}})
	fixed, err := NearestPSDJitter(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Cholesky(fixed); err != nil {
		t.Fatal("jittered matrix still not PD")
	}
	// Asymmetric input is rejected.
	if _, err := NearestPSDJitter(FromRows([][]float64{{1, 2}, {0, 1}})); err == nil {
		t.Fatal("asymmetric matrix should be rejected")
	}
}

func TestIsSymmetric(t *testing.T) {
	if !FromRows([][]float64{{1, 2}, {2, 1}}).IsSymmetric(0) {
		t.Fatal("symmetric matrix misreported")
	}
	if FromRows([][]float64{{1, 2}, {3, 1}}).IsSymmetric(1e-12) {
		t.Fatal("asymmetric matrix misreported")
	}
	if FromRows([][]float64{{1, 2, 3}}).IsSymmetric(0) {
		t.Fatal("non-square cannot be symmetric")
	}
}
