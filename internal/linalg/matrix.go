// Package linalg implements the small amount of dense linear algebra the
// library needs to model correlated data errors: symmetric matrices,
// Cholesky factorization, SPD solves, and the Schur-complement conditional
// covariance of a multivariate normal. It is written for clarity at the
// problem sizes of the paper (tens of variables), not BLAS-level speed.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, Data[i*Cols+j]
}

// NewMatrix returns a zero r×c matrix.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic("linalg: negative dimension")
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// FromRows builds a matrix from row slices (all rows must share a length).
func FromRows(rows [][]float64) *Matrix {
	r := len(rows)
	if r == 0 {
		return NewMatrix(0, 0)
	}
	c := len(rows[0])
	m := NewMatrix(r, c)
	for i, row := range rows {
		if len(row) != c {
			panic("linalg: ragged rows")
		}
		copy(m.Data[i*c:(i+1)*c], row)
	}
	return m
}

// Identity returns the n×n identity.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// T returns the transpose.
func (m *Matrix) T() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// Mul returns m·b.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: dimension mismatch %dx%d · %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < b.Cols; j++ {
				out.Data[i*out.Cols+j] += a * b.At(k, j)
			}
		}
	}
	return out
}

// MulVec returns m·x for a column vector x.
func (m *Matrix) MulVec(x []float64) []float64 {
	if m.Cols != len(x) {
		panic("linalg: MulVec dimension mismatch")
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		var s float64
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// Sub returns m − b.
func (m *Matrix) Sub(b *Matrix) *Matrix {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic("linalg: Sub dimension mismatch")
	}
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] -= b.Data[i]
	}
	return out
}

// Submatrix extracts rows ri and columns ci (index lists, in order).
func (m *Matrix) Submatrix(ri, ci []int) *Matrix {
	out := NewMatrix(len(ri), len(ci))
	for a, i := range ri {
		for b, j := range ci {
			out.Set(a, b, m.At(i, j))
		}
	}
	return out
}

// IsSymmetric reports whether m is square and symmetric within tol.
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// ErrNotPD is returned when a Cholesky factorization encounters a pivot
// that is not positive.
var ErrNotPD = errors.New("linalg: matrix is not positive definite")

// Cholesky computes the lower-triangular L with L·Lᵀ = m. It returns
// ErrNotPD if m is not (numerically) positive definite.
func Cholesky(m *Matrix) (*Matrix, error) {
	if m.Rows != m.Cols {
		return nil, errors.New("linalg: Cholesky of non-square matrix")
	}
	n := m.Rows
	l := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		d := m.At(j, j)
		for k := 0; k < j; k++ {
			d -= l.At(j, k) * l.At(j, k)
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, ErrNotPD
		}
		l.Set(j, j, math.Sqrt(d))
		for i := j + 1; i < n; i++ {
			s := m.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/l.At(j, j))
		}
	}
	return l, nil
}

// SolveSPD solves m·x = b for symmetric positive definite m via Cholesky.
func SolveSPD(m *Matrix, b []float64) ([]float64, error) {
	l, err := Cholesky(m)
	if err != nil {
		return nil, err
	}
	return solveChol(l, b), nil
}

// solveChol solves L·Lᵀ·x = b given the Cholesky factor L.
func solveChol(l *Matrix, b []float64) []float64 {
	n := l.Rows
	// Forward solve L·y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * y[k]
		}
		y[i] = s / l.At(i, i)
	}
	// Back solve Lᵀ·x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x
}

// InverseSPD returns the inverse of a symmetric positive definite matrix.
func InverseSPD(m *Matrix) (*Matrix, error) {
	l, err := Cholesky(m)
	if err != nil {
		return nil, err
	}
	n := m.Rows
	inv := NewMatrix(n, n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		col := solveChol(l, e)
		for i := 0; i < n; i++ {
			inv.Set(i, j, col[i])
		}
	}
	return inv, nil
}

// QuadForm returns xᵀ·m·x.
func QuadForm(m *Matrix, x []float64) float64 {
	if m.Rows != len(x) || m.Cols != len(x) {
		panic("linalg: QuadForm dimension mismatch")
	}
	var total float64
	for i := 0; i < m.Rows; i++ {
		var row float64
		for j := 0; j < m.Cols; j++ {
			row += m.At(i, j) * x[j]
		}
		total += x[i] * row
	}
	return total
}

// ConditionalCovariance returns the covariance of X_keep given X_cond = v
// under a joint zero-mean normal with covariance sigma:
//
//	Σ_{keep|cond} = Σ_kk − Σ_kc · Σ_cc⁻¹ · Σ_ck   (Schur complement)
//
// cond may be empty, in which case the marginal covariance of keep is
// returned. The result does not depend on the conditioning value v, which
// is why none is passed.
func ConditionalCovariance(sigma *Matrix, keep, cond []int) (*Matrix, error) {
	skk := sigma.Submatrix(keep, keep)
	if len(cond) == 0 {
		return skk, nil
	}
	skc := sigma.Submatrix(keep, cond)
	scc := sigma.Submatrix(cond, cond)
	l, err := Cholesky(scc)
	if err != nil {
		return nil, err
	}
	// Compute Σ_kc · Σ_cc⁻¹ · Σ_ck column by column: solve Σ_cc z = Σ_ck[:,j].
	n := len(keep)
	c := len(cond)
	adj := NewMatrix(n, n)
	col := make([]float64, c)
	for j := 0; j < n; j++ {
		for i := 0; i < c; i++ {
			col[i] = skc.At(j, i) // Σ_ck[:, j] = Σ_kc[j, :]ᵀ
		}
		z := solveChol(l, col)
		for i := 0; i < n; i++ {
			var s float64
			for k := 0; k < c; k++ {
				s += skc.At(i, k) * z[k]
			}
			adj.Set(i, j, s)
		}
	}
	return skk.Sub(adj), nil
}

// ConditionalMeanShift returns the matrix B = Σ_kc · Σ_cc⁻¹ such that
// E[X_keep | X_cond = v] = μ_keep + B · (v − μ_cond).
func ConditionalMeanShift(sigma *Matrix, keep, cond []int) (*Matrix, error) {
	if len(cond) == 0 {
		return NewMatrix(len(keep), 0), nil
	}
	skc := sigma.Submatrix(keep, cond)
	scc := sigma.Submatrix(cond, cond)
	inv, err := InverseSPD(scc)
	if err != nil {
		return nil, err
	}
	return skc.Mul(inv), nil
}

// NearestPSDJitter adds a small multiple of the identity until the matrix
// becomes positive definite, returning the jittered copy. It is used to
// repair covariance matrices assembled from data that are PSD only up to
// round-off. The total jitter is capped at ~1e-5 of the mean diagonal, so
// genuinely indefinite matrices still fail with ErrNotPD rather than being
// silently distorted into a different model.
func NearestPSDJitter(m *Matrix) (*Matrix, error) {
	if !m.IsSymmetric(1e-8) {
		return nil, errors.New("linalg: jitter requires a symmetric matrix")
	}
	// Start from a jitter proportional to the mean diagonal magnitude.
	var diag float64
	for i := 0; i < m.Rows; i++ {
		diag += math.Abs(m.At(i, i))
	}
	if m.Rows > 0 {
		diag /= float64(m.Rows)
	}
	jitter := diag * 1e-12
	if jitter == 0 {
		jitter = 1e-12
	}
	cur := m.Clone()
	for attempt := 0; attempt < 23; attempt++ {
		if _, err := Cholesky(cur); err == nil {
			return cur, nil
		}
		for i := 0; i < cur.Rows; i++ {
			cur.Set(i, i, cur.At(i, i)+jitter)
		}
		jitter *= 2
	}
	return nil, ErrNotPD
}
