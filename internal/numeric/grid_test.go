package numeric

import (
	"math"
	"testing"
)

func TestDefaultGridMatchesLegacyKeys(t *testing.T) {
	g := DefaultGrid()
	for _, x := range []float64{0, 1, -1, 3.25, 17.0 / 12.0, 99.999999, -123456.789, 9.9e7} {
		if g.Key(x) != QuantizeKey(x) {
			t.Fatalf("Key(%v) = %d, QuantizeKey = %d", x, g.Key(x), QuantizeKey(x))
		}
		if g.Value(g.Key(x)) != UnquantizeKey(QuantizeKey(x)) {
			t.Fatalf("Value mismatch at %v", x)
		}
	}
	if !g.IsDefault() {
		t.Fatal("DefaultGrid not IsDefault")
	}
	if g.Resolution() != 1e-9 {
		t.Fatalf("resolution = %v", g.Resolution())
	}
}

func TestGridForRegimes(t *testing.T) {
	cases := []struct {
		reach     float64
		wantScale float64
	}{
		{0, 1e9},
		{1, 1e9},
		{1e8, 1e9},        // boundary inclusive: legacy grid
		{2e8, 1e6},        // 2e8·1e7 = 2e15 > 1e15, so one decade down
		{1e12, 1000},      // keys reach exactly 1e15
		{9e14, 1},         // keys reach 9e14
		{1e18, 1e-3},      // beyond exact-integer float range, still keyed
		{math.NaN(), 1e9}, // total function: NaN gets the legacy grid
	}
	for _, c := range cases {
		g := GridFor(c.reach)
		if g.Scale() != c.wantScale {
			t.Errorf("GridFor(%v).Scale = %v, want %v", c.reach, g.Scale(), c.wantScale)
		}
		if r := c.reach; r > QuantizeMaxAbs && !math.IsNaN(r) && !math.IsInf(r, 0) {
			if keys := r * g.Scale(); keys > GridKeyMax || keys < GridKeyMax/10-1 {
				t.Errorf("GridFor(%v): keys reach %v outside (%v, %v]", r, keys, GridKeyMax/10, float64(GridKeyMax))
			}
		}
	}
	// +Inf clamps to the coarsest finite grid: positive scale, keys in range.
	g := GridFor(math.Inf(1))
	if !(g.Scale() > 0) || math.MaxFloat64*g.Scale() > GridKeyMax {
		t.Errorf("GridFor(+Inf).Scale = %v", g.Scale())
	}
}

func TestGridKeyRoundTripScaleAware(t *testing.T) {
	g := GridFor(1e12) // scale 1000, resolution 1e-3
	for _, x := range []float64{0, 1e12, -9.9999e11, 123456789.25, 1e12 - 0.005} {
		k := g.Key(x)
		v := g.Value(k)
		if math.Abs(v-x) > g.Resolution()/2*1.0000001 {
			t.Errorf("round trip %v -> key %d -> %v (res %v)", x, k, v, g.Resolution())
		}
		if g.Key(v) != k {
			t.Errorf("Key(Value(%d)) = %d", k, g.Key(v))
		}
	}
	// Monotone: larger values never get smaller keys.
	if g.Key(1e12) < g.Key(1e12-1) {
		t.Fatal("keys not monotone")
	}
}

func TestExactGridIntegers(t *testing.T) {
	g := ExactGrid(1)
	for _, x := range []float64{0, 1e12, -3e14, 1 << 52} {
		if g.Value(g.Key(x)) != x {
			t.Errorf("integer %v not exact on scale-1 grid", x)
		}
	}
	q := ExactGrid(4)
	for _, x := range []float64{0.25, 1e12 + 0.75, -2.5} {
		if q.Value(q.Key(x)) != x {
			t.Errorf("quarter-integral %v not exact on scale-4 grid", x)
		}
	}
}

// TestGridKeySaturates documents the boundary behavior of the key
// conversion: scaled products beyond ±2^63 saturate to the int64
// extremes and NaN keys to 0, instead of Go's implementation-defined
// out-of-range float→int conversion. In-contract magnitudes
// (|x·scale| ≤ GridKeyMax) are untouched — the constructors never build
// grids whose keys approach the boundary; this pins the behavior for
// direct Key/QuantizeKey callers feeding unvalidated values.
func TestGridKeySaturates(t *testing.T) {
	g := DefaultGrid() // scale 1e9: the boundary sits at |x| = 2^63/1e9
	cases := []struct {
		x    float64
		want int64
	}{
		{1e300, math.MaxInt64},
		{-1e300, math.MinInt64},
		{math.MaxFloat64, math.MaxInt64},
		{-math.MaxFloat64, math.MinInt64},
		{math.Inf(1), math.MaxInt64},
		{math.Inf(-1), math.MinInt64},
		{math.NaN(), 0},
		// 2^63 / 1e9 scaled back up rounds to exactly 2^63: the first
		// saturating magnitude. One part in 2^10 below it converts.
		{9.223372036854775808e9, math.MaxInt64},
		{-9.223372036854775808e9, math.MinInt64},
		{9.2e9, int64(math.Round(9.2e9 * 1e9))},
		{-9.2e9, int64(math.Round(-9.2e9 * 1e9))},
	}
	for _, c := range cases {
		if got := g.Key(c.x); got != c.want {
			t.Errorf("Key(%v) = %d, want %d", c.x, got, c.want)
		}
	}
	// In-contract keys are bit-identical with the plain conversion.
	for _, x := range []float64{0, 1, -1, 3.25, 99.999999, -123456.789, 9.9e7, 1e8} {
		if got, want := g.Key(x), int64(math.Round(x*1e9)); got != want {
			t.Errorf("in-contract Key(%v) = %d, want %d", x, got, want)
		}
	}
}

// TestKeysExactWithin pins the dense-kernel exactness certificate: the
// scaled reach must stay inside float64's exact-integer range.
func TestKeysExactWithin(t *testing.T) {
	g := DefaultGrid()
	if !g.KeysExactWithin(9e6) {
		t.Error("9e6·1e9 = 9e15 ≤ 2^53 should certify")
	}
	if g.KeysExactWithin(1e8) {
		t.Error("1e8·1e9 = 1e17 > 2^53 must not certify")
	}
	e := ExactGrid(1)
	if !e.KeysExactWithin(1 << 53) {
		t.Error("2^53 on the unit grid should certify")
	}
	if e.KeysExactWithin(math.Nextafter(1<<53, math.Inf(1))) {
		t.Error("past 2^53 must not certify")
	}
	if GridFor(1e12).KeysExactWithin(math.NaN()) {
		t.Error("NaN reach must not certify")
	}
}

// TestCellsPerStride pins the stride→cells bridge the dense spans index
// through: exact positive integer counts pass, everything else refuses.
func TestCellsPerStride(t *testing.T) {
	g := DefaultGrid() // scale 1e9
	if c, ok := g.CellsPerStride(1); !ok || c != 1e9 {
		t.Errorf("unit stride on 1e-9 grid: %d, %v", c, ok)
	}
	if c, ok := g.CellsPerStride(0.25); !ok || c != 25e7 {
		t.Errorf("quarter stride: %d, %v", c, ok)
	}
	if _, ok := g.CellsPerStride(1.0 / 1024); ok {
		t.Error("1e9/1024 is not integral; must refuse")
	}
	u := ExactGrid(1)
	if c, ok := u.CellsPerStride(1); !ok || c != 1 {
		t.Errorf("unit stride on unit grid: %d, %v", c, ok)
	}
	if _, ok := u.CellsPerStride(0.5); ok {
		t.Error("sub-cell stride must refuse")
	}
	if _, ok := GridFor(1e18).CellsPerStride(1); ok {
		t.Error("relative grid (scale < 1) must refuse integer strides")
	}
	if _, ok := u.CellsPerStride(math.NaN()); ok {
		t.Error("NaN stride must refuse")
	}
}

// FuzzGridKey fuzzes the key/value round trip: for any finite x within
// the grid's reach, Value(Key(x)) stays within half a resolution (plus
// the float round-off the legacy regime always had), keys are monotone,
// and scale-aware keys round-trip exactly.
func FuzzGridKey(f *testing.F) {
	f.Add(0.0, 1.0)
	f.Add(1.5, 10.0)
	f.Add(-123456.789, 1e6)
	f.Add(9.9e11, 1e12)
	f.Add(-1e12, 5e12)
	f.Add(1e8, 1e8)
	f.Add(3.25, 1e14)
	f.Fuzz(func(t *testing.T, x, reach float64) {
		if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(reach) || math.IsInf(reach, 0) {
			t.Skip()
		}
		reach = math.Abs(reach)
		if reach > 1e15 {
			t.Skip() // beyond GridKeyMax the cells are coarser than ulp anyway
		}
		if math.Abs(x) > reach {
			t.Skip()
		}
		g := GridFor(reach)
		k := g.Key(x)
		v := g.Value(k)
		// Half a cell, plus a few ulps of the value itself (the key
		// boundary is decided on the rounded product x·scale), plus the
		// scaled-product round-off the legacy regime tolerates near its
		// ceiling (ulp(1e17) ≈ 16 keys).
		ulp := math.Nextafter(math.Abs(x)+g.Resolution(), math.Inf(1)) - (math.Abs(x) + g.Resolution())
		slack := g.Resolution()*0.5 + 4*ulp
		if g.IsDefault() {
			slack += 64e-9
		}
		if math.Abs(v-x) > slack {
			t.Fatalf("round trip %v -> key %d -> %v exceeds %v (scale %v)", x, k, v, slack, g.Scale())
		}
		if up := g.Key(x + g.Resolution()); up < k {
			t.Fatalf("keys not monotone at %v (scale %v): %d then %d", x, g.Scale(), k, up)
		}
		if !g.IsDefault() {
			if g.Key(v) != k {
				t.Fatalf("scale-aware key %d does not round-trip (value %v, scale %v)", k, v, g.Scale())
			}
		}
	})
}
