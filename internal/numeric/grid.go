package numeric

import "math"

// Grid is a quantization scheme for collapsing nearby floats onto shared
// int64 map keys: Key(x) = round(x·scale), so the grid's resolution (the
// width of one cell) is 1/scale. Convolution and pooling code uses a Grid
// to merge outcomes that are equal up to round-off while keeping the
// state space at the number of distinct outcomes.
//
// Three regimes, chosen by the constructors:
//
//   - DefaultGrid (scale 1e9): the legacy fixed 1e-9 absolute grid. Exact
//     for every workload whose reachable magnitude stays inside
//     ±QuantizeMaxAbs; all historical figures were produced on it, so
//     callers whose reach fits MUST keep using it bit-identically.
//   - ExactGrid (dyadic scale 2^k): for supports that are integral after
//     scaling by a power of two. Multiplying a float by 2^k is lossless,
//     and integers are exact in float64 up to 2^53, so convolution on
//     this grid has zero rounding at any magnitude ≤ 2^53/2^k.
//   - GridFor (power-of-ten scale from the reachable magnitude): relative
//     quantization for everything else. The scale is the largest power of
//     ten keeping every key inside ±GridKeyMax, which pins the relative
//     resolution at the top of the range to 1e-15..1e-14 — at or below
//     the relative error float64 arithmetic itself accumulates — while
//     keys stay far from int64 overflow and inside float64's exact
//     integer range.
//
// The zero Grid is invalid; always build one with a constructor.
type Grid struct {
	scale float64
}

// GridKeyMax bounds |Key(x)| for grids built by GridFor: 1e15 < 2^53, so
// a key is always an exactly representable float64 integer and the
// round-half-away rounding of x·scale is computed on a product that still
// carries sub-cell precision.
const GridKeyMax = 1e15

// DefaultGrid returns the legacy absolute grid with 1e-9 resolution.
// Callers whose reachable magnitude is within ±QuantizeMaxAbs use it so
// that results stay bit-identical with everything ever computed on the
// fixed grid.
func DefaultGrid() Grid { return Grid{scale: 1e9} }

// ExactGrid returns the grid with the given power-of-two scale: keys are
// round(x·2^k). For values that are integral after scaling by 2^k the
// grid is exact (no value aliasing, no rounding) while |x|·2^k ≤ 2^53.
func ExactGrid(pow2Scale float64) Grid { return Grid{scale: pow2Scale} }

// GridFor returns the quantization grid for a convolution whose
// reachable magnitude is reach: the legacy 1e-9 grid whenever reach fits
// inside ±QuantizeMaxAbs (bit-for-bit the historical behavior), and
// otherwise the finest power-of-ten grid whose keys stay inside
// ±GridKeyMax. A NaN reach gets the legacy grid and an infinite one the
// coarsest finite grid, so the function is total.
func GridFor(reach float64) Grid {
	if math.IsInf(reach, 0) {
		reach = math.MaxFloat64
	}
	if !(reach > QuantizeMaxAbs) {
		return DefaultGrid()
	}
	exp := math.Floor(math.Log10(GridKeyMax / reach))
	scale := math.Pow(10, exp)
	// Guard against log/pow round-off landing one decade too fine.
	if reach*scale > GridKeyMax {
		scale /= 10
	}
	return Grid{scale: scale}
}

// maxInt64Float is 2^63, the smallest float64 magnitude that no longer
// fits an int64 (−2^63 itself is exactly MinInt64, so only the open
// upper side saturates); used by Key to make the float→int conversion
// total instead of implementation-defined.
const maxInt64Float = 9.223372036854775808e18

// MaxExactKeyAbs is 2^53, the largest magnitude at which float64
// represents every integer exactly. While |x|·scale stays within it the
// scaled product that Key rounds still carries sub-cell precision, so
// keys of exact lattice values are themselves exact; see KeysExactWithin.
const MaxExactKeyAbs = 1 << 53

// Key collapses x onto the grid: the index of the cell containing x.
// The conversion is total: a scaled product beyond ±2^63 — far outside
// every constructor's documented key range — saturates to
// MinInt64/MaxInt64 instead of hitting Go's implementation-defined
// float→int conversion, and a NaN input keys to 0. In-contract callers
// (|x·scale| ≤ GridKeyMax) get bit-identical keys either way; the
// saturation only closes the footgun for direct QuantizeKey/Key callers
// feeding unvalidated magnitudes.
func (g Grid) Key(x float64) int64 {
	r := math.Round(x * g.scale)
	switch {
	case math.IsNaN(r):
		return 0
	case r >= maxInt64Float:
		return math.MaxInt64
	case r < -maxInt64Float:
		return math.MinInt64
	}
	return int64(r)
}

// KeysExactWithin reports whether every key the grid assigns inside
// ±reach is computed on an exact scaled product: |x|·scale ≤ 2^53 keeps
// x·scale inside float64's exact-integer range, so for values that are
// themselves exact multiples of a common stride the product — and hence
// the key — is exact, distinct lattice values at least one cell apart
// get distinct keys, and dense span indexing agrees with map keying bit
// for bit. Dense convolution kernels require this certificate before
// replacing hashed keys with (key − lo) offsets.
func (g Grid) KeysExactWithin(reach float64) bool {
	return reach*g.scale <= MaxExactKeyAbs
}

// CellsPerStride returns the number of grid cells spanned by one step of
// a value lattice with the given stride, when that count is an exact
// positive integer (the condition under which values that are stride
// apart land on keys exactly cells apart, making a dense span indexable
// by (key − lo)/cells). The caller must pass a stride whose product with
// the scale is computed exactly — powers of two always are.
func (g Grid) CellsPerStride(stride float64) (int64, bool) {
	t := stride * g.scale
	if !(t >= 1) || t > MaxExactKeyAbs || math.Trunc(t) != t {
		return 0, false
	}
	return int64(t), true
}

// Value returns the center of cell k, inverting Key up to one resolution.
func (g Grid) Value(k int64) float64 { return float64(k) / g.scale }

// Resolution returns the width of one grid cell.
func (g Grid) Resolution() float64 { return 1 / g.scale }

// Scale returns the keys-per-unit scale (the reciprocal resolution).
func (g Grid) Scale() float64 { return g.scale }

// IsDefault reports whether g is the legacy 1e-9 absolute grid.
func (g Grid) IsDefault() bool { return g.scale == 1e9 }
