// Package numeric provides the scalar numerical routines shared by the
// probability and optimization substrates: compensated summation, stable
// moment accumulation, the standard normal CDF and quantile, and tolerant
// float comparison.
package numeric

import (
	"math"
	"sort"
)

// Eps is the default relative tolerance for float comparisons in this
// library. Expected-variance computations chain many small products, so a
// tolerance well above machine epsilon keeps property tests meaningful
// without masking real bugs.
const Eps = 1e-9

// AlmostEqual reports whether a and b are equal within tol absolutely or
// relatively (whichever is larger in magnitude terms).
func AlmostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	if diff <= tol {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= tol*scale
}

// Sum returns the Neumaier-compensated sum of xs. It is accurate even when
// the terms vary wildly in magnitude (e.g. probabilities times squared
// claim values in the CDC datasets, which span 1e-6 .. 1e13).
func Sum(xs []float64) float64 {
	var sum, comp float64
	for _, x := range xs {
		t := sum + x
		if math.Abs(sum) >= math.Abs(x) {
			comp += (sum - t) + x
		} else {
			comp += (x - t) + sum
		}
		sum = t
	}
	return sum + comp
}

// KahanAcc is a running compensated accumulator.
type KahanAcc struct {
	sum, comp float64
}

// Add folds x into the accumulator.
func (k *KahanAcc) Add(x float64) {
	t := k.sum + x
	if math.Abs(k.sum) >= math.Abs(x) {
		k.comp += (k.sum - t) + x
	} else {
		k.comp += (x - t) + k.sum
	}
	k.sum = t
}

// Value returns the compensated total.
func (k *KahanAcc) Value() float64 { return k.sum + k.comp }

// Welford accumulates a sample mean and variance in a numerically stable
// single pass.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds an observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the sample mean (0 for an empty accumulator).
func (w *Welford) Mean() float64 { return w.mean }

// PopVar returns the population variance (divides by n).
func (w *Welford) PopVar() float64 {
	if w.n == 0 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// SampleVar returns the unbiased sample variance (divides by n-1).
func (w *Welford) SampleVar() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// NormalCDF returns P(Z <= z) for a standard normal Z.
func NormalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// NormalQuantile returns the z with NormalCDF(z) = p, for p in (0, 1).
// It uses the Acklam rational approximation refined by one Halley step,
// giving ~1e-15 relative accuracy — plenty for discretizing CDC error
// models into a handful of equal-probability bins.
func NormalQuantile(p float64) float64 {
	if math.IsNaN(p) || p <= 0 || p >= 1 {
		switch {
		case p == 0:
			return math.Inf(-1)
		case p == 1:
			return math.Inf(1)
		}
		return math.NaN()
	}
	// Coefficients for Acklam's approximation.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}
	const pLow = 0.02425
	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement step.
	e := NormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x
}

// NormalPDF returns the standard normal density at z.
func NormalPDF(z float64) float64 {
	return math.Exp(-z*z/2) / math.Sqrt(2*math.Pi)
}

// Clamp bounds x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// QuantizeMaxAbs is the magnitude ceiling within which the legacy 1e-9
// quantization grid of QuantizeKey is trustworthy. Beyond ~1e8 the
// float64 spacing approaches the grid resolution (ulp(1e8) ≈ 1.5e-8),
// so distinct sums can alias a key — and past ±9.2e9 the scaled value
// overflows int64 outright. Callers that build keys from data-derived
// magnitudes (support convolution) switch to a scale-aware Grid beyond
// this bound instead of silently degrading; see GridFor.
const QuantizeMaxAbs = 1e8

// QuantizeKey collapses a float to a map key with 1e-9 absolute resolution,
// so that convolution of discrete supports merges values that are equal up
// to round-off. Values must stay inside ±QuantizeMaxAbs for the grid to
// be exact; callers whose reachable magnitude can exceed the bound build
// a scale-aware Grid with GridFor instead.
func QuantizeKey(x float64) int64 { return DefaultGrid().Key(x) }

// UnquantizeKey inverts QuantizeKey up to the 1e-9 resolution.
func UnquantizeKey(k int64) float64 { return DefaultGrid().Value(k) }

// SortedKeys returns the keys of m sorted ascending; used to iterate
// convolution maps deterministically.
func SortedKeys(m map[int64]float64) []int64 {
	ks := make([]int64, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}
