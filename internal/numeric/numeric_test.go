package numeric

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAlmostEqual(t *testing.T) {
	cases := []struct {
		a, b, tol float64
		want      bool
	}{
		{1, 1, 1e-12, true},
		{1, 1 + 1e-13, 1e-12, true},
		{1, 1.1, 1e-12, false},
		{1e12, 1e12 + 1, 1e-9, true},
		{0, 1e-12, 1e-9, true},
		{0, 1e-3, 1e-9, false},
	}
	for _, c := range cases {
		if got := AlmostEqual(c.a, c.b, c.tol); got != c.want {
			t.Errorf("AlmostEqual(%v,%v,%v) = %v, want %v", c.a, c.b, c.tol, got, c.want)
		}
	}
}

func TestSumCompensation(t *testing.T) {
	// Classic cancellation case: naive summation loses the small terms.
	xs := []float64{1e16, 1, -1e16, 1}
	if got := Sum(xs); got != 2 {
		t.Fatalf("Sum = %v, want 2", got)
	}
}

func TestKahanAccMatchesSum(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				// Scale down to avoid overflow in the property.
				xs = append(xs, math.Mod(v, 1e6))
			}
		}
		var acc KahanAcc
		for _, x := range xs {
			acc.Add(x)
		}
		return AlmostEqual(acc.Value(), Sum(xs), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWelford(t *testing.T) {
	var w Welford
	data := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range data {
		w.Add(x)
	}
	if w.N() != len(data) {
		t.Fatalf("N = %d", w.N())
	}
	if !AlmostEqual(w.Mean(), 5, 1e-12) {
		t.Fatalf("mean = %v, want 5", w.Mean())
	}
	if !AlmostEqual(w.PopVar(), 4, 1e-12) {
		t.Fatalf("popvar = %v, want 4", w.PopVar())
	}
	if !AlmostEqual(w.SampleVar(), 32.0/7.0, 1e-12) {
		t.Fatalf("samplevar = %v, want %v", w.SampleVar(), 32.0/7.0)
	}
}

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.PopVar() != 0 || w.SampleVar() != 0 {
		t.Fatal("empty Welford should report zeros")
	}
	w.Add(3)
	if w.SampleVar() != 0 {
		t.Fatal("single-sample variance should be 0")
	}
}

func TestNormalCDFKnownValues(t *testing.T) {
	cases := []struct{ z, want float64 }{
		{0, 0.5},
		{1, 0.8413447460685429},
		{-1, 0.15865525393145707},
		{1.959963984540054, 0.975},
		{-4, 3.167124183311998e-05},
	}
	for _, c := range cases {
		if got := NormalCDF(c.z); !AlmostEqual(got, c.want, 1e-10) {
			t.Errorf("NormalCDF(%v) = %v, want %v", c.z, got, c.want)
		}
	}
}

func TestNormalQuantileRoundTrip(t *testing.T) {
	for _, p := range []float64{1e-8, 1e-4, 0.01, 0.05, 0.3, 0.5, 0.77, 0.95, 0.999, 1 - 1e-8} {
		z := NormalQuantile(p)
		if got := NormalCDF(z); !AlmostEqual(got, p, 1e-10) {
			t.Errorf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
}

func TestNormalQuantileEdge(t *testing.T) {
	if !math.IsInf(NormalQuantile(0), -1) {
		t.Fatal("quantile(0) should be -inf")
	}
	if !math.IsInf(NormalQuantile(1), +1) {
		t.Fatal("quantile(1) should be +inf")
	}
	if !math.IsNaN(NormalQuantile(-0.1)) || !math.IsNaN(NormalQuantile(1.1)) {
		t.Fatal("out-of-range quantile should be NaN")
	}
}

func TestNormalPDF(t *testing.T) {
	if !AlmostEqual(NormalPDF(0), 1/math.Sqrt(2*math.Pi), 1e-14) {
		t.Fatal("pdf(0) wrong")
	}
	if !AlmostEqual(NormalPDF(2), NormalPDF(-2), 1e-14) {
		t.Fatal("pdf should be symmetric")
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("clamp broken")
	}
}

func TestQuantizeKeyRoundTrip(t *testing.T) {
	for _, x := range []float64{0, 1, -1, 3.25, 17.0 / 12.0, 99.999999, -123456.789} {
		k := QuantizeKey(x)
		if got := UnquantizeKey(k); math.Abs(got-x) > 5e-10 {
			t.Errorf("quantize roundtrip %v -> %v", x, got)
		}
	}
	// Distinct nearby values must collapse only within resolution.
	if QuantizeKey(1.0) == QuantizeKey(1.0+1e-6) {
		t.Fatal("1e-6 apart values should not collapse")
	}
	if QuantizeKey(1.0) != QuantizeKey(1.0+1e-13) {
		t.Fatal("1e-13 apart values should collapse")
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[int64]float64{3: 1, -1: 1, 7: 1, 0: 1}
	ks := SortedKeys(m)
	want := []int64{-1, 0, 3, 7}
	for i, k := range ks {
		if k != want[i] {
			t.Fatalf("SortedKeys = %v", ks)
		}
	}
}

func TestQuantileMonotone(t *testing.T) {
	prev := math.Inf(-1)
	for p := 0.001; p < 1; p += 0.001 {
		z := NormalQuantile(p)
		if z < prev {
			t.Fatalf("quantile not monotone at p=%v", p)
		}
		prev = z
	}
}
