// Package claims models the fact-checking layer of §2.2: linear claim
// functions over an uncertain database, perturbation sets with
// sensibilities, the relative-strength function Δ, and the three claim
// quality measures — fairness (bias), uniqueness (duplicity), and
// robustness (fragility) — compiled into query.Functions that the MinVar
// and MaxPr machinery can optimize.
package claims

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"github.com/factcheck/cleansel/internal/query"
)

// Claim is a linear claim function q(X) = Const + Σ_i Coef[i]·X_i.
// Window-aggregate comparisons (Example 4), window sums ("the number of
// injuries is as low as Γ"), and general SQL aggregates over certain
// selection conditions all take this form (§3.4).
type Claim struct {
	Name  string
	Const float64
	Coef  map[int]float64

	vars []int // sorted keys of Coef, cached so Eval sums in a fixed order
}

// NewClaim builds a claim, dropping zero coefficients.
func NewClaim(name string, constant float64, coef map[int]float64) *Claim {
	c := make(map[int]float64, len(coef))
	for i, v := range coef {
		if v != 0 {
			c[i] = v
		}
	}
	return &Claim{Name: name, Const: constant, Coef: c, vars: sortedVarIDs(c)}
}

// Eval evaluates the claim at the full value vector x. Terms are
// summed in increasing variable order so the result does not depend on
// map iteration order (float addition is not associative).
func (c *Claim) Eval(x []float64) float64 {
	vars := c.vars
	if vars == nil { // literal-constructed value: no cached order
		vars = c.Vars()
	}
	s := c.Const
	for _, i := range vars {
		s += c.Coef[i] * x[i]
	}
	return s
}

// Vars returns the sorted object IDs referenced by the claim.
func (c *Claim) Vars() []int {
	return sortedVarIDs(c.Coef)
}

// sortedVarIDs returns the keys of a coefficient map in increasing order.
func sortedVarIDs(coef map[int]float64) []int {
	vars := make([]int, 0, len(coef))
	for i := range coef {
		vars = append(vars, i)
	}
	sort.Ints(vars)
	return vars
}

// WindowSum returns the claim Σ_{i=start}^{start+w-1} X_i.
func WindowSum(name string, start, w int) *Claim {
	coef := make(map[int]float64, w)
	for i := start; i < start+w; i++ {
		coef[i] = 1
	}
	return &Claim{Name: name, Coef: coef, vars: sortedVarIDs(coef)}
}

// WindowComparison returns the claim
//
//	Σ_{i=laterStart}^{laterStart+w-1} X_i − Σ_{i=earlierStart}^{earlierStart+w-1} X_i,
//
// the window-aggregate-comparison form of Example 4 oriented so a positive
// value means "the later window is larger" (e.g. adoptions went up).
func WindowComparison(name string, earlierStart, laterStart, w int) *Claim {
	coef := make(map[int]float64, 2*w)
	for i := earlierStart; i < earlierStart+w; i++ {
		coef[i] -= 1
	}
	for i := laterStart; i < laterStart+w; i++ {
		coef[i] += 1
	}
	return NewClaim(name, 0, coef)
}

// Direction tells which way a claim is "strong". A claim about a big
// increase is HigherIsStronger; a claim that a count is unusually low
// ("as low as Γ") is LowerIsStronger.
type Direction int

const (
	// HigherIsStronger means larger query results strengthen the claim.
	HigherIsStronger Direction = 1
	// LowerIsStronger means smaller query results strengthen the claim.
	LowerIsStronger Direction = -1
)

// Perturbed is one perturbation of the original claim together with its
// sensibility weight (§2.2) and the raw distance used to derive it.
type Perturbed struct {
	Claim       *Claim
	Sensibility float64
	Distance    float64
}

// Set is a perturbation set: the original claim, the strengthening
// direction, the reference value the relative-strength function compares
// against (normally q◦(u), or the asserted Γ), and the perturbations with
// sensibilities summing to 1.
type Set struct {
	Original *Claim
	Dir      Direction
	Ref      float64
	Perturbs []Perturbed
}

// NewSet assembles a perturbation set and normalizes sensibilities to sum
// to one. It returns an error if the set is empty or weights are invalid.
func NewSet(original *Claim, dir Direction, ref float64, perturbs []Perturbed) (*Set, error) {
	if len(perturbs) == 0 {
		return nil, fmt.Errorf("claims: perturbation set for %q is empty", original.Name)
	}
	var tot float64
	for _, p := range perturbs {
		if p.Sensibility < 0 || math.IsNaN(p.Sensibility) {
			return nil, fmt.Errorf("claims: invalid sensibility %v", p.Sensibility)
		}
		tot += p.Sensibility
	}
	if tot <= 0 {
		return nil, fmt.Errorf("claims: sensibilities of %q sum to %v", original.Name, tot)
	}
	out := &Set{Original: original, Dir: dir, Ref: ref}
	out.Perturbs = make([]Perturbed, len(perturbs))
	copy(out.Perturbs, perturbs)
	for i := range out.Perturbs {
		out.Perturbs[i].Sensibility /= tot
	}
	return out, nil
}

// Signature returns a canonical identity of everything a quality
// assessment depends on: the direction, the reference, and the ordered
// perturbations (variables, coefficients, constants, normalized
// sensibilities — all floats as exact IEEE-754 bits). Claim NAMES are
// deliberately excluded: a renamed copy of a claim assesses to the
// same QualityReport, which is what lets bulk triage dedup paraphrased
// viral claims. Perturbation order is part of the signature because
// the bias and EV accumulations sum in that order, and float addition
// is not associative.
func (s *Set) Signature() string {
	var b strings.Builder
	b.WriteString(strconv.Itoa(int(s.Dir)))
	b.WriteByte(':')
	b.WriteString(strconv.FormatUint(math.Float64bits(s.Ref), 16))
	for k := range s.Perturbs {
		vars, cf, c := s.dirCoef(k)
		b.WriteByte('\x1e')
		b.WriteString(query.TermSig("p", vars, cf, []float64{c, s.Perturbs[k].Sensibility}))
	}
	return b.String()
}

// Delta evaluates the relative strength Δ(q_k(x), ref) = dir·(q_k(x) − ref)
// of perturbation k at the value vector x: positive strengthens the
// original claim, negative weakens it (§2.2, with Δ as subtraction and the
// direction folded in).
func (s *Set) Delta(k int, x []float64) float64 {
	return float64(s.Dir) * (s.Perturbs[k].Claim.Eval(x) - s.Ref)
}

// M returns the number of perturbations.
func (s *Set) M() int { return len(s.Perturbs) }

// Vars returns the sorted union of object IDs referenced by any
// perturbation.
func (s *Set) Vars() []int {
	seen := map[int]struct{}{}
	for _, p := range s.Perturbs {
		for _, v := range p.Claim.Vars() {
			seen[v] = struct{}{}
		}
	}
	out := make([]int, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// dirCoef returns the claim's coefficients and constant with the direction
// and reference folded in, so that Δ_k(x) = Σ coef·x + c.
func (s *Set) dirCoef(k int) (vars []int, coef []float64, c float64) {
	cl := s.Perturbs[k].Claim
	vars = cl.Vars()
	coef = make([]float64, len(vars))
	for j, v := range vars {
		coef[j] = float64(s.Dir) * cl.Coef[v]
	}
	c = float64(s.Dir) * (cl.Const - s.Ref)
	return vars, coef, c
}

// Bias compiles the fairness measure
//
//	bias(q◦(u), X) = Σ_k s_k·Δ(q_k(X), ref)
//
// into an affine query function. Bias 0 means the claim is fair; negative
// bias means it exaggerates (§2.2).
func (s *Set) Bias() *query.Affine {
	coef := map[int]float64{}
	constant := 0.0
	for k := range s.Perturbs {
		vars, cf, c := s.dirCoef(k)
		w := s.Perturbs[k].Sensibility
		for j, v := range vars {
			coef[v] += w * cf[j]
		}
		constant += w * c
	}
	return query.NewAffine(constant, coef)
}

// Dup compiles the uniqueness measure
//
//	dup(q◦(u), X) = Σ_k 1[Δ(q_k(X), ref) ≥ 0]
//
// — the number of perturbations at least as strong as the original claim —
// into a GroupSum of indicator terms (§2.2). Lower duplicity means a more
// unique claim.
func (s *Set) Dup() *query.GroupSum {
	g := &query.GroupSum{}
	for k := range s.Perturbs {
		vars, cf, c := s.dirCoef(k)
		g.Terms = append(g.Terms, query.IndicatorGE(vars, cf, c, 1))
	}
	return g
}

// Frag compiles the robustness measure
//
//	frag(q◦(u), X) = Σ_k s_k·(min{Δ(q_k(X), ref), 0})²
//
// into a GroupSum of clipped quadratic terms (§2.2). Low fragility means a
// robust claim: perturbations rarely weaken it by much.
func (s *Set) Frag() *query.GroupSum {
	g := &query.GroupSum{}
	for k := range s.Perturbs {
		vars, cf, c := s.dirCoef(k)
		g.Terms = append(g.Terms, query.NegMinSquared(vars, cf, c, s.Perturbs[k].Sensibility))
	}
	return g
}

// DupValue evaluates the duplicity at a concrete value vector.
func (s *Set) DupValue(x []float64) int {
	n := 0
	for k := range s.Perturbs {
		if s.Delta(k, x) >= 0 {
			n++
		}
	}
	return n
}

// HasCounter reports whether some perturbation weakens the original claim
// by more than margin at the value vector x, i.e. Δ_k(x) < −margin.
func (s *Set) HasCounter(x []float64, margin float64) bool {
	for k := range s.Perturbs {
		if s.Delta(k, x) < -margin {
			return true
		}
	}
	return false
}

// ExponentialSensibility returns exp(−lambda·distance), the decay used for
// the Giuliani claim in §4.1 (λ = 1.5 over the year distance between
// comparison-period endpoints).
func ExponentialSensibility(lambda, distance float64) float64 {
	return math.Exp(-lambda * distance)
}

// SlidingComparisons generates all back-to-back window-comparison claims
// over n objects with window length w: for each span start s, the claim
// compares [s, s+w) against [s+w, s+2w). Distances are |s − origStart|.
func SlidingComparisons(namePrefix string, n, w, origStart int, lambda float64) []Perturbed {
	var out []Perturbed
	for s := 0; s+2*w <= n; s++ {
		cl := WindowComparison(fmt.Sprintf("%s@%d", namePrefix, s), s, s+w, w)
		d := math.Abs(float64(s - origStart))
		out = append(out, Perturbed{
			Claim:       cl,
			Sensibility: ExponentialSensibility(lambda, d),
			Distance:    d,
		})
	}
	return out
}

// NonOverlappingWindows generates window-sum claims over disjoint windows
// of length w starting at 0, w, 2w, … (the perturbation structure of the
// uniqueness/robustness workloads in §4.2). Distances are measured in
// windows from origStart.
func NonOverlappingWindows(namePrefix string, n, w, origStart int, lambda float64) []Perturbed {
	var out []Perturbed
	for s := 0; s+w <= n; s += w {
		cl := WindowSum(fmt.Sprintf("%s@%d", namePrefix, s), s, w)
		d := math.Abs(float64(s-origStart)) / float64(w)
		out = append(out, Perturbed{
			Claim:       cl,
			Sensibility: ExponentialSensibility(lambda, d),
			Distance:    d,
		})
	}
	return out
}

// SlidingWindows generates window-sum claims at every start position.
func SlidingWindows(namePrefix string, n, w, origStart int, lambda float64) []Perturbed {
	var out []Perturbed
	for s := 0; s+w <= n; s++ {
		cl := WindowSum(fmt.Sprintf("%s@%d", namePrefix, s), s, w)
		d := math.Abs(float64(s - origStart))
		out = append(out, Perturbed{
			Claim:       cl,
			Sensibility: ExponentialSensibility(lambda, d),
			Distance:    d,
		})
	}
	return out
}

// Degree returns the maximum claim degree L of the set: the largest number
// of perturbations sharing at least one object with any single
// perturbation (used in the complexity discussion after Theorem 3.8).
func (s *Set) Degree() int {
	maxDeg := 0
	for k := range s.Perturbs {
		deg := 0
		kv := s.Perturbs[k].Claim.Vars()
		kset := map[int]struct{}{}
		for _, v := range kv {
			kset[v] = struct{}{}
		}
		for j := range s.Perturbs {
			if j == k {
				continue
			}
			for _, v := range s.Perturbs[j].Claim.Vars() {
				if _, ok := kset[v]; ok {
					deg++
					break
				}
			}
		}
		if deg > maxDeg {
			maxDeg = deg
		}
	}
	return maxDeg
}
