package claims

import (
	"math"
	"testing"

	"github.com/factcheck/cleansel/internal/numeric"
)

func TestClaimEvalAndVars(t *testing.T) {
	c := NewClaim("q", 3, map[int]float64{0: 1, 2: -2, 5: 0})
	x := []float64{10, 0, 4, 0, 0, 0}
	if got := c.Eval(x); got != 3+10-8 {
		t.Fatalf("Eval = %v", got)
	}
	vars := c.Vars()
	if len(vars) != 2 || vars[0] != 0 || vars[1] != 2 {
		t.Fatalf("Vars = %v", vars)
	}
}

func TestWindowSum(t *testing.T) {
	c := WindowSum("w", 2, 3)
	x := []float64{1, 2, 4, 8, 16, 32}
	if got := c.Eval(x); got != 4+8+16 {
		t.Fatalf("window sum = %v", got)
	}
}

func TestWindowComparison(t *testing.T) {
	// Example 2 shape: X2018 − X2017 is a comparison of 1-windows.
	c := WindowComparison("cmp", 3, 4, 1)
	x := []float64{0, 0, 0, 9125, 9430}
	if got := c.Eval(x); got != 305 {
		t.Fatalf("comparison = %v, want 305", got)
	}
	// Overlapping windows cancel coefficients.
	c2 := WindowComparison("overlap", 0, 1, 2) // -[0,1] + [1,2]
	if c2.Coef[1] != 0 && len(c2.Vars()) != 2 {
		t.Fatalf("overlap handling wrong: %+v", c2.Coef)
	}
	x2 := []float64{5, 7, 11}
	if got := c2.Eval(x2); got != 11-5 {
		t.Fatalf("overlapping comparison = %v, want 6", got)
	}
}

func mustSet(t *testing.T, orig *Claim, dir Direction, ref float64, ps []Perturbed) *Set {
	t.Helper()
	s, err := NewSet(orig, dir, ref, ps)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSetNormalizesSensibilities(t *testing.T) {
	orig := WindowSum("orig", 0, 1)
	ps := []Perturbed{
		{Claim: WindowSum("a", 0, 1), Sensibility: 2},
		{Claim: WindowSum("b", 1, 1), Sensibility: 6},
	}
	s := mustSet(t, orig, HigherIsStronger, 0, ps)
	if !numeric.AlmostEqual(s.Perturbs[0].Sensibility, 0.25, 1e-12) ||
		!numeric.AlmostEqual(s.Perturbs[1].Sensibility, 0.75, 1e-12) {
		t.Fatalf("sensibilities %v %v", s.Perturbs[0].Sensibility, s.Perturbs[1].Sensibility)
	}
	// Input slice must not be mutated.
	if ps[0].Sensibility != 2 {
		t.Fatal("NewSet mutated its input")
	}
}

func TestNewSetRejectsBadInput(t *testing.T) {
	orig := WindowSum("orig", 0, 1)
	if _, err := NewSet(orig, HigherIsStronger, 0, nil); err == nil {
		t.Fatal("empty set accepted")
	}
	if _, err := NewSet(orig, HigherIsStronger, 0, []Perturbed{
		{Claim: orig, Sensibility: -1},
	}); err == nil {
		t.Fatal("negative sensibility accepted")
	}
	if _, err := NewSet(orig, HigherIsStronger, 0, []Perturbed{
		{Claim: orig, Sensibility: 0},
	}); err == nil {
		t.Fatal("all-zero sensibilities accepted")
	}
}

func TestDeltaDirections(t *testing.T) {
	orig := WindowSum("orig", 0, 1)
	p := []Perturbed{{Claim: WindowSum("p", 1, 1), Sensibility: 1}}
	x := []float64{10, 13}

	hi := mustSet(t, orig, HigherIsStronger, 10, p)
	if got := hi.Delta(0, x); got != 3 {
		t.Fatalf("higher-is-stronger delta = %v, want 3", got)
	}
	lo := mustSet(t, orig, LowerIsStronger, 10, p)
	if got := lo.Delta(0, x); got != -3 {
		t.Fatalf("lower-is-stronger delta = %v, want -3", got)
	}
}

// Example 5 of the paper: Q = {q◦}, bias(q◦(u), X) = X1 + X2 − 2.
func TestBiasExample5(t *testing.T) {
	orig := NewClaim("q", 0, map[int]float64{0: 1, 1: 1})
	s := mustSet(t, orig, HigherIsStronger, 2, []Perturbed{{Claim: orig, Sensibility: 1}})
	bias := s.Bias()
	if !numeric.AlmostEqual(bias.Const, -2, 1e-12) {
		t.Fatalf("bias const = %v, want -2", bias.Const)
	}
	if bias.CoefAt(0) != 1 || bias.CoefAt(1) != 1 {
		t.Fatalf("bias coefs wrong: %+v", bias.Coef)
	}
	if got := bias.Eval([]float64{1, 1}); got != 0 {
		t.Fatalf("bias at current values = %v, want 0", got)
	}
}

func TestBiasAggregatesSensibilities(t *testing.T) {
	orig := WindowSum("orig", 0, 2)
	ps := []Perturbed{
		{Claim: WindowSum("a", 0, 2), Sensibility: 0.5},
		{Claim: WindowSum("b", 1, 2), Sensibility: 0.5},
	}
	s := mustSet(t, orig, HigherIsStronger, 5, ps)
	bias := s.Bias()
	// Coefficients: X0: 0.5, X1: 0.5+0.5, X2: 0.5; const: −5.
	if !numeric.AlmostEqual(bias.CoefAt(0), 0.5, 1e-12) ||
		!numeric.AlmostEqual(bias.CoefAt(1), 1.0, 1e-12) ||
		!numeric.AlmostEqual(bias.CoefAt(2), 0.5, 1e-12) {
		t.Fatalf("bias coefs: %+v", bias.Coef)
	}
	if !numeric.AlmostEqual(bias.Const, -5, 1e-12) {
		t.Fatalf("bias const: %v", bias.Const)
	}
}

func TestDupCountsStrongPerturbations(t *testing.T) {
	orig := WindowSum("orig", 0, 1)
	ps := []Perturbed{
		{Claim: WindowSum("a", 0, 1), Sensibility: 1},
		{Claim: WindowSum("b", 1, 1), Sensibility: 1},
		{Claim: WindowSum("c", 2, 1), Sensibility: 1},
	}
	// Lower is stronger, ref = 10: count values <= 10.
	s := mustSet(t, orig, LowerIsStronger, 10, ps)
	dup := s.Dup()
	x := []float64{9, 10, 11}
	if got := dup.Eval(x); got != 2 {
		t.Fatalf("dup = %v, want 2 (9 and the boundary 10)", got)
	}
	if got := s.DupValue(x); got != 2 {
		t.Fatalf("DupValue = %v, want 2", got)
	}
}

func TestFragPenalizesWeakeningOnly(t *testing.T) {
	orig := WindowSum("orig", 0, 1)
	ps := []Perturbed{
		{Claim: WindowSum("a", 0, 1), Sensibility: 1},
		{Claim: WindowSum("b", 1, 1), Sensibility: 3},
	}
	// Higher is stronger, ref = 10.
	s := mustSet(t, orig, HigherIsStronger, 10, ps)
	frag := s.Frag()
	// x0 = 13 strengthens (no penalty); x1 = 8 weakens by 2 → s·Δ² = 0.75·4.
	got := frag.Eval([]float64{13, 8})
	if !numeric.AlmostEqual(got, 3, 1e-12) {
		t.Fatalf("frag = %v, want 3", got)
	}
	// All strengthening: zero fragility.
	if got := frag.Eval([]float64{11, 10}); got != 0 {
		t.Fatalf("frag = %v, want 0", got)
	}
}

func TestHasCounter(t *testing.T) {
	orig := WindowSum("orig", 0, 1)
	ps := []Perturbed{
		{Claim: WindowSum("a", 0, 1), Sensibility: 1},
		{Claim: WindowSum("b", 1, 1), Sensibility: 1},
	}
	s := mustSet(t, orig, HigherIsStronger, 10, ps)
	if !s.HasCounter([]float64{10, 7}, 2) {
		t.Fatal("Δ = −3 < −2 should be a counter")
	}
	if s.HasCounter([]float64{10, 9}, 2) {
		t.Fatal("Δ = −1 should not counter with margin 2")
	}
}

func TestExponentialSensibility(t *testing.T) {
	if ExponentialSensibility(1.5, 0) != 1 {
		t.Fatal("zero distance should give 1")
	}
	if !numeric.AlmostEqual(ExponentialSensibility(1.5, 2), math.Exp(-3), 1e-12) {
		t.Fatal("decay wrong")
	}
}

func TestSlidingComparisons(t *testing.T) {
	// 26 years, windows of 4: spans at starts 0..18 → 19 claims
	// (the Giuliani setting: original + 18 perturbations).
	ps := SlidingComparisons("p", 26, 4, 4, 1.5)
	if len(ps) != 19 {
		t.Fatalf("got %d spans, want 19", len(ps))
	}
	// The span at the original start has max sensibility.
	best := 0
	for i := range ps {
		if ps[i].Sensibility > ps[best].Sensibility {
			best = i
		}
	}
	if ps[best].Distance != 0 {
		t.Fatalf("closest span should have distance 0, got %v", ps[best].Distance)
	}
	// Every claim references 8 objects.
	for _, p := range ps {
		if len(p.Claim.Vars()) != 8 {
			t.Fatalf("claim %s references %d objects", p.Claim.Name, len(p.Claim.Vars()))
		}
	}
}

func TestNonOverlappingWindows(t *testing.T) {
	ps := NonOverlappingWindows("w", 40, 4, 36, 0.5)
	if len(ps) != 10 {
		t.Fatalf("got %d windows, want 10", len(ps))
	}
	seen := map[int]bool{}
	for _, p := range ps {
		for _, v := range p.Claim.Vars() {
			if seen[v] {
				t.Fatalf("windows overlap at %d", v)
			}
			seen[v] = true
		}
	}
	if len(seen) != 40 {
		t.Fatalf("windows cover %d of 40 objects", len(seen))
	}
}

func TestSlidingWindows(t *testing.T) {
	ps := SlidingWindows("w", 17, 2, 15, 1)
	if len(ps) != 16 {
		t.Fatalf("got %d windows, want 16", len(ps))
	}
}

func TestSetVars(t *testing.T) {
	orig := WindowSum("orig", 0, 2)
	ps := []Perturbed{
		{Claim: WindowSum("a", 0, 2), Sensibility: 1},
		{Claim: WindowSum("b", 3, 2), Sensibility: 1},
	}
	s := mustSet(t, orig, HigherIsStronger, 0, ps)
	vars := s.Vars()
	want := []int{0, 1, 3, 4}
	if len(vars) != len(want) {
		t.Fatalf("vars %v", vars)
	}
	for i := range want {
		if vars[i] != want[i] {
			t.Fatalf("vars %v, want %v", vars, want)
		}
	}
}

func TestDegree(t *testing.T) {
	orig := WindowSum("orig", 0, 2)
	// Three claims: a overlaps b, b overlaps c, a and c disjoint.
	ps := []Perturbed{
		{Claim: WindowSum("a", 0, 2), Sensibility: 1},
		{Claim: WindowSum("b", 1, 2), Sensibility: 1},
		{Claim: WindowSum("c", 2, 2), Sensibility: 1},
	}
	s := mustSet(t, orig, HigherIsStronger, 0, ps)
	if got := s.Degree(); got != 2 {
		t.Fatalf("degree = %d, want 2 (claim b overlaps both others)", got)
	}
	// Disjoint windows → degree 0.
	s2 := mustSet(t, orig, HigherIsStronger, 0, []Perturbed{
		{Claim: WindowSum("a", 0, 2), Sensibility: 1},
		{Claim: WindowSum("b", 2, 2), Sensibility: 1},
	})
	if got := s2.Degree(); got != 0 {
		t.Fatalf("degree = %d, want 0", got)
	}
}
