package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags range-over-map loops in deterministic packages whose
// bodies accumulate floats with a compound assignment or append to a
// slice. Go randomizes map iteration order per run, and float addition
// is not associative, so the order leaks into the accumulated bits; the
// fix is to iterate numeric.SortedKeys(m) (int64-keyed maps) or to
// extract and sort the keys first. Appending only the range key itself
// is the first half of exactly that idiom and is allowed.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "float accumulation or append under randomized map iteration order",
	Run:  runMapOrder,
}

func runMapOrder(p *Pass) {
	if !deterministicPkgs[p.Path] {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := p.Info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			var keyObj types.Object
			if id, ok := rs.Key.(*ast.Ident); ok && id.Name != "_" {
				keyObj = p.Info.Defs[id]
				if keyObj == nil {
					keyObj = p.Info.Uses[id]
				}
			}
			inspectMapRangeBody(p, rs, keyObj)
			return true
		})
	}
}

// inspectMapRangeBody reports order-dependent constructs in the body of
// one range-over-map statement.
func inspectMapRangeBody(p *Pass, rs *ast.RangeStmt, keyObj types.Object) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.AssignStmt:
			switch stmt.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				for _, lhs := range stmt.Lhs {
					if isFloat(p.Info.TypeOf(lhs)) {
						p.Reportf(stmt.Pos(),
							"float %s accumulation inside range over map: iteration order is randomized and float addition is not associative; iterate numeric.SortedKeys (or extract and sort the keys) instead",
							stmt.Tok)
					}
				}
			}
		case *ast.CallExpr:
			if !isBuiltinAppend(p.Info, stmt) {
				return true
			}
			if appendsOnlyRangeKey(p.Info, stmt, keyObj) {
				return true // the sorted-keys extraction idiom
			}
			p.Reportf(stmt.Pos(),
				"append inside range over map: the slice inherits the randomized iteration order; extract and sort the keys, then append in key order")
		}
		return true
	})
}

// isBuiltinAppend reports whether call invokes the append builtin.
func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// appendsOnlyRangeKey reports whether every appended element is the
// range key variable itself (ks = append(ks, k)) — order restored by the
// sort that follows in the idiom.
func appendsOnlyRangeKey(info *types.Info, call *ast.CallExpr, keyObj types.Object) bool {
	if keyObj == nil || len(call.Args) < 2 || call.Ellipsis != token.NoPos {
		return false
	}
	for _, arg := range call.Args[1:] {
		id, ok := ast.Unparen(arg).(*ast.Ident)
		if !ok || info.Uses[id] != keyObj {
			return false
		}
	}
	return true
}
