package analysis

import (
	"go/ast"
)

// WallTime keeps ambient nondeterminism out of the engine packages
// (dist, ev, expt, core, numeric, obs): no wall-clock reads (time.Now),
// no global math/rand stream (randomness flows through internal/rng
// split streams, whose output is stable across runs and Go releases),
// and no environment-dependent branching (os.Getenv / os.LookupEnv /
// os.Environ). Any of these makes an engine result depend on when,
// where, or how the process ran instead of only on its inputs.
//
// internal/obs is the sanctioned exception — the single package where
// wall time enters, injected as obs.Clock at the server boundary; its
// clock file carries the //lint:allow walltime directive. Engine
// packages may tick the write-only obs.Recorder a request carries, but
// must never hold a clock themselves: touching obs.Clock, SystemClock,
// a fake clock, or NewRecorder (which embeds a clock) from an engine is
// flagged.
var WallTime = &Analyzer{
	Name: "walltime",
	Doc:  "wall-clock, global math/rand, and env reads in deterministic engine packages",
	Run:  runWallTime,
}

// obsPkg is the sanctioned clock-and-trace package.
const obsPkg = ModulePath + "/internal/obs"

// obsClockSymbols are the internal/obs identifiers that hand out wall
// time. Everything else in obs (Recorder, FromContext, WithRecorder,
// request IDs) is write-only plumbing and fine to use from engines.
var obsClockSymbols = map[string]bool{
	"Clock":        true,
	"SystemClock":  true,
	"FakeClock":    true,
	"NewFakeClock": true,
	"NewRecorder":  true,
}

func runWallTime(p *Pass) {
	if !enginePkgs[p.Path] {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.CallExpr:
				if isPkgFunc(p.Info, e, "time", "Now") {
					p.Reportf(e.Pos(),
						"time.Now in deterministic engine package: results must depend only on inputs; take timestamps at the caller or inject a clock")
				}
				for _, fn := range []string{"Getenv", "LookupEnv", "Environ"} {
					if isPkgFunc(p.Info, e, "os", fn) {
						p.Reportf(e.Pos(),
							"os.%s in deterministic engine package: environment-dependent behavior breaks reproducibility; plumb configuration through parameters", fn)
					}
				}
			case *ast.Ident:
				obj := p.Info.Uses[e]
				if obj == nil || obj.Pkg() == nil {
					return true
				}
				switch path := obj.Pkg().Path(); {
				case path == "math/rand" || path == "math/rand/v2":
					p.Reportf(e.Pos(),
						"%s.%s in deterministic engine package: use internal/rng split streams, whose output is reproducible across runs and Go releases", path, obj.Name())
				case path == obsPkg && p.Path != obsPkg && obsClockSymbols[obj.Name()]:
					p.Reportf(e.Pos(),
						"obs.%s in deterministic engine package: engines tick the request's write-only obs.Recorder but never hold a clock; inject obs.Clock at the server boundary", obj.Name())
				}
			}
			return true
		})
	}
}
