package analysis

import (
	"fmt"
	"sort"
)

// A Config selects what Run analyzes.
type Config struct {
	// Dir anchors pattern resolution; it must be inside the module.
	Dir string
	// Patterns are package patterns ("./...", "./internal/dist", ...).
	Patterns []string
	// Checks restricts the suite to the named analyzers; empty means all.
	// Unused-suppression reporting only happens with the full suite,
	// since a directive for a deselected check is not evidence of rot.
	Checks []string
}

// Run loads the matched packages, applies every selected analyzer, and
// returns the surviving diagnostics sorted by position. Findings
// suppressed by a valid //lint:allow directive are dropped; malformed
// and unused directives are themselves diagnostics.
func Run(cfg Config) ([]Diagnostic, error) {
	analyzers := Analyzers
	if len(cfg.Checks) > 0 {
		analyzers = nil
		for _, name := range cfg.Checks {
			a := ByName(name)
			if a == nil {
				return nil, fmt.Errorf("analysis: unknown check %q (known: %s)", name, checkNames())
			}
			analyzers = append(analyzers, a)
		}
	}
	loader, err := NewLoader(cfg.Dir)
	if err != nil {
		return nil, err
	}
	pkgs, err := loader.Load(cfg.Patterns...)
	if err != nil {
		return nil, err
	}

	var diags []Diagnostic
	allowsByFile := map[string][]*allowDirective{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			allows, malformed := parseAllows(pkg.Fset, f)
			diags = append(diags, malformed...)
			name := pkg.Fset.Position(f.Pos()).Filename
			allowsByFile[name] = append(allowsByFile[name], allows...)
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Path:     pkg.Path,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
			}
			pass.report = func(d Diagnostic) {
				for _, dir := range allowsByFile[d.Pos.Filename] {
					if dir.check == d.Check {
						dir.used = true
						return
					}
				}
				diags = append(diags, d)
			}
			a.Run(pass)
		}
	}

	if len(cfg.Checks) == 0 {
		for _, allows := range allowsByFile {
			for _, dir := range allows {
				if !dir.used {
					diags = append(diags, Diagnostic{
						Pos:     dir.pos,
						Check:   "lint",
						Message: fmt.Sprintf("unused //lint:allow %s directive (no %s finding left in this file); delete it", dir.check, dir.check),
					})
				}
			}
		}
	}

	return dedupeSort(diags), nil
}

// dedupeSort orders diagnostics by position and check, dropping exact
// positional duplicates of the same check (nested constructs can trip
// one analyzer twice at one position).
func dedupeSort(diags []Diagnostic) []Diagnostic {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	var out []Diagnostic
	for _, d := range diags {
		if n := len(out); n > 0 && out[n-1].Pos == d.Pos && out[n-1].Check == d.Check {
			continue
		}
		out = append(out, d)
	}
	return out
}
