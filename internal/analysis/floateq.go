package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// FloatEq flags == and != on floating-point operands, and switch
// statements with a floating-point tag, everywhere except
// internal/numeric (the one package whose job is float comparison).
// Results that differ by round-off must pool on grid keys
// (numeric.Grid.Key) or compare with numeric.AlmostEqual; exact float
// equality silently splits atoms that should merge. Three shapes are
// allowed: comparison against a literal zero or ±math.Inf, an operand
// compared with itself (the NaN idiom), and the deterministic ordering
// tie-break `if a != b { return a > b }` — that one orders rather than
// pools, so round-off cannot corrupt results, only reorder exact ties.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "exact float equality outside internal/numeric",
	Run:  runFloatEq,
}

func runFloatEq(p *Pass) {
	if p.Path == ModulePath+"/internal/numeric" {
		return
	}
	for _, f := range p.Files {
		tieBreaks := orderingTieBreaks(f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.BinaryExpr:
				if e.Op != token.EQL && e.Op != token.NEQ {
					return true
				}
				if !isFloat(p.Info.TypeOf(e.X)) && !isFloat(p.Info.TypeOf(e.Y)) {
					return true
				}
				if tieBreaks[e] {
					return true
				}
				if allowedFloatOperand(p.Info, e.X) || allowedFloatOperand(p.Info, e.Y) {
					return true
				}
				if samePureExpr(e.X, e.Y) {
					return true // x != x: the IsNaN idiom
				}
				p.Reportf(e.OpPos,
					"float %s comparison: round-off makes exact equality unstable; compare grid keys (numeric.Grid.Key) or use numeric.AlmostEqual", e.Op)
			case *ast.SwitchStmt:
				if e.Tag == nil || !isFloat(p.Info.TypeOf(e.Tag)) {
					return true
				}
				if switchCasesAllAllowed(p.Info, e) {
					return true
				}
				p.Reportf(e.Switch,
					"switch on float tag compares cases with exact equality; switch on grid keys (numeric.Grid.Key) instead")
			}
			return true
		})
	}
}

// allowedFloatOperand reports whether e is an allowlisted comparison
// operand: an exact constant zero or a ±math.Inf(...) call.
func allowedFloatOperand(info *types.Info, e ast.Expr) bool {
	if tv, ok := info.Types[e]; ok && tv.Value != nil {
		if v := constant.ToFloat(tv.Value); v.Kind() == constant.Float || v.Kind() == constant.Int {
			if constant.Compare(v, token.EQL, constant.MakeInt64(0)) {
				return true
			}
		}
	}
	if call, ok := ast.Unparen(e).(*ast.CallExpr); ok && isPkgFunc(info, call, "math", "Inf") {
		return true
	}
	return false
}

// switchCasesAllAllowed reports whether every case expression of a
// float-tag switch is an allowlisted constant (0 or ±Inf).
func switchCasesAllAllowed(info *types.Info, s *ast.SwitchStmt) bool {
	for _, stmt := range s.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			if !allowedFloatOperand(info, e) {
				return false
			}
		}
	}
	return true
}

// orderingTieBreaks collects the != conditions of the deterministic
// sort tie-break idiom
//
//	if a != b { return a > b }
//
// (any of < > <= >= in the return, same two operands in either order):
// the comparison selects between two deterministic orderings instead of
// pooling values, so it is exempt.
func orderingTieBreaks(f *ast.File) map[*ast.BinaryExpr]bool {
	out := map[*ast.BinaryExpr]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok || ifs.Init != nil || ifs.Else != nil || len(ifs.Body.List) != 1 {
			return true
		}
		cond, ok := ast.Unparen(ifs.Cond).(*ast.BinaryExpr)
		if !ok || cond.Op != token.NEQ {
			return true
		}
		ret, ok := ifs.Body.List[0].(*ast.ReturnStmt)
		if !ok || len(ret.Results) != 1 {
			return true
		}
		cmp, ok := ast.Unparen(ret.Results[0]).(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch cmp.Op {
		case token.LSS, token.GTR, token.LEQ, token.GEQ:
		default:
			return true
		}
		if (samePureExpr(cond.X, cmp.X) && samePureExpr(cond.Y, cmp.Y)) ||
			(samePureExpr(cond.X, cmp.Y) && samePureExpr(cond.Y, cmp.X)) {
			out[cond] = true
		}
		return true
	})
	return out
}

// samePureExpr reports whether a and b are syntactically identical
// call-free expressions — the only kind whose repeated evaluation is
// guaranteed to produce the same float.
func samePureExpr(a, b ast.Expr) bool {
	a, b = ast.Unparen(a), ast.Unparen(b)
	if hasCall(a) || hasCall(b) {
		return false
	}
	return types.ExprString(a) == types.ExprString(b)
}

// hasCall reports whether e contains any call expression.
func hasCall(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.CallExpr); ok {
			found = true
		}
		return !found
	})
	return found
}
