package analysis

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe matches one expectation comment: // want <check> "<regexp>".
// The expectation must sit on the same line as the construct it covers.
var wantRe = regexp.MustCompile(`// want (\w+) "([^"]+)"`)

type wantDiag struct {
	file    string // path relative to the testdata module root
	line    int
	check   string
	re      *regexp.Regexp
	matched bool
}

// TestGolden runs the full suite over the fixture module in
// testdata/module and checks the diagnostics against the // want
// expectations, both directions: every finding must be expected and
// every expectation must fire. The fixture packages reuse the engine
// package names (dist, core, ev, numeric, model) so the package-scoped
// analyzers treat them exactly like the real tree.
func TestGolden(t *testing.T) {
	moduleDir, err := filepath.Abs(filepath.Join("testdata", "module"))
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(Config{Dir: moduleDir, Patterns: []string{"./..."}})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	wants := collectWants(t, moduleDir)

	for _, d := range diags {
		rel, err := filepath.Rel(moduleDir, d.Pos.Filename)
		if err != nil {
			t.Fatalf("diagnostic outside module: %v", d)
		}
		if !matchWant(wants, rel, d) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected %s finding matching %q, got none", w.file, w.line, w.check, w.re)
		}
	}
}

func matchWant(wants []*wantDiag, rel string, d Diagnostic) bool {
	for _, w := range wants {
		if !w.matched && w.file == rel && w.line == d.Pos.Line && w.check == d.Check && w.re.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

// collectWants scans every fixture file for // want comments.
func collectWants(t *testing.T, moduleDir string) []*wantDiag {
	t.Helper()
	var wants []*wantDiag
	err := filepath.WalkDir(moduleDir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		rel, err := filepath.Rel(moduleDir, path)
		if err != nil {
			return err
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			for _, m := range wantRe.FindAllStringSubmatch(sc.Text(), -1) {
				re, err := regexp.Compile(m[2])
				if err != nil {
					return fmt.Errorf("%s:%d: bad want regexp %q: %v", rel, line, m[2], err)
				}
				wants = append(wants, &wantDiag{file: rel, line: line, check: m[1], re: re})
			}
		}
		return sc.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(wants) == 0 {
		t.Fatal("no // want expectations found in testdata/module")
	}
	return wants
}

// TestGoldenRestrictedChecks verifies that -checks style restriction
// selects a single analyzer and switches off unused-directive
// reporting (a directive for a deselected check is not rot). Malformed
// directives stay on: they are broken syntax, not deselected findings.
func TestGoldenRestrictedChecks(t *testing.T) {
	moduleDir := filepath.Join("testdata", "module")
	diags, err := Run(Config{Dir: moduleDir, Patterns: []string{"./..."}, Checks: []string{"maporder"}})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var sawMapOrder bool
	for _, d := range diags {
		switch d.Check {
		case "maporder":
			sawMapOrder = true
		case "lint":
			if strings.Contains(d.Message, "unused") {
				t.Errorf("restricted run must not report unused directives, got %s", d)
			}
		default:
			t.Errorf("restricted to maporder, got %s", d)
		}
	}
	if !sawMapOrder {
		t.Fatal("restricted run found no maporder fixtures")
	}
}

// TestGoldenUnknownCheck verifies the error path for a bad -checks
// value.
func TestGoldenUnknownCheck(t *testing.T) {
	_, err := Run(Config{Dir: filepath.Join("testdata", "module"), Patterns: []string{"./..."}, Checks: []string{"nosuch"}})
	if err == nil || !strings.Contains(err.Error(), "unknown check") {
		t.Fatalf("want unknown-check error, got %v", err)
	}
}

// TestGoldenSinglePackagePattern verifies non-recursive pattern
// expansion against the fixture module.
func TestGoldenSinglePackagePattern(t *testing.T) {
	moduleDir := filepath.Join("testdata", "module")
	diags, err := Run(Config{Dir: moduleDir, Patterns: []string{"./internal/core"}})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, d := range diags {
		if filepath.Base(filepath.Dir(d.Pos.Filename)) != "core" {
			t.Errorf("pattern ./internal/core matched a diagnostic outside core: %s", d)
		}
		if d.Check != "floateq" {
			t.Errorf("core fixture should only trip floateq, got %s", d)
		}
	}
	if len(diags) == 0 {
		t.Fatal("want floateq findings from ./internal/core fixture")
	}
}
