package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxFlow enforces that contexts actually flow. Two findings:
//
//  1. A function holding a context.Context parameter calls a blocking
//     function or method when a sibling ...Ctx / ...Context variant
//     (same receiver type or same package, first parameter a context)
//     exists — the context stops propagating and the call can neither
//     be cancelled nor time out.
//  2. Library code (non-main package; test files are never analyzed)
//     mints its own context with context.Background or context.TODO.
//     The standard blocking shim is allowed: inside func Foo, a
//     Background/TODO call passed as the first argument of Foo's own
//     FooCtx / FooContext sibling.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "contexts must propagate: no blocking siblings, no ad-hoc Background/TODO",
	Run:  runCtxFlow,
}

func runCtxFlow(p *Pass) {
	isMain := p.Pkg != nil && p.Pkg.Name() == "main"
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			holdsCtx := funcHasContextParam(p.Info, fd)
			shimArgs := blockingShimBackgrounds(p.Info, fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if !isMain && isContextMint(p.Info, call) && !shimArgs[call] {
					p.Reportf(call.Pos(),
						"%s in library code: accept a context.Context from the caller (or delegate from a blocking shim to the Ctx variant)",
						calleeFunc(p.Info, call).FullName())
				}
				if holdsCtx {
					checkBlockingSibling(p, call)
				}
				return true
			})
		}
	}
}

// funcHasContextParam reports whether fd declares a context.Context
// parameter.
func funcHasContextParam(info *types.Info, fd *ast.FuncDecl) bool {
	obj, ok := info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	sig := obj.Type().(*types.Signature)
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// isContextMint reports whether call is context.Background() or
// context.TODO().
func isContextMint(info *types.Info, call *ast.CallExpr) bool {
	return isPkgFunc(info, call, "context", "Background") || isPkgFunc(info, call, "context", "TODO")
}

// blockingShimBackgrounds returns the Background/TODO calls inside fd
// that are the first argument of a call to fd's own Ctx/Context variant
// — the documented pattern for keeping a blocking API around a
// context-aware core.
func blockingShimBackgrounds(info *types.Info, fd *ast.FuncDecl) map[*ast.CallExpr]bool {
	allowed := map[*ast.CallExpr]bool{}
	base := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		outer, ok := n.(*ast.CallExpr)
		if !ok || len(outer.Args) == 0 {
			return true
		}
		callee := calleeFunc(info, outer)
		if callee == nil || (callee.Name() != base+"Ctx" && callee.Name() != base+"Context") {
			return true
		}
		if inner, ok := ast.Unparen(outer.Args[0]).(*ast.CallExpr); ok && isContextMint(info, inner) {
			allowed[inner] = true
		}
		return true
	})
	return allowed
}

// checkBlockingSibling reports call when it invokes a blocking function
// while a context-accepting sibling exists and no context is passed.
func checkBlockingSibling(p *Pass, call *ast.CallExpr) {
	callee := calleeFunc(p.Info, call)
	if callee == nil || callee.Pkg() == nil {
		return
	}
	name := callee.Name()
	if strings.HasSuffix(name, "Ctx") || strings.HasSuffix(name, "Context") {
		return
	}
	for _, arg := range call.Args {
		if isContextType(p.Info.TypeOf(arg)) {
			return // the context is flowing through this call
		}
	}
	sib := ctxSibling(callee)
	if sib == nil {
		return
	}
	p.Reportf(call.Pos(),
		"blocking call to %s while holding a context: use %s so cancellation propagates", name, sib.Name())
}

// ctxSibling returns the ...Ctx / ...Context variant of fn (method on
// the same receiver type, or function in the same package) whose first
// parameter is a context.Context, or nil.
func ctxSibling(fn *types.Func) *types.Func {
	sig := fn.Type().(*types.Signature)
	for _, suffix := range []string{"Ctx", "Context"} {
		want := fn.Name() + suffix
		var obj types.Object
		if recv := sig.Recv(); recv != nil {
			obj, _, _ = types.LookupFieldOrMethod(recv.Type(), true, fn.Pkg(), want)
		} else {
			obj = fn.Pkg().Scope().Lookup(want)
		}
		cand, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		csig, ok := cand.Type().(*types.Signature)
		if !ok || csig.Params().Len() == 0 {
			continue
		}
		if isContextType(csig.Params().At(0).Type()) {
			return cand
		}
	}
	return nil
}
