// Package analysis is cleansel's in-tree static-analysis suite: a
// stdlib-only driver (go/parser + go/types, no golang.org/x/tools) and
// four analyzers that turn the repo's determinism contract into checked
// policy.
//
// The contract the analyzers encode:
//
//   - maporder: in deterministic packages, a range over a map whose body
//     accumulates floats (+=, -=, *=, /=) or appends to a slice leaks the
//     randomized map iteration order into results — float addition is not
//     associative. Iterate numeric.SortedKeys (or extract and sort keys)
//     instead.
//   - floateq: outside internal/numeric, == / != / switch on float
//     operands is almost always a latent pooling bug; comparisons belong
//     on grid keys (numeric.Grid.Key) or numeric.AlmostEqual. Comparing
//     against a literal zero, ±math.Inf, or the operand itself (the NaN
//     idiom) is allowed.
//   - ctxflow: a function that holds a context.Context must not call a
//     blocking sibling when a ...Ctx / ...Context variant exists, and
//     library (non-main, non-test) code must not mint its own
//     context.Background / context.TODO — except in the standard blocking
//     shim `func Foo(..)` delegating to its own `FooCtx(context.Background(), ..)`.
//   - walltime: the deterministic engine packages (dist, ev, expt, core,
//     numeric, obs) must not read wall-clock time (time.Now), the global
//     math/rand stream, or the process environment; randomness flows
//     through internal/rng split streams so every figure is reproducible
//     bit-for-bit. internal/obs is the one sanctioned clock package (its
//     clock file carries an allow directive); other engines may tick the
//     write-only obs.Recorder but must not touch obs.Clock, SystemClock,
//     fake clocks, or NewRecorder — clocks are injected at the server
//     boundary.
//
// Findings are suppressed per file with a mandatory-reason directive:
//
//	//lint:allow <check> — <reason>
//
// (an ASCII "--" separator is accepted too). A directive with a missing
// reason, an unknown check name, or no matching finding is itself a
// diagnostic, so suppressions cannot rot silently.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// ModulePath is the import path prefix of this repository's module; the
// package-scoped analyzers key their scope off it.
const ModulePath = "github.com/factcheck/cleansel"

// deterministicPkgs are the packages whose outputs feed figures, ranks,
// and assessments and therefore must be bit-identical run to run. The
// maporder analyzer applies here.
var deterministicPkgs = map[string]bool{
	ModulePath:                           true,
	ModulePath + "/internal/claims":      true,
	ModulePath + "/internal/core":        true,
	ModulePath + "/internal/datasets":    true,
	ModulePath + "/internal/dist":        true,
	ModulePath + "/internal/dist/oracle": true,
	ModulePath + "/internal/ev":          true,
	ModulePath + "/internal/expt":        true,
	ModulePath + "/internal/knapsack":    true,
	ModulePath + "/internal/linalg":      true,
	ModulePath + "/internal/maxpr":       true,
	ModulePath + "/internal/model":       true,
	ModulePath + "/internal/numeric":     true,
	ModulePath + "/internal/query":       true,
	ModulePath + "/internal/rel":         true,
	ModulePath + "/internal/rng":         true,
	ModulePath + "/internal/stats":       true,
	ModulePath + "/internal/submod":      true,
}

// enginePkgs is the narrower set of deterministic *engine* packages where
// wall-clock time, the global math/rand stream, and environment reads are
// banned outright (the walltime analyzer). internal/obs is scanned as an
// engine package too: it is the one sanctioned place wall time enters the
// system (its clock file carries the mandatory //lint:allow walltime
// directive), and listing it here keeps any new ambient read in it an
// explicit, justified decision.
var enginePkgs = map[string]bool{
	ModulePath + "/internal/dist":        true,
	ModulePath + "/internal/dist/oracle": true,
	ModulePath + "/internal/ev":          true,
	ModulePath + "/internal/expt":        true,
	ModulePath + "/internal/core":        true,
	ModulePath + "/internal/numeric":     true,
	ModulePath + "/internal/obs":         true,
}

// An Analyzer is one named check over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Analyzers lists every check in the suite, in report order.
var Analyzers = []*Analyzer{MapOrder, FloatEq, CtxFlow, WallTime}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range Analyzers {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// A Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Path     string // package import path (drives package-scoped checks)
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:     p.Fset.Position(pos),
		Check:   p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, positioned and attributed to its check.
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Check, d.Message)
}

// isFloat reports whether t's core type is a floating-point scalar.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0 && b.Info()&types.IsComplex == 0
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// calleeFunc resolves the called function or method of call, or nil for
// builtins, conversions, and indirect calls through variables.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isPkgFunc reports whether call invokes the package-level function
// pkgPath.name (e.g. "time".Now).
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	fn := calleeFunc(info, call)
	return fn != nil && fn.Name() == name && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath &&
		fn.Type().(*types.Signature).Recv() == nil
}
