package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one loaded, type-checked module package. Test files are
// not analyzed: the contract covers the shipped library and binaries,
// and test packages routinely (and legitimately) use Background
// contexts, wall-clock timing, and exact float expectations.
type Package struct {
	Path  string // import path
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// A Loader resolves and type-checks module packages with the standard
// library's source importer — no tool dependency beyond the go tree
// itself. One Loader caches stdlib and module packages across calls.
type Loader struct {
	Fset       *token.FileSet
	baseDir    string // anchors relative patterns ("."/"./...")
	moduleRoot string
	modulePath string
	dirs       map[string]string // module import path -> absolute dir
	loaded     map[string]*Package
	loading    map[string]bool // cycle detection
	std        types.Importer
}

// NewLoader builds a loader for the module containing dir (found by
// walking up to go.mod).
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("analysis: no go.mod found above %s", abs)
		}
		root = parent
	}
	modPath, err := modulePathOf(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	// The suite reasons about the pure-Go build: cgo variants of stdlib
	// packages would drag the cgo tool into type-checking for nothing.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	l := &Loader{
		Fset:       fset,
		baseDir:    abs,
		moduleRoot: root,
		modulePath: modPath,
		dirs:       map[string]string{},
		loaded:     map[string]*Package{},
		loading:    map[string]bool{},
		std:        importer.ForCompiler(fset, "source", nil),
	}
	if err := l.indexModule(); err != nil {
		return nil, err
	}
	return l, nil
}

// modulePathOf extracts the module path from a go.mod file.
func modulePathOf(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s", gomod)
}

// indexModule maps every buildable package dir under the module root to
// its import path. Hidden dirs, underscore dirs, and testdata are
// skipped, mirroring the go tool's ./... expansion.
func (l *Loader) indexModule() error {
	return filepath.WalkDir(l.moduleRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.moduleRoot &&
			(strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		bp, err := build.ImportDir(path, 0)
		if err != nil {
			return nil // no buildable Go files here; keep walking
		}
		if len(bp.GoFiles) == 0 {
			return nil
		}
		rel, err := filepath.Rel(l.moduleRoot, path)
		if err != nil {
			return err
		}
		imp := l.modulePath
		if rel != "." {
			imp = l.modulePath + "/" + filepath.ToSlash(rel)
		}
		l.dirs[imp] = path
		return nil
	})
}

// Load expands the patterns ("./...", "./dir/...", ".", "./dir", or a
// full import path) and returns the matched packages, type-checked, in
// import-path order.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	targets := map[string]bool{}
	for _, pat := range patterns {
		matched, err := l.expand(pat)
		if err != nil {
			return nil, err
		}
		for _, imp := range matched {
			targets[imp] = true
		}
	}
	paths := make([]string, 0, len(targets))
	for imp := range targets {
		paths = append(paths, imp)
	}
	sort.Strings(paths)
	pkgs := make([]*Package, 0, len(paths))
	for _, imp := range paths {
		pkg, err := l.load(imp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// expand resolves one pattern to module import paths.
func (l *Loader) expand(pat string) ([]string, error) {
	toImport := func(dir string) (string, error) {
		// Relative patterns anchor at the loader's base dir, not the
		// process working directory, so Run(Config{Dir: ...}) behaves
		// the same from any cwd.
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(l.baseDir, dir)
		}
		rel, err := filepath.Rel(l.moduleRoot, dir)
		if err != nil || strings.HasPrefix(rel, "..") {
			return "", fmt.Errorf("analysis: %s is outside module %s", dir, l.modulePath)
		}
		if rel == "." {
			return l.modulePath, nil
		}
		return l.modulePath + "/" + filepath.ToSlash(rel), nil
	}
	switch {
	case strings.HasSuffix(pat, "/..."):
		base, err := toImport(strings.TrimSuffix(pat, "/..."))
		if err != nil {
			return nil, err
		}
		var out []string
		for imp := range l.dirs {
			if imp == base || strings.HasPrefix(imp, base+"/") {
				out = append(out, imp)
			}
		}
		if len(out) == 0 {
			return nil, fmt.Errorf("analysis: no packages match %s", pat)
		}
		return out, nil
	case pat == "." || strings.HasPrefix(pat, "./") || strings.HasPrefix(pat, "/"):
		imp, err := toImport(pat)
		if err != nil {
			return nil, err
		}
		if _, ok := l.dirs[imp]; !ok {
			return nil, fmt.Errorf("analysis: no buildable package in %s", pat)
		}
		return []string{imp}, nil
	default: // a plain import path
		if _, ok := l.dirs[pat]; !ok {
			return nil, fmt.Errorf("analysis: unknown package %s", pat)
		}
		return []string{pat}, nil
	}
}

// load type-checks one module package (memoized).
func (l *Loader) load(imp string) (*Package, error) {
	if pkg, ok := l.loaded[imp]; ok {
		return pkg, nil
	}
	if l.loading[imp] {
		return nil, fmt.Errorf("analysis: import cycle through %s", imp)
	}
	l.loading[imp] = true
	defer delete(l.loading, imp)

	dir, ok := l.dirs[imp]
	if !ok {
		return nil, fmt.Errorf("analysis: unknown module package %s", imp)
	}
	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", imp, err)
	}
	files := make([]*ast.File, 0, len(bp.GoFiles))
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	pkg, err := l.check(imp, files)
	if err != nil {
		return nil, err
	}
	pkg.Dir = dir
	l.loaded[imp] = pkg
	return pkg, nil
}

// check type-checks parsed files as the package imp, resolving module
// imports through the loader and everything else through the stdlib
// source importer.
func (l *Loader) check(imp string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	var errs []error
	conf := types.Config{
		Importer: importerFunc(func(path string) (*types.Package, error) {
			if path == l.modulePath || strings.HasPrefix(path, l.modulePath+"/") {
				pkg, err := l.load(path)
				if err != nil {
					return nil, err
				}
				return pkg.Types, nil
			}
			return l.std.Import(path)
		}),
		Error: func(err error) { errs = append(errs, err) },
	}
	tpkg, _ := conf.Check(imp, l.Fset, files, info)
	if len(errs) > 0 {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", imp, errs[0])
	}
	return &Package{Path: imp, Fset: l.Fset, Files: files, Types: tpkg, Info: info}, nil
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
