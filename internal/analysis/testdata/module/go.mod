module github.com/factcheck/cleansel

go 1.24
