package core

import "math"

func eq(a, b float64) bool {
	return a == b // want floateq "float == comparison"
}

func neq(a, b float64) bool {
	return a != b // want floateq "float != comparison"
}

// The allowlisted shapes: literal zero, ±Inf, and the NaN self-compare.

func isZero(a float64) bool { return a == 0 }

func isFinite(a float64) bool { return a != math.Inf(1) && a != math.Inf(-1) }

func isNaN(a float64) bool { return a != a }

// tieBreak is the deterministic sort idiom: the comparison orders two
// values instead of pooling them, so round-off can only reorder ties.
func tieBreak(a, b float64) bool {
	if a != b {
		return a > b
	}
	return false
}

// tieBreakWithCalls looks like the idiom but repeats function calls, so
// the operands are not guaranteed to reproduce bit-for-bit.
func tieBreakWithCalls(a, b float64) bool {
	if math.Abs(a) != math.Abs(b) { // want floateq "float != comparison"
		return math.Abs(a) > math.Abs(b)
	}
	return false
}

func classify(x float64) int {
	switch x { // want floateq "switch on float tag"
	case 1.5:
		return 1
	}
	return 0
}

func classifyAllowed(x float64) int {
	switch x {
	case 0:
		return 1
	case math.Inf(1):
		return 2
	}
	return 0
}
