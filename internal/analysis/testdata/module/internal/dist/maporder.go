package dist

// foldProbs mirrors the pre-fix WeightedSum hot loop: several source
// atoms can land on one destination key, so the += below sums in map
// iteration order.
func foldProbs(probs map[int64]float64) map[int64]float64 {
	next := map[int64]float64{}
	for k, p := range probs {
		next[k%7] += p * 0.5 // want maporder "accumulation inside range over map"
	}
	return next
}

// negEntropy mirrors the pre-fix entropy loop (h -= p·log p in map
// order).
func negEntropy(pmf map[int64]float64) float64 {
	var h float64
	for _, p := range pmf {
		h -= p // want maporder "accumulation inside range over map"
	}
	return h
}

func product(m map[int64]float64) float64 {
	r := 1.0
	for _, v := range m {
		r *= v // want maporder "accumulation inside range over map"
	}
	return r
}

func values(m map[int64]float64) []float64 {
	var out []float64
	for _, v := range m {
		out = append(out, v) // want maporder "append inside range over map"
	}
	return out
}

// sortedKeysExtraction is the first half of the sanctioned idiom: only
// the range key is appended, and the caller sorts before use.
func sortedKeysExtraction(m map[int64]float64) []int64 {
	keys := make([]int64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// intAccumulation is exact arithmetic; order cannot leak into the bits.
func intAccumulation(m map[int64]int64) int64 {
	var s int64
	for _, v := range m {
		s += v
	}
	return s
}
