package dist

import (
	"math/rand"
	"os"
	"time"
)

func stamp() int64 {
	return time.Now().UnixNano() // want walltime "time.Now in deterministic engine package"
}

func draw() float64 {
	return rand.Float64() // want walltime "math/rand"
}

func mode() string {
	return os.Getenv("CLEANSEL_MODE") // want walltime "environment-dependent behavior"
}
