// Package model exercises the directive machinery.
//
//lint:allow maporder — golden test: this file demonstrates a used, well-formed suppression
package model

func sum(m map[int]float64) float64 {
	var s float64
	for _, v := range m {
		s += v // suppressed by the file-scoped directive above
	}
	return s
}
