package model

//lint:allow nosuchcheck — bogus check name // want lint "unknown check"

//lint:allow floateq missing the separator and reason // want lint "needs a reason"

//lint:allow walltime — walltime never fires outside engine packages // want lint "unused"
