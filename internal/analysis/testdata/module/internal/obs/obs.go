// Package obs mirrors the real internal/obs shape: the one engine
// package allowed to read the wall clock, behind a file-scoped allow
// directive. Everything else here (Recorder) is write-only plumbing
// that engines may use freely.
//
//lint:allow walltime — golden test: obs is the sanctioned clock package; wall time enters only here
package obs

import "time"

// Clock hands out wall time; injected at the server boundary.
type Clock interface {
	Now() time.Time
}

type systemClock struct{}

func (systemClock) Now() time.Time { return time.Now() }

// SystemClock is the real clock.
var SystemClock Clock = systemClock{}

// FakeClock is a manual clock for tests.
type FakeClock struct{ t time.Time }

func NewFakeClock(t time.Time) *FakeClock { return &FakeClock{t: t} }

func (f *FakeClock) Now() time.Time { return f.t }

// Recorder is the write-only trace sink a request carries.
type Recorder struct {
	clock  Clock
	counts map[string]int64
}

// NewRecorder embeds a clock, so constructing one is itself a clock
// acquisition — engines receive a Recorder, they never build one.
func NewRecorder(c Clock) *Recorder {
	if c == nil {
		c = SystemClock
	}
	return &Recorder{clock: c, counts: map[string]int64{}}
}

// Add ticks a counter; nil-receiver safe.
func (r *Recorder) Add(name string, n int64) {
	if r == nil {
		return
	}
	r.counts[name] += n
}
