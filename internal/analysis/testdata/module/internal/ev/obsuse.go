package ev

import "github.com/factcheck/cleansel/internal/obs"

// tick exercises the allowed direction: engines may tick the
// write-only Recorder a request hands them. No findings here.
func tick(rec *obs.Recorder, hits int64) {
	rec.Add("ev_cache_hits", hits)
}

// holdClock exercises the banned direction: an engine holding a clock
// reads wall time through the back door, even via the sanctioned
// package.
func holdClock() obs.Clock { // want walltime "obs.Clock in deterministic engine package"
	return obs.SystemClock // want walltime "obs.SystemClock in deterministic engine package"
}

// buildRecorder is banned too: NewRecorder embeds a clock, so engines
// receive recorders, they never construct them.
func buildRecorder() *obs.Recorder {
	return obs.NewRecorder(nil) // want walltime "obs.NewRecorder in deterministic engine package"
}

// fakeOut shows fakes are no loophole: the point is that engines take
// no clock at all, real or fake.
func fakeOut() *obs.FakeClock { // want walltime "obs.FakeClock in deterministic engine package"
	return obs.NewFakeClock(obs.SystemClock.Now()) // want walltime "obs.NewFakeClock" // want walltime "obs.SystemClock"
}
