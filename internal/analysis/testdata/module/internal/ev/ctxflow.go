package ev

import "context"

type Engine struct{}

// Solve is the sanctioned blocking shim: the Background call flows
// straight into the Ctx variant, so it is not reported.
func (e *Engine) Solve() error { return e.SolveCtx(context.Background()) }

func (e *Engine) SolveCtx(ctx context.Context) error { return ctx.Err() }

// run holds a context but calls the blocking method anyway.
func run(ctx context.Context, e *Engine) error {
	return e.Solve() // want ctxflow "blocking call to Solve while holding a context"
}

// runPropagated passes the context on; nothing to report.
func runPropagated(ctx context.Context, e *Engine) error {
	return e.SolveCtx(ctx)
}

func Work() error { return WorkContext(context.Background()) }

func WorkContext(ctx context.Context) error { return ctx.Err() }

// callsWork exercises the package-scope ...Context sibling lookup.
func callsWork(ctx context.Context) error {
	return Work() // want ctxflow "blocking call to Work while holding a context"
}

// mint fabricates a context outside the shim pattern.
func mint() context.Context {
	return context.Background() // want ctxflow "in library code"
}
