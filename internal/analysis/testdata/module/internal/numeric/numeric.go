// Package numeric is the one package whose job is float comparison, so
// floateq stays silent here.
package numeric

func AlmostEqual(a, b float64) bool { return a == b }
