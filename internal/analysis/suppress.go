package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// An allowDirective is one parsed //lint:allow comment. Directives are
// file-scoped: every finding of the named check in the file is
// suppressed. The reason is mandatory — a suppression is a recorded
// decision, not an off switch.
type allowDirective struct {
	check  string
	reason string
	pos    token.Position
	used   bool
}

const directivePrefix = "//lint:allow"

// parseAllows extracts the allow directives from one file. Malformed
// directives (unknown check, missing separator or reason) come back as
// diagnostics under the reserved check name "lint", which cannot itself
// be suppressed.
func parseAllows(fset *token.FileSet, f *ast.File) ([]*allowDirective, []Diagnostic) {
	var allows []*allowDirective
	var malformed []Diagnostic
	bad := func(pos token.Pos, msg string) {
		malformed = append(malformed, Diagnostic{Pos: fset.Position(pos), Check: "lint", Message: msg})
	}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, directivePrefix) {
				continue
			}
			rest := c.Text[len(directivePrefix):]
			if rest == "" || (rest[0] != ' ' && rest[0] != '\t') {
				continue // e.g. //lint:allowed — not this directive
			}
			rest = strings.TrimSpace(rest)
			check, tail, _ := strings.Cut(rest, " ")
			if ByName(check) == nil {
				bad(c.Pos(), "//lint:allow names unknown check "+strings.TrimSpace(check)+"; known checks: "+checkNames())
				continue
			}
			reason, ok := cutReason(tail)
			if !ok || reason == "" {
				bad(c.Pos(), "//lint:allow "+check+" needs a reason: //lint:allow "+check+" — <why this file is exempt>")
				continue
			}
			allows = append(allows, &allowDirective{check: check, reason: reason, pos: fset.Position(c.Pos())})
		}
	}
	return allows, malformed
}

// cutReason strips the mandatory separator ("—" or "--") and returns
// the trimmed reason text.
func cutReason(tail string) (string, bool) {
	tail = strings.TrimSpace(tail)
	for _, sep := range []string{"—", "--"} {
		if rest, ok := strings.CutPrefix(tail, sep); ok {
			return strings.TrimSpace(rest), true
		}
	}
	return "", false
}

// checkNames returns the known check names, comma-separated.
func checkNames() string {
	names := make([]string, len(Analyzers))
	for i, a := range Analyzers {
		names[i] = a.Name
	}
	return strings.Join(names, ", ")
}
