// Package model defines the uncertain database of §2.1: a set of objects
// O = (o_1, …, o_n), each with a current (possibly wrong) value u_i, a
// cleaning cost c_i, and a random true value X_i. Object values are
// mutually independent unless the database carries an explicit error
// covariance (the correlated setting of §4.5).
package model

import (
	"errors"
	"fmt"
	"sort"

	"github.com/factcheck/cleansel/internal/dist"
	"github.com/factcheck/cleansel/internal/linalg"
)

// Value is the marginal law of an object's true value. Both *dist.Discrete
// and dist.Normal satisfy it; algorithms that need more than moments
// type-assert to the concrete law they support.
type Value interface {
	Mean() float64
	Variance() float64
}

// Object is one uncertain data item.
type Object struct {
	ID      int     // position in the database, 0-based
	Name    string  // human-readable label, e.g. "adoptions/1996"
	Current float64 // u_i: the value currently in the database
	Cost    float64 // c_i: cost of cleaning (revealing the true value)
	Value   Value   // law of the true value X_i
}

// DB is an uncertain database instance.
type DB struct {
	Objects []Object
	// Cov, when non-nil, is the full covariance matrix of the true values;
	// its diagonal must agree with the marginal variances. Nil means the
	// X_i are mutually independent (the default throughout the paper).
	Cov *linalg.Matrix
}

// New assembles a database and assigns object IDs by position.
func New(objects []Object) *DB {
	db := &DB{Objects: append([]Object(nil), objects...)}
	for i := range db.Objects {
		db.Objects[i].ID = i
	}
	return db
}

// N returns the number of objects.
func (db *DB) N() int { return len(db.Objects) }

// Validate checks costs, value models, and covariance consistency.
func (db *DB) Validate() error {
	if db.N() == 0 {
		return errors.New("model: empty database")
	}
	for i, o := range db.Objects {
		if o.ID != i {
			return fmt.Errorf("model: object %d has ID %d", i, o.ID)
		}
		if o.Cost < 0 {
			return fmt.Errorf("model: object %d has negative cost %v", i, o.Cost)
		}
		if o.Value == nil {
			return fmt.Errorf("model: object %d has no value model", i)
		}
		if o.Value.Variance() < 0 {
			return fmt.Errorf("model: object %d has negative variance", i)
		}
	}
	if db.Cov != nil {
		n := db.N()
		if db.Cov.Rows != n || db.Cov.Cols != n {
			return fmt.Errorf("model: covariance is %dx%d for %d objects", db.Cov.Rows, db.Cov.Cols, n)
		}
		if !db.Cov.IsSymmetric(1e-6) {
			return errors.New("model: covariance must be symmetric")
		}
		for i := 0; i < n; i++ {
			v := db.Objects[i].Value.Variance()
			if d := db.Cov.At(i, i); d < 0 || (v > 0 && absRel(d, v) > 1e-6) {
				return fmt.Errorf("model: covariance diagonal %v disagrees with marginal variance %v at %d", d, v, i)
			}
		}
	}
	return nil
}

func absRel(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	m := a
	if b > m {
		m = b
	}
	if m == 0 {
		return 0
	}
	return d / m
}

// Currents returns the vector u of current values.
func (db *DB) Currents() []float64 {
	out := make([]float64, db.N())
	for i, o := range db.Objects {
		out[i] = o.Current
	}
	return out
}

// Costs returns the cleaning-cost vector.
func (db *DB) Costs() []float64 {
	out := make([]float64, db.N())
	for i, o := range db.Objects {
		out[i] = o.Cost
	}
	return out
}

// Variances returns the marginal variance vector.
func (db *DB) Variances() []float64 {
	out := make([]float64, db.N())
	for i, o := range db.Objects {
		out[i] = o.Value.Variance()
	}
	return out
}

// Means returns the marginal mean vector.
func (db *DB) Means() []float64 {
	out := make([]float64, db.N())
	for i, o := range db.Objects {
		out[i] = o.Value.Mean()
	}
	return out
}

// TotalCost returns Σ c_i.
func (db *DB) TotalCost() float64 {
	var tot float64
	for _, o := range db.Objects {
		tot += o.Cost
	}
	return tot
}

// Budget returns frac·TotalCost, the budget convention used on every
// figure axis in §4.
func (db *DB) Budget(frac float64) float64 { return frac * db.TotalCost() }

// Discretes returns the per-object discrete laws, or an error if any
// object has a non-discrete value model. Exact expected-variance engines
// require finite supports.
func (db *DB) Discretes() ([]*dist.Discrete, error) {
	out := make([]*dist.Discrete, db.N())
	for i, o := range db.Objects {
		d, ok := o.Value.(*dist.Discrete)
		if !ok {
			return nil, fmt.Errorf("model: object %d (%s) is not discrete (%T)", i, o.Name, o.Value)
		}
		out[i] = d
	}
	return out, nil
}

// Normals returns the per-object normal laws and true if every object is
// normal.
func (db *DB) Normals() ([]dist.Normal, bool) {
	out := make([]dist.Normal, db.N())
	for i, o := range db.Objects {
		n, ok := o.Value.(dist.Normal)
		if !ok {
			return nil, false
		}
		out[i] = n
	}
	return out, true
}

// Discretized returns a copy of the database in which every normal value
// model is replaced by its k-point equal-probability discretization.
// Non-normal models are kept as-is. The covariance (if any) is dropped,
// matching how §4.2 feeds the CDC datasets to the discrete engines.
func (db *DB) Discretized(k int) *DB {
	objects := make([]Object, db.N())
	copy(objects, db.Objects)
	for i, o := range objects {
		if n, ok := o.Value.(dist.Normal); ok {
			objects[i].Value = n.Discretize(k)
		}
	}
	return &DB{Objects: objects}
}

// Set is a subset of object IDs, kept sorted ascending and unique.
type Set []int

// NewSet builds a canonical Set from ids.
func NewSet(ids ...int) Set {
	s := append(Set(nil), ids...)
	sort.Ints(s)
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// Has reports membership.
func (s Set) Has(id int) bool {
	i := sort.SearchInts(s, id)
	return i < len(s) && s[i] == id
}

// Add returns a new Set with id inserted.
func (s Set) Add(id int) Set {
	if s.Has(id) {
		return s
	}
	out := make(Set, 0, len(s)+1)
	i := sort.SearchInts(s, id)
	out = append(out, s[:i]...)
	out = append(out, id)
	out = append(out, s[i:]...)
	return out
}

// Union returns s ∪ t.
func (s Set) Union(t Set) Set {
	out := append(Set(nil), s...)
	for _, id := range t {
		out = out.Add(id)
	}
	return out
}

// Intersect returns s ∩ t.
func (s Set) Intersect(t Set) Set {
	var out Set
	for _, id := range s {
		if t.Has(id) {
			out = append(out, id)
		}
	}
	return out
}

// Minus returns s \ t.
func (s Set) Minus(t Set) Set {
	var out Set
	for _, id := range s {
		if !t.Has(id) {
			out = append(out, id)
		}
	}
	return out
}

// Complement returns {0..n-1} \ s.
func (s Set) Complement(n int) Set {
	out := make(Set, 0, n-len(s))
	j := 0
	for i := 0; i < n; i++ {
		if j < len(s) && s[j] == i {
			j++
			continue
		}
		out = append(out, i)
	}
	return out
}

// Cost returns the total cleaning cost of the subset.
func (s Set) Cost(db *DB) float64 {
	var tot float64
	for _, id := range s {
		tot += db.Objects[id].Cost
	}
	return tot
}

// Clone returns a copy.
func (s Set) Clone() Set { return append(Set(nil), s...) }
