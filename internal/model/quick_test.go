package model

import (
	"sort"
	"testing"
	"testing/quick"
)

// sanitizeIDs maps arbitrary generated ints into a small ID universe.
func sanitizeIDs(raw []int, n int) []int {
	out := make([]int, 0, len(raw))
	for _, v := range raw {
		x := v % n
		if x < 0 {
			x += n
		}
		out = append(out, x)
	}
	return out
}

func TestQuickSetCanonical(t *testing.T) {
	f := func(raw []int) bool {
		s := NewSet(sanitizeIDs(raw, 40)...)
		// Sorted, unique.
		for i := 1; i < len(s); i++ {
			if s[i] <= s[i-1] {
				return false
			}
		}
		// Membership agrees with linear scan.
		for _, v := range s {
			if !s.Has(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSetComplementInvolution(t *testing.T) {
	const n = 30
	f := func(raw []int) bool {
		s := NewSet(sanitizeIDs(raw, n)...)
		back := s.Complement(n).Complement(n)
		if len(back) != len(s) {
			return false
		}
		for i := range s {
			if back[i] != s[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSetDeMorgan(t *testing.T) {
	const n = 24
	f := func(rawA, rawB []int) bool {
		a := NewSet(sanitizeIDs(rawA, n)...)
		b := NewSet(sanitizeIDs(rawB, n)...)
		// complement(a ∪ b) == complement(a) ∩ complement(b)
		lhs := a.Union(b).Complement(n)
		rhs := a.Complement(n).Intersect(b.Complement(n))
		return setsEqual(lhs, rhs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSetMinusPartition(t *testing.T) {
	const n = 24
	f := func(rawA, rawB []int) bool {
		a := NewSet(sanitizeIDs(rawA, n)...)
		b := NewSet(sanitizeIDs(rawB, n)...)
		// a == (a ∩ b) ∪ (a \ b), and the two parts are disjoint.
		inter := a.Intersect(b)
		minus := a.Minus(b)
		if len(inter.Intersect(minus)) != 0 {
			return false
		}
		return setsEqual(a, inter.Union(minus))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSetUnionCommutes(t *testing.T) {
	const n = 24
	f := func(rawA, rawB []int) bool {
		a := NewSet(sanitizeIDs(rawA, n)...)
		b := NewSet(sanitizeIDs(rawB, n)...)
		return setsEqual(a.Union(b), b.Union(a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAddIdempotent(t *testing.T) {
	const n = 24
	f := func(raw []int, idRaw int) bool {
		s := NewSet(sanitizeIDs(raw, n)...)
		id := idRaw % n
		if id < 0 {
			id += n
		}
		once := s.Add(id)
		twice := once.Add(id)
		return setsEqual(once, twice) && once.Has(id)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func setsEqual(a, b Set) bool {
	if len(a) != len(b) {
		return false
	}
	ac := append([]int(nil), a...)
	bc := append([]int(nil), b...)
	sort.Ints(ac)
	sort.Ints(bc)
	for i := range ac {
		if ac[i] != bc[i] {
			return false
		}
	}
	return true
}
