package model

import (
	"testing"

	"github.com/factcheck/cleansel/internal/dist"
	"github.com/factcheck/cleansel/internal/linalg"
	"github.com/factcheck/cleansel/internal/numeric"
)

func sampleDB() *DB {
	return New([]Object{
		{Name: "a", Current: 10, Cost: 1, Value: dist.UniformOver([]float64{9, 10, 11})},
		{Name: "b", Current: 20, Cost: 2, Value: dist.PointMass(20)},
		{Name: "c", Current: 30, Cost: 3, Value: dist.MustDiscrete([]float64{29, 31}, []float64{0.5, 0.5})},
	})
}

func TestNewAssignsIDs(t *testing.T) {
	db := sampleDB()
	for i, o := range db.Objects {
		if o.ID != i {
			t.Fatalf("object %d has ID %d", i, o.ID)
		}
	}
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	if err := (&DB{}).Validate(); err == nil {
		t.Fatal("empty DB validated")
	}
	db := sampleDB()
	db.Objects[1].Cost = -1
	if err := db.Validate(); err == nil {
		t.Fatal("negative cost validated")
	}
	db = sampleDB()
	db.Objects[0].Value = nil
	if err := db.Validate(); err == nil {
		t.Fatal("nil value model validated")
	}
	db = sampleDB()
	db.Cov = linalg.NewMatrix(2, 2)
	if err := db.Validate(); err == nil {
		t.Fatal("wrong-size covariance validated")
	}
	db = sampleDB()
	db.Cov = linalg.FromRows([][]float64{
		{99, 0, 0}, // disagrees with Var[a] = 2/3
		{0, 0, 0},
		{0, 0, 1},
	})
	if err := db.Validate(); err == nil {
		t.Fatal("inconsistent covariance diagonal validated")
	}
}

func TestVectors(t *testing.T) {
	db := sampleDB()
	if got := db.Currents(); got[0] != 10 || got[2] != 30 {
		t.Fatalf("currents %v", got)
	}
	if got := db.Costs(); got[1] != 2 {
		t.Fatalf("costs %v", got)
	}
	if got := db.Variances(); !numeric.AlmostEqual(got[0], 2.0/3.0, 1e-12) || got[1] != 0 || got[2] != 1 {
		t.Fatalf("variances %v", got)
	}
	if got := db.Means(); got[1] != 20 || got[2] != 30 {
		t.Fatalf("means %v", got)
	}
	if db.TotalCost() != 6 {
		t.Fatalf("total cost %v", db.TotalCost())
	}
	if db.Budget(0.5) != 3 {
		t.Fatalf("budget %v", db.Budget(0.5))
	}
}

func TestDiscretes(t *testing.T) {
	db := sampleDB()
	ds, err := db.Discretes()
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 3 || ds[1].Size() != 1 {
		t.Fatal("discretes wrong")
	}
	n, _ := dist.NewNormal(0, 1)
	db.Objects[0].Value = n
	if _, err := db.Discretes(); err == nil {
		t.Fatal("normal object should fail Discretes")
	}
}

func TestNormalsAndDiscretized(t *testing.T) {
	n1, _ := dist.NewNormal(10, 2)
	n2, _ := dist.NewNormal(20, 3)
	db := New([]Object{
		{Name: "a", Current: 10, Cost: 1, Value: n1},
		{Name: "b", Current: 20, Cost: 1, Value: n2},
	})
	ns, ok := db.Normals()
	if !ok || ns[1].Sigma != 3 {
		t.Fatal("Normals failed")
	}
	dd := db.Discretized(4)
	ds, err := dd.Discretes()
	if err != nil {
		t.Fatal(err)
	}
	if ds[0].Size() != 4 {
		t.Fatalf("discretized size %d", ds[0].Size())
	}
	if !numeric.AlmostEqual(ds[0].Mean(), 10, 1e-9) {
		t.Fatalf("discretized mean %v", ds[0].Mean())
	}
	// Mixed DB: Normals reports false.
	db.Objects[0].Value = dist.PointMass(1)
	if _, ok := db.Normals(); ok {
		t.Fatal("mixed DB should not report all-normal")
	}
}

func TestSetOps(t *testing.T) {
	s := NewSet(3, 1, 3, 2)
	if len(s) != 3 || s[0] != 1 || s[2] != 3 {
		t.Fatalf("NewSet canon: %v", s)
	}
	if !s.Has(2) || s.Has(0) {
		t.Fatal("Has broken")
	}
	s2 := s.Add(0)
	if len(s2) != 4 || s2[0] != 0 {
		t.Fatalf("Add: %v", s2)
	}
	if len(s) != 3 {
		t.Fatal("Add mutated receiver")
	}
	if got := s.Add(2); len(got) != 3 {
		t.Fatal("Add existing changed size")
	}
	u := NewSet(1, 5).Union(NewSet(2, 5))
	if len(u) != 3 || !u.Has(2) {
		t.Fatalf("Union: %v", u)
	}
	i := NewSet(1, 2, 3).Intersect(NewSet(2, 3, 4))
	if len(i) != 2 || !i.Has(2) || !i.Has(3) {
		t.Fatalf("Intersect: %v", i)
	}
	m := NewSet(1, 2, 3).Minus(NewSet(2))
	if len(m) != 2 || m.Has(2) {
		t.Fatalf("Minus: %v", m)
	}
	c := NewSet(0, 2).Complement(4)
	if len(c) != 2 || !c.Has(1) || !c.Has(3) {
		t.Fatalf("Complement: %v", c)
	}
}

func TestSetCost(t *testing.T) {
	db := sampleDB()
	if got := NewSet(0, 2).Cost(db); got != 4 {
		t.Fatalf("cost %v", got)
	}
	if got := Set(nil).Cost(db); got != 0 {
		t.Fatalf("empty cost %v", got)
	}
}

func TestSetClone(t *testing.T) {
	s := NewSet(1, 2)
	c := s.Clone()
	c[0] = 99
	if s[0] != 1 {
		t.Fatal("Clone aliases")
	}
}
