// Package stats provides the summary statistics the experiment harness
// reports: means, deviations, extrema, and quantiles over repeated runs.
//
// Contract: every function is a pure fold over its input slice in index
// order (Quantile sorts a copy; the caller's slice is never mutated), so
// results are deterministic in the input sequence — the same bit-identity
// rule the rest of the library follows. Empty-input conventions match
// each function's identity element (Mean/Var 0, Min/Max ±Inf,
// Quantile NaN); callers render missing series explicitly.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Var returns the population variance.
func Var(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// Std returns the population standard deviation.
func Std(xs []float64) float64 { return math.Sqrt(Var(xs)) }

// Min returns the minimum (+Inf for empty input).
func Min(xs []float64) float64 {
	out := math.Inf(1)
	for _, x := range xs {
		if x < out {
			out = x
		}
	}
	return out
}

// Max returns the maximum (−Inf for empty input).
func Max(xs []float64) float64 {
	out := math.Inf(-1)
	for _, x := range xs {
		if x > out {
			out = x
		}
	}
	return out
}

// Quantile returns the p-quantile (linear interpolation between order
// statistics); p is clamped to [0,1].
func Quantile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
