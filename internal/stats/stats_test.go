package stats

import (
	"math"
	"testing"
)

func TestMeanVarStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(xs) != 5 {
		t.Fatalf("mean %v", Mean(xs))
	}
	if Var(xs) != 4 {
		t.Fatalf("var %v", Var(xs))
	}
	if Std(xs) != 2 {
		t.Fatalf("std %v", Std(xs))
	}
	if Mean(nil) != 0 || Var(nil) != 0 {
		t.Fatal("empty input should be 0")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatal("minmax wrong")
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Fatal("empty minmax wrong")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 5 {
		t.Fatal("extremes wrong")
	}
	if Quantile(xs, 0.5) != 3 {
		t.Fatalf("median %v", Quantile(xs, 0.5))
	}
	if got := Quantile(xs, 0.25); got != 2 {
		t.Fatalf("q25 %v", got)
	}
	if got := Quantile([]float64{1, 2}, 0.5); got != 1.5 {
		t.Fatalf("interpolated median %v", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty quantile should be NaN")
	}
	// Input must not be mutated.
	ys := []float64{3, 1, 2}
	Quantile(ys, 0.5)
	if ys[0] != 3 {
		t.Fatal("Quantile mutated input")
	}
}
