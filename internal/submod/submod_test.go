package submod

import (
	"math"
	"testing"

	"github.com/factcheck/cleansel/internal/model"
	"github.com/factcheck/cleansel/internal/numeric"
	"github.com/factcheck/cleansel/internal/rng"
)

// modularFunc builds f(S) = Σ_{i∈S} w_i.
func modularFunc(w []float64) Func {
	return Func{
		N: len(w),
		Eval: func(S model.Set) float64 {
			var s float64
			for _, i := range S {
				s += w[i]
			}
			return s
		},
	}
}

// coverageFunc builds a non-decreasing submodular weighted-coverage
// function: elements cover random subsets of a universe with weights.
func coverageFunc(r *rng.RNG, n, universe int) Func {
	covers := make([][]int, n)
	for i := range covers {
		k := 1 + r.Intn(universe)
		covers[i] = r.SampleWithoutReplacement(0, universe-1, k)
	}
	weights := make([]float64, universe)
	for i := range weights {
		weights[i] = r.Float64() + 0.1
	}
	return Func{
		N: n,
		Eval: func(S model.Set) float64 {
			seen := make([]bool, universe)
			var v float64
			for _, i := range S {
				for _, u := range covers[i] {
					if !seen[u] {
						seen[u] = true
						v += weights[u]
					}
				}
			}
			return v
		},
	}
}

func bruteMinCover(f Func, costs []float64, lower float64) (model.Set, float64) {
	bestVal := math.Inf(1)
	var best model.Set
	for mask := 0; mask < 1<<f.N; mask++ {
		var S model.Set
		var c float64
		for i := 0; i < f.N; i++ {
			if mask&(1<<i) != 0 {
				S = append(S, i)
				c += costs[i]
			}
		}
		if c < lower-1e-9 {
			continue
		}
		if v := f.Eval(S); v < bestVal {
			bestVal, best = v, S
		}
	}
	return best, bestVal
}

func TestComplement(t *testing.T) {
	w := []float64{1, 2, 4}
	f := modularFunc(w)
	fb := Complement(f)
	// f̄({0}) = f({1,2}) = 6.
	if got := fb.Eval(model.NewSet(0)); got != 6 {
		t.Fatalf("complement eval = %v, want 6", got)
	}
	if got := fb.Eval(nil); got != 7 {
		t.Fatalf("complement of empty = %v, want 7", got)
	}
}

func TestMarginal(t *testing.T) {
	f := modularFunc([]float64{1, 2, 4})
	if got := Marginal(f, model.NewSet(0), 2); got != 4 {
		t.Fatalf("marginal = %v, want 4", got)
	}
}

func TestCurvatureModularIsZero(t *testing.T) {
	f := modularFunc([]float64{1, 2, 3})
	if got := Curvature(f); !numeric.AlmostEqual(got, 0, 1e-12) {
		t.Fatalf("modular curvature = %v, want 0", got)
	}
}

func TestCurvatureCoverage(t *testing.T) {
	// Two identical elements covering the same unit: second adds nothing
	// given the first → curvature 1.
	f := Func{
		N: 2,
		Eval: func(S model.Set) float64 {
			if len(S) > 0 {
				return 1
			}
			return 0
		},
	}
	if got := Curvature(f); !numeric.AlmostEqual(got, 1, 1e-12) {
		t.Fatalf("duplicate-coverage curvature = %v, want 1", got)
	}
}

func TestMinimizeCoverModularExact(t *testing.T) {
	// With a modular objective the upper bound is tight everywhere, so the
	// first inner knapsack already returns the global optimum.
	r := rng.New(11)
	for trial := 0; trial < 30; trial++ {
		n := 2 + r.Intn(8)
		w := make([]float64, n)
		costs := make([]float64, n)
		var total float64
		for i := range w {
			w[i] = float64(r.IntRange(0, 20))
			costs[i] = float64(r.IntRange(1, 8))
			total += costs[i]
		}
		lower := r.Float64() * total
		f := modularFunc(w)
		got, gotVal, err := MinimizeCover(f, costs, lower, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		_, wantVal := bruteMinCover(f, costs, lower)
		if !numeric.AlmostEqual(gotVal, wantVal, 1e-9) {
			t.Fatalf("trial %d: MMin %v vs OPT %v", trial, gotVal, wantVal)
		}
		if setCost(got, costs) < lower-1e-9 {
			t.Fatalf("trial %d: infeasible result", trial)
		}
	}
}

func TestMinimizeCoverSubmodularNearOptimal(t *testing.T) {
	r := rng.New(13)
	worstRatio := 1.0
	for trial := 0; trial < 25; trial++ {
		n := 3 + r.Intn(6)
		f := coverageFunc(r, n, 6)
		costs := make([]float64, n)
		var total float64
		for i := range costs {
			costs[i] = float64(r.IntRange(1, 6))
			total += costs[i]
		}
		lower := (0.3 + 0.5*r.Float64()) * total
		got, gotVal, err := MinimizeCover(f, costs, lower, 10, 1)
		if err != nil {
			t.Fatal(err)
		}
		if setCost(got, costs) < lower-1e-9 {
			t.Fatalf("trial %d: infeasible", trial)
		}
		_, opt := bruteMinCover(f, costs, lower)
		if gotVal < opt-1e-9 {
			t.Fatalf("trial %d: better than OPT?! %v < %v", trial, gotVal, opt)
		}
		if opt > 0 {
			if ratio := gotVal / opt; ratio > worstRatio {
				worstRatio = ratio
			}
		}
	}
	// MMin carries a curvature-dependent guarantee, not a constant one;
	// with the greedy-seeded restart it stays close to optimal on these
	// instances. Treat a blow-up as a regression.
	if worstRatio > 2.0 {
		t.Fatalf("MMin ratio degraded: worst %v", worstRatio)
	}
}

func TestMinimizeCoverInfeasible(t *testing.T) {
	f := modularFunc([]float64{1, 1})
	if _, _, err := MinimizeCover(f, []float64{1, 1}, 5, 4, 1); err == nil {
		t.Fatal("infeasible covering accepted")
	}
	if _, _, err := MinimizeCover(f, []float64{1}, 1, 4, 1); err == nil {
		t.Fatal("cost length mismatch accepted")
	}
}

func TestGreedyCover(t *testing.T) {
	r := rng.New(17)
	for trial := 0; trial < 30; trial++ {
		n := 3 + r.Intn(6)
		f := coverageFunc(r, n, 5)
		costs := make([]float64, n)
		var total float64
		for i := range costs {
			costs[i] = float64(r.IntRange(1, 5))
			total += costs[i]
		}
		lower := 0.5 * total
		S, v := GreedyCover(f, costs, lower)
		if setCost(S, costs) < lower-1e-9 {
			t.Fatalf("trial %d: greedy cover infeasible", trial)
		}
		if v != f.Eval(S) {
			t.Fatalf("trial %d: returned value stale", trial)
		}
	}
}

func TestBiCriteriaUnitCost(t *testing.T) {
	r := rng.New(19)
	f := coverageFunc(r, 8, 5)
	S, v, err := BiCriteriaUnitCost(f, 6, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Relaxed requirement: keep at least floor(6·0.5) = 3 elements.
	if len(S) < 3 {
		t.Fatalf("bi-criteria kept %d < 3 elements", len(S))
	}
	if v != f.Eval(S) {
		t.Fatal("value stale")
	}
	if _, _, err := BiCriteriaUnitCost(f, 3, 0); err == nil {
		t.Fatal("alpha=0 accepted")
	}
	if _, _, err := BiCriteriaUnitCost(f, 3, 1); err == nil {
		t.Fatal("alpha=1 accepted")
	}
}
