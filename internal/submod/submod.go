// Package submod implements the submodular-optimization route to MinVar
// (§3.3, Theorem 3.7): under mutually independent values, EV(·) is
// monotone non-increasing and submodular (Lemmas 3.4/3.5), and choosing
// the complement — the objects NOT to clean — turns MinVar into minimizing
// a non-decreasing submodular function under a knapsack *lower bound*
// (Lemma 3.6). That problem is solved with the Iyer–Bilmes
// majorize–minimize scheme: iteratively replace the objective with a
// modular upper bound tight at the current set and solve the resulting
// min-knapsack exactly.
package submod

import (
	"errors"
	"math"

	"github.com/factcheck/cleansel/internal/knapsack"
	"github.com/factcheck/cleansel/internal/model"
)

// Func is a set function over the ground set {0..N−1}.
type Func struct {
	N    int
	Eval func(S model.Set) float64
}

// Complement returns f̄(S) = f(O \ S), the Lemma 3.6 mapping: if f is the
// non-increasing submodular EV over sets to clean, f̄ is the non-decreasing
// submodular EV over sets to keep dirty.
func Complement(f Func) Func {
	return Func{
		N:    f.N,
		Eval: func(S model.Set) float64 { return f.Eval(S.Complement(f.N)) },
	}
}

// Marginal returns f(j | S) = f(S ∪ {j}) − f(S).
func Marginal(f Func, S model.Set, j int) float64 {
	return f.Eval(S.Add(j)) - f.Eval(S)
}

// Curvature returns the total curvature of a non-decreasing function,
//
//	κ = 1 − min_j f(j | V∖{j}) / f(j | ∅),
//
// which governs the approximation guarantee of Theorem 3.7. Elements with
// zero singleton gain are skipped; a fully modular function has κ = 0.
func Curvature(f Func) float64 {
	full := model.Set(nil).Complement(f.N)
	minRatio := math.Inf(1)
	for j := 0; j < f.N; j++ {
		g0 := Marginal(f, nil, j)
		if g0 <= 0 {
			continue
		}
		gFull := f.Eval(full) - f.Eval(full.Minus(model.NewSet(j)))
		r := gFull / g0
		if r < minRatio {
			minRatio = r
		}
	}
	if math.IsInf(minRatio, 1) {
		return 0
	}
	k := 1 - minRatio
	if k < 0 {
		k = 0
	}
	if k > 1 {
		k = 1
	}
	return k
}

// MinimizeCover minimizes a non-decreasing submodular f subject to the
// covering constraint Σ_{i∈S} costs[i] ≥ lower, using majorize–minimize
// with the two standard modular upper bounds of the superdifferential
// (Iyer & Bilmes). Each round solves a min-knapsack exactly via MinDP.
//
// maxIters bounds the outer loop (each iteration strictly improves f or
// stops); precision is the cost-discretization grid of the inner DP.
func MinimizeCover(f Func, costs []float64, lower float64, maxIters int, precision float64) (model.Set, float64, error) {
	if len(costs) != f.N {
		return nil, 0, errors.New("submod: costs length mismatch")
	}
	if maxIters <= 0 {
		maxIters = 12
	}
	full := model.Set(nil).Complement(f.N)
	var totalCost float64
	for _, c := range costs {
		totalCost += c
	}
	if lower > totalCost+1e-9 {
		return nil, 0, errors.New("submod: covering requirement exceeds total cost")
	}
	// Two starts: the full set (always feasible) and the greedy cover —
	// majorize–minimize only descends, so a good start matters on
	// high-curvature instances.
	best := full.Clone()
	bestVal := f.Eval(best)
	greedyS, greedyV := GreedyCover(f, costs, lower)
	if setCost(greedyS, costs) >= lower-1e-9 && greedyV < bestVal {
		best, bestVal = greedyS, greedyV
	}

	for _, start := range []model.Set{full.Clone(), greedyS} {
		cur := start
		curVal := f.Eval(cur)
		for iter := 0; iter < maxIters; iter++ {
			improved := false
			for _, bound := range []int{1, 2} {
				w := modularUpperBound(f, cur, bound)
				res, err := knapsack.MinDP(w, costs, lower, precision)
				if err != nil {
					continue
				}
				cand := model.NewSet(res.Indices...)
				if setCost(cand, costs) < lower-1e-9 {
					continue
				}
				v := f.Eval(cand)
				if v < bestVal-1e-12 {
					best, bestVal = cand, v
				}
				if v < curVal-1e-12 {
					cur, curVal = cand, v
					improved = true
				}
			}
			if !improved {
				break
			}
		}
	}
	return best, bestVal, nil
}

// modularUpperBound returns per-element weights w such that
// m(Y) = const + Σ_{j∈Y} w_j upper-bounds f(Y) and is tight at X. Since
// the constant does not affect the argmin, only the weights are returned.
//
// Bound 1: w_j = f(j | X∖{j}) for j ∈ X, f(j | ∅) for j ∉ X.
// Bound 2: w_j = f(j | V∖{j}) for j ∈ X, f(j | X) for j ∉ X.
//
// For non-decreasing f all weights are ≥ 0 (tiny negatives from round-off
// are clamped).
func modularUpperBound(f Func, X model.Set, bound int) []float64 {
	w := make([]float64, f.N)
	full := model.Set(nil).Complement(f.N)
	fX := f.Eval(X)
	fFull := f.Eval(full)
	for j := 0; j < f.N; j++ {
		var g float64
		if X.Has(j) {
			if bound == 1 {
				g = fX - f.Eval(X.Minus(model.NewSet(j)))
			} else {
				g = fFull - f.Eval(full.Minus(model.NewSet(j)))
			}
		} else {
			if bound == 1 {
				g = Marginal(f, nil, j)
			} else {
				g = f.Eval(X.Add(j)) - fX
			}
		}
		if g < 0 {
			g = 0
		}
		w[j] = g
	}
	return w
}

// GreedyCover grows a covering set by repeatedly adding the element with
// the smallest marginal increase of f per unit of still-needed cost, until
// the constraint Σ c_i ≥ lower holds. It is the simple baseline against
// which MinimizeCover is compared, and the building block of the
// unit-cost bi-criteria scheme of §3.3.
func GreedyCover(f Func, costs []float64, lower float64) (model.Set, float64) {
	var S model.Set
	var covered float64
	fS := f.Eval(S)
	inS := make([]bool, f.N)
	for covered < lower-1e-9 {
		bestJ, bestScore, bestVal := -1, math.Inf(1), 0.0
		for j := 0; j < f.N; j++ {
			if inS[j] {
				continue
			}
			v := f.Eval(S.Add(j))
			gain := v - fS
			c := costs[j]
			if c <= 0 {
				c = 1e-12
			}
			score := gain / c
			if score < bestScore {
				bestJ, bestScore, bestVal = j, score, v
			}
		}
		if bestJ < 0 {
			break
		}
		S = S.Add(bestJ)
		inS[bestJ] = true
		covered += costs[bestJ]
		fS = bestVal
	}
	return S, fS
}

// BiCriteriaUnitCost implements the unit-cost bi-criteria relaxation noted
// after Theorem 3.7: allow the *keep* budget to shrink by the factor
// (1−alpha) — i.e. clean up to C/(1−alpha) instead of C — in exchange for
// a 1/alpha-factor objective bound. It greedily keeps the elements whose
// removal from the clean set costs the least objective.
func BiCriteriaUnitCost(f Func, keepAtLeast int, alpha float64) (model.Set, float64, error) {
	if alpha <= 0 || alpha >= 1 {
		return nil, 0, errors.New("submod: alpha must be in (0,1)")
	}
	relaxed := int(math.Floor(float64(keepAtLeast) * (1 - alpha)))
	if relaxed < 0 {
		relaxed = 0
	}
	unit := make([]float64, f.N)
	for i := range unit {
		unit[i] = 1
	}
	return minimizeCoverUnit(f, unit, float64(relaxed))
}

func minimizeCoverUnit(f Func, costs []float64, lower float64) (model.Set, float64, error) {
	S, v := GreedyCover(f, costs, lower)
	return S, v, nil
}

func setCost(S model.Set, costs []float64) float64 {
	var tot float64
	for _, i := range S {
		tot += costs[i]
	}
	return tot
}
