package maxpr

import (
	"math"
	"testing"

	"github.com/factcheck/cleansel/internal/dist"
	"github.com/factcheck/cleansel/internal/model"
	"github.com/factcheck/cleansel/internal/numeric"
	"github.com/factcheck/cleansel/internal/query"
	"github.com/factcheck/cleansel/internal/rng"
)

func hybridDB(n int) *model.DB {
	objs := make([]model.Object, n)
	for i := range objs {
		v := float64(10 + i)
		objs[i] = model.Object{
			Name: "o", Cost: 1, Current: v,
			Value: dist.UniformOver([]float64{v - 2, v - 1, v, v + 1, v + 2}),
		}
	}
	return model.New(objs)
}

func fullAffine(n int) *query.Affine {
	coef := map[int]float64{}
	for i := 0; i < n; i++ {
		coef[i] = 1
	}
	return query.NewAffine(0, coef)
}

func TestHybridExactRegion(t *testing.T) {
	db := hybridDB(6)
	f := fullAffine(6)
	h, err := NewHybrid(db, f, 1, 1<<20, 5000, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	exact, err := NewDiscreteAffine(db, f, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	T := model.NewSet(0, 1, 2)
	if got, want := h.Prob(T), exact.Prob(T); !numeric.AlmostEqual(got, want, 1e-12) {
		t.Fatalf("hybrid should be exact in-region: %v vs %v", got, want)
	}
}

func TestHybridFallsBackToMC(t *testing.T) {
	db := hybridDB(12)
	f := fullAffine(12)
	// maxStates 10: every multi-object subset overflows to MC.
	h, err := NewHybrid(db, f, 1, 10, 40000, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	exact, err := NewDiscreteAffine(db, f, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	T := model.NewSet(0, 1, 2, 3)
	got := h.Prob(T)
	want := exact.Prob(T)
	if math.Abs(got-want) > 0.02 {
		t.Fatalf("hybrid MC fallback %v too far from exact %v", got, want)
	}
}

func TestCachedConsistency(t *testing.T) {
	db := hybridDB(8)
	f := fullAffine(8)
	mc, err := NewMonteCarlo(db, f, 1, 2000, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	c := NewCached(mc)
	T := model.NewSet(1, 5)
	first := c.Prob(T)
	for i := 0; i < 5; i++ {
		if got := c.Prob(T); got != first {
			t.Fatalf("cached evaluator returned different values: %v vs %v", got, first)
		}
	}
	// Distinct sets are distinct cache keys.
	if c.Prob(model.NewSet(1)) == first && c.Prob(model.NewSet(5)) == first {
		// Equality by coincidence is possible but all three equal is
		// overwhelmingly unlikely with MC noise; treat as key collision.
		t.Fatal("suspicious: three different sets share one cached value")
	}
}

func TestCachedEmptySet(t *testing.T) {
	db := hybridDB(4)
	f := fullAffine(4)
	mc, err := NewMonteCarlo(db, f, 1, 100, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	c := NewCached(mc)
	if got := c.Prob(nil); got != 0 {
		t.Fatalf("P(∅) = %v, want 0", got)
	}
}
