package maxpr

import (
	"math"
	"testing"

	"github.com/factcheck/cleansel/internal/dist"
	"github.com/factcheck/cleansel/internal/linalg"
	"github.com/factcheck/cleansel/internal/model"
	"github.com/factcheck/cleansel/internal/numeric"
	"github.com/factcheck/cleansel/internal/query"
	"github.com/factcheck/cleansel/internal/rng"
)

// Example 5's MaxPr side: X1 uniform over {0,1/2,1,3/2,2}, X2 uniform over
// {1/3,1,5/3}, current values u = (1,1), f = X1+X2, target X1+X2 < 17/12
// (τ = 7/12). Cleaning X1 gives probability 1/5, cleaning X2 gives 1/3.
func example5DB() *model.DB {
	return model.New([]model.Object{
		{Name: "x1", Cost: 1, Current: 1, Value: dist.UniformOver([]float64{0, 0.5, 1, 1.5, 2})},
		{Name: "x2", Cost: 1, Current: 1, Value: dist.UniformOver([]float64{1.0 / 3, 1, 5.0 / 3})},
	})
}

func TestExample5DiscreteAffine(t *testing.T) {
	db := example5DB()
	f := query.NewAffine(0, map[int]float64{0: 1, 1: 1})
	e, err := NewDiscreteAffine(db, f, 7.0/12.0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Prob(nil); got != 0 {
		t.Fatalf("P(∅) = %v, want 0", got)
	}
	if got := e.Prob(model.NewSet(0)); !numeric.AlmostEqual(got, 0.2, 1e-12) {
		t.Fatalf("P({x1}) = %v, want 1/5", got)
	}
	if got := e.Prob(model.NewSet(1)); !numeric.AlmostEqual(got, 1.0/3.0, 1e-12) {
		t.Fatalf("P({x2}) = %v, want 1/3", got)
	}
}

func TestDiscreteAffineMatchesMonteCarlo(t *testing.T) {
	r := rng.New(11)
	for trial := 0; trial < 10; trial++ {
		n := 2 + r.Intn(4)
		objs := make([]model.Object, n)
		coef := map[int]float64{}
		for i := range objs {
			k := 2 + r.Intn(3)
			vals := make([]float64, k)
			probs := make([]float64, k)
			for j := range vals {
				vals[j] = float64(r.IntRange(-4, 4))
				probs[j] = r.Float64() + 0.1
			}
			d := dist.MustDiscrete(vals, probs)
			objs[i] = model.Object{Name: "o", Cost: 1, Current: d.Values[r.Intn(d.Size())], Value: d}
			coef[i] = float64(r.IntRange(-2, 2))
		}
		db := model.New(objs)
		f := query.NewAffine(float64(r.IntRange(-2, 2)), coef)
		tau := r.Float64()
		exact, err := NewDiscreteAffine(db, f, tau, 0)
		if err != nil {
			t.Fatal(err)
		}
		mc, err := NewMonteCarlo(db, f, tau, 60000, r.Split())
		if err != nil {
			t.Fatal(err)
		}
		T := model.NewSet(r.Perm(n)[:1+r.Intn(n)]...)
		pe := exact.Prob(T)
		pm := mc.Prob(T)
		if math.Abs(pe-pm) > 0.012 {
			t.Fatalf("trial %d: exact %v vs MC %v for T=%v", trial, pe, pm, T)
		}
	}
}

func TestNormalAffineClosedForm(t *testing.T) {
	n1, _ := dist.NewNormal(10, 2)
	n2, _ := dist.NewNormal(20, 3)
	db := model.New([]model.Object{
		{Name: "a", Cost: 1, Current: 10, Value: n1},
		{Name: "b", Cost: 1, Current: 20, Value: n2},
	})
	f := query.NewAffine(0, map[int]float64{0: 1, 1: 1})
	e, err := NewNormalAffine(db, f, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Centered at current values: D ~ N(0, 4) for {a}; P = Φ(−1/2).
	want := numeric.NormalCDF(-0.5)
	if got := e.Prob(model.NewSet(0)); !numeric.AlmostEqual(got, want, 1e-12) {
		t.Fatalf("P({a}) = %v, want %v", got, want)
	}
	// Both: D ~ N(0, 13); P = Φ(−1/√13).
	want2 := numeric.NormalCDF(-1 / math.Sqrt(13))
	if got := e.Prob(model.NewSet(0, 1)); !numeric.AlmostEqual(got, want2, 1e-12) {
		t.Fatalf("P(both) = %v, want %v", got, want2)
	}
	if e.Prob(nil) != 0 {
		t.Fatal("P(∅) should be 0")
	}
}

func TestNormalAffineUncenteredMean(t *testing.T) {
	// Current value above the mean: cleaning is likely to lower the result.
	n1, _ := dist.NewNormal(10, 1)
	db := model.New([]model.Object{
		{Name: "a", Cost: 1, Current: 13, Value: n1},
	})
	f := query.NewAffine(0, map[int]float64{0: 1})
	e, err := NewNormalAffine(db, f, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// D = X − 13 ~ N(−3, 1); P(D < −0.5) = Φ((−0.5+3)/1) = Φ(2.5).
	want := numeric.NormalCDF(2.5)
	if got := e.Prob(model.NewSet(0)); !numeric.AlmostEqual(got, want, 1e-12) {
		t.Fatalf("P = %v, want %v", got, want)
	}
}

func TestNormalAffineDegenerateVariance(t *testing.T) {
	n1, _ := dist.NewNormal(5, 0)
	db := model.New([]model.Object{
		{Name: "a", Cost: 1, Current: 10, Value: n1},
	})
	f := query.NewAffine(0, map[int]float64{0: 1})
	e, _ := NewNormalAffine(db, f, 1)
	// D is deterministic −5 < −1: certain surprise.
	if got := e.Prob(model.NewSet(0)); got != 1 {
		t.Fatalf("deterministic drop should give 1, got %v", got)
	}
	db2 := model.New([]model.Object{
		{Name: "a", Cost: 1, Current: 5, Value: n1},
	})
	e2, _ := NewNormalAffine(db2, f, 1)
	if got := e2.Prob(model.NewSet(0)); got != 0 {
		t.Fatalf("no drop should give 0, got %v", got)
	}
}

func TestNormalAffineValidation(t *testing.T) {
	db := example5DB() // discrete values
	f := query.NewAffine(0, map[int]float64{0: 1})
	if _, err := NewNormalAffine(db, f, 1); err == nil {
		t.Fatal("discrete DB accepted by NormalAffine")
	}
	n1, _ := dist.NewNormal(0, 1)
	db2 := model.New([]model.Object{{Name: "a", Cost: 1, Value: n1}})
	if _, err := NewNormalAffine(db2, f, -1); err == nil {
		t.Fatal("negative tau accepted")
	}
}

func TestMVNAffineIndependentMatchesNormal(t *testing.T) {
	n1, _ := dist.NewNormal(10, 2)
	n2, _ := dist.NewNormal(20, 3)
	db := model.New([]model.Object{
		{Name: "a", Cost: 1, Current: 11, Value: n1},
		{Name: "b", Cost: 1, Current: 19, Value: n2},
	})
	f := query.NewAffine(0, map[int]float64{0: 1, 1: -2})
	na, err := NewNormalAffine(db, f, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	for _, marginal := range []bool{false, true} {
		mv, err := NewMVNAffine(db, f, 0.7, marginal)
		if err != nil {
			t.Fatal(err)
		}
		for _, T := range []model.Set{nil, model.NewSet(0), model.NewSet(1), model.NewSet(0, 1)} {
			if got, want := mv.Prob(T), na.Prob(T); !numeric.AlmostEqual(got, want, 1e-9) {
				t.Fatalf("marginal=%v T=%v: MVN %v vs Normal %v", marginal, T, got, want)
			}
		}
	}
}

func TestMVNAffineCorrelatedSemanticsDiffer(t *testing.T) {
	// With strong correlation and the conditioning values off-mean, the
	// Schur semantics shifts the conditional mean while the marginal
	// semantics does not.
	sigma := linalg.FromRows([][]float64{{1, 0.9}, {0.9, 1}})
	n1, _ := dist.NewNormal(0, 1)
	n2, _ := dist.NewNormal(0, 1)
	db := model.New([]model.Object{
		{Name: "a", Cost: 1, Current: 2, Value: n1}, // u far above the mean
		{Name: "b", Cost: 1, Current: 0, Value: n2},
	})
	db.Cov = sigma
	f := query.NewAffine(0, map[int]float64{0: 1, 1: 1})
	schur, err := NewMVNAffine(db, f, 0.1, false)
	if err != nil {
		t.Fatal(err)
	}
	marg, err := NewMVNAffine(db, f, 0.1, true)
	if err != nil {
		t.Fatal(err)
	}
	T := model.NewSet(1) // clean b, condition on a = 2
	ps, pm := schur.Prob(T), marg.Prob(T)
	// Conditioned on a=2, b's mean is 1.8, so b is unlikely to drop below
	// its current 0 by 0.1; the marginal semantics sees mean 0.
	if ps >= pm {
		t.Fatalf("expected Schur prob %v < marginal prob %v", ps, pm)
	}
}

func TestDiscreteAffineTooLarge(t *testing.T) {
	objs := make([]model.Object, 12)
	for i := range objs {
		objs[i] = model.Object{Name: "o", Cost: 1, Value: dist.UniformOver([]float64{0, 1, 2, 3})}
	}
	db := model.New(objs)
	coef := map[int]float64{}
	for i := range objs {
		coef[i] = 1
	}
	e, err := NewDiscreteAffine(db, query.NewAffine(0, coef), 0.5, 1000)
	if err != nil {
		t.Fatal(err)
	}
	var all model.Set
	for i := range objs {
		all = all.Add(i)
	}
	if _, err := e.ProbErr(all); err != ErrTooLarge {
		t.Fatalf("want ErrTooLarge, got %v", err)
	}
	// Small subsets still work.
	if _, err := e.ProbErr(model.NewSet(0, 1)); err != nil {
		t.Fatalf("small subset failed: %v", err)
	}
}

func TestMonteCarloNormalDB(t *testing.T) {
	n1, _ := dist.NewNormal(10, 2)
	db := model.New([]model.Object{
		{Name: "a", Cost: 1, Current: 10, Value: n1},
	})
	f := query.NewAffine(0, map[int]float64{0: 1})
	na, _ := NewNormalAffine(db, f, 1)
	mc, err := NewMonteCarlo(db, f, 1, 200000, rng.New(55))
	if err != nil {
		t.Fatal(err)
	}
	T := model.NewSet(0)
	if got, want := mc.Prob(T), na.Prob(T); math.Abs(got-want) > 0.01 {
		t.Fatalf("MC %v vs closed form %v", got, want)
	}
}

func TestMonteCarloValidation(t *testing.T) {
	db := example5DB()
	f := query.NewAffine(0, map[int]float64{0: 1})
	if _, err := NewMonteCarlo(db, f, 0.1, 0, rng.New(1)); err == nil {
		t.Fatal("samples=0 accepted")
	}
	if _, err := NewMonteCarlo(db, f, -0.1, 100, rng.New(1)); err == nil {
		t.Fatal("negative tau accepted")
	}
}

// Monotonicity is NOT guaranteed for MaxPr: adding an object can lower the
// probability (the behavior behind GreedyMaxPr's refusal to spend more
// budget in Fig. 12). Construct a case: a high-variance object whose
// coefficient is positive pushes mass both ways and can dilute a sure drop.
func TestMaxPrNotMonotone(t *testing.T) {
	n1, _ := dist.NewNormal(0, 1) // current 3: cleaning drops by ~3
	n2, _ := dist.NewNormal(0, 5) // current 0: cleaning only adds noise
	db := model.New([]model.Object{
		{Name: "drop", Cost: 1, Current: 3, Value: n1},
		{Name: "noise", Cost: 1, Current: 0, Value: n2},
	})
	f := query.NewAffine(0, map[int]float64{0: 1, 1: 1})
	e, _ := NewNormalAffine(db, f, 1)
	p1 := e.Prob(model.NewSet(0))
	p2 := e.Prob(model.NewSet(0, 1))
	if p2 >= p1 {
		t.Fatalf("expected adding the noisy object to hurt: %v -> %v", p1, p2)
	}
}
