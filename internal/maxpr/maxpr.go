// Package maxpr evaluates the MaxPr objective of Eq. (2),
//
//	P(T) = Pr[ f(X) < f(u) − τ | X_{O\T} = u_{O\T} ],
//
// the probability that cleaning the subset T while everything else keeps
// its current value produces a "surprise": a drop of more than τ in the
// query result, e.g. the bias of a claim falling enough to expose a strong
// counterargument (§2.2).
//
// Evaluators, from most to least structured:
//
//   - NormalAffine  — independent normal errors + affine f: the drop
//     D = Σ_{i∈T} a_i·(X_i − u_i) is normal, so P(T) = Φ((−τ−μ_D)/σ_D)
//     (Lemma 3.1/3.3).
//   - MVNAffine     — correlated normal errors: conditional law of X_T
//     given X_{O\T} = u via the Schur complement.
//   - DiscreteAffine — independent discrete errors: D by exact
//     convolution.
//   - MonteCarlo    — arbitrary f: sampling fallback.
package maxpr

import (
	"errors"
	"fmt"
	"math"

	"github.com/factcheck/cleansel/internal/dist"
	"github.com/factcheck/cleansel/internal/linalg"
	"github.com/factcheck/cleansel/internal/model"
	"github.com/factcheck/cleansel/internal/numeric"
	"github.com/factcheck/cleansel/internal/obs"
	"github.com/factcheck/cleansel/internal/query"
	"github.com/factcheck/cleansel/internal/rng"
)

// Evaluator computes the MaxPr objective for subsets of a fixed problem.
type Evaluator interface {
	// Prob returns P(T). By definition P(∅) = 0 for τ ≥ 0.
	Prob(T model.Set) float64
}

// NormalAffine is the closed-form evaluator for independent normal errors
// and an affine query function.
type NormalAffine struct {
	a   []float64 // dense coefficients
	mu  []float64 // value-model means
	sd  []float64 // value-model standard deviations
	u   []float64 // current values
	tau float64
}

// NewNormalAffine builds the evaluator. Every object value must be
// dist.Normal and the database independent.
func NewNormalAffine(db *model.DB, f *query.Affine, tau float64) (*NormalAffine, error) {
	if tau < 0 {
		return nil, fmt.Errorf("maxpr: negative tau %v", tau)
	}
	if db.Cov != nil {
		return nil, errors.New("maxpr: NormalAffine requires independent values")
	}
	ns, ok := db.Normals()
	if !ok {
		return nil, errors.New("maxpr: NormalAffine requires normal value models")
	}
	n := db.N()
	e := &NormalAffine{a: f.Dense(n), mu: make([]float64, n), sd: make([]float64, n), u: db.Currents(), tau: tau}
	for i, nm := range ns {
		e.mu[i] = nm.Mu
		e.sd[i] = nm.Sigma
	}
	return e, nil
}

// Prob returns Φ((−τ − μ_D)/σ_D) with μ_D = Σ_{i∈T} a_i(μ_i−u_i) and
// σ_D² = Σ_{i∈T} a_i²σ_i².
func (e *NormalAffine) Prob(T model.Set) float64 {
	if len(T) == 0 {
		return 0
	}
	var mean, varD float64
	for _, i := range T {
		mean += e.a[i] * (e.mu[i] - e.u[i])
		varD += e.a[i] * e.a[i] * e.sd[i] * e.sd[i]
	}
	return tailProb(mean, varD, e.tau)
}

// SingleProb returns the one-step MaxPr objective of cleaning exactly
// one object: Pr[a·(X − u) < −τ] for the object's marginal law X,
// coefficient a, and current value u. For a normal law it is the
// NormalAffine closed form bit for bit (same expression, same
// association order), so an incremental caller — the served session
// stepper conditions by point-mass substitution instead of rebuilding an
// evaluator — recommends exactly what a fresh NormalAffine would. For a
// discrete law the tail is summed exactly over the support in index
// order (the strict inequality of Eq. (2), like Discrete.PrBelow).
func SingleProb(v model.Value, a, u, tau float64) (float64, error) {
	if tau < 0 {
		return 0, fmt.Errorf("maxpr: negative tau %v", tau)
	}
	if a == 0 {
		// The drop is identically zero and τ ≥ 0: no surprise possible.
		return 0, nil
	}
	switch law := v.(type) {
	case dist.Normal:
		return tailProb(a*(law.Mu-u), a*a*law.Sigma*law.Sigma, tau), nil
	case *dist.Discrete:
		var acc numeric.KahanAcc
		for j, x := range law.Values {
			if a*(x-u) < -tau {
				acc.Add(law.Probs[j])
			}
		}
		return acc.Value(), nil
	default:
		return 0, fmt.Errorf("maxpr: unsupported value model %T", v)
	}
}

// tailProb returns Pr[N(mean, varD) < −τ].
func tailProb(mean, varD, tau float64) float64 {
	if varD <= 0 {
		if mean < -tau {
			return 1
		}
		return 0
	}
	return numeric.NormalCDF((-tau - mean) / math.Sqrt(varD))
}

// MVNAffine handles correlated normal errors: the cleaned values, given
// that everything else sits at its current value, follow the conditional
// normal law of the joint model.
type MVNAffine struct {
	db  *model.DB
	a   []float64
	mu  []float64
	u   []float64
	cov *linalg.Matrix
	tau float64
	// marginal, when true, uses the paper's simplified semantics: cleaning
	// draws X_T from its marginal (ignoring what conditioning on the
	// uncleaned current values implies).
	marginal bool
}

// NewMVNAffine builds the evaluator; the database must carry a covariance
// (or one is assembled from marginal variances, reducing to independence).
func NewMVNAffine(db *model.DB, f *query.Affine, tau float64, marginal bool) (*MVNAffine, error) {
	if tau < 0 {
		return nil, fmt.Errorf("maxpr: negative tau %v", tau)
	}
	n := db.N()
	cov := db.Cov
	if cov == nil {
		cov = linalg.NewMatrix(n, n)
		for i := 0; i < n; i++ {
			cov.Set(i, i, db.Objects[i].Value.Variance())
		}
	}
	return &MVNAffine{
		db: db, a: f.Dense(n), mu: db.Means(), u: db.Currents(),
		cov: cov, tau: tau, marginal: marginal,
	}, nil
}

// Prob evaluates the objective under the selected semantics.
func (e *MVNAffine) Prob(T model.Set) float64 {
	if len(T) == 0 {
		return 0
	}
	if e.marginal {
		var mean float64
		for _, i := range T {
			mean += e.a[i] * (e.mu[i] - e.u[i])
		}
		at := make([]float64, len(T))
		for j, i := range T {
			at[j] = e.a[i]
		}
		varD := linalg.QuadForm(e.cov.Submatrix(T, T), at)
		return tailProb(mean, varD, e.tau)
	}
	cond := T.Complement(e.db.N())
	cc, err := linalg.ConditionalCovariance(e.cov, T, cond)
	if err != nil {
		return 0
	}
	shift, err := linalg.ConditionalMeanShift(e.cov, T, cond)
	if err != nil {
		return 0
	}
	dev := make([]float64, len(cond))
	for j, i := range cond {
		dev[j] = e.u[i] - e.mu[i]
	}
	adj := shift.MulVec(dev)
	var mean float64
	at := make([]float64, len(T))
	for j, i := range T {
		condMean := e.mu[i] + adj[j]
		mean += e.a[i] * (condMean - e.u[i])
		at[j] = e.a[i]
	}
	varD := linalg.QuadForm(cc, at)
	return tailProb(mean, varD, e.tau)
}

// DiscreteAffine evaluates the objective exactly for independent discrete
// errors by convolving the drop D = Σ_{i∈T} a_i(X_i − u_i). The
// convolution grid is scale-aware (see dist.WeightedSum/dist.ConvGrid):
// large-magnitude workloads — CDC-style counts reaching 1e12 and beyond —
// convolve on an exact integer grid when the weighted supports are
// integral (or dyadic), and on a relative-resolution grid otherwise, so
// realistic claim scales solve exactly instead of erroring or silently
// degrading to Monte Carlo.
type DiscreteAffine struct {
	dists []*dist.Discrete
	a     []float64
	u     []float64
	tau   float64
	// maxStates caps the convolution support; larger requests error out so
	// callers can fall back to Monte Carlo.
	maxStates int
	// rec, when set via Observe, receives write-only convolution trace
	// counters; it never influences results.
	rec *obs.Recorder
}

// Observe attaches a trace recorder ticking convolution work counters
// (nil detaches). Recording is write-only: probabilities are
// bit-identical with or without it.
func (e *DiscreteAffine) Observe(rec *obs.Recorder) { e.rec = rec }

// DefaultMaxStates bounds exact convolution work (supports ≤ 6 and claims
// over tens of objects stay far below it).
const DefaultMaxStates = 1 << 22

// NewDiscreteAffine builds the evaluator.
func NewDiscreteAffine(db *model.DB, f *query.Affine, tau float64, maxStates int) (*DiscreteAffine, error) {
	if tau < 0 {
		return nil, fmt.Errorf("maxpr: negative tau %v", tau)
	}
	if db.Cov != nil {
		return nil, errors.New("maxpr: DiscreteAffine requires independent values")
	}
	ds, err := db.Discretes()
	if err != nil {
		return nil, fmt.Errorf("maxpr: DiscreteAffine: %w", err)
	}
	if maxStates <= 0 {
		maxStates = DefaultMaxStates
	}
	return &DiscreteAffine{dists: ds, a: f.Dense(db.N()), u: db.Currents(), tau: tau, maxStates: maxStates}, nil
}

// Prob returns Pr[D < −τ] by exact convolution, or an NaN-free 0 with
// ErrTooLarge via ProbErr when the state space would explode. Prob itself
// falls back to a conservative exact-enumeration refusal by panicking is
// avoided: use ProbErr when the subset can be large.
func (e *DiscreteAffine) Prob(T model.Set) float64 {
	p, err := e.ProbErr(T)
	if err != nil {
		panic(err)
	}
	return p
}

// ErrTooLarge signals that exact convolution would exceed maxStates.
var ErrTooLarge = errors.New("maxpr: convolution state space too large")

// ProbErr returns Pr[D < −τ] or ErrTooLarge.
func (e *DiscreteAffine) ProbErr(T model.Set) (float64, error) {
	if len(T) == 0 {
		return 0, nil
	}
	states := 1
	for _, i := range T {
		if e.a[i] == 0 {
			continue
		}
		states *= e.dists[i].Size()
		if states > e.maxStates {
			return 0, ErrTooLarge
		}
	}
	weights := make([]float64, 0, len(T))
	parts := make([]*dist.Discrete, 0, len(T))
	offset := 0.0
	for _, i := range T {
		if e.a[i] == 0 {
			continue
		}
		weights = append(weights, e.a[i])
		parts = append(parts, e.dists[i])
		offset -= e.a[i] * e.u[i]
	}
	d, err := dist.WeightedSumRec(e.rec, offset, weights, parts)
	if err != nil {
		return 0, err
	}
	return d.PrBelow(-e.tau), nil
}

// Hybrid evaluates exactly by convolution while the state space fits and
// falls back to Monte Carlo beyond that — the practical evaluator for
// greedy selection over discrete databases whose chosen sets can grow
// large. Since the convolution grid became scale-aware the fallback only
// triggers on state-space size (ErrTooLarge), never on magnitude:
// large-magnitude workloads that used to bounce off the fixed grid and
// silently degrade to sampling now take the exact path.
type Hybrid struct {
	exact *DiscreteAffine
	mc    *MonteCarlo
	rec   *obs.Recorder
}

// NewHybrid builds the combined evaluator.
func NewHybrid(db *model.DB, f *query.Affine, tau float64, maxStates, samples int, r *rng.RNG) (*Hybrid, error) {
	exact, err := NewDiscreteAffine(db, f, tau, maxStates)
	if err != nil {
		return nil, err
	}
	mc, err := NewMonteCarlo(db, f, tau, samples, r)
	if err != nil {
		return nil, err
	}
	return &Hybrid{exact: exact, mc: mc}, nil
}

// Observe attaches a trace recorder to the exact path and counts each
// evaluation's route (maxpr_exact vs maxpr_mc_fallback) on it.
func (h *Hybrid) Observe(rec *obs.Recorder) {
	h.exact.Observe(rec)
	h.rec = rec
}

// Prob implements Evaluator.
func (h *Hybrid) Prob(T model.Set) float64 {
	p, err := h.exact.ProbErr(T)
	if err == nil {
		h.rec.Add("maxpr_exact", 1)
		return p
	}
	h.rec.Add("maxpr_mc_fallback", 1)
	return h.mc.Prob(T)
}

// Cached memoizes another evaluator by the canonical key of the subset.
// Greedy selection across a budget sweep revisits the same subsets many
// times; with a Monte-Carlo inner evaluator, caching also keeps the
// estimates consistent between visits.
type Cached struct {
	inner Evaluator
	cache map[string]float64
}

// NewCached wraps an evaluator with memoization.
func NewCached(inner Evaluator) *Cached {
	return &Cached{inner: inner, cache: make(map[string]float64)}
}

// Prob implements Evaluator.
func (c *Cached) Prob(T model.Set) float64 {
	key := make([]byte, 0, 4*len(T))
	for _, v := range T {
		key = append(key, byte(v), byte(v>>8), byte(v>>16), ',')
	}
	k := string(key)
	if p, ok := c.cache[k]; ok {
		return p
	}
	p := c.inner.Prob(T)
	c.cache[k] = p
	return p
}

// MonteCarlo estimates the objective for an arbitrary query function:
// cleaned values are drawn from their marginals, the rest stay at u.
type MonteCarlo struct {
	db      *model.DB
	samples int
	f       query.Function
	tau     float64
	r       *rng.RNG

	sample func(i int, r *rng.RNG) float64
}

// NewMonteCarlo builds the estimator; values may be discrete or normal.
func NewMonteCarlo(db *model.DB, f query.Function, tau float64, samples int, r *rng.RNG) (*MonteCarlo, error) {
	if tau < 0 {
		return nil, fmt.Errorf("maxpr: negative tau %v", tau)
	}
	if samples <= 0 {
		return nil, fmt.Errorf("maxpr: need samples >= 1, got %d", samples)
	}
	if db.Cov != nil {
		return nil, errors.New("maxpr: MonteCarlo requires independent values (use MVNAffine)")
	}
	mc := &MonteCarlo{db: db, samples: samples, f: f, tau: tau, r: r}
	mc.sample = func(i int, r *rng.RNG) float64 {
		switch v := db.Objects[i].Value.(type) {
		case *dist.Discrete:
			return v.Sample(r)
		case dist.Normal:
			return v.Sample(r)
		default:
			panic(fmt.Sprintf("maxpr: unsupported value model %T", v))
		}
	}
	return mc, nil
}

// Prob estimates P(T) with the configured number of samples.
func (e *MonteCarlo) Prob(T model.Set) float64 {
	if len(T) == 0 {
		return 0
	}
	x := e.db.Currents()
	threshold := e.f.Eval(x) - e.tau
	hits := 0
	for s := 0; s < e.samples; s++ {
		for _, i := range T {
			x[i] = e.sample(i, e.r)
		}
		if e.f.Eval(x) < threshold {
			hits++
		}
		for _, i := range T {
			x[i] = e.db.Objects[i].Current
		}
	}
	return float64(hits) / float64(e.samples)
}
