package maxpr

import (
	"testing"

	"github.com/factcheck/cleansel/internal/dist"
	"github.com/factcheck/cleansel/internal/model"
	"github.com/factcheck/cleansel/internal/numeric"
	"github.com/factcheck/cleansel/internal/query"
	"github.com/factcheck/cleansel/internal/rng"
)

// SingleProb is the session layer's one-step benefit; it must agree
// bit-for-bit with what NormalAffine computes for the same singleton,
// or the served adaptive loop and the figure simulators would diverge.
func TestSingleProbMatchesNormalAffine(t *testing.T) {
	r := rng.New(7)
	for trial := 0; trial < 50; trial++ {
		mu := r.Uniform(-5, 5)
		sigma := 0.2 + 3*r.Float64()
		u := mu + r.Uniform(-2, 2)
		a := r.Uniform(-3, 3)
		tau := 2 * r.Float64()
		nd, err := dist.NewNormal(mu, sigma)
		if err != nil {
			t.Fatal(err)
		}
		db := model.New([]model.Object{{Name: "x", Cost: 1, Current: u, Value: nd}})
		f := query.NewAffine(0, map[int]float64{0: a})
		e, err := NewNormalAffine(db, f, tau)
		if err != nil {
			t.Fatal(err)
		}
		want := e.Prob(model.NewSet(0))
		got, err := SingleProb(nd, a, u, tau)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trial %d: SingleProb %v != NormalAffine %v (mu=%v sigma=%v u=%v a=%v tau=%v)",
				trial, got, want, mu, sigma, u, a, tau)
		}
	}
}

func TestSingleProbMatchesDiscreteAffine(t *testing.T) {
	r := rng.New(17)
	for trial := 0; trial < 50; trial++ {
		k := 2 + r.Intn(4)
		vals := make([]float64, k)
		probs := make([]float64, k)
		for j := range vals {
			vals[j] = float64(r.IntRange(-6, 6))
			probs[j] = r.Float64() + 0.1
		}
		d := dist.MustDiscrete(vals, probs)
		u := d.Values[r.Intn(d.Size())]
		a := float64(r.IntRange(-2, 2))
		tau := r.Float64()
		db := model.New([]model.Object{{Name: "x", Cost: 1, Current: u, Value: d}})
		f := query.NewAffine(0, map[int]float64{0: a})
		e, err := NewDiscreteAffine(db, f, tau, 0)
		if err != nil {
			t.Fatal(err)
		}
		want := e.Prob(model.NewSet(0))
		got, err := SingleProb(d, a, u, tau)
		if err != nil {
			t.Fatal(err)
		}
		// The convolution path computes a·x − a·u, SingleProb computes
		// a·(x − u): equal up to round-off, not bit order.
		if !numeric.AlmostEqual(got, want, 1e-12) {
			t.Fatalf("trial %d: SingleProb %v vs DiscreteAffine %v", trial, got, want)
		}
	}
}

func TestSingleProbEdgeCases(t *testing.T) {
	nd, _ := dist.NewNormal(0, 1)
	if p, err := SingleProb(nd, 0, 0, 1); err != nil || p != 0 {
		t.Fatalf("zero coefficient: %v, %v", p, err)
	}
	if _, err := SingleProb(nd, 1, 0, -1); err == nil {
		t.Fatal("negative tau accepted")
	}
	if _, err := SingleProb(unsupportedValue{}, 1, 0, 1); err == nil {
		t.Fatal("unsupported value model accepted")
	}
	// A point mass never moves the measure: probability 0 for tau > 0.
	if p, err := SingleProb(dist.PointMass(5), 2, 5, 1); err != nil || p != 0 {
		t.Fatalf("point mass at current: %v, %v", p, err)
	}
}

type unsupportedValue struct{}

func (unsupportedValue) Mean() float64     { return 0 }
func (unsupportedValue) Variance() float64 { return 0 }
