package query

import (
	"testing"

	"github.com/factcheck/cleansel/internal/numeric"
)

func TestAffineEvalVars(t *testing.T) {
	a := NewAffine(5, map[int]float64{0: 2, 3: -1, 7: 0})
	x := []float64{1, 0, 0, 4, 0, 0, 0, 100}
	if got := a.Eval(x); got != 5+2-4 {
		t.Fatalf("Eval = %v", got)
	}
	vars := a.Vars()
	if len(vars) != 2 || vars[0] != 0 || vars[1] != 3 {
		t.Fatalf("Vars = %v (zero coefficient should be dropped)", vars)
	}
	if a.CoefAt(3) != -1 || a.CoefAt(7) != 0 {
		t.Fatal("CoefAt broken")
	}
	d := a.Dense(5)
	if d[0] != 2 || d[3] != -1 || d[1] != 0 {
		t.Fatalf("Dense = %v", d)
	}
}

func TestAffineAsGroupSum(t *testing.T) {
	a := NewAffine(1, map[int]float64{1: 3, 2: -2})
	g := a.AsGroupSum()
	x := []float64{0, 10, 5}
	if !numeric.AlmostEqual(g.Eval(x), a.Eval(x), 1e-12) {
		t.Fatalf("GroupSum eval %v != affine %v", g.Eval(x), a.Eval(x))
	}
	if len(g.Terms) != 2 {
		t.Fatalf("want one term per variable, got %d", len(g.Terms))
	}
	vars := g.Vars()
	if len(vars) != 2 || vars[0] != 1 || vars[1] != 2 {
		t.Fatalf("Vars = %v", vars)
	}
}

func TestGroupSumEval(t *testing.T) {
	g := &GroupSum{
		Const: 10,
		Terms: []Term{
			LinearTerm([]int{0, 2}, []float64{1, 1}, 0),
			IndicatorGE([]int{1}, []float64{1}, -5, 2), // 2·1[x1 >= 5]
		},
	}
	if got := g.Eval([]float64{3, 7, 4}); got != 10+7+2 {
		t.Fatalf("Eval = %v", got)
	}
	if got := g.Eval([]float64{3, 4, 4}); got != 10+7 {
		t.Fatalf("Eval = %v", got)
	}
	vars := g.Vars()
	if len(vars) != 3 {
		t.Fatalf("Vars = %v", vars)
	}
}

func TestIndicatorGEBoundary(t *testing.T) {
	// 1[x - 5 >= 0]: boundary is included.
	term := IndicatorGE([]int{0}, []float64{1}, -5, 1)
	if term.Eval([]float64{5}) != 1 {
		t.Fatal("boundary should satisfy >=")
	}
	if term.Eval([]float64{4.999}) != 0 {
		t.Fatal("below boundary should fail")
	}
}

func TestNegMinSquared(t *testing.T) {
	// weight 0.5, expression x - 10.
	term := NegMinSquared([]int{0}, []float64{1}, -10, 0.5)
	if got := term.Eval([]float64{12}); got != 0 {
		t.Fatalf("positive side should be 0, got %v", got)
	}
	if got := term.Eval([]float64{7}); !numeric.AlmostEqual(got, 0.5*9, 1e-12) {
		t.Fatalf("min(−3,0)²·0.5 = %v, want 4.5", got)
	}
	if got := term.Eval([]float64{10}); got != 0 {
		t.Fatalf("boundary should be 0, got %v", got)
	}
}

func TestIndicator(t *testing.T) {
	// Example 3's query: 1[X1+X2+X3 < 3] over Bernoulli values.
	f := Indicator([]int{0, 1, 2}, func(v []float64) bool {
		return v[0]+v[1]+v[2] < 3
	})
	if f.Eval([]float64{1, 1, 1}) != 0 {
		t.Fatal("all ones should not satisfy < 3")
	}
	if f.Eval([]float64{1, 1, 0}) != 1 {
		t.Fatal("sum 2 should satisfy < 3")
	}
	vars := f.Vars()
	if len(vars) != 3 || vars[0] != 0 || vars[2] != 2 {
		t.Fatalf("Vars = %v", vars)
	}
}

func TestFuncAdapter(t *testing.T) {
	f := &Func{
		F: func(x []float64) float64 { return x[1] * x[1] },
		V: []int{1},
	}
	if f.Eval([]float64{0, 3}) != 9 {
		t.Fatal("Func adapter broken")
	}
	if len(f.Vars()) != 1 || f.Vars()[0] != 1 {
		t.Fatal("Func vars broken")
	}
}

func TestTermClosureCapturesCopies(t *testing.T) {
	vars := []int{0}
	coef := []float64{2}
	term := LinearTerm(vars, coef, 1)
	coef[0] = 999 // mutating the input must not affect the term
	vars[0] = 999
	if got := term.Eval([]float64{3}); got != 7 {
		t.Fatalf("term captured aliased slices: %v", got)
	}
	if term.Vars[0] != 0 {
		t.Fatal("vars aliased")
	}
}
