// Package query defines the query functions f over uncertain object values
// that the MinVar and MaxPr problems optimize (§2.1). Two concrete forms
// cover everything the fact-checking application needs:
//
//   - Affine: f(X) = b + a·X — fairness (bias) of linear claims. With
//     uncorrelated errors this makes MinVar/MaxPr modular (Lemma 3.1).
//   - GroupSum: f(X) = c + Σ_k g_k(X_{R_k}) — sums of per-claim terms such
//     as duplicity indicators or fragility penalties, each referencing a
//     bounded set of objects R_k. This is the structure Theorem 3.8
//     exploits for polynomial-time expected-variance computation.
package query

import (
	"math"
	"sort"
	"strconv"
	"strings"
)

// Function is a real-valued query over the full value vector.
type Function interface {
	// Eval evaluates f at x, where x is indexed by object ID and must
	// cover every ID in Vars().
	Eval(x []float64) float64
	// Vars returns the sorted IDs of the objects the function references.
	Vars() []int
}

// Affine is f(X) = Const + Σ_i Coef[i]·X_i with a sparse coefficient map.
type Affine struct {
	Const float64
	Coef  map[int]float64

	vars []int // sorted keys of Coef, cached so Eval sums in a fixed order
}

// NewAffine returns an affine function; zero coefficients are dropped.
func NewAffine(constant float64, coef map[int]float64) *Affine {
	c := make(map[int]float64, len(coef))
	for i, v := range coef {
		if v != 0 {
			c[i] = v
		}
	}
	return &Affine{Const: constant, Coef: c, vars: sortedCoefKeys(c)}
}

// Eval evaluates the affine form. Terms are summed in increasing
// variable order: float addition is not associative, so summing in map
// iteration order would make the low bits run-dependent.
func (a *Affine) Eval(x []float64) float64 {
	vars := a.vars
	if vars == nil { // literal-constructed value: no cached order
		vars = sortedCoefKeys(a.Coef)
	}
	s := a.Const
	for _, i := range vars {
		s += a.Coef[i] * x[i]
	}
	return s
}

// Vars returns the sorted referenced IDs.
func (a *Affine) Vars() []int {
	return sortedCoefKeys(a.Coef)
}

// sortedCoefKeys returns the keys of a sparse coefficient map in
// increasing order.
func sortedCoefKeys(coef map[int]float64) []int {
	keys := make([]int, 0, len(coef))
	for i := range coef {
		keys = append(keys, i)
	}
	sort.Ints(keys)
	return keys
}

// CoefAt returns the coefficient of X_i (0 if absent).
func (a *Affine) CoefAt(i int) float64 { return a.Coef[i] }

// Dense returns the length-n dense coefficient vector.
func (a *Affine) Dense(n int) []float64 {
	out := make([]float64, n)
	for i, c := range a.Coef {
		out[i] = c
	}
	return out
}

// AsGroupSum represents the affine function as a GroupSum with one
// single-variable term per coefficient. Terms over distinct independent
// variables have zero covariance, so group-engine results are exact.
func (a *Affine) AsGroupSum() *GroupSum {
	g := &GroupSum{Const: a.Const}
	for _, i := range a.Vars() {
		c := a.Coef[i]
		g.Terms = append(g.Terms, Term{
			Vars: []int{i},
			Eval: func(vals []float64) float64 { return c * vals[0] },
		})
	}
	return g
}

// Term is one additive component g_k of a GroupSum, referencing only the
// objects in Vars (sorted ascending). Eval receives the values of exactly
// those objects, in the same order.
//
// Sig, when non-empty, is a canonical signature of the term: two terms
// with equal signatures evaluate identically on every input (same Vars
// in the same order, same functional form, same parameters to the bit).
// Engines use it to share cached per-term results across separately
// compiled problems over the same database — the cross-claim
// amortization of bulk triage. The closure constructors here
// (LinearTerm, IndicatorGE, NegMinSquared) fill it in; hand-built terms
// may leave it empty, which only disables sharing, never correctness.
type Term struct {
	Vars []int
	Eval func(vals []float64) float64
	Sig  string
}

// TermSig builds the canonical signature of a parametric term: the kind
// tag, the variable list in declaration order, and every float parameter
// spelled as exact IEEE-754 bits — so two signatures are equal exactly
// when the terms are the same function. Float bits (not decimal
// formatting) keep the mapping injective: distinct NaN payloads aside,
// distinct parameter values always get distinct signatures.
func TermSig(kind string, vars []int, params ...[]float64) string {
	var b strings.Builder
	b.WriteString(kind)
	b.WriteByte('|')
	for i, v := range vars {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(v))
	}
	for _, ps := range params {
		b.WriteByte('|')
		for i, p := range ps {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.FormatUint(math.Float64bits(p), 16))
		}
	}
	return b.String()
}

// GroupSum is f(X) = Const + Σ_k Terms[k](X_{R_k}).
type GroupSum struct {
	Const float64
	Terms []Term
}

// Eval evaluates the sum at the full value vector x.
func (g *GroupSum) Eval(x []float64) float64 {
	s := g.Const
	buf := make([]float64, 0, 16)
	for _, t := range g.Terms {
		buf = buf[:0]
		for _, v := range t.Vars {
			buf = append(buf, x[v])
		}
		s += t.Eval(buf)
	}
	return s
}

// Vars returns the sorted union of all term variables.
func (g *GroupSum) Vars() []int {
	seen := map[int]struct{}{}
	for _, t := range g.Terms {
		for _, v := range t.Vars {
			seen[v] = struct{}{}
		}
	}
	out := make([]int, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// LinearTerm builds a term w·Σ coef_j·X_{vars_j} + c restricted to vars.
func LinearTerm(vars []int, coef []float64, c float64) Term {
	vs := append([]int(nil), vars...)
	cf := append([]float64(nil), coef...)
	return Term{
		Vars: vs,
		Eval: func(vals []float64) float64 {
			s := c
			for j, v := range vals {
				s += cf[j] * v
			}
			return s
		},
		Sig: TermSig("lin", vs, cf, []float64{c}),
	}
}

// IndicatorGE builds the term weight·1[Σ coef_j·X_j + c ≥ 0], the building
// block of the duplicity (uniqueness) measure.
func IndicatorGE(vars []int, coef []float64, c, weight float64) Term {
	vs := append([]int(nil), vars...)
	cf := append([]float64(nil), coef...)
	return Term{
		Vars: vs,
		Eval: func(vals []float64) float64 {
			s := c
			for j, v := range vals {
				s += cf[j] * v
			}
			if s >= 0 {
				return weight
			}
			return 0
		},
		Sig: TermSig("ge", vs, cf, []float64{c, weight}),
	}
}

// NegMinSquared builds the term weight·(min{Σ coef_j·X_j + c, 0})², the
// building block of the fragility (robustness) measure.
func NegMinSquared(vars []int, coef []float64, c, weight float64) Term {
	vs := append([]int(nil), vars...)
	cf := append([]float64(nil), coef...)
	return Term{
		Vars: vs,
		Eval: func(vals []float64) float64 {
			s := c
			for j, v := range vals {
				s += cf[j] * v
			}
			if s >= 0 {
				return 0
			}
			return weight * s * s
		},
		Sig: TermSig("nms", vs, cf, []float64{c, weight}),
	}
}

// Indicator builds an arbitrary-predicate single-term function 1[pred(x)],
// used in the paper's worked Examples 3 and 6.
func Indicator(vars []int, pred func(vals []float64) bool) *GroupSum {
	vs := append([]int(nil), vars...)
	return &GroupSum{Terms: []Term{{
		Vars: vs,
		Eval: func(vals []float64) float64 {
			if pred(vals) {
				return 1
			}
			return 0
		},
	}}}
}

// Func adapts an arbitrary closure into a Function; used by tests and the
// Monte-Carlo fallbacks. The closure receives the full value vector.
type Func struct {
	F func(x []float64) float64
	V []int
}

// Eval calls the closure.
func (f *Func) Eval(x []float64) float64 { return f.F(x) }

// Vars returns the declared variable list.
func (f *Func) Vars() []int { return f.V }
