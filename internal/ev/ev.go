// Package ev computes the MinVar objective of Eq. (1),
//
//	EV(T) = Σ_{v ∈ V_T} Pr[X_T = v] · Var[f(X) | X_T = v],
//
// the expected variance that remains in the query result after cleaning the
// subset T. Four engines trade generality for speed:
//
//   - BruteForce — joint enumeration over all discrete supports; the
//     exponential reference implementation used to validate the others.
//   - Modular — Lemma 3.1: affine f with uncorrelated errors gives
//     EV(T) = Σ_{i∉T} a_i²·Var[X_i].
//   - GroupEngine — Theorem 3.8: f = Σ_k g_k(X_{R_k}) with mutually
//     independent discrete values; per-term variances plus covariances of
//     overlapping term pairs, each computed by enumerating only the
//     supports of the referenced objects. Supports incremental deltas for
//     greedy selection and conditional posterior moments.
//   - MVNEngine — affine f with correlated normal errors (§4.5), via the
//     Schur-complement conditional covariance.
package ev

import (
	"context"
	"errors"
	"fmt"

	"github.com/factcheck/cleansel/internal/dist"
	"github.com/factcheck/cleansel/internal/model"
	"github.com/factcheck/cleansel/internal/numeric"
	"github.com/factcheck/cleansel/internal/query"
)

// Engine computes the MinVar objective for subsets of a fixed problem.
type Engine interface {
	// EV returns the expected posterior variance after cleaning T.
	EV(T model.Set) float64
}

// CtxEngine is an Engine whose evaluation cooperates with context
// cancellation (GroupEngine, MonteCarlo, ShardedMonteCarlo).
type CtxEngine interface {
	Engine
	// EVCtx is EV returning the context's error once ctx is done.
	EVCtx(ctx context.Context, T model.Set) (float64, error)
}

// EVWithContext evaluates e.EV(T) under ctx: cancellation-aware
// engines evaluate cooperatively; for plain engines (whose solves are
// closed-form) the context is checked once up front.
func EVWithContext(ctx context.Context, e Engine, T model.Set) (float64, error) {
	if ce, ok := e.(CtxEngine); ok {
		return ce.EVCtx(ctx, T)
	}
	if err := ctx.Err(); err != nil {
		return 0, context.Cause(ctx)
	}
	return e.EV(T), nil
}

// enumerate iterates the product distribution of the given vars, assigning
// values into x (indexed by object ID) and invoking visit with the joint
// probability of the assignment. vars may be empty, in which case visit is
// called once with probability 1.
func enumerate(dists []*dist.Discrete, vars []int, x []float64, visit func(p float64)) {
	var rec func(i int, p float64)
	rec = func(i int, p float64) {
		if i == len(vars) {
			visit(p)
			return
		}
		d := dists[vars[i]]
		for j, v := range d.Values {
			x[vars[i]] = v
			rec(i+1, p*d.Probs[j])
		}
	}
	rec(0, 1)
}

// BruteForce is the exponential-time reference engine: it enumerates the
// full joint distribution. Values must be mutually independent and
// discrete. Use only for small n (tests, the paper's worked examples,
// exhaustive OPT baselines).
type BruteForce struct {
	db    *model.DB
	dists []*dist.Discrete
	f     query.Function
}

// NewBruteForce builds the reference engine.
func NewBruteForce(db *model.DB, f query.Function) (*BruteForce, error) {
	if db.Cov != nil {
		return nil, errors.New("ev: BruteForce requires independent values")
	}
	ds, err := db.Discretes()
	if err != nil {
		return nil, fmt.Errorf("ev: BruteForce: %w", err)
	}
	return &BruteForce{db: db, dists: ds, f: f}, nil
}

// EV enumerates V_T, and for each cleaned outcome the conditional
// distribution of the remaining values.
func (b *BruteForce) EV(T model.Set) float64 {
	n := b.db.N()
	x := make([]float64, n)
	rest := T.Complement(n)
	var acc numeric.KahanAcc
	enumerate(b.dists, T, x, func(pT float64) {
		var m1, m2 numeric.KahanAcc
		enumerate(b.dists, rest, x, func(p float64) {
			v := b.f.Eval(x)
			m1.Add(p * v)
			m2.Add(p * v * v)
		})
		mean := m1.Value()
		variance := m2.Value() - mean*mean
		if variance < 0 {
			variance = 0
		}
		acc.Add(pT * variance)
	})
	return acc.Value()
}

// Variance returns Var[f(X)] with nothing cleaned (EV(∅)).
func (b *BruteForce) Variance() float64 { return b.EV(nil) }

// Modular is the Lemma 3.1 fast path: affine f and uncorrelated values
// give EV(T) = Σ_{i∉T} a_i²·Var[X_i], so each object contributes an
// independent weight w_i = a_i²·Var[X_i].
type Modular struct {
	weights []float64
	total   float64
}

// NewModular builds the engine from any database (discrete or normal
// marginals — only variances are needed).
func NewModular(db *model.DB, f *query.Affine) (*Modular, error) {
	if db.Cov != nil {
		return nil, errors.New("ev: Modular requires uncorrelated values")
	}
	m := &Modular{weights: make([]float64, db.N())}
	for i := range m.weights {
		a := f.CoefAt(i)
		w := a * a * db.Objects[i].Value.Variance()
		m.weights[i] = w
		m.total += w
	}
	return m, nil
}

// Weights returns w_i = a_i²·Var[X_i], the knapsack weights of §3.2.
func (m *Modular) Weights() []float64 { return append([]float64(nil), m.weights...) }

// EV returns total − Σ_{i∈T} w_i.
func (m *Modular) EV(T model.Set) float64 {
	ev := m.total
	for _, i := range T {
		ev -= m.weights[i]
	}
	if ev < 0 {
		ev = 0
	}
	return ev
}

// Variance returns EV(∅) = Var[f(X)].
func (m *Modular) Variance() float64 { return m.total }
