package ev

import (
	"testing"

	"github.com/factcheck/cleansel/internal/dist"
	"github.com/factcheck/cleansel/internal/model"
	"github.com/factcheck/cleansel/internal/numeric"
	"github.com/factcheck/cleansel/internal/query"
)

// A term referencing more than 64 objects cannot be mask-cached; the
// engine must bypass the cache and still compute correctly. Supports are
// kept at 1–2 atoms so the 70-variable enumeration stays tiny.
func TestGroupEngineWideTermBypassesCache(t *testing.T) {
	const n = 70
	objs := make([]model.Object, n)
	for i := range objs {
		if i%7 == 0 {
			objs[i].Value = dist.MustDiscrete([]float64{0, 1}, []float64{0.5, 0.5})
		} else {
			objs[i].Value = dist.PointMass(1)
		}
		objs[i].Cost = 1
		objs[i].Name = "o"
	}
	db := model.New(objs)
	vars := make([]int, n)
	coef := make([]float64, n)
	for i := range vars {
		vars[i] = i
		coef[i] = 1
	}
	g := &query.GroupSum{Terms: []query.Term{query.LinearTerm(vars, coef, 0)}}
	eng, err := NewGroupEngine(db, g)
	if err != nil {
		t.Fatal(err)
	}
	// Ten Bernoulli(1/2) objects contribute 10·(1/4) to the variance.
	if got := eng.Variance(); !numeric.AlmostEqual(got, 2.5, 1e-9) {
		t.Fatalf("wide-term variance %v, want 2.5", got)
	}
	// Cleaning one uncertain object removes exactly 1/4; repeated calls
	// (which would hit a cache if one existed) stay consistent.
	T := model.NewSet(0)
	for i := 0; i < 3; i++ {
		if got := eng.EV(T); !numeric.AlmostEqual(got, 2.25, 1e-9) {
			t.Fatalf("EV after cleaning %v, want 2.25", got)
		}
	}
	// The incremental state agrees.
	st := eng.NewState()
	if got := -st.Delta(0); !numeric.AlmostEqual(got, 0.25, 1e-9) {
		t.Fatalf("delta %v, want 0.25", got)
	}
	// Point-mass objects are worthless to clean.
	if got := st.Delta(1); got != 0 {
		t.Fatalf("point-mass delta %v, want 0", got)
	}
}
