package ev

import (
	"errors"

	"github.com/factcheck/cleansel/internal/linalg"
	"github.com/factcheck/cleansel/internal/model"
	"github.com/factcheck/cleansel/internal/query"
)

// MVNEngine computes EV(T) for an affine query function when the object
// values follow a joint (possibly correlated) normal law — the §4.5
// setting where dependencies Cov(i,j) = γ^{j−i}·σ_i·σ_j are injected into
// CDC-firearms.
//
// For a multivariate normal, the conditional covariance of the uncleaned
// values given X_T = v is the Schur complement Σ_{Ū|T} and does not depend
// on v, so the expectation over cleaning outcomes is the conditional
// variance itself:
//
//	EV(T) = a_Ū ᵀ · (Σ_ŪŪ − Σ_ŪT·Σ_TT⁻¹·Σ_TŪ) · a_Ū.
type MVNEngine struct {
	db    *model.DB
	sigma *linalg.Matrix
	a     []float64

	sigmaA []float64 // Σ·a, precomputed
	total  float64   // aᵀΣa = Var[f]
}

// NewMVN builds the engine. If the database has no explicit covariance, a
// diagonal one is assembled from the marginal variances (the independent
// special case).
func NewMVN(db *model.DB, f *query.Affine) (*MVNEngine, error) {
	n := db.N()
	sigma := db.Cov
	if sigma == nil {
		sigma = linalg.NewMatrix(n, n)
		for i := 0; i < n; i++ {
			sigma.Set(i, i, db.Objects[i].Value.Variance())
		}
	}
	if sigma.Rows != n || sigma.Cols != n {
		return nil, errors.New("ev: covariance dimension mismatch")
	}
	e := &MVNEngine{db: db, sigma: sigma, a: f.Dense(n)}
	e.sigmaA = sigma.MulVec(e.a)
	for i, v := range e.a {
		e.total += v * e.sigmaA[i]
	}
	return e, nil
}

// EV returns the exact conditional variance of f given that T is cleaned.
// Because (f, X_T) are jointly normal,
//
//	EV(T) = Var[f | X_T] = Var[f] − Cov(f, X_T)ᵀ·Σ_TT⁻¹·Cov(f, X_T),
//
// which only factorizes the |T|×|T| conditioning block — the form that
// makes the exhaustive OPT baseline of §4.5 affordable.
func (e *MVNEngine) EV(T model.Set) float64 {
	if len(T) == 0 {
		return e.total
	}
	cT := make([]float64, len(T))
	for i, v := range T {
		cT[i] = e.sigmaA[v]
	}
	sTT := e.sigma.Submatrix(T, T)
	sol, err := linalg.SolveSPD(sTT, cT)
	if err != nil {
		// Degenerate conditioning block: fall back to the marginal
		// semantics, which needs no inversion.
		return e.MarginalEV(T)
	}
	out := e.total
	for i := range cT {
		out -= cT[i] * sol[i]
	}
	if out < 0 {
		return 0
	}
	return out
}

// MarginalEV returns Σ_{i,j∉T} a_i·a_j·Σ_ij — the simplified semantics the
// paper's Theorem 3.9 proof uses, which treats the uncleaned values as
// keeping their marginal covariance after conditioning. It coincides with
// EV when values are independent.
func (e *MVNEngine) MarginalEV(T model.Set) float64 {
	keep := T.Complement(e.db.N())
	var out float64
	for _, i := range keep {
		for _, j := range keep {
			out += e.a[i] * e.a[j] * e.sigma.At(i, j)
		}
	}
	if out < 0 {
		return 0
	}
	return out
}

// Variance returns EV(∅) = aᵀΣa.
func (e *MVNEngine) Variance() float64 {
	return linalg.QuadForm(e.sigma, e.a)
}

// CleanedVariance returns Var[Σ_{i∈T} a_i·X_i | X_Ū = u_Ū] =
// a_T ᵀ·Σ_{T|Ū}·a_T, the variance that cleaning T injects while everything
// else stays at its current value — the quantity MaxPr maximizes for
// centered normal errors (Lemma 3.1 / Theorem 3.9).
func (e *MVNEngine) CleanedVariance(T model.Set) float64 {
	if len(T) == 0 {
		return 0
	}
	cond := T.Complement(e.db.N())
	cc, err := linalg.ConditionalCovariance(e.sigma, T, cond)
	if err != nil {
		return 0
	}
	at := make([]float64, len(T))
	for i, v := range T {
		at[i] = e.a[v]
	}
	out := linalg.QuadForm(cc, at)
	if out < 0 {
		return 0
	}
	return out
}

// MarginalCleanedVariance is the marginal-semantics analogue of
// CleanedVariance: Σ_{i,j∈T} a_i·a_j·Σ_ij.
func (e *MVNEngine) MarginalCleanedVariance(T model.Set) float64 {
	var out float64
	for _, i := range T {
		for _, j := range T {
			out += e.a[i] * e.a[j] * e.sigma.At(i, j)
		}
	}
	if out < 0 {
		return 0
	}
	return out
}
