package ev

import (
	"math"
	"testing"

	"github.com/factcheck/cleansel/internal/model"
	"github.com/factcheck/cleansel/internal/parallel"
	"github.com/factcheck/cleansel/internal/rng"
)

// TestScratchPoolSpillWorker is the regression test for the latent
// out-of-range panic: a pool sized under one worker count handed a
// worker index from a wider run (CLEANSEL_WORKERS re-read between pool
// creation and execution, or a wider caller-supplied pool) indexed past
// its slot slice. Spill workers must get a working unpooled workspace
// instead. Fails with an index-out-of-range panic on the pre-fix tree.
func TestScratchPoolSpillWorker(t *testing.T) {
	t.Setenv(parallel.EnvWorkers, "2")
	p := newScratchPool(5)
	t.Setenv(parallel.EnvWorkers, "8")
	for worker := 0; worker < 8; worker++ {
		sc := p.get(worker)
		if sc == nil {
			t.Fatalf("worker %d: nil scratch", worker)
		}
		if len(sc.x) != 5 || len(sc.idx) != 5 || len(sc.m1) != 5 || len(sc.m2) != 5 || len(sc.acc) != 5 {
			t.Fatalf("worker %d: workspace not sized to n=5", worker)
		}
	}
	// Negative indexes are equally out of contract and must not panic.
	if sc := p.get(-1); sc == nil || len(sc.x) != 5 {
		t.Fatal("negative worker index: want a fresh workspace")
	}
	// In-range slots still pool: the same worker sees the same scratch.
	if p.get(0) != p.get(0) {
		t.Fatal("in-range slots must reuse their workspace")
	}
	// Spill workspaces are unpooled (fresh each call): sharing one slot
	// between two concurrent spill workers would race.
	if p.get(7) == p.get(7) {
		t.Fatal("spill workspaces must not be shared")
	}
}

// TestGroupEngineBuiltUnderOtherWorkerCount constructs engines under one
// CLEANSEL_WORKERS setting and runs them under another (both
// directions): results must stay bit-identical to an engine whose whole
// life ran under one worker, and nothing may panic even though every
// pool-width assumption from construction time is stale at run time.
func TestGroupEngineBuiltUnderOtherWorkerCount(t *testing.T) {
	type snapshot struct {
		total    float64
		benefits []float64
		ev       float64
	}
	build := func(workers string, n int, seed uint64) (*GroupEngine, *State) {
		t.Setenv(parallel.EnvWorkers, workers)
		rr := rng.New(seed)
		db := randomDB(rr, n)
		g := randomGroupSum(rr, n)
		ge := mustGroup(t, db, g)
		return ge, ge.NewState()
	}
	run := func(workers string, ge *GroupEngine, st *State, n int) snapshot {
		t.Setenv(parallel.EnvWorkers, workers)
		return snapshot{
			total:    st.EV(),
			benefits: st.SingletonBenefits(),
			ev:       ge.EV(model.NewSet(0, n-1)),
		}
	}
	const n, seed = 7, 41
	refGE, refST := build("1", n, seed)
	want := run("1", refGE, refST, n)
	for _, c := range []struct{ buildW, runW string }{{"1", "6"}, {"6", "1"}, {"2", "8"}} {
		ge, st := build(c.buildW, n, seed)
		got := run(c.runW, ge, st, n)
		if got.total != want.total || got.ev != want.ev {
			t.Fatalf("build=%s run=%s: EV %v/%v, want %v/%v",
				c.buildW, c.runW, got.total, got.ev, want.total, want.ev)
		}
		for j := range want.benefits {
			if got.benefits[j] != want.benefits[j] {
				t.Fatalf("build=%s run=%s: benefit[%d] %v != %v",
					c.buildW, c.runW, j, got.benefits[j], want.benefits[j])
			}
		}
	}
}

// TestEntropyBufferedMatchesTwoPass pins the one-pass buffered pmf
// route against the legacy two-pass route (forced via a zero buffer
// cap): bit-identical entropy for every conditioning set, across
// magnitudes that exercise both the legacy and the scale-aware pooling
// grids.
func TestEntropyBufferedMatchesTwoPass(t *testing.T) {
	r := rng.New(613)
	for trial := 0; trial < 20; trial++ {
		n := 2 + r.Intn(3)
		db := randomDB(r, n)
		g := randomGroupSum(r, n)
		e, err := NewEntropy(db, g)
		if err != nil {
			t.Fatal(err)
		}
		sets := []model.Set{nil, model.NewSet(0), model.NewSet(n - 1), randomSubset(r, n)}
		for _, T := range sets {
			buffered := e.ev(T, maxEntropyStates)
			legacy := e.ev(T, 0)
			if math.Float64bits(buffered) != math.Float64bits(legacy) {
				t.Fatalf("trial %d, T=%v: buffered %v != two-pass %v", trial, T, buffered, legacy)
			}
			if public := e.EV(T); math.Float64bits(public) != math.Float64bits(buffered) {
				t.Fatalf("trial %d, T=%v: EV %v != buffered %v", trial, T, public, buffered)
			}
		}
	}
}
