package ev

import (
	"context"
	"testing"

	"github.com/factcheck/cleansel/internal/model"
	"github.com/factcheck/cleansel/internal/query"
	"github.com/factcheck/cleansel/internal/rng"
)

func mustGroupShared(t *testing.T, db *model.DB, g *query.GroupSum, c *SharedEVCache) *GroupEngine {
	t.Helper()
	e, err := NewGroupEngineShared(db, g, c)
	if err != nil {
		t.Fatalf("NewGroupEngineShared: %v", err)
	}
	return e
}

// TestSharedCacheExactReuse pins the amortization contract: engines
// sharing a SharedEVCache return bit-identical EVs to engines that
// compute everything themselves, while actually serving repeat
// term/pair enumerations from the cache.
func TestSharedCacheExactReuse(t *testing.T) {
	r := rng.New(41)
	for trial := 0; trial < 8; trial++ {
		n := 4 + r.Intn(4)
		db := randomDB(r, n)
		g := randomGroupSum(r, n)
		subsets := []model.Set{nil, model.NewSet(0), model.NewSet(0, n-1), randomSubset(r, n)}

		cold := mustGroup(t, db, g)
		shared := NewSharedEVCache()
		first := mustGroupShared(t, db, g, shared)
		second := mustGroupShared(t, db, g, shared)
		for _, T := range subsets {
			want := cold.EV(T)
			if got := first.EV(T); got != want {
				t.Fatalf("trial %d: shared-cache filler EV(%v) = %v, unshared = %v", trial, T, got, want)
			}
			if got := second.EV(T); got != want {
				t.Fatalf("trial %d: shared-cache reader EV(%v) = %v, unshared = %v", trial, T, got, want)
			}
		}
		hits, _ := shared.Stats()
		if hits == 0 {
			t.Fatalf("trial %d: second engine never hit the shared cache", trial)
		}
	}
}

// TestSharedCachePairKeysAreOrdered pins that pair entries are keyed
// by the (k,l) role assignment, not a canonicalized pair: pairEV
// groups its float products around the k-side term, so a swapped pair
// must recompute. Two engines whose overlapping terms appear in
// opposite orders still agree bitwise with their unshared twins.
func TestSharedCachePairKeysAreOrdered(t *testing.T) {
	r := rng.New(7)
	db := randomDB(r, 4)
	a := query.IndicatorGE([]int{0, 1}, []float64{1, -1}, 0.5, 1)
	b := query.NegMinSquared([]int{1, 2, 3}, []float64{1, 1, -2}, -0.25, 0.75)
	gAB := &query.GroupSum{Terms: []query.Term{a, b}}
	gBA := &query.GroupSum{Terms: []query.Term{b, a}}

	shared := NewSharedEVCache()
	eAB := mustGroupShared(t, db, gAB, shared)
	eBA := mustGroupShared(t, db, gBA, shared)
	for _, T := range []model.Set{nil, model.NewSet(1), model.NewSet(0, 2)} {
		if got, want := eAB.EV(T), mustGroup(t, db, gAB).EV(T); got != want {
			t.Fatalf("AB order: EV(%v) = %v, unshared = %v", T, got, want)
		}
		if got, want := eBA.EV(T), mustGroup(t, db, gBA).EV(T); got != want {
			t.Fatalf("BA order: EV(%v) = %v, unshared = %v", T, got, want)
		}
	}
}

// TestSharedCacheUnsignedTermsNeverShare pins that hand-built terms
// without signatures bypass the shared tier entirely.
func TestSharedCacheUnsignedTermsNeverShare(t *testing.T) {
	r := rng.New(11)
	db := randomDB(r, 3)
	g := &query.GroupSum{Terms: []query.Term{{
		Vars: []int{0, 1},
		Eval: func(vals []float64) float64 { return vals[0] * vals[1] },
	}}}
	shared := NewSharedEVCache()
	e1 := mustGroupShared(t, db, g, shared)
	e2 := mustGroupShared(t, db, g, shared)
	if e1.EV(nil) != e2.EV(nil) {
		t.Fatal("same engine inputs disagree")
	}
	if n := shared.Len(); n != 0 {
		t.Fatalf("unsigned terms populated the shared cache: %d entries", n)
	}
	ctx := context.Background()
	if _, err := e1.EVCtx(ctx, model.NewSet(0)); err != nil {
		t.Fatal(err)
	}
	hits, misses := shared.Stats()
	if hits != 0 || misses != 0 {
		t.Fatalf("unsigned terms counted shared lookups: hits=%d misses=%d", hits, misses)
	}
}
