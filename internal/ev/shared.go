package ev

import (
	"strconv"
	"sync"

	"github.com/factcheck/cleansel/internal/model"
	"github.com/factcheck/cleansel/internal/query"
)

// SharedEVCache memoizes per-term variances and per-pair covariances
// across GroupEngines compiled over the SAME *model.DB, keyed by the
// terms' canonical signatures (query.Term.Sig) plus the cleaned-mask.
// It is the cross-claim amortization behind bulk triage: claims over
// one dataset that share terms (duplicity indicators anchored to the
// same reference, say) pay for each term/pair enumeration once per
// batch instead of once per claim.
//
// Sharing is exact-reuse only, so it cannot move a bit: a cached value
// is the output of the very same enumeration (same variables in the
// same declared order, same parameters, same distributions) that a
// cache-missing engine would run itself. Pair entries are keyed by the
// ORDERED signature pair (term k first) — pairEV groups its float
// products around the k-side value, so a (k,l)-swapped pair is the
// same real number but not necessarily the same float64, and it must
// recompute rather than share.
//
// A SharedEVCache must never be used with engines over different
// databases or discretizations: keys do not include the distributions,
// that invariant is the caller's (core.TriageContext's) job.
//
// All methods are safe for concurrent use. Lock ordering: engines
// never hold their own mu while taking the cache's (and vice versa),
// so engines sharing a cache cannot deadlock.
type SharedEVCache struct {
	mu    sync.Mutex
	terms map[string]float64
	pairs map[string]float64

	hits, misses uint64
}

// NewSharedEVCache returns an empty cache ready to hand to
// NewGroupEngineShared.
func NewSharedEVCache() *SharedEVCache {
	return &SharedEVCache{
		terms: make(map[string]float64),
		pairs: make(map[string]float64),
	}
}

// Stats reports lifetime lookup outcomes (a lookup for an unsigned or
// uncacheable term counts as neither).
func (c *SharedEVCache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len returns the number of resident term and pair entries.
func (c *SharedEVCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.terms) + len(c.pairs)
}

// sharedKey appends the cleaned-mask to a signature. The unit
// separator cannot occur inside signatures (decimal ints, hex floats,
// '|' and ',' only), so keys are unambiguous.
func sharedKey(sig string, mask uint64) string {
	return sig + "\x1f" + strconv.FormatUint(mask, 16)
}

// splitShared partitions cache misses into values served from the
// shared cache (written into vals) and the remainder to compute. sig
// returns the signature for miss index i ("" = unshareable).
func (c *SharedEVCache) splitShared(m map[string]float64, misses []evMiss, vals []float64, sig func(i int) string) (compute []evMiss) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, miss := range misses {
		if s := sig(miss.i); miss.cacheable && s != "" {
			if v, ok := m[sharedKey(s, miss.mask)]; ok {
				vals[miss.i] = v
				c.hits++
				continue
			}
			c.misses++
		}
		compute = append(compute, miss)
	}
	return compute
}

// publish stores freshly computed shareable values.
func (c *SharedEVCache) publish(m map[string]float64, computed []evMiss, vals []float64, sig func(i int) string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, miss := range computed {
		if s := sig(miss.i); miss.cacheable && s != "" {
			m[sharedKey(s, miss.mask)] = vals[miss.i]
		}
	}
}

// NewGroupEngineShared is NewGroupEngine with a cross-engine result
// cache attached. Engines sharing a cache MUST be built over the same
// database value (same objects, same discretization); see the
// SharedEVCache contract.
func NewGroupEngineShared(db *model.DB, g *query.GroupSum, shared *SharedEVCache) (*GroupEngine, error) {
	e, err := NewGroupEngine(db, g)
	if err != nil {
		return nil, err
	}
	e.shared = shared
	return e, nil
}
