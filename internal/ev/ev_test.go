package ev

import (
	"math"
	"testing"

	"github.com/factcheck/cleansel/internal/dist"
	"github.com/factcheck/cleansel/internal/model"
	"github.com/factcheck/cleansel/internal/numeric"
	"github.com/factcheck/cleansel/internal/query"
	"github.com/factcheck/cleansel/internal/rng"
)

// --- Paper worked examples -------------------------------------------------

// Example 3: three Bernoulli values with success probabilities 1/2, 1/3,
// 1/4 and f(X) = 1[X1+X2+X3 < 3].
func example3DB() *model.DB {
	return model.New([]model.Object{
		{Name: "x1", Cost: 1, Value: dist.Bernoulli(0.5)},
		{Name: "x2", Cost: 1, Value: dist.Bernoulli(1.0 / 3.0)},
		{Name: "x3", Cost: 1, Value: dist.Bernoulli(0.25)},
	})
}

func example3Query() query.Function {
	return query.Indicator([]int{0, 1, 2}, func(v []float64) bool {
		return v[0]+v[1]+v[2] < 3
	})
}

func TestExample3BruteForce(t *testing.T) {
	db := example3DB()
	bf, err := NewBruteForce(db, example3Query())
	if err != nil {
		t.Fatal(err)
	}
	// Pr[f = 0] = 1/24, so Var[f] = (1/24)(23/24) = 23/576.
	if got, want := bf.Variance(), 23.0/576.0; !numeric.AlmostEqual(got, want, 1e-12) {
		t.Fatalf("Var[f] = %v, want %v", got, want)
	}
	// Cleaning X1: X1=0 -> f certain; X1=1 -> Pr[f=0] = 1/12,
	// so EV({x1}) = 1/2·0 + 1/2·(1/12)(11/12) = 11/288.
	if got, want := bf.EV(model.NewSet(0)), 11.0/288.0; !numeric.AlmostEqual(got, want, 1e-12) {
		t.Fatalf("EV({x1}) = %v, want %v", got, want)
	}
}

// Example 3's point: cleaning can increase uncertainty on some outcomes
// (the X1=1 branch has conditional variance above the prior variance),
// even though the expectation is lower.
func TestExample3BranchUncertainty(t *testing.T) {
	prior := 23.0 / 576.0              // Var[f] ≈ 0.0399
	branch := (1.0 / 12) * (11.0 / 12) // Var[f | X1=1] ≈ 0.0764
	if branch <= prior {
		t.Fatal("example 3 premise broken: conditioning should increase variance on the X1=1 branch")
	}
}

// Example 6: X1 uniform over {0,1/2,1,3/2,2}, X2 uniform over {1/3,1,5/3},
// f = 1[X1+X2 < 11/12].
func example6DB() *model.DB {
	return model.New([]model.Object{
		{Name: "x1", Cost: 1, Value: dist.UniformOver([]float64{0, 0.5, 1, 1.5, 2})},
		{Name: "x2", Cost: 1, Value: dist.UniformOver([]float64{1.0 / 3, 1, 5.0 / 3})},
	})
}

func example6Query() *query.GroupSum {
	return query.Indicator([]int{0, 1}, func(v []float64) bool {
		return v[0]+v[1] < 11.0/12.0
	})
}

func TestExample6ExactFractions(t *testing.T) {
	db := example6DB()
	for name, eng := range map[string]interface {
		EV(model.Set) float64
	}{
		"bruteforce": mustBF(t, db, example6Query()),
		"group":      mustGroup(t, db, example6Query()),
	} {
		if got, want := eng.EV(nil), 26.0/225.0; !numeric.AlmostEqual(got, want, 1e-12) {
			t.Fatalf("%s: Var[f] = %v, want 26/225", name, got)
		}
		if got, want := eng.EV(model.NewSet(0)), 4.0/45.0; !numeric.AlmostEqual(got, want, 1e-12) {
			t.Fatalf("%s: EV({x1}) = %v, want 4/45", name, got)
		}
		if got, want := eng.EV(model.NewSet(1)), 2.0/25.0; !numeric.AlmostEqual(got, want, 1e-12) {
			t.Fatalf("%s: EV({x2}) = %v, want 2/25", name, got)
		}
		if got := eng.EV(model.NewSet(0, 1)); !numeric.AlmostEqual(got, 0, 1e-12) {
			t.Fatalf("%s: EV(all) = %v, want 0", name, got)
		}
	}
	// GreedyMinVar's preference in Example 6: improvement from cleaning X2
	// (26/225 − 2/25 ≈ 0.0355) beats cleaning X1 (≈ 0.0266).
	bf := mustBF(t, db, example6Query())
	impX1 := bf.Variance() - bf.EV(model.NewSet(0))
	impX2 := bf.Variance() - bf.EV(model.NewSet(1))
	if impX2 <= impX1 {
		t.Fatalf("example 6 expects cleaning X2 to help more: %v vs %v", impX2, impX1)
	}
}

// Example 5's MinVar side: bias = X1 + X2 − 2 is affine, so the Modular
// engine applies: cleaning X1 leaves Var[X2] = 8/27, cleaning X2 leaves 1/2.
func TestExample5Modular(t *testing.T) {
	db := example6DB() // same two distributions as Example 5
	bias := query.NewAffine(-2, map[int]float64{0: 1, 1: 1})
	m, err := NewModular(db, bias)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := m.Variance(), 0.5+8.0/27.0; !numeric.AlmostEqual(got, want, 1e-12) {
		t.Fatalf("Var = %v, want %v", got, want)
	}
	if got, want := m.EV(model.NewSet(0)), 8.0/27.0; !numeric.AlmostEqual(got, want, 1e-12) {
		t.Fatalf("EV({x1}) = %v, want 8/27", got)
	}
	if got, want := m.EV(model.NewSet(1)), 0.5; !numeric.AlmostEqual(got, want, 1e-12) {
		t.Fatalf("EV({x2}) = %v, want 1/2", got)
	}
}

// --- Helpers ----------------------------------------------------------------

func mustBF(t *testing.T, db *model.DB, f query.Function) *BruteForce {
	t.Helper()
	bf, err := NewBruteForce(db, f)
	if err != nil {
		t.Fatal(err)
	}
	return bf
}

func mustGroup(t *testing.T, db *model.DB, g *query.GroupSum) *GroupEngine {
	t.Helper()
	e, err := NewGroupEngine(db, g)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// randomDB builds a small random discrete database.
func randomDB(r *rng.RNG, n int) *model.DB {
	objs := make([]model.Object, n)
	for i := range objs {
		k := 1 + r.Intn(3)
		vals := make([]float64, k)
		probs := make([]float64, k)
		for j := range vals {
			vals[j] = float64(r.IntRange(-3, 3))
			probs[j] = r.Float64() + 0.05
		}
		objs[i] = model.Object{
			Name:    "o",
			Cost:    1 + r.Float64()*5,
			Current: vals[0],
			Value:   dist.MustDiscrete(vals, probs),
		}
	}
	return model.New(objs)
}

// randomGroupSum builds a random decomposed query with overlapping terms.
func randomGroupSum(r *rng.RNG, n int) *query.GroupSum {
	g := &query.GroupSum{Const: float64(r.IntRange(-2, 2))}
	nTerms := 1 + r.Intn(4)
	for t := 0; t < nTerms; t++ {
		k := 1 + r.Intn(3)
		if k > n {
			k = n
		}
		vars := r.SampleWithoutReplacement(0, n-1, k)
		coef := make([]float64, k)
		for j := range coef {
			coef[j] = float64(r.IntRange(-2, 2))
		}
		c := float64(r.IntRange(-3, 3))
		switch r.Intn(3) {
		case 0:
			g.Terms = append(g.Terms, query.LinearTerm(vars, coef, c))
		case 1:
			g.Terms = append(g.Terms, query.IndicatorGE(vars, coef, c, 1+r.Float64()))
		default:
			g.Terms = append(g.Terms, query.NegMinSquared(vars, coef, c, r.Float64()))
		}
	}
	return g
}

func randomSubset(r *rng.RNG, n int) model.Set {
	var s model.Set
	for i := 0; i < n; i++ {
		if r.Float64() < 0.4 {
			s = append(s, i)
		}
	}
	return s
}

// --- Cross-engine equivalence ----------------------------------------------

func TestGroupEngineMatchesBruteForce(t *testing.T) {
	r := rng.New(20240610)
	for trial := 0; trial < 60; trial++ {
		n := 2 + r.Intn(4)
		db := randomDB(r, n)
		g := randomGroupSum(r, n)
		bf := mustBF(t, db, g)
		ge := mustGroup(t, db, g)
		for rep := 0; rep < 4; rep++ {
			T := randomSubset(r, n)
			want := bf.EV(T)
			got := ge.EV(T)
			if !numeric.AlmostEqual(got, want, 1e-8) {
				t.Fatalf("trial %d: EV(%v) group %v vs brute %v", trial, T, got, want)
			}
		}
	}
}

func TestModularMatchesBruteForce(t *testing.T) {
	r := rng.New(777)
	for trial := 0; trial < 40; trial++ {
		n := 2 + r.Intn(4)
		db := randomDB(r, n)
		coef := map[int]float64{}
		for i := 0; i < n; i++ {
			coef[i] = float64(r.IntRange(-3, 3))
		}
		f := query.NewAffine(float64(r.IntRange(-5, 5)), coef)
		bf := mustBF(t, db, f)
		mod, err := NewModular(db, f)
		if err != nil {
			t.Fatal(err)
		}
		for rep := 0; rep < 4; rep++ {
			T := randomSubset(r, n)
			if got, want := mod.EV(T), bf.EV(T); !numeric.AlmostEqual(got, want, 1e-8) {
				t.Fatalf("trial %d: modular %v vs brute %v", trial, got, want)
			}
		}
	}
}

func TestAffineAsGroupSumMatchesModular(t *testing.T) {
	r := rng.New(888)
	for trial := 0; trial < 20; trial++ {
		n := 2 + r.Intn(4)
		db := randomDB(r, n)
		coef := map[int]float64{}
		for i := 0; i < n; i++ {
			coef[i] = float64(r.IntRange(-3, 3))
		}
		f := query.NewAffine(1, coef)
		mod, err := NewModular(db, f)
		if err != nil {
			t.Fatal(err)
		}
		ge := mustGroup(t, db, f.AsGroupSum())
		T := randomSubset(r, n)
		if got, want := ge.EV(T), mod.EV(T); !numeric.AlmostEqual(got, want, 1e-8) {
			t.Fatalf("group-of-affine %v vs modular %v", got, want)
		}
	}
}

// --- Lemma 3.4 (monotone) and Lemma 3.5 (submodular) ------------------------

func TestLemma34Monotone(t *testing.T) {
	r := rng.New(34)
	for trial := 0; trial < 40; trial++ {
		n := 2 + r.Intn(4)
		db := randomDB(r, n)
		g := randomGroupSum(r, n)
		bf := mustBF(t, db, g)
		T := randomSubset(r, n)
		evT := bf.EV(T)
		for o := 0; o < n; o++ {
			if T.Has(o) {
				continue
			}
			if evPlus := bf.EV(T.Add(o)); evPlus > evT+1e-9 {
				t.Fatalf("trial %d: EV increased from %v to %v when adding %d to %v",
					trial, evT, evPlus, o, T)
			}
		}
	}
}

func TestLemma35Submodular(t *testing.T) {
	r := rng.New(35)
	for trial := 0; trial < 40; trial++ {
		n := 3 + r.Intn(3)
		db := randomDB(r, n)
		g := randomGroupSum(r, n)
		bf := mustBF(t, db, g)
		// T ⊂ T′, o ∉ T′.
		T := model.NewSet(0)
		Tp := model.NewSet(0, 1)
		o := n - 1
		if Tp.Has(o) {
			continue
		}
		// Lemma 3.5: EV(T∪{o}) − EV(T) ≥ EV(T′∪{o}) − EV(T′) for T ⊂ T′.
		dSmall := bf.EV(T.Add(o)) - bf.EV(T)
		dLarge := bf.EV(Tp.Add(o)) - bf.EV(Tp)
		if dSmall < dLarge-1e-9 {
			t.Fatalf("trial %d: submodularity violated: %v < %v", trial, dSmall, dLarge)
		}
	}
}

// --- Incremental state -------------------------------------------------------

func TestStateIncrementalMatchesScratch(t *testing.T) {
	r := rng.New(606)
	for trial := 0; trial < 30; trial++ {
		n := 3 + r.Intn(4)
		db := randomDB(r, n)
		g := randomGroupSum(r, n)
		ge := mustGroup(t, db, g)
		st := ge.NewState()
		if !numeric.AlmostEqual(st.EV(), ge.EV(nil), 1e-9) {
			t.Fatalf("initial state EV %v vs scratch %v", st.EV(), ge.EV(nil))
		}
		var T model.Set
		order := r.Perm(n)
		for _, o := range order[:1+r.Intn(n)] {
			// Delta must predict the committed change.
			d := st.Delta(o)
			before := st.EV()
			got := st.Clean(o)
			if !numeric.AlmostEqual(d, got, 1e-9) {
				t.Fatalf("Delta %v != Clean delta %v", d, got)
			}
			if !numeric.AlmostEqual(st.EV(), before+d, 1e-9) {
				t.Fatalf("state EV %v != before+delta %v", st.EV(), before+d)
			}
			T = T.Add(o)
			if want := ge.EV(T); !numeric.AlmostEqual(st.EV(), want, 1e-8) {
				t.Fatalf("trial %d: incremental EV %v vs scratch %v after cleaning %v",
					trial, st.EV(), want, T)
			}
			if !st.Cleaned(o) {
				t.Fatal("Cleaned not set")
			}
			if st.Delta(o) != 0 || st.Clean(o) != 0 {
				t.Fatal("re-cleaning should be a no-op")
			}
		}
	}
}

func TestStateAffected(t *testing.T) {
	db := randomDB(rng.New(1), 6)
	g := &query.GroupSum{Terms: []query.Term{
		query.LinearTerm([]int{0, 1}, []float64{1, 1}, 0),
		query.LinearTerm([]int{1, 2}, []float64{1, 1}, 0),
		query.LinearTerm([]int{4}, []float64{1}, 0),
	}}
	ge := mustGroup(t, db, g)
	st := ge.NewState()
	aff := st.Affected(1)
	// Object 1 shares term 0 with 0, term 1 with 2, and via the overlapping
	// pair (0,1) the union {0,1,2}.
	want := []int{0, 2}
	if len(aff) != len(want) || aff[0] != 0 || aff[1] != 2 {
		t.Fatalf("Affected(1) = %v, want %v", aff, want)
	}
	if got := st.Affected(4); len(got) != 0 {
		t.Fatalf("Affected(4) = %v, want empty", got)
	}
	if ge.NumPairs() != 1 {
		t.Fatalf("NumPairs = %d, want 1", ge.NumPairs())
	}
}

// --- Conditional moments ------------------------------------------------------

func TestCondMomentsMatchesBruteForce(t *testing.T) {
	r := rng.New(909)
	for trial := 0; trial < 30; trial++ {
		n := 2 + r.Intn(4)
		db := randomDB(r, n)
		g := randomGroupSum(r, n)
		ge := mustGroup(t, db, g)
		dists, _ := db.Discretes()
		// Condition on a random subset at random support values.
		known := make([]bool, n)
		values := make([]float64, n)
		var condVars []int
		for i := 0; i < n; i++ {
			if r.Float64() < 0.5 {
				known[i] = true
				values[i] = dists[i].Values[r.Intn(dists[i].Size())]
				condVars = append(condVars, i)
			}
		}
		gotMean, gotVar := ge.CondMoments(values, known)
		// Brute force conditional moments.
		x := make([]float64, n)
		copy(x, values)
		var free []int
		for i := 0; i < n; i++ {
			if !known[i] {
				free = append(free, i)
			}
		}
		var m1, m2 numeric.KahanAcc
		enumerate(dists, free, x, func(p float64) {
			v := g.Eval(x)
			m1.Add(p * v)
			m2.Add(p * v * v)
		})
		wantMean := m1.Value()
		wantVar := m2.Value() - wantMean*wantMean
		if wantVar < 0 {
			wantVar = 0
		}
		if !numeric.AlmostEqual(gotMean, wantMean, 1e-8) {
			t.Fatalf("trial %d: cond mean %v vs %v (cond on %v)", trial, gotMean, wantMean, condVars)
		}
		if !numeric.AlmostEqual(gotVar, wantVar, 1e-8) {
			t.Fatalf("trial %d: cond var %v vs %v", trial, gotVar, wantVar)
		}
	}
}

// --- Monte Carlo ---------------------------------------------------------------

func TestMonteCarloApproximatesExact(t *testing.T) {
	db := example6DB()
	g := example6Query()
	bf := mustBF(t, db, g)
	mc, err := NewMonteCarlo(db, g, 2000, 60, rng.New(2024))
	if err != nil {
		t.Fatal(err)
	}
	for _, T := range []model.Set{nil, model.NewSet(0), model.NewSet(1)} {
		exact := bf.EV(T)
		est := mc.EV(T)
		if math.Abs(est-exact) > 0.01 {
			t.Fatalf("MC estimate %v too far from exact %v for T=%v", est, exact, T)
		}
	}
}

func TestMonteCarloValidation(t *testing.T) {
	db := example6DB()
	if _, err := NewMonteCarlo(db, example6Query(), 0, 10, rng.New(1)); err == nil {
		t.Fatal("outer=0 accepted")
	}
	if _, err := NewMonteCarlo(db, example6Query(), 10, 1, rng.New(1)); err == nil {
		t.Fatal("inner=1 accepted")
	}
}

// --- Engine validation ----------------------------------------------------------

func TestGroupEngineValidation(t *testing.T) {
	db := randomDB(rng.New(3), 3)
	bad := &query.GroupSum{Terms: []query.Term{
		query.LinearTerm([]int{0, 0}, []float64{1, 1}, 0),
	}}
	if _, err := NewGroupEngine(db, bad); err == nil {
		t.Fatal("duplicate var in term accepted")
	}
	bad2 := &query.GroupSum{Terms: []query.Term{
		query.LinearTerm([]int{7}, []float64{1}, 0),
	}}
	if _, err := NewGroupEngine(db, bad2); err == nil {
		t.Fatal("out-of-range var accepted")
	}
}
