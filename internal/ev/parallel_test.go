package ev

import (
	"context"
	"errors"
	"sync"
	"testing"

	"github.com/factcheck/cleansel/internal/model"
	"github.com/factcheck/cleansel/internal/numeric"
	"github.com/factcheck/cleansel/internal/parallel"
	"github.com/factcheck/cleansel/internal/rng"
)

// TestGroupEngineBitIdenticalAcrossWorkerCounts pins the determinism
// contract of the parallel subsystem at the engine level: EV, the
// initial state, and the singleton benefits must be bit-for-bit equal
// for every CLEANSEL_WORKERS setting, with workers=1 reproducing the
// sequential arithmetic exactly.
func TestGroupEngineBitIdenticalAcrossWorkerCounts(t *testing.T) {
	type snapshot struct {
		total    float64
		benefits []float64
		evs      []float64
	}
	run := func(workers string) []snapshot {
		t.Setenv(parallel.EnvWorkers, workers)
		rr := rng.New(99)
		var out []snapshot
		for trial := 0; trial < 6; trial++ {
			n := 4 + rr.Intn(5)
			db := randomDB(rr, n)
			g := randomGroupSum(rr, n)
			ge := mustGroup(t, db, g)
			st := ge.NewState()
			var snap snapshot
			snap.total = st.EV()
			snap.benefits = st.SingletonBenefits()
			for o := 0; o < n; o++ {
				snap.evs = append(snap.evs, ge.EV(model.NewSet(o)))
			}
			snap.evs = append(snap.evs, ge.EV(model.NewSet(0, n-1)))
			out = append(out, snap)
		}
		return out
	}
	want := run("1")
	for _, workers := range []string{"2", "8"} {
		got := run(workers)
		for i := range want {
			if got[i].total != want[i].total {
				t.Fatalf("workers=%s trial %d: total %v != %v", workers, i, got[i].total, want[i].total)
			}
			for j := range want[i].benefits {
				if got[i].benefits[j] != want[i].benefits[j] {
					t.Fatalf("workers=%s trial %d: benefit[%d] %v != %v",
						workers, i, j, got[i].benefits[j], want[i].benefits[j])
				}
			}
			for j := range want[i].evs {
				if got[i].evs[j] != want[i].evs[j] {
					t.Fatalf("workers=%s trial %d: ev[%d] %v != %v",
						workers, i, j, got[i].evs[j], want[i].evs[j])
				}
			}
		}
	}
}

// TestGroupEngineConcurrentEV hammers one engine's EV from many
// goroutines (exercising the cache mutex under -race) and checks every
// answer against a sequentially computed reference.
func TestGroupEngineConcurrentEV(t *testing.T) {
	r := rng.New(7)
	db := randomDB(r, 8)
	g := randomGroupSum(r, 8)
	ref := mustGroup(t, db, g)
	sets := make([]model.Set, 0, 30)
	want := make([]float64, 0, 30)
	for o := 0; o < db.N(); o++ {
		sets = append(sets, model.NewSet(o))
	}
	for i := 0; i < 10; i++ {
		sets = append(sets, model.NewSet(r.Intn(db.N()), r.Intn(db.N())))
	}
	for _, T := range sets {
		want = append(want, ref.EV(T))
	}
	eng := mustGroup(t, db, g)
	var wg sync.WaitGroup
	errs := make([]error, len(sets))
	for rep := 0; rep < 4; rep++ {
		for i := range sets {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				if got := eng.EV(sets[i]); got != want[i] {
					t.Errorf("concurrent EV(%v) = %v, want %v", sets[i], got, want[i])
				}
			}(i)
		}
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestGroupEngineEVCtxCancelled(t *testing.T) {
	r := rng.New(11)
	db := randomDB(r, 5)
	eng := mustGroup(t, db, randomGroupSum(r, 5))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.EVCtx(ctx, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("EVCtx on cancelled ctx: err = %v", err)
	}
	if _, err := eng.NewStateCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("NewStateCtx on cancelled ctx: err = %v", err)
	}
	st := eng.NewState()
	if _, err := st.SingletonBenefitsCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("SingletonBenefitsCtx on cancelled ctx: err = %v", err)
	}
}

func TestShardedMonteCarloBitIdenticalAcrossWorkerCounts(t *testing.T) {
	r := rng.New(5)
	db := randomDB(r, 6)
	g := randomGroupSum(r, 6)
	T := model.NewSet(0, 3)
	run := func(workers string) float64 {
		t.Setenv(parallel.EnvWorkers, workers)
		mc, err := NewShardedMonteCarlo(db, g, 400, 30, 77)
		if err != nil {
			t.Fatal(err)
		}
		return mc.EV(T)
	}
	want := run("1")
	for _, workers := range []string{"2", "8"} {
		if got := run(workers); got != want {
			t.Fatalf("workers=%s: EV = %v, want %v (bit-identity broken)", workers, got, want)
		}
	}
}

func TestShardedMonteCarloApproximatesExact(t *testing.T) {
	r := rng.New(13)
	db := randomDB(r, 5)
	g := randomGroupSum(r, 5)
	exact := mustGroup(t, db, g)
	mc, err := NewShardedMonteCarlo(db, g, 2000, 60, 2024)
	if err != nil {
		t.Fatal(err)
	}
	for _, T := range []model.Set{nil, model.NewSet(0), model.NewSet(1, 3)} {
		want := exact.EV(T)
		got := mc.EV(T)
		tol := 0.15 * (1 + want)
		if !numeric.AlmostEqual(got, want, tol) {
			t.Fatalf("EV(%v) = %v, exact %v", T, got, want)
		}
	}
}

func TestShardedMonteCarloValidation(t *testing.T) {
	r := rng.New(1)
	db := randomDB(r, 4)
	g := randomGroupSum(r, 4)
	if _, err := NewShardedMonteCarlo(db, g, 0, 10, 1); err == nil {
		t.Fatal("outer=0 accepted")
	}
	if _, err := NewShardedMonteCarlo(db, g, 10, 1, 1); err == nil {
		t.Fatal("inner=1 accepted")
	}
}

func TestMonteCarloEVCtxCancelled(t *testing.T) {
	r := rng.New(3)
	db := randomDB(r, 4)
	g := randomGroupSum(r, 4)
	mc, err := NewMonteCarlo(db, g, 100, 10, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := mc.EVCtx(ctx, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("EVCtx on cancelled ctx: err = %v", err)
	}
}
