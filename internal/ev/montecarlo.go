package ev

import (
	"context"
	"errors"
	"fmt"

	"github.com/factcheck/cleansel/internal/dist"
	"github.com/factcheck/cleansel/internal/model"
	"github.com/factcheck/cleansel/internal/numeric"
	"github.com/factcheck/cleansel/internal/parallel"
	"github.com/factcheck/cleansel/internal/query"
	"github.com/factcheck/cleansel/internal/rng"
)

// MonteCarlo estimates EV(T) for arbitrary query functions over
// independent discrete values by nested sampling: the outer loop draws a
// cleaning outcome v ~ X_T, the inner loop estimates Var[f(X) | X_T = v].
// §3.1 suggests exactly this estimator when exact benefit computation is
// intractable.
type MonteCarlo struct {
	db    *model.DB
	dists []*dist.Discrete
	f     query.Function
	outer int
	inner int
	r     *rng.RNG
}

// NewMonteCarlo builds the estimator; outer/inner are the sample counts of
// the two loops.
func NewMonteCarlo(db *model.DB, f query.Function, outer, inner int, r *rng.RNG) (*MonteCarlo, error) {
	if db.Cov != nil {
		return nil, errors.New("ev: MonteCarlo requires independent values")
	}
	if outer <= 0 || inner <= 1 {
		return nil, fmt.Errorf("ev: need outer >= 1, inner >= 2; got %d/%d", outer, inner)
	}
	ds, err := db.Discretes()
	if err != nil {
		return nil, fmt.Errorf("ev: MonteCarlo: %w", err)
	}
	return &MonteCarlo{db: db, dists: ds, f: f, outer: outer, inner: inner, r: r}, nil
}

// EV returns the nested Monte-Carlo estimate of the objective. The inner
// variance uses the unbiased (n−1) estimator so the outer average is an
// unbiased estimate of EV(T).
func (m *MonteCarlo) EV(T model.Set) float64 {
	v, err := m.EVCtx(context.Background(), T)
	if err != nil {
		panic(err) // Background is never cancelled; no other error exists
	}
	return v
}

// EVCtx is EV with cooperative cancellation, checked between outer
// samples. The estimator draws every sample from the single shared
// stream in a fixed order, so it stays sequential — use
// ShardedMonteCarlo when the outer loop should run on the worker pool.
func (m *MonteCarlo) EVCtx(ctx context.Context, T model.Set) (float64, error) {
	n := m.db.N()
	rest := T.Complement(n)
	x := make([]float64, n)
	var outerAcc numeric.Welford
	for o := 0; o < m.outer; o++ {
		if err := ctx.Err(); err != nil {
			return 0, context.Cause(ctx)
		}
		for _, i := range T {
			x[i] = m.dists[i].Sample(m.r)
		}
		var innerAcc numeric.Welford
		for in := 0; in < m.inner; in++ {
			for _, i := range rest {
				x[i] = m.dists[i].Sample(m.r)
			}
			innerAcc.Add(m.f.Eval(x))
		}
		outerAcc.Add(innerAcc.SampleVar())
	}
	return outerAcc.Mean(), nil
}

// ShardedMonteCarlo is the parallel form of MonteCarlo: every outer
// sample owns an independent RNG stream derived from the seed with
// rng.Split (stream o depends only on the seed and o), so the outer
// loop fans out across the worker pool and the estimate is
// bit-identical for every worker count — including workers=1. Repeated
// EV calls rebuild the same streams, so an estimate for a given T is
// reproducible across calls (and consistent within a greedy sweep,
// like maxpr.Cached keeps its inner evaluator).
type ShardedMonteCarlo struct {
	db    *model.DB
	dists []*dist.Discrete
	f     query.Function
	outer int
	inner int
	seed  uint64
}

// NewShardedMonteCarlo builds the parallel estimator.
func NewShardedMonteCarlo(db *model.DB, f query.Function, outer, inner int, seed uint64) (*ShardedMonteCarlo, error) {
	if db.Cov != nil {
		return nil, errors.New("ev: ShardedMonteCarlo requires independent values")
	}
	if outer <= 0 || inner <= 1 {
		return nil, fmt.Errorf("ev: need outer >= 1, inner >= 2; got %d/%d", outer, inner)
	}
	ds, err := db.Discretes()
	if err != nil {
		return nil, fmt.Errorf("ev: ShardedMonteCarlo: %w", err)
	}
	return &ShardedMonteCarlo{db: db, dists: ds, f: f, outer: outer, inner: inner, seed: seed}, nil
}

// EV implements Engine.
func (m *ShardedMonteCarlo) EV(T model.Set) float64 {
	v, err := m.EVCtx(context.Background(), T)
	if err != nil {
		panic(err) // Background is never cancelled; no other error exists
	}
	return v
}

// EVCtx estimates EV(T) with the outer samples sharded across the
// worker pool; the per-sample variances are reduced in sample order.
func (m *ShardedMonteCarlo) EVCtx(ctx context.Context, T model.Set) (float64, error) {
	n := m.db.N()
	rest := T.Complement(n)
	streams := parallel.Streams(rng.New(m.seed), m.outer)
	pool := newScratchPool(n)
	vars, err := parallel.Map(ctx, m.outer, func(worker, o int) (float64, error) {
		sc := pool.get(worker)
		r := streams[o]
		for _, i := range T {
			sc.x[i] = m.dists[i].Sample(r)
		}
		var innerAcc numeric.Welford
		for in := 0; in < m.inner; in++ {
			for _, i := range rest {
				sc.x[i] = m.dists[i].Sample(r)
			}
			innerAcc.Add(m.f.Eval(sc.x))
		}
		return innerAcc.SampleVar(), nil
	})
	if err != nil {
		return 0, err
	}
	var outerAcc numeric.Welford
	for _, v := range vars {
		outerAcc.Add(v)
	}
	return outerAcc.Mean(), nil
}
