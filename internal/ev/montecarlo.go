package ev

import (
	"errors"
	"fmt"

	"github.com/factcheck/cleansel/internal/dist"
	"github.com/factcheck/cleansel/internal/model"
	"github.com/factcheck/cleansel/internal/numeric"
	"github.com/factcheck/cleansel/internal/query"
	"github.com/factcheck/cleansel/internal/rng"
)

// MonteCarlo estimates EV(T) for arbitrary query functions over
// independent discrete values by nested sampling: the outer loop draws a
// cleaning outcome v ~ X_T, the inner loop estimates Var[f(X) | X_T = v].
// §3.1 suggests exactly this estimator when exact benefit computation is
// intractable.
type MonteCarlo struct {
	db    *model.DB
	dists []*dist.Discrete
	f     query.Function
	outer int
	inner int
	r     *rng.RNG
}

// NewMonteCarlo builds the estimator; outer/inner are the sample counts of
// the two loops.
func NewMonteCarlo(db *model.DB, f query.Function, outer, inner int, r *rng.RNG) (*MonteCarlo, error) {
	if db.Cov != nil {
		return nil, errors.New("ev: MonteCarlo requires independent values")
	}
	if outer <= 0 || inner <= 1 {
		return nil, fmt.Errorf("ev: need outer >= 1, inner >= 2; got %d/%d", outer, inner)
	}
	ds, err := db.Discretes()
	if err != nil {
		return nil, fmt.Errorf("ev: MonteCarlo: %w", err)
	}
	return &MonteCarlo{db: db, dists: ds, f: f, outer: outer, inner: inner, r: r}, nil
}

// EV returns the nested Monte-Carlo estimate of the objective. The inner
// variance uses the unbiased (n−1) estimator so the outer average is an
// unbiased estimate of EV(T).
func (m *MonteCarlo) EV(T model.Set) float64 {
	n := m.db.N()
	rest := T.Complement(n)
	x := make([]float64, n)
	var outerAcc numeric.Welford
	for o := 0; o < m.outer; o++ {
		for _, i := range T {
			x[i] = m.dists[i].Sample(m.r)
		}
		var innerAcc numeric.Welford
		for in := 0; in < m.inner; in++ {
			for _, i := range rest {
				x[i] = m.dists[i].Sample(m.r)
			}
			innerAcc.Add(m.f.Eval(x))
		}
		outerAcc.Add(innerAcc.SampleVar())
	}
	return outerAcc.Mean()
}
