package ev

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/factcheck/cleansel/internal/dist"
	"github.com/factcheck/cleansel/internal/model"
	"github.com/factcheck/cleansel/internal/numeric"
	"github.com/factcheck/cleansel/internal/obs"
	"github.com/factcheck/cleansel/internal/parallel"
	"github.com/factcheck/cleansel/internal/query"
)

// GroupEngine computes EV(T) exactly for query functions of the form
// f(X) = c + Σ_k g_k(X_{R_k}) over mutually independent discrete values —
// the structure of the bias/dup/frag claim-quality measures (Theorem 3.8).
//
// Under independence,
//
//	Var[f | X_T = t] = Σ_k Var[g_k | t] + 2·Σ_{k<l overlapping} Cov[g_k, g_l | t],
//
// and each term only involves the objects its claims reference, so the
// expectation over cleaning outcomes V_T factorizes per term/pair. The
// work per term is the product of the referenced supports (V^W and V^3W in
// the paper's notation), never the full joint.
type GroupEngine struct {
	db    *model.DB
	dists []*dist.Discrete
	g     *query.GroupSum

	terms []termInfo
	pairs []pairInfo

	varTerms [][]int // object id -> indices into terms
	varPairs [][]int // object id -> indices into pairs

	// Memoization for from-scratch EV calls: a term's contribution only
	// depends on which of ITS OWN variables are cleaned, so it is cached
	// by that local bitmask. Selectors that evaluate EV on many related
	// subsets (Best, OPT, the adaptive greedy) hit these caches heavily.
	// mu guards both caches: EV may be called from concurrent sweep
	// points, and cache misses are computed on the parallel worker pool.
	// Cached values are exact, so which goroutine fills an entry first
	// never changes a result.
	mu        sync.Mutex
	termCache []map[uint64]float64
	pairCache []map[uint64]float64

	// shared, when non-nil, is a second cache tier consulted after the
	// local one, keyed by term signatures so engines compiled from
	// different claims over the same database reuse each other's
	// enumerations (see SharedEVCache).
	shared *SharedEVCache
}

type termInfo struct {
	vars []int
	eval func([]float64) float64
	sig  string // canonical signature ("" = unshareable)
}

type pairInfo struct {
	k, l   int
	shared []int  // R_k ∩ R_l (non-empty)
	onlyK  []int  // R_k \ shared
	onlyL  []int  // R_l \ shared
	union  []int  // R_k ∪ R_l
	sig    string // ordered sig(k)+sig(l) ("" = unshareable)
}

// NewGroupEngine validates the model (independent, discrete) and indexes
// the term/pair structure.
func NewGroupEngine(db *model.DB, g *query.GroupSum) (*GroupEngine, error) {
	if db.Cov != nil {
		return nil, errors.New("ev: GroupEngine requires independent values")
	}
	ds, err := db.Discretes()
	if err != nil {
		return nil, fmt.Errorf("ev: GroupEngine: %w", err)
	}
	e := &GroupEngine{
		db:       db,
		dists:    ds,
		g:        g,
		varTerms: make([][]int, db.N()),
		varPairs: make([][]int, db.N()),
	}
	for _, t := range g.Terms {
		vars := append([]int(nil), t.Vars...)
		sort.Ints(vars)
		for i := 1; i < len(vars); i++ {
			if vars[i] == vars[i-1] {
				return nil, fmt.Errorf("ev: term references object %d twice", vars[i])
			}
		}
		for _, v := range vars {
			if v < 0 || v >= db.N() {
				return nil, fmt.Errorf("ev: term references unknown object %d", v)
			}
		}
		// Terms must receive values in their declared order; keep the
		// original order for evaluation but track sorted vars for set math.
		e.terms = append(e.terms, termInfo{vars: t.Vars, eval: t.Eval, sig: t.Sig})
	}
	// Index terms per object and find overlapping pairs.
	for k, t := range e.terms {
		for _, v := range t.vars {
			e.varTerms[v] = append(e.varTerms[v], k)
		}
	}
	seen := map[[2]int]bool{}
	for _, ks := range e.varTerms {
		for i := 0; i < len(ks); i++ {
			for j := i + 1; j < len(ks); j++ {
				key := [2]int{ks[i], ks[j]}
				if key[0] > key[1] {
					key[0], key[1] = key[1], key[0]
				}
				if seen[key] {
					continue
				}
				seen[key] = true
				e.pairs = append(e.pairs, e.buildPair(key[0], key[1]))
			}
		}
	}
	sort.Slice(e.pairs, func(i, j int) bool {
		if e.pairs[i].k != e.pairs[j].k {
			return e.pairs[i].k < e.pairs[j].k
		}
		return e.pairs[i].l < e.pairs[j].l
	})
	for pi, p := range e.pairs {
		for _, v := range p.union {
			e.varPairs[v] = append(e.varPairs[v], pi)
		}
	}
	e.termCache = make([]map[uint64]float64, len(e.terms))
	e.pairCache = make([]map[uint64]float64, len(e.pairs))
	return e, nil
}

// localMask packs which of vars are cleaned into a bitmask; ok is false
// when the term is too wide to cache (> 64 variables).
func localMask(vars []int, cleaned []bool) (uint64, bool) {
	if len(vars) > 64 {
		return 0, false
	}
	var m uint64
	for i, v := range vars {
		if cleaned[v] {
			m |= 1 << uint(i)
		}
	}
	return m, true
}

func (e *GroupEngine) buildPair(k, l int) pairInfo {
	inK := map[int]bool{}
	for _, v := range e.terms[k].vars {
		inK[v] = true
	}
	p := pairInfo{k: k, l: l}
	inShared := map[int]bool{}
	for _, v := range e.terms[l].vars {
		if inK[v] {
			p.shared = append(p.shared, v)
			inShared[v] = true
		}
	}
	for _, v := range e.terms[k].vars {
		if !inShared[v] {
			p.onlyK = append(p.onlyK, v)
		}
	}
	for _, v := range e.terms[l].vars {
		if !inShared[v] {
			p.onlyL = append(p.onlyL, v)
		}
	}
	p.union = append(p.union, p.shared...)
	p.union = append(p.union, p.onlyK...)
	p.union = append(p.union, p.onlyL...)
	sort.Ints(p.shared)
	sort.Ints(p.onlyK)
	sort.Ints(p.onlyL)
	sort.Ints(p.union)
	// Ordered, not sorted: pairEV groups its products around the k-side
	// term, so only a pair with the same (k,l) role assignment is
	// guaranteed the same float64 (see the SharedEVCache contract).
	if sk, sl := e.terms[k].sig, e.terms[l].sig; sk != "" && sl != "" {
		p.sig = sk + "\x1e" + sl
	}
	return p
}

// NumPairs returns the number of overlapping term pairs (0 when all claim
// windows are disjoint).
func (e *GroupEngine) NumPairs() int { return len(e.pairs) }

// evalTerm gathers the term's variable values from the scratch vector.
func (e *GroupEngine) evalTerm(k int, x, buf []float64) float64 {
	t := e.terms[k]
	buf = buf[:0]
	for _, v := range t.vars {
		buf = append(buf, x[v])
	}
	return t.eval(buf)
}

// split partitions vars into (cleaned, uncleaned) under the mask.
func split(vars []int, cleaned []bool) (in, out []int) {
	for _, v := range vars {
		if cleaned[v] {
			in = append(in, v)
		} else {
			out = append(out, v)
		}
	}
	return in, out
}

// termEV returns Σ_a Pr[a]·Var[g_k | X_{R_k∩T} = a] for term k given the
// cleaned mask, enumerating with the provided distributions.
func (e *GroupEngine) termEV(dists []*dist.Discrete, k int, cleaned []bool, x, buf []float64) float64 {
	a, b := split(e.terms[k].vars, cleaned)
	var acc numeric.KahanAcc
	enumerate(dists, a, x, func(pa float64) {
		var m1, m2 numeric.KahanAcc
		enumerate(dists, b, x, func(p float64) {
			v := e.evalTerm(k, x, buf)
			m1.Add(p * v)
			m2.Add(p * v * v)
		})
		mean := m1.Value()
		variance := m2.Value() - mean*mean
		if variance < 0 {
			variance = 0
		}
		acc.Add(pa * variance)
	})
	return acc.Value()
}

// pairEV returns Σ_a Pr[a]·Cov[g_k, g_l | X_{union∩T} = a] for an
// overlapping pair, exploiting that given the shared variables the two
// terms are conditionally independent:
//
//	E[g_k·g_l | a] = Σ_s Pr[s]·E[g_k | a,s]·E[g_l | a,s]
//
// where s ranges over the uncleaned shared variables.
func (e *GroupEngine) pairEV(dists []*dist.Discrete, pi int, cleaned []bool, x, buf []float64) float64 {
	p := e.pairs[pi]
	a, _ := split(p.union, cleaned)
	_, sharedU := split(p.shared, cleaned)
	_, bk := split(p.onlyK, cleaned)
	_, bl := split(p.onlyL, cleaned)
	var acc numeric.KahanAcc
	enumerate(dists, a, x, func(pa float64) {
		var ekl, ek, el numeric.KahanAcc
		enumerate(dists, sharedU, x, func(ps float64) {
			var mk, ml numeric.KahanAcc
			enumerate(dists, bk, x, func(pb float64) {
				mk.Add(pb * e.evalTerm(p.k, x, buf))
			})
			enumerate(dists, bl, x, func(pb float64) {
				ml.Add(pb * e.evalTerm(p.l, x, buf))
			})
			vk, vl := mk.Value(), ml.Value()
			ekl.Add(ps * vk * vl)
			ek.Add(ps * vk)
			el.Add(ps * vl)
		})
		cov := ekl.Value() - ek.Value()*el.Value()
		acc.Add(pa * cov)
	})
	return acc.Value()
}

// evScratch is the per-worker workspace of the parallel enumeration
// paths: an assignment vector, a support-index vector, the term
// evaluation buffer, and the per-object moment workspace of the
// singleton-benefit pass. Work items fully overwrite the slots they
// read, so reusing a workspace across items never changes a result.
type evScratch struct {
	x   []float64
	idx []int
	buf []float64
	// Flattened singleton-benefit workspace, indexed by object id:
	// conditional first/second moment rows (grown to the object's
	// support size on first use) and one Kahan accumulator per object.
	// These replace per-term map[int] allocations whose lookups sat in
	// the innermost per-state loop.
	m1, m2 [][]float64
	acc    []numeric.KahanAcc
}

func newEvScratch(n int) *evScratch {
	return &evScratch{
		x:   make([]float64, n),
		idx: make([]int, n),
		buf: make([]float64, 0, 32),
		m1:  make([][]float64, n),
		m2:  make([][]float64, n),
		acc: make([]numeric.KahanAcc, n),
	}
}

// momentRow returns row v of m grown to size. Contents are stale until
// overwritten — every caller zeroes or assigns before reading.
func momentRow(m [][]float64, v, size int) []float64 {
	if cap(m[v]) < size {
		m[v] = make([]float64, size)
	}
	m[v] = m[v][:size]
	return m[v]
}

// scratchPool lazily allocates one workspace per parallel worker. The
// pool is sized for the worker count at creation; each slot is owned
// by exactly one worker goroutine at a time.
type scratchPool struct {
	n int
	s []*evScratch
}

func newScratchPool(n int) *scratchPool {
	return &scratchPool{n: n, s: make([]*evScratch, parallel.Workers())}
}

func (p *scratchPool) get(worker int) *evScratch {
	if worker < 0 || worker >= len(p.s) {
		// The slot slice was sized for the worker count at pool
		// creation; a wider pool at execution time (CLEANSEL_WORKERS
		// re-read between construction and run, or a caller-supplied
		// wider pool) would index past it. Hand such a spill worker a
		// fresh unpooled workspace instead: growing p.s here would race
		// with the other workers, and scratch contents never affect
		// results, so the only cost is a lost reuse.
		return newEvScratch(p.n)
	}
	if p.s[worker] == nil {
		p.s[worker] = newEvScratch(p.n)
	}
	return p.s[worker]
}

// evMiss is one uncached term/pair contribution to an EV call.
type evMiss struct {
	i         int // term or pair index
	mask      uint64
	cacheable bool
}

// termValues returns every term's contribution for the cleaned mask,
// serving hits from the cache and computing misses on the worker pool.
func (e *GroupEngine) termValues(ctx context.Context, cleaned []bool) ([]float64, error) {
	vals := make([]float64, len(e.terms))
	var misses []evMiss
	e.mu.Lock()
	for k := range e.terms {
		mask, ok := localMask(e.terms[k].vars, cleaned)
		if ok {
			if v, hit := e.termCache[k][mask]; hit {
				vals[k] = v
				continue
			}
			misses = append(misses, evMiss{i: k, mask: mask, cacheable: true})
			continue
		}
		misses = append(misses, evMiss{i: k})
	}
	e.mu.Unlock()
	// Write-only trace ticks: the recorder never feeds back into the
	// computation, so recorded and unrecorded runs are bit-identical.
	if rec := obs.FromContext(ctx); rec != nil {
		rec.Add("ev_cache_hits", int64(len(e.terms)-len(misses)))
		rec.Add("ev_cache_misses", int64(len(misses)))
	}
	if len(misses) == 0 {
		return vals, nil
	}
	// Second tier: values another engine over the same database already
	// enumerated for a signature-identical term.
	compute := misses
	if e.shared != nil {
		sig := func(i int) string { return e.terms[i].sig }
		compute = e.shared.splitShared(e.shared.terms, misses, vals, sig)
		if rec := obs.FromContext(ctx); rec != nil {
			rec.Add("ev_shared_hits", int64(len(misses)-len(compute)))
			rec.Add("ev_shared_misses", int64(len(compute)))
		}
	}
	if len(compute) > 0 {
		pool := newScratchPool(e.db.N())
		if err := parallel.For(ctx, len(compute), func(worker, i int) error {
			sc := pool.get(worker)
			m := compute[i]
			vals[m.i] = e.termEV(e.dists, m.i, cleaned, sc.x, sc.buf)
			return nil
		}); err != nil {
			return nil, err
		}
	}
	e.mu.Lock()
	for _, m := range misses {
		if !m.cacheable {
			continue
		}
		if e.termCache[m.i] == nil {
			e.termCache[m.i] = make(map[uint64]float64)
		}
		e.termCache[m.i][m.mask] = vals[m.i]
	}
	e.mu.Unlock()
	if e.shared != nil && len(compute) > 0 {
		e.shared.publish(e.shared.terms, compute, vals, func(i int) string { return e.terms[i].sig })
	}
	return vals, nil
}

// pairValues is termValues for the overlapping-pair covariances.
func (e *GroupEngine) pairValues(ctx context.Context, cleaned []bool) ([]float64, error) {
	vals := make([]float64, len(e.pairs))
	var misses []evMiss
	e.mu.Lock()
	for pi := range e.pairs {
		mask, ok := localMask(e.pairs[pi].union, cleaned)
		if ok {
			if v, hit := e.pairCache[pi][mask]; hit {
				vals[pi] = v
				continue
			}
			misses = append(misses, evMiss{i: pi, mask: mask, cacheable: true})
			continue
		}
		misses = append(misses, evMiss{i: pi})
	}
	e.mu.Unlock()
	if rec := obs.FromContext(ctx); rec != nil && len(e.pairs) > 0 {
		rec.Add("ev_cache_hits", int64(len(e.pairs)-len(misses)))
		rec.Add("ev_cache_misses", int64(len(misses)))
	}
	if len(misses) == 0 {
		return vals, nil
	}
	compute := misses
	if e.shared != nil {
		sig := func(i int) string { return e.pairs[i].sig }
		compute = e.shared.splitShared(e.shared.pairs, misses, vals, sig)
		if rec := obs.FromContext(ctx); rec != nil {
			rec.Add("ev_shared_hits", int64(len(misses)-len(compute)))
			rec.Add("ev_shared_misses", int64(len(compute)))
		}
	}
	if len(compute) > 0 {
		pool := newScratchPool(e.db.N())
		if err := parallel.For(ctx, len(compute), func(worker, i int) error {
			sc := pool.get(worker)
			m := compute[i]
			vals[m.i] = e.pairEV(e.dists, m.i, cleaned, sc.x, sc.buf)
			return nil
		}); err != nil {
			return nil, err
		}
	}
	e.mu.Lock()
	for _, m := range misses {
		if !m.cacheable {
			continue
		}
		if e.pairCache[m.i] == nil {
			e.pairCache[m.i] = make(map[uint64]float64)
		}
		e.pairCache[m.i][m.mask] = vals[m.i]
	}
	e.mu.Unlock()
	if e.shared != nil && len(compute) > 0 {
		e.shared.publish(e.shared.pairs, compute, vals, func(i int) string { return e.pairs[i].sig })
	}
	return vals, nil
}

// EV computes the objective from scratch for the subset T, memoizing each
// term's contribution by the cleaned-mask restricted to its variables.
// Safe for concurrent use; uncached contributions are computed on the
// parallel worker pool.
func (e *GroupEngine) EV(T model.Set) float64 {
	v, err := e.EVCtx(context.Background(), T)
	if err != nil {
		// Background is never cancelled and no other error exists on
		// this path; keep the legacy no-error signature honest.
		panic(err)
	}
	return v
}

// EVCtx is EV with cooperative cancellation: it returns the context's
// error as soon as the current term/pair contribution finishes. The
// summation order is fixed (terms ascending, then pairs ascending), so
// the value is bit-identical for every worker count.
func (e *GroupEngine) EVCtx(ctx context.Context, T model.Set) (float64, error) {
	obs.FromContext(ctx).Add("ev_calls", 1)
	cleaned := make([]bool, e.db.N())
	for _, i := range T {
		cleaned[i] = true
	}
	termVals, err := e.termValues(ctx, cleaned)
	if err != nil {
		return 0, err
	}
	pairVals, err := e.pairValues(ctx, cleaned)
	if err != nil {
		return 0, err
	}
	var acc numeric.KahanAcc
	for _, v := range termVals {
		acc.Add(v)
	}
	for _, v := range pairVals {
		acc.Add(2 * v)
	}
	v := acc.Value()
	if v < 0 {
		v = 0
	}
	return v, nil
}

// Variance returns EV(∅) = Var[f(X)].
func (e *GroupEngine) Variance() float64 { return e.EV(nil) }

// CondMoments returns the conditional mean and variance of f(X) given
// X_i = values[i] for every i with known[i] — the posterior a fact-checker
// holds after cleaning reveals true values (used by the §4.3 "in action"
// experiments). The conditioning is implemented by substituting point
// masses for the known objects.
func (e *GroupEngine) CondMoments(values []float64, known []bool) (mean, variance float64) {
	ds := make([]*dist.Discrete, len(e.dists))
	copy(ds, e.dists)
	for i, k := range known {
		if k {
			ds[i] = dist.PointMass(values[i])
		}
	}
	x := make([]float64, e.db.N())
	buf := make([]float64, 0, 32)
	noClean := make([]bool, e.db.N())
	var mAcc, vAcc numeric.KahanAcc
	mAcc.Add(e.g.Const)
	for k := range e.terms {
		var m1 numeric.KahanAcc
		enumerate(ds, e.terms[k].vars, x, func(p float64) {
			m1.Add(p * e.evalTerm(k, x, buf))
		})
		mAcc.Add(m1.Value())
		vAcc.Add(e.termEV(ds, k, noClean, x, buf))
	}
	for pi := range e.pairs {
		vAcc.Add(2 * e.pairEV(ds, pi, noClean, x, buf))
	}
	variance = vAcc.Value()
	if variance < 0 {
		variance = 0
	}
	return mAcc.Value(), variance
}

// State tracks EV(T) incrementally while a greedy algorithm grows T.
// Cleaning an object only dirties the terms and pairs that reference it,
// so deltas cost work proportional to the object's local claim structure
// rather than the whole query.
type State struct {
	e       *GroupEngine
	cleaned []bool
	termEV  []float64
	pairEV  []float64
	total   float64
	x       []float64
	buf     []float64
}

// NewState returns the incremental state at T = ∅.
func (e *GroupEngine) NewState() *State {
	s, err := e.NewStateCtx(context.Background())
	if err != nil {
		panic(err) // Background is never cancelled; no other error exists
	}
	return s
}

// NewStateCtx builds the incremental state at T = ∅, computing the
// initial per-term variances and per-pair covariances on the parallel
// worker pool. The reduction runs in index order, so the state is
// bit-identical for every worker count.
func (e *GroupEngine) NewStateCtx(ctx context.Context) (*State, error) {
	defer obs.FromContext(ctx).Span("ev_state_init")()
	s := &State{
		e:       e,
		cleaned: make([]bool, e.db.N()),
		x:       make([]float64, e.db.N()),
		buf:     make([]float64, 0, 32),
	}
	pool := newScratchPool(e.db.N())
	termEV, err := parallel.Map(ctx, len(e.terms), func(worker, k int) (float64, error) {
		sc := pool.get(worker)
		return e.termEV(e.dists, k, s.cleaned, sc.x, sc.buf), nil
	})
	if err != nil {
		return nil, err
	}
	pairEV, err := parallel.Map(ctx, len(e.pairs), func(worker, pi int) (float64, error) {
		sc := pool.get(worker)
		return e.pairEV(e.dists, pi, s.cleaned, sc.x, sc.buf), nil
	})
	if err != nil {
		return nil, err
	}
	s.termEV, s.pairEV = termEV, pairEV
	var acc numeric.KahanAcc
	for k := range s.termEV {
		acc.Add(s.termEV[k])
	}
	for pi := range s.pairEV {
		acc.Add(2 * s.pairEV[pi])
	}
	s.total = acc.Value()
	return s, nil
}

// EV returns the current objective value EV(T).
func (s *State) EV() float64 {
	if s.total < 0 {
		return 0
	}
	return s.total
}

// Cleaned reports whether object o is already in T.
func (s *State) Cleaned(o int) bool { return s.cleaned[o] }

// Delta returns EV(T ∪ {o}) − EV(T) without committing (≤ 0 by
// Lemma 3.4). Cleaning an already-cleaned object has delta 0.
func (s *State) Delta(o int) float64 {
	if s.cleaned[o] {
		return 0
	}
	delta, _, _ := s.recompute(o)
	return delta
}

// Clean commits object o into T and returns the achieved delta.
func (s *State) Clean(o int) float64 {
	if s.cleaned[o] {
		return 0
	}
	delta, termNew, pairNew := s.recompute(o)
	s.cleaned[o] = true
	for k, v := range termNew {
		s.termEV[k] = v
	}
	for pi, v := range pairNew {
		s.pairEV[pi] = v
	}
	s.total += delta
	return delta
}

// recompute evaluates the dirty terms/pairs with o tentatively cleaned.
func (s *State) recompute(o int) (delta float64, termNew map[int]float64, pairNew map[int]float64) {
	s.cleaned[o] = true
	termNew = make(map[int]float64, len(s.e.varTerms[o]))
	pairNew = make(map[int]float64, len(s.e.varPairs[o]))
	var acc numeric.KahanAcc
	for _, k := range s.e.varTerms[o] {
		nv := s.e.termEV(s.e.dists, k, s.cleaned, s.x, s.buf)
		termNew[k] = nv
		acc.Add(nv - s.termEV[k])
	}
	for _, pi := range s.e.varPairs[o] {
		nv := s.e.pairEV(s.e.dists, pi, s.cleaned, s.x, s.buf)
		pairNew[pi] = nv
		acc.Add(2 * (nv - s.pairEV[pi]))
	}
	s.cleaned[o] = false
	return acc.Value(), termNew, pairNew
}

// enumerateIdx is enumerate plus support-index tracking: idx[v] holds the
// current support position of each enumerated var when visit runs.
func enumerateIdx(dists []*dist.Discrete, vars []int, x []float64, idx []int, visit func(p float64)) {
	var rec func(i int, p float64)
	rec = func(i int, p float64) {
		if i == len(vars) {
			visit(p)
			return
		}
		d := dists[vars[i]]
		for j, v := range d.Values {
			x[vars[i]] = v
			idx[vars[i]] = j
			rec(i+1, p*d.Probs[j])
		}
	}
	rec(0, 1)
}

// SingletonBenefits returns, for every object o, the benefit
// EV(T) − EV(T ∪ {o}) of cleaning it next (0 for objects already in T).
// It computes all term contributions in a single enumeration pass per term
// — grouping the joint sweep by each candidate variable's value — which is
// a factor-W speedup over calling Delta per object and the reason large
// Figure-10 instances initialize in seconds.
func (s *State) SingletonBenefits() []float64 {
	b, err := s.SingletonBenefitsCtx(context.Background())
	if err != nil {
		panic(err) // Background is never cancelled; no other error exists
	}
	return b
}

// termContrib is one term's benefit contribution: deltas[j] is the
// expected-variance drop cleaning vars[j] would cause in this term.
type termContrib struct {
	vars   []int
	deltas []float64
}

// SingletonBenefitsCtx is SingletonBenefits with the per-term passes
// fanned out over the parallel worker pool and cooperative
// cancellation between work items. Contributions are reduced in term
// order (and within a term in declaration order), exactly as the
// sequential loop accumulates them, so the result is bit-identical
// for every worker count.
func (s *State) SingletonBenefitsCtx(ctx context.Context) ([]float64, error) {
	defer obs.FromContext(ctx).Span("singleton_benefits")()
	e := s.e
	n := e.db.N()
	benefits := make([]float64, n)
	pool := newScratchPool(n)
	// Term contributions, one pass per term.
	contribs, err := parallel.Map(ctx, len(e.terms), func(worker, k int) (termContrib, error) {
		a, b := split(e.terms[k].vars, s.cleaned)
		if len(b) == 0 {
			return termContrib{}, nil // fully cleaned term: no one can improve it
		}
		sc := pool.get(worker)
		// evAfter[v] accumulates Σ_a p_a Σ_val p_val·Var[g | a, X_v=val].
		// The accumulators and moment rows live flat on the worker
		// scratch, indexed by object id: the loops below run in the
		// same order with the same fp operands as the map-keyed
		// original, they just skip the hashing.
		evAfter := sc.acc
		for _, v := range b {
			evAfter[v] = numeric.KahanAcc{}
		}
		m1, m2 := sc.m1, sc.m2
		for _, v := range b {
			momentRow(m1, v, e.dists[v].Size())
			momentRow(m2, v, e.dists[v].Size())
		}
		enumerate(e.dists, a, sc.x, func(pa float64) {
			for _, v := range b {
				r1, r2 := m1[v], m2[v]
				for j := range r1 {
					r1[j] = 0
					r2[j] = 0
				}
			}
			enumerateIdx(e.dists, b, sc.x, sc.idx, func(pb float64) {
				g := e.evalTerm(k, sc.x, sc.buf)
				for _, v := range b {
					j := sc.idx[v]
					m1[v][j] += pb * g
					m2[v][j] += pb * g * g
				}
			})
			for _, v := range b {
				d := e.dists[v]
				r1, r2 := m1[v], m2[v]
				for j, pv := range d.Probs {
					if pv == 0 {
						continue
					}
					mean := r1[j] / pv
					variance := r2[j]/pv - mean*mean
					if variance < 0 {
						variance = 0
					}
					evAfter[v].Add(pa * pv * variance)
				}
			}
		})
		deltas := make([]float64, len(b))
		for j, v := range b {
			deltas[j] = s.termEV[k] - evAfter[v].Value()
		}
		return termContrib{vars: b, deltas: deltas}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, c := range contribs {
		for j, v := range c.vars {
			benefits[v] += c.deltas[j]
		}
	}
	// Pair contributions: recompute per object, but only objects in
	// pairs. This pass flips s.cleaned in place, so it stays sequential
	// (pair structure is sparse; the term passes above dominate).
	if len(e.pairs) > 0 {
		seen := map[int]bool{}
		for _, p := range e.pairs {
			for _, v := range p.union {
				if seen[v] || s.cleaned[v] {
					continue
				}
				if err := ctx.Err(); err != nil {
					return nil, context.Cause(ctx)
				}
				seen[v] = true
				s.cleaned[v] = true
				for _, pi := range e.varPairs[v] {
					nv := e.pairEV(e.dists, pi, s.cleaned, s.x, s.buf)
					benefits[v] += 2 * (s.pairEV[pi] - nv)
				}
				s.cleaned[v] = false
			}
		}
	}
	for i := range benefits {
		if s.cleaned[i] || benefits[i] < 0 {
			benefits[i] = 0
		}
	}
	return benefits, nil
}

// Affected returns the object IDs (other than o itself) whose Delta may
// change when o is cleaned: every object sharing a term or an overlapping
// pair with o. Lazy-greedy selectors use it to invalidate cached benefits.
func (s *State) Affected(o int) []int {
	seen := map[int]struct{}{}
	for _, k := range s.e.varTerms[o] {
		for _, v := range s.e.terms[k].vars {
			seen[v] = struct{}{}
		}
	}
	for _, pi := range s.e.varPairs[o] {
		for _, v := range s.e.pairs[pi].union {
			seen[v] = struct{}{}
		}
	}
	delete(seen, o)
	out := make([]int, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}
