package ev

import (
	"errors"
	"fmt"
	"sort"

	"github.com/factcheck/cleansel/internal/dist"
	"github.com/factcheck/cleansel/internal/model"
	"github.com/factcheck/cleansel/internal/numeric"
	"github.com/factcheck/cleansel/internal/query"
)

// GroupEngine computes EV(T) exactly for query functions of the form
// f(X) = c + Σ_k g_k(X_{R_k}) over mutually independent discrete values —
// the structure of the bias/dup/frag claim-quality measures (Theorem 3.8).
//
// Under independence,
//
//	Var[f | X_T = t] = Σ_k Var[g_k | t] + 2·Σ_{k<l overlapping} Cov[g_k, g_l | t],
//
// and each term only involves the objects its claims reference, so the
// expectation over cleaning outcomes V_T factorizes per term/pair. The
// work per term is the product of the referenced supports (V^W and V^3W in
// the paper's notation), never the full joint.
type GroupEngine struct {
	db    *model.DB
	dists []*dist.Discrete
	g     *query.GroupSum

	terms []termInfo
	pairs []pairInfo

	varTerms [][]int // object id -> indices into terms
	varPairs [][]int // object id -> indices into pairs

	// Memoization for from-scratch EV calls: a term's contribution only
	// depends on which of ITS OWN variables are cleaned, so it is cached
	// by that local bitmask. Selectors that evaluate EV on many related
	// subsets (Best, OPT, the adaptive greedy) hit these caches heavily.
	termCache []map[uint64]float64
	pairCache []map[uint64]float64
}

type termInfo struct {
	vars []int
	eval func([]float64) float64
}

type pairInfo struct {
	k, l   int
	shared []int // R_k ∩ R_l (non-empty)
	onlyK  []int // R_k \ shared
	onlyL  []int // R_l \ shared
	union  []int // R_k ∪ R_l
}

// NewGroupEngine validates the model (independent, discrete) and indexes
// the term/pair structure.
func NewGroupEngine(db *model.DB, g *query.GroupSum) (*GroupEngine, error) {
	if db.Cov != nil {
		return nil, errors.New("ev: GroupEngine requires independent values")
	}
	ds, err := db.Discretes()
	if err != nil {
		return nil, fmt.Errorf("ev: GroupEngine: %w", err)
	}
	e := &GroupEngine{
		db:       db,
		dists:    ds,
		g:        g,
		varTerms: make([][]int, db.N()),
		varPairs: make([][]int, db.N()),
	}
	for _, t := range g.Terms {
		vars := append([]int(nil), t.Vars...)
		sort.Ints(vars)
		for i := 1; i < len(vars); i++ {
			if vars[i] == vars[i-1] {
				return nil, fmt.Errorf("ev: term references object %d twice", vars[i])
			}
		}
		for _, v := range vars {
			if v < 0 || v >= db.N() {
				return nil, fmt.Errorf("ev: term references unknown object %d", v)
			}
		}
		// Terms must receive values in their declared order; keep the
		// original order for evaluation but track sorted vars for set math.
		e.terms = append(e.terms, termInfo{vars: t.Vars, eval: t.Eval})
	}
	// Index terms per object and find overlapping pairs.
	for k, t := range e.terms {
		for _, v := range t.vars {
			e.varTerms[v] = append(e.varTerms[v], k)
		}
	}
	seen := map[[2]int]bool{}
	for _, ks := range e.varTerms {
		for i := 0; i < len(ks); i++ {
			for j := i + 1; j < len(ks); j++ {
				key := [2]int{ks[i], ks[j]}
				if key[0] > key[1] {
					key[0], key[1] = key[1], key[0]
				}
				if seen[key] {
					continue
				}
				seen[key] = true
				e.pairs = append(e.pairs, e.buildPair(key[0], key[1]))
			}
		}
	}
	sort.Slice(e.pairs, func(i, j int) bool {
		if e.pairs[i].k != e.pairs[j].k {
			return e.pairs[i].k < e.pairs[j].k
		}
		return e.pairs[i].l < e.pairs[j].l
	})
	for pi, p := range e.pairs {
		for _, v := range p.union {
			e.varPairs[v] = append(e.varPairs[v], pi)
		}
	}
	e.termCache = make([]map[uint64]float64, len(e.terms))
	e.pairCache = make([]map[uint64]float64, len(e.pairs))
	return e, nil
}

// localMask packs which of vars are cleaned into a bitmask; ok is false
// when the term is too wide to cache (> 64 variables).
func localMask(vars []int, cleaned []bool) (uint64, bool) {
	if len(vars) > 64 {
		return 0, false
	}
	var m uint64
	for i, v := range vars {
		if cleaned[v] {
			m |= 1 << uint(i)
		}
	}
	return m, true
}

func (e *GroupEngine) buildPair(k, l int) pairInfo {
	inK := map[int]bool{}
	for _, v := range e.terms[k].vars {
		inK[v] = true
	}
	p := pairInfo{k: k, l: l}
	inShared := map[int]bool{}
	for _, v := range e.terms[l].vars {
		if inK[v] {
			p.shared = append(p.shared, v)
			inShared[v] = true
		}
	}
	for _, v := range e.terms[k].vars {
		if !inShared[v] {
			p.onlyK = append(p.onlyK, v)
		}
	}
	for _, v := range e.terms[l].vars {
		if !inShared[v] {
			p.onlyL = append(p.onlyL, v)
		}
	}
	p.union = append(p.union, p.shared...)
	p.union = append(p.union, p.onlyK...)
	p.union = append(p.union, p.onlyL...)
	sort.Ints(p.shared)
	sort.Ints(p.onlyK)
	sort.Ints(p.onlyL)
	sort.Ints(p.union)
	return p
}

// NumPairs returns the number of overlapping term pairs (0 when all claim
// windows are disjoint).
func (e *GroupEngine) NumPairs() int { return len(e.pairs) }

// evalTerm gathers the term's variable values from the scratch vector.
func (e *GroupEngine) evalTerm(k int, x, buf []float64) float64 {
	t := e.terms[k]
	buf = buf[:0]
	for _, v := range t.vars {
		buf = append(buf, x[v])
	}
	return t.eval(buf)
}

// split partitions vars into (cleaned, uncleaned) under the mask.
func split(vars []int, cleaned []bool) (in, out []int) {
	for _, v := range vars {
		if cleaned[v] {
			in = append(in, v)
		} else {
			out = append(out, v)
		}
	}
	return in, out
}

// termEV returns Σ_a Pr[a]·Var[g_k | X_{R_k∩T} = a] for term k given the
// cleaned mask, enumerating with the provided distributions.
func (e *GroupEngine) termEV(dists []*dist.Discrete, k int, cleaned []bool, x, buf []float64) float64 {
	a, b := split(e.terms[k].vars, cleaned)
	var acc numeric.KahanAcc
	enumerate(dists, a, x, func(pa float64) {
		var m1, m2 numeric.KahanAcc
		enumerate(dists, b, x, func(p float64) {
			v := e.evalTerm(k, x, buf)
			m1.Add(p * v)
			m2.Add(p * v * v)
		})
		mean := m1.Value()
		variance := m2.Value() - mean*mean
		if variance < 0 {
			variance = 0
		}
		acc.Add(pa * variance)
	})
	return acc.Value()
}

// pairEV returns Σ_a Pr[a]·Cov[g_k, g_l | X_{union∩T} = a] for an
// overlapping pair, exploiting that given the shared variables the two
// terms are conditionally independent:
//
//	E[g_k·g_l | a] = Σ_s Pr[s]·E[g_k | a,s]·E[g_l | a,s]
//
// where s ranges over the uncleaned shared variables.
func (e *GroupEngine) pairEV(dists []*dist.Discrete, pi int, cleaned []bool, x, buf []float64) float64 {
	p := e.pairs[pi]
	a, _ := split(p.union, cleaned)
	_, sharedU := split(p.shared, cleaned)
	_, bk := split(p.onlyK, cleaned)
	_, bl := split(p.onlyL, cleaned)
	var acc numeric.KahanAcc
	enumerate(dists, a, x, func(pa float64) {
		var ekl, ek, el numeric.KahanAcc
		enumerate(dists, sharedU, x, func(ps float64) {
			var mk, ml numeric.KahanAcc
			enumerate(dists, bk, x, func(pb float64) {
				mk.Add(pb * e.evalTerm(p.k, x, buf))
			})
			enumerate(dists, bl, x, func(pb float64) {
				ml.Add(pb * e.evalTerm(p.l, x, buf))
			})
			vk, vl := mk.Value(), ml.Value()
			ekl.Add(ps * vk * vl)
			ek.Add(ps * vk)
			el.Add(ps * vl)
		})
		cov := ekl.Value() - ek.Value()*el.Value()
		acc.Add(pa * cov)
	})
	return acc.Value()
}

// EV computes the objective from scratch for the subset T, memoizing each
// term's contribution by the cleaned-mask restricted to its variables.
func (e *GroupEngine) EV(T model.Set) float64 {
	cleaned := make([]bool, e.db.N())
	for _, i := range T {
		cleaned[i] = true
	}
	x := make([]float64, e.db.N())
	buf := make([]float64, 0, 32)
	var acc numeric.KahanAcc
	for k := range e.terms {
		mask, ok := localMask(e.terms[k].vars, cleaned)
		if ok {
			if e.termCache[k] == nil {
				e.termCache[k] = make(map[uint64]float64)
			}
			if v, hit := e.termCache[k][mask]; hit {
				acc.Add(v)
				continue
			}
			v := e.termEV(e.dists, k, cleaned, x, buf)
			e.termCache[k][mask] = v
			acc.Add(v)
			continue
		}
		acc.Add(e.termEV(e.dists, k, cleaned, x, buf))
	}
	for pi := range e.pairs {
		mask, ok := localMask(e.pairs[pi].union, cleaned)
		if ok {
			if e.pairCache[pi] == nil {
				e.pairCache[pi] = make(map[uint64]float64)
			}
			if v, hit := e.pairCache[pi][mask]; hit {
				acc.Add(2 * v)
				continue
			}
			v := e.pairEV(e.dists, pi, cleaned, x, buf)
			e.pairCache[pi][mask] = v
			acc.Add(2 * v)
			continue
		}
		acc.Add(2 * e.pairEV(e.dists, pi, cleaned, x, buf))
	}
	v := acc.Value()
	if v < 0 {
		v = 0
	}
	return v
}

// Variance returns EV(∅) = Var[f(X)].
func (e *GroupEngine) Variance() float64 { return e.EV(nil) }

// CondMoments returns the conditional mean and variance of f(X) given
// X_i = values[i] for every i with known[i] — the posterior a fact-checker
// holds after cleaning reveals true values (used by the §4.3 "in action"
// experiments). The conditioning is implemented by substituting point
// masses for the known objects.
func (e *GroupEngine) CondMoments(values []float64, known []bool) (mean, variance float64) {
	ds := make([]*dist.Discrete, len(e.dists))
	copy(ds, e.dists)
	for i, k := range known {
		if k {
			ds[i] = dist.PointMass(values[i])
		}
	}
	x := make([]float64, e.db.N())
	buf := make([]float64, 0, 32)
	noClean := make([]bool, e.db.N())
	var mAcc, vAcc numeric.KahanAcc
	mAcc.Add(e.g.Const)
	for k := range e.terms {
		var m1 numeric.KahanAcc
		enumerate(ds, e.terms[k].vars, x, func(p float64) {
			m1.Add(p * e.evalTerm(k, x, buf))
		})
		mAcc.Add(m1.Value())
		vAcc.Add(e.termEV(ds, k, noClean, x, buf))
	}
	for pi := range e.pairs {
		vAcc.Add(2 * e.pairEV(ds, pi, noClean, x, buf))
	}
	variance = vAcc.Value()
	if variance < 0 {
		variance = 0
	}
	return mAcc.Value(), variance
}

// State tracks EV(T) incrementally while a greedy algorithm grows T.
// Cleaning an object only dirties the terms and pairs that reference it,
// so deltas cost work proportional to the object's local claim structure
// rather than the whole query.
type State struct {
	e       *GroupEngine
	cleaned []bool
	termEV  []float64
	pairEV  []float64
	total   float64
	x       []float64
	buf     []float64
}

// NewState returns the incremental state at T = ∅.
func (e *GroupEngine) NewState() *State {
	s := &State{
		e:       e,
		cleaned: make([]bool, e.db.N()),
		termEV:  make([]float64, len(e.terms)),
		pairEV:  make([]float64, len(e.pairs)),
		x:       make([]float64, e.db.N()),
		buf:     make([]float64, 0, 32),
	}
	var acc numeric.KahanAcc
	for k := range e.terms {
		s.termEV[k] = e.termEV(e.dists, k, s.cleaned, s.x, s.buf)
		acc.Add(s.termEV[k])
	}
	for pi := range e.pairs {
		s.pairEV[pi] = e.pairEV(e.dists, pi, s.cleaned, s.x, s.buf)
		acc.Add(2 * s.pairEV[pi])
	}
	s.total = acc.Value()
	return s
}

// EV returns the current objective value EV(T).
func (s *State) EV() float64 {
	if s.total < 0 {
		return 0
	}
	return s.total
}

// Cleaned reports whether object o is already in T.
func (s *State) Cleaned(o int) bool { return s.cleaned[o] }

// Delta returns EV(T ∪ {o}) − EV(T) without committing (≤ 0 by
// Lemma 3.4). Cleaning an already-cleaned object has delta 0.
func (s *State) Delta(o int) float64 {
	if s.cleaned[o] {
		return 0
	}
	delta, _, _ := s.recompute(o)
	return delta
}

// Clean commits object o into T and returns the achieved delta.
func (s *State) Clean(o int) float64 {
	if s.cleaned[o] {
		return 0
	}
	delta, termNew, pairNew := s.recompute(o)
	s.cleaned[o] = true
	for k, v := range termNew {
		s.termEV[k] = v
	}
	for pi, v := range pairNew {
		s.pairEV[pi] = v
	}
	s.total += delta
	return delta
}

// recompute evaluates the dirty terms/pairs with o tentatively cleaned.
func (s *State) recompute(o int) (delta float64, termNew map[int]float64, pairNew map[int]float64) {
	s.cleaned[o] = true
	termNew = make(map[int]float64, len(s.e.varTerms[o]))
	pairNew = make(map[int]float64, len(s.e.varPairs[o]))
	var acc numeric.KahanAcc
	for _, k := range s.e.varTerms[o] {
		nv := s.e.termEV(s.e.dists, k, s.cleaned, s.x, s.buf)
		termNew[k] = nv
		acc.Add(nv - s.termEV[k])
	}
	for _, pi := range s.e.varPairs[o] {
		nv := s.e.pairEV(s.e.dists, pi, s.cleaned, s.x, s.buf)
		pairNew[pi] = nv
		acc.Add(2 * (nv - s.pairEV[pi]))
	}
	s.cleaned[o] = false
	return acc.Value(), termNew, pairNew
}

// enumerateIdx is enumerate plus support-index tracking: idx[v] holds the
// current support position of each enumerated var when visit runs.
func enumerateIdx(dists []*dist.Discrete, vars []int, x []float64, idx []int, visit func(p float64)) {
	var rec func(i int, p float64)
	rec = func(i int, p float64) {
		if i == len(vars) {
			visit(p)
			return
		}
		d := dists[vars[i]]
		for j, v := range d.Values {
			x[vars[i]] = v
			idx[vars[i]] = j
			rec(i+1, p*d.Probs[j])
		}
	}
	rec(0, 1)
}

// SingletonBenefits returns, for every object o, the benefit
// EV(T) − EV(T ∪ {o}) of cleaning it next (0 for objects already in T).
// It computes all term contributions in a single enumeration pass per term
// — grouping the joint sweep by each candidate variable's value — which is
// a factor-W speedup over calling Delta per object and the reason large
// Figure-10 instances initialize in seconds.
func (s *State) SingletonBenefits() []float64 {
	e := s.e
	n := e.db.N()
	benefits := make([]float64, n)
	idx := make([]int, n)
	// Term contributions, one pass per term.
	for k := range e.terms {
		a, b := split(e.terms[k].vars, s.cleaned)
		if len(b) == 0 {
			continue // fully cleaned term: no one can improve it
		}
		// evAfter[v] accumulates Σ_a p_a Σ_val p_val·Var[g | a, X_v=val].
		evAfter := map[int]*numeric.KahanAcc{}
		for _, v := range b {
			evAfter[v] = &numeric.KahanAcc{}
		}
		m1 := map[int][]float64{}
		m2 := map[int][]float64{}
		for _, v := range b {
			m1[v] = make([]float64, e.dists[v].Size())
			m2[v] = make([]float64, e.dists[v].Size())
		}
		enumerate(e.dists, a, s.x, func(pa float64) {
			for _, v := range b {
				for j := range m1[v] {
					m1[v][j] = 0
					m2[v][j] = 0
				}
			}
			enumerateIdx(e.dists, b, s.x, idx, func(pb float64) {
				g := e.evalTerm(k, s.x, s.buf)
				for _, v := range b {
					j := idx[v]
					m1[v][j] += pb * g
					m2[v][j] += pb * g * g
				}
			})
			for _, v := range b {
				d := e.dists[v]
				for j, pv := range d.Probs {
					if pv == 0 {
						continue
					}
					mean := m1[v][j] / pv
					variance := m2[v][j]/pv - mean*mean
					if variance < 0 {
						variance = 0
					}
					evAfter[v].Add(pa * pv * variance)
				}
			}
		})
		for _, v := range b {
			benefits[v] += s.termEV[k] - evAfter[v].Value()
		}
	}
	// Pair contributions: recompute per object, but only objects in pairs.
	if len(e.pairs) > 0 {
		seen := map[int]bool{}
		for _, p := range e.pairs {
			for _, v := range p.union {
				if seen[v] || s.cleaned[v] {
					continue
				}
				seen[v] = true
				s.cleaned[v] = true
				for _, pi := range e.varPairs[v] {
					nv := e.pairEV(e.dists, pi, s.cleaned, s.x, s.buf)
					benefits[v] += 2 * (s.pairEV[pi] - nv)
				}
				s.cleaned[v] = false
			}
		}
	}
	for i := range benefits {
		if s.cleaned[i] || benefits[i] < 0 {
			benefits[i] = 0
		}
	}
	return benefits
}

// Affected returns the object IDs (other than o itself) whose Delta may
// change when o is cleaned: every object sharing a term or an overlapping
// pair with o. Lazy-greedy selectors use it to invalidate cached benefits.
func (s *State) Affected(o int) []int {
	seen := map[int]struct{}{}
	for _, k := range s.e.varTerms[o] {
		for _, v := range s.e.terms[k].vars {
			seen[v] = struct{}{}
		}
	}
	for _, pi := range s.e.varPairs[o] {
		for _, v := range s.e.pairs[pi].union {
			seen[v] = struct{}{}
		}
	}
	delete(seen, o)
	out := make([]int, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}
