package ev

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"github.com/factcheck/cleansel/internal/dist"
	"github.com/factcheck/cleansel/internal/model"
	"github.com/factcheck/cleansel/internal/numeric"
	"github.com/factcheck/cleansel/internal/query"
)

// Entropy computes the *entropy*-based analogue of EV(T),
//
//	EH(T) = Σ_v Pr[X_T = v] · H(f(X) | X_T = v),
//
// the uncertainty measure behind PWS-quality-style cleaning objectives
// (§5 related work: Cheng et al.). The paper argues expected variance
// suits fact-checking better because the *magnitude* of the deviation
// matters for numeric claims, while entropy only counts outcome spread;
// this engine exists so that claim can be tested rather than asserted —
// see the divergence test and the ablation bench.
//
// Entropy has no Theorem 3.8-style decomposition (it is not additive over
// independent summands), so the engine enumerates the joint support of
// the referenced objects. Use it on small workloads.
type Entropy struct {
	db    *model.DB
	dists []*dist.Discrete
	f     query.Function
	vars  []int
}

// NewEntropy builds the engine for independent discrete values.
func NewEntropy(db *model.DB, f query.Function) (*Entropy, error) {
	if db.Cov != nil {
		return nil, errors.New("ev: Entropy requires independent values")
	}
	ds, err := db.Discretes()
	if err != nil {
		return nil, fmt.Errorf("ev: Entropy: %w", err)
	}
	return &Entropy{db: db, dists: ds, f: f, vars: f.Vars()}, nil
}

// maxEntropyStates bounds the buffered one-pass pmf accumulation: a
// conditional support up to 2^20 states (16 MiB of pooled scratch)
// buffers every (outcome, probability) pair from a single enumeration;
// anything larger takes the legacy two-pass route, which never
// materializes the product state space.
const maxEntropyStates = 1 << 20

// entropyScratch buffers the outcome stream of one conditional pmf so a
// single enumeration can both size the pooling grid and accumulate the
// distribution. Pooled across EV calls; every slot is appended fresh
// before it is read.
type entropyScratch struct {
	vals, probs []float64
}

var entropyScratchPool = sync.Pool{New: func() any { return new(entropyScratch) }}

// EV implements Engine with the entropy objective (the name keeps the
// Engine interface; the unit is nats, not variance).
func (e *Entropy) EV(T model.Set) float64 {
	return e.ev(T, maxEntropyStates)
}

// ev is EV with the buffered-path threshold injected so tests can force
// the legacy two-pass route (maxStates 0) and pin the two bit-identical.
func (e *Entropy) ev(T model.Set, maxStates int) float64 {
	inT := make([]bool, e.db.N())
	for _, i := range T {
		inT[i] = true
	}
	var cleanVars, freeVars []int
	for _, v := range e.vars {
		if inT[v] {
			cleanVars = append(cleanVars, v)
		} else {
			freeVars = append(freeVars, v)
		}
	}
	// Conditional support size, saturating past the buffer cap.
	states := 1
	for _, v := range freeVars {
		size := e.dists[v].Size()
		if size > 0 && states > maxStates/size {
			states = maxStates + 1
			break
		}
		states *= size
	}
	var sc *entropyScratch
	if states <= maxStates {
		sc = entropyScratchPool.Get().(*entropyScratch)
		defer entropyScratchPool.Put(sc)
	}
	x := make([]float64, e.db.N())
	var acc numeric.KahanAcc
	enumerate(e.dists, cleanVars, x, func(pT float64) {
		// Conditional distribution of f over the free variables. The
		// pooling grid must be sized to the magnitude f actually
		// reaches (the same scale-aware quantization dist.WeightedSum
		// convolves on; for |f| ≤ numeric.QuantizeMaxAbs the grid — and
		// therefore the entropy — is bit-identical to the legacy fixed
		// 1e-9 keys), so the reach has to be known before pooling.
		var h float64
		if sc != nil {
			// One-pass route: buffer every (outcome, probability) pair
			// from a single enumeration — halving the f.Eval calls —
			// then take the reach from the buffer (same comparison
			// sequence as the legacy scan) and pool through the shared
			// dense-or-map kernel. Bit-identical to the two-pass route
			// below: same outcomes, same accumulation order, same
			// ascending-key traversal.
			vals, probs := sc.vals[:0], sc.probs[:0]
			enumerate(e.dists, freeVars, x, func(p float64) {
				vals = append(vals, e.f.Eval(x))
				probs = append(probs, p)
			})
			sc.vals, sc.probs = vals, probs
			var reach float64
			for _, v := range vals {
				if a := math.Abs(v); a > reach {
					reach = a
				}
			}
			_, masses := dist.PoolPMF(numeric.GridFor(reach), vals, probs)
			for _, p := range masses {
				if p > 0 {
					h -= p * math.Log(p)
				}
			}
		} else {
			// Legacy two-pass route for supports past the buffer cap:
			// evaluating f twice per state keeps the memory at the
			// number of *distinct* outcomes, never the raw product
			// state space.
			var reach float64
			enumerate(e.dists, freeVars, x, func(float64) {
				if a := math.Abs(e.f.Eval(x)); a > reach {
					reach = a
				}
			})
			grid := numeric.GridFor(reach)
			pmf := map[int64]float64{}
			enumerate(e.dists, freeVars, x, func(p float64) {
				pmf[grid.Key(e.f.Eval(x))] += p
			})
			for _, k := range numeric.SortedKeys(pmf) {
				if p := pmf[k]; p > 0 {
					h -= p * math.Log(p)
				}
			}
		}
		acc.Add(pT * h)
	})
	v := acc.Value()
	if v < 0 {
		v = 0
	}
	return v
}

// Variance is a misnomer kept for Engine symmetry: it returns EH(∅), the
// prior entropy of f(X).
func (e *Entropy) Variance() float64 { return e.EV(nil) }
