package ev

import (
	"math"
	"testing"

	"github.com/factcheck/cleansel/internal/dist"
	"github.com/factcheck/cleansel/internal/model"
	"github.com/factcheck/cleansel/internal/numeric"
	"github.com/factcheck/cleansel/internal/query"
	"github.com/factcheck/cleansel/internal/rng"
)

func TestEntropyBernoulliIndicator(t *testing.T) {
	// Example 3: f = 1[X1+X2+X3 < 3]; Pr[f=0] = 1/24.
	db := example3DB()
	e, err := NewEntropy(db, example3Query())
	if err != nil {
		t.Fatal(err)
	}
	p := 1.0 / 24.0
	wantPrior := -p*math.Log(p) - (1-p)*math.Log(1-p)
	if got := e.Variance(); !numeric.AlmostEqual(got, wantPrior, 1e-12) {
		t.Fatalf("prior entropy %v want %v", got, wantPrior)
	}
	// Cleaning X1: branch X1=0 is deterministic (H=0); branch X1=1 has
	// Pr[f=0] = 1/12.
	q := 1.0 / 12.0
	branch := -q*math.Log(q) - (1-q)*math.Log(1-q)
	want := 0.5 * branch
	if got := e.EV(model.NewSet(0)); !numeric.AlmostEqual(got, want, 1e-12) {
		t.Fatalf("EH({x1}) %v want %v", got, want)
	}
	// Cleaning everything leaves zero entropy.
	if got := e.EV(model.NewSet(0, 1, 2)); !numeric.AlmostEqual(got, 0, 1e-12) {
		t.Fatalf("EH(all) = %v", got)
	}
}

func TestEntropyMonotone(t *testing.T) {
	r := rng.New(271)
	for trial := 0; trial < 25; trial++ {
		n := 2 + r.Intn(3)
		db := randomDB(r, n)
		g := randomGroupSum(r, n)
		e, err := NewEntropy(db, g)
		if err != nil {
			t.Fatal(err)
		}
		T := randomSubset(r, n)
		base := e.EV(T)
		for o := 0; o < n; o++ {
			if T.Has(o) {
				continue
			}
			if after := e.EV(T.Add(o)); after > base+1e-9 {
				t.Fatalf("trial %d: expected entropy rose %v -> %v", trial, base, after)
			}
		}
	}
}

// The §5 argument made concrete: variance and entropy objectives can
// disagree about which object to clean. Entropy only sees outcome
// probabilities; variance sees magnitudes. Object a decides between two
// nearby values (high entropy contribution, small magnitude); object b
// decides between two far-apart values with a skewed probability (lower
// entropy, large variance).
func TestEntropyAndVarianceDisagree(t *testing.T) {
	db := model.New([]model.Object{
		{Name: "a", Cost: 1, Value: dist.MustDiscrete([]float64{0, 1}, []float64{0.5, 0.5})},
		{Name: "b", Cost: 1, Value: dist.MustDiscrete([]float64{0, 100}, []float64{0.9, 0.1})},
	})
	f := query.NewAffine(0, map[int]float64{0: 1, 1: 1})
	varEng, err := NewModular(db, f)
	if err != nil {
		t.Fatal(err)
	}
	entEng, err := NewEntropy(db, f.AsGroupSum())
	if err != nil {
		t.Fatal(err)
	}
	// Variance: cleaning b removes 900 of the 900.25 total — b wins.
	varGainA := varEng.Variance() - varEng.EV(model.NewSet(0))
	varGainB := varEng.Variance() - varEng.EV(model.NewSet(1))
	if varGainB <= varGainA {
		t.Fatalf("variance should prefer b: %v vs %v", varGainB, varGainA)
	}
	// Entropy: cleaning a removes ln 2 ≈ 0.693; cleaning b removes only
	// H(0.1) ≈ 0.325 — a wins.
	entGainA := entEng.Variance() - entEng.EV(model.NewSet(0))
	entGainB := entEng.Variance() - entEng.EV(model.NewSet(1))
	if entGainA <= entGainB {
		t.Fatalf("entropy should prefer a: %v vs %v", entGainA, entGainB)
	}
}

func TestEntropyAdditiveForIndependentBits(t *testing.T) {
	// Entropy of independent bits revealed by an identity-ish function:
	// f = 2·X0 + X1 is a bijection of the joint outcome, so prior entropy
	// is H(X0) + H(X1).
	db := model.New([]model.Object{
		{Name: "a", Cost: 1, Value: dist.Bernoulli(0.5)},
		{Name: "b", Cost: 1, Value: dist.Bernoulli(0.25)},
	})
	f := query.NewAffine(0, map[int]float64{0: 2, 1: 1})
	e, err := NewEntropy(db, f)
	if err != nil {
		t.Fatal(err)
	}
	h := func(p float64) float64 { return -p*math.Log(p) - (1-p)*math.Log(1-p) }
	want := h(0.5) + h(0.25)
	if got := e.Variance(); !numeric.AlmostEqual(got, want, 1e-12) {
		t.Fatalf("joint entropy %v want %v", got, want)
	}
}

func TestEntropyValidation(t *testing.T) {
	n, _ := dist.NewNormal(0, 1)
	db := model.New([]model.Object{{Name: "a", Cost: 1, Value: n}})
	if _, err := NewEntropy(db, query.NewAffine(0, map[int]float64{0: 1})); err == nil {
		t.Fatal("normal values accepted by exact entropy engine")
	}
}
