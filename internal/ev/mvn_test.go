package ev

import (
	"testing"

	"github.com/factcheck/cleansel/internal/dist"
	"github.com/factcheck/cleansel/internal/linalg"
	"github.com/factcheck/cleansel/internal/model"
	"github.com/factcheck/cleansel/internal/numeric"
	"github.com/factcheck/cleansel/internal/query"
	"github.com/factcheck/cleansel/internal/rng"
)

func normalDB(t *testing.T, sigmas []float64, cov *linalg.Matrix) *model.DB {
	t.Helper()
	objs := make([]model.Object, len(sigmas))
	for i, s := range sigmas {
		n, err := dist.NewNormal(float64(10*i), s)
		if err != nil {
			t.Fatal(err)
		}
		objs[i] = model.Object{Name: "o", Cost: 1, Current: float64(10 * i), Value: n}
	}
	db := model.New(objs)
	db.Cov = cov
	return db
}

// gammaCov builds the §4.5 covariance Cov(i,j) = γ^{|j−i|}·σ_i·σ_j.
func gammaCov(sigmas []float64, gamma float64) *linalg.Matrix {
	n := len(sigmas)
	m := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			d := j - i
			if d < 0 {
				d = -d
			}
			v := sigmas[i] * sigmas[j]
			for k := 0; k < d; k++ {
				v *= gamma
			}
			m.Set(i, j, v)
		}
	}
	return m
}

func fullCoef(n int) *query.Affine {
	coef := map[int]float64{}
	for i := 0; i < n; i++ {
		coef[i] = 1
	}
	return query.NewAffine(0, coef)
}

func TestMVNIndependentMatchesModular(t *testing.T) {
	sigmas := []float64{1, 2, 3, 0.5}
	db := normalDB(t, sigmas, nil)
	f := query.NewAffine(0, map[int]float64{0: 2, 1: -1, 2: 1, 3: 3})
	mvn, err := NewMVN(db, f)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := NewModular(db, f)
	if err != nil {
		t.Fatal(err)
	}
	for _, T := range []model.Set{nil, model.NewSet(0), model.NewSet(1, 3), model.NewSet(0, 1, 2, 3)} {
		if got, want := mvn.EV(T), mod.EV(T); !numeric.AlmostEqual(got, want, 1e-9) {
			t.Fatalf("EV(%v): MVN %v vs modular %v", T, got, want)
		}
		if got, want := mvn.MarginalEV(T), mod.EV(T); !numeric.AlmostEqual(got, want, 1e-9) {
			t.Fatalf("MarginalEV(%v): %v vs %v", T, got, want)
		}
	}
}

func TestMVNCorrelatedBasics(t *testing.T) {
	sigmas := []float64{1, 1.5, 2, 2.5, 3}
	db := normalDB(t, sigmas, gammaCov(sigmas, 0.7))
	f := fullCoef(5)
	mvn, err := NewMVN(db, f)
	if err != nil {
		t.Fatal(err)
	}
	// EV is monotone non-increasing along a chain.
	prev := mvn.Variance()
	if got := mvn.EV(nil); !numeric.AlmostEqual(got, prev, 1e-9) {
		t.Fatalf("EV(∅) = %v, want Var = %v", got, prev)
	}
	var T model.Set
	for o := 0; o < 5; o++ {
		T = T.Add(o)
		cur := mvn.EV(T)
		if cur > prev+1e-9 {
			t.Fatalf("EV increased when cleaning %d: %v -> %v", o, prev, cur)
		}
		prev = cur
	}
	if !numeric.AlmostEqual(prev, 0, 1e-9) {
		t.Fatalf("EV(all) = %v, want 0", prev)
	}
	// With positive correlation, conditioning helps more than the marginal
	// semantics predicts: EV(T) <= MarginalEV(T).
	for _, T := range []model.Set{model.NewSet(0), model.NewSet(2), model.NewSet(0, 4)} {
		if mvn.EV(T) > mvn.MarginalEV(T)+1e-9 {
			t.Fatalf("Schur EV %v above marginal %v for %v", mvn.EV(T), mvn.MarginalEV(T), T)
		}
	}
}

func TestMVNCleanedVarianceIdentity(t *testing.T) {
	// CleanedVariance(complement(T)) must equal EV(T): both are
	// a_S ᵀ·Σ_{S|S̄}·a_S with S = O \ T.
	sigmas := []float64{1, 2, 1.5, 0.8}
	db := normalDB(t, sigmas, gammaCov(sigmas, 0.5))
	f := query.NewAffine(0, map[int]float64{0: 1, 1: -2, 2: 1, 3: 0.5})
	mvn, err := NewMVN(db, f)
	if err != nil {
		t.Fatal(err)
	}
	for _, T := range []model.Set{nil, model.NewSet(1), model.NewSet(0, 2), model.NewSet(0, 1, 2, 3)} {
		got := mvn.CleanedVariance(T.Complement(4))
		want := mvn.EV(T)
		if !numeric.AlmostEqual(got, want, 1e-9) {
			t.Fatalf("CleanedVariance(comp %v) = %v, want EV = %v", T, got, want)
		}
	}
	if mvn.CleanedVariance(nil) != 0 {
		t.Fatal("CleanedVariance(∅) should be 0")
	}
}

func TestMVNMarginalCleanedVariance(t *testing.T) {
	sigmas := []float64{1, 2}
	db := normalDB(t, sigmas, gammaCov(sigmas, 0.5))
	f := fullCoef(2)
	mvn, _ := NewMVN(db, f)
	// Σ = [[1, 1],[1, 4]]: marginal cleaned variance of {0,1} is 1+4+2·1 = 7.
	if got := mvn.MarginalCleanedVariance(model.NewSet(0, 1)); !numeric.AlmostEqual(got, 7, 1e-9) {
		t.Fatalf("MarginalCleanedVariance = %v, want 7", got)
	}
	if got := mvn.Variance(); !numeric.AlmostEqual(got, 7, 1e-9) {
		t.Fatalf("Variance = %v, want 7", got)
	}
}

// Sanity-check the Schur EV against Monte Carlo on a correlated 3-variable
// instance: draw the cleaned variables, compute the true conditional
// variance of the rest analytically per draw... which is constant; so
// instead verify EV via the law of total variance: Var[f] =
// E[Var[f|X_T]] + Var[E[f|X_T]], where the second term is the variance of
// the affine conditional mean.
func TestMVNTotalVarianceDecomposition(t *testing.T) {
	r := rng.New(5150)
	for trial := 0; trial < 20; trial++ {
		n := 3 + r.Intn(3)
		sigmas := make([]float64, n)
		for i := range sigmas {
			sigmas[i] = 0.5 + 2*r.Float64()
		}
		gamma := 0.8 * r.Float64()
		db := normalDB(t, sigmas, gammaCov(sigmas, gamma))
		coef := map[int]float64{}
		for i := 0; i < n; i++ {
			coef[i] = float64(r.IntRange(-2, 2))
		}
		f := query.NewAffine(0, coef)
		mvn, err := NewMVN(db, f)
		if err != nil {
			t.Fatal(err)
		}
		T := model.NewSet(0, 1)
		// Var[E[f|X_T]] = Var over X_T of a_Ū·B·(X_T−μ_T) + a_T·X_T where
		// B is the conditional mean shift: an affine function of X_T with
		// combined coefficient c = a_T + Bᵀa_Ū; its variance is cᵀΣ_TT c.
		keep := T.Complement(n)
		shift, err := linalg.ConditionalMeanShift(db.Cov, keep, T)
		if err != nil {
			t.Fatal(err)
		}
		c := make([]float64, len(T))
		dense := f.Dense(n)
		for i, v := range T {
			c[i] = dense[v]
			for j, u := range keep {
				c[i] += shift.At(j, i) * dense[u]
			}
		}
		stt := db.Cov.Submatrix(T, T)
		varOfMean := linalg.QuadForm(stt, c)
		total := mvn.Variance()
		if !numeric.AlmostEqual(mvn.EV(T)+varOfMean, total, 1e-7) {
			t.Fatalf("trial %d: EV %v + Var[E] %v != Var %v", trial, mvn.EV(T), varOfMean, total)
		}
	}
}

func TestMVNDimensionMismatch(t *testing.T) {
	db := normalDB(t, []float64{1, 2}, nil)
	db.Cov = linalg.NewMatrix(3, 3)
	if _, err := NewMVN(db, fullCoef(2)); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}
