package ev

import (
	"errors"
	"fmt"

	"github.com/factcheck/cleansel/internal/model"
	"github.com/factcheck/cleansel/internal/query"
)

// PartialModular extends the Lemma 3.1 modular engine to the paper's
// third future-work setting: cleaning a value only *reduces* its
// uncertainty instead of eliminating it. Cleaning object i rescales its
// error standard deviation by a residual factor ρ_i ∈ [0, 1], so for an
// affine query function over uncorrelated errors
//
//	EV(T) = Σ_{i∉T} a_i²·Var[X_i] + Σ_{i∈T} ρ_i²·a_i²·Var[X_i],
//
// which is still modular with effective per-object benefits
// (1 − ρ_i²)·a_i²·Var[X_i] — so every modular algorithm (greedy, knapsack
// DP, FPTAS) carries over unchanged with these weights.
type PartialModular struct {
	weights  []float64 // full weights a_i²·Var[X_i]
	benefits []float64 // (1 − ρ_i²)·w_i
	total    float64
}

// NewPartialModular builds the engine; residual[i] = ρ_i is the fraction
// of the standard deviation that survives cleaning object i (0 recovers
// the exact-cleaning model, 1 makes cleaning i useless).
func NewPartialModular(db *model.DB, f *query.Affine, residual []float64) (*PartialModular, error) {
	if db.Cov != nil {
		return nil, errors.New("ev: PartialModular requires uncorrelated values")
	}
	if len(residual) != db.N() {
		return nil, fmt.Errorf("ev: %d residuals for %d objects", len(residual), db.N())
	}
	p := &PartialModular{
		weights:  make([]float64, db.N()),
		benefits: make([]float64, db.N()),
	}
	for i := range p.weights {
		rho := residual[i]
		if rho < 0 || rho > 1 {
			return nil, fmt.Errorf("ev: residual %v out of [0,1] at %d", rho, i)
		}
		a := f.CoefAt(i)
		w := a * a * db.Objects[i].Value.Variance()
		p.weights[i] = w
		p.benefits[i] = (1 - rho*rho) * w
		p.total += w
	}
	return p, nil
}

// Benefits returns the effective modular weights (1 − ρ_i²)·a_i²·Var[X_i],
// ready for any knapsack solver.
func (p *PartialModular) Benefits() []float64 {
	return append([]float64(nil), p.benefits...)
}

// EV implements Engine: the expected variance remaining after (partially)
// cleaning T.
func (p *PartialModular) EV(T model.Set) float64 {
	ev := p.total
	for _, i := range T {
		ev -= p.benefits[i]
	}
	if ev < 0 {
		ev = 0
	}
	return ev
}

// Variance returns EV(∅).
func (p *PartialModular) Variance() float64 { return p.total }
