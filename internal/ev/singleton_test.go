package ev

import (
	"testing"

	"github.com/factcheck/cleansel/internal/numeric"
	"github.com/factcheck/cleansel/internal/rng"
)

// SingletonBenefits must agree with per-object Delta on random instances,
// including instances with overlapping pairs and partially cleaned states.
func TestSingletonBenefitsMatchDelta(t *testing.T) {
	r := rng.New(31337)
	for trial := 0; trial < 40; trial++ {
		n := 3 + r.Intn(4)
		db := randomDB(r, n)
		g := randomGroupSum(r, n)
		ge := mustGroup(t, db, g)
		st := ge.NewState()
		// Clean a random prefix to exercise non-empty states.
		for _, o := range r.Perm(n)[:r.Intn(n)] {
			st.Clean(o)
		}
		got := st.SingletonBenefits()
		for o := 0; o < n; o++ {
			want := -st.Delta(o)
			if want < 0 {
				want = 0
			}
			if st.Cleaned(o) {
				want = 0
			}
			if !numeric.AlmostEqual(got[o], want, 1e-8) {
				t.Fatalf("trial %d: benefit[%d] = %v, want %v (cleaned=%v)",
					trial, o, got[o], want, st.Cleaned(o))
			}
		}
	}
}

func TestSingletonBenefitsNonNegative(t *testing.T) {
	r := rng.New(99)
	db := randomDB(r, 5)
	g := randomGroupSum(r, 5)
	ge := mustGroup(t, db, g)
	st := ge.NewState()
	for _, b := range st.SingletonBenefits() {
		if b < 0 {
			t.Fatalf("negative singleton benefit %v", b)
		}
	}
}

func TestSingletonBenefitsIgnoresCleaned(t *testing.T) {
	db := example6DB()
	g := example6Query()
	ge := mustGroup(t, db, g)
	st := ge.NewState()
	st.Clean(0)
	b := st.SingletonBenefits()
	if b[0] != 0 {
		t.Fatalf("cleaned object benefit = %v, want 0", b[0])
	}
	if b[1] <= 0 {
		t.Fatalf("uncleaned object benefit = %v, want > 0", b[1])
	}
}
