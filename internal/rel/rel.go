// Package rel is a miniature relational layer over the uncertain
// database: tables whose dimension attributes are certain and whose
// measure column is backed by uncertain objects. §3.4 observes that any
// SQL aggregation over selections and joins is a *linear* claim function
// as long as the selection/join conditions touch only certain attributes
// — this package makes that observation concrete by compiling
// SELECT SUM/AVG/weighted aggregates WHERE <predicate over dimensions>
// into claims.Claim values that the selection machinery consumes.
package rel

import (
	"errors"
	"fmt"

	"github.com/factcheck/cleansel/internal/claims"
	"github.com/factcheck/cleansel/internal/model"
)

// Row is one tuple: certain dimension values plus the ID of the uncertain
// object holding the row's measure.
type Row struct {
	Dims    map[string]string
	Ints    map[string]int
	Measure int // object ID in the backing model.DB
}

// Table is a set of rows over a shared schema backed by an uncertain
// database.
type Table struct {
	Name string
	DB   *model.DB
	Rows []Row
}

// NewTable validates that every row's measure points into the database.
func NewTable(name string, db *model.DB, rows []Row) (*Table, error) {
	if db == nil {
		return nil, errors.New("rel: nil database")
	}
	for i, r := range rows {
		if r.Measure < 0 || r.Measure >= db.N() {
			return nil, fmt.Errorf("rel: row %d references object %d of %d", i, r.Measure, db.N())
		}
	}
	return &Table{Name: name, DB: db, Rows: rows}, nil
}

// Pred is a row predicate over the certain attributes only.
type Pred func(Row) bool

// DimEq matches rows whose string dimension equals v.
func DimEq(dim, v string) Pred {
	return func(r Row) bool { return r.Dims[dim] == v }
}

// IntBetween matches rows whose integer dimension lies in [lo, hi].
func IntBetween(dim string, lo, hi int) Pred {
	return func(r Row) bool {
		x, ok := r.Ints[dim]
		return ok && x >= lo && x <= hi
	}
}

// And conjoins predicates.
func And(ps ...Pred) Pred {
	return func(r Row) bool {
		for _, p := range ps {
			if !p(r) {
				return false
			}
		}
		return true
	}
}

// Or disjoins predicates.
func Or(ps ...Pred) Pred {
	return func(r Row) bool {
		for _, p := range ps {
			if p(r) {
				return true
			}
		}
		return false
	}
}

// Not negates a predicate.
func Not(p Pred) Pred { return func(r Row) bool { return !p(r) } }

// Sum compiles SELECT SUM(measure) WHERE pred into a linear claim.
// Rows sharing a measure object accumulate coefficients (self-joins and
// duplicated tuples are handled naturally).
func (t *Table) Sum(name string, pred Pred) *claims.Claim {
	coef := map[int]float64{}
	for _, r := range t.Rows {
		if pred == nil || pred(r) {
			coef[r.Measure]++
		}
	}
	return claims.NewClaim(name, 0, coef)
}

// WeightedSum compiles SELECT SUM(weight(row)·measure) WHERE pred.
func (t *Table) WeightedSum(name string, pred Pred, weight func(Row) float64) *claims.Claim {
	coef := map[int]float64{}
	for _, r := range t.Rows {
		if pred == nil || pred(r) {
			coef[r.Measure] += weight(r)
		}
	}
	return claims.NewClaim(name, 0, coef)
}

// Avg compiles SELECT AVG(measure) WHERE pred: a linear claim with
// coefficients 1/count. It returns an error when no row matches.
func (t *Table) Avg(name string, pred Pred) (*claims.Claim, error) {
	var matched []int
	for _, r := range t.Rows {
		if pred == nil || pred(r) {
			matched = append(matched, r.Measure)
		}
	}
	if len(matched) == 0 {
		return nil, fmt.Errorf("rel: AVG %q matches no rows", name)
	}
	coef := map[int]float64{}
	w := 1 / float64(len(matched))
	for _, id := range matched {
		coef[id] += w
	}
	return claims.NewClaim(name, 0, coef), nil
}

// Diff compiles the comparison claim a − b (e.g. "crimes this period
// minus crimes last period"), the window-aggregate-comparison pattern in
// relational form.
func Diff(name string, a, b *claims.Claim) *claims.Claim {
	coef := map[int]float64{}
	for _, i := range a.Vars() {
		coef[i] += a.Coef[i]
	}
	for _, i := range b.Vars() {
		coef[i] -= b.Coef[i]
	}
	return claims.NewClaim(name, a.Const-b.Const, coef)
}

// Share compiles a − frac·b ("a exceeds frac of b"), the CDC-causes
// claim shape of §4.1.
func Share(name string, a, b *claims.Claim, frac float64) *claims.Claim {
	coef := map[int]float64{}
	for _, i := range a.Vars() {
		coef[i] += a.Coef[i]
	}
	for _, i := range b.Vars() {
		coef[i] -= frac * b.Coef[i]
	}
	return claims.NewClaim(name, a.Const-frac*b.Const, coef)
}

// GroupBy enumerates the distinct values of a string dimension, in first-
// appearance order — the generator for "perturb the group" claim familes
// (e.g. the same claim for every jurisdiction).
func (t *Table) GroupBy(dim string) []string {
	seen := map[string]bool{}
	var out []string
	for _, r := range t.Rows {
		v, ok := r.Dims[dim]
		if !ok || seen[v] {
			continue
		}
		seen[v] = true
		out = append(out, v)
	}
	return out
}

// PerturbBy builds one claim per group value using mk, assigning
// sensibilities with weight(groupValue); the claim family for "could the
// same claim be made elsewhere?" uniqueness checks.
func (t *Table) PerturbBy(dim string, mk func(value string) *claims.Claim, weight func(value string) float64) []claims.Perturbed {
	var out []claims.Perturbed
	for _, v := range t.GroupBy(dim) {
		out = append(out, claims.Perturbed{
			Claim:       mk(v),
			Sensibility: weight(v),
		})
	}
	return out
}
