package rel

import (
	"testing"

	"github.com/factcheck/cleansel/internal/claims"
	"github.com/factcheck/cleansel/internal/dist"
	"github.com/factcheck/cleansel/internal/model"
	"github.com/factcheck/cleansel/internal/numeric"
)

// crimeTable builds a two-jurisdiction, three-year crime table.
func crimeTable(t *testing.T) *Table {
	t.Helper()
	var objs []model.Object
	var rows []Row
	id := 0
	for _, city := range []string{"north", "south"} {
		for _, year := range []int{2016, 2017, 2018} {
			val := float64(1000 + 10*id)
			objs = append(objs, model.Object{
				Name:    city,
				Current: val,
				Cost:    1,
				Value:   dist.UniformOver([]float64{val - 50, val, val + 50}),
			})
			rows = append(rows, Row{
				Dims:    map[string]string{"city": city},
				Ints:    map[string]int{"year": year},
				Measure: id,
			})
			id++
		}
	}
	db := model.New(objs)
	tab, err := NewTable("crimes", db, rows)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestNewTableValidates(t *testing.T) {
	db := model.New([]model.Object{{Name: "a", Cost: 1, Value: dist.PointMass(1)}})
	if _, err := NewTable("t", db, []Row{{Measure: 5}}); err == nil {
		t.Fatal("out-of-range measure accepted")
	}
	if _, err := NewTable("t", nil, nil); err == nil {
		t.Fatal("nil db accepted")
	}
}

func TestSumWithPredicate(t *testing.T) {
	tab := crimeTable(t)
	north2018 := tab.Sum("north-2018", And(DimEq("city", "north"), IntBetween("year", 2018, 2018)))
	vars := north2018.Vars()
	if len(vars) != 1 || vars[0] != 2 {
		t.Fatalf("predicate selected %v", vars)
	}
	all := tab.Sum("all", nil)
	if len(all.Vars()) != 6 {
		t.Fatalf("nil predicate should match everything: %v", all.Vars())
	}
	u := tab.DB.Currents()
	var want float64
	for _, v := range u {
		want += v
	}
	if got := all.Eval(u); !numeric.AlmostEqual(got, want, 1e-12) {
		t.Fatalf("SUM eval %v want %v", got, want)
	}
}

func TestPredicateCombinators(t *testing.T) {
	tab := crimeTable(t)
	early := IntBetween("year", 2016, 2017)
	north := DimEq("city", "north")
	c := tab.Sum("x", And(north, Not(early))) // north 2018 only
	if len(c.Vars()) != 1 {
		t.Fatalf("And/Not: %v", c.Vars())
	}
	d := tab.Sum("y", Or(DimEq("city", "north"), DimEq("city", "south")))
	if len(d.Vars()) != 6 {
		t.Fatalf("Or: %v", d.Vars())
	}
	// Missing integer dimension never matches.
	e := tab.Sum("z", IntBetween("month", 1, 12))
	if len(e.Vars()) != 0 {
		t.Fatalf("missing dim matched: %v", e.Vars())
	}
}

func TestAvg(t *testing.T) {
	tab := crimeTable(t)
	avg, err := tab.Avg("north-avg", DimEq("city", "north"))
	if err != nil {
		t.Fatal(err)
	}
	u := tab.DB.Currents()
	want := (u[0] + u[1] + u[2]) / 3
	if got := avg.Eval(u); !numeric.AlmostEqual(got, want, 1e-12) {
		t.Fatalf("AVG %v want %v", got, want)
	}
	if _, err := tab.Avg("none", DimEq("city", "nowhere")); err == nil {
		t.Fatal("empty AVG accepted")
	}
}

func TestWeightedSum(t *testing.T) {
	tab := crimeTable(t)
	// Per-capita style weighting: halve the south counts.
	c := tab.WeightedSum("pc", nil, func(r Row) float64 {
		if r.Dims["city"] == "south" {
			return 0.5
		}
		return 1
	})
	u := tab.DB.Currents()
	want := u[0] + u[1] + u[2] + 0.5*(u[3]+u[4]+u[5])
	if got := c.Eval(u); !numeric.AlmostEqual(got, want, 1e-12) {
		t.Fatalf("weighted sum %v want %v", got, want)
	}
}

func TestDiffAndShare(t *testing.T) {
	tab := crimeTable(t)
	a := tab.Sum("n18", And(DimEq("city", "north"), IntBetween("year", 2018, 2018)))
	b := tab.Sum("n17", And(DimEq("city", "north"), IntBetween("year", 2017, 2017)))
	d := Diff("incr", a, b)
	u := tab.DB.Currents()
	if got, want := d.Eval(u), u[2]-u[1]; !numeric.AlmostEqual(got, want, 1e-12) {
		t.Fatalf("Diff %v want %v", got, want)
	}
	s := Share("share", a, b, 0.3)
	if got, want := s.Eval(u), u[2]-0.3*u[1]; !numeric.AlmostEqual(got, want, 1e-12) {
		t.Fatalf("Share %v want %v", got, want)
	}
}

func TestDuplicateMeasuresAccumulate(t *testing.T) {
	db := model.New([]model.Object{{Name: "a", Cost: 1, Value: dist.PointMass(7)}})
	tab, err := NewTable("t", db, []Row{{Measure: 0}, {Measure: 0}})
	if err != nil {
		t.Fatal(err)
	}
	c := tab.Sum("double", nil)
	if c.Coef[0] != 2 {
		t.Fatalf("self-join coefficient %v want 2", c.Coef[0])
	}
}

func TestGroupByAndPerturbBy(t *testing.T) {
	tab := crimeTable(t)
	groups := tab.GroupBy("city")
	if len(groups) != 2 || groups[0] != "north" || groups[1] != "south" {
		t.Fatalf("GroupBy %v", groups)
	}
	perturbs := tab.PerturbBy("city", func(city string) *claims.Claim {
		return tab.Sum(city, DimEq("city", city))
	}, func(string) float64 { return 1 })
	if len(perturbs) != 2 {
		t.Fatalf("PerturbBy produced %d claims", len(perturbs))
	}
	// The per-city claims feed straight into the selection machinery.
	orig := perturbs[0].Claim
	set, err := claims.NewSet(orig, claims.HigherIsStronger, orig.Eval(tab.DB.Currents()), perturbs)
	if err != nil {
		t.Fatal(err)
	}
	if set.M() != 2 {
		t.Fatalf("set size %d", set.M())
	}
}
