// Package datasets provides the three evaluation datasets of §4 plus the
// synthetic value-distribution generators URx, LNx, and SMx.
//
// The real-world series are embedded as magnitude-faithful substitutes
// (the paper's exact tables are not published; see DESIGN.md §1 for the
// substitution rationale):
//
//   - Adoptions — NYC adoptions 1989–2014. The series satisfies the
//     property the Giuliani claim rests on: total adoptions rose 65–70%
//     between 1990–1995 and 1996–2001. Errors: σ_i ~ U[1,50] normal;
//     costs ~ U[1,100].
//   - CDC-firearms — national nonfatal firearm-injury estimates 2001–2017
//     with CDC-style standard errors (large coefficients of variation).
//     Costs decrease with recency: year 2001 in [195,200], 2002 in
//     [190,195], …, 2017 in [115,120].
//   - CDC-causes — firearm, transportation, drowning, and fall injuries
//     over the same 17 years (68 values), with CVs scaled to series size.
//
// Synthetic generators draw each object's support size uniformly from
// {1..6} and its cleaning cost uniformly from {1..10}, exactly as §4
// describes; current values are sampled from the value distribution.
package datasets

import (
	"fmt"

	"github.com/factcheck/cleansel/internal/dist"
	"github.com/factcheck/cleansel/internal/model"
	"github.com/factcheck/cleansel/internal/rng"
)

// AdoptionsYears spans 1989–2014 inclusive.
var AdoptionsYears = yearRange(1989, 2014)

// AdoptionsCounts are the embedded annual adoption counts. The 1990–1995
// vs 1996–2001 window sums are 16450 and 27200: a 65.3% increase, inside
// the 65–70% band the Giuliani claim asserts.
var AdoptionsCounts = []float64{
	2300,                               // 1989
	2250, 2400, 2600, 2800, 3100, 3300, // 1990–1995
	3900, 4300, 4800, 4900, 4700, 4600, // 1996–2001
	4300, 4000, 3800, 3500, 3300, 3000, // 2002–2007
	2800, 2600, 2400, 2200, 2000, 1850, // 2008–2013
	1700, // 2014
}

// Adoptions builds the Adoptions database: normal errors centered at the
// reported counts with σ ~ U[1,50], costs ~ U[1,100].
func Adoptions(seed uint64) *model.DB {
	r := rng.New(seed)
	objs := make([]model.Object, len(AdoptionsCounts))
	for i, v := range AdoptionsCounts {
		sigma := r.Uniform(1, 50)
		nd, err := dist.NewNormal(v, sigma)
		if err != nil {
			panic(err)
		}
		objs[i] = model.Object{
			Name:    fmt.Sprintf("adoptions/%d", AdoptionsYears[i]),
			Current: v,
			Cost:    r.Uniform(1, 100),
			Value:   nd,
		}
	}
	return model.New(objs)
}

// CDCYears spans 2001–2017 inclusive.
var CDCYears = yearRange(2001, 2017)

// FirearmsEstimates are nonfatal firearm-injury estimates (national,
// all intents), 2001–2017.
var FirearmsEstimates = []float64{
	63012, 58841, 65834, 64389, 69825, 71417, 69863, 78622, 66769,
	73505, 73883, 81396, 84258, 81034, 84997, 116414, 134557,
}

// FirearmsSE are the standard errors of the firearm estimates. WISQARS
// firearm estimates carry large sampling error (CVs near 15–25%).
var FirearmsSE = []float64{
	11342, 10003, 12509, 11590, 13267, 14283, 12575, 16510, 13354,
	15436, 14777, 17907, 19379, 17827, 19549, 27939, 33639,
}

// TransportationEstimates are transportation-related injury estimates.
var TransportationEstimates = []float64{
	3187562, 3145892, 3100941, 3072734, 3029412, 2938715, 2893981,
	2759830, 2706139, 2653062, 2645571, 2609038, 2567193, 2622907,
	2699123, 2734519, 2682451,
}

// TransportationSE are the corresponding standard errors (~6% CV).
var TransportationSE = []float64{
	191254, 188753, 186056, 184364, 181765, 176323, 173639, 165590,
	162368, 159184, 158734, 156542, 154032, 157374, 161947, 164071,
	160947,
}

// DrowningEstimates are nonfatal drowning estimates (small series, large
// relative error).
var DrowningEstimates = []float64{
	5795, 6144, 6133, 6529, 6263, 5976, 6028, 5702, 6214,
	5853, 6147, 6422, 6063, 5982, 6354, 6711, 6523,
}

// DrowningSE are the drowning standard errors (~20% CV).
var DrowningSE = []float64{
	1159, 1229, 1227, 1306, 1253, 1195, 1206, 1140, 1243,
	1171, 1229, 1284, 1213, 1196, 1271, 1342, 1305,
}

// FallsEstimates are fall-injury estimates (the largest series).
var FallsEstimates = []float64{
	7915244, 8034312, 8128433, 8260217, 8412179, 8501982, 8642951,
	8775212, 8901342, 9146243, 9252831, 9347124, 9411238, 9483215,
	9536712, 9591236, 9622175,
}

// FallsSE are the falls standard errors (~5% CV).
var FallsSE = []float64{
	395762, 401716, 406422, 413011, 420609, 425099, 432148, 438761,
	445067, 457312, 462642, 467356, 470562, 474161, 476836, 479562,
	481109,
}

// recencyCost draws the cleaning cost of a value from the given year:
// older data is more expensive to verify (the §4 cost model). Year 2001
// costs land in [195,200], each later year shifts the band down by 5.
func recencyCost(r *rng.RNG, year int) float64 {
	lo := 195 - 5*float64(year-2001)
	return r.Uniform(lo, lo+5)
}

// CDCFirearms builds the 17-value firearms database with normal errors
// from the published standard errors and recency-decreasing costs.
func CDCFirearms(seed uint64) *model.DB {
	r := rng.New(seed)
	objs := make([]model.Object, len(FirearmsEstimates))
	for i, v := range FirearmsEstimates {
		nd, err := dist.NewNormal(v, FirearmsSE[i])
		if err != nil {
			panic(err)
		}
		objs[i] = model.Object{
			Name:    fmt.Sprintf("firearms/%d", CDCYears[i]),
			Current: v,
			Cost:    recencyCost(r, CDCYears[i]),
			Value:   nd,
		}
	}
	return model.New(objs)
}

// Cause identifies one of the four CDC-causes series.
type Cause int

// The four injury causes of CDC-causes, in object-layout order.
const (
	Firearms Cause = iota
	Transportation
	Drowning
	Falls
	NumCauses
)

// String implements fmt.Stringer.
func (c Cause) String() string {
	switch c {
	case Firearms:
		return "firearms"
	case Transportation:
		return "transportation"
	case Drowning:
		return "drowning"
	case Falls:
		return "falls"
	}
	return fmt.Sprintf("cause(%d)", int(c))
}

// causeSeries returns the estimate and SE arrays of a cause.
func causeSeries(c Cause) (est, se []float64) {
	switch c {
	case Firearms:
		return FirearmsEstimates, FirearmsSE
	case Transportation:
		return TransportationEstimates, TransportationSE
	case Drowning:
		return DrowningEstimates, DrowningSE
	case Falls:
		return FallsEstimates, FallsSE
	}
	panic("datasets: unknown cause")
}

// CDCCausesIndex maps (cause, year offset from 2001) to the object ID in
// the CDC-causes database (cause-major layout, 68 objects).
func CDCCausesIndex(c Cause, yearIdx int) int {
	return int(c)*len(CDCYears) + yearIdx
}

// CDCCauses builds the 68-value four-cause database (§4: "a larger
// dataset with 68 values").
func CDCCauses(seed uint64) *model.DB {
	r := rng.New(seed)
	objs := make([]model.Object, 0, int(NumCauses)*len(CDCYears))
	for c := Firearms; c < NumCauses; c++ {
		est, se := causeSeries(c)
		for i := range est {
			nd, err := dist.NewNormal(est[i], se[i])
			if err != nil {
				panic(err)
			}
			objs = append(objs, model.Object{
				Name:    fmt.Sprintf("%s/%d", c, CDCYears[i]),
				Current: est[i],
				Cost:    recencyCost(r, CDCYears[i]),
				Value:   nd,
			})
		}
	}
	return model.New(objs)
}

// SyntheticKind selects a §4 synthetic value-distribution generator.
type SyntheticKind int

// The three synthetic generators of §4.
const (
	// UR draws support points uniformly from [1,100] with probabilities
	// proportional to U(0,1] — "fairly random" distributions.
	UR SyntheticKind = iota
	// LN quantizes a log-normal (μ=0, σ ~ U(0,1]) — skewed, unimodal,
	// small-range distributions.
	LN
	// SM draws support points like UR but with probabilities proportional
	// to a draw from (0,0.1] ∪ [0.9,1) — multimodal spiky distributions.
	SM
)

// String implements fmt.Stringer.
func (k SyntheticKind) String() string {
	switch k {
	case UR:
		return "URx"
	case LN:
		return "LNx"
	case SM:
		return "SMx"
	}
	return fmt.Sprintf("synthetic(%d)", int(k))
}

// MaxSupport is the largest synthetic support size (paper: "uniformly at
// random from [1,6]").
const MaxSupport = 6

// Synthetic builds an n-object database with the chosen generator.
// Costs are uniform integers in [1,10]; current values are sampled from
// each object's distribution (the "noisy database" of §4.3).
func Synthetic(kind SyntheticKind, n int, seed uint64) *model.DB {
	r := rng.New(seed)
	objs := make([]model.Object, n)
	for i := 0; i < n; i++ {
		k := r.IntRange(1, MaxSupport)
		objs[i] = syntheticObject(kind, r, i, k)
	}
	return model.New(objs)
}

// SyntheticK is Synthetic with every object's support size pinned to k
// instead of drawn from [1,MaxSupport]. Per-term enumeration over a
// w-object window costs k^w values, so k tunes how compute-heavy a
// workload's solves are independently of its wire size — benchmark
// workloads use k = MaxSupport to model the dense-support worst case.
func SyntheticK(kind SyntheticKind, n, k int, seed uint64) *model.DB {
	if k < 1 || k > 100 {
		panic("datasets: SyntheticK needs 1 <= k <= 100")
	}
	r := rng.New(seed)
	objs := make([]model.Object, n)
	for i := 0; i < n; i++ {
		objs[i] = syntheticObject(kind, r, i, k)
	}
	return model.New(objs)
}

// syntheticObject draws one object with a k-point support; the draw
// order (distribution, current sample, cost) is part of the fixed RNG
// sequence both Synthetic variants replay deterministically.
func syntheticObject(kind SyntheticKind, r *rng.RNG, i, k int) model.Object {
	var d *dist.Discrete
	switch kind {
	case UR:
		d = urDist(r, k)
	case LN:
		d = lnDist(r, k)
	case SM:
		d = smDist(r, k)
	default:
		panic("datasets: unknown synthetic kind")
	}
	return model.Object{
		Name:    fmt.Sprintf("%s/%d", kind, i),
		Current: d.Sample(r),
		Cost:    float64(r.IntRange(1, 10)),
		Value:   d,
	}
}

// URx builds the uniform-random synthetic dataset.
func URx(n int, seed uint64) *model.DB { return Synthetic(UR, n, seed) }

// LNx builds the log-normal synthetic dataset.
func LNx(n int, seed uint64) *model.DB { return Synthetic(LN, n, seed) }

// SMx builds the multimodal synthetic dataset.
func SMx(n int, seed uint64) *model.DB { return Synthetic(SM, n, seed) }

func urDist(r *rng.RNG, k int) *dist.Discrete {
	vals := intsToFloats(r.SampleWithoutReplacement(1, 100, k))
	probs := make([]float64, k)
	for i := range probs {
		probs[i] = 1 - r.Float64() // (0, 1]
	}
	return dist.MustDiscrete(vals, probs)
}

func lnDist(r *rng.RNG, k int) *dist.Discrete {
	sigma := 1 - r.Float64() // (0, 1]
	return dist.LogNormalQuantized(sigma, k)
}

func smDist(r *rng.RNG, k int) *dist.Discrete {
	vals := intsToFloats(r.SampleWithoutReplacement(1, 100, k))
	probs := make([]float64, k)
	for i := range probs {
		if r.Intn(2) == 0 {
			probs[i] = 0.1 * (1 - r.Float64()) // (0, 0.1]
		} else {
			probs[i] = 0.9 + 0.1*r.Float64() // [0.9, 1)
		}
	}
	return dist.MustDiscrete(vals, probs)
}

func intsToFloats(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, v := range xs {
		out[i] = float64(v)
	}
	return out
}

// ExtremeCosts replaces every cost with 1 or 10 uniformly at random — the
// alternative cost distribution §4 mentions trying.
func ExtremeCosts(db *model.DB, seed uint64) {
	r := rng.New(seed)
	for i := range db.Objects {
		if r.Intn(2) == 0 {
			db.Objects[i].Cost = 1
		} else {
			db.Objects[i].Cost = 10
		}
	}
}

func yearRange(from, to int) []int {
	out := make([]int, 0, to-from+1)
	for y := from; y <= to; y++ {
		out = append(out, y)
	}
	return out
}
