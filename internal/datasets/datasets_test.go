package datasets

import (
	"strings"
	"testing"

	"github.com/factcheck/cleansel/internal/dist"
	"github.com/factcheck/cleansel/internal/model"
)

func TestAdoptionsGiulianiProperty(t *testing.T) {
	if len(AdoptionsCounts) != 26 || len(AdoptionsYears) != 26 {
		t.Fatalf("adoptions should span 1989–2014: %d values", len(AdoptionsCounts))
	}
	if AdoptionsYears[0] != 1989 || AdoptionsYears[25] != 2014 {
		t.Fatalf("year range wrong: %v..%v", AdoptionsYears[0], AdoptionsYears[25])
	}
	// The claim: adoptions went up 65–70% between 1990–1995 and 1996–2001.
	var early, late float64
	for i, y := range AdoptionsYears {
		if y >= 1990 && y <= 1995 {
			early += AdoptionsCounts[i]
		}
		if y >= 1996 && y <= 2001 {
			late += AdoptionsCounts[i]
		}
	}
	rise := (late - early) / early
	if rise < 0.65 || rise > 0.70 {
		t.Fatalf("Giuliani property violated: rise = %.3f, want within [0.65, 0.70]", rise)
	}
}

func TestAdoptionsDB(t *testing.T) {
	db := Adoptions(1)
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
	if db.N() != 26 {
		t.Fatalf("N = %d", db.N())
	}
	ns, ok := db.Normals()
	if !ok {
		t.Fatal("adoptions values should be normal")
	}
	for i, nd := range ns {
		if nd.Sigma < 1 || nd.Sigma > 50 {
			t.Fatalf("sigma %v out of [1,50]", nd.Sigma)
		}
		if nd.Mu != AdoptionsCounts[i] || db.Objects[i].Current != AdoptionsCounts[i] {
			t.Fatalf("object %d not centered at reported value", i)
		}
		if c := db.Objects[i].Cost; c < 1 || c > 100 {
			t.Fatalf("cost %v out of [1,100]", c)
		}
	}
	// Determinism.
	db2 := Adoptions(1)
	for i := range db.Objects {
		if db.Objects[i].Cost != db2.Objects[i].Cost {
			t.Fatal("same seed should give same costs")
		}
	}
	db3 := Adoptions(2)
	same := true
	for i := range db.Objects {
		if db.Objects[i].Cost != db3.Objects[i].Cost {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds gave identical costs")
	}
}

func TestCDCFirearmsDB(t *testing.T) {
	db := CDCFirearms(7)
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
	if db.N() != 17 {
		t.Fatalf("N = %d", db.N())
	}
	if len(FirearmsEstimates) != 17 || len(FirearmsSE) != 17 {
		t.Fatal("firearms series must have 17 years")
	}
	// Large CVs, as CDC publishes for firearms.
	for i := range FirearmsEstimates {
		cv := FirearmsSE[i] / FirearmsEstimates[i]
		if cv < 0.10 || cv > 0.35 {
			t.Fatalf("firearms CV %v out of expected band at year %d", cv, CDCYears[i])
		}
	}
	// Recency cost model: 2001 in [195,200], 2017 in [115,120], decreasing.
	c2001 := db.Objects[0].Cost
	c2017 := db.Objects[16].Cost
	if c2001 < 195 || c2001 > 200 {
		t.Fatalf("2001 cost %v", c2001)
	}
	if c2017 < 115 || c2017 > 120 {
		t.Fatalf("2017 cost %v", c2017)
	}
	for i := 1; i < db.N(); i++ {
		if db.Objects[i].Cost >= db.Objects[i-1].Cost+5 {
			t.Fatalf("costs should trend down with recency: %v then %v",
				db.Objects[i-1].Cost, db.Objects[i].Cost)
		}
	}
}

func TestCDCCausesDB(t *testing.T) {
	db := CDCCauses(3)
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
	if db.N() != 68 {
		t.Fatalf("N = %d, want 68", db.N())
	}
	// Index helper round-trips with names.
	id := CDCCausesIndex(Drowning, 4) // drowning 2005
	if got := db.Objects[id].Name; got != "drowning/2005" {
		t.Fatalf("index helper points at %q", got)
	}
	// The §4.1 claim premise: transportation is roughly 30% of all other
	// causes combined in the last two years.
	var transport, others float64
	for _, yi := range []int{15, 16} {
		transport += TransportationEstimates[yi]
		others += FirearmsEstimates[yi] + DrowningEstimates[yi] + FallsEstimates[yi]
	}
	ratio := transport / others
	if ratio < 0.2 || ratio > 0.4 {
		t.Fatalf("transportation/others = %.3f, want near 0.3", ratio)
	}
}

func TestSyntheticGenerators(t *testing.T) {
	for _, kind := range []SyntheticKind{UR, LN, SM} {
		db := Synthetic(kind, 40, 11)
		if err := db.Validate(); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if db.N() != 40 {
			t.Fatalf("%v: N = %d", kind, db.N())
		}
		ds, err := db.Discretes()
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		for i, d := range ds {
			if d.Size() < 1 || d.Size() > MaxSupport {
				t.Fatalf("%v: support size %d", kind, d.Size())
			}
			if c := db.Objects[i].Cost; c < 1 || c > 10 || c != float64(int(c)) {
				t.Fatalf("%v: cost %v not an integer in [1,10]", kind, c)
			}
			// Current value must lie in the support.
			found := false
			for _, v := range d.Values {
				if v == db.Objects[i].Current {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("%v: current value %v outside support", kind, db.Objects[i].Current)
			}
		}
	}
}

func TestURxValueRange(t *testing.T) {
	db := URx(60, 5)
	ds, _ := db.Discretes()
	for _, d := range ds {
		for _, v := range d.Values {
			if v < 1 || v > 100 || v != float64(int(v)) {
				t.Fatalf("URx value %v not an integer in [1,100]", v)
			}
		}
	}
}

func TestLNxSmallRange(t *testing.T) {
	// LNx values live on the exp scale of a σ ≤ 1 normal: far smaller
	// range than URx's [1,100].
	db := LNx(60, 5)
	ds, _ := db.Discretes()
	for _, d := range ds {
		for _, v := range d.Values {
			if v <= 0 || v > 60 {
				t.Fatalf("LNx value %v outside plausible log-normal range", v)
			}
		}
	}
}

func TestSMxSpikyProbabilities(t *testing.T) {
	db := SMx(80, 5)
	ds, _ := db.Discretes()
	raw := 0
	for _, d := range ds {
		if d.Size() < 2 {
			continue
		}
		// Normalized probabilities hide the raw spikes, but the ratio of
		// max to min raw weights survives normalization. Expect many
		// objects with a large spread.
		mx, mn := 0.0, 1.0
		for _, p := range d.Probs {
			if p > mx {
				mx = p
			}
			if p < mn {
				mn = p
			}
		}
		if mx/mn > 3 {
			raw++
		}
	}
	if raw < 10 {
		t.Fatalf("SMx lost its spiky shape: only %d spiky objects", raw)
	}
}

func TestExtremeCosts(t *testing.T) {
	db := URx(50, 3)
	ExtremeCosts(db, 9)
	ones, tens := 0, 0
	for _, o := range db.Objects {
		switch o.Cost {
		case 1:
			ones++
		case 10:
			tens++
		default:
			t.Fatalf("extreme cost %v", o.Cost)
		}
	}
	if ones == 0 || tens == 0 {
		t.Fatal("extreme costs should mix 1s and 10s")
	}
}

func TestNames(t *testing.T) {
	db := CDCCauses(1)
	for _, o := range db.Objects {
		if !strings.Contains(o.Name, "/") {
			t.Fatalf("name %q not cause/year", o.Name)
		}
	}
	if Firearms.String() != "firearms" || Falls.String() != "falls" {
		t.Fatal("cause names wrong")
	}
	if UR.String() != "URx" || LN.String() != "LNx" || SM.String() != "SMx" {
		t.Fatal("synthetic names wrong")
	}
}

// The CDC discretization path used by Fig. 2: discretized firearms
// database keeps means and equal-probability atoms.
func TestCDCDiscretizedForUniqueness(t *testing.T) {
	db := CDCFirearms(1).Discretized(6)
	ds, err := db.Discretes()
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range ds {
		if d.Size() != 6 {
			t.Fatalf("object %d: %d atoms", i, d.Size())
		}
		if diff := d.Mean() - FirearmsEstimates[i]; diff > 1 || diff < -1 {
			t.Fatalf("object %d: discretized mean off by %v", i, diff)
		}
	}
	var _ model.Value = (*dist.Discrete)(nil)
}
