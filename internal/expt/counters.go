package expt

import (
	"context"
	"fmt"
	"math"

	"github.com/factcheck/cleansel/internal/core"
	"github.com/factcheck/cleansel/internal/datasets"
	"github.com/factcheck/cleansel/internal/dist"
	"github.com/factcheck/cleansel/internal/ev"
	"github.com/factcheck/cleansel/internal/maxpr"
	"github.com/factcheck/cleansel/internal/model"
	"github.com/factcheck/cleansel/internal/rng"
)

func init() {
	register("counters", runCounters)
}

// counterScenario is one §4.3 "finding counters" simulation: hidden true
// values exist; after a selector cleans T, those values are revealed, and
// we measure the probability (over the remaining uncertainty) that some
// perturbation refutes the original claim.
type counterScenario struct {
	w     Workload
	truth []float64
}

// sampleValue draws from either a discrete or normal value model.
func sampleValue(v model.Value, r *rng.RNG) float64 {
	switch d := v.(type) {
	case *dist.Discrete:
		return d.Sample(r)
	case dist.Normal:
		return d.Sample(r)
	}
	panic(fmt.Sprintf("expt: unsupported value model %T", v))
}

// findCounterScenario searches deterministic seeds until the hidden truth
// contains a counterargument while the current (noisy) values do not —
// the setup of both §4.3 scenarios ("if we assume the current noisy
// values to be correct, there would be no counterexample ... however, if
// we clean all data ... there is a counterargument").
func findCounterScenario(build func(seed uint64) Workload, seed uint64) (counterScenario, error) {
	for attempt := uint64(0); attempt < 200; attempt++ {
		w := build(seed + attempt)
		if w.Set.HasCounter(w.DB.Currents(), 0) {
			continue // claim already refuted without cleaning
		}
		r := rng.New(seed + attempt + 0xc0de)
		truth := make([]float64, w.DB.N())
		for i, o := range w.DB.Objects {
			truth[i] = sampleValue(o.Value, r)
		}
		if !w.Set.HasCounter(truth, 0) {
			continue // cleaning everything would not find a counter either
		}
		return counterScenario{w: w, truth: truth}, nil
	}
	return counterScenario{}, fmt.Errorf("expt: no counter scenario found near seed %d", seed)
}

// revealedCounterProb estimates, by Monte Carlo over the remaining
// uncertainty, the probability that the data revealed by cleaning T
// exposes a counterargument.
func revealedCounterProb(sc counterScenario, T model.Set, samples int, r *rng.RNG) float64 {
	x := sc.w.DB.Currents()
	known := make([]bool, sc.w.DB.N())
	for _, o := range T {
		known[o] = true
		x[o] = sc.truth[o]
	}
	hits := 0
	for s := 0; s < samples; s++ {
		for i, o := range sc.w.DB.Objects {
			if !known[i] {
				x[i] = sampleValue(o.Value, r)
			}
		}
		if sc.w.Set.HasCounter(x, 0) {
			hits++
		}
	}
	return float64(hits) / float64(samples)
}

// runCounters reproduces the §4.3 "finding counters" experiments on
// CDC-firearms and URx: the budget each algorithm needs before the
// revealed data exposes the counterargument with probability ≥ 98%.
func runCounters(ctx context.Context, scale Scale, seed uint64) ([]*Figure, error) {
	samples := 4000
	step := 0.01
	if scale == Small {
		samples = 1000
		step = 0.05
	}
	var out []*Figure

	// --- CDC-firearms ("lowest four-year period in recent history").
	scF, err := findCounterScenario(FirearmsLowest, seed)
	if err != nil {
		return nil, err
	}
	figF, err := counterFigure("counters-firearms",
		"Probability that revealed data exposes a counterargument (CDC-firearms)",
		scF, counterAlgosNormal, step, samples, seed)
	if err != nil {
		return nil, err
	}
	out = append(out, figF)

	// --- URx (Γ-style low claim on the last window).
	scU, err := findCounterScenario(func(s uint64) Workload {
		return SyntheticLowest(datasets.UR, 40, s)
	}, seed+500)
	if err != nil {
		return nil, err
	}
	figU, err := counterFigure("counters-urx",
		"Probability that revealed data exposes a counterargument (URx, n=40)",
		scU, counterAlgosDiscrete, step, samples, seed)
	if err != nil {
		return nil, err
	}
	out = append(out, figU)
	return out, nil
}

// counterAlgosNormal builds the §4.3 competitors for a normal-valued DB.
func counterAlgosNormal(sc counterScenario, seed uint64) ([]core.Selector, error) {
	bias := sc.w.Set.Bias()
	mod, err := ev.NewModular(sc.w.DB, bias)
	if err != nil {
		return nil, err
	}
	tau := 0.25 * math.Sqrt(mod.Variance())
	eval, err := maxpr.NewNormalAffine(sc.w.DB, bias, tau)
	if err != nil {
		return nil, err
	}
	gmp, err := core.NewGreedyMaxPr(sc.w.DB, eval)
	if err != nil {
		return nil, err
	}
	return []core.Selector{
		gmp,
		&core.GreedyNaive{DB: sc.w.DB, Vars: bias.Vars()},
	}, nil
}

// counterAlgosDiscrete builds the competitors for a discrete DB (exact
// convolution with Monte-Carlo fallback).
func counterAlgosDiscrete(sc counterScenario, seed uint64) ([]core.Selector, error) {
	bias := sc.w.Set.Bias()
	mod, err := ev.NewModular(sc.w.DB, bias)
	if err != nil {
		return nil, err
	}
	tau := 0.25 * math.Sqrt(mod.Variance())
	eval, err := maxpr.NewHybrid(sc.w.DB, bias, tau, 1<<20, 8000, rng.New(seed^0xabcd))
	if err != nil {
		return nil, err
	}
	gmp, err := core.NewGreedyMaxPr(sc.w.DB, maxpr.NewCached(eval))
	if err != nil {
		return nil, err
	}
	return []core.Selector{
		gmp,
		&core.GreedyNaive{DB: sc.w.DB, Vars: bias.Vars()},
	}, nil
}

// counterFigure sweeps the budget for each competitor and records both
// the probability curve and the 98% crossing.
func counterFigure(id, title string, sc counterScenario,
	algos func(counterScenario, uint64) ([]core.Selector, error),
	step float64, samples int, seed uint64) (*Figure, error) {

	fig := &Figure{
		ID:     id,
		Title:  title,
		XLabel: "budget (fraction)",
		YLabel: "probability counter revealed",
	}
	selectors, err := algos(sc, seed)
	if err != nil {
		return nil, err
	}
	const confident = 0.98
	for _, sel := range selectors {
		s := Series{Name: sel.Name()}
		crossed := math.NaN()
		var cleanedAtCross int
		mcr := rng.New(seed ^ 0x5eed)
		for frac := 0.0; frac <= 1.0+1e-9; frac += step {
			T, err := sel.Select(sc.w.DB.Budget(frac))
			if err != nil {
				return nil, err
			}
			p := revealedCounterProb(sc, T, samples, mcr)
			s.Points = append(s.Points, Point{X: round2(frac), Y: p})
			if math.IsNaN(crossed) && p >= confident {
				crossed = round2(frac)
				cleanedAtCross = len(T)
			}
		}
		fig.Series = append(fig.Series, s)
		if math.IsNaN(crossed) {
			fig.Notes = append(fig.Notes, fmt.Sprintf("%s: never reaches %.0f%% confidence", sel.Name(), confident*100))
		} else {
			fig.Notes = append(fig.Notes, fmt.Sprintf("%s: reaches %.0f%% confidence at %.0f%% budget (%d values cleaned)",
				sel.Name(), confident*100, crossed*100, cleanedAtCross))
		}
	}
	return fig, nil
}
