package expt

import (
	"context"
	"fmt"
	"math"

	"github.com/factcheck/cleansel/internal/core"
	"github.com/factcheck/cleansel/internal/ev"
	"github.com/factcheck/cleansel/internal/linalg"
	"github.com/factcheck/cleansel/internal/model"
	"github.com/factcheck/cleansel/internal/query"
)

func init() {
	register("fig11", runFig11)
}

// injectGammaCovariance equips the database with the §4.5 dependency
// model Cov(i, j) = γ^{|j−i|}·σ_i·σ_j (the farther apart two years, the
// weaker their dependency).
func injectGammaCovariance(db *model.DB, gamma float64) {
	n := db.N()
	sig := make([]float64, n)
	for i := 0; i < n; i++ {
		variance := db.Objects[i].Value.Variance()
		if variance > 0 {
			sig[i] = math.Sqrt(variance)
		}
	}
	cov := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			d := j - i
			if d < 0 {
				d = -d
			}
			v := sig[i] * sig[j]
			for k := 0; k < d; k++ {
				v *= gamma
			}
			cov.Set(i, j, v)
		}
	}
	db.Cov = cov
}

// runFig11 reproduces Figure 11: effectiveness under injected data
// dependencies on CDC-firearms. Dependency-blind algorithms (everything
// from §4.1 plus the modular Optimum) compete against the exhaustive OPT
// and the dependency-aware GreedyDep; every chosen set is scored with the
// *true* (Schur) expected variance.
func runFig11(ctx context.Context, scale Scale, seed uint64) ([]*Figure, error) {
	// (a) γ = 0.7, budget sweep.
	w := FirearmsFairness(seed)
	bias := w.Set.Bias()
	injectGammaCovariance(w.DB, 0.7)
	trueEng, err := ev.NewMVN(w.DB, bias)
	if err != nil {
		return nil, err
	}
	fracs := budgetGrid(scale)
	figA := &Figure{
		ID:     "fig11a",
		Title:  "Variance in fairness after cleaning, injected dependency γ=0.7 (CDC-firearms)",
		XLabel: "budget (fraction)",
		YLabel: "true variance in fairness after cleaning",
		Notes:  []string{fmt.Sprintf("initial variance %.6g", trueEng.Variance())},
	}
	selectors, err := fig11Selectors(w, bias)
	if err != nil {
		return nil, err
	}
	for _, sel := range selectors {
		s, err := sweepSelector(ctx, w.DB, sel, fracs, trueEng.EV)
		if err != nil {
			return nil, err
		}
		figA.Series = append(figA.Series, s)
	}

	// (b) budget 30%, γ sweep.
	gammas := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.99}
	if scale == Small {
		gammas = []float64{0, 0.3, 0.6, 0.9}
	}
	figB := &Figure{
		ID:     "fig11b",
		Title:  "Variance in fairness vs dependency strength γ (budget 30%)",
		XLabel: "gamma",
		YLabel: "true variance in fairness after cleaning",
	}
	series := map[string]*Series{
		"GreedyMinVar": {Name: "GreedyMinVar"},
		"OPT":          {Name: "OPT"},
		"GreedyDep":    {Name: "GreedyDep"},
	}
	for _, gamma := range gammas {
		wg := FirearmsFairness(seed)
		biasG := wg.Set.Bias()
		injectGammaCovariance(wg.DB, gamma)
		eng, err := ev.NewMVN(wg.DB, biasG)
		if err != nil {
			return nil, err
		}
		budget := wg.DB.Budget(0.3)

		gmv, err := core.NewGreedyMinVarModular(stripCov(wg.DB), biasG)
		if err != nil {
			return nil, err
		}
		opt, err := core.NewOPTMinVar(wg.DB, eng)
		if err != nil {
			return nil, err
		}
		dep, err := core.NewGreedyDep(wg.DB, biasG)
		if err != nil {
			return nil, err
		}
		for _, c := range []struct {
			name string
			sel  core.Selector
		}{{"GreedyMinVar", gmv}, {"OPT", opt}, {"GreedyDep", dep}} {
			T, err := c.sel.Select(budget)
			if err != nil {
				return nil, err
			}
			series[c.name].Points = append(series[c.name].Points, Point{X: gamma, Y: eng.EV(T)})
		}
	}
	for _, name := range []string{"GreedyMinVar", "OPT", "GreedyDep"} {
		figB.Series = append(figB.Series, *series[name])
	}
	return []*Figure{figA, figB}, nil
}

// fig11Selectors assembles the Figure 11(a) algorithm roster.
func fig11Selectors(w Workload, bias *query.Affine) ([]core.Selector, error) {
	blind := stripCov(w.DB) // dependency-unaware view of the data
	vars := bias.Vars()
	gmv, err := core.NewGreedyMinVarModular(blind, bias)
	if err != nil {
		return nil, err
	}
	opt, err := core.NewOptimumModular(blind, bias, 0)
	if err != nil {
		return nil, err
	}
	trueEng, err := ev.NewMVN(w.DB, bias)
	if err != nil {
		return nil, err
	}
	exh, err := core.NewOPTMinVar(w.DB, trueEng)
	if err != nil {
		return nil, err
	}
	dep, err := core.NewGreedyDep(w.DB, bias)
	if err != nil {
		return nil, err
	}
	return []core.Selector{
		&core.GreedyNaiveCostBlind{DB: blind, Vars: vars},
		&core.GreedyNaive{DB: blind, Vars: vars},
		gmv,
		opt,
		exh,
		dep,
	}, nil
}

// stripCov returns a dependency-blind shallow copy of the database.
func stripCov(db *model.DB) *model.DB {
	return &model.DB{Objects: db.Objects}
}
