package expt

import (
	"context"
	"fmt"
	"math"

	"github.com/factcheck/cleansel/internal/core"
	"github.com/factcheck/cleansel/internal/ev"
	"github.com/factcheck/cleansel/internal/maxpr"
	"github.com/factcheck/cleansel/internal/model"
	"github.com/factcheck/cleansel/internal/rng"
)

func init() {
	register("adaptive", runAdaptive)
}

// runAdaptive evaluates the paper's future-work direction of *adaptive*
// cleaning (§6): instead of committing an upfront subset, the adaptive
// MaxPr policy cleans one value, observes the revealed truth, and
// re-decides. Over many simulated ground truths on the CDC-firearms
// counter workload, it compares
//
//   - the budget the adaptive policy actually spends before finding a
//     counterargument (it stops paying as soon as one materializes), and
//   - the counter rate both approaches achieve at equal budgets.
func runAdaptive(ctx context.Context, scale Scale, seed uint64) ([]*Figure, error) {
	reps := 60
	if scale == PaperScale {
		reps = 300
	}
	w := FirearmsLowest(seed)
	bias := w.Set.Bias()
	mod, err := ev.NewModular(w.DB, bias)
	if err != nil {
		return nil, err
	}
	tau := 0.25 * math.Sqrt(mod.Variance())

	factory := func(db *model.DB) (maxpr.Evaluator, error) {
		if _, ok := db.Normals(); ok {
			return maxpr.NewNormalAffine(db, bias, tau)
		}
		// After observations the DB mixes point masses and normals.
		return maxpr.NewMonteCarlo(db, bias, tau, 3000, rng.New(seed^0xad))
	}
	adaptive, err := core.NewAdaptiveMaxPr(w.DB, bias, tau, factory)
	if err != nil {
		return nil, err
	}
	upEval, err := maxpr.NewNormalAffine(w.DB, bias, tau)
	if err != nil {
		return nil, err
	}
	upfront, err := core.NewGreedyMaxPr(w.DB, upEval)
	if err != nil {
		return nil, err
	}

	fracs := []float64{0.05, 0.1, 0.2, 0.3, 0.5, 0.75, 1.0}
	adaptiveHits := make([]int, len(fracs))
	upfrontHits := make([]int, len(fracs))
	var spentWhenFound []float64

	r := rng.New(seed ^ 0xada)
	ns, _ := w.DB.Normals()
	truth := make([]float64, w.DB.N())
	for rep := 0; rep < reps; rep++ {
		for i := range truth {
			truth[i] = ns[i].Sample(r)
		}
		baseline := bias.Eval(w.DB.Currents())
		for fi, frac := range fracs {
			budget := w.DB.Budget(frac)
			tr, err := adaptive.Run(truth, budget)
			if err != nil {
				return nil, err
			}
			if tr.Countered {
				adaptiveHits[fi]++
				//lint:allow floateq — budget fractions come from budgetGrid, whose round2 emits exact two-decimal values; 1.0 is exactly representable and exactly produced
				if frac == 1.0 {
					spentWhenFound = append(spentWhenFound, tr.CostSpent/w.DB.TotalCost())
				}
			}
			T, err := upfront.SelectContext(ctx, budget)
			if err != nil {
				return nil, err
			}
			// Reveal the upfront set and check the realized drop.
			x := w.DB.Currents()
			for _, o := range T {
				x[o] = truth[o]
			}
			if baseline-bias.Eval(x) > tau {
				upfrontHits[fi]++
			}
		}
	}

	fig := &Figure{
		ID:     "adaptive",
		Title:  "Adaptive vs upfront MaxPr cleaning (CDC-firearms counters, extension)",
		XLabel: "budget (fraction)",
		YLabel: "fraction of ground truths where a counter was realized",
	}
	sa := Series{Name: "AdaptiveMaxPr"}
	su := Series{Name: "GreedyMaxPr (upfront)"}
	for fi, frac := range fracs {
		sa.Points = append(sa.Points, Point{X: frac, Y: float64(adaptiveHits[fi]) / float64(reps)})
		su.Points = append(su.Points, Point{X: frac, Y: float64(upfrontHits[fi]) / float64(reps)})
	}
	fig.Series = append(fig.Series, sa, su)
	if len(spentWhenFound) > 0 {
		var sum float64
		for _, v := range spentWhenFound {
			sum += v
		}
		fig.Notes = append(fig.Notes, fmt.Sprintf(
			"adaptive policy, when it finds a counter under full budget, spends on average %.0f%% of the total cost (%d/%d truths)",
			100*sum/float64(len(spentWhenFound)), len(spentWhenFound), reps))
	}
	fig.Notes = append(fig.Notes, fmt.Sprintf("tau = %.4g; %d simulated ground truths", tau, reps))
	return []*Figure{fig}, nil
}
