package expt

import (
	"bytes"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"adaptive", "counters", "fig1", "fig10", "fig11", "fig12",
		"fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "thm39"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("IDs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IDs = %v, want %v", got, want)
		}
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("nope", Small, 1); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestParseScale(t *testing.T) {
	if s, err := ParseScale("paper"); err != nil || s != PaperScale {
		t.Fatal("paper scale")
	}
	if s, err := ParseScale(""); err != nil || s != Small {
		t.Fatal("default scale")
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Fatal("bad scale accepted")
	}
}

func TestRenderAndCSV(t *testing.T) {
	fig := &Figure{
		ID: "demo", Title: "Demo", XLabel: "x", YLabel: "y",
		Series: []Series{
			{Name: "a", Points: []Point{{0, 1}, {1, 2}}},
			{Name: "b", Points: []Point{{0, 3}}},
		},
		Notes: []string{"note1"},
	}
	var buf bytes.Buffer
	if err := fig.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"# demo — Demo", "note1", "a", "b", "1", "3"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := fig.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "demo,a,1,2") {
		t.Fatalf("csv wrong:\n%s", buf.String())
	}
}

// checkFigure validates structural invariants shared by every runner.
func checkFigure(t *testing.T, fig *Figure) {
	t.Helper()
	if fig.ID == "" || fig.Title == "" {
		t.Fatalf("figure missing identity: %+v", fig)
	}
	if len(fig.Series) == 0 {
		t.Fatalf("%s: no series", fig.ID)
	}
	for _, s := range fig.Series {
		if len(s.Points) == 0 {
			t.Fatalf("%s/%s: empty series", fig.ID, s.Name)
		}
		for _, p := range s.Points {
			if p.Y != p.Y {
				t.Fatalf("%s/%s: NaN at x=%v", fig.ID, s.Name, p.X)
			}
		}
	}
	var buf bytes.Buffer
	if err := fig.Render(&buf); err != nil {
		t.Fatalf("%s: render: %v", fig.ID, err)
	}
}

// monotoneNonIncreasing verifies a MinVar curve never rises with budget.
func monotoneNonIncreasing(t *testing.T, fig *Figure, name string) {
	t.Helper()
	for _, s := range fig.Series {
		if s.Name != name {
			continue
		}
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].Y > s.Points[i-1].Y+1e-6 {
				t.Fatalf("%s/%s: objective rose from %v to %v at budget %v",
					fig.ID, name, s.Points[i-1].Y, s.Points[i].Y, s.Points[i].X)
			}
		}
	}
}

func TestFig1Small(t *testing.T) {
	figs, err := Run("fig1", Small, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 4 { // 1a, 1b (zoom), 1c, 1d
		t.Fatalf("fig1 produced %d figures", len(figs))
	}
	for _, f := range figs {
		checkFigure(t, f)
		monotoneNonIncreasing(t, f, "Optimum")
		monotoneNonIncreasing(t, f, "GreedyMinVar")
	}
	// Optimum dominates or ties every other algorithm pointwise.
	fig := figs[0]
	var opt Series
	for _, s := range fig.Series {
		if s.Name == "Optimum" {
			opt = s
		}
	}
	for _, s := range fig.Series {
		for i := range s.Points {
			if opt.Points[i].Y > s.Points[i].Y+1e-6 {
				t.Fatalf("Optimum (%v) worse than %s (%v) at budget %v",
					opt.Points[i].Y, s.Name, s.Points[i].Y, s.Points[i].X)
			}
		}
	}
	// At full budget every algorithm removes all uncertainty.
	for _, s := range fig.Series {
		last := s.Points[len(s.Points)-1]
		if last.X == 1 && last.Y > 1e-6 {
			t.Fatalf("%s left variance %v at full budget", s.Name, last.Y)
		}
	}
}

func TestFig2Small(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping CDC uniqueness sweep in -short mode (~4s)")
	}
	figs, err := Run("fig2", Small, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 2 {
		t.Fatalf("fig2 produced %d figures", len(figs))
	}
	for _, f := range figs {
		checkFigure(t, f)
		monotoneNonIncreasing(t, f, "GreedyMinVar")
		// All series end at (nearly) zero uncertainty.
		for _, s := range f.Series {
			last := s.Points[len(s.Points)-1]
			if last.Y > 1e-6 {
				t.Fatalf("%s/%s left variance %v at full budget", f.ID, s.Name, last.Y)
			}
		}
	}
}

func TestFig3Small(t *testing.T) {
	figs, err := Run("fig3", Small, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 3 { // small scale halves the Γ grid
		t.Fatalf("fig3 produced %d figures", len(figs))
	}
	for _, f := range figs {
		checkFigure(t, f)
		monotoneNonIncreasing(t, f, "GreedyMinVar")
	}
}

func TestFig4And5Small(t *testing.T) {
	for _, id := range []string{"fig4", "fig5"} {
		figs, err := Run(id, Small, 42)
		if err != nil {
			t.Fatal(err)
		}
		if len(figs) != 3 {
			t.Fatalf("%s produced %d figures", id, len(figs))
		}
		for _, f := range figs {
			checkFigure(t, f)
			monotoneNonIncreasing(t, f, "GreedyMinVar")
		}
	}
}

func TestFig10Small(t *testing.T) {
	figs, err := Run("fig10", Small, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 2 {
		t.Fatalf("fig10 produced %d figures", len(figs))
	}
	for _, f := range figs {
		checkFigure(t, f)
		for _, s := range f.Series {
			// The spread series (max-min over repetitions) may be ~0 on a
			// quiet machine; medians must be strictly positive.
			for _, p := range s.Points {
				if s.Name == "spread (max-min)" {
					if p.Y < 0 {
						t.Fatalf("%s: negative spread %v", f.ID, p.Y)
					}
					continue
				}
				if p.Y <= 0 {
					t.Fatalf("%s: non-positive timing %v", f.ID, p.Y)
				}
			}
		}
	}
	// fig10b: larger n must not be faster than the smallest n by a wide
	// margin (coarse sanity on the scaling measurement).
	b := figs[1].Series[0]
	if b.Points[len(b.Points)-1].Y < b.Points[0].Y/2 {
		t.Fatalf("timing shrank with data size: %v", b.Points)
	}
}

func TestFig6Small(t *testing.T) {
	figs, err := Run("fig6", Small, 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range figs {
		checkFigure(t, f)
		// Improvements can be 0 but never meaningfully negative at any
		// budget where GreedyMinVar is exact... they CAN be slightly
		// negative in adversarial ties; just require boundedness.
		for _, s := range f.Series {
			for _, p := range s.Points {
				if p.Y < -1 {
					t.Fatalf("%s/%s: improvement %v suspiciously negative", f.ID, s.Name, p.Y)
				}
			}
		}
	}
}

func TestFig8Small(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping in-action sweep in -short mode (~4s)")
	}
	figs, err := Run("fig8", Small, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 2 {
		t.Fatal("fig8 should produce mean and std figures")
	}
	for _, f := range figs {
		checkFigure(t, f)
	}
	// At full budget the posterior std must be 0 and the mean must equal
	// the true duplicity for every algorithm.
	std := figs[1]
	for _, s := range std.Series {
		last := s.Points[len(s.Points)-1]
		if last.Y > 1e-9 {
			t.Fatalf("posterior std %v nonzero at full budget", last.Y)
		}
	}
}

func TestFig11Small(t *testing.T) {
	figs, err := Run("fig11", Small, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 2 {
		t.Fatalf("fig11 produced %d figures", len(figs))
	}
	for _, f := range figs {
		checkFigure(t, f)
	}
	// OPT dominates every other series pointwise in fig11a.
	fig := figs[0]
	var opt Series
	for _, s := range fig.Series {
		if s.Name == "OPT" {
			opt = s
		}
	}
	if opt.Name == "" {
		t.Fatal("fig11a missing OPT")
	}
	for _, s := range fig.Series {
		for i := range s.Points {
			if opt.Points[i].Y > s.Points[i].Y+1e-6 {
				t.Fatalf("OPT (%v) worse than %s (%v) at budget %v",
					opt.Points[i].Y, s.Name, s.Points[i].Y, s.Points[i].X)
			}
		}
	}
}

func TestFig12Small(t *testing.T) {
	figs, err := Run("fig12", Small, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 2 {
		t.Fatalf("fig12 produced %d figures", len(figs))
	}
	for _, f := range figs {
		checkFigure(t, f)
	}
	// In fig12a the MinVar optimizer must dominate on its own objective;
	// in fig12b the MaxPr optimizer must dominate on its own objective.
	a, b := figs[0], figs[1]
	for i := range a.Series[0].Points {
		if a.Series[0].Points[i].Y > a.Series[1].Points[i].Y+1e-6 {
			t.Fatalf("fig12a: Optimum worse than GreedyMaxPr on MinVar at %v",
				a.Series[0].Points[i].X)
		}
	}
	for i := range b.Series[0].Points {
		if b.Series[1].Points[i].Y < b.Series[0].Points[i].Y-1e-6 {
			t.Fatalf("fig12b: GreedyMaxPr (%v) worse than Optimum (%v) at %v",
				b.Series[1].Points[i].Y, b.Series[0].Points[i].Y, b.Series[1].Points[i].X)
		}
	}
}

func TestThm39Small(t *testing.T) {
	figs, err := Run("thm39", Small, 42)
	if err != nil {
		t.Fatal(err)
	}
	fig := figs[0]
	checkFigure(t, fig)
	// γ=0 (independent) must align 100% under both semantics.
	for _, s := range fig.Series {
		if s.Points[0].X != 0 {
			t.Fatalf("first gamma should be 0: %v", s.Points[0].X)
		}
		if s.Points[0].Y != 1 {
			t.Fatalf("%s: independent case alignment = %v, want 1", s.Name, s.Points[0].Y)
		}
	}
}

func TestCountersSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping counter-example sweep in -short mode (~17s)")
	}
	figs, err := Run("counters", Small, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 2 {
		t.Fatalf("counters produced %d figures", len(figs))
	}
	for _, f := range figs {
		checkFigure(t, f)
		if len(f.Notes) < 2 {
			t.Fatalf("%s: missing confidence notes", f.ID)
		}
	}
}

func TestFig7Small(t *testing.T) {
	figs, err := Run("fig7", Small, 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range figs {
		checkFigure(t, f)
		monotoneNonIncreasing(t, f, "GreedyMinVar")
	}
}

func TestFig9Small(t *testing.T) {
	figs, err := Run("fig9", Small, 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range figs {
		checkFigure(t, f)
	}
}

// adaptiveGolden is the exact rendering of the adaptive figure at Small
// scale, seed 42, captured before the decide-step was factored into
// core.NextAdaptiveStep (shared with the session subsystem). The
// refactor — and any future change to the shared step — must keep the
// simulated episodes bit-identical.
const adaptiveGolden = `# adaptive — Adaptive vs upfront MaxPr cleaning (CDC-firearms counters, extension)
# x: budget (fraction); y: fraction of ground truths where a counter was realized
# note: adaptive policy, when it finds a counter under full budget, spends on average 12% of the total cost (36/60 truths)
# note: tau = 4509; 60 simulated ground truths
budget (fraction)  AdaptiveMaxPr  GreedyMaxPr (upfront)
0.05               0              0
0.1                0.266667       0.266667
0.2                0.566667       0.416667
0.3                0.583333       0.433333
0.5                0.6            0.45
0.75               0.6            0.466667
1                  0.6            0.466667
`

func TestAdaptiveGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping adaptive-policy sweep in -short mode (~7s)")
	}
	figs, err := Run("adaptive", Small, 42)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := figs[0].Render(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != adaptiveGolden {
		t.Fatalf("adaptive figure drifted from the pinned rendering:\n--- got ---\n%s--- want ---\n%s", got, adaptiveGolden)
	}
}

func TestAdaptiveSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping adaptive-policy sweep in -short mode (~7s)")
	}
	figs, err := Run("adaptive", Small, 42)
	if err != nil {
		t.Fatal(err)
	}
	fig := figs[0]
	checkFigure(t, fig)
	// Counter rates are probabilities and non-decreasing in budget for the
	// adaptive policy (more budget can only help a stopping policy).
	for _, s := range fig.Series {
		prev := -1.0
		for _, p := range s.Points {
			if p.Y < 0 || p.Y > 1 {
				t.Fatalf("%s: rate %v out of [0,1]", s.Name, p.Y)
			}
			if s.Name == "AdaptiveMaxPr" {
				if p.Y < prev-1e-9 {
					t.Fatalf("adaptive counter rate decreased: %v after %v", p.Y, prev)
				}
				prev = p.Y
			}
		}
	}
}
