package expt

import (
	"context"
	"fmt"

	"github.com/factcheck/cleansel/internal/core"
	"github.com/factcheck/cleansel/internal/model"
	"github.com/factcheck/cleansel/internal/parallel"
)

// sweepSelector runs one selector across the budget fractions and scores
// each chosen set with metric (typically the remaining expected variance).
// The points are independent solves, so they run concurrently on the
// parallel worker pool; each lands in its own slot, and every selector
// and engine used by the figure runners is either stateless per call or
// guards its caches, so the series is bit-identical to a sequential
// sweep for every worker count.
func sweepSelector(ctx context.Context, db *model.DB, sel core.Selector, fracs []float64, metric func(model.Set) float64) (Series, error) {
	s := Series{Name: sel.Name(), Points: make([]Point, len(fracs))}
	err := parallel.For(ctx, len(fracs), func(_, i int) error {
		frac := fracs[i]
		T, err := sel.Select(db.Budget(frac))
		if err != nil {
			return fmt.Errorf("%s at budget %.2f: %w", sel.Name(), frac, err)
		}
		if c := T.Cost(db); c > db.Budget(frac)+1e-6 {
			return fmt.Errorf("%s exceeded budget: %v > %v", sel.Name(), c, db.Budget(frac))
		}
		s.Points[i] = Point{X: frac, Y: metric(T)}
		return nil
	})
	if err != nil {
		return Series{}, err
	}
	return s, nil
}

// sweepRandomAvg averages the Random baseline over reps seeds, as §4.1
// does (100 runs, error bars omitted). Each budget point runs on the
// worker pool; the per-point repetition seeds are fixed, so the
// averages do not depend on the worker count.
func sweepRandomAvg(ctx context.Context, db *model.DB, fracs []float64, reps int, seed uint64, metric func(model.Set) float64) (Series, error) {
	s := Series{Name: "Random", Points: make([]Point, len(fracs))}
	err := parallel.For(ctx, len(fracs), func(_, i int) error {
		frac := fracs[i]
		var sum float64
		for rep := 0; rep < reps; rep++ {
			sel := &core.Random{DB: db, Seed: seed + uint64(rep)*7919}
			T, err := sel.Select(db.Budget(frac))
			if err != nil {
				return err
			}
			sum += metric(T)
		}
		s.Points[i] = Point{X: frac, Y: sum / float64(reps)}
		return nil
	})
	if err != nil {
		return Series{}, err
	}
	return s, nil
}

// randomReps returns the number of Random repetitions per scale.
func randomReps(scale Scale) int {
	if scale == PaperScale {
		return 100
	}
	return 20
}
