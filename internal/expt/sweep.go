package expt

import (
	"fmt"

	"github.com/factcheck/cleansel/internal/core"
	"github.com/factcheck/cleansel/internal/model"
)

// sweepSelector runs one selector across the budget fractions and scores
// each chosen set with metric (typically the remaining expected variance).
func sweepSelector(db *model.DB, sel core.Selector, fracs []float64, metric func(model.Set) float64) (Series, error) {
	s := Series{Name: sel.Name()}
	for _, frac := range fracs {
		T, err := sel.Select(db.Budget(frac))
		if err != nil {
			return Series{}, fmt.Errorf("%s at budget %.2f: %w", sel.Name(), frac, err)
		}
		if c := T.Cost(db); c > db.Budget(frac)+1e-6 {
			return Series{}, fmt.Errorf("%s exceeded budget: %v > %v", sel.Name(), c, db.Budget(frac))
		}
		s.Points = append(s.Points, Point{X: frac, Y: metric(T)})
	}
	return s, nil
}

// sweepRandomAvg averages the Random baseline over reps seeds, as §4.1
// does (100 runs, error bars omitted).
func sweepRandomAvg(db *model.DB, fracs []float64, reps int, seed uint64, metric func(model.Set) float64) (Series, error) {
	s := Series{Name: "Random"}
	for _, frac := range fracs {
		var sum float64
		for rep := 0; rep < reps; rep++ {
			sel := &core.Random{DB: db, Seed: seed + uint64(rep)*7919}
			T, err := sel.Select(db.Budget(frac))
			if err != nil {
				return Series{}, err
			}
			sum += metric(T)
		}
		s.Points = append(s.Points, Point{X: frac, Y: sum / float64(reps)})
	}
	return s, nil
}

// randomReps returns the number of Random repetitions per scale.
func randomReps(scale Scale) int {
	if scale == PaperScale {
		return 100
	}
	return 20
}
