package expt

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/factcheck/cleansel/internal/claims"
	"github.com/factcheck/cleansel/internal/core"
	"github.com/factcheck/cleansel/internal/datasets"
	"github.com/factcheck/cleansel/internal/ev"
	"github.com/factcheck/cleansel/internal/model"
	"github.com/factcheck/cleansel/internal/parallel"
	"github.com/factcheck/cleansel/internal/query"
	"github.com/factcheck/cleansel/internal/rng"
)

func init() {
	register("fig8", runFig8)
	register("fig9", runFig9)
	register("fig10", runFig10)
}

// inActionFigures simulates the §4.3 "effectiveness in action" scenario:
// hidden true values are drawn, each algorithm spends its budget, the
// chosen values are revealed, and the fact-checker's posterior mean and
// standard deviation of the uniqueness measure are reported.
func inActionFigures(ctx context.Context, idMean, idStd, title string, w Workload, scale Scale, seed uint64) ([]*Figure, error) {
	g := w.Set.Dup()
	engine, err := ev.NewGroupEngine(w.DB, g)
	if err != nil {
		return nil, err
	}
	dists, err := w.DB.Discretes()
	if err != nil {
		return nil, err
	}
	r := rng.New(seed ^ 0xdecaf)
	truth := make([]float64, w.DB.N())
	for i, d := range dists {
		truth[i] = d.Sample(r)
	}
	trueDup := w.Set.DupValue(truth)

	fracs := budgetGrid(scale)
	figMean := &Figure{
		ID: idMean, Title: title + " — posterior mean of uniqueness",
		XLabel: "budget (fraction)", YLabel: "mean",
		Notes: []string{fmt.Sprintf("true duplicity of this scenario: %d", trueDup)},
	}
	figStd := &Figure{
		ID: idStd, Title: title + " — posterior standard deviation of uniqueness",
		XLabel: "budget (fraction)", YLabel: "standard deviation",
		Notes: []string{fmt.Sprintf("true duplicity of this scenario: %d", trueDup)},
	}

	naive := &core.GreedyNaive{DB: w.DB, Vars: g.Vars()}
	gmv, err := core.NewGreedyMinVarGroup(w.DB, g)
	if err != nil {
		return nil, err
	}
	best, err := core.NewBest(w.DB, g, 1)
	if err != nil {
		return nil, err
	}
	for _, sel := range []core.Selector{naive, gmv, best} {
		sm := Series{Name: sel.Name(), Points: make([]Point, len(fracs))}
		ss := Series{Name: sel.Name(), Points: make([]Point, len(fracs))}
		// Each budget point is an independent solve-then-condition run;
		// fan them out over the worker pool (CondMoments allocates its
		// own scratch, and the selectors are safe for concurrent Select).
		err := parallel.For(ctx, len(fracs), func(_, i int) error {
			frac := fracs[i]
			T, err := sel.Select(w.DB.Budget(frac))
			if err != nil {
				return err
			}
			known := make([]bool, w.DB.N())
			for _, o := range T {
				known[o] = true
			}
			mean, variance := engine.CondMoments(truth, known)
			sm.Points[i] = Point{X: frac, Y: mean}
			ss.Points[i] = Point{X: frac, Y: math.Sqrt(variance)}
			return nil
		})
		if err != nil {
			return nil, err
		}
		figMean.Series = append(figMean.Series, sm)
		figStd.Series = append(figStd.Series, ss)
	}
	return []*Figure{figMean, figStd}, nil
}

// runFig8 reproduces Figure 8 (CDC-causes uniqueness in action).
func runFig8(ctx context.Context, scale Scale, seed uint64) ([]*Figure, error) {
	return inActionFigures(ctx, "fig8a", "fig8b", "CDC-causes in action", CausesUniqueness(seed), scale, seed)
}

// runFig9 reproduces Figure 9 (URx, Γ=100, in action).
func runFig9(ctx context.Context, scale Scale, seed uint64) ([]*Figure, error) {
	return inActionFigures(ctx, "fig9a", "fig9b", "URx Γ=100 in action", SyntheticUniqueness(datasets.UR, 40, 100, seed), scale, seed)
}

// coveringUniquenessQuery builds the Figure 10 workload over n objects:
// disjoint 4-value windows covering all values ("we proportionally
// increase the number of perturbations to cover all values"), claim "as
// low as Γ=100".
func coveringUniquenessQuery(db *model.DB, n int) *query.GroupSum {
	w := SyntheticUniquenessFromDB(db, 100)
	return w.Set.Dup()
}

// SyntheticUniquenessFromDB wraps an existing synthetic database with the
// standard Γ-claim perturbation structure (all disjoint 4-windows).
func SyntheticUniquenessFromDB(db *model.DB, gamma float64) Workload {
	n := db.N()
	origStart := n - 4
	orig := claims.WindowSum("orig", origStart, 4)
	perturbs := claims.NonOverlappingWindows("w", n, 4, origStart, 0.5)
	set, err := claims.NewSet(orig, claims.LowerIsStronger, gamma, perturbs)
	if err != nil {
		panic(err)
	}
	return Workload{DB: db, Set: set}
}

// timingReps is how many times each fig10 measurement is repeated;
// the figure reports the median (robust to one-off scheduler noise)
// and the max−min spread (so a cross-machine comparison can tell a
// real difference from jitter).
func timingReps(scale Scale) int {
	if scale == Small {
		return 3
	}
	return 5
}

// timeMedian repeats a solve and reports the median and max−min spread
// of its wall-clock seconds. setup rebuilds the selector before each
// rep (a solved GreedyMinVar holds per-run state) outside the timed
// region, so only the solve itself is measured.
//
//lint:allow walltime — figure 10 reproduces the paper's running-time plots: its y-axis IS wall-clock seconds, measured around the solver calls
func timeMedian(ctx context.Context, reps int, setup func() (func(context.Context) error, error)) (median, spread float64, err error) {
	secs := make([]float64, 0, reps)
	for i := 0; i < reps; i++ {
		solve, err := setup()
		if err != nil {
			return 0, 0, err
		}
		start := time.Now()
		if err := solve(ctx); err != nil {
			return 0, 0, err
		}
		secs = append(secs, time.Since(start).Seconds())
	}
	sort.Float64s(secs)
	return secs[len(secs)/2], secs[len(secs)-1] - secs[0], nil
}

// timingNote documents the repetition scheme on a fig10 figure.
func timingNote(reps int) string {
	return fmt.Sprintf("each point is the median of %d repetitions; the spread series is max-min over those repetitions", reps)
}

// runFig10 measures GreedyMinVar's running time: (a) n=10,000 with
// increasing budget; (b) budget 5,000 with increasing n. Paper scale runs
// the full grid up to n=10⁶. Every point is the median over a few
// repetitions, with the max−min spread reported as its own series, so
// numbers quoted across machines carry their own error bars.
func runFig10(ctx context.Context, scale Scale, seed uint64) ([]*Figure, error) {
	reps := timingReps(scale)

	// (a) fixed n, varying budget.
	nA := 10000
	budgets := []float64{0.01, 0.05, 0.10, 0.20, 0.30}
	if scale == Small {
		nA = 2000
		budgets = []float64{0.01, 0.05, 0.10}
	}
	figA := &Figure{
		ID:     "fig10a",
		Title:  fmt.Sprintf("GreedyMinVar running time (URx, n=%d, uniqueness Γ=100)", nA),
		XLabel: "budget (fraction)",
		YLabel: "seconds",
		Notes:  []string{timingNote(reps)},
	}
	dbA := datasets.URx(nA, seed)
	gA := coveringUniquenessQuery(dbA, nA)
	sa := Series{Name: "GreedyMinVar"}
	saSpread := Series{Name: "spread (max-min)"}
	for _, frac := range budgets {
		med, spread, err := timeMedian(ctx, reps, func() (func(context.Context) error, error) {
			gmv, err := core.NewGreedyMinVarGroup(dbA, gA)
			if err != nil {
				return nil, err
			}
			return func(ctx context.Context) error {
				_, err := gmv.SelectContext(ctx, dbA.Budget(frac))
				return err
			}, nil
		})
		if err != nil {
			return nil, err
		}
		sa.Points = append(sa.Points, Point{X: frac, Y: med})
		saSpread.Points = append(saSpread.Points, Point{X: frac, Y: spread})
	}
	figA.Series = append(figA.Series, sa, saSpread)

	// (b) fixed budget, varying n.
	sizes := []int{5000, 10000, 100000, 500000, 1000000}
	if scale == Small {
		sizes = []int{2000, 5000, 10000}
	}
	figB := &Figure{
		ID:     "fig10b",
		Title:  "GreedyMinVar running time vs dataset size (budget 5000)",
		XLabel: "n (number of uncertain values)",
		YLabel: "seconds",
		Notes:  []string{timingNote(reps)},
	}
	sb := Series{Name: "GreedyMinVar"}
	sbSpread := Series{Name: "spread (max-min)"}
	for _, n := range sizes {
		db := datasets.URx(n, seed)
		g := coveringUniquenessQuery(db, n)
		med, spread, err := timeMedian(ctx, reps, func() (func(context.Context) error, error) {
			gmv, err := core.NewGreedyMinVarGroup(db, g)
			if err != nil {
				return nil, err
			}
			return func(ctx context.Context) error {
				_, err := gmv.SelectContext(ctx, 5000)
				return err
			}, nil
		})
		if err != nil {
			return nil, err
		}
		sb.Points = append(sb.Points, Point{X: float64(n), Y: med})
		sbSpread.Points = append(sbSpread.Points, Point{X: float64(n), Y: spread})
	}
	figB.Series = append(figB.Series, sb, sbSpread)
	return []*Figure{figA, figB}, nil
}
