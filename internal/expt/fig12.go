package expt

import (
	"context"
	"fmt"
	"math"

	"github.com/factcheck/cleansel/internal/claims"
	"github.com/factcheck/cleansel/internal/core"
	"github.com/factcheck/cleansel/internal/datasets"
	"github.com/factcheck/cleansel/internal/ev"
	"github.com/factcheck/cleansel/internal/maxpr"
	"github.com/factcheck/cleansel/internal/model"
	"github.com/factcheck/cleansel/internal/rng"
)

func init() {
	register("fig12", runFig12)
}

// adoptionsWindowSums builds the simplified Figure 12 workload: the claim
// is a 4-year window sum over Adoptions, perturbed by the non-overlapping
// windows; current values are NOT the distribution means.
func adoptionsWindowSums(seed uint64) Workload {
	db := datasets.Adoptions(seed)
	origStart := 20 // the last complete non-overlapping window (2009–2012)
	orig := claims.WindowSum("adoptions-4y", origStart, 4)
	perturbs := claims.NonOverlappingWindows("w", db.N(), 4, origStart, lambdaDecay)
	set, err := claims.NewSet(orig, claims.HigherIsStronger, orig.Eval(db.Currents()), perturbs)
	if err != nil {
		panic(err)
	}
	return Workload{DB: db, Set: set}
}

// runFig12 reproduces Figure 12: when current values deviate from the
// error-model means (they are redrawn from the distributions), the MinVar
// optimizer (Optimum) and the MaxPr optimizer (GreedyMaxPr) pursue
// genuinely different goals. Each algorithm is measured under BOTH
// objectives; the MaxPr metric is averaged over redraws of the current
// values, as in the paper (100 runs).
func runFig12(ctx context.Context, scale Scale, seed uint64) ([]*Figure, error) {
	w := adoptionsWindowSums(seed)
	bias := w.Set.Bias()
	modular, err := ev.NewModular(w.DB, bias)
	if err != nil {
		return nil, err
	}
	tau := 1.5 * math.Sqrt(modular.Variance())
	reps := 100
	if scale == Small {
		reps = 20
	}
	fracs := budgetGrid(scale)

	figVar := &Figure{
		ID:     "fig12a",
		Title:  "Competing objectives — expected variance (MinVar objective)",
		XLabel: "budget (fraction)",
		YLabel: "expected variance after cleaning",
		Notes:  []string{fmt.Sprintf("tau = %.4g (1.5·sd of bias)", tau)},
	}
	figPr := &Figure{
		ID:     "fig12b",
		Title:  "Competing objectives — probability of countering (MaxPr objective)",
		XLabel: "budget (fraction)",
		YLabel: "probability",
		Notes:  []string{fmt.Sprintf("averaged over %d redraws of current values", reps)},
	}

	// The MinVar side: Optimum's choices are independent of the current
	// values, so compute them once per budget.
	opt, err := core.NewOptimumModular(w.DB, bias, 0)
	if err != nil {
		return nil, err
	}
	optSets := make([]model.Set, len(fracs))
	for i, frac := range fracs {
		T, err := opt.Select(w.DB.Budget(frac))
		if err != nil {
			return nil, err
		}
		optSets[i] = T
	}

	r := rng.New(seed ^ 0xf16)
	ns, ok := w.DB.Normals()
	if !ok {
		return nil, fmt.Errorf("fig12: adoptions values must be normal")
	}
	// Accumulators: [algorithm][budget].
	sumPrOpt := make([]float64, len(fracs))
	sumPrGreedy := make([]float64, len(fracs))
	sumEVGreedy := make([]float64, len(fracs))
	for rep := 0; rep < reps; rep++ {
		// Redraw the current values from the error models.
		objs := append([]model.Object(nil), w.DB.Objects...)
		for i := range objs {
			objs[i].Current = ns[i].Sample(r)
		}
		dbRep := &model.DB{Objects: objs}
		eval, err := maxpr.NewNormalAffine(dbRep, bias, tau)
		if err != nil {
			return nil, err
		}
		greedy, err := core.NewGreedyMaxPr(dbRep, eval)
		if err != nil {
			return nil, err
		}
		for i, frac := range fracs {
			Tg, err := greedy.SelectContext(ctx, dbRep.Budget(frac))
			if err != nil {
				return nil, err
			}
			sumPrGreedy[i] += eval.Prob(Tg)
			sumEVGreedy[i] += modular.EV(Tg)
			sumPrOpt[i] += eval.Prob(optSets[i])
		}
	}

	sVarOpt := Series{Name: "MinVar (Optimum)"}
	sVarGreedy := Series{Name: "MaxPr (GreedyMaxPr)"}
	sPrOpt := Series{Name: "MinVar (Optimum)"}
	sPrGreedy := Series{Name: "MaxPr (GreedyMaxPr)"}
	for i, frac := range fracs {
		sVarOpt.Points = append(sVarOpt.Points, Point{X: frac, Y: modular.EV(optSets[i])})
		sVarGreedy.Points = append(sVarGreedy.Points, Point{X: frac, Y: sumEVGreedy[i] / float64(reps)})
		sPrOpt.Points = append(sPrOpt.Points, Point{X: frac, Y: sumPrOpt[i] / float64(reps)})
		sPrGreedy.Points = append(sPrGreedy.Points, Point{X: frac, Y: sumPrGreedy[i] / float64(reps)})
	}
	figVar.Series = append(figVar.Series, sVarOpt, sVarGreedy)
	figPr.Series = append(figPr.Series, sPrOpt, sPrGreedy)
	return []*Figure{figVar, figPr}, nil
}
