package expt

import (
	"fmt"

	"github.com/factcheck/cleansel/internal/claims"
	"github.com/factcheck/cleansel/internal/datasets"
	"github.com/factcheck/cleansel/internal/model"
)

// Workload bundles a database with the perturbation set of the claim
// being checked.
type Workload struct {
	DB  *model.DB
	Set *claims.Set
}

// lambdaDecay is the sensibility decay rate used throughout §4.1.
const lambdaDecay = 1.5

// AdoptionsFairness is the §4.1 Giuliani workload: the window-aggregate
// comparison 1993–1996 vs 1989–1992 over Adoptions with 18 span
// perturbations, sensibility decaying at λ=1.5 with the ending-year
// distance.
func AdoptionsFairness(seed uint64) Workload {
	db := datasets.Adoptions(seed)
	orig := claims.WindowComparison("adoptions-93-96-vs-89-92", 0, 4, 4)
	all := claims.SlidingComparisons("cmp", db.N(), 4, 0, lambdaDecay)
	perturbs := all[:0:0]
	for _, p := range all {
		if p.Distance > 0 { // original span excluded: 18 remain
			perturbs = append(perturbs, p)
		}
	}
	set, err := claims.NewSet(orig, claims.HigherIsStronger, orig.Eval(db.Currents()), perturbs)
	if err != nil {
		panic(err)
	}
	return Workload{DB: db, Set: set}
}

// FirearmsFairness compares back-to-back four-year firearm-injury windows
// (2001–2004 vs 2005–2008) with the 10 span perturbations of §4.1.
func FirearmsFairness(seed uint64) Workload {
	db := datasets.CDCFirearms(seed)
	orig := claims.WindowComparison("firearms-05-08-vs-01-04", 0, 4, 4)
	perturbs := claims.SlidingComparisons("cmp", db.N(), 4, 0, lambdaDecay)
	set, err := claims.NewSet(orig, claims.HigherIsStronger, orig.Eval(db.Currents()), perturbs)
	if err != nil {
		panic(err)
	}
	return Workload{DB: db, Set: set}
}

// causesShareClaim builds "transportation injuries exceed 30% of all
// other causes combined over the 2-year window starting at year index s".
func causesShareClaim(s int) *claims.Claim {
	coef := map[int]float64{}
	for _, yi := range []int{s, s + 1} {
		coef[datasets.CDCCausesIndex(datasets.Transportation, yi)] += 1
		for _, c := range []datasets.Cause{datasets.Firearms, datasets.Drowning, datasets.Falls} {
			coef[datasets.CDCCausesIndex(c, yi)] -= 0.3
		}
	}
	return claims.NewClaim(fmt.Sprintf("transport-share@%d", s), 0, coef)
}

// CausesFairness is the §4.1 CDC-causes workload: the transportation
// share claim over the last two years with 16 sliding-window
// perturbations.
func CausesFairness(seed uint64) Workload {
	db := datasets.CDCCauses(seed)
	years := len(datasets.CDCYears)
	origStart := years - 2 // 2016–2017
	orig := causesShareClaim(origStart)
	var perturbs []claims.Perturbed
	for s := 0; s+1 < years; s++ {
		d := float64(origStart - s)
		if d < 0 {
			d = -d
		}
		perturbs = append(perturbs, claims.Perturbed{
			Claim:       causesShareClaim(s),
			Sensibility: claims.ExponentialSensibility(lambdaDecay, d),
			Distance:    d,
		})
	}
	set, err := claims.NewSet(orig, claims.HigherIsStronger, orig.Eval(db.Currents()), perturbs)
	if err != nil {
		panic(err)
	}
	return Workload{DB: db, Set: set}
}

// FirearmsUniqueness is the §4.2 workload: a two-year window of firearm
// injuries claimed to be "as low as Γ", checked against the 8 disjoint
// two-year-window perturbations over the 6-point discretization. The
// claim anchors at the start of the series: our embedded estimates rise
// over time, so a low-claim is only plausible (and its duplicity only
// uncertain) for the early windows — the analogue of the paper's setup,
// where the claim was plausible at the current values.
func FirearmsUniqueness(seed uint64) Workload {
	db := datasets.CDCFirearms(seed).Discretized(6)
	years := db.N()
	orig := claims.WindowSum("firearms-01-02", 0, 2)
	perturbs := claims.NonOverlappingWindows("w", years, 2, 0, 1.0)
	set, err := claims.NewSet(orig, claims.LowerIsStronger, orig.Eval(db.Currents()), perturbs)
	if err != nil {
		panic(err)
	}
	return Workload{DB: db, Set: set}
}

// causesSumClaim sums all four causes over the 2-year window starting at
// year index s (8 object values).
func causesSumClaim(s int) *claims.Claim {
	coef := map[int]float64{}
	for _, yi := range []int{s, s + 1} {
		for c := datasets.Firearms; c < datasets.NumCauses; c++ {
			coef[datasets.CDCCausesIndex(c, yi)] = 1
		}
	}
	return claims.NewClaim(fmt.Sprintf("all-causes@%d", s), 0, coef)
}

// CausesUniqueness is the §4.2 CDC-causes workload over the 4-point
// discretization: 8 perturbations, each summing 8 object values. Like
// FirearmsUniqueness, the low-claim anchors at the first window of the
// (rising) series so its duplicity is genuinely uncertain.
func CausesUniqueness(seed uint64) Workload {
	db := datasets.CDCCauses(seed).Discretized(4)
	years := len(datasets.CDCYears)
	origStart := 0
	orig := causesSumClaim(origStart)
	var perturbs []claims.Perturbed
	for s := 0; s+2 <= years; s += 2 {
		d := float64(origStart-s) / 2
		if d < 0 {
			d = -d
		}
		perturbs = append(perturbs, claims.Perturbed{
			Claim:       causesSumClaim(s),
			Sensibility: claims.ExponentialSensibility(1.0, d),
			Distance:    d,
		})
	}
	set, err := claims.NewSet(orig, claims.LowerIsStronger, orig.Eval(db.Currents()), perturbs)
	if err != nil {
		panic(err)
	}
	return Workload{DB: db, Set: set}
}

// SyntheticUniqueness is the §4.2 synthetic workload: n values, the claim
// sums 4 consecutive values and asserts the sum is as low as Γ;
// perturbations are the n/4 disjoint windows.
func SyntheticUniqueness(kind datasets.SyntheticKind, n int, gamma float64, seed uint64) Workload {
	db := datasets.Synthetic(kind, n, seed)
	origStart := n - 4
	orig := claims.WindowSum("orig", origStart, 4)
	perturbs := claims.NonOverlappingWindows("w", n, 4, origStart, 0.5)
	set, err := claims.NewSet(orig, claims.LowerIsStronger, gamma, perturbs)
	if err != nil {
		panic(err)
	}
	return Workload{DB: db, Set: set}
}

// StreamClaim is one arrival in a synthetic claim stream: the arrival
// name (the "paraphrase" under which the claim circulates) plus the
// underlying perturbation set.
type StreamClaim struct {
	Name string
	Set  *claims.Set
}

// ClaimStream models the triage firehose: arrivals claim-arrivals over
// one shared n-value synthetic dataset. The stream cycles over
// families distinct base claims — w-value window-sum low-claims
// anchored at different spans, all asserting one shared Γ — so once
// the cycle wraps, arrivals are paraphrases (the same claim under a
// new name), while distinct families still share every duplicity
// indicator term through the common Γ. That is exactly the structure
// bulk triage amortizes: signature dedup collapses the paraphrases,
// and the cross-claim EV cache collapses the Γ-family term
// enumerations. The window width w sets the per-term enumeration cost
// (support^w tuples), so it tunes how solve-heavy each claim is
// relative to fixed per-request overhead. Fully deterministic in
// (kind, n, w, arrivals, families, seed).
//
// The dataset uses dense supports (every object carries MaxSupport
// values), so each w-window term enumerates MaxSupport^w outcomes —
// the solve-heavy regime where bulk amortization matters most.
func ClaimStream(kind datasets.SyntheticKind, n, w, arrivals, families int, seed uint64) (*model.DB, []StreamClaim) {
	if w <= 0 || n < 2*w || families <= 0 || arrivals < 0 {
		panic("expt: ClaimStream needs w > 0, n >= 2*w, families > 0, arrivals >= 0")
	}
	db := datasets.SyntheticK(kind, n, datasets.MaxSupport, seed)
	u := db.Currents()
	// Shared asserted Γ: the mean disjoint-window sum at the current
	// values, so "as low as Γ" is plausible for some spans and doubtful
	// for others — duplicity is genuinely uncertain.
	var tot float64
	cnt := 0
	for s := 0; s+w <= n; s += w {
		for i := s; i < s+w; i++ {
			tot += u[i]
		}
		cnt++
	}
	gamma := tot / float64(cnt)
	base := make([]*claims.Set, families)
	for b := range base {
		origStart := b % (n - w + 1)
		orig := claims.WindowSum(fmt.Sprintf("low-claim-%d", b), origStart, w)
		perturbs := claims.NonOverlappingWindows("w", n, w, origStart, 0.5)
		set, err := claims.NewSet(orig, claims.LowerIsStronger, gamma, perturbs)
		if err != nil {
			panic(err)
		}
		base[b] = set
	}
	out := make([]StreamClaim, arrivals)
	for i := range out {
		b := i % families
		out[i] = StreamClaim{Name: fmt.Sprintf("arrival-%04d/fam-%d", i, b), Set: base[b]}
	}
	return db, out
}

// FirearmsRobustness is the §4.2 robustness workload: "the number of
// firearm injuries over the last two years is as high as Γ′".
func FirearmsRobustness(seed uint64) Workload {
	db := datasets.CDCFirearms(seed).Discretized(6)
	years := db.N()
	orig := claims.WindowSum("firearms-last-2y", years-2, 2)
	perturbs := claims.NonOverlappingWindows("w", years, 2, years-2, 1.0)
	set, err := claims.NewSet(orig, claims.HigherIsStronger, orig.Eval(db.Currents()), perturbs)
	if err != nil {
		panic(err)
	}
	return Workload{DB: db, Set: set}
}

// SyntheticRobustness is the §4.2 synthetic robustness workload: n=100
// values, 25 disjoint window perturbations, claim "as high as Γ′".
func SyntheticRobustness(kind datasets.SyntheticKind, n int, gammaPrime float64, seed uint64) Workload {
	db := datasets.Synthetic(kind, n, seed)
	origStart := n - 4
	orig := claims.WindowSum("orig", origStart, 4)
	perturbs := claims.NonOverlappingWindows("w", n, 4, origStart, 0.5)
	set, err := claims.NewSet(orig, claims.HigherIsStronger, gammaPrime, perturbs)
	if err != nil {
		panic(err)
	}
	return Workload{DB: db, Set: set}
}

// FirearmsLowest is the §4.3 counter-finding workload: the claim that the
// 2001–2004 window had the fewest firearm injuries in recent history.
// Direction is HigherIsStronger so that a *lower* perturbation window
// weakens the claim — i.e., is a counterargument — matching the bias/
// MaxPr machinery (§2.2).
func FirearmsLowest(seed uint64) Workload {
	db := datasets.CDCFirearms(seed)
	orig := claims.WindowSum("firearms-01-04", 0, 4)
	all := claims.SlidingWindows("w", db.N(), 4, 0, 0.35)
	perturbs := all[:0:0]
	for _, p := range all {
		if p.Distance > 0 {
			perturbs = append(perturbs, p)
		}
	}
	set, err := claims.NewSet(orig, claims.HigherIsStronger, orig.Eval(db.Currents()), perturbs)
	if err != nil {
		panic(err)
	}
	return Workload{DB: db, Set: set}
}

// SyntheticLowest is the §4.3 URx counter-finding workload: the original
// window's current sum is the reference; a lower window counters it.
func SyntheticLowest(kind datasets.SyntheticKind, n int, seed uint64) Workload {
	db := datasets.Synthetic(kind, n, seed)
	origStart := n - 4
	orig := claims.WindowSum("orig", origStart, 4)
	all := claims.NonOverlappingWindows("w", n, 4, origStart, 0.35)
	perturbs := all[:0:0]
	for _, p := range all {
		if p.Distance > 0 {
			perturbs = append(perturbs, p)
		}
	}
	set, err := claims.NewSet(orig, claims.HigherIsStronger, orig.Eval(db.Currents()), perturbs)
	if err != nil {
		panic(err)
	}
	return Workload{DB: db, Set: set}
}
