package expt

import (
	"context"
	"fmt"

	"github.com/factcheck/cleansel/internal/core"
	"github.com/factcheck/cleansel/internal/ev"
)

func init() {
	register("fig1", runFig1)
}

// runFig1 reproduces Figure 1: effectiveness of the algorithms in
// reducing uncertainty in claim *fairness* (a modular MinVar objective)
// on Adoptions (a, b), CDC-firearms (c), and CDC-causes (d).
func runFig1(ctx context.Context, scale Scale, seed uint64) ([]*Figure, error) {
	fracs := budgetGrid(scale)
	var out []*Figure

	type spec struct {
		id, title string
		w         Workload
		random    bool
	}
	specs := []spec{
		{"fig1a", "Variance in fairness after cleaning (Adoptions)", AdoptionsFairness(seed), true},
		{"fig1c", "Variance in fairness after cleaning (CDC-firearms)", FirearmsFairness(seed), false},
		{"fig1d", "Variance in fairness after cleaning (CDC-causes)", CausesFairness(seed), false},
	}
	for _, sp := range specs {
		fig, err := fairnessFigure(ctx, sp.id, sp.title, sp.w, fracs, sp.random, scale, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, fig)
		if sp.id == "fig1a" {
			out = append(out, zoomFigure(fig))
		}
	}
	return out, nil
}

// fairnessFigure runs the modular-objective algorithm set of §4.1 on one
// workload.
func fairnessFigure(ctx context.Context, id, title string, w Workload, fracs []float64, withRandom bool, scale Scale, seed uint64) (*Figure, error) {
	bias := w.Set.Bias()
	engine, err := ev.NewModular(w.DB, bias)
	if err != nil {
		return nil, err
	}
	metric := engine.EV

	fig := &Figure{
		ID:     id,
		Title:  title,
		XLabel: "budget (fraction)",
		YLabel: "variance in fairness after cleaning",
		Notes: []string{
			fmt.Sprintf("m=%d perturbations; initial variance %.6g", w.Set.M(), engine.Variance()),
		},
	}
	if withRandom {
		s, err := sweepRandomAvg(ctx, w.DB, fracs, randomReps(scale), seed+1, metric)
		if err != nil {
			return nil, err
		}
		fig.Series = append(fig.Series, s)
	}
	vars := bias.Vars()
	selectors := []core.Selector{
		&core.GreedyNaiveCostBlind{DB: w.DB, Vars: vars},
		&core.GreedyNaive{DB: w.DB, Vars: vars},
	}
	gmv, err := core.NewGreedyMinVarModular(w.DB, bias)
	if err != nil {
		return nil, err
	}
	opt, err := core.NewOptimumModular(w.DB, bias, 0)
	if err != nil {
		return nil, err
	}
	selectors = append(selectors, gmv, opt)
	for _, sel := range selectors {
		s, err := sweepSelector(ctx, w.DB, sel, fracs, metric)
		if err != nil {
			return nil, err
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// zoomFigure derives Figure 1(b): the low-budget zoom of 1(a) without the
// Random baseline.
func zoomFigure(a *Figure) *Figure {
	z := &Figure{
		ID:     "fig1b",
		Title:  a.Title + " — zoomed, no Random",
		XLabel: a.XLabel,
		YLabel: a.YLabel,
		Notes:  a.Notes,
	}
	for _, s := range a.Series {
		if s.Name == "Random" {
			continue
		}
		zs := Series{Name: s.Name}
		for _, p := range s.Points {
			if p.X <= 0.3 {
				zs.Points = append(zs.Points, p)
			}
		}
		z.Series = append(z.Series, zs)
	}
	return z
}
