package expt

import (
	"context"
	"fmt"

	"github.com/factcheck/cleansel/internal/core"
	"github.com/factcheck/cleansel/internal/dist"
	"github.com/factcheck/cleansel/internal/ev"
	"github.com/factcheck/cleansel/internal/linalg"
	"github.com/factcheck/cleansel/internal/maxpr"
	"github.com/factcheck/cleansel/internal/model"
	"github.com/factcheck/cleansel/internal/numeric"
	"github.com/factcheck/cleansel/internal/query"
	"github.com/factcheck/cleansel/internal/rng"
)

func init() {
	register("thm39", runThm39)
}

// runThm39 probes Theorem 3.9 empirically: for linear claims with normal
// errors centered at the current values, how often do the MinVar optimum
// and the MaxPr optimum coincide (by exhaustive search)? γ=0 is the
// independent case, where alignment is provable (Lemma 3.1); γ>0 injects
// correlation, under both the proper Schur semantics and the paper's
// marginal simplification.
func runThm39(ctx context.Context, scale Scale, seed uint64) ([]*Figure, error) {
	trials := 40
	n := 6
	if scale == PaperScale {
		trials = 200
	}
	gammas := []float64{0, 0.2, 0.4, 0.6, 0.8}
	fig := &Figure{
		ID:     "thm39",
		Title:  "Theorem 3.9 — empirical alignment rate of MinVar and MaxPr optima",
		XLabel: "gamma (dependency strength)",
		YLabel: "fraction of instances with aligned optima",
	}
	schur := Series{Name: "Schur semantics"}
	marginal := Series{Name: "marginal semantics"}
	r := rng.New(seed ^ 0x39)
	for _, gamma := range gammas {
		agreeS, agreeM := 0, 0
		for trial := 0; trial < trials; trial++ {
			db, f := randomCenteredInstance(r, n, gamma)
			budget := (0.25 + 0.5*r.Float64()) * db.TotalCost()
			tau := 0.5 + r.Float64()
			okS, okM, err := alignmentCheck(db, f, tau, budget)
			if err != nil {
				return nil, err
			}
			if okS {
				agreeS++
			}
			if okM {
				agreeM++
			}
		}
		schur.Points = append(schur.Points, Point{X: gamma, Y: float64(agreeS) / float64(trials)})
		marginal.Points = append(marginal.Points, Point{X: gamma, Y: float64(agreeM) / float64(trials)})
	}
	fig.Series = append(fig.Series, schur, marginal)
	fig.Notes = append(fig.Notes,
		fmt.Sprintf("%d random instances per gamma, n=%d, exhaustive optima", trials, n),
		"gamma=0 must align exactly (Lemma 3.1); deviations under correlation quantify how far Theorem 3.9's simplification stretches",
	)
	return []*Figure{fig}, nil
}

// randomCenteredInstance builds a normal database centered at its current
// values with a γ-decay covariance and a random linear claim.
func randomCenteredInstance(r *rng.RNG, n int, gamma float64) (*model.DB, *query.Affine) {
	objs := make([]model.Object, n)
	sig := make([]float64, n)
	coef := map[int]float64{}
	for i := 0; i < n; i++ {
		sig[i] = 0.5 + 2.5*r.Float64()
		u := r.Uniform(-5, 5)
		nd, err := dist.NewNormal(u, sig[i])
		if err != nil {
			panic(err)
		}
		objs[i] = model.Object{Name: "o", Cost: float64(r.IntRange(1, 6)), Current: u, Value: nd}
		coef[i] = r.Uniform(-2, 2)
	}
	db := model.New(objs)
	if gamma > 0 {
		cov := linalg.NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				d := j - i
				if d < 0 {
					d = -d
				}
				v := sig[i] * sig[j]
				for k := 0; k < d; k++ {
					v *= gamma
				}
				cov.Set(i, j, v)
			}
		}
		db.Cov = cov
	}
	return db, query.NewAffine(r.Uniform(-2, 2), coef)
}

// alignmentCheck reports whether the exhaustive MinVar and MaxPr optima
// agree under the Schur semantics and under the marginal semantics.
func alignmentCheck(db *model.DB, f *query.Affine, tau, budget float64) (schur, marginal bool, err error) {
	eng, err := ev.NewMVN(db, f)
	if err != nil {
		return false, false, err
	}
	evalS, err := maxpr.NewMVNAffine(db, f, tau, false)
	if err != nil {
		return false, false, err
	}
	evalM, err := maxpr.NewMVNAffine(db, f, tau, true)
	if err != nil {
		return false, false, err
	}
	schur, err = optimaAgree(db, eng.EV, evalS.Prob, budget)
	if err != nil {
		return false, false, err
	}
	marginal, err = optimaAgree(db, eng.MarginalEV, evalM.Prob, budget)
	if err != nil {
		return false, false, err
	}
	return schur, marginal, nil
}

// optimaAgree exhaustively solves both problems and compares the achieved
// objectives of the two optima.
func optimaAgree(db *model.DB, evFn func(model.Set) float64, prFn func(model.Set) float64, budget float64) (bool, error) {
	optMin, err := core.NewOPT("OPTMinVar", db, evFn, false)
	if err != nil {
		return false, err
	}
	optMax, err := core.NewOPT("OPTMaxPr", db, prFn, true)
	if err != nil {
		return false, err
	}
	Tmin, err := optMin.Select(budget)
	if err != nil {
		return false, err
	}
	Tmax, err := optMax.Select(budget)
	if err != nil {
		return false, err
	}
	return numeric.AlmostEqual(evFn(Tmin), evFn(Tmax), 1e-9) &&
		numeric.AlmostEqual(prFn(Tmin), prFn(Tmax), 1e-9), nil
}
