// Package expt regenerates every figure of the paper's evaluation (§4)
// plus the in-text experiments: given a figure id, a scale, and a seed, a
// runner assembles the workload (dataset + claim + perturbations), runs
// the competing selection algorithms over a budget sweep, and returns the
// measured series. Output is rendered as ASCII tables or CSV; cmd/repro
// is the command-line driver and bench_test.go exercises every runner.
package expt

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Scale selects the experiment size.
type Scale int

const (
	// Small runs reduced grids suitable for tests and benchmarks.
	Small Scale = iota
	// PaperScale runs the full grids of the paper.
	PaperScale
)

// ParseScale converts "small"/"paper" to a Scale.
func ParseScale(s string) (Scale, error) {
	switch strings.ToLower(s) {
	case "small", "":
		return Small, nil
	case "paper", "full":
		return PaperScale, nil
	}
	return Small, fmt.Errorf("expt: unknown scale %q (want small or paper)", s)
}

// Point is one (x, y) measurement.
type Point struct {
	X, Y float64
}

// Series is a named measured curve.
type Series struct {
	Name   string
	Points []Point
}

// Figure is one reproduced artifact: a set of series over a shared x-axis
// plus free-form notes (scenario outcomes, thresholds, agreements).
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  []string
}

// Render writes an aligned ASCII table of the figure.
func (f *Figure) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s — %s\n", f.ID, f.Title); err != nil {
		return err
	}
	fmt.Fprintf(w, "# x: %s; y: %s\n", f.XLabel, f.YLabel)
	for _, n := range f.Notes {
		fmt.Fprintf(w, "# note: %s\n", n)
	}
	if len(f.Series) == 0 {
		_, err := fmt.Fprintln(w, "(no series)")
		return err
	}
	// Collect the union of x values, sorted.
	xsSet := map[float64]struct{}{}
	for _, s := range f.Series {
		for _, p := range s.Points {
			xsSet[p.X] = struct{}{}
		}
	}
	xs := make([]float64, 0, len(xsSet))
	for x := range xsSet {
		xs = append(xs, x)
	}
	sort.Float64s(xs)
	// Header.
	cols := make([]string, 0, len(f.Series)+1)
	cols = append(cols, f.XLabel)
	for _, s := range f.Series {
		cols = append(cols, s.Name)
	}
	widths := make([]int, len(cols))
	rows := make([][]string, 0, len(xs))
	for _, x := range xs {
		row := make([]string, len(cols))
		row[0] = trimFloat(x)
		for i, s := range f.Series {
			row[i+1] = ""
			// The x values were collected verbatim from these same
			// points, so the match below is identity, not arithmetic.
			//lint:allow floateq — table assembly matches x values collected verbatim from the series points; no arithmetic happens between collection and compare
			for _, p := range s.Points {
				if p.X == x {
					row[i+1] = trimFloat(p.Y)
					break
				}
			}
		}
		rows = append(rows, row)
	}
	for i, c := range cols {
		widths[i] = len(c)
	}
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	writeRow(cols)
	for _, row := range rows {
		writeRow(row)
	}
	return nil
}

// WriteCSV writes the figure as long-format CSV (figure,series,x,y).
func (f *Figure) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "figure,series,x,y"); err != nil {
		return err
	}
	for _, s := range f.Series {
		for _, p := range s.Points {
			if _, err := fmt.Fprintf(w, "%s,%s,%v,%v\n", f.ID, s.Name, p.X, p.Y); err != nil {
				return err
			}
		}
	}
	return nil
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.6g", v)
	return s
}

// Runner produces one or more figures. The context flows into the
// parallel sweeps, so cancelling it aborts an in-flight experiment.
type Runner func(ctx context.Context, scale Scale, seed uint64) ([]*Figure, error)

// registry maps experiment ids to runners; populated by init() in the
// per-figure files.
var registry = map[string]Runner{}

// register adds a runner (panics on duplicates; programmer error).
func register(id string, r Runner) {
	if _, dup := registry[id]; dup {
		panic("expt: duplicate runner " + id)
	}
	registry[id] = r
}

// IDs lists all registered experiment ids, sorted.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes the registered experiment without cancellation.
func Run(id string, scale Scale, seed uint64) ([]*Figure, error) {
	return RunContext(context.Background(), id, scale, seed)
}

// RunContext executes the registered experiment, aborting the parallel
// sweeps when ctx is cancelled.
func RunContext(ctx context.Context, id string, scale Scale, seed uint64) ([]*Figure, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("expt: unknown experiment %q (known: %s)", id, strings.Join(IDs(), ", "))
	}
	return r(ctx, scale, seed)
}

// budgetGrid returns the budget fractions of the sweep.
func budgetGrid(scale Scale) []float64 {
	step := 0.1
	if scale == PaperScale {
		step = 0.04
	}
	var out []float64
	for b := 0.0; b < 1.0+1e-9; b += step {
		out = append(out, round2(b))
	}
	return out
}

func round2(v float64) float64 {
	return float64(int(v*100+0.5)) / 100
}
