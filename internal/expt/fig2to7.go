package expt

import (
	"context"
	"fmt"

	"github.com/factcheck/cleansel/internal/core"
	"github.com/factcheck/cleansel/internal/datasets"
	"github.com/factcheck/cleansel/internal/ev"
	"github.com/factcheck/cleansel/internal/query"
)

func init() {
	register("fig2", runFig2)
	register("fig3", runFig3)
	register("fig4", runFig4)
	register("fig5", runFig5)
	register("fig6", runFig6)
	register("fig7", runFig7)
}

// UniquenessGammas lists the Γ sweep of Figures 3 and 5 (URx/SMx).
var UniquenessGammas = []float64{50, 100, 150, 200, 250, 300}

// UniquenessGammasLN lists the Γ sweep of Figure 4 (LNx sums live on a
// much smaller range).
var UniquenessGammasLN = []float64{3.0, 3.5, 4.0, 4.5, 5.0, 5.5}

// nonModularFigure runs the §4.2 algorithm set — GreedyNaive,
// GreedyMinVar, Best — on a GroupSum objective and reports the expected
// variance after cleaning.
func nonModularFigure(ctx context.Context, id, title string, w Workload, g *query.GroupSum, fracs []float64) (*Figure, error) {
	engine, err := ev.NewGroupEngine(w.DB, g)
	if err != nil {
		return nil, err
	}
	metric := engine.EV
	fig := &Figure{
		ID:     id,
		Title:  title,
		XLabel: "budget (fraction)",
		YLabel: "expected variance after cleaning",
		Notes: []string{
			fmt.Sprintf("m=%d perturbations; initial variance %.6g", w.Set.M(), engine.Variance()),
		},
	}
	naive := &core.GreedyNaive{DB: w.DB, Vars: g.Vars()}
	gmv, err := core.NewGreedyMinVarGroup(w.DB, g)
	if err != nil {
		return nil, err
	}
	best, err := core.NewBest(w.DB, g, 1)
	if err != nil {
		return nil, err
	}
	for _, sel := range []core.Selector{naive, gmv, best} {
		s, err := sweepSelector(ctx, w.DB, sel, fracs, metric)
		if err != nil {
			return nil, err
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// runFig2 reproduces Figure 2: uncertainty in claim uniqueness on the CDC
// datasets.
func runFig2(ctx context.Context, scale Scale, seed uint64) ([]*Figure, error) {
	fracs := budgetGrid(scale)
	wf := FirearmsUniqueness(seed)
	fa, err := nonModularFigure(ctx, "fig2a", "Expected variance of uniqueness (CDC-firearms, 6-point discretization)", wf, wf.Set.Dup(), fracs)
	if err != nil {
		return nil, err
	}
	wc := CausesUniqueness(seed)
	fb, err := nonModularFigure(ctx, "fig2b", "Expected variance of uniqueness (CDC-causes, 4-point discretization)", wc, wc.Set.Dup(), fracs)
	if err != nil {
		return nil, err
	}
	return []*Figure{fa, fb}, nil
}

// syntheticUniquenessFigures runs the Γ sweep for one synthetic
// generator (Figures 3, 4, 5).
func syntheticUniquenessFigures(ctx context.Context, idPrefix string, kind datasets.SyntheticKind, gammas []float64, scale Scale, seed uint64) ([]*Figure, error) {
	fracs := budgetGrid(scale)
	n := 40
	var out []*Figure
	for gi, gamma := range gammas {
		if scale == Small && gi%2 == 1 {
			continue // halve the Γ grid at small scale
		}
		w := SyntheticUniqueness(kind, n, gamma, seed)
		id := fmt.Sprintf("%s%c", idPrefix, 'a'+gi)
		title := fmt.Sprintf("Expected variance of uniqueness (%v, Γ=%v)", kind, gamma)
		fig, err := nonModularFigure(ctx, id, title, w, w.Set.Dup(), fracs)
		if err != nil {
			return nil, err
		}
		out = append(out, fig)
	}
	return out, nil
}

func runFig3(ctx context.Context, scale Scale, seed uint64) ([]*Figure, error) {
	return syntheticUniquenessFigures(ctx, "fig3", datasets.UR, UniquenessGammas, scale, seed)
}

func runFig4(ctx context.Context, scale Scale, seed uint64) ([]*Figure, error) {
	return syntheticUniquenessFigures(ctx, "fig4", datasets.LN, UniquenessGammasLN, scale, seed)
}

func runFig5(ctx context.Context, scale Scale, seed uint64) ([]*Figure, error) {
	return syntheticUniquenessFigures(ctx, "fig5", datasets.SM, UniquenessGammas, scale, seed)
}

// runFig6 derives Figure 6: the absolute improvement of GreedyMinVar over
// GreedyNaive for the Figure 3 (URx) and Figure 4 (LNx) scenarios.
func runFig6(ctx context.Context, scale Scale, seed uint64) ([]*Figure, error) {
	specs := []struct {
		id     string
		kind   datasets.SyntheticKind
		gammas []float64
	}{
		{"fig6a", datasets.UR, UniquenessGammas},
		{"fig6b", datasets.LN, UniquenessGammasLN},
	}
	fracs := budgetGrid(scale)
	var out []*Figure
	for _, sp := range specs {
		fig := &Figure{
			ID:     sp.id,
			Title:  fmt.Sprintf("Absolute improvement of GreedyMinVar over GreedyNaive (%v)", sp.kind),
			XLabel: "budget (fraction)",
			YLabel: "expected-variance reduction vs GreedyNaive",
		}
		for gi, gamma := range sp.gammas {
			if scale == Small && gi%2 == 1 {
				continue
			}
			w := SyntheticUniqueness(sp.kind, 40, gamma, seed)
			g := w.Set.Dup()
			engine, err := ev.NewGroupEngine(w.DB, g)
			if err != nil {
				return nil, err
			}
			naive := &core.GreedyNaive{DB: w.DB, Vars: g.Vars()}
			gmv, err := core.NewGreedyMinVarGroup(w.DB, g)
			if err != nil {
				return nil, err
			}
			sn, err := sweepSelector(ctx, w.DB, naive, fracs, engine.EV)
			if err != nil {
				return nil, err
			}
			sg, err := sweepSelector(ctx, w.DB, gmv, fracs, engine.EV)
			if err != nil {
				return nil, err
			}
			imp := Series{Name: fmt.Sprintf("Γ=%v", gamma)}
			for i := range sn.Points {
				imp.Points = append(imp.Points, Point{
					X: sn.Points[i].X,
					Y: sn.Points[i].Y - sg.Points[i].Y,
				})
			}
			fig.Series = append(fig.Series, imp)
			fig.Notes = append(fig.Notes,
				fmt.Sprintf("Γ=%v: initial variance %.6g", gamma, engine.Variance()))
		}
		out = append(out, fig)
	}
	return out, nil
}

// runFig7 reproduces Figure 7: robustness (fragility) on CDC-firearms and
// URx with Γ′=100.
func runFig7(ctx context.Context, scale Scale, seed uint64) ([]*Figure, error) {
	fracs := budgetGrid(scale)
	wf := FirearmsRobustness(seed)
	fa, err := nonModularFigure(ctx, "fig7a", "Expected variance of robustness (CDC-firearms)", wf, wf.Set.Frag(), fracs)
	if err != nil {
		return nil, err
	}
	n := 100
	if scale == Small {
		n = 48
	}
	wu := SyntheticRobustness(datasets.UR, n, 100, seed)
	fb, err := nonModularFigure(ctx, "fig7b", fmt.Sprintf("Expected variance of robustness (URx, n=%d, Γ'=100)", n), wu, wu.Set.Frag(), fracs)
	if err != nil {
		return nil, err
	}
	return []*Figure{fa, fb}, nil
}
