package core

import (
	"errors"

	"github.com/factcheck/cleansel/internal/dist"
	"github.com/factcheck/cleansel/internal/maxpr"
	"github.com/factcheck/cleansel/internal/model"
	"github.com/factcheck/cleansel/internal/query"
)

// AdaptiveMaxPr implements the paper's second future-work direction: an
// algorithm that adapts its cleaning actions to the outcomes of earlier
// actions. Instead of committing a whole subset upfront, it repeatedly
//
//  1. evaluates, on the database as currently known, the one-step MaxPr
//     benefit of each affordable object,
//  2. cleans the best one and *observes* the revealed true value,
//  3. updates the database (the revealed value becomes the current value
//     with zero remaining uncertainty) and repeats,
//
// stopping when the budget is exhausted, no step improves the objective,
// or a counterargument has already materialized (the weakened measure
// crosses the original threshold without any remaining uncertainty).
//
// It is a simulator as much as a selector: Run needs the hidden ground
// truth to reveal, so it belongs to the §4.3-style in-action experiments.
type AdaptiveMaxPr struct {
	db   *model.DB
	f    *query.Affine
	tau  float64
	eval func(db *model.DB) (maxpr.Evaluator, error)
}

// NewAdaptiveMaxPr builds the policy for an affine query function with
// evaluators rebuilt by the given factory after every observation (the
// factory sees the updated database).
func NewAdaptiveMaxPr(db *model.DB, f *query.Affine, tau float64,
	eval func(db *model.DB) (maxpr.Evaluator, error)) (*AdaptiveMaxPr, error) {
	if db == nil {
		return nil, errNilDB
	}
	if eval == nil {
		return nil, errors.New("core: nil evaluator factory")
	}
	return &AdaptiveMaxPr{db: db, f: f, tau: tau, eval: eval}, nil
}

// Name identifies the policy.
func (a *AdaptiveMaxPr) Name() string { return "AdaptiveMaxPr" }

// Trace records one adaptive run.
type Trace struct {
	// Cleaned lists the objects in the order they were cleaned.
	Cleaned []int
	// CostSpent is the total cost consumed.
	CostSpent float64
	// Achieved is the realized drop f(u₀) − f(u_final) in the query value
	// after all observations (positive = the measure fell).
	Achieved float64
	// Countered reports whether the realized drop exceeded tau.
	Countered bool
}

// Run executes the policy against the hidden truth vector (indexed by
// object ID) under the given budget. The caller's database is not
// mutated.
func (a *AdaptiveMaxPr) Run(truth []float64, budget float64) (Trace, error) {
	if err := validateBudget(budget); err != nil {
		return Trace{}, err
	}
	if len(truth) != a.db.N() {
		return Trace{}, errors.New("core: truth length mismatch")
	}
	// Working copy: values collapse to point masses as they are revealed.
	objs := append([]model.Object(nil), a.db.Objects...)
	work := &model.DB{Objects: objs}
	baseline := a.f.Eval(a.db.Currents())

	var tr Trace
	remaining := budget
	cleaned := make([]bool, work.N())
	for {
		eval, err := a.eval(work)
		if err != nil {
			return Trace{}, err
		}
		best, bestR := -1, 0.0
		for o := 0; o < work.N(); o++ {
			if cleaned[o] || !fitsBudget(0, work.Objects[o].Cost, remaining) {
				continue
			}
			p := eval.Prob(model.NewSet(o))
			if p <= 0 {
				continue
			}
			if r := ratio(p, work.Objects[o].Cost); r > bestR {
				best, bestR = o, r
			}
		}
		if best < 0 {
			break
		}
		// Clean and observe.
		cleaned[best] = true
		remaining -= work.Objects[best].Cost
		tr.CostSpent += work.Objects[best].Cost
		tr.Cleaned = append(tr.Cleaned, best)
		objs[best].Current = truth[best]
		objs[best].Value = pointValue(truth[best])
		// Early exit: the counter already materialized with certainty.
		if baseline-a.f.Eval(work.Currents()) > a.tau {
			break
		}
	}
	tr.Achieved = baseline - a.f.Eval(work.Currents())
	tr.Countered = tr.Achieved > a.tau
	return tr, nil
}

// pointValue builds a zero-variance value model at v.
func pointValue(v float64) model.Value { return dist.PointMass(v) }
