package core

import (
	"errors"

	"github.com/factcheck/cleansel/internal/dist"
	"github.com/factcheck/cleansel/internal/maxpr"
	"github.com/factcheck/cleansel/internal/model"
	"github.com/factcheck/cleansel/internal/query"
)

// AdaptiveMaxPr implements the paper's second future-work direction: an
// algorithm that adapts its cleaning actions to the outcomes of earlier
// actions. Instead of committing a whole subset upfront, it repeatedly
//
//  1. evaluates, on the database as currently known, the one-step MaxPr
//     benefit of each affordable object,
//  2. cleans the best one and *observes* the revealed true value,
//  3. updates the database (the revealed value becomes the current value
//     with zero remaining uncertainty) and repeats,
//
// stopping when the budget is exhausted, no step improves the objective,
// or a counterargument has already materialized (the weakened measure
// crosses the original threshold without any remaining uncertainty).
//
// It is a simulator as much as a selector: Run needs the hidden ground
// truth to reveal, so it belongs to the §4.3-style in-action experiments.
type AdaptiveMaxPr struct {
	db   *model.DB
	f    *query.Affine
	tau  float64
	eval func(db *model.DB) (maxpr.Evaluator, error)
}

// NewAdaptiveMaxPr builds the policy for an affine query function with
// evaluators rebuilt by the given factory after every observation (the
// factory sees the updated database).
func NewAdaptiveMaxPr(db *model.DB, f *query.Affine, tau float64,
	eval func(db *model.DB) (maxpr.Evaluator, error)) (*AdaptiveMaxPr, error) {
	if db == nil {
		return nil, errNilDB
	}
	if eval == nil {
		return nil, errors.New("core: nil evaluator factory")
	}
	return &AdaptiveMaxPr{db: db, f: f, tau: tau, eval: eval}, nil
}

// Name identifies the policy.
func (a *AdaptiveMaxPr) Name() string { return "AdaptiveMaxPr" }

// Trace records one adaptive run.
type Trace struct {
	// Cleaned lists the objects in the order they were cleaned.
	Cleaned []int
	// CostSpent is the total cost consumed.
	CostSpent float64
	// Achieved is the realized drop f(u₀) − f(u_final) in the query value
	// after all observations (positive = the measure fell).
	Achieved float64
	// Countered reports whether the realized drop exceeded tau.
	Countered bool
}

// NextAdaptiveStep is the decide-step every adaptive policy shares (the
// same rule the served session stepper applies): among uncleaned objects
// whose cost fits the remaining budget and whose one-step benefit is
// positive, pick the one maximizing benefit-per-cost — strictly greater
// wins, so the lowest object ID breaks ties. It returns the chosen
// object with its benefit and ratio, or best = -1 when no affordable
// step improves. The benefit function is consulted exactly once per
// candidate, in ascending ID order.
func NextAdaptiveStep(costs []float64, cleaned []bool, remaining float64,
	benefit func(o int) float64) (best int, bestB, bestR float64) {
	best, bestB, bestR = -1, 0, 0
	for o := range costs {
		if cleaned[o] || !fitsBudget(0, costs[o], remaining) {
			continue
		}
		b := benefit(o)
		if b <= 0 {
			continue
		}
		if r := ratio(b, costs[o]); r > bestR {
			best, bestB, bestR = o, b, r
		}
	}
	return best, bestB, bestR
}

// FitsBudget reports whether adding cost c to spent stays within budget
// under the round-off tolerance all selectors share. Exported for the
// session layer, which must accept exactly the cleaning actions the
// simulators would take.
func FitsBudget(spent, c, budget float64) bool { return fitsBudget(spent, c, budget) }

// ValidateBudget rejects NaN or negative budgets with the same rule the
// selectors apply.
func ValidateBudget(budget float64) error { return validateBudget(budget) }

// Run executes the policy against the hidden truth vector (indexed by
// object ID) under the given budget. The caller's database is not
// mutated.
func (a *AdaptiveMaxPr) Run(truth []float64, budget float64) (Trace, error) {
	if err := validateBudget(budget); err != nil {
		return Trace{}, err
	}
	if len(truth) != a.db.N() {
		return Trace{}, errors.New("core: truth length mismatch")
	}
	// Working copy: values collapse to point masses as they are revealed.
	objs := append([]model.Object(nil), a.db.Objects...)
	work := &model.DB{Objects: objs}
	baseline := a.f.Eval(a.db.Currents())
	costs := work.Costs()

	var tr Trace
	remaining := budget
	cleaned := make([]bool, work.N())
	for {
		eval, err := a.eval(work)
		if err != nil {
			return Trace{}, err
		}
		best, _, _ := NextAdaptiveStep(costs, cleaned, remaining, func(o int) float64 {
			return eval.Prob(model.NewSet(o))
		})
		if best < 0 {
			break
		}
		// Clean and observe.
		cleaned[best] = true
		remaining -= work.Objects[best].Cost
		tr.CostSpent += work.Objects[best].Cost
		tr.Cleaned = append(tr.Cleaned, best)
		objs[best].Current = truth[best]
		objs[best].Value = pointValue(truth[best])
		// Early exit: the counter already materialized with certainty.
		if baseline-a.f.Eval(work.Currents()) > a.tau {
			break
		}
	}
	tr.Achieved = baseline - a.f.Eval(work.Currents())
	tr.Countered = tr.Achieved > a.tau
	return tr, nil
}

// AdaptiveMinVar is the uncertainty-goal counterpart of AdaptiveMaxPr:
// it repeatedly cleans the affordable object with the best one-step
// variance drop per cost (for an affine f over independent values the
// drop of cleaning o is a_o²·Var[X_o], the modular benefit of §3.2),
// observes the revealed value, and re-decides. Revealing a value zeroes
// its variance but — under independence — leaves every other candidate's
// benefit unchanged, so adaptivity shows up in the budget bookkeeping
// rather than in reordering; the type exists so the served sessions and
// the simulators run one decide-step for both goals.
type AdaptiveMinVar struct {
	db *model.DB
	f  *query.Affine
}

// NewAdaptiveMinVar builds the policy for an affine query function over
// an independent database.
func NewAdaptiveMinVar(db *model.DB, f *query.Affine) (*AdaptiveMinVar, error) {
	if db == nil {
		return nil, errNilDB
	}
	if db.Cov != nil {
		return nil, errors.New("core: AdaptiveMinVar requires independent values")
	}
	return &AdaptiveMinVar{db: db, f: f}, nil
}

// Name identifies the policy.
func (a *AdaptiveMinVar) Name() string { return "AdaptiveMinVar" }

// MinVarTrace records one adaptive minvar run.
type MinVarTrace struct {
	// Cleaned lists the objects in the order they were cleaned.
	Cleaned []int
	// CostSpent is the total cost consumed.
	CostSpent float64
	// VarBefore and VarAfter are the variance of f(X) before any
	// observation and after conditioning on all of them.
	VarBefore, VarAfter float64
	// Estimate is the posterior mean of f(X) given the observations.
	Estimate float64
}

// Run executes the policy against the hidden truth vector under the
// given budget, stopping when no affordable object still carries
// positive benefit. The caller's database is not mutated.
func (a *AdaptiveMinVar) Run(truth []float64, budget float64) (MinVarTrace, error) {
	if err := validateBudget(budget); err != nil {
		return MinVarTrace{}, err
	}
	if len(truth) != a.db.N() {
		return MinVarTrace{}, errors.New("core: truth length mismatch")
	}
	n := a.db.N()
	coef := a.f.Dense(n)
	costs := a.db.Costs()
	benefits := make([]float64, n)
	for o := 0; o < n; o++ {
		benefits[o] = coef[o] * coef[o] * a.db.Objects[o].Value.Variance()
	}
	var tr MinVarTrace
	for o := 0; o < n; o++ {
		tr.VarBefore += benefits[o]
	}
	means := a.db.Means()
	remaining := budget
	cleaned := make([]bool, n)
	for {
		best, _, _ := NextAdaptiveStep(costs, cleaned, remaining, func(o int) float64 {
			return benefits[o]
		})
		if best < 0 {
			break
		}
		cleaned[best] = true
		remaining -= costs[best]
		tr.CostSpent += costs[best]
		tr.Cleaned = append(tr.Cleaned, best)
		// Condition on the observation: the revealed value is a point
		// mass, so its mean is the truth and its variance is gone.
		means[best] = truth[best]
		benefits[best] = 0
	}
	for o := 0; o < n; o++ {
		if !cleaned[o] {
			tr.VarAfter += benefits[o]
		}
	}
	tr.Estimate = a.f.Eval(means)
	return tr, nil
}

// pointValue builds a zero-variance value model at v.
func pointValue(v float64) model.Value { return dist.PointMass(v) }
