package core

import (
	"math"
	"testing"

	"github.com/factcheck/cleansel/internal/ev"
	"github.com/factcheck/cleansel/internal/maxpr"
	"github.com/factcheck/cleansel/internal/model"
	"github.com/factcheck/cleansel/internal/query"
	"github.com/factcheck/cleansel/internal/rng"
)

// Selector names are part of the experiment output contract.
func TestSelectorNames(t *testing.T) {
	db := exampleDB()
	f := query.NewAffine(0, map[int]float64{0: 1, 1: 1})
	g := f.AsGroupSum()

	gmvMod, err := NewGreedyMinVarModular(db, f)
	if err != nil {
		t.Fatal(err)
	}
	gmvGrp, err := NewGreedyMinVarGroup(db, g)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := ev.NewGroupEngine(db, g)
	if err != nil {
		t.Fatal(err)
	}
	ge, err := NewGreedyEngine("GreedyMinVar", db, engine)
	if err != nil {
		t.Fatal(err)
	}
	best, err := NewBestEngine(db, engine, 0)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := NewOptimumModular(db, f, 0)
	if err != nil {
		t.Fatal(err)
	}
	eval, err := maxpr.NewDiscreteAffine(db, f, 0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	gmp, err := NewGreedyMaxPr(db, eval)
	if err != nil {
		t.Fatal(err)
	}
	exh, err := NewOPTMinVar(db, engine)
	if err != nil {
		t.Fatal(err)
	}
	ad, err := NewAdaptiveMaxPr(db, f, 0.5, func(d *model.DB) (maxpr.Evaluator, error) {
		return maxpr.NewMonteCarlo(d, f, 0.5, 100, rng.New(1))
	})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]Selector{
		"Random":               &Random{DB: db},
		"GreedyNaiveCostBlind": &GreedyNaiveCostBlind{DB: db},
		"GreedyNaive":          &GreedyNaive{DB: db},
		"GreedyMinVar":         gmvMod,
		"GreedyMinVar#2":       gmvGrp,
		"GreedyMinVar#3":       ge,
		"Best":                 best,
		"Optimum":              opt,
		"GreedyMaxPr":          gmp,
		"OPT":                  exh,
	}
	for want, sel := range cases {
		if i := len(want) - 2; i > 0 && want[i] == '#' {
			want = want[:i]
		}
		if got := sel.Name(); got != want {
			t.Fatalf("Name() = %q, want %q", got, want)
		}
	}
	if ad.Name() != "AdaptiveMaxPr" {
		t.Fatalf("adaptive name %q", ad.Name())
	}
}

// Constructors must reject nil databases and nil dependencies.
func TestConstructorNilGuards(t *testing.T) {
	db := exampleDB()
	f := query.NewAffine(0, map[int]float64{0: 1})
	engine, _ := ev.NewModular(db, f)
	eval, _ := maxpr.NewDiscreteAffine(db, f, 0.5, 0)

	if _, err := NewGreedyMinVarModular(nil, f); err == nil {
		t.Fatal("nil db accepted")
	}
	if _, err := NewGreedyMinVarGroup(nil, f.AsGroupSum()); err == nil {
		t.Fatal("nil db accepted")
	}
	if _, err := NewGreedyEngine("x", nil, engine); err == nil {
		t.Fatal("nil db accepted")
	}
	if _, err := NewGreedyEngine("x", db, nil); err == nil {
		t.Fatal("nil engine accepted")
	}
	if _, err := NewGreedyMaxPr(nil, eval); err == nil {
		t.Fatal("nil db accepted")
	}
	if _, err := NewGreedyMaxPr(db, nil); err == nil {
		t.Fatal("nil evaluator accepted")
	}
	if _, err := NewOptimumModular(nil, f, 0); err == nil {
		t.Fatal("nil db accepted")
	}
	if _, err := NewOptimumWeights(db, []float64{1}, 0); err == nil {
		t.Fatal("weight length mismatch accepted")
	}
	if _, err := NewBest(nil, f.AsGroupSum(), 0); err == nil {
		t.Fatal("nil db accepted")
	}
	if _, err := NewBestEngine(db, nil, 0); err == nil {
		t.Fatal("nil engine accepted")
	}
	if _, err := NewAdaptiveMaxPr(nil, f, 0, nil); err == nil {
		t.Fatal("nil db accepted")
	}
	if _, err := NewAdaptiveMaxPr(db, f, 0, nil); err == nil {
		t.Fatal("nil factory accepted")
	}
	if _, err := NewMaxPrKnapsack(nil, f, 0, 0); err == nil {
		t.Fatal("nil db accepted")
	}
}

func TestRatioConventions(t *testing.T) {
	if !math.IsInf(ratio(1, 0), 1) {
		t.Fatal("free positive benefit should rank first")
	}
	if ratio(0, 0) != 0 {
		t.Fatal("free zero benefit should rank neutral")
	}
	if ratio(6, 3) != 2 {
		t.Fatal("plain ratio broken")
	}
}
