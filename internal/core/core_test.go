package core

import (
	"testing"

	"github.com/factcheck/cleansel/internal/dist"
	"github.com/factcheck/cleansel/internal/ev"
	"github.com/factcheck/cleansel/internal/maxpr"
	"github.com/factcheck/cleansel/internal/model"
	"github.com/factcheck/cleansel/internal/numeric"
	"github.com/factcheck/cleansel/internal/query"
	"github.com/factcheck/cleansel/internal/rng"
)

// Example 5/6 database: X1 uniform over {0,1/2,1,3/2,2}, X2 uniform over
// {1/3,1,5/3}, u = (1,1), unit costs.
func exampleDB() *model.DB {
	return model.New([]model.Object{
		{Name: "x1", Cost: 1, Current: 1, Value: dist.UniformOver([]float64{0, 0.5, 1, 1.5, 2})},
		{Name: "x2", Cost: 1, Current: 1, Value: dist.UniformOver([]float64{1.0 / 3, 1, 5.0 / 3})},
	})
}

func selectT(t *testing.T, s Selector, budget float64) model.Set {
	t.Helper()
	T, err := s.Select(budget)
	if err != nil {
		t.Fatalf("%s: %v", s.Name(), err)
	}
	return T
}

// Example 6: with budget for one object, GreedyNaive cleans X1 (higher
// variance) while GreedyMinVar cleans X2 (larger objective improvement).
func TestExample6GreedyChoices(t *testing.T) {
	db := exampleDB()
	g := query.Indicator([]int{0, 1}, func(v []float64) bool {
		return v[0]+v[1] < 11.0/12.0
	})

	naive := &GreedyNaive{DB: db, Vars: []int{0, 1}}
	T := selectT(t, naive, 1)
	if len(T) != 1 || !T.Has(0) {
		t.Fatalf("GreedyNaive chose %v, want {x1}", T)
	}

	gmv, err := NewGreedyMinVarGroup(db, g)
	if err != nil {
		t.Fatal(err)
	}
	T = selectT(t, gmv, 1)
	if len(T) != 1 || !T.Has(1) {
		t.Fatalf("GreedyMinVar chose %v, want {x2}", T)
	}
}

// Example 5: for bias = X1+X2−2 the MinVar optimum cleans X1, while the
// MaxPr optimum (threshold 17/12, i.e. τ = 7/12) cleans X2.
func TestExample5ObjectivesDisagree(t *testing.T) {
	db := exampleDB()
	bias := query.NewAffine(-2, map[int]float64{0: 1, 1: 1})

	opt, err := NewOptimumModular(db, bias, 1)
	if err != nil {
		t.Fatal(err)
	}
	T := selectT(t, opt, 1)
	if len(T) != 1 || !T.Has(0) {
		t.Fatalf("MinVar Optimum chose %v, want {x1}", T)
	}

	eval, err := maxpr.NewDiscreteAffine(db, bias, 7.0/12.0, 0)
	if err != nil {
		t.Fatal(err)
	}
	gmp, err := NewGreedyMaxPr(db, eval)
	if err != nil {
		t.Fatal(err)
	}
	T = selectT(t, gmp, 1)
	if len(T) != 1 || !T.Has(1) {
		t.Fatalf("GreedyMaxPr chose %v, want {x2}", T)
	}
}

func TestRandomSelector(t *testing.T) {
	db := randomCoreDB(rng.New(5), 10)
	r1 := &Random{DB: db, Seed: 42}
	r2 := &Random{DB: db, Seed: 42}
	T1 := selectT(t, r1, db.TotalCost()/2)
	T2 := selectT(t, r2, db.TotalCost()/2)
	if len(T1) != len(T2) {
		t.Fatal("same seed should give same selection")
	}
	for i := range T1 {
		if T1[i] != T2[i] {
			t.Fatal("same seed should give same selection")
		}
	}
	if T1.Cost(db) > db.TotalCost()/2+1e-9 {
		t.Fatal("Random exceeded budget")
	}
	// Full budget takes everything.
	full := selectT(t, r1, db.TotalCost())
	if len(full) != db.N() {
		t.Fatalf("full budget should clean all, got %d/%d", len(full), db.N())
	}
}

func TestGreedyNaiveCostBlindOrder(t *testing.T) {
	db := model.New([]model.Object{
		{Name: "lowvar", Cost: 1, Value: dist.UniformOver([]float64{0, 1})},
		{Name: "highvar", Cost: 100, Value: dist.UniformOver([]float64{0, 100})},
	})
	cb := &GreedyNaiveCostBlind{DB: db}
	// Budget covers only the cheap object, but cost-blind ranks highvar
	// first and skips what does not fit.
	T := selectT(t, cb, 1)
	if len(T) != 1 || !T.Has(0) {
		t.Fatalf("cost-blind chose %v", T)
	}
	// With budget 101 it takes highvar first, then lowvar.
	T = selectT(t, cb, 101)
	if len(T) != 2 {
		t.Fatalf("cost-blind with full budget chose %v", T)
	}
}

func TestGreedyNaiveRespectsVars(t *testing.T) {
	db := model.New([]model.Object{
		{Name: "in", Cost: 1, Value: dist.UniformOver([]float64{0, 1})},
		{Name: "out", Cost: 1, Value: dist.UniformOver([]float64{0, 100})},
	})
	gn := &GreedyNaive{DB: db, Vars: []int{0}}
	T := selectT(t, gn, 2)
	if T.Has(1) {
		t.Fatalf("GreedyNaive cleaned an unreferenced object: %v", T)
	}
}

func randomCoreDB(r *rng.RNG, n int) *model.DB {
	objs := make([]model.Object, n)
	for i := range objs {
		k := 2 + r.Intn(3)
		vals := make([]float64, k)
		probs := make([]float64, k)
		for j := range vals {
			vals[j] = float64(r.IntRange(0, 20))
			probs[j] = r.Float64() + 0.05
		}
		d := dist.MustDiscrete(vals, probs)
		objs[i] = model.Object{
			Name: "o", Cost: float64(r.IntRange(1, 8)),
			Current: d.Values[0], Value: d,
		}
	}
	return model.New(objs)
}

// The lazy-queue group greedy must match the O(n²) adaptive greedy in
// achieved objective on random instances.
func TestGroupGreedyMatchesAdaptiveGreedy(t *testing.T) {
	r := rng.New(2718)
	for trial := 0; trial < 15; trial++ {
		n := 3 + r.Intn(4)
		db := randomCoreDB(r, n)
		g := randomGroupQuery(r, n)
		engine, err := ev.NewGroupEngine(db, g)
		if err != nil {
			t.Fatal(err)
		}
		fast, err := NewGreedyMinVarGroup(db, g)
		if err != nil {
			t.Fatal(err)
		}
		slow, err := NewGreedyEngine("GreedyMinVar", db, engine)
		if err != nil {
			t.Fatal(err)
		}
		budget := r.Float64() * db.TotalCost()
		Tf := selectT(t, fast, budget)
		Ts := selectT(t, slow, budget)
		if Tf.Cost(db) > budget+1e-9 || Ts.Cost(db) > budget+1e-9 {
			t.Fatalf("trial %d: budget violated", trial)
		}
		evF, evS := engine.EV(Tf), engine.EV(Ts)
		if !numeric.AlmostEqual(evF, evS, 1e-6) {
			t.Fatalf("trial %d: fast EV %v vs slow EV %v (sets %v vs %v)",
				trial, evF, evS, Tf, Ts)
		}
	}
}

func randomGroupQuery(r *rng.RNG, n int) *query.GroupSum {
	g := &query.GroupSum{}
	nTerms := 1 + r.Intn(3)
	for t := 0; t < nTerms; t++ {
		k := 1 + r.Intn(2)
		if k > n {
			k = n
		}
		vars := r.SampleWithoutReplacement(0, n-1, k)
		coef := make([]float64, k)
		for j := range coef {
			coef[j] = float64(r.IntRange(-2, 2))
		}
		c := float64(r.IntRange(-10, 10))
		if r.Intn(2) == 0 {
			g.Terms = append(g.Terms, query.IndicatorGE(vars, coef, c, 1))
		} else {
			g.Terms = append(g.Terms, query.LinearTerm(vars, coef, c))
		}
	}
	return g
}

// Optimum (knapsack DP) must match exhaustive OPT on modular instances.
func TestOptimumMatchesOPT(t *testing.T) {
	r := rng.New(314)
	for trial := 0; trial < 15; trial++ {
		n := 3 + r.Intn(5)
		db := randomCoreDB(r, n)
		coef := map[int]float64{}
		for i := 0; i < n; i++ {
			coef[i] = float64(r.IntRange(-3, 3))
		}
		f := query.NewAffine(0, coef)
		engine, err := ev.NewModular(db, f)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := NewOptimumModular(db, f, 1)
		if err != nil {
			t.Fatal(err)
		}
		exh, err := NewOPTMinVar(db, engine)
		if err != nil {
			t.Fatal(err)
		}
		budget := r.Float64() * db.TotalCost()
		To := selectT(t, opt, budget)
		Te := selectT(t, exh, budget)
		if !numeric.AlmostEqual(engine.EV(To), engine.EV(Te), 1e-9) {
			t.Fatalf("trial %d: Optimum EV %v vs OPT EV %v", trial, engine.EV(To), engine.EV(Te))
		}
	}
}

// GreedyMinVar (modular) achieves at least half the optimum's variance
// reduction (knapsack 2-approximation).
func TestModularGreedyTwoApprox(t *testing.T) {
	r := rng.New(1618)
	for trial := 0; trial < 30; trial++ {
		n := 3 + r.Intn(5)
		db := randomCoreDB(r, n)
		coef := map[int]float64{}
		for i := 0; i < n; i++ {
			coef[i] = float64(r.IntRange(-3, 3))
		}
		f := query.NewAffine(0, coef)
		engine, _ := ev.NewModular(db, f)
		greedy, err := NewGreedyMinVarModular(db, f)
		if err != nil {
			t.Fatal(err)
		}
		opt, _ := NewOptimumModular(db, f, 1)
		budget := r.Float64() * db.TotalCost()
		Tg := selectT(t, greedy, budget)
		To := selectT(t, opt, budget)
		total := engine.Variance()
		gainG := total - engine.EV(Tg)
		gainO := total - engine.EV(To)
		if gainG < gainO/2-1e-9 {
			t.Fatalf("trial %d: greedy gain %v < OPT/2 = %v", trial, gainG, gainO/2)
		}
	}
}

// Best must be feasible and no worse than OPT by more than its
// curvature-governed factor; on these small instances it is near-optimal.
func TestBestNearOPT(t *testing.T) {
	r := rng.New(4321)
	for trial := 0; trial < 10; trial++ {
		n := 3 + r.Intn(3)
		db := randomCoreDB(r, n)
		g := randomGroupQuery(r, n)
		engine, err := ev.NewGroupEngine(db, g)
		if err != nil {
			t.Fatal(err)
		}
		best, err := NewBest(db, g, 1)
		if err != nil {
			t.Fatal(err)
		}
		exh, err := NewOPTMinVar(db, engine)
		if err != nil {
			t.Fatal(err)
		}
		budget := (0.3 + 0.5*r.Float64()) * db.TotalCost()
		Tb := selectT(t, best, budget)
		To := selectT(t, exh, budget)
		if Tb.Cost(db) > budget+1e-9 {
			t.Fatalf("trial %d: Best over budget", trial)
		}
		evB, evO := engine.EV(Tb), engine.EV(To)
		if evB < evO-1e-9 {
			t.Fatalf("trial %d: Best beat OPT?! %v < %v", trial, evB, evO)
		}
		slack := 1e-9 + 0.75*(engine.Variance()-evO)
		if evB > evO+slack {
			t.Fatalf("trial %d: Best EV %v far above OPT %v (Var %v)", trial, evB, evO, engine.Variance())
		}
	}
}

func TestBestCurvatureRange(t *testing.T) {
	db := exampleDB()
	g := query.Indicator([]int{0, 1}, func(v []float64) bool {
		return v[0]+v[1] < 11.0/12.0
	})
	best, err := NewBest(db, g, 1)
	if err != nil {
		t.Fatal(err)
	}
	k := best.Curvature()
	if k < 0 || k > 1 {
		t.Fatalf("curvature %v out of [0,1]", k)
	}
}

// GreedyMaxPr must stop spending once no object improves the probability.
func TestGreedyMaxPrStops(t *testing.T) {
	// One object that surely helps, one that surely hurts.
	n1, _ := dist.NewNormal(0, 1)
	n2, _ := dist.NewNormal(0, 50)
	db := model.New([]model.Object{
		{Name: "drop", Cost: 1, Current: 5, Value: n1},
		{Name: "noise", Cost: 1, Current: 0, Value: n2},
	})
	f := query.NewAffine(0, map[int]float64{0: 1, 1: 1})
	eval, err := maxpr.NewNormalAffine(db, f, 1)
	if err != nil {
		t.Fatal(err)
	}
	gmp, err := NewGreedyMaxPr(db, eval)
	if err != nil {
		t.Fatal(err)
	}
	T := selectT(t, gmp, 2) // budget for both
	if len(T) != 1 || !T.Has(0) {
		t.Fatalf("GreedyMaxPr should clean only the helpful object, got %v", T)
	}
}

func TestValidateBudget(t *testing.T) {
	db := exampleDB()
	gn := &GreedyNaive{DB: db}
	if _, err := NewGreedyMinVarModular(db, query.NewAffine(0, map[int]float64{0: 1})); err != nil {
		t.Fatal(err)
	}
	gmv, _ := NewGreedyMinVarModular(db, query.NewAffine(0, map[int]float64{0: 1}))
	if _, err := gmv.Select(-1); err == nil {
		t.Fatal("negative budget accepted")
	}
	if T := selectT(t, gn, 0); len(T) != 0 {
		t.Fatalf("zero budget chose %v", T)
	}
}

func TestOPTGuards(t *testing.T) {
	big := randomCoreDB(rng.New(9), MaxExhaustiveN+1)
	if _, err := NewOPT("OPT", big, func(model.Set) float64 { return 0 }, false); err == nil {
		t.Fatal("oversized OPT accepted")
	}
	if _, err := NewOPT("OPT", nil, func(model.Set) float64 { return 0 }, false); err == nil {
		t.Fatal("nil db accepted")
	}
	db := exampleDB()
	if _, err := NewOPT("OPT", db, nil, false); err == nil {
		t.Fatal("nil objective accepted")
	}
}

// GreedyDep with a diagonal covariance must agree with the modular greedy
// (no dependencies to exploit).
func TestGreedyDepDiagonalMatchesModular(t *testing.T) {
	sig := []float64{1, 2, 3}
	objs := make([]model.Object, 3)
	for i, s := range sig {
		nd, _ := dist.NewNormal(0, s)
		objs[i] = model.Object{Name: "o", Cost: 1, Value: nd}
	}
	db := model.New(objs)
	f := query.NewAffine(0, map[int]float64{0: 1, 1: 1, 2: 1})
	dep, err := NewGreedyDep(db, f)
	if err != nil {
		t.Fatal(err)
	}
	mod, _ := NewGreedyMinVarModular(db, f)
	for _, budget := range []float64{1, 2, 3} {
		Td := selectT(t, dep, budget)
		Tm := selectT(t, mod, budget)
		engine, _ := ev.NewModular(db, f)
		if !numeric.AlmostEqual(engine.EV(Td), engine.EV(Tm), 1e-9) {
			t.Fatalf("budget %v: dep %v vs modular %v", budget, Td, Tm)
		}
	}
}
