package core

import (
	"context"
	"errors"
	"sync"

	"github.com/factcheck/cleansel/internal/claims"
	"github.com/factcheck/cleansel/internal/ev"
	"github.com/factcheck/cleansel/internal/model"
	"github.com/factcheck/cleansel/internal/obs"
	"github.com/factcheck/cleansel/internal/parallel"
)

// Report is a claim quality assessment: the three §2.2 measures at the
// current values plus their variances under the error model. It is
// field-identical to the root package's QualityReport (which converts
// directly), defined here so the triage machinery can live below the
// public API.
type Report struct {
	Bias          float64
	BiasVariance  float64
	Duplicity     int
	DupVariance   float64
	Fragility     float64
	FragVariance  float64
	Perturbations int
}

// TriageContext amortizes claim assessment over one database: the
// discretized view, the current-value vector, and a cross-engine EV
// cache are built once and reused for every claim assessed through it.
// Assessing N related claims through one context costs far less than N
// independent AssessClaim calls, and — because every reuse is exact
// (cached values are the outputs of the identical enumerations a cold
// assessment would run) — each claim's Report is bit-identical to what
// a standalone assessment produces, regardless of batch composition,
// assessment order, or worker count.
//
// Safe for concurrent use; Assess and AssessBatch may be called freely
// from multiple goroutines.
type TriageContext struct {
	db     *model.DB
	work   *model.DB // discrete view: db itself, or its k-point discretization
	u      []float64 // current values of db, computed once
	shared *ev.SharedEVCache

	// reports memoizes finished assessments by claims.Set signature, so
	// a renamed copy of an already-assessed claim is served without
	// touching the engines at all.
	mu      sync.Mutex
	reports map[string]Report
}

// NewTriageContext compiles the dataset-level assessment state. Normal
// value models are discretized on a points-value equal-probability grid
// (the root API passes its package-wide default, keeping this path and
// the standalone assessment path on the same view).
func NewTriageContext(db *model.DB, points int) (*TriageContext, error) {
	if db == nil {
		return nil, errors.New("core: triage needs a database")
	}
	work := db
	if _, err := db.Discretes(); err != nil {
		work = db.Discretized(points)
	}
	return &TriageContext{
		db:      db,
		work:    work,
		u:       db.Currents(),
		shared:  ev.NewSharedEVCache(),
		reports: make(map[string]Report),
	}, nil
}

// SharedStats reports the cross-engine EV cache's lifetime hit/miss
// counts (observability only; never feeds back into results).
func (tc *TriageContext) SharedStats() (hits, misses uint64) { return tc.shared.Stats() }

// Assess computes one claim's quality report through the shared state,
// serving an exact repeat (same signature, any name) from the report
// memo.
func (tc *TriageContext) Assess(ctx context.Context, set *claims.Set) (Report, error) {
	if set == nil {
		return Report{}, errors.New("core: triage needs a perturbation set")
	}
	sig := set.Signature()
	tc.mu.Lock()
	rep, ok := tc.reports[sig]
	tc.mu.Unlock()
	if ok {
		obs.FromContext(ctx).Add("triage_dedup_hits", 1)
		return rep, nil
	}
	rep, err := tc.assessOne(ctx, set)
	if err != nil {
		return Report{}, err
	}
	tc.mu.Lock()
	tc.reports[sig] = rep
	tc.mu.Unlock()
	return rep, nil
}

// assessOne is the single-claim assessment: operation-for-operation the
// sequence the root AssessClaim has always run (bias and duplicity at
// current values, the modular bias variance over the original database,
// the duplicity/fragility expected variances over the discrete view) —
// only the engine construction goes through the shared cache.
func (tc *TriageContext) assessOne(ctx context.Context, set *claims.Set) (Report, error) {
	rep := Report{Perturbations: set.M()}
	bias := set.Bias()
	rep.Bias = bias.Eval(tc.u)
	mod, err := ev.NewModular(tc.db, bias)
	if err != nil {
		return Report{}, err
	}
	rep.BiasVariance = mod.Variance()
	rep.Duplicity = set.DupValue(tc.u)
	dupEng, err := ev.NewGroupEngineShared(tc.work, set.Dup(), tc.shared)
	if err != nil {
		return Report{}, err
	}
	if rep.DupVariance, err = dupEng.EVCtx(ctx, nil); err != nil {
		return Report{}, err
	}
	frag := set.Frag()
	rep.Fragility = frag.Eval(tc.u)
	fragEng, err := ev.NewGroupEngineShared(tc.work, frag, tc.shared)
	if err != nil {
		return Report{}, err
	}
	if rep.FragVariance, err = fragEng.EVCtx(ctx, nil); err != nil {
		return Report{}, err
	}
	return rep, nil
}

// AssessBatch assesses every set, deduplicating by signature first
// (each distinct claim is assessed once, duplicates copy its report)
// and fanning the distinct claims out over the parallel worker pool.
//
// The returned slices parallel sets: reports[i] is valid iff
// errs[i] == nil. A malformed claim fails alone — its error lands in
// errs[i] (and in every duplicate's slot) without poisoning the batch.
// The error return is reserved for batch-fatal conditions, i.e. ctx
// cancellation, after in-flight workers have drained.
func (tc *TriageContext) AssessBatch(ctx context.Context, sets []*claims.Set) (reports []Report, errs []error, err error) {
	reports = make([]Report, len(sets))
	errs = make([]error, len(sets))
	// Dedup pass: representative index per signature, in first-occurrence
	// order so work order (and therefore every trace and result) is a
	// pure function of the request.
	repOf := make([]int, len(sets))
	firstOf := make(map[string]int, len(sets))
	var uniq []int
	var memoHits, dupHits int64
	tc.mu.Lock()
	for i, s := range sets {
		if s == nil {
			errs[i] = errors.New("core: triage needs a perturbation set")
			repOf[i] = -1
			continue
		}
		sig := s.Signature()
		if j, ok := firstOf[sig]; ok {
			repOf[i] = j
			dupHits++
			continue
		}
		firstOf[sig] = i
		repOf[i] = i
		if rep, ok := tc.reports[sig]; ok {
			reports[i] = rep
			memoHits++
			continue
		}
		uniq = append(uniq, i)
	}
	tc.mu.Unlock()
	obs.FromContext(ctx).Add("triage_dedup_hits", dupHits+memoHits)
	if err := parallel.For(ctx, len(uniq), func(worker, k int) error {
		i := uniq[k]
		rep, aerr := tc.assessOne(ctx, sets[i])
		if aerr != nil {
			if ctx.Err() != nil {
				return context.Cause(ctx)
			}
			errs[i] = aerr
			return nil
		}
		reports[i] = rep
		return nil
	}); err != nil {
		return nil, nil, err
	}
	// Memoize successes, then scatter representatives to duplicates.
	tc.mu.Lock()
	for _, i := range uniq {
		if errs[i] == nil {
			tc.reports[sets[i].Signature()] = reports[i]
		}
	}
	tc.mu.Unlock()
	for i, j := range repOf {
		if j < 0 || j == i {
			continue
		}
		if errs[j] != nil {
			errs[i] = errs[j]
			continue
		}
		reports[i] = reports[j]
	}
	return reports, errs, nil
}
