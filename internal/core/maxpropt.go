package core

import (
	"errors"
	"fmt"

	"github.com/factcheck/cleansel/internal/knapsack"
	"github.com/factcheck/cleansel/internal/model"
	"github.com/factcheck/cleansel/internal/query"
)

// MaxPrKnapsack solves MaxPr exactly or approximately via the Lemma 3.3
// reduction: when errors are independent normals centered at the current
// values and f is affine, maximizing Pr[f(X) < f(u) − τ] is equivalent to
// maximizing Σ_{i∈T} a_i²·σ_i² under the budget — a max-knapsack. The
// exact pseudo-polynomial DP gives the optimum; the FPTAS variant gives a
// (1−ε)-approximation of the variance objective in O(n³/ε) (and a
// constant-factor guarantee on the probability when it is not vanishing,
// as Lemma 3.3 shows).
type MaxPrKnapsack struct {
	db        *model.DB
	weights   []float64
	precision float64
	eps       float64 // 0 = exact DP, >0 = FPTAS
}

// NewMaxPrKnapsack builds the selector. eps == 0 selects the exact DP;
// eps in (0,1) selects the FPTAS.
func NewMaxPrKnapsack(db *model.DB, f *query.Affine, precision, eps float64) (*MaxPrKnapsack, error) {
	if db == nil {
		return nil, errNilDB
	}
	if db.Cov != nil {
		return nil, errors.New("core: MaxPrKnapsack requires independent values")
	}
	ns, ok := db.Normals()
	if !ok {
		return nil, errors.New("core: MaxPrKnapsack requires normal value models")
	}
	if eps < 0 || eps >= 1 {
		return nil, fmt.Errorf("core: eps %v outside [0,1)", eps)
	}
	//lint:allow floateq — validates the Lemma 3.3 premise that each model is centered exactly at its current value: an identity check on stored values, not arithmetic pooling
	for i, o := range db.Objects {
		if o.Current != ns[i].Mu {
			return nil, fmt.Errorf("core: object %d not centered at its current value (Lemma 3.3 premise)", i)
		}
	}
	weights := make([]float64, db.N())
	for i, n := range ns {
		a := f.CoefAt(i)
		weights[i] = a * a * n.Sigma * n.Sigma
	}
	if precision <= 0 {
		precision = 0.01
	}
	return &MaxPrKnapsack{db: db, weights: weights, precision: precision, eps: eps}, nil
}

// Name implements Selector.
func (m *MaxPrKnapsack) Name() string {
	if m.eps > 0 {
		return "MaxPrFPTAS"
	}
	return "MaxPrOptimum"
}

// Select implements Selector.
func (m *MaxPrKnapsack) Select(budget float64) (model.Set, error) {
	if err := validateBudget(budget); err != nil {
		return nil, err
	}
	var (
		res knapsack.Result
		err error
	)
	if m.eps > 0 {
		res, err = knapsack.FPTAS(m.weights, m.db.Costs(), budget, m.eps)
	} else {
		res, err = knapsack.MaxDP(m.weights, m.db.Costs(), budget, m.precision)
	}
	if err != nil {
		return nil, err
	}
	return model.NewSet(res.Indices...), nil
}
