package core

import (
	"testing"

	"github.com/factcheck/cleansel/internal/dist"
	"github.com/factcheck/cleansel/internal/ev"
	"github.com/factcheck/cleansel/internal/maxpr"
	"github.com/factcheck/cleansel/internal/model"
	"github.com/factcheck/cleansel/internal/numeric"
	"github.com/factcheck/cleansel/internal/query"
	"github.com/factcheck/cleansel/internal/rng"
)

// --- Partial cleaning (future work #3) ---------------------------------------

func TestPartialModularReducesToExact(t *testing.T) {
	db := exampleDB()
	f := query.NewAffine(0, map[int]float64{0: 1, 1: 1})
	zero := []float64{0, 0}
	pm, err := ev.NewPartialModular(db, f, zero)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := ev.NewModular(db, f)
	if err != nil {
		t.Fatal(err)
	}
	for _, T := range []model.Set{nil, model.NewSet(0), model.NewSet(0, 1)} {
		if got, want := pm.EV(T), exact.EV(T); !numeric.AlmostEqual(got, want, 1e-12) {
			t.Fatalf("rho=0 should equal exact cleaning: %v vs %v", got, want)
		}
	}
}

func TestPartialModularResidual(t *testing.T) {
	db := exampleDB()
	f := query.NewAffine(0, map[int]float64{0: 1, 1: 1})
	// Cleaning x1 halves its σ (ρ=0.5): benefit is (1−0.25)·Var[X1].
	pm, err := ev.NewPartialModular(db, f, []float64{0.5, 1})
	if err != nil {
		t.Fatal(err)
	}
	varX1, varX2 := 0.5, 8.0/27.0
	if got, want := pm.Variance(), varX1+varX2; !numeric.AlmostEqual(got, want, 1e-12) {
		t.Fatalf("variance %v want %v", got, want)
	}
	if got, want := pm.EV(model.NewSet(0)), 0.25*varX1+varX2; !numeric.AlmostEqual(got, want, 1e-12) {
		t.Fatalf("EV after partial clean %v want %v", got, want)
	}
	// ρ=1 makes cleaning useless.
	if got, want := pm.EV(model.NewSet(1)), varX1+varX2; !numeric.AlmostEqual(got, want, 1e-12) {
		t.Fatalf("useless clean changed EV: %v want %v", got, want)
	}
	// Benefits feed the ordinary modular machinery.
	b := pm.Benefits()
	if !numeric.AlmostEqual(b[0], 0.75*varX1, 1e-12) || b[1] != 0 {
		t.Fatalf("benefits %v", b)
	}
}

func TestPartialModularValidation(t *testing.T) {
	db := exampleDB()
	f := query.NewAffine(0, map[int]float64{0: 1})
	if _, err := ev.NewPartialModular(db, f, []float64{0.5}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := ev.NewPartialModular(db, f, []float64{-0.1, 0}); err == nil {
		t.Fatal("negative residual accepted")
	}
	if _, err := ev.NewPartialModular(db, f, []float64{1.5, 0}); err == nil {
		t.Fatal("residual > 1 accepted")
	}
}

// Partial-cleaning selection: greedy over the effective benefits must
// prefer the object whose cleaning actually removes more uncertainty.
func TestPartialCleaningSelection(t *testing.T) {
	db := exampleDB()
	f := query.NewAffine(0, map[int]float64{0: 1, 1: 1})
	// x1 has higher variance but cleaning it barely helps (ρ=0.95);
	// x2 is fully cleanable.
	pm, err := ev.NewPartialModular(db, f, []float64{0.95, 0})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := NewOptimumWeights(db, pm.Benefits(), 0.01)
	if err != nil {
		t.Fatal(err)
	}
	T := selectT(t, opt, 1)
	if len(T) != 1 || !T.Has(1) {
		t.Fatalf("partial-cleaning optimum chose %v, want {x2}", T)
	}
}

// --- Adaptive MaxPr (future work #2) ------------------------------------------

func adaptiveTestDB(t *testing.T) *model.DB {
	t.Helper()
	mk := func(mu, sigma float64) dist.Normal {
		n, err := dist.NewNormal(mu, sigma)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	return model.New([]model.Object{
		{Name: "a", Cost: 1, Current: 10, Value: mk(10, 3)},
		{Name: "b", Cost: 1, Current: 10, Value: mk(10, 2)},
		{Name: "c", Cost: 1, Current: 10, Value: mk(10, 1)},
	})
}

func normalFactory(f *query.Affine, tau float64) func(db *model.DB) (maxpr.Evaluator, error) {
	return func(db *model.DB) (maxpr.Evaluator, error) {
		// Revealed objects become point masses; use the generic hybrid
		// path only when needed — here a mixed DB falls back to MC.
		if _, ok := db.Normals(); ok {
			return maxpr.NewNormalAffine(db, f, tau)
		}
		return maxpr.NewMonteCarlo(db, f, tau, 4000, rng.New(99))
	}
}

func TestAdaptiveMaxPrFindsCounter(t *testing.T) {
	db := adaptiveTestDB(t)
	f := query.NewAffine(0, map[int]float64{0: 1, 1: 1, 2: 1})
	tau := 2.0
	ad, err := NewAdaptiveMaxPr(db, f, tau, normalFactory(f, tau))
	if err != nil {
		t.Fatal(err)
	}
	// Truth: object a is far below its current value — the counter.
	truth := []float64{4, 10, 10}
	tr, err := ad.Run(truth, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Countered {
		t.Fatalf("adaptive policy missed the counter: %+v", tr)
	}
	// The highest-variance object is cleaned first and suffices: the
	// adaptive policy stops after one observation.
	if len(tr.Cleaned) != 1 || tr.Cleaned[0] != 0 {
		t.Fatalf("cleaned %v, want just object 0", tr.Cleaned)
	}
	if !numeric.AlmostEqual(tr.Achieved, 6, 1e-9) {
		t.Fatalf("achieved drop %v, want 6", tr.Achieved)
	}
}

func TestAdaptiveMaxPrStopsWithoutCounter(t *testing.T) {
	db := adaptiveTestDB(t)
	f := query.NewAffine(0, map[int]float64{0: 1, 1: 1, 2: 1})
	tau := 2.0
	ad, err := NewAdaptiveMaxPr(db, f, tau, normalFactory(f, tau))
	if err != nil {
		t.Fatal(err)
	}
	// Truth exactly matches the current values: no counter exists.
	tr, err := ad.Run([]float64{10, 10, 10}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Countered {
		t.Fatalf("no counter exists but policy claims one: %+v", tr)
	}
	if tr.CostSpent > 3+1e-9 {
		t.Fatalf("budget exceeded: %v", tr.CostSpent)
	}
}

func TestAdaptiveMaxPrBudget(t *testing.T) {
	db := adaptiveTestDB(t)
	f := query.NewAffine(0, map[int]float64{0: 1, 1: 1, 2: 1})
	ad, err := NewAdaptiveMaxPr(db, f, 100, normalFactory(f, 100))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := ad.Run([]float64{10, 10, 10}, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Cleaned) > 1 {
		t.Fatalf("budget 1.5 allows one unit-cost cleaning, got %v", tr.Cleaned)
	}
	if _, err := ad.Run([]float64{1}, 1); err == nil {
		t.Fatal("truth length mismatch accepted")
	}
	if _, err := ad.Run([]float64{10, 10, 10}, -1); err == nil {
		t.Fatal("negative budget accepted")
	}
}

// Adaptivity beats upfront commitment when early observations change
// what is worth cleaning: the adaptive policy stops paying once the
// counter is in hand, while the upfront GreedyMaxPr set keeps spending.
func TestAdaptiveCheaperThanUpfront(t *testing.T) {
	db := adaptiveTestDB(t)
	f := query.NewAffine(0, map[int]float64{0: 1, 1: 1, 2: 1})
	tau := 2.0
	ad, err := NewAdaptiveMaxPr(db, f, tau, normalFactory(f, tau))
	if err != nil {
		t.Fatal(err)
	}
	truth := []float64{4, 10, 10}
	tr, err := ad.Run(truth, 3)
	if err != nil {
		t.Fatal(err)
	}
	eval, err := maxpr.NewNormalAffine(db, f, tau)
	if err != nil {
		t.Fatal(err)
	}
	up, err := NewGreedyMaxPr(db, eval)
	if err != nil {
		t.Fatal(err)
	}
	T := selectT(t, up, 3)
	if tr.CostSpent > T.Cost(db) {
		t.Fatalf("adaptive spent %v, upfront %v — adaptivity should not cost more here",
			tr.CostSpent, T.Cost(db))
	}
}

// --- Lemma 3.3 knapsack MaxPr ---------------------------------------------------

func TestMaxPrKnapsackMatchesOPT(t *testing.T) {
	r := rng.New(33)
	for trial := 0; trial < 15; trial++ {
		n := 3 + r.Intn(4)
		objs := make([]model.Object, n)
		coef := map[int]float64{}
		for i := 0; i < n; i++ {
			sigma := 0.5 + 2*r.Float64()
			u := r.Uniform(-3, 3)
			nd, _ := dist.NewNormal(u, sigma)
			objs[i] = model.Object{Name: "o", Cost: float64(r.IntRange(1, 5)), Current: u, Value: nd}
			coef[i] = r.Uniform(-2, 2)
		}
		db := model.New(objs)
		f := query.NewAffine(0, coef)
		tau := 0.5 + r.Float64()
		eval, err := maxpr.NewNormalAffine(db, f, tau)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := NewMaxPrKnapsack(db, f, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := NewOPT("OPTMaxPr", db, eval.Prob, true)
		if err != nil {
			t.Fatal(err)
		}
		budget := (0.3 + 0.5*r.Float64()) * db.TotalCost()
		Tk := selectT(t, exact, budget)
		To := selectT(t, opt, budget)
		if !numeric.AlmostEqual(eval.Prob(Tk), eval.Prob(To), 1e-9) {
			t.Fatalf("trial %d: knapsack MaxPr %v vs OPT %v", trial, eval.Prob(Tk), eval.Prob(To))
		}
	}
}

func TestMaxPrKnapsackFPTAS(t *testing.T) {
	r := rng.New(133)
	n := 8
	objs := make([]model.Object, n)
	coef := map[int]float64{}
	for i := 0; i < n; i++ {
		sigma := 0.5 + 2*r.Float64()
		u := r.Uniform(-3, 3)
		nd, _ := dist.NewNormal(u, sigma)
		objs[i] = model.Object{Name: "o", Cost: float64(r.IntRange(1, 5)), Current: u, Value: nd}
		coef[i] = r.Uniform(-2, 2)
	}
	db := model.New(objs)
	f := query.NewAffine(0, coef)
	fp, err := NewMaxPrKnapsack(db, f, 1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := NewMaxPrKnapsack(db, f, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	mod := func(T model.Set) float64 {
		var s float64
		ns, _ := db.Normals()
		for _, i := range T {
			a := f.CoefAt(i)
			s += a * a * ns[i].Sigma * ns[i].Sigma
		}
		return s
	}
	budget := db.TotalCost() * 0.5
	Tf := selectT(t, fp, budget)
	Te := selectT(t, exact, budget)
	if mod(Tf) < 0.9*mod(Te)-1e-9 {
		t.Fatalf("FPTAS variance %v below (1−ε)·OPT %v", mod(Tf), 0.9*mod(Te))
	}
	if fp.Name() != "MaxPrFPTAS" || exact.Name() != "MaxPrOptimum" {
		t.Fatal("names wrong")
	}
}

func TestMaxPrKnapsackValidation(t *testing.T) {
	db := exampleDB() // discrete values
	f := query.NewAffine(0, map[int]float64{0: 1})
	if _, err := NewMaxPrKnapsack(db, f, 1, 0); err == nil {
		t.Fatal("discrete DB accepted")
	}
	nd, _ := dist.NewNormal(5, 1)
	off := model.New([]model.Object{{Name: "o", Cost: 1, Current: 7, Value: nd}})
	if _, err := NewMaxPrKnapsack(off, f, 1, 0); err == nil {
		t.Fatal("off-center current value accepted (violates Lemma 3.3 premise)")
	}
}
