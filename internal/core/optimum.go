package core

import (
	"context"
	"errors"
	"fmt"
	"math"

	"github.com/factcheck/cleansel/internal/ev"
	"github.com/factcheck/cleansel/internal/knapsack"
	"github.com/factcheck/cleansel/internal/model"
	"github.com/factcheck/cleansel/internal/query"
	"github.com/factcheck/cleansel/internal/submod"
)

// Optimum solves modular MinVar/MaxPr instances exactly as a 0/1 knapsack
// with the pseudo-polynomial DP (Lemmas 3.2/3.3): weights w_o = a_o²·Var[X_o]
// (MinVar for affine claims) or a_o²·σ_o² (MaxPr for centered normals).
type Optimum struct {
	db        *model.DB
	weights   []float64
	precision float64
}

// NewOptimumModular builds the DP selector from an affine query function.
func NewOptimumModular(db *model.DB, f *query.Affine, precision float64) (*Optimum, error) {
	if db == nil {
		return nil, errNilDB
	}
	eng, err := ev.NewModular(db, f)
	if err != nil {
		return nil, err
	}
	return NewOptimumWeights(db, eng.Weights(), precision)
}

// NewOptimumWeights builds the DP selector from explicit modular weights.
func NewOptimumWeights(db *model.DB, weights []float64, precision float64) (*Optimum, error) {
	if db == nil {
		return nil, errNilDB
	}
	if len(weights) != db.N() {
		return nil, fmt.Errorf("core: %d weights for %d objects", len(weights), db.N())
	}
	if precision <= 0 {
		// Real-valued costs (the datasets draw them from continuous
		// ranges) need a fine grid or the DP's ceil/floor rounding can
		// lose the true optimum to the exact-cost greedy.
		precision = 0.01
	}
	return &Optimum{db: db, weights: append([]float64(nil), weights...), precision: precision}, nil
}

// Name implements Selector.
func (o *Optimum) Name() string { return "Optimum" }

// Select implements Selector.
func (o *Optimum) Select(budget float64) (model.Set, error) {
	if err := validateBudget(budget); err != nil {
		return nil, err
	}
	res, err := knapsack.MaxDP(o.weights, o.db.Costs(), budget, o.precision)
	if err != nil {
		return nil, err
	}
	return model.NewSet(res.Indices...), nil
}

// Best is the Theorem 3.7 algorithm: MinVar as minimization of the
// non-decreasing submodular complement objective under a knapsack covering
// constraint, solved with the Iyer–Bilmes majorize–minimize scheme over
// exact min-knapsacks. EV evaluations are memoized — the inner loops
// revisit the same sets many times.
type Best struct {
	db        *model.DB
	engine    ev.Engine
	precision float64
	maxIters  int
}

// NewBest builds the selector for a decomposed query function.
func NewBest(db *model.DB, g *query.GroupSum, precision float64) (*Best, error) {
	if db == nil {
		return nil, errNilDB
	}
	engine, err := ev.NewGroupEngine(db, g)
	if err != nil {
		return nil, err
	}
	return &Best{db: db, engine: engine, precision: orDefault(precision, 1), maxIters: 12}, nil
}

// NewBestEngine builds the selector over an arbitrary EV engine.
func NewBestEngine(db *model.DB, engine ev.Engine, precision float64) (*Best, error) {
	if db == nil {
		return nil, errNilDB
	}
	if engine == nil {
		return nil, errors.New("core: nil engine")
	}
	return &Best{db: db, engine: engine, precision: orDefault(precision, 1), maxIters: 12}, nil
}

func orDefault(v, d float64) float64 {
	if v <= 0 {
		return d
	}
	return v
}

// Name implements Selector.
func (b *Best) Name() string { return "Best" }

// Select implements Selector.
func (b *Best) Select(budget float64) (model.Set, error) {
	return b.SelectContext(context.Background(), budget)
}

// selectAborted carries a cancellation out of the majorize–minimize
// machinery, which has no error channel of its own: the EV closure
// panics with it and SelectContext recovers, so a done context
// surfaces at the next EV evaluation instead of letting MinimizeCover
// grind through its remaining iterations on a poisoned objective.
type selectAborted struct{ err error }

// SelectContext implements ContextSelector. The majorize–minimize
// iterations run through the engine's cancellable EV path, so a done
// context surfaces at the next EV evaluation.
func (b *Best) SelectContext(ctx context.Context, budget float64) (T model.Set, retErr error) {
	if err := validateBudget(budget); err != nil {
		return nil, err
	}
	defer func() {
		if r := recover(); r != nil {
			sa, ok := r.(selectAborted)
			if !ok {
				panic(r)
			}
			T, retErr = nil, sa.err
		}
	}()
	n := b.db.N()
	evMemo := memoizeSetFunc(func(S model.Set) float64 {
		v, err := ev.EVWithContext(ctx, b.engine, S)
		if err != nil {
			panic(selectAborted{err})
		}
		return v
	})
	// f̄(K) = EV(O \ K) over keep-dirty sets K; constraint c(K) ≥ C̄.
	fbar := submod.Func{
		N:    n,
		Eval: func(K model.Set) float64 { return evMemo(K.Complement(n)) },
	}
	costs := b.db.Costs()
	lower := b.db.TotalCost() - budget
	if lower < 0 {
		lower = 0
	}
	K, _, err := submod.MinimizeCover(fbar, costs, lower, b.maxIters, b.precision)
	if err != nil {
		return nil, err
	}
	T = K.Complement(n)
	// Discretized min-knapsack can keep slightly too little; repair by
	// dropping the cheapest-benefit cleaned objects until feasible.
	for T.Cost(b.db) > budget+1e-9 && len(T) > 0 {
		worst, worstScore := -1, math.Inf(1)
		for _, o := range T {
			drop := T.Minus(model.NewSet(o))
			score := evMemo(drop) - evMemo(T) // EV increase from dropping o
			c := b.db.Objects[o].Cost
			if c <= 0 {
				c = 1e-12
			}
			if s := score / c; s < worstScore {
				worst, worstScore = o, s
			}
		}
		if worst < 0 {
			break
		}
		T = T.Minus(model.NewSet(worst))
	}
	return T, nil
}

// Curvature reports the curvature κ of the complement objective, which
// controls Best's O(1/(1−κ)) guarantee (Theorem 3.7).
func (b *Best) Curvature() float64 {
	n := b.db.N()
	evMemo := memoizeSetFunc(func(S model.Set) float64 { return b.engine.EV(S) })
	fbar := submod.Func{
		N:    n,
		Eval: func(K model.Set) float64 { return evMemo(K.Complement(n)) },
	}
	return submod.Curvature(fbar)
}

// memoizeSetFunc caches a set function by the canonical key of its input.
func memoizeSetFunc(f func(model.Set) float64) func(model.Set) float64 {
	cache := map[string]float64{}
	return func(S model.Set) float64 {
		key := setKey(S)
		if v, ok := cache[key]; ok {
			return v
		}
		v := f(S)
		cache[key] = v
		return v
	}
}

func setKey(S model.Set) string {
	buf := make([]byte, 0, 4*len(S))
	for _, v := range S {
		buf = append(buf, byte(v), byte(v>>8), byte(v>>16), ',')
	}
	return string(buf)
}

// OPT exhaustively enumerates all subsets within budget and returns the
// one with the best objective — the yardstick of §4.5. The ground set must
// be small (≤ MaxExhaustiveN objects).
type OPT struct {
	db        *model.DB
	objective func(model.Set) float64
	maximize  bool
	name      string
}

// MaxExhaustiveN caps exhaustive enumeration (2^22 subsets ≈ seconds).
const MaxExhaustiveN = 22

// NewOPT builds the exhaustive selector over an arbitrary set objective.
func NewOPT(name string, db *model.DB, objective func(model.Set) float64, maximize bool) (*OPT, error) {
	if db == nil {
		return nil, errNilDB
	}
	if db.N() > MaxExhaustiveN {
		return nil, fmt.Errorf("core: OPT limited to %d objects, got %d", MaxExhaustiveN, db.N())
	}
	if objective == nil {
		return nil, errors.New("core: nil objective")
	}
	return &OPT{db: db, objective: objective, maximize: maximize, name: name}, nil
}

// NewOPTMinVar builds the exhaustive MinVar yardstick over an EV engine.
func NewOPTMinVar(db *model.DB, engine ev.Engine) (*OPT, error) {
	return NewOPT("OPT", db, engine.EV, false)
}

// Name implements Selector.
func (o *OPT) Name() string { return o.name }

// Select implements Selector.
func (o *OPT) Select(budget float64) (model.Set, error) {
	if err := validateBudget(budget); err != nil {
		return nil, err
	}
	n := o.db.N()
	costs := o.db.Costs()
	bestVal := math.Inf(1)
	if o.maximize {
		bestVal = math.Inf(-1)
	}
	var best model.Set
	scratch := make(model.Set, 0, n)
	for mask := 0; mask < 1<<n; mask++ {
		var c float64
		scratch = scratch[:0]
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				c += costs[i]
				scratch = append(scratch, i)
			}
		}
		if c > budget+1e-9 {
			continue
		}
		v := o.objective(scratch)
		if (o.maximize && v > bestVal) || (!o.maximize && v < bestVal) {
			bestVal = v
			best = scratch.Clone()
		}
	}
	return best, nil
}
