package core

import (
	"testing"

	"github.com/factcheck/cleansel/internal/dist"
	"github.com/factcheck/cleansel/internal/ev"
	"github.com/factcheck/cleansel/internal/linalg"
	"github.com/factcheck/cleansel/internal/maxpr"
	"github.com/factcheck/cleansel/internal/model"
	"github.com/factcheck/cleansel/internal/numeric"
	"github.com/factcheck/cleansel/internal/query"
	"github.com/factcheck/cleansel/internal/rng"
)

// Theorem 3.9 (independent special case, Lemma 3.1): with independent
// normal errors centered at the current values and a linear claim
// function, the MinVar optimum and the MaxPr optimum coincide. We verify
// by exhaustive search over all subsets.
func TestTheorem39IndependentAlignment(t *testing.T) {
	r := rng.New(39)
	for trial := 0; trial < 20; trial++ {
		n := 3 + r.Intn(4)
		objs := make([]model.Object, n)
		coef := map[int]float64{}
		for i := 0; i < n; i++ {
			sigma := 0.5 + 2.5*r.Float64()
			u := r.Uniform(-5, 5)
			nd, err := dist.NewNormal(u, sigma) // centered at current value
			if err != nil {
				t.Fatal(err)
			}
			objs[i] = model.Object{Name: "o", Cost: float64(r.IntRange(1, 6)), Current: u, Value: nd}
			coef[i] = r.Uniform(-2, 2)
		}
		db := model.New(objs)
		f := query.NewAffine(r.Uniform(-3, 3), coef)
		tau := 0.5 + r.Float64()

		minvarEng, err := ev.NewModular(db, f)
		if err != nil {
			t.Fatal(err)
		}
		maxprEval, err := maxpr.NewNormalAffine(db, f, tau)
		if err != nil {
			t.Fatal(err)
		}
		budget := (0.2 + 0.6*r.Float64()) * db.TotalCost()

		optMinVar, err := NewOPTMinVar(db, minvarEng)
		if err != nil {
			t.Fatal(err)
		}
		optMaxPr, err := NewOPT("OPTMaxPr", db, maxprEval.Prob, true)
		if err != nil {
			t.Fatal(err)
		}
		Tmin := selectT(t, optMinVar, budget)
		Tmax := selectT(t, optMaxPr, budget)
		// The optima must achieve the same objective values (ties between
		// distinct optimal sets are fine; the objectives must agree).
		if !numeric.AlmostEqual(minvarEng.EV(Tmin), minvarEng.EV(Tmax), 1e-9) {
			t.Fatalf("trial %d: MinVar disagrees: EV(Tmin)=%v EV(Tmax)=%v",
				trial, minvarEng.EV(Tmin), minvarEng.EV(Tmax))
		}
		if !numeric.AlmostEqual(maxprEval.Prob(Tmin), maxprEval.Prob(Tmax), 1e-9) {
			t.Fatalf("trial %d: MaxPr disagrees: P(Tmin)=%v P(Tmax)=%v",
				trial, maxprEval.Prob(Tmin), maxprEval.Prob(Tmax))
		}
	}
}

// Theorem 3.9 (correlated case, paper's marginal semantics): under the
// simplification used in the paper's proof — cleaned values drawn from
// their marginals, uncleaned variance unchanged — MinVar minimizes
// Σ_{i,j∉T} a_i a_j Σ_ij and MaxPr maximizes Φ(−τ/√(Σ_{i,j∈T} a_i a_j Σ_ij)).
// These are not complementary in general; this test DOCUMENTS the observed
// behaviour: alignment holds in the independent case above, and under
// correlation the two optima frequently differ (we require at least one
// differing instance across trials so that the experiment narrative in
// EXPERIMENTS.md stays honest).
func TestTheorem39CorrelatedMarginalSemantics(t *testing.T) {
	r := rng.New(93)
	agree, disagree := 0, 0
	for trial := 0; trial < 30; trial++ {
		n := 3 + r.Intn(3)
		sigmas := make([]float64, n)
		objs := make([]model.Object, n)
		coef := map[int]float64{}
		for i := 0; i < n; i++ {
			sigmas[i] = 0.5 + 2*r.Float64()
			u := r.Uniform(-3, 3)
			nd, _ := dist.NewNormal(u, sigmas[i])
			objs[i] = model.Object{Name: "o", Cost: float64(r.IntRange(1, 4)), Current: u, Value: nd}
			coef[i] = r.Uniform(-2, 2)
		}
		gamma := 0.3 + 0.6*r.Float64()
		cov := linalg.NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				d := j - i
				if d < 0 {
					d = -d
				}
				v := sigmas[i] * sigmas[j]
				for k := 0; k < d; k++ {
					v *= gamma
				}
				cov.Set(i, j, v)
			}
		}
		db := model.New(objs)
		db.Cov = cov
		f := query.NewAffine(0, coef)
		mvn, err := ev.NewMVN(db, f)
		if err != nil {
			t.Fatal(err)
		}
		budget := (0.3 + 0.4*r.Float64()) * db.TotalCost()
		optMinVar, err := NewOPT("OPTMinVarMarginal", db, mvn.MarginalEV, false)
		if err != nil {
			t.Fatal(err)
		}
		optMaxPr, err := NewOPT("OPTMaxPrMarginal", db, mvn.MarginalCleanedVariance, true)
		if err != nil {
			t.Fatal(err)
		}
		Tmin := selectT(t, optMinVar, budget)
		Tmax := selectT(t, optMaxPr, budget)
		if numeric.AlmostEqual(mvn.MarginalEV(Tmin), mvn.MarginalEV(Tmax), 1e-9) {
			agree++
		} else {
			disagree++
		}
	}
	if agree == 0 {
		t.Fatal("marginal-semantics optima never agreed — implementation suspect")
	}
	t.Logf("correlated marginal-semantics alignment: %d agree, %d disagree", agree, disagree)
}
