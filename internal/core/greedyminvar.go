package core

import (
	"container/heap"
	"context"
	"errors"

	"github.com/factcheck/cleansel/internal/ev"
	"github.com/factcheck/cleansel/internal/model"
	"github.com/factcheck/cleansel/internal/query"
)

// GreedyMinVarModular is GreedyMinVar for affine query functions with
// uncorrelated errors: the benefit of cleaning o is exactly
// w_o = a_o²·Var[X_o] (Lemma 3.1), so the benefits are static and the
// algorithm is the 2-approximate knapsack greedy.
type GreedyMinVarModular struct {
	db      *model.DB
	weights []float64
}

// NewGreedyMinVarModular builds the selector.
func NewGreedyMinVarModular(db *model.DB, f *query.Affine) (*GreedyMinVarModular, error) {
	if db == nil {
		return nil, errNilDB
	}
	eng, err := ev.NewModular(db, f)
	if err != nil {
		return nil, err
	}
	return &GreedyMinVarModular{db: db, weights: eng.Weights()}, nil
}

// Name implements Selector.
func (g *GreedyMinVarModular) Name() string { return "GreedyMinVar" }

// Select implements Selector.
func (g *GreedyMinVarModular) Select(budget float64) (model.Set, error) {
	if err := validateBudget(budget); err != nil {
		return nil, err
	}
	return staticGreedy(g.db, g.weights, budget), nil
}

// GreedyMinVarGroup is GreedyMinVar for decomposed (GroupSum) query
// functions over independent discrete values: benefits are the exact
// objective deltas of the group engine, maintained incrementally. Because
// cleaning an object only changes the benefits of objects sharing a claim
// with it, the selector keeps a priority queue whose entries are refreshed
// only on those local invalidations — the whole run costs near-linear work
// on disjoint-window workloads (Figure 10).
type GreedyMinVarGroup struct {
	db     *model.DB
	engine *ev.GroupEngine
}

// NewGreedyMinVarGroup builds the selector.
func NewGreedyMinVarGroup(db *model.DB, g *query.GroupSum) (*GreedyMinVarGroup, error) {
	if db == nil {
		return nil, errNilDB
	}
	engine, err := ev.NewGroupEngine(db, g)
	if err != nil {
		return nil, err
	}
	return &GreedyMinVarGroup{db: db, engine: engine}, nil
}

// Name implements Selector.
func (g *GreedyMinVarGroup) Name() string { return "GreedyMinVar" }

// benefit-queue entry; ver guards against stale benefits after local
// invalidation.
type pqEntry struct {
	ratio   float64
	benefit float64
	obj     int
	ver     int
}

type pq []pqEntry

func (q pq) Len() int { return len(q) }
func (q pq) Less(i, j int) bool {
	if q[i].ratio != q[j].ratio {
		return q[i].ratio > q[j].ratio
	}
	return q[i].obj < q[j].obj
}
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqEntry)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// Select implements Selector.
func (g *GreedyMinVarGroup) Select(budget float64) (model.Set, error) {
	return g.SelectContext(context.Background(), budget)
}

// SelectContext implements ContextSelector: the initial benefit pass
// runs on the parallel worker pool and the queue loop checks the
// context between cleans, so a timed-out solve stops promptly.
func (g *GreedyMinVarGroup) SelectContext(ctx context.Context, budget float64) (model.Set, error) {
	if err := validateBudget(budget); err != nil {
		return nil, err
	}
	st, err := g.engine.NewStateCtx(ctx)
	if err != nil {
		return nil, err
	}
	n := g.db.N()
	version := make([]int, n)
	singles, err := st.SingletonBenefitsCtx(ctx) // also serves the final check
	if err != nil {
		return nil, err
	}
	q := make(pq, 0, n)
	for o := 0; o < n; o++ {
		if singles[o] <= 0 {
			continue
		}
		q = append(q, pqEntry{ratio: ratio(singles[o], g.db.Objects[o].Cost), benefit: singles[o], obj: o})
	}
	heap.Init(&q)

	var T model.Set
	remaining := budget
	gainSum := 0.0
	for q.Len() > 0 {
		if err := ctx.Err(); err != nil {
			return nil, context.Cause(ctx)
		}
		top := heap.Pop(&q).(pqEntry)
		o := top.obj
		if st.Cleaned(o) || top.ver != version[o] {
			continue // superseded entry
		}
		if !fitsBudget(0, g.db.Objects[o].Cost, remaining) {
			continue // budget only shrinks: never affordable again
		}
		gain := -st.Clean(o)
		T = T.Add(o)
		remaining -= g.db.Objects[o].Cost
		gainSum += gain
		// Refresh the benefits of locally affected objects so the queue
		// max stays exact (EV is submodular: stale entries underestimate).
		for _, a := range st.Affected(o) {
			if st.Cleaned(a) {
				continue
			}
			version[a]++
			b := -st.Delta(a)
			if b < 0 {
				b = 0
			}
			heap.Push(&q, pqEntry{ratio: ratio(b, g.db.Objects[a].Cost), benefit: b, obj: a, ver: version[a]})
		}
	}
	// Final check against the best single object (by singleton benefit).
	if o := bestUnchosen(g.db, singles, T, budget); o >= 0 && singles[o] > gainSum {
		return model.NewSet(o), nil
	}
	return T, nil
}

// GreedyEngine is the generic adaptive GreedyMinVar over any EV engine:
// each round re-evaluates the benefit EV(T) − EV(T ∪ {o}) for every
// affordable candidate (the O(n²·γ) form discussed in §3.1). It also
// serves as GreedyDep when given the Schur-complement MVN engine.
type GreedyEngine struct {
	name   string
	db     *model.DB
	engine ev.Engine
}

// NewGreedyEngine wraps an EV engine in the adaptive greedy.
func NewGreedyEngine(name string, db *model.DB, engine ev.Engine) (*GreedyEngine, error) {
	if db == nil {
		return nil, errNilDB
	}
	if engine == nil {
		return nil, errors.New("core: nil engine")
	}
	return &GreedyEngine{name: name, db: db, engine: engine}, nil
}

// NewGreedyDep builds the dependency-aware greedy of §4.5: benefits are
// exact conditional-variance reductions under the full covariance model.
func NewGreedyDep(db *model.DB, f *query.Affine) (*GreedyEngine, error) {
	engine, err := ev.NewMVN(db, f)
	if err != nil {
		return nil, err
	}
	return NewGreedyEngine("GreedyDep", db, engine)
}

// Name implements Selector.
func (g *GreedyEngine) Name() string { return g.name }

// Select implements Selector.
func (g *GreedyEngine) Select(budget float64) (model.Set, error) {
	return g.SelectContext(context.Background(), budget)
}

// SelectContext implements ContextSelector, checking the context
// between candidate evaluations (each one is a full EV solve — the
// expensive unit of this adaptive greedy).
func (g *GreedyEngine) SelectContext(ctx context.Context, budget float64) (model.Set, error) {
	if err := validateBudget(budget); err != nil {
		return nil, err
	}
	n := g.db.N()
	var T model.Set
	remaining := budget
	cur, err := ev.EVWithContext(ctx, g.engine, nil)
	if err != nil {
		return nil, err
	}
	gainSum := 0.0
	singles := make([]float64, n)
	for o := 0; o < n; o++ {
		after, err := ev.EVWithContext(ctx, g.engine, model.NewSet(o))
		if err != nil {
			return nil, err
		}
		b := cur - after
		if b < 0 {
			b = 0
		}
		singles[o] = b
	}
	for {
		best, bestR, bestEV := -1, -1.0, 0.0
		for o := 0; o < n; o++ {
			if T.Has(o) || !fitsBudget(0, g.db.Objects[o].Cost, remaining) {
				continue
			}
			after, err := ev.EVWithContext(ctx, g.engine, T.Add(o))
			if err != nil {
				return nil, err
			}
			b := cur - after
			if b < 0 {
				b = 0
			}
			if r := ratio(b, g.db.Objects[o].Cost); r > bestR {
				best, bestR, bestEV = o, r, after
			}
		}
		if best < 0 {
			break
		}
		gainSum += cur - bestEV
		cur = bestEV
		remaining -= g.db.Objects[best].Cost
		T = T.Add(best)
	}
	if o := bestUnchosen(g.db, singles, T, budget); o >= 0 && singles[o] > gainSum {
		return model.NewSet(o), nil
	}
	return T, nil
}
