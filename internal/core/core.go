// Package core implements the paper's primary contribution: the selection
// algorithms that decide which uncertain values to clean under a cost
// budget (§3). All greedy selectors instantiate Algorithm 1 — pick the
// affordable object with the best benefit-per-cost, then apply the final
// best-single-item check that upgrades density greedy to a constant-factor
// approximation on modular objectives.
//
// Selectors (paper name → type):
//
//	Random                → Random
//	GreedyNaiveCostBlind  → GreedyNaiveCostBlind
//	GreedyNaive           → GreedyNaive
//	GreedyMinVar          → GreedyMinVarModular / GreedyMinVarGroup / GreedyEngine
//	GreedyMaxPr           → GreedyMaxPr
//	Optimum (knapsack DP) → Optimum
//	Best (Theorem 3.7)    → Best
//	OPT (exhaustive)      → OPT
//	GreedyDep (§4.5)      → GreedyDep (= GreedyEngine over the MVN engine)
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"github.com/factcheck/cleansel/internal/model"
	"github.com/factcheck/cleansel/internal/rng"
)

// Selector chooses a subset of objects to clean within a budget.
type Selector interface {
	// Name identifies the algorithm in experiment output.
	Name() string
	// Select returns the chosen subset; its cost never exceeds budget.
	Select(budget float64) (model.Set, error)
}

// ContextSelector is a Selector whose solve cooperates with context
// cancellation: SelectContext returns the context's error promptly
// (between benefit evaluations) once the context is done. The selected
// set of an uncancelled SelectContext equals Select's, bit for bit.
type ContextSelector interface {
	Selector
	SelectContext(ctx context.Context, budget float64) (model.Set, error)
}

// SelectWithContext runs sel under ctx: cancellation-aware selectors
// solve cooperatively; for plain selectors the context is checked once
// up front (their solves are the cheap sort-and-fill algorithms).
func SelectWithContext(ctx context.Context, sel Selector, budget float64) (model.Set, error) {
	if cs, ok := sel.(ContextSelector); ok {
		return cs.SelectContext(ctx, budget)
	}
	if err := ctx.Err(); err != nil {
		return nil, context.Cause(ctx)
	}
	return sel.Select(budget)
}

// fitsBudget reports whether adding cost c to spent stays within budget,
// tolerating float round-off proportional to the budget's magnitude (sums
// accumulated in different orders may differ in the last bits, and the
// full-budget sweep point must still take every object).
func fitsBudget(spent, c, budget float64) bool {
	return spent+c <= budget+1e-9*(1+math.Abs(budget))
}

// ratio is benefit-per-unit-cost with the zero-cost convention of
// Algorithm 1: free objects with positive benefit come first.
func ratio(benefit, cost float64) float64 {
	if cost == 0 {
		if benefit > 0 {
			return math.Inf(1)
		}
		return 0
	}
	return benefit / cost
}

// Random cleans objects in a uniformly random order, taking every object
// that still fits the remaining budget (§4.1 baseline). Use a fresh seed
// per run and average, as the experiments do.
type Random struct {
	DB   *model.DB
	Seed uint64
}

// Name implements Selector.
func (r *Random) Name() string { return "Random" }

// Select implements Selector.
func (r *Random) Select(budget float64) (model.Set, error) {
	gen := rng.New(r.Seed)
	perm := gen.Perm(r.DB.N())
	var T model.Set
	spent := 0.0
	for _, o := range perm {
		c := r.DB.Objects[o].Cost
		if fitsBudget(spent, c, budget) {
			T = T.Add(o)
			spent += c
		}
	}
	return T, nil
}

// GreedyNaiveCostBlind cleans objects in descending order of marginal
// variance, ignoring costs entirely (§4.1 baseline). Objects outside Vars
// (when non-nil) are skipped — cleaning values the query never touches is
// pure waste.
type GreedyNaiveCostBlind struct {
	DB   *model.DB
	Vars []int // referenced objects; nil means all
}

// Name implements Selector.
func (g *GreedyNaiveCostBlind) Name() string { return "GreedyNaiveCostBlind" }

// Select implements Selector.
func (g *GreedyNaiveCostBlind) Select(budget float64) (model.Set, error) {
	order := referencedOrder(g.DB, g.Vars, func(o int) float64 {
		return g.DB.Objects[o].Value.Variance()
	})
	var T model.Set
	spent := 0.0
	for _, o := range order {
		c := g.DB.Objects[o].Cost
		if fitsBudget(spent, c, budget) {
			T = T.Add(o)
			spent += c
		}
	}
	return T, nil
}

// GreedyNaive is Algorithm 1 with the naive benefit β(o) = Var[X_o]
// (§3.1): cost-aware but objective-blind.
type GreedyNaive struct {
	DB   *model.DB
	Vars []int // referenced objects; nil means all
}

// Name implements Selector.
func (g *GreedyNaive) Name() string { return "GreedyNaive" }

// Select implements Selector.
func (g *GreedyNaive) Select(budget float64) (model.Set, error) {
	benefits := make([]float64, g.DB.N())
	for _, o := range candidateList(g.DB, g.Vars) {
		benefits[o] = g.DB.Objects[o].Value.Variance()
	}
	return staticGreedy(g.DB, benefits, budget), nil
}

// candidateList returns vars, or all object IDs when vars is nil.
func candidateList(db *model.DB, vars []int) []int {
	if vars != nil {
		return vars
	}
	all := make([]int, db.N())
	for i := range all {
		all[i] = i
	}
	return all
}

// referencedOrder sorts the candidates by score descending (stable by id).
func referencedOrder(db *model.DB, vars []int, score func(o int) float64) []int {
	cand := append([]int(nil), candidateList(db, vars)...)
	sort.SliceStable(cand, func(a, b int) bool {
		sa, sb := score(cand[a]), score(cand[b])
		if sa != sb {
			return sa > sb
		}
		return cand[a] < cand[b]
	})
	return cand
}

// staticGreedy runs Algorithm 1 for a benefit function that does not
// depend on the chosen set: sort once by benefit/cost, fill the budget,
// then apply the final single-item check.
func staticGreedy(db *model.DB, benefits []float64, budget float64) model.Set {
	n := db.N()
	order := make([]int, 0, n)
	for o := 0; o < n; o++ {
		if benefits[o] > 0 {
			order = append(order, o)
		}
	}
	sort.SliceStable(order, func(a, b int) bool {
		ra := ratio(benefits[order[a]], db.Objects[order[a]].Cost)
		rb := ratio(benefits[order[b]], db.Objects[order[b]].Cost)
		if ra != rb {
			return ra > rb
		}
		return order[a] < order[b]
	})
	var T model.Set
	spent, gain := 0.0, 0.0
	for _, o := range order {
		c := db.Objects[o].Cost
		if fitsBudget(spent, c, budget) {
			T = T.Add(o)
			spent += c
			gain += benefits[o]
		}
	}
	// Final check (Algorithm 1 lines 5–8): the best affordable object not
	// in T, by ratio; replace T if its benefit alone beats the total.
	if o := bestUnchosen(db, benefits, T, budget); o >= 0 && benefits[o] > gain {
		return model.NewSet(o)
	}
	return T
}

// bestUnchosen returns the argmax of benefit/cost over affordable objects
// outside T, or −1.
func bestUnchosen(db *model.DB, benefits []float64, T model.Set, budget float64) int {
	best, bestR := -1, math.Inf(-1)
	for o := 0; o < db.N(); o++ {
		if T.Has(o) || !fitsBudget(0, db.Objects[o].Cost, budget) || benefits[o] <= 0 {
			continue
		}
		if r := ratio(benefits[o], db.Objects[o].Cost); r > bestR {
			best, bestR = o, r
		}
	}
	return best
}

// validateBudget rejects NaN or negative budgets.
func validateBudget(budget float64) error {
	if math.IsNaN(budget) || budget < 0 {
		return fmt.Errorf("core: invalid budget %v", budget)
	}
	return nil
}

// errNilDB is shared by constructors.
var errNilDB = errors.New("core: nil database")
