package core

import (
	"testing"

	"github.com/factcheck/cleansel/internal/numeric"
	"github.com/factcheck/cleansel/internal/query"
)

// --- NextAdaptiveStep: the decide-step shared by simulators and sessions ---

func TestNextAdaptiveStepPicksBestRatio(t *testing.T) {
	costs := []float64{2, 1, 4}
	benefits := []float64{3, 2, 10} // ratios 1.5, 2, 2.5
	best, b, r := NextAdaptiveStep(costs, make([]bool, 3), 10, func(o int) float64 { return benefits[o] })
	if best != 2 || b != 10 || r != 2.5 {
		t.Fatalf("got (%d, %v, %v), want (2, 10, 2.5)", best, b, r)
	}
}

func TestNextAdaptiveStepSkipsCleanedAndUnaffordable(t *testing.T) {
	costs := []float64{1, 1, 5}
	benefits := []float64{100, 1, 100}
	cleaned := []bool{true, false, false}
	// Object 0 is cleaned, object 2 does not fit the remaining budget 2.
	best, _, _ := NextAdaptiveStep(costs, cleaned, 2, func(o int) float64 { return benefits[o] })
	if best != 1 {
		t.Fatalf("got %d, want 1", best)
	}
}

func TestNextAdaptiveStepSkipsNonPositiveBenefit(t *testing.T) {
	costs := []float64{1, 1, 1}
	benefits := []float64{0, -2, 0}
	best, _, _ := NextAdaptiveStep(costs, make([]bool, 3), 10, func(o int) float64 { return benefits[o] })
	if best != -1 {
		t.Fatalf("got %d, want -1 (no positive-benefit step)", best)
	}
}

func TestNextAdaptiveStepLowestIDWinsTies(t *testing.T) {
	// Equal ratios everywhere: the strictly-greater comparison keeps the
	// first candidate, so the selection is deterministic.
	costs := []float64{1, 1, 1}
	best, _, _ := NextAdaptiveStep(costs, make([]bool, 3), 10, func(o int) float64 { return 1 })
	if best != 0 {
		t.Fatalf("tie broke to %d, want 0", best)
	}
}

func TestNextAdaptiveStepBudgetTolerance(t *testing.T) {
	// FitsBudget's round-off tolerance must apply: a cost equal to the
	// remaining budget up to 1e-9 relative error is affordable.
	costs := []float64{3.0000000000000004}
	best, _, _ := NextAdaptiveStep(costs, make([]bool, 1), 3, func(o int) float64 { return 1 })
	if best != 0 {
		t.Fatal("tolerance-close cost rejected")
	}
	if !FitsBudget(0, 3.0000000000000004, 3) {
		t.Fatal("FitsBudget disagrees with the selectors' tolerance")
	}
	if FitsBudget(0, 4, 3) {
		t.Fatal("clearly unaffordable cost accepted")
	}
}

func TestValidateBudgetExported(t *testing.T) {
	if err := ValidateBudget(1); err != nil {
		t.Fatal(err)
	}
	if err := ValidateBudget(-1); err == nil {
		t.Fatal("negative budget accepted")
	}
}

// --- AdaptiveMinVar ---------------------------------------------------------

func TestAdaptiveMinVarCleansByVariancePerCost(t *testing.T) {
	db := adaptiveTestDB(t) // unit costs, sigmas 3, 2, 1
	f := query.NewAffine(0, map[int]float64{0: 1, 1: 1, 2: 1})
	ad, err := NewAdaptiveMinVar(db, f)
	if err != nil {
		t.Fatal(err)
	}
	truth := []float64{12, 9, 10}
	tr, err := ad.Run(truth, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Highest variance first: objects 0 then 1, budget 2 stops there.
	if len(tr.Cleaned) != 2 || tr.Cleaned[0] != 0 || tr.Cleaned[1] != 1 {
		t.Fatalf("cleaned %v, want [0 1]", tr.Cleaned)
	}
	if !numeric.AlmostEqual(tr.CostSpent, 2, 1e-12) {
		t.Fatalf("cost %v, want 2", tr.CostSpent)
	}
	if !numeric.AlmostEqual(tr.VarBefore, 9+4+1, 1e-12) {
		t.Fatalf("VarBefore %v, want 14", tr.VarBefore)
	}
	if !numeric.AlmostEqual(tr.VarAfter, 1, 1e-12) {
		t.Fatalf("VarAfter %v, want 1 (only sigma=1 object left)", tr.VarAfter)
	}
	// Posterior mean: revealed truths for 0 and 1, prior mean for 2.
	if !numeric.AlmostEqual(tr.Estimate, 12+9+10, 1e-12) {
		t.Fatalf("estimate %v, want 31", tr.Estimate)
	}
}

func TestAdaptiveMinVarExhaustsUsefulObjects(t *testing.T) {
	db := adaptiveTestDB(t)
	// Only object 1 carries claim weight; the others have zero benefit.
	f := query.NewAffine(0, map[int]float64{1: 2})
	ad, err := NewAdaptiveMinVar(db, f)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := ad.Run([]float64{10, 10, 10}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Cleaned) != 1 || tr.Cleaned[0] != 1 {
		t.Fatalf("cleaned %v, want just object 1", tr.Cleaned)
	}
	if tr.VarAfter != 0 {
		t.Fatalf("residual claim variance %v, want 0", tr.VarAfter)
	}
}

func TestAdaptiveMinVarValidation(t *testing.T) {
	db := adaptiveTestDB(t)
	f := query.NewAffine(0, map[int]float64{0: 1})
	if _, err := NewAdaptiveMinVar(nil, f); err == nil {
		t.Fatal("nil DB accepted")
	}
	ad, err := NewAdaptiveMinVar(db, f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ad.Run([]float64{1}, 1); err == nil {
		t.Fatal("truth length mismatch accepted")
	}
	if _, err := ad.Run([]float64{10, 10, 10}, -1); err == nil {
		t.Fatal("negative budget accepted")
	}
	if ad.Name() != "AdaptiveMinVar" {
		t.Fatalf("name %q", ad.Name())
	}
}
