package core

import (
	"context"
	"errors"

	"github.com/factcheck/cleansel/internal/maxpr"
	"github.com/factcheck/cleansel/internal/model"
)

// GreedyMaxPr is Algorithm 1 with benefits taken from the MaxPr objective:
// β(o) = P(T ∪ {o}) − P(T). Unlike MinVar the objective is not monotone —
// cleaning a value can *reduce* the chance of finding a counterargument by
// adding noise — so the greedy stops as soon as no candidate improves the
// probability. That refusal to spend more budget is exactly the flat tail
// of Figure 12(b).
type GreedyMaxPr struct {
	db   *model.DB
	eval maxpr.Evaluator
}

// NewGreedyMaxPr builds the selector around any MaxPr evaluator.
func NewGreedyMaxPr(db *model.DB, eval maxpr.Evaluator) (*GreedyMaxPr, error) {
	if db == nil {
		return nil, errNilDB
	}
	if eval == nil {
		return nil, errors.New("core: nil MaxPr evaluator")
	}
	return &GreedyMaxPr{db: db, eval: eval}, nil
}

// Name implements Selector.
func (g *GreedyMaxPr) Name() string { return "GreedyMaxPr" }

// Select implements Selector.
func (g *GreedyMaxPr) Select(budget float64) (model.Set, error) {
	return g.SelectContext(context.Background(), budget)
}

// SelectContext implements ContextSelector, checking the context
// between Prob evaluations (each one a convolution, a conditional MVN
// solve, or a Monte-Carlo pass — the expensive unit here).
func (g *GreedyMaxPr) SelectContext(ctx context.Context, budget float64) (model.Set, error) {
	if err := validateBudget(budget); err != nil {
		return nil, err
	}
	n := g.db.N()
	var T model.Set
	remaining := budget
	cur := 0.0 // P(∅) = 0 by definition
	singles := make([]float64, n)
	for o := 0; o < n; o++ {
		if err := ctx.Err(); err != nil {
			return nil, context.Cause(ctx)
		}
		if p := g.eval.Prob(model.NewSet(o)); p > 0 {
			singles[o] = p
		}
	}
	for {
		best, bestR, bestP := -1, 0.0, cur
		for o := 0; o < n; o++ {
			if T.Has(o) || !fitsBudget(0, g.db.Objects[o].Cost, remaining) {
				continue
			}
			if err := ctx.Err(); err != nil {
				return nil, context.Cause(ctx)
			}
			p := g.eval.Prob(T.Add(o))
			delta := p - cur
			if delta <= 0 {
				continue // only positive improvements are worth budget
			}
			if r := ratio(delta, g.db.Objects[o].Cost); r > bestR {
				best, bestR, bestP = o, r, p
			}
		}
		if best < 0 {
			break
		}
		T = T.Add(best)
		remaining -= g.db.Objects[best].Cost
		cur = bestP
	}
	// Final check: a single object can beat the whole greedy set because
	// P is not additive. Σ of recorded gains telescopes to P(T) = cur.
	if o := bestUnchosen(g.db, singles, T, budget); o >= 0 && singles[o] > cur {
		return model.NewSet(o), nil
	}
	return T, nil
}
