package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// A Counter is a monotonically increasing float64, safe for concurrent
// use. The zero value is ready; methods are nil-receiver safe so
// optional instrumentation points can hold a possibly-nil *Counter and
// tick unconditionally. Counters registered in a Registry are the same
// objects handed to the code that increments them — /metrics and any
// JSON view (like /healthz) read one source and can never disagree.
type Counter struct {
	bits atomic.Uint64 // float64 bits
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add accumulates d (negative deltas are ignored: counters only go up).
func (c *Counter) Add(d float64) {
	if c == nil || d < 0 || math.IsNaN(d) {
		return
	}
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current count.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// A CounterVec is a family of Counters keyed by label values.
type CounterVec struct {
	labelNames []string

	mu       sync.Mutex
	children map[string]*vecChild[*Counter]
}

type vecChild[T any] struct {
	labelValues []string
	metric      T
}

const labelSep = "\x1f"

func labelKey(values []string) string { return strings.Join(values, labelSep) }

// With returns the Counter for the given label values, creating it on
// first use. The number of values must match the vec's label names.
func (v *CounterVec) With(values ...string) *Counter {
	if len(values) != len(v.labelNames) {
		panic(fmt.Sprintf("obs: %d label values for %d labels %v", len(values), len(v.labelNames), v.labelNames))
	}
	key := labelKey(values)
	v.mu.Lock()
	defer v.mu.Unlock()
	child, ok := v.children[key]
	if !ok {
		child = &vecChild[*Counter]{labelValues: append([]string(nil), values...), metric: &Counter{}}
		v.children[key] = child
	}
	return child.metric
}

// Total returns the sum over every child counter.
func (v *CounterVec) Total() float64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	var sum float64
	for _, child := range v.children {
		sum += child.metric.Value()
	}
	return sum
}

// sorted returns the children ordered by label values, for
// deterministic exposition.
func (v *CounterVec) sortedChildren() []*vecChild[*Counter] {
	v.mu.Lock()
	out := make([]*vecChild[*Counter], 0, len(v.children))
	for _, child := range v.children {
		out = append(out, child)
	}
	v.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		return labelKey(out[i].labelValues) < labelKey(out[j].labelValues)
	})
	return out
}

// DefLatencyBuckets are the fixed upper bounds (seconds) of the
// request-latency histograms: half a millisecond through ten seconds,
// roughly logarithmic.
var DefLatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// A Histogram counts observations into fixed buckets (cumulative on
// exposition, per the Prometheus histogram contract) and tracks their
// sum. Observations and snapshots are mutex-guarded, so a scrape sees a
// consistent (counts, sum) pair.
type Histogram struct {
	bounds []float64 // ascending finite upper bounds

	mu     sync.Mutex
	counts []uint64 // len(bounds)+1; last bucket is +Inf
	sum    float64
}

func newHistogram(buckets []float64) *Histogram {
	bounds := append([]float64(nil), buckets...)
	sort.Float64s(bounds)
	return &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v: its bucket
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.mu.Unlock()
}

// HistogramSnapshot is one consistent view of a histogram: cumulative
// bucket counts aligned with Bounds plus the +Inf bucket at the end.
type HistogramSnapshot struct {
	Bounds     []float64
	Cumulative []uint64 // len(Bounds)+1, non-decreasing; last is Count
	Count      uint64
	Sum        float64
}

// Snapshot returns the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	counts := append([]uint64(nil), h.counts...)
	sum := h.sum
	h.mu.Unlock()
	var running uint64
	for i := range counts {
		running += counts[i]
		counts[i] = running
	}
	return HistogramSnapshot{Bounds: h.bounds, Cumulative: counts, Count: running, Sum: sum}
}

// A HistogramVec is a family of Histograms keyed by label values.
type HistogramVec struct {
	labelNames []string
	buckets    []float64

	mu       sync.Mutex
	children map[string]*vecChild[*Histogram]
}

// With returns the Histogram for the given label values, creating it on
// first use.
func (v *HistogramVec) With(values ...string) *Histogram {
	if len(values) != len(v.labelNames) {
		panic(fmt.Sprintf("obs: %d label values for %d labels %v", len(values), len(v.labelNames), v.labelNames))
	}
	key := labelKey(values)
	v.mu.Lock()
	defer v.mu.Unlock()
	child, ok := v.children[key]
	if !ok {
		child = &vecChild[*Histogram]{labelValues: append([]string(nil), values...), metric: newHistogram(v.buckets)}
		v.children[key] = child
	}
	return child.metric
}

func (v *HistogramVec) sortedChildren() []*vecChild[*Histogram] {
	v.mu.Lock()
	out := make([]*vecChild[*Histogram], 0, len(v.children))
	for _, child := range v.children {
		out = append(out, child)
	}
	v.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		return labelKey(out[i].labelValues) < labelKey(out[j].labelValues)
	})
	return out
}

type familyKind int

const (
	counterKind familyKind = iota
	counterVecKind
	gaugeKind
	histogramKind
	histogramVecKind
)

type family struct {
	name, help string
	kind       familyKind

	counter *Counter
	vec     *CounterVec
	gauge   func() float64
	hist    *Histogram
	histVec *HistogramVec
}

// A Registry holds named metric families and renders them in the
// Prometheus text exposition format (version 0.0.4). It is an
// http.Handler, so `mux.Handle("GET /metrics", registry)` is the whole
// endpoint. Registration happens at construction time; rendering is
// safe concurrently with metric updates, each family snapshotted
// consistently.
type Registry struct {
	mu     sync.Mutex
	byName map[string]*family
}

// NewRegistry returns an empty Registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

func (r *Registry) register(f *family) {
	if !validMetricName(f.name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", f.name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[f.name]; dup {
		panic(fmt.Sprintf("obs: metric %q registered twice", f.name))
	}
	r.byName[f.name] = f
}

// Counter registers and returns a label-less counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(&family{name: name, help: help, kind: counterKind, counter: c})
	return c
}

// CounterVec registers and returns a labeled counter family. Labels
// are exposed in the order given here.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	for _, l := range labelNames {
		if !validLabelName(l) {
			panic(fmt.Sprintf("obs: invalid label name %q", l))
		}
	}
	v := &CounterVec{labelNames: append([]string(nil), labelNames...), children: make(map[string]*vecChild[*Counter])}
	r.register(&family{name: name, help: help, kind: counterVecKind, vec: v})
	return v
}

// GaugeFunc registers a gauge whose value is read by calling f at
// scrape time — the natural fit for instantaneous state someone else
// owns (cache entries, pool depth, snapshot age). f must be safe for
// concurrent use.
func (r *Registry) GaugeFunc(name, help string, f func() float64) {
	r.register(&family{name: name, help: help, kind: gaugeKind, gauge: f})
}

// Histogram registers and returns a label-less fixed-bucket histogram.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	h := newHistogram(buckets)
	r.register(&family{name: name, help: help, kind: histogramKind, hist: h})
	return h
}

// HistogramVec registers and returns a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	for _, l := range labelNames {
		if !validLabelName(l) {
			panic(fmt.Sprintf("obs: invalid label name %q", l))
		}
	}
	v := &HistogramVec{
		labelNames: append([]string(nil), labelNames...),
		buckets:    append([]float64(nil), buckets...),
		children:   make(map[string]*vecChild[*Histogram]),
	}
	sort.Float64s(v.buckets)
	r.register(&family{name: name, help: help, kind: histogramVecKind, histVec: v})
	return v
}

// WritePrometheus renders every registered family in the text
// exposition format, families sorted by name, label sets sorted within
// a family.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.byName))
	for _, f := range r.byName {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, f := range fams {
		writeFamily(&b, f)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// ServeHTTP makes a Registry the GET /metrics handler.
func (r *Registry) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := r.WritePrometheus(w); err != nil {
		// Headers are gone; nothing to do but drop the connection state.
		return
	}
}

func writeFamily(b *strings.Builder, f *family) {
	typ := "counter"
	switch f.kind {
	case gaugeKind:
		typ = "gauge"
	case histogramKind, histogramVecKind:
		typ = "histogram"
	}
	fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, typ)
	switch f.kind {
	case counterKind:
		fmt.Fprintf(b, "%s %s\n", f.name, formatValue(f.counter.Value()))
	case gaugeKind:
		fmt.Fprintf(b, "%s %s\n", f.name, formatValue(f.gauge()))
	case counterVecKind:
		for _, child := range f.vec.sortedChildren() {
			fmt.Fprintf(b, "%s%s %s\n", f.name,
				labelString(f.vec.labelNames, child.labelValues, "", ""),
				formatValue(child.metric.Value()))
		}
	case histogramKind:
		writeHistogram(b, f.name, nil, nil, f.hist.Snapshot())
	case histogramVecKind:
		for _, child := range f.histVec.sortedChildren() {
			writeHistogram(b, f.name, f.histVec.labelNames, child.labelValues, child.metric.Snapshot())
		}
	}
}

func writeHistogram(b *strings.Builder, name string, labelNames, labelValues []string, s HistogramSnapshot) {
	for i, bound := range s.Bounds {
		fmt.Fprintf(b, "%s_bucket%s %d\n", name,
			labelString(labelNames, labelValues, "le", formatValue(bound)), s.Cumulative[i])
	}
	fmt.Fprintf(b, "%s_bucket%s %d\n", name,
		labelString(labelNames, labelValues, "le", "+Inf"), s.Count)
	fmt.Fprintf(b, "%s_sum%s %s\n", name, labelString(labelNames, labelValues, "", ""), formatValue(s.Sum))
	fmt.Fprintf(b, "%s_count%s %d\n", name, labelString(labelNames, labelValues, "", ""), s.Count)
}

// labelString renders {a="x",b="y"} with an optional extra trailing
// label (the histogram `le`), or "" when there are no labels at all.
func labelString(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, n, escapeLabelValue(values[i]))
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, extraName, escapeLabelValue(extraValue))
	}
	b.WriteByte('}')
	return b.String()
}

func formatValue(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func escapeLabelValue(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

func escapeHelp(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || s == "le" {
		return false // le is reserved for histogram buckets
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
