package obs

import (
	"bufio"
	"fmt"
	"math"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// --- a small strict parser for the Prometheus text format, used by the
// roundtrip tests here and (via the exposition contract) mirrored by
// the server-level scrape tests. ---

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
	sampleRe     = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^}]*)\})? (\S+)$`)
	labelPairRe  = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$`)
)

type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

// parseProm validates the overall shape of a text exposition — HELP
// then TYPE then samples per family, legal names, parseable values —
// and returns every sample. It fails the test on any malformed line.
func parseProm(t *testing.T, text string) (samples []promSample, types map[string]string) {
	t.Helper()
	types = make(map[string]string)
	helped := map[string]bool{}
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			parts := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if !metricNameRe.MatchString(parts[0]) {
				t.Fatalf("bad HELP name in %q", line)
			}
			helped[parts[0]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(parts) != 2 || !metricNameRe.MatchString(parts[0]) {
				t.Fatalf("bad TYPE line %q", line)
			}
			switch parts[1] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("unknown type %q in %q", parts[1], line)
			}
			if !helped[parts[0]] {
				t.Fatalf("TYPE before HELP for %s", parts[0])
			}
			if _, dup := types[parts[0]]; dup {
				t.Fatalf("duplicate TYPE for %s", parts[0])
			}
			types[parts[0]] = parts[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unexpected comment %q", line)
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("malformed sample line %q", line)
		}
		name := m[1]
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if _, ok := types[name]; !ok {
			if _, ok := types[base]; !ok {
				t.Fatalf("sample %q before its TYPE", line)
			}
		}
		labels := map[string]string{}
		if m[3] != "" {
			for _, pair := range splitLabelPairs(t, m[3]) {
				lm := labelPairRe.FindStringSubmatch(pair)
				if lm == nil {
					t.Fatalf("malformed label pair %q in %q", pair, line)
				}
				if !labelNameRe.MatchString(lm[1]) {
					t.Fatalf("bad label name %q in %q", lm[1], line)
				}
				if _, dup := labels[lm[1]]; dup {
					t.Fatalf("duplicate label %q in %q", lm[1], line)
				}
				labels[lm[1]] = lm[2]
			}
		}
		var value float64
		if m[4] == "+Inf" {
			value = math.Inf(1)
		} else {
			v, err := strconv.ParseFloat(m[4], 64)
			if err != nil {
				t.Fatalf("bad value in %q: %v", line, err)
			}
			value = v
		}
		samples = append(samples, promSample{name: name, labels: labels, value: value})
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return samples, types
}

func splitLabelPairs(t *testing.T, s string) []string {
	t.Helper()
	var out []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, s[start:])
	return out
}

func findSample(samples []promSample, name string, labels map[string]string) (float64, bool) {
	for _, s := range samples {
		if s.name != name || len(s.labels) != len(labels) {
			continue
		}
		match := true
		for k, v := range labels {
			if s.labels[k] != v {
				match = false
				break
			}
		}
		if match {
			return s.value, true
		}
	}
	return 0, false
}

func TestExpositionRoundtrip(t *testing.T) {
	reg := NewRegistry()
	total := reg.Counter("demo_total", "a scalar counter")
	vec := reg.CounterVec("demo_requests_total", "requests by endpoint and code", "endpoint", "code")
	reg.GaugeFunc("demo_depth", "a gauge", func() float64 { return 7 })
	hist := reg.HistogramVec("demo_seconds", "latency", []float64{0.01, 0.1, 1}, "endpoint")

	total.Add(3)
	vec.With("select", "200").Inc()
	vec.With("select", "200").Inc()
	vec.With("rank", "400").Inc()
	hist.With("select").Observe(0.05)
	hist.With("select").Observe(0.0001)
	hist.With("select").Observe(5)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	samples, types := parseProm(t, b.String())

	if types["demo_total"] != "counter" || types["demo_requests_total"] != "counter" ||
		types["demo_depth"] != "gauge" || types["demo_seconds"] != "histogram" {
		t.Fatalf("wrong types: %v", types)
	}
	if v, ok := findSample(samples, "demo_total", nil); !ok || v != 3 {
		t.Fatalf("demo_total = %v, %v", v, ok)
	}
	if v, ok := findSample(samples, "demo_requests_total", map[string]string{"endpoint": "select", "code": "200"}); !ok || v != 2 {
		t.Fatalf("select/200 = %v, %v", v, ok)
	}
	if v, ok := findSample(samples, "demo_depth", nil); !ok || v != 7 {
		t.Fatalf("demo_depth = %v, %v", v, ok)
	}
	if v, ok := findSample(samples, "demo_seconds_count", map[string]string{"endpoint": "select"}); !ok || v != 3 {
		t.Fatalf("histogram count = %v, %v", v, ok)
	}
	// Cumulative buckets must be non-decreasing and end at the count,
	// with the +Inf bucket present.
	var prev float64 = -1
	infSeen := false
	for _, le := range []string{"0.01", "0.1", "1", "+Inf"} {
		v, ok := findSample(samples, "demo_seconds_bucket", map[string]string{"endpoint": "select", "le": le})
		if !ok {
			t.Fatalf("missing bucket le=%s", le)
		}
		if v < prev {
			t.Fatalf("bucket le=%s decreased: %v < %v", le, v, prev)
		}
		prev = v
		if le == "+Inf" {
			infSeen = true
			if v != 3 {
				t.Fatalf("+Inf bucket = %v, want 3", v)
			}
		}
	}
	if !infSeen {
		t.Fatal("no +Inf bucket")
	}
	if v, ok := findSample(samples, "demo_seconds_sum", map[string]string{"endpoint": "select"}); !ok || math.Abs(v-5.0501) > 1e-9 {
		t.Fatalf("histogram sum = %v, %v", v, ok)
	}
}

func TestCounterSemantics(t *testing.T) {
	var c *Counter
	c.Inc() // nil-safe
	c.Add(3)
	if c.Value() != 0 {
		t.Fatal("nil counter must read 0")
	}
	c = &Counter{}
	c.Inc()
	c.Add(2.5)
	c.Add(-10) // ignored: counters are monotonic
	c.Add(math.NaN())
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %v, want 3.5", got)
	}
}

func TestVecLabelArity(t *testing.T) {
	reg := NewRegistry()
	vec := reg.CounterVec("v_total", "h", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("wrong arity must panic")
		}
	}()
	vec.With("only-one")
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("dup_total", "h")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate name must panic")
		}
	}()
	reg.Counter("dup_total", "h")
}

func TestLabelValueEscaping(t *testing.T) {
	reg := NewRegistry()
	vec := reg.CounterVec("esc_total", "h", "path")
	vec.With("a\"b\\c\nd").Inc()
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `esc_total{path="a\"b\\c\nd"} 1`
	if !strings.Contains(b.String(), want) {
		t.Fatalf("escaped sample %q not found in:\n%s", want, b.String())
	}
	// And the strict parser must still accept it.
	parseProm(t, b.String())
}

func TestRegistryServeHTTP(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("served_total", "h").Inc()
	rec := httptest.NewRecorder()
	reg.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") || !strings.Contains(ct, "0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "served_total 1") {
		t.Fatalf("body:\n%s", rec.Body.String())
	}
}

// TestConcurrentScrape hammers counters and histograms from many
// goroutines while scraping: the race detector (CI race job) verifies
// the synchronization, and each family must stay internally consistent.
func TestConcurrentScrape(t *testing.T) {
	reg := NewRegistry()
	vec := reg.CounterVec("cc_total", "h", "w")
	hist := reg.Histogram("cc_seconds", "h", []float64{0.5})
	const workers, perWorker = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := vec.With(fmt.Sprint(w % 2))
			for i := 0; i < perWorker; i++ {
				c.Inc()
				hist.Observe(float64(i%2) * 0.9)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var b strings.Builder
			if err := reg.WritePrometheus(&b); err != nil {
				t.Error(err)
				return
			}
			samples, _ := parseProm(t, b.String())
			if v, ok := findSample(samples, "cc_seconds_count", nil); ok {
				if inf, ok2 := findSample(samples, "cc_seconds_bucket", map[string]string{"le": "+Inf"}); !ok2 || inf != v {
					t.Errorf("inconsistent histogram snapshot: count %v, +Inf %v", v, inf)
					return
				}
			}
		}
	}()
	wg.Wait()
	<-done
	if got := vec.Total(); got != workers*perWorker {
		t.Fatalf("total = %v, want %d", got, workers*perWorker)
	}
	if s := hist.Snapshot(); s.Count != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", s.Count, workers*perWorker)
	}
}
