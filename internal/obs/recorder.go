package obs

import (
	"log/slog"
	"sort"
	"sync"
	"time"
)

// Recorder is a write-only, request-scoped sink for solve-stage spans
// and engine counters. The server attaches one per request via
// WithRecorder; engine layers tick it through FromContext. It is
// strictly off-path: nothing on the computation side ever reads it, so
// attaching a Recorder cannot change any figure, rank, or cached byte
// (pinned by TestRecorderOffPath at the root package).
//
// All methods are safe on a nil *Recorder (they no-op) and safe for
// concurrent use — parallel workers tick the same request's recorder.
type Recorder struct {
	clock Clock

	mu       sync.Mutex
	stages   map[string]*stageAgg
	counters map[string]int64
}

type stageAgg struct {
	count int64
	total time.Duration
}

// NewRecorder returns a Recorder timing spans with clock (nil means
// SystemClock). Only boundary code (the server, tests) constructs
// Recorders; engine packages receive them already built.
func NewRecorder(clock Clock) *Recorder {
	if clock == nil {
		clock = SystemClock
	}
	return &Recorder{
		clock:    clock,
		stages:   make(map[string]*stageAgg),
		counters: make(map[string]int64),
	}
}

// Span starts timing the named stage and returns the function that ends
// it. Re-entering a stage accumulates: total duration and invocation
// count are both kept.
//
//	defer rec.Span("singleton_benefits")()
func (r *Recorder) Span(stage string) func() {
	if r == nil {
		return func() {}
	}
	start := r.clock.Now()
	return func() {
		d := r.clock.Now().Sub(start)
		if d < 0 {
			d = 0
		}
		r.mu.Lock()
		agg := r.stages[stage]
		if agg == nil {
			agg = &stageAgg{}
			r.stages[stage] = agg
		}
		agg.count++
		agg.total += d
		r.mu.Unlock()
	}
}

// Add accumulates n into the named counter.
func (r *Recorder) Add(name string, n int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counters[name] += n
	r.mu.Unlock()
}

// A Stage is one aggregated span in a Trace.
type Stage struct {
	Name    string  `json:"name"`
	Count   int64   `json:"count"`
	TotalMS float64 `json:"total_ms"`
}

// A CounterValue is one engine counter in a Trace.
type CounterValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// A Trace is a consistent point-in-time summary of a Recorder, sorted
// by name so its rendering is deterministic. It is what ?trace=1
// responses embed and what access logs flatten into attrs.
type Trace struct {
	Stages   []Stage        `json:"stages"`
	Counters []CounterValue `json:"counters,omitempty"`
}

// Snapshot returns the Trace accumulated so far. Safe on nil (empty
// trace) and concurrent with further ticks.
func (r *Recorder) Snapshot() Trace {
	if r == nil {
		return Trace{}
	}
	r.mu.Lock()
	tr := Trace{
		Stages:   make([]Stage, 0, len(r.stages)),
		Counters: make([]CounterValue, 0, len(r.counters)),
	}
	for name, agg := range r.stages {
		tr.Stages = append(tr.Stages, Stage{
			Name:    name,
			Count:   agg.count,
			TotalMS: float64(agg.total.Microseconds()) / 1000,
		})
	}
	for name, v := range r.counters {
		tr.Counters = append(tr.Counters, CounterValue{Name: name, Value: v})
	}
	r.mu.Unlock()
	sort.Slice(tr.Stages, func(i, j int) bool { return tr.Stages[i].Name < tr.Stages[j].Name })
	sort.Slice(tr.Counters, func(i, j int) bool { return tr.Counters[i].Name < tr.Counters[j].Name })
	return tr
}

// StageAttrs returns the trace's stages as a slog group attribute
// (stage name → total milliseconds, sorted), for structured access
// logs.
func (t Trace) StageAttrs() slog.Attr {
	args := make([]any, 0, len(t.Stages))
	for _, s := range t.Stages {
		args = append(args, slog.Float64(s.Name, s.TotalMS))
	}
	return slog.Group("stages", args...)
}

// CounterAttrs returns the trace's counters as a slog group attribute.
func (t Trace) CounterAttrs() slog.Attr {
	args := make([]any, 0, len(t.Counters))
	for _, c := range t.Counters {
		args = append(args, slog.Int64(c.Name, c.Value))
	}
	return slog.Group("ops", args...)
}
