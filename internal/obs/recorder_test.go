package obs

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Span("solve")()
	r.Add("items", 5)
	tr := r.Snapshot()
	if len(tr.Stages) != 0 || len(tr.Counters) != 0 {
		t.Fatalf("nil recorder snapshot must be empty, got %+v", tr)
	}
}

func TestRecorderSpansAndCounters(t *testing.T) {
	clock := NewFakeClock(time.Unix(1000, 0))
	r := NewRecorder(clock)

	end := r.Span("solve")
	clock.Advance(250 * time.Millisecond)
	end()
	end = r.Span("solve")
	clock.Advance(50 * time.Millisecond)
	end()
	r.Span("compile")() // zero-duration span still counts
	r.Add("conv_ops", 7)
	r.Add("conv_ops", 3)

	tr := r.Snapshot()
	if len(tr.Stages) != 2 {
		t.Fatalf("stages = %+v", tr.Stages)
	}
	// Sorted by name: compile before solve.
	if tr.Stages[0].Name != "compile" || tr.Stages[0].Count != 1 || tr.Stages[0].TotalMS != 0 {
		t.Fatalf("compile stage = %+v", tr.Stages[0])
	}
	if tr.Stages[1].Name != "solve" || tr.Stages[1].Count != 2 || tr.Stages[1].TotalMS != 300 {
		t.Fatalf("solve stage = %+v", tr.Stages[1])
	}
	if len(tr.Counters) != 1 || tr.Counters[0] != (CounterValue{Name: "conv_ops", Value: 10}) {
		t.Fatalf("counters = %+v", tr.Counters)
	}
}

func TestRecorderContextPlumbing(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Fatal("empty context must yield nil recorder")
	}
	r := NewRecorder(nil)
	ctx := WithRecorder(context.Background(), r)
	if FromContext(ctx) != r {
		t.Fatal("recorder did not round-trip through the context")
	}
	ctx = WithRequestID(ctx, "abc-123")
	if RequestID(ctx) != "abc-123" {
		t.Fatal("request id did not round-trip")
	}
	if RequestID(context.Background()) != "" {
		t.Fatal("missing request id must be empty")
	}
}

func TestNewRequestID(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if !ValidRequestID(a) || !ValidRequestID(b) {
		t.Fatalf("generated ids invalid: %q %q", a, b)
	}
	if a == b {
		t.Fatalf("two generated ids collided: %q", a)
	}
	for _, bad := range []string{"", "has space", "semi;colon", string(make([]byte, 65))} {
		if ValidRequestID(bad) {
			t.Fatalf("id %q should be invalid", bad)
		}
	}
	if !ValidRequestID("Trace-Id_01.x") {
		t.Fatal("reasonable propagated id rejected")
	}
}

// TestRecorderConcurrentWrites exercises concurrent Span/Add/Snapshot
// from many goroutines — the shape of a parallel Select ticking one
// request recorder — under the race detector (CI race job).
func TestRecorderConcurrentWrites(t *testing.T) {
	r := NewRecorder(nil)
	const workers, iters = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				end := r.Span("ev")
				r.Add("items", 1)
				end()
			}
		}()
	}
	for i := 0; i < 50; i++ {
		r.Snapshot()
	}
	wg.Wait()
	tr := r.Snapshot()
	if tr.Counters[0].Value != workers*iters {
		t.Fatalf("items = %d, want %d", tr.Counters[0].Value, workers*iters)
	}
	if tr.Stages[0].Count != workers*iters {
		t.Fatalf("spans = %d, want %d", tr.Stages[0].Count, workers*iters)
	}
}
