// Package obs is cleansel's stdlib-only observability subsystem:
// process metrics, per-request solve-stage tracing, and the plumbing
// that carries both through a request without ever influencing a
// computation.
//
// Three pieces:
//
//   - The metrics core (Registry, Counter, CounterVec, Histogram,
//     HistogramVec, gauge functions) — monotonic counters, point-in-time
//     gauges, and fixed-bucket latency histograms with snapshot
//     semantics, exposed in the Prometheus text exposition format
//     (Registry.WritePrometheus / Registry as an http.Handler).
//   - The Recorder — a write-only, request-scoped sink for solve-stage
//     spans and engine counters, carried via context.Context
//     (WithRecorder / FromContext). Engine layers tick it; nothing ever
//     reads it on the computation path, so every figure and cached
//     response stays byte-identical whether a recorder is attached or
//     not. All Recorder methods are nil-receiver safe: engine code
//     ticks unconditionally and pays a few nanoseconds when no one is
//     listening.
//   - The Clock — the single sanctioned wall-time source. Deterministic
//     engine packages may depend on *Recorder (it is injected, opaque,
//     and off-path) but must not hold a Clock or mint Recorders
//     themselves; the clock is injected once at the server boundary.
//     cleansel-lint's walltime analyzer enforces both directions.
//
// Request IDs (WithRequestID / RequestID / NewRequestID) ride the same
// context so access logs, error envelopes, and trace output all carry
// the identifier that correlates them.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
)

type ctxKey int

const (
	recorderKey ctxKey = iota
	requestIDKey
)

// WithRecorder returns ctx carrying rec. Engine layers retrieve it with
// FromContext and tick spans and counters into it.
func WithRecorder(ctx context.Context, rec *Recorder) context.Context {
	return context.WithValue(ctx, recorderKey, rec)
}

// FromContext returns the Recorder carried by ctx, or nil. A nil
// Recorder is safe to tick — every method no-ops — so callers never
// need to branch.
func FromContext(ctx context.Context) *Recorder {
	rec, _ := ctx.Value(recorderKey).(*Recorder)
	return rec
}

// WithRequestID returns ctx carrying the request identifier.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey, id)
}

// RequestID returns the request identifier carried by ctx, or "".
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// NewRequestID returns a fresh 16-hex-character request identifier.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken platform; a constant ID keeps
		// serving (correlation degrades, requests do not).
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// ValidRequestID reports whether id is acceptable as a propagated
// request identifier: 1–64 characters from [A-Za-z0-9._-]. Anything
// else is replaced rather than echoed into logs and headers.
func ValidRequestID(id string) bool {
	if len(id) == 0 || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}
