//lint:allow walltime — obs IS the sanctioned clock: the one place wall time enters the system, injected at the server boundary and never held by engine packages

package obs

import (
	"sync"
	"time"
)

// Clock is the wall-time source behind span timings and latency
// histograms. It exists so that exactly one implementation reads the
// real clock and everything else receives it by injection: the server
// boundary constructs Recorders from a Clock, tests substitute a fake,
// and deterministic engine packages never see the interface at all
// (cleansel-lint's walltime analyzer rejects engine references to
// Clock, SystemClock, and NewRecorder).
type Clock interface {
	// Now returns the current time. Implementations must be safe for
	// concurrent use.
	Now() time.Time
}

// SystemClock reads the real wall clock via time.Now.
var SystemClock Clock = systemClock{}

type systemClock struct{}

func (systemClock) Now() time.Time { return time.Now() }

// FakeClock is a manually advanced Clock for tests: deterministic span
// durations without sleeping.
type FakeClock struct {
	mu sync.Mutex
	t  time.Time
}

// NewFakeClock returns a FakeClock starting at start.
func NewFakeClock(start time.Time) *FakeClock { return &FakeClock{t: start} }

// Now returns the fake's current time.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// Advance moves the fake clock forward by d.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}
