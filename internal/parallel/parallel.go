// Package parallel is the library's deterministic parallel-execution
// substrate: a bounded worker pool that shards index ranges across
// goroutines with cooperative context cancellation.
//
// Every fan-out in this repository — the per-object enumeration of
// ev.GroupEngine, the budget sweeps of internal/expt, the server's
// request solving — funnels through For/Map here, so one invariant is
// enforced in one place: the observable output of a parallel loop is
// bit-identical for every worker count, including 1. Two rules make
// that hold:
//
//  1. Work item i may depend only on i (plus read-only shared state and
//     a per-worker scratch area that it fully overwrites before
//     reading). Which worker runs which item is scheduling-dependent
//     and must not matter.
//  2. Randomized items never share a generator. Streams derives one
//     independent rng.RNG per item up front (via rng.Split, which is
//     deterministic in the parent seed), so sampling is reproducible
//     no matter which worker draws first.
//
// Results are written into index-addressed slots and reduced in index
// order by the caller, so floating-point accumulation order is fixed.
// The worker count comes from GOMAXPROCS, overridable with the
// CLEANSEL_WORKERS environment variable; CLEANSEL_WORKERS=1 reproduces
// the single-threaded execution exactly. Extra workers are drawn from
// one process-wide budget, so nested fan-outs (sweep → solver →
// engine) degrade to inline execution instead of multiplying
// goroutines level by level.
package parallel

import (
	"context"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"github.com/factcheck/cleansel/internal/obs"
	"github.com/factcheck/cleansel/internal/rng"
)

// EnvWorkers is the environment variable that overrides the worker
// count (0 or unset means GOMAXPROCS; values are clamped to ≥ 1).
const EnvWorkers = "CLEANSEL_WORKERS"

// Workers returns the worker count used by For and Map: the
// CLEANSEL_WORKERS environment variable when set to a positive
// integer, otherwise GOMAXPROCS. It is consulted on every call, so
// tests can flip the variable between runs.
func Workers() int {
	if s := os.Getenv(EnvWorkers); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return runtime.GOMAXPROCS(0)
}

// active counts extra worker goroutines currently spawned by For
// across the whole process. Nested fan-outs (a budget sweep whose
// points run solves whose engines fan out again) claim from one shared
// budget of Workers()−1 extras, so the total stays ~Workers() runnable
// goroutines instead of multiplying at every level; inner loops that
// find the budget exhausted simply run inline on their caller.
var active atomic.Int64

// claimExtra reserves up to want extra worker slots from the global
// budget; the calling goroutine itself needs no slot.
func claimExtra(want int) int {
	limit := int64(Workers()) - 1
	claimed := 0
	for claimed < want {
		cur := active.Load()
		if cur >= limit {
			break
		}
		if active.CompareAndSwap(cur, cur+1) {
			claimed++
		}
	}
	return claimed
}

// For runs fn(worker, i) for every i in [0, n), sharding the items
// across up to Workers() goroutines (the caller participates as
// worker 0). worker identifies the executing worker so callers can
// reuse per-worker scratch buffers; item i must not otherwise depend
// on the worker it lands on.
//
// Items are handed out dynamically (an atomic counter), so the load
// balances even when item costs are skewed, and extra workers come
// from a process-wide budget so nested For calls do not multiply
// goroutines. Cancellation is checked between items: when ctx is
// done, remaining items are skipped and For returns the context's
// cause. When one or more fn calls fail, the error of the smallest
// item index is returned — deterministic regardless of scheduling.
func For(ctx context.Context, n int, fn func(worker, i int) error) error {
	if n <= 0 {
		if ctx.Err() != nil {
			return context.Cause(ctx)
		}
		return nil
	}
	// Write-only trace ticks; the recorder never influences sharding,
	// scheduling, or results.
	if rec := obs.FromContext(ctx); rec != nil {
		rec.Add("parallel_fanouts", 1)
		rec.Add("parallel_items", int64(n))
	}
	workers := Workers()
	if workers > n {
		workers = n
	}
	extra := 0
	if workers > 1 {
		extra = claimExtra(workers - 1)
	}
	if extra == 0 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return context.Cause(ctx)
			}
			if err := fn(0, i); err != nil {
				return err
			}
		}
		if ctx.Err() != nil {
			return context.Cause(ctx)
		}
		return nil
	}
	defer active.Add(-int64(extra))

	var (
		next    atomic.Int64
		stop    atomic.Bool
		mu      sync.Mutex
		firstI  = n
		firstEr error
		wg      sync.WaitGroup
	)
	fail := func(i int, err error) {
		mu.Lock()
		if i < firstI {
			firstI, firstEr = i, err
		}
		mu.Unlock()
		stop.Store(true)
	}
	run := func(worker int) {
		for !stop.Load() {
			if ctx.Err() != nil {
				stop.Store(true)
				return
			}
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			if err := fn(worker, i); err != nil {
				fail(i, err)
				return
			}
		}
	}
	for w := 1; w <= extra; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			run(worker)
		}(w)
	}
	run(0) // the caller works too — progress never depends on the budget
	wg.Wait()
	if firstEr != nil {
		return firstEr
	}
	if err := ctx.Err(); err != nil {
		return context.Cause(ctx)
	}
	return nil
}

// Map runs fn over [0, n) like For and collects the results in item
// order. On error (or cancellation) the partial results are discarded
// and only the error is returned.
func Map[T any](ctx context.Context, n int, fn func(worker, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := For(ctx, n, func(worker, i int) error {
		v, err := fn(worker, i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Streams derives n independent generators from base via rng.Split.
// Stream i depends only on base's starting state and i — never on the
// worker count or scheduling — so per-item sampling through Streams is
// the mechanism that keeps randomized parallel loops bit-identical
// across worker counts. base is advanced by exactly n draws.
func Streams(base *rng.RNG, n int) []*rng.RNG {
	out := make([]*rng.RNG, n)
	for i := range out {
		out[i] = base.Split()
	}
	return out
}
