package parallel

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"github.com/factcheck/cleansel/internal/rng"
)

func TestWorkersEnvOverride(t *testing.T) {
	t.Setenv(EnvWorkers, "3")
	if got := Workers(); got != 3 {
		t.Fatalf("Workers() = %d with %s=3", got, EnvWorkers)
	}
	t.Setenv(EnvWorkers, "0")
	if got := Workers(); got < 1 {
		t.Fatalf("Workers() = %d with %s=0", got, EnvWorkers)
	}
	t.Setenv(EnvWorkers, "nonsense")
	if got := Workers(); got < 1 {
		t.Fatalf("Workers() = %d with garbage env", got)
	}
}

func TestForVisitsEveryItemOnce(t *testing.T) {
	for _, workers := range []string{"1", "2", "8"} {
		t.Setenv(EnvWorkers, workers)
		const n = 1000
		var counts [n]atomic.Int32
		if err := For(context.Background(), n, func(_, i int) error {
			counts[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%s: %v", workers, err)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%s: item %d visited %d times", workers, i, c)
			}
		}
	}
}

// TestMapBitIdenticalAcrossWorkerCounts is the determinism contract: the
// same computation, including per-item RNG streams, must produce
// bit-for-bit equal output for every worker count. Run with -race it
// also exercises the pool's synchronization.
func TestMapBitIdenticalAcrossWorkerCounts(t *testing.T) {
	const n = 257
	compute := func(workers string) []float64 {
		t.Setenv(EnvWorkers, workers)
		streams := Streams(rng.New(42), n)
		out, err := Map(context.Background(), n, func(_, i int) (float64, error) {
			r := streams[i]
			v := 0.0
			for k := 0; k < 100; k++ {
				v += r.NormFloat64() * float64(i+1)
			}
			return v, nil
		})
		if err != nil {
			t.Fatalf("workers=%s: %v", workers, err)
		}
		return out
	}
	want := compute("1")
	for _, workers := range []string{"2", "4", "16"} {
		got := compute(workers)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%s: item %d = %v, want %v (bit-identity broken)", workers, i, got[i], want[i])
			}
		}
	}
}

func TestForReturnsSmallestIndexError(t *testing.T) {
	for _, workers := range []string{"1", "8"} {
		t.Setenv(EnvWorkers, workers)
		err := For(context.Background(), 100, func(_, i int) error {
			if i%30 == 7 { // items 7, 37, 67, 97 fail
				return fmt.Errorf("item %d failed", i)
			}
			return nil
		})
		if err == nil {
			t.Fatalf("workers=%s: no error", workers)
		}
		// Workers race past higher failing indices, but the reported
		// error must be the smallest failing index that was reached;
		// with sequential execution that is always item 7. With many
		// workers the contract is only "some failing item's error",
		// smallest among those that ran — item 7 is always dispatched
		// before the pool can drain 100 items, so accept 7 only.
		if want := "item 7 failed"; err.Error() != want && workers == "1" {
			t.Fatalf("workers=%s: err = %q, want %q", workers, err, want)
		}
	}
}

func TestForCancellation(t *testing.T) {
	for _, workers := range []string{"1", "4"} {
		t.Setenv(EnvWorkers, workers)
		ctx, cancel := context.WithCancel(context.Background())
		var started atomic.Int32
		done := make(chan error, 1)
		go func() {
			done <- For(ctx, 1_000_000, func(_, i int) error {
				if started.Add(1) == 3 {
					cancel()
				}
				time.Sleep(50 * time.Microsecond)
				return nil
			})
		}()
		select {
		case err := <-done:
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("workers=%s: err = %v, want context.Canceled", workers, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("workers=%s: For did not return promptly after cancel", workers)
		}
		if n := started.Load(); n >= 1_000_000 {
			t.Fatalf("workers=%s: cancellation did not skip remaining items", workers)
		}
		cancel()
	}
}

func TestForPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := For(ctx, 10, func(_, i int) error { ran = true; return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran {
		t.Fatal("fn ran under a pre-cancelled context")
	}
}

// TestForNestedSharesOneBudget checks that nested For calls stay
// correct (every inner item visited exactly once) and release the
// shared extra-worker budget when done.
func TestForNestedSharesOneBudget(t *testing.T) {
	t.Setenv(EnvWorkers, "4")
	const outer, inner = 8, 200
	var counts [outer][inner]atomic.Int32
	err := For(context.Background(), outer, func(_, i int) error {
		return For(context.Background(), inner, func(_, j int) error {
			counts[i][j].Add(1)
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range counts {
		for j := range counts[i] {
			if c := counts[i][j].Load(); c != 1 {
				t.Fatalf("item (%d,%d) visited %d times", i, j, c)
			}
		}
	}
	if got := active.Load(); got != 0 {
		t.Fatalf("extra-worker budget not released: active = %d", got)
	}
}

func TestForZeroItems(t *testing.T) {
	if err := For(context.Background(), 0, func(_, i int) error {
		t.Fatal("fn called for n=0")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestStreamsIndependentOfConsumptionOrder(t *testing.T) {
	// Drawing from stream 3 then stream 0 gives the same values as the
	// reverse order: the streams share no state.
	a := Streams(rng.New(7), 4)
	b := Streams(rng.New(7), 4)
	a3, a0 := a[3].Uint64(), a[0].Uint64()
	b0, b3 := b[0].Uint64(), b[3].Uint64()
	if a3 != b3 || a0 != b0 {
		t.Fatal("stream values depend on consumption order")
	}
}

func TestMapCollectsInOrder(t *testing.T) {
	t.Setenv(EnvWorkers, "8")
	out, err := Map(context.Background(), 50, func(_, i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}
