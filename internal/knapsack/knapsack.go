// Package knapsack implements the 0/1 knapsack solvers that the modular
// MinVar/MaxPr reductions of §3.2 need:
//
//   - MaxDP — exact pseudo-polynomial maximization (Lemmas 3.2/3.3's
//     "Optimum" baseline): max Σ v_i s.t. Σ c_i ≤ C.
//   - MinDP — exact pseudo-polynomial minimum-knapsack (covering) solver:
//     min Σ v_i s.t. Σ c_i ≥ C̄; the inner step of the submodular MinVar
//     algorithm (§3.3).
//   - FPTAS — value-scaled (1−ε)-approximate maximization (Lemma 3.2).
//   - Greedy — density greedy with the best-single-item check, the
//     2-approximation used inside Algorithm 1.
//
// Costs are arbitrary non-negative floats; DP solvers discretize them at a
// configurable precision (costs in all paper workloads are integers, so
// precision 1 is exact there).
package knapsack

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Result is a solved knapsack instance.
type Result struct {
	Indices []int   // chosen item indices, ascending
	Value   float64 // Σ value over chosen
	Cost    float64 // Σ cost over chosen
}

func validate(values, costs []float64) error {
	if len(values) != len(costs) {
		return fmt.Errorf("knapsack: %d values vs %d costs", len(values), len(costs))
	}
	for i, v := range values {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return fmt.Errorf("knapsack: invalid value %v at %d", v, i)
		}
		if c := costs[i]; math.IsNaN(c) || math.IsInf(c, 0) || c < 0 {
			return fmt.Errorf("knapsack: invalid cost %v at %d", c, i)
		}
	}
	return nil
}

// scale converts float costs to integers at the given precision
// (ceil for item costs — never understate what an item consumes — and
// floor for the budget — never allow more than the real budget).
func scale(costs []float64, precision float64) []int {
	out := make([]int, len(costs))
	for i, c := range costs {
		out[i] = int(math.Ceil(c/precision - 1e-9))
	}
	return out
}

func sum(xs []float64, idx []int) float64 {
	var s float64
	for _, i := range idx {
		s += xs[i]
	}
	return s
}

// MaxDP solves max Σ v_i s.t. Σ c_i ≤ budget exactly (after cost
// discretization at precision). Time O(n·C), memory O(n·C) bits for
// reconstruction.
func MaxDP(values, costs []float64, budget, precision float64) (Result, error) {
	if err := validate(values, costs); err != nil {
		return Result{}, err
	}
	if precision <= 0 {
		return Result{}, errors.New("knapsack: precision must be positive")
	}
	n := len(values)
	ic := scale(costs, precision)
	C := int(math.Floor(budget/precision + 1e-9))
	if C < 0 {
		C = 0
	}
	// dp[c] = best value with capacity c; keep[i][c] = item i taken at c.
	dp := make([]float64, C+1)
	keep := make([][]bool, n)
	for i := 0; i < n; i++ {
		keep[i] = make([]bool, C+1)
		ci, vi := ic[i], values[i]
		if ci > C {
			continue
		}
		for c := C; c >= ci; c-- {
			if cand := dp[c-ci] + vi; cand > dp[c] {
				dp[c] = cand
				keep[i][c] = true
			}
		}
	}
	// Reconstruct.
	res := Result{Value: dp[C]}
	c := C
	for i := n - 1; i >= 0; i-- {
		if keep[i][c] {
			res.Indices = append(res.Indices, i)
			c -= ic[i]
		}
	}
	sort.Ints(res.Indices)
	res.Cost = sum(costs, res.Indices)
	return res, nil
}

// MinDP solves the covering knapsack min Σ v_i s.t. Σ c_i ≥ lower exactly
// (after cost discretization: floor for item coverage — never overstate
// what an item covers — and ceil for the requirement).
func MinDP(values, costs []float64, lower, precision float64) (Result, error) {
	if err := validate(values, costs); err != nil {
		return Result{}, err
	}
	if precision <= 0 {
		return Result{}, errors.New("knapsack: precision must be positive")
	}
	n := len(values)
	ic := make([]int, n)
	for i, c := range costs {
		ic[i] = int(math.Floor(c/precision + 1e-9))
	}
	L := int(math.Ceil(lower/precision - 1e-9))
	if L <= 0 {
		return Result{}, nil // empty set covers a non-positive requirement
	}
	const inf = math.MaxFloat64 / 4
	// dp[i][j] = min value over items 0..i−1 with covered cost ≥ j.
	// Taking item i from requirement j leaves requirement max(0, j−c_i).
	dp := make([][]float64, n+1)
	dp[0] = make([]float64, L+1)
	for j := 1; j <= L; j++ {
		dp[0][j] = inf
	}
	for i := 0; i < n; i++ {
		dp[i+1] = make([]float64, L+1)
		ci, vi := ic[i], values[i]
		for j := 0; j <= L; j++ {
			best := dp[i][j] // skip item i
			prev := j - ci
			if prev < 0 {
				prev = 0
			}
			if dp[i][prev] < inf {
				if cand := dp[i][prev] + vi; cand < best {
					best = cand
				}
			}
			dp[i+1][j] = best
		}
	}
	if dp[n][L] >= inf {
		return Result{}, errors.New("knapsack: covering requirement infeasible")
	}
	res := Result{Value: dp[n][L]}
	j := L
	//lint:allow floateq — DP backtrack asks whether item i changed the cell; when it did not, dp[i][j] was copied from dp[i-1][j], so the equality is an identity on the same stored float
	for i := n; i >= 1; i-- {
		if dp[i][j] == dp[i-1][j] {
			continue
		}
		res.Indices = append(res.Indices, i-1)
		j -= ic[i-1]
		if j < 0 {
			j = 0
		}
	}
	sort.Ints(res.Indices)
	res.Cost = sum(costs, res.Indices)
	return res, nil
}

// Greedy is the density-greedy 2-approximation for max-knapsack used by
// Algorithm 1: take items in decreasing v/c order while they fit, then
// compare against the best single affordable item ([19], §3.1).
func Greedy(values, costs []float64, budget float64) (Result, error) {
	if err := validate(values, costs); err != nil {
		return Result{}, err
	}
	n := len(values)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		da := density(values[ia], costs[ia])
		db := density(values[ib], costs[ib])
		if da != db {
			return da > db
		}
		return ia < ib
	})
	var picked []int
	var cost, value float64
	for _, i := range order {
		if cost+costs[i] <= budget {
			picked = append(picked, i)
			cost += costs[i]
			value += values[i]
		}
	}
	// Best single item that fits.
	best := -1
	for i := 0; i < n; i++ {
		if costs[i] <= budget && (best < 0 || values[i] > values[best]) {
			best = i
		}
	}
	if best >= 0 && values[best] > value {
		picked = []int{best}
		value = values[best]
		cost = costs[best]
	}
	sort.Ints(picked)
	return Result{Indices: picked, Value: value, Cost: cost}, nil
}

func density(v, c float64) float64 {
	if c == 0 {
		if v == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return v / c
}

// FPTAS returns a (1−eps)-approximate max-knapsack solution in
// O(n³/eps) time by value scaling (Lemma 3.2).
func FPTAS(values, costs []float64, budget, eps float64) (Result, error) {
	if err := validate(values, costs); err != nil {
		return Result{}, err
	}
	if eps <= 0 || eps >= 1 {
		return Result{}, fmt.Errorf("knapsack: eps must be in (0,1), got %v", eps)
	}
	n := len(values)
	maxV := 0.0
	for i, v := range values {
		if costs[i] <= budget && v > maxV {
			maxV = v
		}
	}
	if maxV == 0 {
		return Result{}, nil
	}
	K := eps * maxV / float64(n)
	scaled := make([]int, n)
	totalScaled := 0
	for i, v := range values {
		scaled[i] = int(math.Floor(v / K))
		totalScaled += scaled[i]
	}
	const inf = math.MaxFloat64 / 4
	// dp[s] = min cost achieving scaled value exactly s.
	dp := make([]float64, totalScaled+1)
	for s := 1; s <= totalScaled; s++ {
		dp[s] = inf
	}
	keep := make([][]bool, n)
	for i := 0; i < n; i++ {
		keep[i] = make([]bool, totalScaled+1)
		si, ci := scaled[i], costs[i]
		for s := totalScaled; s >= si; s-- {
			if dp[s-si] >= inf {
				continue
			}
			if cand := dp[s-si] + ci; cand < dp[s] {
				dp[s] = cand
				keep[i][s] = true
			}
		}
	}
	bestS := 0
	for s := totalScaled; s >= 0; s-- {
		if dp[s] <= budget+1e-9 {
			bestS = s
			break
		}
	}
	var res Result
	s := bestS
	for i := n - 1; i >= 0; i-- {
		if s >= scaled[i] && keep[i][s] {
			res.Indices = append(res.Indices, i)
			s -= scaled[i]
		}
	}
	sort.Ints(res.Indices)
	res.Value = sum(values, res.Indices)
	res.Cost = sum(costs, res.Indices)
	return res, nil
}
