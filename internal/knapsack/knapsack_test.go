package knapsack

import (
	"math"
	"testing"

	"github.com/factcheck/cleansel/internal/rng"
)

// bruteMax solves max-knapsack exactly by enumeration (n <= ~20).
func bruteMax(values, costs []float64, budget float64) float64 {
	n := len(values)
	best := 0.0
	for mask := 0; mask < 1<<n; mask++ {
		var v, c float64
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				v += values[i]
				c += costs[i]
			}
		}
		if c <= budget+1e-9 && v > best {
			best = v
		}
	}
	return best
}

// bruteMin solves the covering knapsack exactly by enumeration.
func bruteMin(values, costs []float64, lower float64) (float64, bool) {
	n := len(values)
	best, found := math.Inf(1), false
	for mask := 0; mask < 1<<n; mask++ {
		var v, c float64
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				v += values[i]
				c += costs[i]
			}
		}
		if c >= lower-1e-9 && v < best {
			best, found = v, true
		}
	}
	return best, found
}

func randInstance(r *rng.RNG, n int) (values, costs []float64) {
	values = make([]float64, n)
	costs = make([]float64, n)
	for i := 0; i < n; i++ {
		values[i] = float64(r.IntRange(0, 30))
		costs[i] = float64(r.IntRange(1, 12))
	}
	return values, costs
}

func TestMaxDPAgainstBruteForce(t *testing.T) {
	r := rng.New(1)
	for trial := 0; trial < 60; trial++ {
		n := 1 + r.Intn(10)
		values, costs := randInstance(r, n)
		budget := float64(r.IntRange(0, 40))
		res, err := MaxDP(values, costs, budget, 1)
		if err != nil {
			t.Fatal(err)
		}
		if want := bruteMax(values, costs, budget); res.Value != want {
			t.Fatalf("trial %d: DP %v vs brute %v", trial, res.Value, want)
		}
		if res.Cost > budget+1e-9 {
			t.Fatalf("trial %d: over budget: %v > %v", trial, res.Cost, budget)
		}
		// Reconstruction must reproduce the claimed value.
		var v float64
		for _, i := range res.Indices {
			v += values[i]
		}
		if v != res.Value {
			t.Fatalf("trial %d: indices sum %v != value %v", trial, v, res.Value)
		}
	}
}

func TestMinDPAgainstBruteForce(t *testing.T) {
	r := rng.New(2)
	for trial := 0; trial < 60; trial++ {
		n := 1 + r.Intn(10)
		values, costs := randInstance(r, n)
		var total float64
		for _, c := range costs {
			total += c
		}
		lower := r.Float64() * total
		res, err := MinDP(values, costs, lower, 1)
		want, feasible := bruteMin(values, costs, lower)
		if !feasible {
			if err == nil {
				t.Fatalf("trial %d: infeasible instance solved", trial)
			}
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Integer costs, so discretization is exact; values must match.
		if math.Abs(res.Value-want) > 1e-9 {
			t.Fatalf("trial %d: MinDP %v vs brute %v (lower %v, costs %v, values %v)",
				trial, res.Value, want, lower, costs, values)
		}
		if res.Cost < lower-1e-9 {
			t.Fatalf("trial %d: constraint violated: %v < %v", trial, res.Cost, lower)
		}
		var v float64
		for _, i := range res.Indices {
			v += values[i]
		}
		if math.Abs(v-res.Value) > 1e-9 {
			t.Fatalf("trial %d: reconstruction mismatch %v vs %v", trial, v, res.Value)
		}
	}
}

func TestMinDPTrivial(t *testing.T) {
	res, err := MinDP([]float64{5, 1}, []float64{3, 2}, 0, 1)
	if err != nil || len(res.Indices) != 0 || res.Value != 0 {
		t.Fatalf("zero requirement should pick nothing: %+v, %v", res, err)
	}
	if _, err := MinDP([]float64{1}, []float64{1}, 10, 1); err == nil {
		t.Fatal("infeasible requirement accepted")
	}
}

func TestGreedyHalfApproximation(t *testing.T) {
	r := rng.New(3)
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(10)
		values, costs := randInstance(r, n)
		budget := float64(r.IntRange(1, 40))
		res, err := Greedy(values, costs, budget)
		if err != nil {
			t.Fatal(err)
		}
		opt := bruteMax(values, costs, budget)
		if res.Value < opt/2-1e-9 {
			t.Fatalf("trial %d: greedy %v < OPT/2 = %v", trial, res.Value, opt/2)
		}
		if res.Cost > budget+1e-9 {
			t.Fatalf("trial %d: greedy over budget", trial)
		}
	}
}

// The §3.1 adversarial example: density greedy picks the tiny item; the
// final single-item check must rescue the big one.
func TestGreedyFinalCheckPaperExample(t *testing.T) {
	values := []float64{0.1, 10}
	costs := []float64{0.0001, 2}
	res, err := Greedy(values, costs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value < 10 {
		t.Fatalf("final check failed to rescue the large item: %+v", res)
	}
}

func TestFPTASBound(t *testing.T) {
	r := rng.New(4)
	for _, eps := range []float64{0.5, 0.2, 0.05} {
		for trial := 0; trial < 40; trial++ {
			n := 1 + r.Intn(9)
			values, costs := randInstance(r, n)
			budget := float64(r.IntRange(1, 40))
			res, err := FPTAS(values, costs, budget, eps)
			if err != nil {
				t.Fatal(err)
			}
			opt := bruteMax(values, costs, budget)
			if res.Value < (1-eps)*opt-1e-9 {
				t.Fatalf("eps=%v trial %d: FPTAS %v < (1-eps)·OPT = %v", eps, trial, res.Value, (1-eps)*opt)
			}
			if res.Cost > budget+1e-9 {
				t.Fatalf("eps=%v trial %d: FPTAS over budget", eps, trial)
			}
		}
	}
}

func TestFPTASDegenerate(t *testing.T) {
	res, err := FPTAS([]float64{5}, []float64{10}, 1, 0.1) // nothing fits
	if err != nil || len(res.Indices) != 0 {
		t.Fatalf("nothing fits: %+v, %v", res, err)
	}
	if _, err := FPTAS([]float64{1}, []float64{1}, 1, 0); err == nil {
		t.Fatal("eps=0 accepted")
	}
	if _, err := FPTAS([]float64{1}, []float64{1}, 1, 1); err == nil {
		t.Fatal("eps=1 accepted")
	}
}

func TestValidation(t *testing.T) {
	if _, err := MaxDP([]float64{1}, []float64{1, 2}, 3, 1); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := MaxDP([]float64{-1}, []float64{1}, 3, 1); err == nil {
		t.Fatal("negative value accepted")
	}
	if _, err := MaxDP([]float64{1}, []float64{-1}, 3, 1); err == nil {
		t.Fatal("negative cost accepted")
	}
	if _, err := MaxDP([]float64{1}, []float64{1}, 3, 0); err == nil {
		t.Fatal("zero precision accepted")
	}
	if _, err := MinDP([]float64{1}, []float64{1}, 1, 0); err == nil {
		t.Fatal("zero precision accepted in MinDP")
	}
	if _, err := MaxDP([]float64{math.NaN()}, []float64{1}, 3, 1); err == nil {
		t.Fatal("NaN value accepted")
	}
}

func TestFractionalCostsPrecision(t *testing.T) {
	// Costs 1.5 and 1.4 with budget 2.9: at precision 0.1 both fit.
	res, err := MaxDP([]float64{3, 4}, []float64{1.5, 1.4}, 2.9, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 7 {
		t.Fatalf("precision scaling lost the optimum: %+v", res)
	}
	// At coarse precision 1 the ceil makes each cost 2: only one fits.
	res2, err := MaxDP([]float64{3, 4}, []float64{1.5, 1.4}, 2.9, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Value != 4 {
		t.Fatalf("coarse precision should be conservative: %+v", res2)
	}
}

func TestZeroCostItems(t *testing.T) {
	res, err := MaxDP([]float64{2, 5}, []float64{0, 3}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 2 {
		t.Fatalf("free item should always be taken: %+v", res)
	}
	g, err := Greedy([]float64{2, 5}, []float64{0, 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.Value != 2 {
		t.Fatalf("greedy should take the free item: %+v", g)
	}
}
