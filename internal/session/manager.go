package session

import (
	"container/list"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"log/slog"
	"sync"
	"time"

	"github.com/factcheck/cleansel/internal/obs"
	"github.com/factcheck/cleansel/internal/server/persist"
)

// Lookup errors. The server maps them onto the session protocol's
// status codes: 404 unknown, 409 conflict, 410 expired.
var (
	// ErrNotFound marks a session ID the manager has never seen, or one
	// whose record was evicted for capacity.
	ErrNotFound = errors.New("session: not found")
	// ErrExpired marks a session that outlived its TTL (or whose
	// snapshot could not be rebuilt after a restart).
	ErrExpired = errors.New("session: expired")
	// ErrStep marks a clean report whose step counter does not match the
	// session's — a duplicate (stale step) or out-of-order (future step)
	// report.
	ErrStep = errors.New("session: step mismatch")
)

// Config tunes a Manager. Clock is required (inject obs.SystemClock at
// the server boundary, a FakeClock in tests); the rest defaults.
type Config struct {
	// Clock drives TTL expiry and the created/last-used stamps.
	Clock obs.Clock
	// TTL is the idle lifetime of a session: one untouched for longer is
	// expired (default 30m; negative disables expiry).
	TTL time.Duration
	// Capacity bounds live sessions; creating beyond it evicts the least
	// recently used (default 256).
	Capacity int
	// SnapshotPath, when non-empty, makes sessions durable: every
	// mutation rewrites a checksummed snapshot (internal/server/persist
	// format), and a new Manager restores from it. Empty disables.
	SnapshotPath string
	// Rebuild reconstructs a Stepper from a session's stored spec (the
	// canonical create-request bytes) during restore; required when
	// SnapshotPath is set. The reveal log is replayed on the rebuilt
	// stepper, so the restored state is bit-identical to the lost one.
	Rebuild func(spec []byte) (*Stepper, error)
	// Logger receives restore/persist diagnostics; nil discards.
	Logger *slog.Logger
	// MintID overrides session ID generation (tests); nil uses 16 hex
	// characters from crypto/rand with an "s_" prefix.
	MintID func() string
}

// DefaultTTL is the idle lifetime applied when Config.TTL is zero.
const DefaultTTL = 30 * time.Minute

// DefaultCapacity is the live-session bound applied when
// Config.Capacity is zero or negative.
const DefaultCapacity = 256

// record is one live session. All access happens under Manager.mu —
// session steps are a few microseconds of arithmetic, so one lock keeps
// the lifecycle (touch, evict, expire, snapshot) trivially consistent.
type record struct {
	id       string
	spec     []byte
	st       *Stepper
	log      []Reveal
	created  time.Time
	lastUsed time.Time
	elem     *list.Element
}

// Manager owns the session records of one server: creation, lookup
// with TTL expiry, capacity-bounded LRU eviction, and durable
// snapshots. All methods are safe for concurrent use.
type Manager struct {
	clock   obs.Clock
	ttl     time.Duration
	cap     int
	snap    string
	rebuild func(spec []byte) (*Stepper, error)
	log     *slog.Logger
	mintID  func() string

	mu    sync.Mutex
	byID  map[string]*record
	order *list.List // front = most recently used

	// tombs remembers recently expired session IDs (bounded ring) so a
	// late request gets 410 Gone instead of 404.
	tombs     map[string]struct{}
	tombOrder []string

	// Lifecycle counters; swapped for registry-backed ones by the
	// server's metrics layer (the store.reloads pattern), read by both
	// /metrics and /healthz.
	created, expired, evicted, restored *obs.Counter
	loadErrors, persistErrors           *obs.Counter
}

// maxTombstones bounds the expired-ID memory.
const maxTombstones = 4096

// NewManager builds a manager and, when snapshots are configured,
// restores the surviving sessions. Restore failures (missing dataset,
// corrupt snapshot) are logged and counted, never fatal: a restarted
// daemon must serve even if some episodes are lost.
func NewManager(cfg Config) (*Manager, error) {
	if cfg.Clock == nil {
		return nil, errors.New("session: Config.Clock is required")
	}
	if cfg.TTL == 0 {
		cfg.TTL = DefaultTTL
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = DefaultCapacity
	}
	if cfg.SnapshotPath != "" && cfg.Rebuild == nil {
		return nil, errors.New("session: Config.Rebuild is required with SnapshotPath")
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.DiscardHandler)
	}
	if cfg.MintID == nil {
		cfg.MintID = mintID
	}
	m := &Manager{
		clock:   cfg.Clock,
		ttl:     cfg.TTL,
		cap:     cfg.Capacity,
		snap:    cfg.SnapshotPath,
		rebuild: cfg.Rebuild,
		log:     cfg.Logger,
		mintID:  cfg.MintID,
		byID:    make(map[string]*record),
		order:   list.New(),
		tombs:   make(map[string]struct{}),

		created: &obs.Counter{}, expired: &obs.Counter{}, evicted: &obs.Counter{},
		restored: &obs.Counter{}, loadErrors: &obs.Counter{}, persistErrors: &obs.Counter{},
	}
	if m.snap != "" {
		m.restore()
	}
	return m, nil
}

// mintID returns a fresh "s_" + 16-hex session identifier.
func mintID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// A broken crypto/rand is a broken platform; collide loudly
		// rather than crash the daemon.
		return "s_0000000000000000"
	}
	return "s_" + hex.EncodeToString(b[:])
}

// State is an immutable snapshot of one session, everything the wire
// layer needs to answer a request.
type State struct {
	ID          string
	Goal        Goal
	Status      Status
	Steps       int
	Tau         float64
	Budget      float64
	Remaining   float64
	Spent       float64
	Baseline    float64
	Current     float64
	Achieved    float64
	Estimate    float64
	Uncertainty float64
	Cleaned     []CleanedValue
	// Rec is nil when the session is terminal.
	Rec *Recommendation
}

// CleanedValue is one entry of the cleaned-object log, labeled for the
// wire.
type CleanedValue struct {
	Object int     `json:"object"`
	Name   string  `json:"name"`
	Value  float64 `json:"value"`
}

// stateOf snapshots r. Callers hold m.mu.
func (m *Manager) stateOf(r *record, rec *obs.Recorder) State {
	st := State{
		ID:          r.id,
		Goal:        r.st.Goal(),
		Status:      r.st.Status(rec),
		Steps:       r.st.Steps(),
		Tau:         r.st.Tau(),
		Budget:      r.st.Budget(),
		Remaining:   r.st.Remaining(),
		Spent:       r.st.Spent(),
		Baseline:    r.st.Baseline(),
		Current:     r.st.Current(),
		Achieved:    r.st.Achieved(),
		Estimate:    r.st.Estimate(),
		Uncertainty: r.st.Uncertainty(),
		Cleaned:     make([]CleanedValue, len(r.log)),
	}
	for i, rv := range r.log {
		st.Cleaned[i] = CleanedValue{Object: rv.Object, Name: r.st.Name(rv.Object), Value: rv.Value}
	}
	if rr, ok := r.st.Recommend(rec); ok {
		cp := rr
		st.Rec = &cp
	}
	return st
}

// Create registers a new session around st, whose spec is the canonical
// create-request encoding (what Rebuild consumes after a restart), and
// returns its initial state. Creating beyond capacity evicts the least
// recently used session.
func (m *Manager) Create(spec []byte, st *Stepper, rec *obs.Recorder) (State, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sweep()
	for m.order.Len() >= m.cap {
		oldest := m.order.Back()
		if oldest == nil {
			break
		}
		m.drop(oldest.Value.(*record))
		m.evicted.Inc()
	}
	now := m.clock.Now()
	r := &record{
		id:      m.mintID(),
		spec:    append([]byte(nil), spec...),
		st:      st,
		created: now, lastUsed: now,
	}
	r.elem = m.order.PushFront(r)
	m.byID[r.id] = r
	m.created.Inc()
	m.persistLocked()
	return m.stateOf(r, rec), nil
}

// Get returns the session's current state, refreshing its TTL.
func (m *Manager) Get(id string, rec *obs.Recorder) (State, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, err := m.lookup(id)
	if err != nil {
		return State{}, err
	}
	m.touch(r)
	return m.stateOf(r, rec), nil
}

// Clean applies one clean report: the client cleaned object and found
// value, in response to the recommendation of step. A step that does
// not match the session's counter is rejected with ErrStep (duplicate
// or out-of-order delivery must not corrupt the episode); a reveal the
// stepper refuses surfaces its error (ErrRevealConflict or a plain
// validation error). On success the returned state carries the next
// recommendation.
func (m *Manager) Clean(id string, step, object int, value float64, rec *obs.Recorder) (State, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, err := m.lookup(id)
	if err != nil {
		return State{}, err
	}
	if step != r.st.Steps() {
		kind := "out-of-order"
		if step < r.st.Steps() {
			kind = "duplicate"
		}
		return State{}, fmt.Errorf("%w: %s clean report for step %d (session is at step %d)",
			ErrStep, kind, step, r.st.Steps())
	}
	if err := r.st.Reveal(object, value, rec); err != nil {
		return State{}, err
	}
	r.log = append(r.log, Reveal{Object: object, Value: value})
	m.touch(r)
	m.persistLocked()
	return m.stateOf(r, rec), nil
}

// Delete removes the session.
func (m *Manager) Delete(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, err := m.lookup(id)
	if err != nil {
		return err
	}
	m.drop(r)
	m.persistLocked()
	return nil
}

// lookup resolves id, expiring it first if its TTL lapsed. Callers hold
// m.mu.
func (m *Manager) lookup(id string) (*record, error) {
	m.sweep()
	if r, ok := m.byID[id]; ok {
		return r, nil
	}
	if _, gone := m.tombs[id]; gone {
		return nil, fmt.Errorf("%w: session %q idled past its %s TTL", ErrExpired, id, m.ttl)
	}
	return nil, fmt.Errorf("%w: session %q (unknown, evicted, or deleted)", ErrNotFound, id)
}

// sweep expires every session that idled past the TTL, leaving a
// tombstone so late requests distinguish expired from unknown. Callers
// hold m.mu.
func (m *Manager) sweep() {
	if m.ttl < 0 {
		return
	}
	now := m.clock.Now()
	changed := false
	for e := m.order.Back(); e != nil; {
		r := e.Value.(*record)
		prev := e.Prev()
		if now.Sub(r.lastUsed) <= m.ttl {
			// The LRU order is also a last-used order: everything closer
			// to the front is fresher.
			break
		}
		m.drop(r)
		m.entomb(r.id)
		m.expired.Inc()
		changed = true
		e = prev
	}
	if changed {
		m.persistLocked()
	}
}

// touch refreshes the session's recency. Callers hold m.mu.
func (m *Manager) touch(r *record) {
	r.lastUsed = m.clock.Now()
	m.order.MoveToFront(r.elem)
}

// drop removes the record from the index and LRU list. Callers hold
// m.mu.
func (m *Manager) drop(r *record) {
	delete(m.byID, r.id)
	m.order.Remove(r.elem)
}

// entomb remembers an expired ID, bounded by maxTombstones.
func (m *Manager) entomb(id string) {
	if _, ok := m.tombs[id]; ok {
		return
	}
	m.tombs[id] = struct{}{}
	m.tombOrder = append(m.tombOrder, id)
	for len(m.tombOrder) > maxTombstones {
		delete(m.tombs, m.tombOrder[0])
		m.tombOrder = m.tombOrder[1:]
	}
}

// Stats is the lifecycle view /healthz reports.
type Stats struct {
	Active                              int
	Created, Expired, Evicted, Restored uint64
	LoadErrors, PersistErrors           uint64
}

// Stats returns the manager's lifecycle counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Stats{
		Active:        m.order.Len(),
		Created:       uint64(m.created.Value()),
		Expired:       uint64(m.expired.Value()),
		Evicted:       uint64(m.evicted.Value()),
		Restored:      uint64(m.restored.Value()),
		LoadErrors:    uint64(m.loadErrors.Value()),
		PersistErrors: uint64(m.persistErrors.Value()),
	}
}

// Active returns the number of live sessions (a gauge for /metrics).
func (m *Manager) Active() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.order.Len()
}

// Instrument points the lifecycle counters at registry-backed ones, so
// /metrics and /healthz read the very objects the manager ticks.
func (m *Manager) Instrument(created, expired, evicted, restored, loadErrors, persistErrors *obs.Counter) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.created, m.expired, m.evicted, m.restored = created, expired, evicted, restored
	m.loadErrors, m.persistErrors = loadErrors, persistErrors
}

// Close flushes a final snapshot so a graceful shutdown loses nothing.
func (m *Manager) Close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.persistLocked()
}

// snapRecord is the durable encoding of one session.
type snapRecord struct {
	Spec        json.RawMessage `json:"spec"`
	Log         []Reveal        `json:"log,omitempty"`
	CreatedUnix int64           `json:"created_unix"`
	LastUnix    int64           `json:"last_unix"`
}

// persistLocked rewrites the snapshot (least recently used first, so
// restoring in order reproduces the LRU order). Callers hold m.mu. A
// write failure is logged and counted; the daemon keeps serving from
// memory.
func (m *Manager) persistLocked() {
	if m.snap == "" {
		return
	}
	entries := make([]persist.Entry, 0, m.order.Len())
	for e := m.order.Back(); e != nil; e = e.Prev() {
		r := e.Value.(*record)
		val, err := json.Marshal(snapRecord{
			Spec:        json.RawMessage(r.spec),
			Log:         r.log,
			CreatedUnix: r.created.Unix(),
			LastUnix:    r.lastUsed.Unix(),
		})
		if err != nil {
			m.log.Error("encoding session snapshot entry", "session", r.id, "err", err)
			m.persistErrors.Inc()
			continue
		}
		entries = append(entries, persist.Entry{Key: r.id, Value: val})
	}
	if err := persist.WriteSnapshot(m.snap, entries); err != nil {
		m.log.Error("writing session snapshot", "path", m.snap, "err", err)
		m.persistErrors.Inc()
	}
}

// restore refills the manager from the snapshot: rebuild each stepper
// from its stored spec, replay its reveal log, drop what expired while
// the daemon was down, and count what could not be brought back (for
// example a session whose dataset file vanished).
func (m *Manager) restore() {
	entries, err := persist.ReadSnapshot(m.snap)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return // first boot
		}
		m.loadErrors.Inc()
		m.log.Warn("session snapshot unusable, starting empty", "path", m.snap, "err", err)
		return
	}
	now := m.clock.Now()
	for _, e := range entries {
		var sr snapRecord
		if err := json.Unmarshal(e.Value, &sr); err != nil {
			m.loadErrors.Inc()
			m.log.Warn("skipping undecodable session", "session", e.Key, "err", err)
			continue
		}
		last := time.Unix(sr.LastUnix, 0)
		if m.ttl >= 0 && now.Sub(last) > m.ttl {
			m.entomb(e.Key)
			m.expired.Inc()
			continue
		}
		st, err := m.rebuild([]byte(sr.Spec))
		if err != nil {
			m.loadErrors.Inc()
			m.log.Warn("skipping unrebuildable session", "session", e.Key, "err", err)
			continue
		}
		replayOK := true
		for _, rv := range sr.Log {
			if err := st.Reveal(rv.Object, rv.Value, nil); err != nil {
				m.loadErrors.Inc()
				m.log.Warn("skipping session with unreplayable log", "session", e.Key, "err", err)
				replayOK = false
				break
			}
		}
		if !replayOK {
			continue
		}
		r := &record{
			id:      e.Key,
			spec:    append([]byte(nil), sr.Spec...),
			st:      st,
			log:     append([]Reveal(nil), sr.Log...),
			created: time.Unix(sr.CreatedUnix, 0), lastUsed: last,
		}
		// Entries arrive least recently used first; pushing each to the
		// front reproduces the snapshot's recency order.
		r.elem = m.order.PushFront(r)
		m.byID[r.id] = r
		m.restored.Inc()
	}
	m.log.Info("restored session snapshot", "path", m.snap,
		"sessions", m.order.Len(), "entries", len(entries))
}
