package session_test

import (
	"errors"
	"math"
	"testing"

	"github.com/factcheck/cleansel/internal/core"
	"github.com/factcheck/cleansel/internal/dist"
	"github.com/factcheck/cleansel/internal/maxpr"
	"github.com/factcheck/cleansel/internal/model"
	"github.com/factcheck/cleansel/internal/numeric"
	"github.com/factcheck/cleansel/internal/obs"
	"github.com/factcheck/cleansel/internal/query"
	"github.com/factcheck/cleansel/internal/session"
)

func normalDB(t *testing.T) *model.DB {
	t.Helper()
	mk := func(mu, sigma float64) dist.Normal {
		n, err := dist.NewNormal(mu, sigma)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	return model.New([]model.Object{
		{Name: "a", Cost: 1, Current: 10, Value: mk(10, 3)},
		{Name: "b", Cost: 1, Current: 10, Value: mk(10, 2)},
		{Name: "c", Cost: 1, Current: 10, Value: mk(10, 1)},
	})
}

func mustStepper(t *testing.T, db *model.DB, f *query.Affine, goal session.Goal, tau, budget float64) *session.Stepper {
	t.Helper()
	st, err := session.NewStepper(db, f, goal, tau, budget)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// driveEpisode follows the stepper's own recommendations, revealing the
// hidden truth for each, until the session leaves Active — exactly what
// a well-behaved HTTP client does.
func driveEpisode(t *testing.T, st *session.Stepper, truth []float64) []int {
	t.Helper()
	var cleaned []int
	for st.Status(nil) == session.Active {
		rec, ok := st.Recommend(nil)
		if !ok {
			t.Fatal("active session without a recommendation")
		}
		if err := st.Reveal(rec.Object, truth[rec.Object], nil); err != nil {
			t.Fatal(err)
		}
		cleaned = append(cleaned, rec.Object)
	}
	return cleaned
}

// singleEval evaluates one-step MaxPr benefits exactly on a database
// that mixes normals and revealed point masses (AdaptiveMaxPr only ever
// asks it about singletons, which is all SingleProb covers). The
// figure harness's NormalAffine evaluator fails once a reveal lands, so
// the simulator side of the equivalence tests uses this factory.
type singleEval struct {
	db   *model.DB
	coef []float64
	tau  float64
}

func (e singleEval) Prob(T model.Set) float64 {
	if len(T) != 1 {
		panic("singleEval: adaptive policies evaluate singletons only")
	}
	o := T[0]
	p, err := maxpr.SingleProb(e.db.Objects[o].Value, e.coef[o], e.db.Objects[o].Current, e.tau)
	if err != nil {
		panic(err)
	}
	return p
}

// The served stepper and the figure simulator are one policy: an episode
// that follows the recommendations must clean the same objects in the
// same order, spend the same cost, and reach the same verdict as
// core.AdaptiveMaxPr.Run on the same truth. (That SingleProb itself
// matches the NormalAffine/DiscreteAffine evaluators is pinned in the
// maxpr package's tests.)
func TestStepperMatchesAdaptiveMaxPr(t *testing.T) {
	f := query.NewAffine(0, map[int]float64{0: 1, 1: 1, 2: 1})
	tau := 2.0
	truths := [][]float64{
		{4, 10, 10},   // counter on the first cleaning
		{10, 10, 10},  // no counter anywhere
		{10, 7.5, 10}, // counter hides in the second-ranked object
		{11, 12, 9},   // truths above current: measure rises
	}
	for _, truth := range truths {
		sim, err := core.NewAdaptiveMaxPr(normalDB(t), f, tau, func(db *model.DB) (maxpr.Evaluator, error) {
			return singleEval{db: db, coef: f.Dense(db.N()), tau: tau}, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		tr, err := sim.Run(truth, 3)
		if err != nil {
			t.Fatal(err)
		}
		st := mustStepper(t, normalDB(t), f, session.MaxPr, tau, 3)
		cleaned := driveEpisode(t, st, truth)
		if len(cleaned) != len(tr.Cleaned) {
			t.Fatalf("truth %v: session cleaned %v, simulator %v", truth, cleaned, tr.Cleaned)
		}
		for i := range cleaned {
			if cleaned[i] != tr.Cleaned[i] {
				t.Fatalf("truth %v: session cleaned %v, simulator %v", truth, cleaned, tr.Cleaned)
			}
		}
		if st.Spent() != tr.CostSpent {
			t.Fatalf("truth %v: spent %v vs %v", truth, st.Spent(), tr.CostSpent)
		}
		if st.Achieved() != tr.Achieved {
			t.Fatalf("truth %v: achieved %v vs %v", truth, st.Achieved(), tr.Achieved)
		}
		wantStatus := session.Exhausted
		if tr.Countered {
			wantStatus = session.Countered
		}
		if got := st.Status(nil); got != wantStatus {
			t.Fatalf("truth %v: status %v, want %v", truth, got, wantStatus)
		}
	}
}

func TestStepperMatchesAdaptiveMinVar(t *testing.T) {
	f := query.NewAffine(0, map[int]float64{0: 1, 1: 2, 2: 1})
	truth := []float64{12, 9, 10}
	sim, err := core.NewAdaptiveMinVar(normalDB(t), f)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := sim.Run(truth, 2)
	if err != nil {
		t.Fatal(err)
	}
	st := mustStepper(t, normalDB(t), f, session.MinVar, 0, 2)
	if !numeric.AlmostEqual(st.Uncertainty(), tr.VarBefore, 1e-12) {
		t.Fatalf("initial uncertainty %v, want %v", st.Uncertainty(), tr.VarBefore)
	}
	cleaned := driveEpisode(t, st, truth)
	if len(cleaned) != len(tr.Cleaned) {
		t.Fatalf("session cleaned %v, simulator %v", cleaned, tr.Cleaned)
	}
	for i := range cleaned {
		if cleaned[i] != tr.Cleaned[i] {
			t.Fatalf("session cleaned %v, simulator %v", cleaned, tr.Cleaned)
		}
	}
	if !numeric.AlmostEqual(st.Uncertainty(), tr.VarAfter, 1e-12) {
		t.Fatalf("posterior uncertainty %v, want %v", st.Uncertainty(), tr.VarAfter)
	}
	if st.Estimate() != tr.Estimate {
		t.Fatalf("estimate %v, want %v", st.Estimate(), tr.Estimate)
	}
}

// Discrete laws go through SingleProb's exact summation path.
func TestStepperDiscreteMaxPr(t *testing.T) {
	low, err := dist.NewDiscrete([]float64{2, 10}, []float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	db := model.New([]model.Object{
		{Name: "a", Cost: 1, Current: 10, Value: low},
		{Name: "b", Cost: 1, Current: 10, Value: dist.PointMass(10)},
	})
	f := query.NewAffine(0, map[int]float64{0: 1, 1: 1})
	st := mustStepper(t, db, f, session.MaxPr, 3, 10)
	rec, ok := st.Recommend(nil)
	if !ok || rec.Object != 0 {
		t.Fatalf("recommendation %+v ok=%v, want object 0", rec, ok)
	}
	// P(drop > 3) = P(X_a = 2) = 0.5 exactly.
	if rec.Benefit != 0.5 {
		t.Fatalf("benefit %v, want 0.5", rec.Benefit)
	}
	if err := st.Reveal(0, 2, nil); err != nil {
		t.Fatal(err)
	}
	if st.Status(nil) != session.Countered {
		t.Fatalf("status %v, want countered", st.Status(nil))
	}
}

func TestStepperRevealValidation(t *testing.T) {
	f := query.NewAffine(0, map[int]float64{0: 1, 1: 1, 2: 1})
	st := mustStepper(t, normalDB(t), f, session.MinVar, 0, 2)
	if err := st.Reveal(-1, 0, nil); err == nil {
		t.Fatal("negative object accepted")
	}
	if err := st.Reveal(3, 0, nil); err == nil {
		t.Fatal("out-of-range object accepted")
	}
	if err := st.Reveal(0, math.NaN(), nil); err == nil {
		t.Fatal("NaN value accepted")
	}
	if err := st.Reveal(0, math.Inf(1), nil); err == nil {
		t.Fatal("infinite value accepted")
	}
	if err := st.Reveal(1, 9, nil); err != nil {
		t.Fatal(err)
	}
	// Cleaning the same object twice conflicts.
	if err := st.Reveal(1, 9, nil); err == nil || !isConflict(err) {
		t.Fatalf("double clean: got %v, want ErrRevealConflict", err)
	}
	// The recommendation is advice, not a contract: any affordable
	// uncleaned object is accepted.
	if err := st.Reveal(2, 10, nil); err != nil {
		t.Fatal(err)
	}
	// Budget is spent; a terminal session takes no further reveals.
	if err := st.Reveal(0, 10, nil); err == nil || !isConflict(err) {
		t.Fatalf("terminal reveal: got %v, want ErrRevealConflict", err)
	}
}

func isConflict(err error) bool { return errors.Is(err, session.ErrRevealConflict) }

func TestStepperBudgetConflict(t *testing.T) {
	mk := func(mu, sigma float64) dist.Normal {
		n, err := dist.NewNormal(mu, sigma)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	db := model.New([]model.Object{
		{Name: "cheap", Cost: 1, Current: 10, Value: mk(10, 1)},
		{Name: "dear", Cost: 5, Current: 10, Value: mk(10, 3)},
	})
	f := query.NewAffine(0, map[int]float64{0: 1, 1: 1})
	st := mustStepper(t, db, f, session.MinVar, 0, 2)
	// The expensive object never fits the budget.
	if err := st.Reveal(1, 10, nil); err == nil || !isConflict(err) {
		t.Fatalf("unaffordable reveal: got %v, want ErrRevealConflict", err)
	}
	if err := st.Reveal(0, 10, nil); err != nil {
		t.Fatal(err)
	}
	if st.Status(nil) != session.Exhausted {
		t.Fatalf("status %v, want exhausted", st.Status(nil))
	}
}

func TestStepperTicksTraceCounters(t *testing.T) {
	f := query.NewAffine(0, map[int]float64{0: 1, 1: 1, 2: 1})
	st := mustStepper(t, normalDB(t), f, session.MaxPr, 2, 3)
	rec := obs.NewRecorder(obs.SystemClock)
	if _, ok := st.Recommend(rec); !ok {
		t.Fatal("no recommendation")
	}
	if err := st.Reveal(0, 4, rec); err != nil {
		t.Fatal(err)
	}
	counters := map[string]int64{}
	for _, c := range rec.Snapshot().Counters {
		counters[c.Name] = c.Value
	}
	// One eval per candidate on the first recommendation (3 objects);
	// Reveal re-checks Status on the already-cached recommendation, so no
	// further evals, and exactly one conditioning op.
	if counters["session_step_evals"] != 3 {
		t.Fatalf("session_step_evals = %d, want 3", counters["session_step_evals"])
	}
	if counters["session_conditioned"] != 1 {
		t.Fatalf("session_conditioned = %d, want 1", counters["session_conditioned"])
	}
}

func TestNewStepperValidation(t *testing.T) {
	db := normalDB(t)
	f := query.NewAffine(0, map[int]float64{0: 1})
	if _, err := session.NewStepper(nil, f, session.MinVar, 0, 1); err == nil {
		t.Fatal("nil DB accepted")
	}
	if _, err := session.NewStepper(db, nil, session.MinVar, 0, 1); err == nil {
		t.Fatal("nil claim accepted")
	}
	if _, err := session.NewStepper(db, f, "bogus", 0, 1); err == nil {
		t.Fatal("unknown goal accepted")
	}
	if _, err := session.NewStepper(db, f, session.MinVar, 0, -1); err == nil {
		t.Fatal("negative budget accepted")
	}
	if _, err := session.NewStepper(db, f, session.MaxPr, -1, 1); err == nil {
		t.Fatal("negative tau accepted")
	}
	if _, err := session.NewStepper(db, f, session.MaxPr, math.NaN(), 1); err == nil {
		t.Fatal("NaN tau accepted")
	}
}

func TestParseGoal(t *testing.T) {
	for in, want := range map[string]session.Goal{
		"": session.MinVar, "minvar": session.MinVar, "maxpr": session.MaxPr,
	} {
		g, err := session.ParseGoal(in)
		if err != nil || g != want {
			t.Fatalf("ParseGoal(%q) = %v, %v", in, g, err)
		}
	}
	if _, err := session.ParseGoal("surprise"); err == nil {
		t.Fatal("unknown goal accepted")
	}
}
