package session_test

import (
	"errors"
	"path/filepath"
	"testing"
	"time"

	"github.com/factcheck/cleansel/internal/obs"
	"github.com/factcheck/cleansel/internal/query"
	"github.com/factcheck/cleansel/internal/session"
)

// testRebuild ignores the spec and rebuilds the standard three-object
// minvar stepper; the manager replays the reveal log on top.
func testRebuild(t *testing.T, budget float64) func([]byte) (*session.Stepper, error) {
	return func([]byte) (*session.Stepper, error) {
		f := query.NewAffine(0, map[int]float64{0: 1, 1: 1, 2: 1})
		return session.NewStepper(normalDB(t), f, session.MinVar, 0, budget)
	}
}

func newTestStepper(t *testing.T, budget float64) *session.Stepper {
	t.Helper()
	f := query.NewAffine(0, map[int]float64{0: 1, 1: 1, 2: 1})
	return mustStepper(t, normalDB(t), f, session.MinVar, 0, budget)
}

func newTestManager(t *testing.T, cfg session.Config) *session.Manager {
	t.Helper()
	m, err := session.NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestManagerTTLExpiry(t *testing.T) {
	clock := obs.NewFakeClock(time.Unix(1000, 0))
	m := newTestManager(t, session.Config{Clock: clock, TTL: time.Minute})
	st, err := m.Create([]byte("{}"), newTestStepper(t, 3), nil)
	if err != nil {
		t.Fatal(err)
	}
	clock.Advance(59 * time.Second)
	if _, err := m.Get(st.ID, nil); err != nil {
		t.Fatalf("session expired early: %v", err)
	}
	// The Get refreshed the TTL: a full minute more is fine...
	clock.Advance(60 * time.Second)
	if _, err := m.Get(st.ID, nil); err != nil {
		t.Fatalf("touch did not refresh TTL: %v", err)
	}
	// ...but idling past it expires, and the ID stays distinguishable
	// from one that never existed.
	clock.Advance(61 * time.Second)
	if _, err := m.Get(st.ID, nil); !errors.Is(err, session.ErrExpired) {
		t.Fatalf("got %v, want ErrExpired", err)
	}
	if _, err := m.Get("s_0123456789abcdef", nil); !errors.Is(err, session.ErrNotFound) {
		t.Fatalf("got %v, want ErrNotFound", err)
	}
	if s := m.Stats(); s.Expired != 1 || s.Active != 0 {
		t.Fatalf("stats %+v", s)
	}
}

func TestManagerNegativeTTLNeverExpires(t *testing.T) {
	clock := obs.NewFakeClock(time.Unix(1000, 0))
	m := newTestManager(t, session.Config{Clock: clock, TTL: -1})
	st, err := m.Create([]byte("{}"), newTestStepper(t, 3), nil)
	if err != nil {
		t.Fatal(err)
	}
	clock.Advance(1000 * time.Hour)
	if _, err := m.Get(st.ID, nil); err != nil {
		t.Fatalf("negative TTL expired a session: %v", err)
	}
}

func TestManagerLRUEviction(t *testing.T) {
	clock := obs.NewFakeClock(time.Unix(1000, 0))
	m := newTestManager(t, session.Config{Clock: clock, Capacity: 2})
	a, _ := m.Create([]byte("{}"), newTestStepper(t, 3), nil)
	clock.Advance(time.Second)
	b, _ := m.Create([]byte("{}"), newTestStepper(t, 3), nil)
	clock.Advance(time.Second)
	// Touch a so b becomes the least recently used.
	if _, err := m.Get(a.ID, nil); err != nil {
		t.Fatal(err)
	}
	clock.Advance(time.Second)
	c, _ := m.Create([]byte("{}"), newTestStepper(t, 3), nil)
	if _, err := m.Get(b.ID, nil); !errors.Is(err, session.ErrNotFound) {
		t.Fatalf("LRU session not evicted: %v", err)
	}
	for _, id := range []string{a.ID, c.ID} {
		if _, err := m.Get(id, nil); err != nil {
			t.Fatalf("session %s gone: %v", id, err)
		}
	}
	if s := m.Stats(); s.Evicted != 1 || s.Active != 2 {
		t.Fatalf("stats %+v", s)
	}
}

func TestManagerStepOrdering(t *testing.T) {
	clock := obs.NewFakeClock(time.Unix(1000, 0))
	m := newTestManager(t, session.Config{Clock: clock})
	st, err := m.Create([]byte("{}"), newTestStepper(t, 3), nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Steps != 0 || st.Rec == nil {
		t.Fatalf("fresh session state %+v", st)
	}
	// Out-of-order: a report for a step the session has not reached.
	if _, err := m.Clean(st.ID, 1, st.Rec.Object, 9, nil); !errors.Is(err, session.ErrStep) {
		t.Fatalf("out-of-order clean: got %v, want ErrStep", err)
	}
	st2, err := m.Clean(st.ID, 0, st.Rec.Object, 9, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Steps != 1 || len(st2.Cleaned) != 1 || st2.Cleaned[0].Object != st.Rec.Object {
		t.Fatalf("state after clean %+v", st2)
	}
	// Duplicate: re-delivering the step-0 report must not double-apply.
	if _, err := m.Clean(st.ID, 0, st.Rec.Object, 9, nil); !errors.Is(err, session.ErrStep) {
		t.Fatalf("duplicate clean: got %v, want ErrStep", err)
	}
	// A conflicting reveal at the right step surfaces the stepper's error.
	if _, err := m.Clean(st.ID, 1, st.Rec.Object, 9, nil); !errors.Is(err, session.ErrRevealConflict) {
		t.Fatalf("re-clean of cleaned object: got %v, want ErrRevealConflict", err)
	}
}

func TestManagerDelete(t *testing.T) {
	clock := obs.NewFakeClock(time.Unix(1000, 0))
	m := newTestManager(t, session.Config{Clock: clock})
	st, _ := m.Create([]byte("{}"), newTestStepper(t, 3), nil)
	if err := m.Delete(st.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Get(st.ID, nil); !errors.Is(err, session.ErrNotFound) {
		t.Fatalf("deleted session still resolves: %v", err)
	}
	if err := m.Delete(st.ID); !errors.Is(err, session.ErrNotFound) {
		t.Fatalf("double delete: %v", err)
	}
}

func TestManagerRestartRecovery(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "sessions.snap")
	clock := obs.NewFakeClock(time.Unix(1000, 0))
	m := newTestManager(t, session.Config{
		Clock: clock, SnapshotPath: snap, Rebuild: testRebuild(t, 3),
	})
	st, err := m.Create([]byte("{}"), newTestStepper(t, 3), nil)
	if err != nil {
		t.Fatal(err)
	}
	before, err := m.Clean(st.ID, 0, 0, 7.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.Close()

	m2 := newTestManager(t, session.Config{
		Clock: clock, SnapshotPath: snap, Rebuild: testRebuild(t, 3),
	})
	after, err := m2.Get(st.ID, nil)
	if err != nil {
		t.Fatalf("session lost across restart: %v", err)
	}
	// The replayed episode is the same episode: same step counter, same
	// reveal log, bit-identical posterior and recommendation.
	if after.Steps != before.Steps || after.Spent != before.Spent {
		t.Fatalf("replayed %+v, want %+v", after, before)
	}
	if len(after.Cleaned) != 1 || after.Cleaned[0] != before.Cleaned[0] {
		t.Fatalf("cleaned log %+v, want %+v", after.Cleaned, before.Cleaned)
	}
	if after.Estimate != before.Estimate || after.Uncertainty != before.Uncertainty {
		t.Fatalf("posterior drifted across restart: %+v vs %+v", after, before)
	}
	if before.Rec == nil || after.Rec == nil || *after.Rec != *before.Rec {
		t.Fatalf("recommendation drifted: %+v vs %+v", after.Rec, before.Rec)
	}
	if s := m2.Stats(); s.Restored != 1 {
		t.Fatalf("stats %+v", s)
	}
	// The episode continues where it left off.
	if _, err := m2.Clean(st.ID, 1, after.Rec.Object, 10, nil); err != nil {
		t.Fatal(err)
	}
}

func TestManagerExpiredWhileDown(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "sessions.snap")
	clock := obs.NewFakeClock(time.Unix(1000, 0))
	m := newTestManager(t, session.Config{
		Clock: clock, TTL: time.Minute, SnapshotPath: snap, Rebuild: testRebuild(t, 3),
	})
	st, _ := m.Create([]byte("{}"), newTestStepper(t, 3), nil)
	m.Close()

	clock.Advance(2 * time.Minute)
	m2 := newTestManager(t, session.Config{
		Clock: clock, TTL: time.Minute, SnapshotPath: snap, Rebuild: testRebuild(t, 3),
	})
	if _, err := m2.Get(st.ID, nil); !errors.Is(err, session.ErrExpired) {
		t.Fatalf("session that idled past TTL while down: got %v, want ErrExpired", err)
	}
	if s := m2.Stats(); s.Expired != 1 || s.Restored != 0 {
		t.Fatalf("stats %+v", s)
	}
}

func TestManagerRestoreSkipsBrokenSessions(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "sessions.snap")
	clock := obs.NewFakeClock(time.Unix(1000, 0))
	m := newTestManager(t, session.Config{
		Clock: clock, SnapshotPath: snap, Rebuild: testRebuild(t, 3),
	})
	st, _ := m.Create([]byte("{}"), newTestStepper(t, 3), nil)
	m.Close()

	// A rebuild failure (say, the dataset vanished) loses that session
	// but must not prevent startup.
	m2 := newTestManager(t, session.Config{
		Clock: clock, SnapshotPath: snap,
		Rebuild: func([]byte) (*session.Stepper, error) { return nil, errors.New("dataset gone") },
	})
	if _, err := m2.Get(st.ID, nil); !errors.Is(err, session.ErrNotFound) {
		t.Fatalf("broken session resolves: %v", err)
	}
	if s := m2.Stats(); s.LoadErrors != 1 || s.Restored != 0 || s.Active != 0 {
		t.Fatalf("stats %+v", s)
	}
}

func TestManagerConfigValidation(t *testing.T) {
	if _, err := session.NewManager(session.Config{}); err == nil {
		t.Fatal("nil clock accepted")
	}
	clock := obs.NewFakeClock(time.Unix(1000, 0))
	if _, err := session.NewManager(session.Config{Clock: clock, SnapshotPath: "x"}); err == nil {
		t.Fatal("snapshot path without rebuild accepted")
	}
}
