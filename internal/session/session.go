// Package session turns the paper's adaptive cleaning loop into a
// served, stateful protocol. The simulators (core.AdaptiveMaxPr,
// core.AdaptiveMinVar) need the hidden ground truth in hand; a real
// fact-checking desk does not have it — it learns one revealed value per
// cleaning action, one phone call at a time. A Stepper holds the state
// of one such episode: the engine recommends the next object to clean,
// the client cleans it out of band and reports the revealed value, and
// the stepper conditions its state on the observation and re-decides.
//
// Two design rules carry over from the rest of the system:
//
//   - One policy implementation. The decide-step is
//     core.NextAdaptiveStep — the exact argmax-benefit-per-cost rule of
//     the simulators, tie-breaks and budget tolerance included — and the
//     one-step MaxPr benefit is maxpr.SingleProb, bit-identical to the
//     NormalAffine closed form the figure harness uses.
//   - Incremental conditioning. Reporting a revealed value substitutes a
//     point mass for the object's law (à la ev.GroupEngine.CondMoments)
//     and updates the current-value vector in place; nothing recompiles
//     the dataset. The stepper ticks session_step_evals and
//     session_conditioned counters on the request's obs.Recorder so a
//     trace can prove it.
//
// Everything here is sequential and deterministic: recommendations are
// a pure function of (database, claim, goal, τ, budget, reveal log),
// independent of worker counts, wall time, and map iteration order. The
// Manager (manager.go) adds the serving concerns — concurrency-safe
// records, TTL expiry, LRU eviction, durable snapshots.
package session

import (
	"errors"
	"fmt"
	"math"

	"github.com/factcheck/cleansel/internal/core"
	"github.com/factcheck/cleansel/internal/dist"
	"github.com/factcheck/cleansel/internal/maxpr"
	"github.com/factcheck/cleansel/internal/model"
	"github.com/factcheck/cleansel/internal/obs"
	"github.com/factcheck/cleansel/internal/query"
)

// Goal selects the objective a session optimizes.
type Goal string

const (
	// MaxPr maximizes the surprise probability: recommend the object
	// whose cleaning is most likely (per unit cost) to drop the claim
	// measure by more than τ.
	MaxPr Goal = "maxpr"
	// MinVar minimizes the fact-checker's uncertainty: recommend the
	// object with the largest variance drop per unit cost.
	MinVar Goal = "minvar"
)

// ParseGoal maps a wire-format goal name onto a Goal; the empty string
// defaults to MinVar, matching cleansel.ParseGoal.
func ParseGoal(s string) (Goal, error) {
	switch s {
	case "", "minvar":
		return MinVar, nil
	case "maxpr":
		return MaxPr, nil
	default:
		return "", fmt.Errorf("session: unknown goal %q (want minvar or maxpr)", s)
	}
}

// Status is the lifecycle state of an episode.
type Status string

const (
	// Active sessions have a current recommendation.
	Active Status = "active"
	// Countered MaxPr sessions found their counterargument: the realized
	// drop exceeded τ. Terminal.
	Countered Status = "countered"
	// Exhausted sessions have no affordable positive-benefit step left —
	// the budget ran out or every useful object is clean. Terminal.
	Exhausted Status = "exhausted"
)

// Recommendation is the stepper's current advice: the object whose
// cleaning buys the most objective per unit cost right now.
type Recommendation struct {
	Object  int     `json:"object"`
	Name    string  `json:"name"`
	Benefit float64 `json:"benefit"`
	Cost    float64 `json:"cost"`
	Ratio   float64 `json:"ratio"`
}

// Reveal is one cleaned-object observation: the client cleaned Object
// and found Value.
type Reveal struct {
	Object int     `json:"object"`
	Value  float64 `json:"value"`
}

// Stepper is the policy engine of one adaptive episode. It is not safe
// for concurrent use; the Manager serializes access per session.
type Stepper struct {
	goal Goal
	f    *query.Affine
	tau  float64

	names  []string
	costs  []float64
	coef   []float64     // dense claim coefficients
	values []model.Value // marginal laws; reveals substitute point masses
	u      []float64     // current values; reveals overwrite
	mask   []bool        // cleaned objects

	baseline  float64 // f at the original current values
	budget    float64
	remaining float64
	spent     float64
	steps     int

	// rec caches the current recommendation between mutations; recValid
	// distinguishes "not computed yet" from "terminal, none exists".
	rec      Recommendation
	recOK    bool
	recValid bool
}

// NewStepper builds the episode state for an affine claim function over
// an independent database. For the MaxPr goal every value model must be
// normal or discrete (the laws SingleProb evaluates exactly) and τ must
// be non-negative. The database is not retained mutably: reveals touch
// only the stepper's own copies.
func NewStepper(db *model.DB, f *query.Affine, goal Goal, tau, budget float64) (*Stepper, error) {
	if db == nil || db.N() == 0 {
		return nil, errors.New("session: empty database")
	}
	if db.Cov != nil {
		return nil, errors.New("session: sessions require independent values")
	}
	if f == nil {
		return nil, errors.New("session: nil claim function")
	}
	if goal != MaxPr && goal != MinVar {
		return nil, fmt.Errorf("session: unknown goal %q", goal)
	}
	if err := core.ValidateBudget(budget); err != nil {
		return nil, err
	}
	if math.IsNaN(tau) || tau < 0 {
		return nil, fmt.Errorf("session: invalid tau %v", tau)
	}
	n := db.N()
	s := &Stepper{
		goal:      goal,
		f:         f,
		tau:       tau,
		names:     make([]string, n),
		costs:     db.Costs(),
		coef:      f.Dense(n),
		values:    make([]model.Value, n),
		u:         db.Currents(),
		mask:      make([]bool, n),
		budget:    budget,
		remaining: budget,
	}
	for i, o := range db.Objects {
		s.names[i] = o.Name
		s.values[i] = o.Value
		if goal == MaxPr {
			// Fail at create time, not mid-episode: SingleProb supports
			// exactly the laws the database can carry today, but a guard
			// here keeps any future value model an explicit decision.
			if _, err := maxpr.SingleProb(o.Value, s.coef[i], s.u[i], tau); err != nil {
				return nil, fmt.Errorf("session: object %d (%s): %w", i, o.Name, err)
			}
		}
	}
	s.baseline = f.Eval(s.u)
	return s, nil
}

// Goal returns the session's objective.
func (s *Stepper) Goal() Goal { return s.goal }

// Tau returns the surprise threshold (0 for MinVar sessions).
func (s *Stepper) Tau() float64 { return s.tau }

// Budget returns the total cleaning budget.
func (s *Stepper) Budget() float64 { return s.budget }

// Remaining returns the budget not yet spent.
func (s *Stepper) Remaining() float64 { return s.remaining }

// Spent returns the cost consumed so far.
func (s *Stepper) Spent() float64 { return s.spent }

// Steps returns the number of reveals applied; it doubles as the step
// counter a client echoes to order its clean reports.
func (s *Stepper) Steps() int { return s.steps }

// N returns the number of objects.
func (s *Stepper) N() int { return len(s.costs) }

// Name returns the object's label.
func (s *Stepper) Name(o int) string { return s.names[o] }

// Baseline returns f at the original current values.
func (s *Stepper) Baseline() float64 { return s.baseline }

// Current returns f at the working values: revealed truths substituted,
// everything else at its original current value.
func (s *Stepper) Current() float64 { return s.f.Eval(s.u) }

// Achieved returns the realized drop baseline − current (positive = the
// measure fell).
func (s *Stepper) Achieved() float64 { return s.baseline - s.Current() }

// Countered reports whether the realized drop exceeds τ — for MaxPr
// sessions, the terminal success state (the early exit of
// core.AdaptiveMaxPr.Run).
func (s *Stepper) Countered() bool { return s.goal == MaxPr && s.Achieved() > s.tau }

// Estimate returns the posterior mean of f(X) given the reveals:
// revealed values are point masses, unrevealed objects contribute their
// marginal means (the CondMoments mean under independence).
func (s *Stepper) Estimate() float64 {
	means := make([]float64, len(s.values))
	for i, v := range s.values {
		means[i] = v.Mean()
	}
	return s.f.Eval(means)
}

// Uncertainty returns the posterior variance of f(X) given the reveals:
// Σ aᵢ²·Var[Xᵢ] with revealed variances gone (the CondMoments variance
// under independence).
func (s *Stepper) Uncertainty() float64 {
	var acc float64
	for i, v := range s.values {
		acc += s.coef[i] * s.coef[i] * v.Variance()
	}
	return acc
}

// benefit returns the one-step objective of cleaning o on the current
// state. Laws were validated at construction, so the MaxPr path cannot
// error.
func (s *Stepper) benefit(o int) float64 {
	if s.goal == MinVar {
		return s.coef[o] * s.coef[o] * s.values[o].Variance()
	}
	p, _ := maxpr.SingleProb(s.values[o], s.coef[o], s.u[o], s.tau)
	return p
}

// Recommend returns the current recommendation, or ok = false when the
// session is terminal (countered, or no affordable step improves). The
// result is cached between reveals; the first call after a mutation
// evaluates every candidate once and ticks one session_step_evals per
// evaluation on rec (nil-safe), so a request trace shows exactly how
// much engine work the step cost.
func (s *Stepper) Recommend(rec *obs.Recorder) (Recommendation, bool) {
	if s.recValid {
		return s.rec, s.recOK
	}
	s.recValid = true
	s.recOK = false
	if s.Countered() {
		return s.rec, false
	}
	best, bestB, bestR := core.NextAdaptiveStep(s.costs, s.mask, s.remaining, func(o int) float64 {
		rec.Add("session_step_evals", 1)
		return s.benefit(o)
	})
	if best < 0 {
		return s.rec, false
	}
	s.rec = Recommendation{Object: best, Name: s.names[best], Benefit: bestB, Cost: s.costs[best], Ratio: bestR}
	s.recOK = true
	return s.rec, true
}

// Status returns the session's lifecycle state. Computing it may
// evaluate the next recommendation (cached afterwards).
func (s *Stepper) Status(rec *obs.Recorder) Status {
	if s.Countered() {
		return Countered
	}
	if _, ok := s.Recommend(rec); ok {
		return Active
	}
	return Exhausted
}

// Reveal errors, wrapped with detail by Reveal itself. The Manager maps
// ErrRevealConflict to HTTP 409; anything else is a bad request.
var (
	// ErrRevealConflict marks a reveal that is inconsistent with the
	// session's state — the object is already clean, unaffordable, or the
	// session is terminal — rather than malformed.
	ErrRevealConflict = errors.New("session: reveal conflicts with session state")
)

// Reveal conditions the session on one observation: the client cleaned
// object o and found value. Any uncleaned affordable object is
// accepted — the recommendation is advice, not a contract — but a
// terminal session takes no further reveals. On success the object's
// law collapses to a point mass, the working value becomes the truth,
// the budget shrinks, and the step counter advances; one
// session_conditioned tick lands on rec.
func (s *Stepper) Reveal(o int, value float64, rec *obs.Recorder) error {
	if o < 0 || o >= len(s.values) {
		return fmt.Errorf("session: object %d out of range [0, %d)", o, len(s.values))
	}
	if math.IsNaN(value) || math.IsInf(value, 0) {
		return fmt.Errorf("session: revealed value for object %d must be finite, got %v", o, value)
	}
	if st := s.Status(rec); st != Active {
		return fmt.Errorf("%w: session is %s", ErrRevealConflict, st)
	}
	if s.mask[o] {
		return fmt.Errorf("%w: object %d (%s) already cleaned", ErrRevealConflict, o, s.names[o])
	}
	if !core.FitsBudget(0, s.costs[o], s.remaining) {
		return fmt.Errorf("%w: object %d (%s) costs %v, only %v remains", ErrRevealConflict, o, s.names[o], s.costs[o], s.remaining)
	}
	// Point-mass substitution, à la ev.GroupEngine.CondMoments: the
	// revealed value is the law now. No dataset recompile, no evaluator
	// rebuild — the next Recommend reads the updated state directly.
	s.values[o] = dist.PointMass(value)
	s.u[o] = value
	s.mask[o] = true
	s.remaining -= s.costs[o]
	s.spent += s.costs[o]
	s.steps++
	s.recValid = false
	rec.Add("session_conditioned", 1)
	return nil
}

// Cleaned reports whether object o has been revealed.
func (s *Stepper) Cleaned(o int) bool { return s.mask[o] }
