package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// scrape fetches /metrics and returns the body.
func scrape(t *testing.T, h http.Handler) string {
	t.Helper()
	rec := do(t, h, "GET", "/metrics", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type %q", ct)
	}
	return rec.Body.String()
}

// metricValue extracts one sample value from an exposition body; the
// sample line must match `name{labels} value` exactly (labels written
// in the order the vec declares them).
func metricValue(t *testing.T, body, sample string) float64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(sample) + ` (\S+)$`)
	m := re.FindStringSubmatch(body)
	if m == nil {
		t.Fatalf("sample %q not found in exposition:\n%s", sample, body)
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatalf("sample %q has unparseable value %q", sample, m[1])
	}
	return v
}

// TestMetricsScrapeCountsRequests drives a known request mix and
// asserts the scrape reports exactly those counts: two identical
// selects (miss then hit) plus the request counters themselves.
func TestMetricsScrapeCountsRequests(t *testing.T) {
	h := newTestServer(Config{})
	body := selectBody(inlineObjects)
	for i := 0; i < 2; i++ {
		if rec := do(t, h, "POST", "/v1/select", body); rec.Code != http.StatusOK {
			t.Fatalf("select %d status %d: %s", i, rec.Code, rec.Body.String())
		}
	}
	exp := scrape(t, h)

	if v := metricValue(t, exp, `cleanseld_requests_total{endpoint="select",code="200"}`); v != 2 {
		t.Fatalf("select requests = %v, want 2", v)
	}
	if v := metricValue(t, exp, `cleanseld_cache_requests_total{status="hit"}`); v != 1 {
		t.Fatalf("cache hits = %v, want 1", v)
	}
	if v := metricValue(t, exp, `cleanseld_cache_requests_total{status="miss"}`); v != 1 {
		t.Fatalf("cache misses = %v, want 1", v)
	}
	if v := metricValue(t, exp, `cleanseld_request_seconds_count{endpoint="select"}`); v != 2 {
		t.Fatalf("latency observations = %v, want 2", v)
	}
	if v := metricValue(t, exp, `cleanseld_request_seconds_bucket{endpoint="select",le="+Inf"}`); v != 2 {
		t.Fatalf("+Inf bucket = %v, want 2", v)
	}
	if v := metricValue(t, exp, `cleanseld_pool_capacity`); v < 1 {
		t.Fatalf("pool capacity = %v, want >= 1", v)
	}
	// The solve ticked the trace; its stage totals must reach /metrics.
	if v := metricValue(t, exp, `cleanseld_solve_stage_seconds_total{stage="solve"}`); v < 0 {
		t.Fatalf("solve stage seconds = %v", v)
	}

	// A second scrape must report the first one as a completed request.
	exp = scrape(t, h)
	if v := metricValue(t, exp, `cleanseld_requests_total{endpoint="metrics",code="200"}`); v != 1 {
		t.Fatalf("metrics endpoint requests = %v, want 1", v)
	}
}

// TestHealthzAgreesWithMetrics asserts the satellite invariant: the
// /healthz statistics and the /metrics scrape read the same counters,
// so after any request mix the two views report identical numbers.
func TestHealthzAgreesWithMetrics(t *testing.T) {
	h := newTestServer(Config{})
	body := selectBody(inlineObjects)
	do(t, h, "POST", "/v1/select", body)
	do(t, h, "POST", "/v1/select", body)
	do(t, h, "POST", "/v1/select", body)

	health := decodeBody(t, do(t, h, "GET", "/healthz", ""))
	exp := scrape(t, h)

	cache := health["cache"].(map[string]any)
	if hits := metricValue(t, exp, `cleanseld_cache_requests_total{status="hit"}`); hits != cache["hits"].(float64) {
		t.Fatalf("hits disagree: metrics %v, healthz %v", hits, cache["hits"])
	}
	if misses := metricValue(t, exp, `cleanseld_cache_requests_total{status="miss"}`); misses != cache["misses"].(float64) {
		t.Fatalf("misses disagree: metrics %v, healthz %v", misses, cache["misses"])
	}
	if entries := metricValue(t, exp, `cleanseld_cache_entries`); entries != cache["entries"].(float64) {
		t.Fatalf("entries disagree: metrics %v, healthz %v", entries, cache["entries"])
	}
	coalesced := metricValue(t, exp, `cleanseld_cache_requests_total{status="coalesced"}`)
	if coalesced != health["coalesced"].(float64) {
		t.Fatalf("coalesced disagree: metrics %v, healthz %v", coalesced, health["coalesced"])
	}
	// requests: healthz counted itself in flight; the scrape then saw it
	// completed. 4 requests preceded the scrape (3 selects + healthz).
	if health["requests"].(float64) != 4 {
		t.Fatalf("healthz requests = %v, want 4", health["requests"])
	}
	total := 0.0
	for _, ep := range []string{"select", "healthz"} {
		total += metricValue(t, exp, fmt.Sprintf(`cleanseld_requests_total{endpoint=%q,code="200"}`, ep))
	}
	if total != 4 {
		t.Fatalf("completed requests at scrape time = %v, want 4", total)
	}
}

// TestRequestIDPropagation covers the X-Request-ID contract: a valid
// client ID is echoed, an invalid or missing one is replaced, and
// error envelopes carry the ID.
func TestRequestIDPropagation(t *testing.T) {
	h := newTestServer(Config{})

	req := httptest.NewRequest("GET", "/healthz", nil)
	req.Header.Set("X-Request-ID", "client-id-42")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if got := rec.Header().Get("X-Request-ID"); got != "client-id-42" {
		t.Fatalf("valid client ID not propagated: %q", got)
	}

	req = httptest.NewRequest("GET", "/healthz", nil)
	req.Header.Set("X-Request-ID", "bad id\nwith junk")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if got := rec.Header().Get("X-Request-ID"); got == "" || strings.Contains(got, " ") {
		t.Fatalf("invalid client ID not replaced: %q", got)
	}

	rec = do(t, h, "GET", "/healthz", "")
	if rec.Header().Get("X-Request-ID") == "" {
		t.Fatal("no generated request ID")
	}

	rec = do(t, h, "POST", "/v1/select", `{"wat": 1}`)
	m := decodeBody(t, rec)
	e := m["error"].(map[string]any)
	if e["request_id"] != rec.Header().Get("X-Request-ID") {
		t.Fatalf("error envelope request_id %v != header %q", e["request_id"], rec.Header().Get("X-Request-ID"))
	}
}

// TestTraceEnvelope asserts ?trace=1 wraps the result with stage
// timings while leaving the cached body — and therefore every
// untraced response — byte-identical.
func TestTraceEnvelope(t *testing.T) {
	h := newTestServer(Config{})
	body := selectBody(inlineObjects)

	plain := do(t, h, "POST", "/v1/select", body)
	if plain.Code != http.StatusOK {
		t.Fatalf("select status %d: %s", plain.Code, plain.Body.String())
	}

	traced := do(t, h, "POST", "/v1/select?trace=1", body)
	if traced.Code != http.StatusOK {
		t.Fatalf("traced select status %d: %s", traced.Code, traced.Body.String())
	}
	if traced.Header().Get("X-Cache") != "hit" {
		t.Fatalf("traced repeat X-Cache = %q, want hit (the trace query must not salt the cache key)", traced.Header().Get("X-Cache"))
	}
	var env struct {
		Result    json.RawMessage `json:"result"`
		RequestID string          `json:"request_id"`
		Cache     string          `json:"cache"`
		Trace     struct {
			Stages []struct {
				Name    string  `json:"name"`
				Count   int64   `json:"count"`
				TotalMS float64 `json:"total_ms"`
			} `json:"stages"`
		} `json:"trace"`
	}
	if err := json.Unmarshal(traced.Body.Bytes(), &env); err != nil {
		t.Fatalf("trace envelope: %v in %s", err, traced.Body.String())
	}
	if env.Cache != "hit" || env.RequestID == "" {
		t.Fatalf("envelope = cache %q, request_id %q", env.Cache, env.RequestID)
	}
	// The wrapped result is the cached body, byte for byte.
	want := strings.TrimSuffix(plain.Body.String(), "\n")
	if string(env.Result) != want {
		t.Fatalf("traced result diverged from cached body:\n%s\nvs\n%s", env.Result, want)
	}

	// An uncached traced solve reports the solve stages.
	fresh := do(t, h, "POST", "/v1/select?trace=1", strings.Replace(body, `"budget": 1`, `"budget": 2`, 1))
	if fresh.Code != http.StatusOK {
		t.Fatalf("fresh traced select status %d: %s", fresh.Code, fresh.Body.String())
	}
	if err := json.Unmarshal(fresh.Body.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, st := range env.Trace.Stages {
		names[st.Name] = true
	}
	if !names["solve"] || !names["compile"] {
		t.Fatalf("fresh trace missing solve stages: %+v", env.Trace.Stages)
	}

	// A plain repeat after tracing still serves the original bytes.
	again := do(t, h, "POST", "/v1/select", body)
	if again.Body.String() != plain.Body.String() {
		t.Fatal("tracing a request changed the bytes later clients are served")
	}
}

// TestEndpointOfBoundsCardinality pins the label set: arbitrary client
// paths must not mint new label values.
func TestEndpointOfBoundsCardinality(t *testing.T) {
	cases := map[string]string{
		"/v1/select":           "select",
		"/v1/rank":             "rank",
		"/v1/assess":           "assess",
		"/v1/datasets":         "datasets",
		"/v1/datasets/ds_abc":  "datasets",
		"/healthz":             "healthz",
		"/metrics":             "metrics",
		"/favicon.ico":         "other",
		"/v1/selectx":          "other",
		"/../../../etc/passwd": "other",
	}
	for path, want := range cases {
		if got := endpointOf(path); got != want {
			t.Errorf("endpointOf(%q) = %q, want %q", path, got, want)
		}
	}
}
