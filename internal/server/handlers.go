package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	cleansel "github.com/factcheck/cleansel"
	"github.com/factcheck/cleansel/internal/obs"
	"github.com/factcheck/cleansel/internal/server/wire"
)

// limitBody bounds the request body so oversized payloads fail as 413
// instead of exhausting memory.
func (s *Server) limitBody(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
}

// resolveDB produces the database a problem refers to: the stored
// dataset when dataset_id is given, the inline objects otherwise.
func (s *Server) resolveDB(p wire.Problem) (*cleansel.DB, error) {
	switch {
	case p.DatasetID != "" && len(p.Objects) > 0:
		return nil, badRequest(errors.New("give objects or dataset_id, not both"))
	case p.DatasetID != "":
		ds, ok := s.store.Get(p.DatasetID)
		if !ok {
			return nil, notFound(fmt.Sprintf("dataset %q not found (it may have been evicted; re-upload it)", p.DatasetID))
		}
		return ds.DB, nil
	default:
		return wire.BuildDB(p.Objects)
	}
}

// serveComputed is the shared select/rank/assess path: consult the
// result cache under the request's canonical hash; on a miss, solve
// under the per-request timeout, coalescing with any identical solve
// already in flight (a thundering herd of the same viral-claim request
// computes once), and cache the encoded success. X-Cache reports hit,
// miss, or coalesced.
func (s *Server) serveComputed(w http.ResponseWriter, r *http.Request, endpoint string, req any, f func(context.Context) (any, error)) {
	key, err := cacheKey(endpoint, req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	if body, ok := s.results.Get(key); ok {
		w.Header().Set("X-Cache", "hit")
		s.writeResult(w, r, body, "hit")
		return
	}
	// Bound this caller's wait; the coalesced computation itself is
	// bounded inside compute and cancelled once every waiter is gone.
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
	defer cancel()
	body, shared, err := s.flights.Do(ctx, key, func(callCtx context.Context) ([]byte, error) {
		v, err := s.compute(callCtx, f)
		if err != nil {
			return nil, err
		}
		b, err := json.Marshal(v)
		if err != nil {
			return nil, err
		}
		return append(b, '\n'), nil
	})
	cacheStatus := "miss"
	if shared {
		cacheStatus = "coalesced"
	}
	w.Header().Set("X-Cache", cacheStatus)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.results.Put(key, body, int64(len(body)))
	s.writeResult(w, r, body, cacheStatus)
}

// writeResult writes an encoded success body. With ?trace=1 the body is
// wrapped in an envelope carrying the request ID, cache status, and the
// recorder's stage timings and engine op counts. The cache always holds
// the plain body — the envelope is built per response — so tracing a
// request never changes the bytes any other client is served.
func (s *Server) writeResult(w http.ResponseWriter, r *http.Request, body []byte, cacheStatus string) {
	if r.URL.Query().Get("trace") != "1" {
		w.Header().Set("Content-Type", "application/json")
		if _, err := w.Write(body); err != nil {
			s.log.Error("writing response", "err", err)
		}
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"result":     json.RawMessage(body),
		"request_id": obs.RequestID(r.Context()),
		"cache":      cacheStatus,
		"trace":      obs.FromContext(r.Context()).Snapshot(),
	})
}

func (s *Server) handleSelect(w http.ResponseWriter, r *http.Request) {
	s.limitBody(w, r)
	req, err := wire.DecodeTask(r.Body)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.serveComputed(w, r, "select", req, func(ctx context.Context) (any, error) {
		rec := obs.FromContext(ctx)
		db, err := s.resolveDB(req.Problem)
		if err != nil {
			return nil, err
		}
		endCompile := rec.Span("compile")
		task, err := req.BuildTask(db)
		endCompile()
		if err != nil {
			return nil, err
		}
		endSolve := rec.Span("solve")
		res, err := cleansel.SelectContext(ctx, task)
		endSolve()
		if err != nil {
			return nil, err
		}
		return wire.EncodeResult(res), nil
	})
}

func (s *Server) handleRank(w http.ResponseWriter, r *http.Request) {
	s.limitBody(w, r)
	req, err := wire.DecodeRank(r.Body)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.serveComputed(w, r, "rank", req, func(ctx context.Context) (any, error) {
		rec := obs.FromContext(ctx)
		db, err := s.resolveDB(req.Problem)
		if err != nil {
			return nil, err
		}
		endCompile := rec.Span("compile")
		work, set, measure, err := req.BuildRank(db)
		endCompile()
		if err != nil {
			return nil, err
		}
		endSolve := rec.Span("solve")
		ranked, err := cleansel.RankObjectsContext(ctx, work, set, measure)
		endSolve()
		if err != nil {
			return nil, err
		}
		return map[string]any{"objects": wire.EncodeBenefits(ranked)}, nil
	})
}

func (s *Server) handleAssess(w http.ResponseWriter, r *http.Request) {
	s.limitBody(w, r)
	req, err := wire.DecodeAssess(r.Body)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.serveComputed(w, r, "assess", req, func(ctx context.Context) (any, error) {
		rec := obs.FromContext(ctx)
		db, err := s.resolveDB(req.Problem)
		if err != nil {
			return nil, err
		}
		endCompile := rec.Span("compile")
		work, set, err := req.BuildAssess(db)
		endCompile()
		if err != nil {
			return nil, err
		}
		endSolve := rec.Span("solve")
		rep, err := cleansel.AssessClaimContext(ctx, work, set)
		endSolve()
		if err != nil {
			return nil, err
		}
		return wire.EncodeReport(rep), nil
	})
}

// handleTriage is the bulk assessment endpoint: one dataset, many
// claims, amortized through a cleansel.TriageContext so the
// perturbation/EV state compiles once per batch. Each claim's report
// is bit-identical to what /v1/assess returns for it alone; a
// malformed claim gets a per-claim error entry without failing the
// batch.
func (s *Server) handleTriage(w http.ResponseWriter, r *http.Request) {
	s.limitBody(w, r)
	req, err := wire.DecodeTriage(r.Body)
	if err != nil {
		s.writeError(w, err)
		return
	}
	if len(req.Claims) == 0 {
		s.writeError(w, badRequest(errors.New("triage needs at least one claim")))
		return
	}
	s.serveComputed(w, r, "triage", req, func(ctx context.Context) (any, error) {
		rec := obs.FromContext(ctx)
		db, err := s.resolveDB(wire.Problem{Objects: req.Objects, DatasetID: req.DatasetID})
		if err != nil {
			return nil, err
		}
		endCompile := rec.Span("compile")
		work, measure, sets, buildErrs, err := req.BuildTriage(db)
		endCompile()
		if err != nil {
			return nil, err
		}
		endSolve := rec.Span("solve")
		defer endSolve()
		tc, err := cleansel.NewTriageContext(work)
		if err != nil {
			return nil, err
		}
		reports, assessErrs, err := tc.AssessClaims(ctx, sets)
		if err != nil {
			return nil, err
		}
		names := make([]string, len(req.Claims))
		errs := make([]error, len(req.Claims))
		uniq := make(map[string]struct{}, len(req.Claims))
		ok := 0
		for i := range req.Claims {
			names[i] = req.Claims[i].Claim.Name
			switch {
			case buildErrs[i] != nil:
				errs[i] = buildErrs[i]
			case assessErrs[i] != nil:
				errs[i] = assessErrs[i]
			default:
				uniq[sets[i].Signature()] = struct{}{}
				ok++
			}
		}
		s.met.triageClaims.With("ok").Add(float64(ok))
		s.met.triageClaims.With("error").Add(float64(len(req.Claims) - ok))
		return wire.EncodeTriage(measure, names, reports, errs, len(uniq)), nil
	})
}

// datasetInfo is the metadata the dataset endpoints report.
type datasetInfo struct {
	ID      string `json:"id"`
	Name    string `json:"name,omitempty"`
	Objects int    `json:"objects"`
}

func (s *Server) handleDatasetUpload(w http.ResponseWriter, r *http.Request) {
	s.limitBody(w, r)
	ds, err := wire.DecodeDataset(r.Body)
	if err != nil {
		s.writeError(w, err)
		return
	}
	rec, err := s.store.Add(ds)
	if err != nil {
		switch {
		case errors.Is(err, errDatasetTooLarge):
			err = &apiError{Status: http.StatusRequestEntityTooLarge, Code: "payload_too_large", Message: err.Error()}
		case errors.Is(err, errPersist):
			// Durable mode could not write the dataset file: the upload
			// must not be acknowledged, and it is the server's fault.
			err = &apiError{Status: http.StatusInternalServerError, Code: "persist_error", Message: err.Error()}
		}
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, datasetInfo{ID: rec.ID, Name: rec.Name, Objects: rec.Objects})
}

func (s *Server) handleDatasetGet(w http.ResponseWriter, r *http.Request) {
	rec, ok := s.store.Get(r.PathValue("id"))
	if !ok {
		s.writeError(w, notFound(fmt.Sprintf("dataset %q not found", r.PathValue("id"))))
		return
	}
	s.writeJSON(w, http.StatusOK, datasetInfo{ID: rec.ID, Name: rec.Name, Objects: rec.Objects})
}

// handleHealthz reports liveness and statistics. Every number here is
// read from the same objects the /metrics registry exposes (the
// instrumented cache counters, the flight group's coalesced counter,
// the request CounterVec), so the two views cannot disagree.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	hits, misses := s.results.Stats()
	health := map[string]any{
		"status":         "ok",
		"uptime_seconds": int64(s.clock.Now().Sub(s.start).Seconds()),
		"requests":       s.met.requestsSeen(),
		"datasets":       s.store.Len(),
		"dataset_bytes":  s.store.Bytes(),
		"coalesced":      s.flights.Coalesced(),
		"sessions":       s.sessionStats(),
		"cache": map[string]any{
			"entries": s.results.Len(),
			"bytes":   s.results.Bytes(),
			"hits":    hits,
			"misses":  misses,
		},
	}
	if p := s.persistStats(); p != nil {
		health["persist"] = p
	}
	s.writeJSON(w, http.StatusOK, health)
}
