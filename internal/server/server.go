// Package server implements the cleanseld HTTP/JSON service: a serving
// layer over cleansel.Select, cleansel.RankObjects, and
// cleansel.AssessClaim.
//
// Endpoints:
//
//	POST /v1/datasets      upload a dataset once, get a content-addressed ID
//	GET  /v1/datasets/{id} dataset metadata
//	POST /v1/select        solve a selection task (inline objects or dataset_id)
//	POST /v1/rank          standalone benefit ranking of every object
//	POST /v1/assess        claim-quality report (bias/duplicity/fragility)
//	GET  /healthz          liveness, uptime, and cache/store statistics
//
// Successful select/rank/assess responses are cached in an LRU keyed on
// a canonical request hash, so repeated identical requests (the common
// pattern when many checkers inspect one viral claim) are served without
// recomputation; the X-Cache response header reports hit or miss.
// Requests are bounded by a per-request timeout and a maximum body size,
// and every request is access-logged through log/slog with latency and
// cache-status fields.
package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"
)

// Config tunes a Server. The zero value gets sensible defaults.
type Config struct {
	// Logger receives access and error logs; nil discards them.
	Logger *slog.Logger
	// Timeout bounds each request's compute time (default 30s).
	Timeout time.Duration
	// CacheSize is the result-cache capacity in entries (default 1024;
	// negative disables caching).
	CacheSize int
	// CacheBytes bounds the result cache's total encoded-response size
	// in bytes (0 = unbounded by size).
	CacheBytes int64
	// MaxDatasets bounds the dataset store (default 64).
	MaxDatasets int
	// MaxDatasetBytes bounds the dataset store's total approximate size
	// in bytes, measured on the canonical upload encoding (0 =
	// unbounded by size).
	MaxDatasetBytes int64
	// MaxBodyBytes bounds request bodies (default 8 MiB).
	MaxBodyBytes int64
	// MaxInflight caps concurrently running solver goroutines (default
	// GOMAXPROCS). Timed-out solves are cancelled through their
	// context, and identical in-flight requests coalesce into one
	// solve; the cap keeps a burst of distinct expensive requests from
	// starving the daemon.
	MaxInflight int
}

func (c Config) withDefaults() Config {
	if c.Logger == nil {
		c.Logger = slog.New(slog.DiscardHandler)
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	if c.CacheSize == 0 {
		c.CacheSize = 1024
	}
	if c.MaxDatasets <= 0 {
		c.MaxDatasets = 64
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = runtime.GOMAXPROCS(0)
	}
	return c
}

// Server is the cleanseld request handler.
type Server struct {
	cfg      Config
	log      *slog.Logger
	store    *datasetStore
	results  *lru[[]byte]
	flights  *flightGroup  // coalesces identical in-flight solves
	sem      chan struct{} // counting semaphore over solver goroutines
	start    time.Time
	requests atomic.Uint64
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	return &Server{
		cfg:     cfg,
		log:     cfg.Logger,
		store:   newDatasetStore(cfg.MaxDatasets, cfg.MaxDatasetBytes),
		results: newLRU[[]byte](cfg.CacheSize, cfg.CacheBytes),
		flights: newFlightGroup(),
		sem:     make(chan struct{}, cfg.MaxInflight),
		start:   time.Now(),
	}
}

// Handler returns the routed, logged HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/datasets", s.handleDatasetUpload)
	mux.HandleFunc("GET /v1/datasets/{id}", s.handleDatasetGet)
	mux.HandleFunc("POST /v1/select", s.handleSelect)
	mux.HandleFunc("POST /v1/rank", s.handleRank)
	mux.HandleFunc("POST /v1/assess", s.handleAssess)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s.accessLog(mux)
}

// apiError is a structured, serializable request failure.
type apiError struct {
	Status  int    `json:"-"`
	Code    string `json:"code"`
	Message string `json:"message"`
}

func (e *apiError) Error() string { return e.Message }

func badRequest(err error) *apiError {
	return &apiError{Status: http.StatusBadRequest, Code: "bad_request", Message: err.Error()}
}

func notFound(msg string) *apiError {
	return &apiError{Status: http.StatusNotFound, Code: "not_found", Message: msg}
}

// writeError encodes err as the structured error JSON, classifying
// non-apiError values on the way: body-limit violations map to 413,
// timeouts to 504, everything else to a 400 (the compute layer only
// fails on invalid problem specifications).
func (s *Server) writeError(w http.ResponseWriter, err error) {
	var ae *apiError
	if !errors.As(err, &ae) {
		switch {
		case isBodyLimit(err):
			ae = &apiError{Status: http.StatusRequestEntityTooLarge, Code: "payload_too_large",
				Message: fmt.Sprintf("request body exceeds %d bytes", s.cfg.MaxBodyBytes)}
		case errors.Is(err, context.DeadlineExceeded):
			ae = &apiError{Status: http.StatusGatewayTimeout, Code: "timeout",
				Message: fmt.Sprintf("request exceeded the %s compute budget", s.cfg.Timeout)}
		default:
			ae = badRequest(err)
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(ae.Status)
	if encErr := json.NewEncoder(w).Encode(map[string]*apiError{"error": ae}); encErr != nil {
		s.log.Error("encoding error response", "err", encErr)
	}
}

// isBodyLimit reports whether err came from http.MaxBytesReader (the
// wire decoder wraps it, so unwrap through the chain).
func isBodyLimit(err error) bool {
	var mbe *http.MaxBytesError
	return errors.As(err, &mbe)
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.log.Error("encoding response", "err", err)
	}
}

// compute runs f under the server's per-request timeout and in-flight
// cap, passing f the bounded context. The solvers cooperate with
// cancellation (cleansel.SelectContext and friends), so when the
// deadline fires — or the caller walks away — the solver goroutine
// stops within one benefit evaluation instead of running to
// completion; it holds its semaphore slot until it actually exits, so
// the MaxInflight bound on burning cores is real.
func (s *Server) compute(ctx context.Context, f func(context.Context) (any, error)) (any, error) {
	ctx, cancel := context.WithTimeout(ctx, s.cfg.Timeout)
	defer cancel()
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, context.Cause(ctx)
	}
	type outcome struct {
		v   any
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		defer func() { <-s.sem }()
		v, err := f(ctx)
		ch <- outcome{v, err}
	}()
	select {
	case <-ctx.Done():
		return nil, context.Cause(ctx)
	case o := <-ch:
		return o.v, o.err
	}
}

// cacheKey derives the canonical hash of one decoded request. Struct
// fields marshal in declaration order and map keys sort, so any two
// requests with equal content share a key; the endpoint name salts the
// hash across handlers, and dataset IDs are content-addressed, so a key
// never aliases different problems.
func cacheKey(endpoint string, req any) (string, error) {
	canonical, err := json.Marshal(req)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	h.Write([]byte(endpoint))
	h.Write([]byte{0})
	h.Write(canonical)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// statusRecorder captures the response status and size for access logs.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (r *statusRecorder) WriteHeader(status int) {
	r.status = status
	r.ResponseWriter.WriteHeader(status)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	n, err := r.ResponseWriter.Write(b)
	r.bytes += n
	return n, err
}

// accessLog wraps next with request counting and structured access
// logging: method, path, status, latency, response size, cache status.
func (s *Server) accessLog(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		rec := &statusRecorder{ResponseWriter: w}
		begin := time.Now()
		next.ServeHTTP(rec, r)
		status := rec.status
		if status == 0 {
			status = http.StatusOK
		}
		attrs := []any{
			"method", r.Method,
			"path", r.URL.Path,
			"status", status,
			"dur_ms", float64(time.Since(begin).Microseconds()) / 1000,
			"bytes", rec.bytes,
			"remote", r.RemoteAddr,
		}
		if cache := rec.Header().Get("X-Cache"); cache != "" {
			attrs = append(attrs, "cache", cache)
		}
		s.log.Info("request", attrs...)
	})
}
