// Package server implements the cleanseld HTTP/JSON service: a serving
// layer over cleansel.Select, cleansel.RankObjects, cleansel.AssessClaim,
// and the bulk cleansel.TriageContext.
//
// Endpoints:
//
//	POST /v1/datasets      upload a dataset once, get a content-addressed ID
//	GET  /v1/datasets/{id} dataset metadata
//	POST /v1/select        solve a selection task (inline objects or dataset_id)
//	POST /v1/rank          standalone benefit ranking of every object
//	POST /v1/assess        claim-quality report (bias/duplicity/fragility)
//	POST /v1/triage        bulk assessment: many claims over one dataset, ranked
//	POST /v1/sessions      open an interactive cleaning session (adaptive loop)
//	GET  /v1/sessions/{id} current session state and recommendation
//	POST /v1/sessions/{id}/clean  report one cleaned value, advance the session
//	DELETE /v1/sessions/{id}      end a session early
//	GET  /healthz          liveness, uptime, and cache/store/session statistics
//
// See docs/API.md for the full wire contract of every endpoint.
//
// Successful select/rank/assess/triage responses are cached in an LRU
// keyed on a canonical request hash, so repeated identical requests (the
// common pattern when many checkers inspect one viral claim) are served
// without recomputation; the X-Cache response header reports hit or miss.
// Requests are bounded by a per-request timeout and a maximum body size,
// and every request is access-logged through log/slog with latency and
// cache-status fields.
//
// By default all state is in-memory. Config.DataDir makes the dataset
// store disk-backed (content-hash-named files, atomic writes, lazy
// reload after restart) and Config.CacheSnapshot gives the result
// cache periodic checksummed snapshots restored on startup; see
// internal/server/persist. /healthz then reports a "persist" block
// (datasets_on_disk, snapshot_age_seconds, load_errors).
package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/factcheck/cleansel/internal/obs"
	"github.com/factcheck/cleansel/internal/server/persist"
	"github.com/factcheck/cleansel/internal/session"
)

// Config tunes a Server. The zero value gets sensible defaults.
type Config struct {
	// Logger receives access and error logs; nil discards them.
	Logger *slog.Logger
	// Timeout bounds each request's compute time (default 30s).
	Timeout time.Duration
	// CacheSize is the result-cache capacity in entries (default 1024;
	// negative disables caching).
	CacheSize int
	// CacheBytes bounds the result cache's total encoded-response size
	// in bytes (0 = unbounded by size).
	CacheBytes int64
	// MaxDatasets bounds the dataset store (default 64).
	MaxDatasets int
	// MaxDatasetBytes bounds the dataset store's total approximate size
	// in bytes, measured on the canonical upload encoding (0 =
	// unbounded by size).
	MaxDatasetBytes int64
	// MaxBodyBytes bounds request bodies (default 8 MiB).
	MaxBodyBytes int64
	// MaxInflight caps concurrently running solver goroutines (default
	// GOMAXPROCS). Timed-out solves are cancelled through their
	// context, and identical in-flight requests coalesce into one
	// solve; the cap keeps a burst of distinct expensive requests from
	// starving the daemon.
	MaxInflight int
	// DataDir, when non-empty, makes the dataset store disk-backed:
	// uploads are atomically written as content-hash-named files under
	// DataDir/datasets, reloaded lazily after a restart, with
	// MaxDatasets/MaxDatasetBytes enforced against the on-disk index.
	// Empty (the default) keeps the store in-memory only.
	DataDir string
	// CacheSnapshot, when non-empty, is the file the result cache is
	// periodically snapshotted to, restored from on startup, and
	// finally flushed to on Close. Empty disables snapshots.
	CacheSnapshot string
	// CacheSnapshotEvery is the period between cache snapshots when
	// CacheSnapshot is set (default 1m).
	CacheSnapshotEvery time.Duration
	// SessionTTL is how long an idle interactive session survives
	// before expiring (default 30m; negative disables expiry).
	SessionTTL time.Duration
	// SessionCap bounds concurrently live sessions; the least recently
	// used is evicted at the cap (default 256).
	SessionCap int
	// SessionSnapshot, when non-empty, is the file live sessions are
	// snapshotted to on every mutation and restored from on startup, so
	// interactive episodes survive a daemon restart. Empty keeps
	// sessions in-memory only.
	SessionSnapshot string
	// Clock supplies wall time for uptime, request latency, snapshot
	// ages, session TTLs, and per-request trace recorders; nil uses the
	// system clock. The serving layer is where wall time enters the
	// system: the engines below never read a clock (the cleansel-lint
	// walltime contract) — they only tick the obs.Recorder this clock
	// feeds.
	Clock obs.Clock
}

func (c Config) withDefaults() Config {
	if c.Logger == nil {
		c.Logger = slog.New(slog.DiscardHandler)
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	if c.CacheSize == 0 {
		c.CacheSize = 1024
	}
	if c.MaxDatasets <= 0 {
		c.MaxDatasets = 64
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = runtime.GOMAXPROCS(0)
	}
	if c.CacheSnapshotEvery <= 0 {
		c.CacheSnapshotEvery = time.Minute
	}
	if c.Clock == nil {
		c.Clock = obs.SystemClock
	}
	return c
}

// Server is the cleanseld request handler.
type Server struct {
	cfg     Config
	log     *slog.Logger
	clock   obs.Clock
	store   *datasetStore
	results *lru[[]byte]
	flights *flightGroup  // coalesces identical in-flight solves
	sem     chan struct{} // counting semaphore over solver goroutines
	start   time.Time
	met     *serverMetrics // the /metrics surface; also feeds /healthz

	// sessions holds the interactive cleaning episodes (the served
	// adaptive loop); see internal/session.
	sessions *session.Manager

	// Durable-state machinery; zero/nil when the server is in-memory
	// only (the default).
	disk           *persist.DatasetDir
	snapPath       string
	snapLoadErrors atomic.Uint64 // unusable snapshots detected at startup
	lastSnap       atomic.Int64  // unix seconds of the newest good snapshot
	lastSnapGen    atomic.Uint64 // results.Gen() captured by the newest snapshot
	stopSnap       chan struct{}
	snapDone       chan struct{}
	closeOnce      sync.Once
}

// New builds a Server from cfg. It fails only when durable state is
// requested and its directory cannot be prepared; damaged state found
// there (corrupt datasets, an unreadable snapshot) is logged, counted,
// and skipped rather than refusing to serve.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		log:     cfg.Logger,
		clock:   cfg.Clock,
		results: newLRU[[]byte](cfg.CacheSize, cfg.CacheBytes),
		sem:     make(chan struct{}, cfg.MaxInflight),
	}
	s.start = s.clock.Now()
	if cfg.DataDir != "" {
		disk, err := persist.OpenDatasets(filepath.Join(cfg.DataDir, "datasets"),
			cfg.MaxDatasets, cfg.MaxDatasetBytes, cfg.Logger)
		if err != nil {
			return nil, err
		}
		s.disk = disk
	}
	s.store = newDatasetStore(cfg.MaxDatasets, cfg.MaxDatasetBytes, s.disk)
	if cfg.CacheSnapshot != "" {
		s.snapPath = cfg.CacheSnapshot
		s.restoreSnapshot()
		s.stopSnap = make(chan struct{})
		s.snapDone = make(chan struct{})
		go s.snapshotLoop(cfg.CacheSnapshotEvery)
	}
	// Sessions come after the store (their restore path resolves
	// datasets through it) and before metrics (whose gauges read the
	// manager's counters).
	sessions, err := session.NewManager(session.Config{
		Clock:        cfg.Clock,
		TTL:          cfg.SessionTTL,
		Capacity:     cfg.SessionCap,
		SnapshotPath: cfg.SessionSnapshot,
		Rebuild:      s.rebuildSession,
		Logger:       cfg.Logger,
	})
	if err != nil {
		return nil, err
	}
	s.sessions = sessions
	// Metrics come last so gauges close over fully constructed state;
	// the flight group takes its coalesced counter from the registry.
	s.met = newServerMetrics(s)
	s.flights = newFlightGroupCounting(s.met.coalesced)
	return s, nil
}

// restoreSnapshot refills the result cache from the snapshot file, if
// any. A damaged snapshot is logged and counted, and the cache starts
// cold — a restart must never crash or serve a partial restore.
func (s *Server) restoreSnapshot() {
	entries, err := persist.ReadSnapshot(s.snapPath)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return // first boot: nothing to restore
		}
		s.snapLoadErrors.Add(1)
		s.log.Warn("cache snapshot unusable, starting cold", "path", s.snapPath, "err", err)
		return
	}
	for _, e := range entries {
		s.results.Put(e.Key, e.Value, int64(len(e.Value)))
	}
	if info, err := os.Stat(s.snapPath); err == nil {
		s.lastSnap.Store(info.ModTime().Unix())
	}
	// The on-disk snapshot already matches this state; don't rewrite it
	// until the cache actually changes again.
	s.lastSnapGen.Store(s.results.Gen())
	s.log.Info("restored cache snapshot", "path", s.snapPath, "entries", len(entries))
}

// writeSnapshot dumps the result cache to the snapshot file, skipping
// the write when the cache content is unchanged since the last
// snapshot (an idle daemon must not rewrite a large snapshot forever).
func (s *Server) writeSnapshot() {
	gen := s.results.Gen()
	if gen == s.lastSnapGen.Load() && s.lastSnap.Load() > 0 {
		return
	}
	var entries []persist.Entry
	s.results.Each(func(key string, val []byte, size int64) {
		entries = append(entries, persist.Entry{Key: key, Value: val})
	})
	if err := persist.WriteSnapshot(s.snapPath, entries); err != nil {
		s.log.Error("writing cache snapshot", "path", s.snapPath, "err", err)
		return
	}
	s.lastSnap.Store(s.clock.Now().Unix())
	s.lastSnapGen.Store(gen)
}

// snapshotLoop periodically snapshots the result cache until Close.
func (s *Server) snapshotLoop(every time.Duration) {
	defer close(s.snapDone)
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			s.writeSnapshot()
		case <-s.stopSnap:
			return
		}
	}
}

// Close stops the snapshot loop and writes final cache and session
// snapshots, so a graceful shutdown preserves the whole warm cache and
// every live episode. It is idempotent and cheap for in-memory-only
// servers.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		if s.stopSnap != nil {
			close(s.stopSnap)
			<-s.snapDone
			s.writeSnapshot()
		}
		s.sessions.Close()
	})
}

// persistLoadErrors counts unusable files detected in the durable
// state: corrupt dataset files plus unreadable cache snapshots. Both
// /healthz and the cleanseld_persist_load_errors gauge read it.
func (s *Server) persistLoadErrors() uint64 {
	n := s.snapLoadErrors.Load()
	if s.disk != nil {
		n += s.disk.LoadErrors()
	}
	return n
}

// snapshotAge returns seconds since the newest good cache snapshot,
// or -1 before the first.
func (s *Server) snapshotAge() int64 {
	t := s.lastSnap.Load()
	if t <= 0 {
		return -1
	}
	return max(0, int64(s.clock.Now().Sub(time.Unix(t, 0)).Seconds()))
}

// persistStats summarizes the durable-state layer for /healthz; nil
// when the server is in-memory only (the default).
func (s *Server) persistStats() map[string]any {
	if s.disk == nil && s.snapPath == "" {
		return nil
	}
	var onDisk int
	var diskBytes int64
	if s.disk != nil {
		onDisk, diskBytes = s.disk.Len(), s.disk.Bytes()
	}
	return map[string]any{
		"datasets_on_disk":     onDisk,
		"dataset_disk_bytes":   diskBytes,
		"snapshot_age_seconds": s.snapshotAge(),
		"load_errors":          s.persistLoadErrors(),
	}
}

// Handler returns the routed, logged HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/datasets", s.handleDatasetUpload)
	mux.HandleFunc("GET /v1/datasets/{id}", s.handleDatasetGet)
	mux.HandleFunc("POST /v1/select", s.handleSelect)
	mux.HandleFunc("POST /v1/rank", s.handleRank)
	mux.HandleFunc("POST /v1/assess", s.handleAssess)
	mux.HandleFunc("POST /v1/triage", s.handleTriage)
	mux.HandleFunc("POST /v1/sessions", s.handleSessionCreate)
	mux.HandleFunc("GET /v1/sessions/{id}", s.handleSessionGet)
	mux.HandleFunc("POST /v1/sessions/{id}/clean", s.handleSessionClean)
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleSessionDelete)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.Handle("GET /metrics", s.met.registry)
	return s.accessLog(mux)
}

// apiError is a structured, serializable request failure. RequestID is
// stamped by writeError from the response's X-Request-ID header, so a
// client error report can be matched to the daemon's access log line.
type apiError struct {
	Status    int    `json:"-"`
	Code      string `json:"code"`
	Message   string `json:"message"`
	RequestID string `json:"request_id,omitempty"`
}

func (e *apiError) Error() string { return e.Message }

func badRequest(err error) *apiError {
	return &apiError{Status: http.StatusBadRequest, Code: "bad_request", Message: err.Error()}
}

func notFound(msg string) *apiError {
	return &apiError{Status: http.StatusNotFound, Code: "not_found", Message: msg}
}

// writeError encodes err as the structured error JSON, classifying
// non-apiError values on the way: body-limit violations map to 413,
// timeouts to 504, everything else to a 400 (the compute layer only
// fails on invalid problem specifications).
func (s *Server) writeError(w http.ResponseWriter, err error) {
	var ae *apiError
	if !errors.As(err, &ae) {
		switch {
		case isBodyLimit(err):
			ae = &apiError{Status: http.StatusRequestEntityTooLarge, Code: "payload_too_large",
				Message: fmt.Sprintf("request body exceeds %d bytes", s.cfg.MaxBodyBytes)}
		case errors.Is(err, context.DeadlineExceeded):
			ae = &apiError{Status: http.StatusGatewayTimeout, Code: "timeout",
				Message: fmt.Sprintf("request exceeded the %s compute budget", s.cfg.Timeout)}
		default:
			ae = badRequest(err)
		}
	}
	// Copy before stamping the request ID: a coalesced solve hands the
	// same error value to every waiter, and each response has its own ID.
	env := *ae
	env.RequestID = w.Header().Get("X-Request-ID")
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(ae.Status)
	if encErr := json.NewEncoder(w).Encode(map[string]*apiError{"error": &env}); encErr != nil {
		s.log.Error("encoding error response", "err", encErr)
	}
}

// isBodyLimit reports whether err came from http.MaxBytesReader (the
// wire decoder wraps it, so unwrap through the chain).
func isBodyLimit(err error) bool {
	var mbe *http.MaxBytesError
	return errors.As(err, &mbe)
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.log.Error("encoding response", "err", err)
	}
}

// compute runs f under the server's per-request timeout and in-flight
// cap, passing f the bounded context. The solvers cooperate with
// cancellation (cleansel.SelectContext and friends), so when the
// deadline fires — or the caller walks away — the solver goroutine
// stops within one benefit evaluation instead of running to
// completion; it holds its semaphore slot until it actually exits, so
// the MaxInflight bound on burning cores is real.
func (s *Server) compute(ctx context.Context, f func(context.Context) (any, error)) (any, error) {
	ctx, cancel := context.WithTimeout(ctx, s.cfg.Timeout)
	defer cancel()
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, context.Cause(ctx)
	}
	type outcome struct {
		v   any
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		defer func() { <-s.sem }()
		v, err := f(ctx)
		ch <- outcome{v, err}
	}()
	select {
	case <-ctx.Done():
		return nil, context.Cause(ctx)
	case o := <-ch:
		return o.v, o.err
	}
}

// cacheKey derives the canonical hash of one decoded request. Struct
// fields marshal in declaration order and map keys sort, so any two
// requests with equal content share a key; the endpoint name salts the
// hash across handlers, and dataset IDs are content-addressed, so a key
// never aliases different problems.
func cacheKey(endpoint string, req any) (string, error) {
	canonical, err := json.Marshal(req)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	h.Write([]byte(endpoint))
	h.Write([]byte{0})
	h.Write(canonical)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// statusRecorder captures the response status and size for access logs.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (r *statusRecorder) WriteHeader(status int) {
	r.status = status
	r.ResponseWriter.WriteHeader(status)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	n, err := r.ResponseWriter.Write(b)
	r.bytes += n
	return n, err
}

// accessLog wraps next with the per-request observability plumbing:
// it assigns or propagates the X-Request-ID, attaches a fresh
// obs.Recorder to the context for the solve stages to tick, records
// the request into the metrics (endpoint/status counters and the
// latency histogram), and emits one structured access-log line with
// request ID, cache status, and the trace's stage/op totals.
func (s *Server) accessLog(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reqID := r.Header.Get("X-Request-ID")
		if !obs.ValidRequestID(reqID) {
			reqID = obs.NewRequestID()
		}
		w.Header().Set("X-Request-ID", reqID)
		trace := obs.NewRecorder(s.clock)
		ctx := obs.WithRecorder(obs.WithRequestID(r.Context(), reqID), trace)
		r = r.WithContext(ctx)

		s.met.inflight.Add(1)
		rec := &statusRecorder{ResponseWriter: w}
		begin := s.clock.Now()
		next.ServeHTTP(rec, r)
		elapsed := s.clock.Now().Sub(begin)
		status := rec.status
		if status == 0 {
			status = http.StatusOK
		}
		// Count the completed request before dropping in-flight so the
		// requests-seen view (/healthz) never moves backwards.
		s.met.observeRequest(endpointOf(r.URL.Path), strconv.Itoa(status), elapsed)
		s.met.inflight.Add(-1)
		tr := trace.Snapshot()
		s.met.absorb(tr)

		attrs := []any{
			"method", r.Method,
			"path", r.URL.Path,
			"status", status,
			"dur_ms", float64(elapsed.Microseconds()) / 1000,
			"bytes", rec.bytes,
			"remote", r.RemoteAddr,
			"request_id", reqID,
		}
		if cache := rec.Header().Get("X-Cache"); cache != "" {
			attrs = append(attrs, "cache", cache)
		}
		if len(tr.Stages) > 0 {
			attrs = append(attrs, tr.StageAttrs())
		}
		if len(tr.Counters) > 0 {
			attrs = append(attrs, tr.CounterAttrs())
		}
		s.log.Info("request", attrs...)
	})
}
