package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/factcheck/cleansel/internal/obs"
)

// sessionBody builds a session create request over the quickstart
// objects.
func sessionBody(goal string, tau, budget float64) string {
	return fmt.Sprintf(`{`+inlineObjects+problemBody+`,
  "goal": %q,
  "tau": %v,
  "budget": %v
}`, goal, tau, budget)
}

// sessionState decodes a session response body.
func sessionState(t *testing.T, body []byte) map[string]any {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("invalid session state %q: %v", body, err)
	}
	if _, ok := m["id"].(string); !ok {
		t.Fatalf("session state without id: %s", body)
	}
	return m
}

func cleanBody(step int, object int, value float64) string {
	return fmt.Sprintf(`{"step": %d, "object": %d, "value": %v}`, step, object, value)
}

// TestSessionEpisodeHTTP drives one full adaptive episode over HTTP:
// create, follow each recommendation, report the revealed value, repeat
// to a terminal state — the served counterpart of AdaptiveMaxPr.Run.
func TestSessionEpisodeHTTP(t *testing.T) {
	h := newTestServer(Config{})
	rec := do(t, h, "POST", "/v1/sessions", sessionBody("maxpr", 1, 3))
	if rec.Code != http.StatusOK {
		t.Fatalf("create: status %d: %s", rec.Code, rec.Body.String())
	}
	st := sessionState(t, rec.Body.Bytes())
	id := st["id"].(string)
	if st["status"] != "active" || st["steps"].(float64) != 0 || st["goal"] != "maxpr" {
		t.Fatalf("fresh session %v", st)
	}
	if st["recommendation"] == nil {
		t.Fatalf("active session without recommendation: %v", st)
	}

	// Follow the recommendations, revealing each object's current value
	// (nothing surprising ever happens, so the episode must end
	// exhausted, not countered).
	currents := []float64{100, 120, 140}
	for step := 0; st["status"] == "active"; step++ {
		if step > 3 {
			t.Fatal("episode did not terminate within the budget")
		}
		r := st["recommendation"].(map[string]any)
		obj := int(r["object"].(float64))
		rec = do(t, h, "POST", "/v1/sessions/"+id+"/clean", cleanBody(step, obj, currents[obj]))
		if rec.Code != http.StatusOK {
			t.Fatalf("clean step %d: status %d: %s", step, rec.Code, rec.Body.String())
		}
		st = sessionState(t, rec.Body.Bytes())
		if got := int(st["steps"].(float64)); got != step+1 {
			t.Fatalf("steps %d after clean %d", got, step)
		}
		if len(st["cleaned"].([]any)) != step+1 {
			t.Fatalf("cleaned log %v after step %d", st["cleaned"], step)
		}
	}
	if st["status"] != "exhausted" {
		t.Fatalf("final status %v, want exhausted", st["status"])
	}
	if st["recommendation"] != nil {
		t.Fatalf("terminal session still recommends: %v", st)
	}
	if spent := st["spent"].(float64); spent > 3 {
		t.Fatalf("spent %v over budget 3", spent)
	}
	// GET returns the same terminal state.
	rec = do(t, h, "GET", "/v1/sessions/"+id, "")
	if rec.Code != http.StatusOK {
		t.Fatalf("get: status %d", rec.Code)
	}
	got := sessionState(t, rec.Body.Bytes())
	if !reflect.DeepEqual(got, st) {
		t.Fatalf("GET state %v != clean state %v", got, st)
	}
	// DELETE ends it; a later GET is a 404.
	rec = do(t, h, "DELETE", "/v1/sessions/"+id, "")
	if rec.Code != http.StatusOK {
		t.Fatalf("delete: status %d", rec.Code)
	}
	wantError(t, do(t, h, "GET", "/v1/sessions/"+id, ""), http.StatusNotFound, "not_found")
}

// TestSessionCounteredHTTP reveals a shocking value and watches the
// MaxPr session terminate with its counterargument.
func TestSessionCounteredHTTP(t *testing.T) {
	h := newTestServer(Config{})
	rec := do(t, h, "POST", "/v1/sessions", sessionBody("maxpr", 1, 3))
	st := sessionState(t, rec.Body.Bytes())
	id := st["id"].(string)
	r := st["recommendation"].(map[string]any)
	obj := int(r["object"].(float64))
	// Reveal the support value that drops the claim measure the most.
	// The quickstart bias is −x_jan/2 + x_mar/2, so jan surprises high
	// (105) and mar surprises low (130), both dropping it by > τ = 1.
	extremes := []float64{105, 120, 130}
	rec = do(t, h, "POST", "/v1/sessions/"+id+"/clean", cleanBody(0, obj, extremes[obj]))
	if rec.Code != http.StatusOK {
		t.Fatalf("clean: status %d: %s", rec.Code, rec.Body.String())
	}
	st = sessionState(t, rec.Body.Bytes())
	if st["status"] != "countered" {
		t.Fatalf("status %v after extreme reveal, want countered (achieved %v)", st["status"], st["achieved"])
	}
	if st["achieved"].(float64) <= 1 {
		t.Fatalf("achieved %v, want > tau", st["achieved"])
	}
	// A terminal session refuses further cleans with 409.
	wantError(t, do(t, h, "POST", "/v1/sessions/"+id+"/clean", cleanBody(1, (obj+1)%3, 100)),
		http.StatusConflict, "conflict")
}

func TestSessionStepConflicts(t *testing.T) {
	h := newTestServer(Config{})
	rec := do(t, h, "POST", "/v1/sessions", sessionBody("minvar", 0, 3))
	st := sessionState(t, rec.Body.Bytes())
	id := st["id"].(string)
	obj := int(st["recommendation"].(map[string]any)["object"].(float64))
	// Out-of-order: the session has not issued step 2 yet.
	wantError(t, do(t, h, "POST", "/v1/sessions/"+id+"/clean", cleanBody(2, obj, 100)),
		http.StatusConflict, "conflict")
	if rec = do(t, h, "POST", "/v1/sessions/"+id+"/clean", cleanBody(0, obj, 100)); rec.Code != http.StatusOK {
		t.Fatalf("clean: %d: %s", rec.Code, rec.Body.String())
	}
	// Duplicate delivery of the same report: refused, state unchanged.
	wantError(t, do(t, h, "POST", "/v1/sessions/"+id+"/clean", cleanBody(0, obj, 100)),
		http.StatusConflict, "conflict")
	after := sessionState(t, do(t, h, "GET", "/v1/sessions/"+id, "").Body.Bytes())
	if after["steps"].(float64) != 1 {
		t.Fatalf("duplicate clean advanced the session: %v", after)
	}
	// Re-cleaning an already-cleaned object at the right step: 409 too.
	wantError(t, do(t, h, "POST", "/v1/sessions/"+id+"/clean", cleanBody(1, obj, 100)),
		http.StatusConflict, "conflict")
}

func TestSessionExpiryHTTP(t *testing.T) {
	clock := obs.NewFakeClock(time.Unix(1_700_000_000, 0))
	h := newTestServer(Config{Clock: clock, SessionTTL: time.Minute})
	rec := do(t, h, "POST", "/v1/sessions", sessionBody("minvar", 0, 3))
	id := sessionState(t, rec.Body.Bytes())["id"].(string)
	clock.Advance(2 * time.Minute)
	wantError(t, do(t, h, "GET", "/v1/sessions/"+id, ""), http.StatusGone, "expired")
	wantError(t, do(t, h, "GET", "/v1/sessions/s_0123456789abcdef", ""), http.StatusNotFound, "not_found")
}

func TestSessionBadRequests(t *testing.T) {
	h := newTestServer(Config{})
	wantError(t, do(t, h, "POST", "/v1/sessions", `{"goal": "bogus"}`), http.StatusBadRequest, "bad_request")
	wantError(t, do(t, h, "POST", "/v1/sessions", sessionBody("minvar", 0, -1)), http.StatusBadRequest, "bad_request")
	wantError(t, do(t, h, "POST", "/v1/sessions", `not json`), http.StatusBadRequest, "bad_request")
	rec := do(t, h, "POST", "/v1/sessions", sessionBody("minvar", 0, 3))
	id := sessionState(t, rec.Body.Bytes())["id"].(string)
	wantError(t, do(t, h, "POST", "/v1/sessions/"+id+"/clean", `{"step": 0, "object": 99, "value": 1}`),
		http.StatusBadRequest, "bad_request")
	wantError(t, do(t, h, "POST", "/v1/sessions/"+id+"/clean", `{"step": 0, "object": 0, "value": "x"}`),
		http.StatusBadRequest, "bad_request")
}

// TestSessionTraceCounters asserts the acceptance criterion that
// incremental conditioning is observable: a traced clean carries the
// session_conditioned and session_step_evals engine counters.
func TestSessionTraceCounters(t *testing.T) {
	h := newTestServer(Config{})
	rec := do(t, h, "POST", "/v1/sessions", sessionBody("maxpr", 1, 3))
	st := sessionState(t, rec.Body.Bytes())
	id := st["id"].(string)
	obj := int(st["recommendation"].(map[string]any)["object"].(float64))
	// Reveal the current value: nothing surprising, so the session stays
	// active and the next recommendation re-evaluates the remaining
	// candidates.
	currents := []float64{100, 120, 140}
	rec = do(t, h, "POST", "/v1/sessions/"+id+"/clean?trace=1", cleanBody(0, obj, currents[obj]))
	if rec.Code != http.StatusOK {
		t.Fatalf("traced clean: %d: %s", rec.Code, rec.Body.String())
	}
	env := decodeBody(t, rec)
	if env["cache"] != "none" {
		t.Fatalf("session responses must not be cached: %v", env["cache"])
	}
	if env["request_id"] == "" {
		t.Fatal("trace envelope without request_id")
	}
	trace := env["trace"].(map[string]any)
	counters := map[string]float64{}
	if cs, ok := trace["counters"].([]any); ok {
		for _, c := range cs {
			m := c.(map[string]any)
			counters[m["name"].(string)] = m["value"].(float64)
		}
	}
	if counters["session_conditioned"] != 1 {
		t.Fatalf("session_conditioned = %v, want 1 (counters: %v)", counters["session_conditioned"], counters)
	}
	// The post-clean recommendation re-evaluates the remaining
	// candidates (one eval per uncleaned object, none re-compiled).
	if counters["session_step_evals"] < 2 {
		t.Fatalf("session_step_evals = %v, want >= 2", counters["session_step_evals"])
	}
	if _, ok := env["result"].(map[string]any); !ok {
		t.Fatalf("trace envelope without result: %v", env)
	}
}

// TestSessionWorkerBitIdentity asserts recommendations are bit-identical
// across solver-pool widths and engine worker counts: the session path
// is strictly sequential, so parallelism knobs must not change a byte.
func TestSessionWorkerBitIdentity(t *testing.T) {
	states := make([]map[string]any, 0, 2)
	for i, workers := range []string{"1", "8"} {
		t.Setenv("CLEANSEL_WORKERS", workers)
		h := newTestServer(Config{MaxInflight: 1 + 7*i})
		rec := do(t, h, "POST", "/v1/sessions", sessionBody("maxpr", 1, 3))
		if rec.Code != http.StatusOK {
			t.Fatalf("create: %d: %s", rec.Code, rec.Body.String())
		}
		st := sessionState(t, rec.Body.Bytes())
		id := st["id"].(string)
		obj := int(st["recommendation"].(map[string]any)["object"].(float64))
		after := sessionState(t, do(t, h, "POST", "/v1/sessions/"+id+"/clean", cleanBody(0, obj, 120)).Body.Bytes())
		// IDs are random per session; everything else must match exactly.
		delete(st, "id")
		delete(after, "id")
		states = append(states, map[string]any{"create": st, "clean": after})
	}
	if !reflect.DeepEqual(states[0], states[1]) {
		t.Fatalf("session state depends on worker count:\n1 worker: %v\n8 workers: %v", states[0], states[1])
	}
}

// TestSessionRestartRecovery runs an episode halfway, restarts the
// daemon on the same snapshot, and continues it.
func TestSessionRestartRecovery(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "sessions.snap")
	cfg := Config{SessionSnapshot: snap}
	s := mustNew(t, cfg)
	h := s.Handler()
	rec := do(t, h, "POST", "/v1/sessions", sessionBody("minvar", 0, 3))
	st := sessionState(t, rec.Body.Bytes())
	id := st["id"].(string)
	obj := int(st["recommendation"].(map[string]any)["object"].(float64))
	before := sessionState(t, do(t, h, "POST", "/v1/sessions/"+id+"/clean", cleanBody(0, obj, 100)).Body.Bytes())
	s.Close()

	s2 := mustNew(t, cfg)
	h2 := s2.Handler()
	rec = do(t, h2, "GET", "/v1/sessions/"+id, "")
	if rec.Code != http.StatusOK {
		t.Fatalf("session lost across restart: %d: %s", rec.Code, rec.Body.String())
	}
	after := sessionState(t, rec.Body.Bytes())
	if !reflect.DeepEqual(after, before) {
		t.Fatalf("replayed state drifted:\nbefore %v\nafter  %v", before, after)
	}
	// healthz reports the recovery.
	health := decodeBody(t, do(t, h2, "GET", "/healthz", ""))
	sess := health["sessions"].(map[string]any)
	if sess["restored"].(float64) != 1 || sess["active"].(float64) != 1 {
		t.Fatalf("healthz sessions %v", sess)
	}
	// The episode continues: next step is 1.
	next := int(after["recommendation"].(map[string]any)["object"].(float64))
	rec = do(t, h2, "POST", "/v1/sessions/"+id+"/clean", cleanBody(1, next, 120))
	if rec.Code != http.StatusOK {
		t.Fatalf("continuing replayed session: %d: %s", rec.Code, rec.Body.String())
	}
}

func TestSessionMetricsSurface(t *testing.T) {
	h := newTestServer(Config{})
	rec := do(t, h, "POST", "/v1/sessions", sessionBody("minvar", 0, 3))
	if rec.Code != http.StatusOK {
		t.Fatalf("create: %d", rec.Code)
	}
	body := do(t, h, "GET", "/metrics", "").Body.String()
	for _, want := range []string{
		`cleanseld_sessions_total{event="created"} 1`,
		"cleanseld_sessions_active 1",
		`cleanseld_requests_total{endpoint="sessions",code="200"}`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
	health := decodeBody(t, do(t, h, "GET", "/healthz", ""))
	sess, ok := health["sessions"].(map[string]any)
	if !ok {
		t.Fatalf("healthz without sessions block: %v", health)
	}
	if sess["created"].(float64) != 1 || sess["active"].(float64) != 1 {
		t.Fatalf("healthz sessions %v", sess)
	}
}
