package server

import (
	"container/list"
	"sync"

	"github.com/factcheck/cleansel/internal/obs"
)

// lru is a mutex-guarded least-recently-used map bounded by an entry
// count and, optionally, a total size in bytes. It backs both the
// result cache (canonical request hash → encoded response, sized by
// the encoded body) and the dataset store (content hash → compiled
// database, sized by the canonical upload encoding) — so a few huge
// entries can no longer dominate memory while the entry count stays
// low.
type lru[V any] struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64
	bytes      int64
	gen        uint64 // bumped on every content change (insert/update/evict)
	ll         *list.List
	items      map[string]*list.Element

	// Hit/miss counts live in obs.Counters so the same objects can be
	// registered on /metrics: the JSON stats view and the Prometheus
	// scrape then read one source and can never disagree. newLRU
	// allocates standalone counters; instrument swaps in registered
	// ones before the cache serves traffic.
	hits, misses *obs.Counter
}

type lruEntry[V any] struct {
	key  string
	val  V
	size int64
}

// newLRU builds a cache holding at most maxEntries entries (0 means
// unbounded by count) totalling at most maxBytes (0 means unbounded by
// size). maxEntries < 0 disables the cache: every Get misses and every
// Put is dropped.
func newLRU[V any](maxEntries int, maxBytes int64) *lru[V] {
	return &lru[V]{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		ll:         list.New(),
		items:      make(map[string]*list.Element),
		hits:       &obs.Counter{},
		misses:     &obs.Counter{},
	}
}

// instrument replaces the hit/miss counters with registered ones. Call
// before the cache serves traffic (counts already accumulated on the
// standalone counters are not carried over).
func (c *lru[V]) instrument(hits, misses *obs.Counter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hits, c.misses = hits, misses
}

// Get returns the cached value and marks it most recently used.
func (c *lru[V]) Get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits.Inc()
		return el.Value.(*lruEntry[V]).val, true
	}
	c.misses.Inc()
	var zero V
	return zero, false
}

// Put inserts or refreshes a value of the given approximate size,
// evicting least-recently-used entries while either bound is
// exceeded. An entry larger than maxBytes on its own is rejected up
// front — without touching the resident entries, which would
// otherwise all be flushed making room for something that can never
// fit (any stale entry under the same key is dropped, not kept).
func (c *lru[V]) Put(key string, val V, size int64) {
	if c.maxEntries < 0 {
		return
	}
	if size < 0 {
		size = 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gen++
	if c.maxBytes > 0 && size > c.maxBytes {
		if el, ok := c.items[key]; ok {
			e := el.Value.(*lruEntry[V])
			c.ll.Remove(el)
			delete(c.items, e.key)
			c.bytes -= e.size
		}
		return
	}
	if el, ok := c.items[key]; ok {
		e := el.Value.(*lruEntry[V])
		c.bytes += size - e.size
		e.val, e.size = val, size
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&lruEntry[V]{key: key, val: val, size: size})
		c.bytes += size
	}
	for c.ll.Len() > 0 &&
		((c.maxEntries > 0 && c.ll.Len() > c.maxEntries) ||
			(c.maxBytes > 0 && c.bytes > c.maxBytes)) {
		oldest := c.ll.Back()
		e := oldest.Value.(*lruEntry[V])
		c.ll.Remove(oldest)
		delete(c.items, e.key)
		c.bytes -= e.size
	}
}

// Each calls f on every entry from least to most recently used, under
// the lock. The cache snapshot uses it: re-inserting entries in this
// order through Put reproduces the recency order exactly.
func (c *lru[V]) Each(f func(key string, val V, size int64)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.ll.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*lruEntry[V])
		f(e.key, e.val, e.size)
	}
}

// Len returns the number of cached entries.
func (c *lru[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Bytes returns the total approximate size of the cached entries.
func (c *lru[V]) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Gen returns a counter that advances on every content change (any
// Put). Recency-only changes (Get) do not advance it: two equal Gen
// readings mean the cached keys and values are unchanged, which lets
// the snapshot loop skip rewriting an unchanged cache.
func (c *lru[V]) Gen() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gen
}

// Stats returns cumulative hit and miss counts.
func (c *lru[V]) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return uint64(c.hits.Value()), uint64(c.misses.Value())
}
