package server

import (
	"container/list"
	"sync"
)

// lru is a mutex-guarded least-recently-used map with a fixed capacity.
// It backs both the result cache (canonical request hash → encoded
// response) and the dataset store (content hash → compiled database).
type lru[V any] struct {
	mu    sync.Mutex
	max   int
	ll    *list.List
	items map[string]*list.Element

	hits, misses uint64
}

type lruEntry[V any] struct {
	key string
	val V
}

// newLRU builds a cache holding at most max entries; max <= 0 disables
// the cache (every Get misses, every Put is dropped).
func newLRU[V any](max int) *lru[V] {
	return &lru[V]{max: max, ll: list.New(), items: make(map[string]*list.Element)}
}

// Get returns the cached value and marks it most recently used.
func (c *lru[V]) Get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*lruEntry[V]).val, true
	}
	c.misses++
	var zero V
	return zero, false
}

// Put inserts or refreshes a value, evicting the least recently used
// entry when the cache is full.
func (c *lru[V]) Put(key string, val V) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry[V]).val = val
		c.ll.MoveToFront(el)
		return
	}
	for c.ll.Len() >= c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry[V]).key)
	}
	c.items[key] = c.ll.PushFront(&lruEntry[V]{key: key, val: val})
}

// Len returns the number of cached entries.
func (c *lru[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns cumulative hit and miss counts.
func (c *lru[V]) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
