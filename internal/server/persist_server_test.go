package server

import (
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/factcheck/cleansel/internal/server/persist"
	"github.com/factcheck/cleansel/internal/server/wire"
)

// durableConfig is the standard durable test setup: datasets under
// dir, cache snapshots beside them. The snapshot period is long so
// only Close-time snapshots happen deterministically.
func durableConfig(dir string) Config {
	return Config{
		DataDir:            dir,
		CacheSnapshot:      filepath.Join(dir, "cache.snap"),
		CacheSnapshotEvery: time.Hour,
	}
}

// uploadQuickstart uploads the shared test dataset and returns its id.
func uploadQuickstart(t *testing.T, h http.Handler) string {
	t.Helper()
	up := do(t, h, "POST", "/v1/datasets", datasetBody)
	if up.Code != http.StatusOK {
		t.Fatalf("upload status %d: %s", up.Code, up.Body.String())
	}
	id, _ := decodeBody(t, up)["id"].(string)
	if !strings.HasPrefix(id, "ds_") {
		t.Fatalf("bad dataset id %q", id)
	}
	return id
}

// persistBlock fetches /healthz and returns its persist stats.
func persistBlock(t *testing.T, h http.Handler) map[string]any {
	t.Helper()
	rec := do(t, h, "GET", "/healthz", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz status %d", rec.Code)
	}
	p, ok := decodeBody(t, rec)["persist"].(map[string]any)
	if !ok {
		t.Fatalf("healthz has no persist block: %s", rec.Body.String())
	}
	return p
}

// datasetFilePath locates the single on-disk dataset file.
func datasetFilePath(t *testing.T, dir string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "datasets", "ds_*.json"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("dataset files on disk = %v (err %v), want exactly one", matches, err)
	}
	return matches[0]
}

// TestDatasetAndCacheSurviveRestart is the acceptance path: upload →
// solve → shut down → restart on the same state → the dataset GET and
// the select both succeed, the select byte-identically and straight
// from the restored cache snapshot.
func TestDatasetAndCacheSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	s1 := mustNew(t, durableConfig(dir))
	h1 := s1.Handler()
	id := uploadQuickstart(t, h1)

	body := selectBody(`"dataset_id": "` + id + `",`)
	first := do(t, h1, "POST", "/v1/select", body)
	if first.Code != http.StatusOK {
		t.Fatalf("select status %d: %s", first.Code, first.Body.String())
	}
	p := persistBlock(t, h1)
	if p["datasets_on_disk"].(float64) != 1 || p["load_errors"].(float64) != 0 {
		t.Fatalf("persist stats before restart: %v", p)
	}
	s1.Close() // graceful shutdown: final snapshot

	// The durable layer must hold the canonical upload bytes exactly.
	disk, err := persist.OpenDatasets(filepath.Join(dir, "datasets"), 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, canonical, err := disk.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := wire.DecodeDataset(strings.NewReader(datasetBody))
	if err != nil {
		t.Fatal(err)
	}
	_, want, err := datasetID(ds.Objects)
	if err != nil {
		t.Fatal(err)
	}
	if string(canonical) != string(want) {
		t.Fatalf("on-disk canonical bytes differ from the upload:\n%s\nvs\n%s", canonical, want)
	}

	// "Restart": a fresh server over the same directory.
	s2 := mustNew(t, durableConfig(dir))
	h2 := s2.Handler()

	meta := do(t, h2, "GET", "/v1/datasets/"+id, "")
	if meta.Code != http.StatusOK {
		t.Fatalf("dataset lost across restart: %d %s", meta.Code, meta.Body.String())
	}
	m := decodeBody(t, meta)
	if m["name"] != "quickstart" || m["objects"].(float64) != 3 {
		t.Fatalf("restored metadata: %s", meta.Body.String())
	}

	again := do(t, h2, "POST", "/v1/select", body)
	if again.Code != http.StatusOK {
		t.Fatalf("select after restart: %d %s", again.Code, again.Body.String())
	}
	if got := again.Header().Get("X-Cache"); got != "hit" {
		t.Fatalf("X-Cache after restart = %q, want hit (snapshot restore)", got)
	}
	if again.Body.String() != first.Body.String() {
		t.Fatalf("answer changed across restart:\n%s\nvs\n%s", again.Body.String(), first.Body.String())
	}
	if p := persistBlock(t, h2); p["load_errors"].(float64) != 0 ||
		p["snapshot_age_seconds"].(float64) < 0 {
		t.Fatalf("persist stats after restart: %v", p)
	}
}

// TestDatasetEvictedFromMemoryReloadsFromDisk pins the lazy-reload
// path without a restart: an upload gone from the in-memory cache
// must still resolve through the on-disk copy.
func TestDatasetEvictedFromMemoryReloadsFromDisk(t *testing.T) {
	dir := t.TempDir()
	s := mustNew(t, durableConfig(dir))
	h := s.Handler()
	id := uploadQuickstart(t, h)

	// Drop the compiled record from memory, leaving only the file.
	s.store.cache = newLRU[*storedDataset](1, 0)

	rec := do(t, h, "GET", "/v1/datasets/"+id, "")
	if rec.Code != http.StatusOK {
		t.Fatalf("evicted dataset did not reload from disk: %d %s", rec.Code, rec.Body.String())
	}
	sel := do(t, h, "POST", "/v1/select", selectBody(`"dataset_id": "`+id+`",`))
	if sel.Code != http.StatusOK {
		t.Fatalf("select on reloaded dataset: %d %s", sel.Code, sel.Body.String())
	}
}

// TestCorruptDatasetFileIsSkippedAndCounted injects the crash shapes
// the recovery path must absorb: a truncated dataset file and one
// whose bytes no longer match the content-addressed name.
func TestCorruptDatasetFileIsSkippedAndCounted(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(t *testing.T, path string)
	}{
		{"truncated", func(t *testing.T, path string) {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"hash mismatch", func(t *testing.T, path string) {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			// Flip a digit inside the payload: still valid JSON, wrong
			// content for the name.
			mangled := strings.Replace(string(raw), `"current":100`, `"current":666`, 1)
			if mangled == string(raw) {
				t.Fatal("corruption did not apply")
			}
			if err := os.WriteFile(path, []byte(mangled), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			s1 := mustNew(t, durableConfig(dir))
			id := uploadQuickstart(t, s1.Handler())
			s1.Close()
			tc.corrupt(t, datasetFilePath(t, dir))

			s2 := mustNew(t, durableConfig(dir))
			h2 := s2.Handler()
			// Still serving; the bad dataset is a 404, not a crash or
			// wrong bytes.
			if rec := do(t, h2, "GET", "/v1/datasets/"+id, ""); rec.Code != http.StatusNotFound {
				t.Fatalf("corrupt dataset GET = %d, want 404", rec.Code)
			}
			wantError(t, do(t, h2, "POST", "/v1/select", selectBody(`"dataset_id": "`+id+`",`)),
				http.StatusNotFound, "not_found")
			if p := persistBlock(t, h2); p["load_errors"].(float64) != 1 {
				t.Fatalf("load_errors = %v, want 1", p["load_errors"])
			}
			// The damaged file is quarantined; a re-upload heals the id.
			if got := uploadQuickstart(t, h2); got != id {
				t.Fatalf("re-upload id %s, want %s", got, id)
			}
			if rec := do(t, h2, "GET", "/v1/datasets/"+id, ""); rec.Code != http.StatusOK {
				t.Fatalf("re-upload did not heal: %d", rec.Code)
			}
		})
	}
}

// TestLeftoverTempFileIsCountedOnStartup simulates a crash between
// temp write and rename.
func TestLeftoverTempFileIsCountedOnStartup(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "datasets"), 0o755); err != nil {
		t.Fatal(err)
	}
	partial := filepath.Join(dir, "datasets", ".tmp-crashed")
	if err := os.WriteFile(partial, []byte(`{"format":1,"objects":[tru`), 0o644); err != nil {
		t.Fatal(err)
	}
	s := mustNew(t, durableConfig(dir))
	if p := persistBlock(t, s.Handler()); p["load_errors"].(float64) != 1 ||
		p["datasets_on_disk"].(float64) != 0 {
		t.Fatalf("persist stats: %v", p)
	}
	if _, err := os.Stat(partial); !os.IsNotExist(err) {
		t.Fatalf("partial temp file survived startup: %v", err)
	}
}

// TestTruncatedSnapshotStartsCold pins the snapshot recovery contract:
// a damaged snapshot is counted and skipped, and the server starts
// with a cold — not partially restored — cache.
func TestTruncatedSnapshotStartsCold(t *testing.T) {
	dir := t.TempDir()
	s1 := mustNew(t, durableConfig(dir))
	h1 := s1.Handler()
	body := selectBody(inlineObjects)
	if rec := do(t, h1, "POST", "/v1/select", body); rec.Code != http.StatusOK {
		t.Fatalf("select: %d", rec.Code)
	}
	s1.Close()

	snap := filepath.Join(dir, "cache.snap")
	raw, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(snap, raw[:len(raw)-17], 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := mustNew(t, durableConfig(dir))
	h2 := s2.Handler()
	rec := do(t, h2, "POST", "/v1/select", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("select after damaged snapshot: %d", rec.Code)
	}
	if got := rec.Header().Get("X-Cache"); got != "miss" {
		t.Fatalf("X-Cache = %q, want miss (cold start after damaged snapshot)", got)
	}
	if p := persistBlock(t, h2); p["load_errors"].(float64) != 1 {
		t.Fatalf("load_errors = %v, want 1", p["load_errors"])
	}
}

// TestPeriodicSnapshotWrites pins the ticker path: with a short
// period, the snapshot file appears without any Close.
func TestPeriodicSnapshotWrites(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(dir)
	cfg.CacheSnapshotEvery = 10 * time.Millisecond
	s := mustNew(t, cfg)
	h := s.Handler()
	if rec := do(t, h, "POST", "/v1/select", selectBody(inlineObjects)); rec.Code != http.StatusOK {
		t.Fatalf("select: %d", rec.Code)
	}
	// Wait for a restorable snapshot holding the cached entry: the
	// first tick can land before the solve finishes and legitimately
	// write an empty snapshot, so poll the content, not the file.
	snap := filepath.Join(dir, "cache.snap")
	deadline := time.Now().Add(5 * time.Second)
	for {
		entries, err := persist.ReadSnapshot(snap)
		if err == nil && len(entries) == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("periodic snapshot with the cached entry never appeared: %d entries, %v", len(entries), err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestBoundarySizedUploadIs413NotAcknowledged pins two review-driven
// contracts at once: a dataset whose canonical encoding squeaks under
// the byte budget but whose on-disk envelope does not is the client's
// 413 (not a 500 persist error), and a failed durable write leaves no
// acknowledged-looking record behind — the id must 404 afterwards.
func TestBoundarySizedUploadIs413NotAcknowledged(t *testing.T) {
	ds, err := wire.DecodeDataset(strings.NewReader(datasetBody))
	if err != nil {
		t.Fatal(err)
	}
	id, canonical, err := datasetID(ds.Objects)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cfg := durableConfig(dir)
	cfg.MaxDatasetBytes = int64(len(canonical)) // envelope won't fit
	s := mustNew(t, cfg)
	h := s.Handler()

	wantError(t, do(t, h, "POST", "/v1/datasets", datasetBody),
		http.StatusRequestEntityTooLarge, "payload_too_large")
	if rec := do(t, h, "GET", "/v1/datasets/"+id, ""); rec.Code != http.StatusNotFound {
		t.Fatalf("failed upload is still served: %d", rec.Code)
	}
	wantError(t, do(t, h, "POST", "/v1/select", selectBody(`"dataset_id": "`+id+`",`)),
		http.StatusNotFound, "not_found")
}

// TestUnchangedCacheSkipsSnapshotRewrite pins the idle-daemon
// behavior: a snapshot is not rewritten while the cache content is
// unchanged (restore → Close must leave the file untouched).
func TestUnchangedCacheSkipsSnapshotRewrite(t *testing.T) {
	dir := t.TempDir()
	s1 := mustNew(t, durableConfig(dir))
	if rec := do(t, s1.Handler(), "POST", "/v1/select", selectBody(inlineObjects)); rec.Code != http.StatusOK {
		t.Fatalf("select: %d", rec.Code)
	}
	s1.Close()
	snap := filepath.Join(dir, "cache.snap")
	before, err := os.Stat(snap)
	if err != nil {
		t.Fatal(err)
	}
	// Make any rewrite detectable regardless of filesystem timestamp
	// granularity.
	old := time.Now().Add(-time.Hour)
	if err := os.Chtimes(snap, old, old); err != nil {
		t.Fatal(err)
	}

	s2 := mustNew(t, durableConfig(dir)) // restores, changes nothing
	s2.Close()
	after, err := os.Stat(snap)
	if err != nil {
		t.Fatal(err)
	}
	if !after.ModTime().Equal(old) || after.Size() != before.Size() {
		t.Fatalf("unchanged cache rewrote the snapshot (mtime %v → %v)", old, after.ModTime())
	}

	// A real change resumes snapshotting.
	s3 := mustNew(t, durableConfig(dir))
	if rec := do(t, s3.Handler(), "POST", "/v1/select", selectBody(`"dataset_id": "missing_x",`)); rec.Code == 0 {
		t.Fatal("unreachable")
	}
	// The 404 above is not cached; drive a cacheable change instead.
	other := strings.Replace(selectBody(inlineObjects), `"budget": 1`, `"budget": 2`, 1)
	if rec := do(t, s3.Handler(), "POST", "/v1/select", other); rec.Code != http.StatusOK {
		t.Fatalf("second select: %d", rec.Code)
	}
	s3.Close()
	if final, err := os.Stat(snap); err != nil || final.ModTime().Equal(old) {
		t.Fatalf("changed cache did not refresh the snapshot: %v, %v", final, err)
	}
}

// TestPersistBlockAbsentForMemoryOnly keeps the default healthz shape
// unchanged: no persist block unless durability is configured.
func TestPersistBlockAbsentForMemoryOnly(t *testing.T) {
	h := newTestServer(Config{})
	if m := decodeBody(t, do(t, h, "GET", "/healthz", "")); m["persist"] != nil {
		t.Fatalf("memory-only healthz grew a persist block: %v", m["persist"])
	}
}
