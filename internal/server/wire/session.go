package wire

import (
	"io"

	"github.com/factcheck/cleansel/internal/session"
)

// SessionRequest is the body of POST /v1/sessions: the problem under
// scrutiny plus the episode parameters. The canonical encoding of this
// struct is also the session's durable spec — what a restarted daemon
// replays to rebuild the episode — so its field set and order are part
// of the snapshot format.
type SessionRequest struct {
	Problem
	Goal   string  `json:"goal,omitempty"` // minvar|maxpr (default minvar)
	Budget float64 `json:"budget"`
	Tau    float64 `json:"tau,omitempty"`
}

// CleanRequest is the body of POST /v1/sessions/{id}/clean: the client
// cleaned Object (normally the current recommendation) and found Value.
// Step echoes the session's step counter from the recommendation being
// answered, so duplicate or out-of-order reports are rejected instead
// of corrupting the episode.
type CleanRequest struct {
	Step   int     `json:"step"`
	Object int     `json:"object"`
	Value  float64 `json:"value"`
}

// DecodeSession parses a session create request.
func DecodeSession(r io.Reader) (SessionRequest, error) { return decodeStrict[SessionRequest](r) }

// DecodeClean parses a clean report.
func DecodeClean(r io.Reader) (CleanRequest, error) { return decodeStrict[CleanRequest](r) }

// SessionRec is the current recommendation on the wire.
type SessionRec struct {
	Object  int     `json:"object"`
	Name    string  `json:"name"`
	Benefit float64 `json:"benefit"`
	Cost    float64 `json:"cost"`
	Ratio   float64 `json:"ratio"`
}

// CleanedValue is one cleaned-object log entry on the wire.
type CleanedValue struct {
	Object int     `json:"object"`
	Name   string  `json:"name"`
	Value  float64 `json:"value"`
}

// SessionState mirrors session.State on the wire: the full episode
// state every session endpoint answers with.
type SessionState struct {
	ID          string         `json:"id"`
	Goal        string         `json:"goal"`
	Status      string         `json:"status"`
	Steps       int            `json:"steps"`
	Budget      float64        `json:"budget"`
	Remaining   float64        `json:"remaining"`
	Spent       float64        `json:"spent"`
	Tau         float64        `json:"tau"`
	Baseline    float64        `json:"baseline"`
	Current     float64        `json:"current"`
	Achieved    float64        `json:"achieved"`
	Estimate    float64        `json:"estimate"`
	Uncertainty float64        `json:"uncertainty"`
	Cleaned     []CleanedValue `json:"cleaned"`
	// Recommendation is absent when the session is terminal.
	Recommendation *SessionRec `json:"recommendation,omitempty"`
}

// EncodeSessionState maps a session state onto the wire.
func EncodeSessionState(st session.State) SessionState {
	out := SessionState{
		ID:          st.ID,
		Goal:        string(st.Goal),
		Status:      string(st.Status),
		Steps:       st.Steps,
		Budget:      st.Budget,
		Remaining:   st.Remaining,
		Spent:       st.Spent,
		Tau:         st.Tau,
		Baseline:    st.Baseline,
		Current:     st.Current,
		Achieved:    st.Achieved,
		Estimate:    st.Estimate,
		Uncertainty: st.Uncertainty,
		Cleaned:     make([]CleanedValue, len(st.Cleaned)),
	}
	for i, c := range st.Cleaned {
		out.Cleaned[i] = CleanedValue{Object: c.Object, Name: c.Name, Value: c.Value}
	}
	if st.Rec != nil {
		out.Recommendation = &SessionRec{
			Object: st.Rec.Object, Name: st.Rec.Name,
			Benefit: st.Rec.Benefit, Cost: st.Rec.Cost, Ratio: st.Rec.Ratio,
		}
	}
	return out
}
