package wire

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	cleansel "github.com/factcheck/cleansel"
)

const sampleTask = `{
  "objects": [
    {"name": "jan", "current": 100, "cost": 1, "values": [95, 100, 105], "probs": [1, 1, 1]},
    {"name": "feb", "current": 120, "cost": 1, "values": [90, 120, 150], "probs": [1, 1, 1]},
    {"name": "mar", "current": 140, "cost": 1, "normal": {"mean": 140, "sigma": 8}}
  ],
  "claim": {"name": "mar-vs-jan", "coef": {"2": 1, "0": -1}},
  "direction": "higher",
  "reference": 40,
  "perturbations": [
    {"claim": {"name": "feb-vs-jan", "coef": {"1": 1, "0": -1}}, "sensibility": 1},
    {"claim": {"name": "mar-vs-feb", "coef": {"2": 1, "1": -1}}, "sensibility": 1}
  ],
  "measure": "uniqueness",
  "goal": "minvar",
  "algorithm": "greedy",
  "budget": 1,
  "tau": 2,
  "seed": 7
}`

func decodeSample(t *testing.T) Task {
	t.Helper()
	task, err := DecodeTask(strings.NewReader(sampleTask))
	if err != nil {
		t.Fatal(err)
	}
	return task
}

func TestTaskRoundTrip(t *testing.T) {
	task := decodeSample(t)
	db, err := BuildDB(task.Objects)
	if err != nil {
		t.Fatal(err)
	}
	if db.N() != 3 {
		t.Fatalf("db has %d objects", db.N())
	}
	ct, err := task.BuildTask(db)
	if err != nil {
		t.Fatal(err)
	}
	if ct.Measure != cleansel.Uniqueness || ct.Goal != cleansel.MinimizeUncertainty || ct.Algorithm != cleansel.AlgoGreedy {
		t.Fatalf("parameters mismapped: %+v", ct)
	}
	if ct.Budget != 1 || ct.Tau != 2 || ct.Seed != 7 {
		t.Fatalf("scalars mismapped: %+v", ct)
	}
	if got := ct.Claims.M(); got != 2 {
		t.Fatalf("%d perturbations, want 2", got)
	}
	res, err := cleansel.Select(ct)
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(EncodeResult(res))
	if err != nil {
		t.Fatal(err)
	}
	var decoded Result
	if err := json.Unmarshal(body, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.CostSpent != res.CostSpent || decoded.Before != res.Before || decoded.After != res.After {
		t.Fatalf("result round-trip mismatch: %+v vs %+v", decoded, res)
	}
	for _, want := range []string{`"chosen"`, `"ids"`, `"cost_spent"`, `"objective_before"`, `"objective_after"`} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("encoded result missing %s: %s", want, body)
		}
	}
}

func TestEncodeResultEmptySelection(t *testing.T) {
	body, err := json.Marshal(EncodeResult(cleansel.Result{}))
	if err != nil {
		t.Fatal(err)
	}
	// Empty selections must encode as [] (stable for clients), not null.
	if !strings.Contains(string(body), `"chosen":[]`) || !strings.Contains(string(body), `"ids":[]`) {
		t.Fatalf("empty selection encoded as null: %s", body)
	}
}

func TestDecodeStrictness(t *testing.T) {
	cases := []struct {
		name string
		raw  string
	}{
		{"unknown field", `{"objects": [], "frobnicate": 1}`},
		{"trailing garbage", `{"objects": []} {"more": true}`},
		{"malformed", `{"objects": [`},
		{"wrong type", `{"budget": "lots"}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := DecodeTask(strings.NewReader(tc.raw)); err == nil {
				t.Fatal("bad payload accepted")
			}
		})
	}
}

func TestBuildObjectsErrors(t *testing.T) {
	cases := []struct {
		name string
		obj  Object
	}{
		{"no value model", Object{Name: "x", Current: 1, Cost: 1}},
		{"both models", Object{Name: "x", Values: []float64{1}, Probs: []float64{1}, Normal: &Normal{Mean: 0, Sigma: 1}}},
		{"negative prob", Object{Name: "x", Values: []float64{1, 2}, Probs: []float64{0.5, -0.5}}},
		{"prob length mismatch", Object{Name: "x", Values: []float64{1, 2}, Probs: []float64{1}}},
		{"nan value", Object{Name: "x", Values: []float64{math.NaN()}, Probs: []float64{1}}},
		{"zero mass", Object{Name: "x", Values: []float64{1, 2}, Probs: []float64{0, 0}}},
		{"bad sigma", Object{Name: "x", Normal: &Normal{Mean: 0, Sigma: -1}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := BuildObjects([]Object{tc.obj}); err == nil {
				t.Fatal("invalid object accepted")
			}
		})
	}
	if _, err := BuildObjects(nil); err == nil {
		t.Fatal("empty object list accepted")
	}
}

func TestBuildClaimErrors(t *testing.T) {
	if _, err := BuildClaim(Claim{Name: "c", Coef: map[string]float64{"9": 1}}, 3); err == nil {
		t.Fatal("out-of-range object id accepted")
	}
	if _, err := BuildClaim(Claim{Name: "c", Coef: map[string]float64{"x": 1}}, 3); err == nil {
		t.Fatal("non-numeric object id accepted")
	}
	if _, err := BuildClaim(Claim{Name: "c", Coef: map[string]float64{"-1": 1}}, 3); err == nil {
		t.Fatal("negative object id accepted")
	}
}

func TestBuildTaskErrors(t *testing.T) {
	base := decodeSample(t)
	db, err := BuildDB(base.Objects)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func(*Task)
	}{
		{"unknown measure", func(s *Task) { s.Measure = "vibes" }},
		{"unknown goal", func(s *Task) { s.Goal = "maximin" }},
		{"unknown algorithm", func(s *Task) { s.Algorithm = "quantum" }},
		{"unknown direction", func(s *Task) { s.Direction = "sideways" }},
		{"no perturbations", func(s *Task) { s.Perturbations = nil }},
		{"bad perturbation claim", func(s *Task) { s.Perturbations[0].Claim.Coef = map[string]float64{"nope": 1} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			task := decodeSample(t)
			tc.mutate(&task)
			if _, err := task.BuildTask(db); err == nil {
				t.Fatal("invalid task accepted")
			}
		})
	}
}

func TestBuildSetDefaultsReferenceAndDirection(t *testing.T) {
	task := decodeSample(t)
	task.Reference = nil
	task.Direction = ""
	db, err := BuildDB(task.Objects)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := task.BuildSet(db); err != nil {
		t.Fatal(err)
	}
	task.Direction = "lower"
	if _, err := task.BuildSet(db); err != nil {
		t.Fatal(err)
	}
}

func TestBuildRankAndAssess(t *testing.T) {
	base := decodeSample(t)
	db, err := BuildDB(base.Objects)
	if err != nil {
		t.Fatal(err)
	}
	rank := RankRequest{Problem: base.Problem, Measure: "uniqueness"}
	work, set, measure, err := rank.BuildRank(db)
	if err != nil {
		t.Fatal(err)
	}
	if measure != cleansel.Uniqueness {
		t.Fatalf("measure = %v", measure)
	}
	ranked, err := cleansel.RankObjects(work, set, measure)
	if err != nil {
		t.Fatal(err)
	}
	benefits := EncodeBenefits(ranked)
	if len(benefits) != db.N() {
		t.Fatalf("%d benefits for %d objects", len(benefits), db.N())
	}
	if _, _, _, err := (&RankRequest{Problem: base.Problem, Measure: "vibes"}).BuildRank(db); err == nil {
		t.Fatal("unknown rank measure accepted")
	}

	assess := AssessRequest{Problem: base.Problem}
	work, set, err = assess.BuildAssess(db)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := cleansel.AssessClaim(work, set)
	if err != nil {
		t.Fatal(err)
	}
	enc := EncodeReport(rep)
	if enc.Perturbations != 2 {
		t.Fatalf("report perturbations = %d", enc.Perturbations)
	}
	body, err := json.Marshal(enc)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"bias"`, `"duplicity"`, `"fragility"`, `"bias_variance"`} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("report missing %s: %s", want, body)
		}
	}
}

func TestCustomDiscretization(t *testing.T) {
	task := decodeSample(t)
	task.Discretize = 4
	db, err := BuildDB(task.Objects)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := task.BuildTask(db)
	if err != nil {
		t.Fatal(err)
	}
	// The normal object must have been replaced by a 4-point law.
	if _, err := ct.DB.Discretes(); err != nil {
		t.Fatalf("db not discretized: %v", err)
	}
	if _, err := cleansel.Select(ct); err != nil {
		t.Fatal(err)
	}
}
