// Package wire defines the JSON wire format shared by the cleansel CLI
// and the cleanseld HTTP service, and maps it onto the cleansel public
// API: objects with discrete or normal value models, linear claims with
// perturbation sets, and the task parameters of Select/RankObjects/
// AssessClaim. Decoding is strict (unknown fields are rejected) so that
// malformed requests fail loudly instead of producing partial answers.
package wire

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	cleansel "github.com/factcheck/cleansel"
)

// Object is one uncertain value: either a finite support with weights
// (values/probs) or a normal error model.
type Object struct {
	Name    string    `json:"name"`
	Current float64   `json:"current"`
	Cost    float64   `json:"cost"`
	Values  []float64 `json:"values,omitempty"`
	Probs   []float64 `json:"probs,omitempty"`
	Normal  *Normal   `json:"normal,omitempty"`
}

// Normal is a normal error model specification.
type Normal struct {
	Mean  float64 `json:"mean"`
	Sigma float64 `json:"sigma"`
}

// Claim is a linear claim specification; Coef maps object IDs (decimal
// strings, 0-based) to coefficients.
type Claim struct {
	Name  string             `json:"name"`
	Const float64            `json:"const,omitempty"`
	Coef  map[string]float64 `json:"coef"`
}

// Perturbation is one weighted perturbation of the original claim.
type Perturbation struct {
	Claim       Claim   `json:"claim"`
	Sensibility float64 `json:"sensibility"`
}

// Problem names the data and the claim under scrutiny — the part of a
// request shared by the select, rank, and assess endpoints. The data is
// either inline (Objects) or a reference to a previously uploaded
// dataset (DatasetID, cleanseld only).
type Problem struct {
	Objects       []Object       `json:"objects,omitempty"`
	DatasetID     string         `json:"dataset_id,omitempty"`
	Claim         Claim          `json:"claim"`
	Direction     string         `json:"direction,omitempty"` // "higher" (default) or "lower"
	Reference     *float64       `json:"reference,omitempty"`
	Perturbations []Perturbation `json:"perturbations"`
	Discretize    int            `json:"discretize,omitempty"`
}

// Task is a full selection problem: a Problem plus the optimization
// parameters of cleansel.Select. It is the CLI's input format and the
// body of POST /v1/select.
type Task struct {
	Problem
	Measure   string  `json:"measure,omitempty"`   // fairness|uniqueness|robustness
	Goal      string  `json:"goal,omitempty"`      // minvar|maxpr
	Algorithm string  `json:"algorithm,omitempty"` // greedy|optimum|best|naive|random
	Budget    float64 `json:"budget"`
	Tau       float64 `json:"tau,omitempty"`
	Seed      uint64  `json:"seed,omitempty"`
}

// RankRequest is the body of POST /v1/rank.
type RankRequest struct {
	Problem
	Measure string `json:"measure,omitempty"`
}

// AssessRequest is the body of POST /v1/assess.
type AssessRequest struct {
	Problem
}

// TriageClaim is one claim in a triage batch: the claim under scrutiny
// with its perturbation set and strength parameters — the per-claim
// subset of Problem (data and discretization are batch-level).
type TriageClaim struct {
	Claim         Claim          `json:"claim"`
	Direction     string         `json:"direction,omitempty"` // "higher" (default) or "lower"
	Reference     *float64       `json:"reference,omitempty"`
	Perturbations []Perturbation `json:"perturbations"`
}

// TriageRequest is the body of POST /v1/triage: one dataset (inline or
// by reference), a batch of claims to assess against it, and the
// measure whose variance ranks them.
type TriageRequest struct {
	Objects    []Object      `json:"objects,omitempty"`
	DatasetID  string        `json:"dataset_id,omitempty"`
	Measure    string        `json:"measure,omitempty"` // fairness|uniqueness|robustness
	Discretize int           `json:"discretize,omitempty"`
	Claims     []TriageClaim `json:"claims"`
}

// TriageError is a per-claim failure inside an otherwise-successful
// triage batch.
type TriageError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// TriageEntry is one claim's slot in a triage response: either a
// report with its rank and score, or an error.
type TriageEntry struct {
	Index  int          `json:"index"` // position in the request's claims array
	Name   string       `json:"name,omitempty"`
	Rank   int          `json:"rank,omitempty"` // 1-based; 0 for errored claims
	Score  float64      `json:"score"`
	Report *Report      `json:"report,omitempty"`
	Error  *TriageError `json:"error,omitempty"`
}

// TriageStats summarizes a triage batch.
type TriageStats struct {
	Claims int `json:"claims"`
	Unique int `json:"unique"` // distinct claims after signature dedup
	Errors int `json:"errors"`
}

// TriageResponse is the body of a successful POST /v1/triage: entries
// sorted by descending score (ties broken by request position),
// errored claims last in request order.
type TriageResponse struct {
	Measure string        `json:"measure"`
	Claims  []TriageEntry `json:"claims"`
	Stats   TriageStats   `json:"stats"`
}

// Dataset is the body of POST /v1/datasets: a reusable set of objects.
type Dataset struct {
	Name    string   `json:"name,omitempty"`
	Objects []Object `json:"objects"`
}

// Result mirrors cleansel.Result on the wire (and on the CLI's stdout).
type Result struct {
	Chosen    []string `json:"chosen"`
	IDs       []int    `json:"ids"`
	CostSpent float64  `json:"cost_spent"`
	Before    float64  `json:"objective_before"`
	After     float64  `json:"objective_after"`
}

// Benefit mirrors cleansel.ObjectBenefit on the wire.
type Benefit struct {
	ID      int     `json:"id"`
	Name    string  `json:"name"`
	Benefit float64 `json:"benefit"`
	Cost    float64 `json:"cost"`
}

// Report mirrors cleansel.QualityReport on the wire.
type Report struct {
	Bias          float64 `json:"bias"`
	BiasVariance  float64 `json:"bias_variance"`
	Duplicity     int     `json:"duplicity"`
	DupVariance   float64 `json:"duplicity_variance"`
	Fragility     float64 `json:"fragility"`
	FragVariance  float64 `json:"fragility_variance"`
	Perturbations int     `json:"perturbations"`
}

// decodeStrict decodes exactly one JSON value, rejecting unknown fields
// and trailing garbage.
func decodeStrict[T any](r io.Reader) (T, error) {
	var v T
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&v); err != nil {
		return v, fmt.Errorf("parsing request: %w", err)
	}
	if dec.More() {
		return v, errors.New("parsing request: trailing data after JSON value")
	}
	return v, nil
}

// DecodeTask parses a select task specification.
func DecodeTask(r io.Reader) (Task, error) { return decodeStrict[Task](r) }

// DecodeRank parses a rank request.
func DecodeRank(r io.Reader) (RankRequest, error) { return decodeStrict[RankRequest](r) }

// DecodeAssess parses an assess request.
func DecodeAssess(r io.Reader) (AssessRequest, error) { return decodeStrict[AssessRequest](r) }

// DecodeDataset parses a dataset upload.
func DecodeDataset(r io.Reader) (Dataset, error) { return decodeStrict[Dataset](r) }

// DecodeTriage parses a triage request.
func DecodeTriage(r io.Reader) (TriageRequest, error) { return decodeStrict[TriageRequest](r) }

// BuildObjects maps object specifications onto cleansel objects,
// validating each value model.
func BuildObjects(specs []Object) ([]cleansel.Object, error) {
	if len(specs) == 0 {
		return nil, errors.New("no objects given")
	}
	objs := make([]cleansel.Object, len(specs))
	for i, o := range specs {
		obj := cleansel.Object{Name: o.Name, Current: o.Current, Cost: o.Cost}
		switch {
		case o.Normal != nil && len(o.Values) > 0:
			return nil, fmt.Errorf("object %q: give values/probs or normal, not both", o.Name)
		case o.Normal != nil:
			n, err := cleansel.NewNormal(o.Normal.Mean, o.Normal.Sigma)
			if err != nil {
				return nil, fmt.Errorf("object %q: %w", o.Name, err)
			}
			obj.Value = n
		case len(o.Values) > 0:
			d, err := cleansel.NewDiscrete(o.Values, o.Probs)
			if err != nil {
				return nil, fmt.Errorf("object %q: %w", o.Name, err)
			}
			obj.Value = d
		default:
			return nil, fmt.Errorf("object %q: need values/probs or normal", o.Name)
		}
		objs[i] = obj
	}
	return objs, nil
}

// BuildDB assembles and validates a database from object specifications.
func BuildDB(specs []Object) (*cleansel.DB, error) {
	objs, err := BuildObjects(specs)
	if err != nil {
		return nil, err
	}
	db := cleansel.NewDB(objs)
	if err := db.Validate(); err != nil {
		return nil, err
	}
	return db, nil
}

// BuildClaim maps a claim specification onto a cleansel claim; object
// IDs must parse as integers in [0, n).
func BuildClaim(spec Claim, n int) (*cleansel.Claim, error) {
	coef := make(map[int]float64, len(spec.Coef))
	for key, v := range spec.Coef {
		id, err := strconv.Atoi(key)
		if err != nil || id < 0 || id >= n {
			return nil, fmt.Errorf("claim %q: bad object id %q", spec.Name, key)
		}
		coef[id] = v
	}
	return cleansel.NewClaim(spec.Name, spec.Const, coef), nil
}

// BuildSet assembles the perturbation set of a problem against db. A
// missing reference defaults to the original claim's value at the
// current data.
func (p *Problem) BuildSet(db *cleansel.DB) (*cleansel.PerturbationSet, error) {
	orig, err := BuildClaim(p.Claim, db.N())
	if err != nil {
		return nil, err
	}
	dir := cleansel.HigherIsStronger
	switch strings.ToLower(p.Direction) {
	case "higher", "":
	case "lower":
		dir = cleansel.LowerIsStronger
	default:
		return nil, fmt.Errorf("unknown direction %q", p.Direction)
	}
	ref := orig.Eval(db.Currents())
	if p.Reference != nil {
		ref = *p.Reference
	}
	perturbs := make([]cleansel.Perturbed, len(p.Perturbations))
	for i, pt := range p.Perturbations {
		cl, err := BuildClaim(pt.Claim, db.N())
		if err != nil {
			return nil, err
		}
		perturbs[i] = cleansel.Perturbed{Claim: cl, Sensibility: pt.Sensibility}
	}
	return cleansel.NewPerturbationSet(orig, dir, ref, perturbs)
}

// discretized applies the problem's custom discretization (if any) for
// measures that require discrete value models.
func (p *Problem) discretized(db *cleansel.DB, measure cleansel.Measure) *cleansel.DB {
	needDiscrete := measure == cleansel.Uniqueness || measure == cleansel.Robustness
	if needDiscrete && p.Discretize > 0 {
		return db.Discretized(p.Discretize)
	}
	return db
}

// BuildTask maps the task onto a cleansel.Task against db, parsing the
// measure/goal/algorithm names and applying any custom discretization.
func (t *Task) BuildTask(db *cleansel.DB) (cleansel.Task, error) {
	measure, err := cleansel.ParseMeasure(t.Measure)
	if err != nil {
		return cleansel.Task{}, err
	}
	goal, err := cleansel.ParseGoal(t.Goal)
	if err != nil {
		return cleansel.Task{}, err
	}
	algo, err := cleansel.ParseAlgorithm(t.Algorithm)
	if err != nil {
		return cleansel.Task{}, err
	}
	db = t.discretized(db, measure)
	set, err := t.BuildSet(db)
	if err != nil {
		return cleansel.Task{}, err
	}
	return cleansel.Task{
		DB: db, Claims: set,
		Measure: measure, Goal: goal, Algorithm: algo,
		Budget: t.Budget, Tau: t.Tau, Seed: t.Seed,
	}, nil
}

// BuildRank resolves the rank request against db, returning the working
// database, perturbation set, and measure for cleansel.RankObjects.
func (r *RankRequest) BuildRank(db *cleansel.DB) (*cleansel.DB, *cleansel.PerturbationSet, cleansel.Measure, error) {
	measure, err := cleansel.ParseMeasure(r.Measure)
	if err != nil {
		return nil, nil, 0, err
	}
	db = r.discretized(db, measure)
	set, err := r.BuildSet(db)
	if err != nil {
		return nil, nil, 0, err
	}
	return db, set, measure, nil
}

// BuildAssess resolves the assess request against db, returning the
// working database and perturbation set for cleansel.AssessClaim.
func (a *AssessRequest) BuildAssess(db *cleansel.DB) (*cleansel.DB, *cleansel.PerturbationSet, error) {
	if a.Discretize > 0 {
		db = db.Discretized(a.Discretize)
	}
	set, err := a.BuildSet(db)
	if err != nil {
		return nil, nil, err
	}
	return db, set, nil
}

// BuildTriage resolves the batch against db: the working database
// (batch-level discretization applied, exactly as BuildAssess applies
// it for a single claim), the scoring measure, and one perturbation
// set per claim. A claim that fails to build gets a nil set and its
// error in errs[i] — per-claim failures never fail the batch; only an
// unparseable measure does.
func (t *TriageRequest) BuildTriage(db *cleansel.DB) (*cleansel.DB, cleansel.Measure, []*cleansel.PerturbationSet, []error, error) {
	measure, err := cleansel.ParseMeasure(t.Measure)
	if err != nil {
		return nil, 0, nil, nil, err
	}
	if t.Discretize > 0 {
		db = db.Discretized(t.Discretize)
	}
	sets := make([]*cleansel.PerturbationSet, len(t.Claims))
	errs := make([]error, len(t.Claims))
	for i, c := range t.Claims {
		p := Problem{
			Claim:         c.Claim,
			Direction:     c.Direction,
			Reference:     c.Reference,
			Perturbations: c.Perturbations,
		}
		set, err := p.BuildSet(db)
		if err != nil {
			errs[i] = err
			continue
		}
		sets[i] = set
	}
	return db, measure, sets, errs, nil
}

// TriageScore extracts the ranking score from a report: the configured
// measure's variance — the claim-quality uncertainty that cleaning
// effort could remove, i.e. how much a fact-checker's attention is
// worth on this claim.
func TriageScore(measure cleansel.Measure, rep cleansel.QualityReport) float64 {
	switch measure {
	case cleansel.Uniqueness:
		return rep.DupVariance
	case cleansel.Robustness:
		return rep.FragVariance
	default:
		return rep.BiasVariance
	}
}

// EncodeTriage assembles the ranked response: scored entries sorted by
// descending score with ties broken by request position, then errored
// entries in request position order with rank 0.
func EncodeTriage(measure cleansel.Measure, names []string, reports []cleansel.QualityReport, errs []error, unique int) TriageResponse {
	resp := TriageResponse{
		Measure: measure.String(),
		Stats:   TriageStats{Claims: len(names), Unique: unique},
	}
	var scored, failed []TriageEntry
	for i, name := range names {
		if errs[i] != nil {
			failed = append(failed, TriageEntry{
				Index: i,
				Name:  name,
				Error: &TriageError{Code: "bad_claim", Message: errs[i].Error()},
			})
			continue
		}
		rep := EncodeReport(reports[i])
		scored = append(scored, TriageEntry{
			Index:  i,
			Name:   name,
			Score:  TriageScore(measure, reports[i]),
			Report: &rep,
		})
	}
	sort.SliceStable(scored, func(a, b int) bool {
		if scored[a].Score != scored[b].Score {
			return scored[a].Score > scored[b].Score
		}
		return scored[a].Index < scored[b].Index
	})
	for r := range scored {
		scored[r].Rank = r + 1
	}
	resp.Claims = append(scored, failed...)
	if resp.Claims == nil {
		resp.Claims = []TriageEntry{}
	}
	resp.Stats.Errors = len(failed)
	return resp
}

// EncodeResult maps a selection result onto the wire.
func EncodeResult(res cleansel.Result) Result {
	out := Result{
		Chosen:    res.Chosen,
		IDs:       res.Set,
		CostSpent: res.CostSpent,
		Before:    res.Before,
		After:     res.After,
	}
	if out.Chosen == nil {
		out.Chosen = []string{}
	}
	if out.IDs == nil {
		out.IDs = []int{}
	}
	return out
}

// EncodeBenefits maps an object ranking onto the wire.
func EncodeBenefits(ranked []cleansel.ObjectBenefit) []Benefit {
	out := make([]Benefit, len(ranked))
	for i, b := range ranked {
		out[i] = Benefit{ID: b.ID, Name: b.Name, Benefit: b.Benefit, Cost: b.Cost}
	}
	return out
}

// EncodeReport maps a quality report onto the wire.
func EncodeReport(rep cleansel.QualityReport) Report {
	return Report{
		Bias:          rep.Bias,
		BiasVariance:  rep.BiasVariance,
		Duplicity:     rep.Duplicity,
		DupVariance:   rep.DupVariance,
		Fragility:     rep.Fragility,
		FragVariance:  rep.FragVariance,
		Perturbations: rep.Perturbations,
	}
}
