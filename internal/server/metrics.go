package server

import (
	"strings"
	"sync/atomic"
	"time"

	"github.com/factcheck/cleansel/internal/obs"
)

// serverMetrics is cleanseld's metric surface, all registered on one
// obs.Registry served at GET /metrics. The counters here are the same
// objects the serving layer increments (result cache, flight group,
// dataset store), so /healthz — which reads them too — can never
// disagree with a scrape.
type serverMetrics struct {
	registry *obs.Registry

	// requests by endpoint and status code (counted on completion);
	// latency by endpoint; inflight tracks requests currently being
	// handled.
	requests *obs.CounterVec
	latency  *obs.HistogramVec
	inflight atomic.Int64

	// Result-cache outcomes: hit, miss, coalesced.
	cacheHit, cacheMiss, coalesced *obs.Counter

	// Dataset-store traffic.
	datasetHit, datasetMiss, diskReloads *obs.Counter

	// Durable-state failures observed while serving.
	persistErrors *obs.Counter

	// Per-stage solve time and engine operation counts, aggregated
	// across requests from each request's Recorder.
	stageSeconds *obs.CounterVec
	engineOps    *obs.CounterVec

	// Claims processed by the bulk triage solve, by outcome (ok or
	// error). Cache-served batches don't re-count: this measures
	// assessment work, not traffic.
	triageClaims *obs.CounterVec
}

// newServerMetrics registers the catalog. s must already have its
// caches and stores constructed; gauges read them live at scrape time.
func newServerMetrics(s *Server) *serverMetrics {
	reg := obs.NewRegistry()
	m := &serverMetrics{
		registry: reg,
		requests: reg.CounterVec("cleanseld_requests_total",
			"HTTP requests served, by endpoint and status code.", "endpoint", "code"),
		latency: reg.HistogramVec("cleanseld_request_seconds",
			"End-to-end request latency in seconds, by endpoint.",
			obs.DefLatencyBuckets, "endpoint"),
		diskReloads: reg.Counter("cleanseld_dataset_disk_reloads_total",
			"Datasets recompiled from disk after in-memory eviction or restart."),
		persistErrors: reg.Counter("cleanseld_persist_errors_total",
			"Dataset uploads refused because the durable write failed."),
		stageSeconds: reg.CounterVec("cleanseld_solve_stage_seconds_total",
			"Cumulative solve time by stage, aggregated from per-request traces.", "stage"),
		engineOps: reg.CounterVec("cleanseld_engine_ops_total",
			"Cumulative engine operation counts (convolutions, EV cache traffic, pool items), aggregated from per-request traces.", "op"),
		triageClaims: reg.CounterVec("cleanseld_triage_claims_total",
			"Claims processed by bulk triage solves, by outcome.", "outcome"),
	}
	cacheOps := reg.CounterVec("cleanseld_cache_requests_total",
		"Result-cache outcomes for select/rank/assess requests.", "status")
	m.cacheHit = cacheOps.With("hit")
	m.cacheMiss = cacheOps.With("miss")
	m.coalesced = cacheOps.With("coalesced")
	datasetOps := reg.CounterVec("cleanseld_dataset_cache_requests_total",
		"In-memory dataset store lookups.", "status")
	m.datasetHit = datasetOps.With("hit")
	m.datasetMiss = datasetOps.With("miss")
	sessionEvents := reg.CounterVec("cleanseld_sessions_total",
		"Interactive-session lifecycle events.", "event")
	sesCreated := sessionEvents.With("created")
	sesExpired := sessionEvents.With("expired")
	sesEvicted := sessionEvents.With("evicted")
	sesRestored := sessionEvents.With("restored")
	sesLoadErr := sessionEvents.With("load_error")
	sesPersistErr := sessionEvents.With("persist_error")
	// Seed the registered counters with what the manager already
	// counted (restore runs before metrics exist), then swap them in so
	// /metrics and /healthz read the very objects the manager ticks.
	st := s.sessions.Stats()
	sesCreated.Add(float64(st.Created))
	sesExpired.Add(float64(st.Expired))
	sesEvicted.Add(float64(st.Evicted))
	sesRestored.Add(float64(st.Restored))
	sesLoadErr.Add(float64(st.LoadErrors))
	sesPersistErr.Add(float64(st.PersistErrors))
	s.sessions.Instrument(sesCreated, sesExpired, sesEvicted, sesRestored, sesLoadErr, sesPersistErr)

	reg.GaugeFunc("cleanseld_requests_in_flight",
		"Requests currently being handled.", func() float64 { return float64(m.inflight.Load()) })
	reg.GaugeFunc("cleanseld_cache_entries",
		"Entries resident in the result cache.", func() float64 { return float64(s.results.Len()) })
	reg.GaugeFunc("cleanseld_cache_bytes",
		"Approximate bytes resident in the result cache.", func() float64 { return float64(s.results.Bytes()) })
	reg.GaugeFunc("cleanseld_datasets",
		"Datasets resident in memory.", func() float64 { return float64(s.store.Len()) })
	reg.GaugeFunc("cleanseld_dataset_bytes",
		"Approximate bytes of datasets resident in memory.", func() float64 { return float64(s.store.Bytes()) })
	reg.GaugeFunc("cleanseld_sessions_active",
		"Interactive sessions currently live.", func() float64 { return float64(s.sessions.Active()) })
	reg.GaugeFunc("cleanseld_pool_inflight",
		"Solver goroutines currently running (pool occupancy).", func() float64 { return float64(len(s.sem)) })
	reg.GaugeFunc("cleanseld_pool_capacity",
		"Solver goroutine cap (Config.MaxInflight).", func() float64 { return float64(cap(s.sem)) })
	reg.GaugeFunc("cleanseld_uptime_seconds",
		"Seconds since the server started.", func() float64 { return s.clock.Now().Sub(s.start).Seconds() })
	if s.disk != nil || s.snapPath != "" {
		reg.GaugeFunc("cleanseld_persist_load_errors",
			"Unusable files detected in the durable state (corrupt datasets, bad snapshots).",
			func() float64 { return float64(s.persistLoadErrors()) })
		reg.GaugeFunc("cleanseld_snapshot_age_seconds",
			"Seconds since the newest good cache snapshot (-1 before the first).",
			func() float64 { return float64(s.snapshotAge()) })
	}
	if s.disk != nil {
		reg.GaugeFunc("cleanseld_datasets_on_disk",
			"Dataset files resident in the durable store.", func() float64 { return float64(s.disk.Len()) })
		reg.GaugeFunc("cleanseld_dataset_disk_bytes",
			"Bytes resident in the durable dataset store.", func() float64 { return float64(s.disk.Bytes()) })
	}

	// Point the serving layer's own counters at the registered ones.
	s.results.instrument(m.cacheHit, m.cacheMiss)
	s.store.cache.instrument(m.datasetHit, m.datasetMiss)
	s.store.reloads = m.diskReloads
	return m
}

// absorb folds one request's trace into the process-wide stage/op
// totals, the fleet-level view of where solve time goes.
func (m *serverMetrics) absorb(tr obs.Trace) {
	for _, st := range tr.Stages {
		m.stageSeconds.With(st.Name).Add(st.TotalMS / 1000)
	}
	for _, c := range tr.Counters {
		m.engineOps.With(c.Name).Add(float64(c.Value))
	}
}

// observeRequest records one completed request.
func (m *serverMetrics) observeRequest(endpoint, code string, elapsed time.Duration) {
	m.requests.With(endpoint, code).Inc()
	m.latency.With(endpoint).Observe(elapsed.Seconds())
}

// requestsSeen is the /healthz request counter: requests completed
// plus requests in flight — which includes the /healthz request that
// is reading it, matching the historical counted-on-arrival semantics.
func (m *serverMetrics) requestsSeen() uint64 {
	return uint64(m.requests.Total()) + uint64(max(0, m.inflight.Load()))
}

// endpointOf maps a request path to its metrics label: a closed, low-
// cardinality set no matter what clients throw at the router.
func endpointOf(path string) string {
	switch {
	case path == "/v1/select":
		return "select"
	case path == "/v1/rank":
		return "rank"
	case path == "/v1/assess":
		return "assess"
	case path == "/v1/triage":
		return "triage"
	case path == "/v1/datasets" || strings.HasPrefix(path, "/v1/datasets/"):
		return "datasets"
	case path == "/v1/sessions" || strings.HasPrefix(path, "/v1/sessions/"):
		return "sessions"
	case path == "/healthz":
		return "healthz"
	case path == "/metrics":
		return "metrics"
	default:
		return "other"
	}
}
