package server

import (
	"testing"

	"github.com/factcheck/cleansel/internal/server/wire"
)

func toyDataset(name string, current float64) wire.Dataset {
	return wire.Dataset{
		Name: name,
		Objects: []wire.Object{
			{Name: "x", Current: current, Cost: 1, Values: []float64{current - 1, current, current + 1}, Probs: []float64{1, 1, 1}},
		},
	}
}

func TestStoreContentAddressing(t *testing.T) {
	s := newDatasetStore(4, 0, nil)
	a, err := s.Add(toyDataset("first", 10))
	if err != nil {
		t.Fatal(err)
	}
	// Same objects, different label: IDs must agree (content-addressed),
	// the compiled database is reused, and the latest name wins.
	b, err := s.Add(toyDataset("second", 10))
	if err != nil {
		t.Fatal(err)
	}
	if a.ID != b.ID {
		t.Fatalf("identical objects got different ids: %s vs %s", a.ID, b.ID)
	}
	if b.Name != "second" || b.DB != a.DB {
		t.Fatalf("re-upload should refresh the name and share the db: %+v", b)
	}
	if got, _ := s.Get(a.ID); got.Name != "second" {
		t.Fatalf("stored name not refreshed: %q", got.Name)
	}
	c, err := s.Add(toyDataset("third", 99))
	if err != nil {
		t.Fatal(err)
	}
	if c.ID == a.ID {
		t.Fatal("different objects share an id")
	}
	got, ok := s.Get(a.ID)
	if !ok || got.Objects != 1 || got.DB == nil {
		t.Fatalf("lookup failed: %+v, %v", got, ok)
	}
}

func TestStoreEvictsBeyondCapacity(t *testing.T) {
	s := newDatasetStore(2, 0, nil)
	a, _ := s.Add(toyDataset("a", 1))
	s.Add(toyDataset("b", 2))
	s.Add(toyDataset("c", 3))
	if _, ok := s.Get(a.ID); ok {
		t.Fatal("oldest dataset survived past capacity")
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestStoreRejectsInvalidDataset(t *testing.T) {
	s := newDatasetStore(2, 0, nil)
	if _, err := s.Add(wire.Dataset{Objects: []wire.Object{{Name: "x"}}}); err == nil {
		t.Fatal("invalid dataset accepted")
	}
	if s.Len() != 0 {
		t.Fatalf("invalid dataset stored: Len = %d", s.Len())
	}
}
