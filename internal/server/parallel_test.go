package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/factcheck/cleansel/internal/parallel"
	"github.com/factcheck/cleansel/internal/server/wire"
)

// --- flightGroup unit tests -------------------------------------------------

func TestFlightGroupCoalesces(t *testing.T) {
	g := newFlightGroup()
	release := make(chan struct{})
	var computes int
	var mu sync.Mutex
	fn := func(ctx context.Context) ([]byte, error) {
		mu.Lock()
		computes++
		mu.Unlock()
		<-release
		return []byte("result"), nil
	}
	type out struct {
		body   []byte
		shared bool
		err    error
	}
	results := make(chan out, 3)
	for i := 0; i < 3; i++ {
		go func() {
			body, shared, err := g.Do(context.Background(), "k", fn)
			results <- out{body, shared, err}
		}()
	}
	deadline := time.After(5 * time.Second)
	for g.Coalesced() < 2 {
		select {
		case <-deadline:
			t.Fatal("callers never coalesced")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	close(release)
	var sharedCount int
	for i := 0; i < 3; i++ {
		o := <-results
		if o.err != nil {
			t.Fatalf("Do: %v", o.err)
		}
		if string(o.body) != "result" {
			t.Fatalf("body = %q", o.body)
		}
		if o.shared {
			sharedCount++
		}
	}
	if sharedCount != 2 {
		t.Fatalf("%d shared callers, want 2", sharedCount)
	}
	if computes != 1 {
		t.Fatalf("fn ran %d times, want 1", computes)
	}
	// The key is free again: a later call recomputes.
	release = make(chan struct{})
	close(release)
	if _, shared, err := g.Do(context.Background(), "k", fn); err != nil || shared {
		t.Fatalf("post-completion Do: shared=%v err=%v", shared, err)
	}
	if computes != 2 {
		t.Fatalf("fn ran %d times after second Do, want 2", computes)
	}
}

// TestFlightGroupCancelsWhenAllWaitersLeave pins the cancellation
// semantics: the computation's context stays live while any waiter
// remains and is cancelled once the last one gives up.
func TestFlightGroupCancelsWhenAllWaitersLeave(t *testing.T) {
	g := newFlightGroup()
	computeCancelled := make(chan struct{})
	started := make(chan struct{})
	fn := func(ctx context.Context) ([]byte, error) {
		close(started)
		<-ctx.Done()
		close(computeCancelled)
		return nil, ctx.Err()
	}
	ctx1, cancel1 := context.WithCancel(context.Background())
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	errs := make(chan error, 2)
	go func() {
		_, _, err := g.Do(ctx1, "k", fn)
		errs <- err
	}()
	<-started
	go func() {
		_, _, err := g.Do(ctx2, "k", fn)
		errs <- err
	}()
	for g.Coalesced() < 1 {
		time.Sleep(time.Millisecond)
	}
	// First waiter leaves; the second still wants the result, so the
	// computation must keep running.
	cancel1()
	if err := <-errs; !errors.Is(err, context.Canceled) {
		t.Fatalf("first waiter: %v", err)
	}
	select {
	case <-computeCancelled:
		t.Fatal("computation cancelled while a waiter remained")
	case <-time.After(50 * time.Millisecond):
	}
	// Last waiter leaves: now the computation must be cancelled.
	cancel2()
	if err := <-errs; !errors.Is(err, context.Canceled) {
		t.Fatalf("second waiter: %v", err)
	}
	select {
	case <-computeCancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("computation not cancelled after last waiter left")
	}
}

// TestFlightGroupReplacesAbandonedCall pins the fix for the
// abandon-then-join window: a caller arriving while a cancelled call
// is still winding down must get a fresh computation, not the doomed
// call's context.Canceled.
func TestFlightGroupReplacesAbandonedCall(t *testing.T) {
	g := newFlightGroup()
	firstStarted := make(chan struct{})
	firstMayExit := make(chan struct{})
	first := func(ctx context.Context) ([]byte, error) {
		close(firstStarted)
		<-ctx.Done()   // cancelled when its only waiter leaves…
		<-firstMayExit // …but the goroutine lingers before returning
		return nil, ctx.Err()
	}
	ctx1, cancel1 := context.WithCancel(context.Background())
	firstErr := make(chan error, 1)
	go func() {
		_, _, err := g.Do(ctx1, "k", first)
		firstErr <- err
	}()
	<-firstStarted
	cancel1()
	if err := <-firstErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("first waiter: %v", err)
	}
	// The abandoned call is still registered (goroutine blocked on
	// firstMayExit). A new caller must start fresh and succeed.
	if g.InFlight() != 0 {
		t.Fatalf("InFlight = %d counting an abandoned call", g.InFlight())
	}
	body, shared, err := g.Do(context.Background(), "k", func(ctx context.Context) ([]byte, error) {
		return []byte("fresh"), nil
	})
	if err != nil || shared || string(body) != "fresh" {
		t.Fatalf("post-abandon Do = %q shared=%v err=%v, want fresh computation", body, shared, err)
	}
	// Let the stale goroutine finish; it must not clobber the map for
	// future calls under the same key.
	close(firstMayExit)
	time.Sleep(10 * time.Millisecond)
	if _, shared, err := g.Do(context.Background(), "k", func(ctx context.Context) ([]byte, error) {
		return []byte("later"), nil
	}); err != nil || shared {
		t.Fatalf("call after stale wind-down: shared=%v err=%v", shared, err)
	}
}

// TestFlightGroupRetriesAfterLeaderDeadline pins the late-joiner rule:
// a waiter whose joined call dies of the *leader's* deadline, while
// its own context is still live, retries as a starter instead of
// inheriting someone else's timeout.
func TestFlightGroupRetriesAfterLeaderDeadline(t *testing.T) {
	g := newFlightGroup()
	firstStarted := make(chan struct{})
	calls := 0
	var mu sync.Mutex
	fn := func(ctx context.Context) ([]byte, error) {
		mu.Lock()
		calls++
		n := calls
		mu.Unlock()
		if n == 1 {
			close(firstStarted)
			// Simulate the leader's compute budget expiring.
			return nil, context.DeadlineExceeded
		}
		return []byte("second try"), nil
	}
	// Hold the first call open until the follower has joined, so the
	// join-then-fail order is deterministic.
	gate := make(chan struct{})
	gated := func(ctx context.Context) ([]byte, error) {
		b, err := fn(ctx)
		mu.Lock()
		n := calls
		mu.Unlock()
		if n == 1 {
			<-gate
		}
		return b, err
	}
	leaderDone := make(chan error, 1)
	go func() {
		_, _, err := g.Do(context.Background(), "k", gated)
		leaderDone <- err
	}()
	<-firstStarted
	followerDone := make(chan struct {
		body []byte
		err  error
	}, 1)
	go func() {
		b, _, err := g.Do(context.Background(), "k", gated)
		followerDone <- struct {
			body []byte
			err  error
		}{b, err}
	}()
	for g.Coalesced() < 1 {
		time.Sleep(time.Millisecond)
	}
	close(gate)
	if err := <-leaderDone; !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("leader: %v", err)
	}
	got := <-followerDone
	if got.err != nil || string(got.body) != "second try" {
		t.Fatalf("follower = %q, %v — want a fresh successful computation", got.body, got.err)
	}
}

// --- end-to-end handler tests ----------------------------------------------

// slowSelectBody builds a deliberately expensive uniqueness select:
// 6-point supports under width-w windows cost 6^w enumerations per
// claim term, so n/w terms keep a single-threaded solve busy for tens
// of seconds while one term — the cancellation granularity — stays
// under a second.
func slowSelectBody(t *testing.T, n, w int) string {
	t.Helper()
	objs := make([]wire.Object, n)
	for i := range objs {
		vals := make([]float64, 6)
		probs := make([]float64, 6)
		for j := range vals {
			vals[j] = float64(10*i + j)
			probs[j] = 1
		}
		objs[i] = wire.Object{Name: fmt.Sprintf("o%d", i), Current: vals[3], Cost: 1, Values: vals, Probs: probs}
	}
	window := func(name string, start int) wire.Claim {
		coef := map[string]float64{}
		for j := 0; j < w; j++ {
			coef[fmt.Sprintf("%d", start+j)] = 1
		}
		return wire.Claim{Name: name, Coef: coef}
	}
	var perturbs []wire.Perturbation
	for s := 0; s+w <= n; s += w {
		perturbs = append(perturbs, wire.Perturbation{Claim: window(fmt.Sprintf("w%d", s), s), Sensibility: 1})
	}
	ref := 100.0
	task := wire.Task{
		Problem: wire.Problem{
			Objects:       objs,
			Claim:         window("orig", n-w),
			Direction:     "lower",
			Reference:     &ref,
			Perturbations: perturbs,
		},
		Measure: "uniqueness",
		Budget:  float64(n) / 4,
	}
	body, err := json.Marshal(task)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestSelectTimeoutStopsSolver is the acceptance test for end-to-end
// cancellation: when a /v1/select request times out, the solver
// goroutine must stop (drain its semaphore slot) promptly instead of
// running a multi-ten-second solve to completion.
func TestSelectTimeoutStopsSolver(t *testing.T) {
	t.Setenv(parallel.EnvWorkers, "1") // make the solve reliably slow
	s := mustNew(t, Config{Timeout: 100 * time.Millisecond, MaxInflight: 1})
	h := s.Handler()
	body := slowSelectBody(t, 800, 8)

	start := time.Now()
	rec := do(t, h, "POST", "/v1/select", body)
	wantError(t, rec, http.StatusGatewayTimeout, "timeout")

	// The solver must vacate its slot within the per-work-item
	// granularity; an uncancellable solve would hold it for the full
	// multi-ten-second run.
	deadline := time.After(5 * time.Second)
	for len(s.sem) != 0 {
		select {
		case <-deadline:
			t.Fatalf("solver still holds its slot %v after the timeout response", time.Since(start))
		default:
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// TestSelectCoalescesIdenticalInflight asserts the thundering-herd
// behaviour: an identical request arriving while the first is solving
// joins that solve instead of starting its own.
func TestSelectCoalescesIdenticalInflight(t *testing.T) {
	t.Setenv(parallel.EnvWorkers, "1")
	s := mustNew(t, Config{Timeout: 500 * time.Millisecond, MaxInflight: 2})
	h := s.Handler()
	body := slowSelectBody(t, 800, 8)

	leaderDone := make(chan *httptest.ResponseRecorder, 1)
	go func() { leaderDone <- do(t, h, "POST", "/v1/select", body) }()
	deadline := time.After(5 * time.Second)
	for s.flights.InFlight() == 0 {
		select {
		case <-deadline:
			t.Fatal("leader request never went in flight")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	follower := do(t, h, "POST", "/v1/select", body)
	leader := <-leaderDone

	// The solve is far slower than every budget, so both callers get
	// the structured timeout — what matters here is that the follower
	// joined the leader's solve rather than starting a second one
	// while it was live. (After the leader's budget kills the shared
	// solve, the follower retries as a starter under its own still-live
	// context, so its final X-Cache may legitimately read miss.)
	wantError(t, leader, http.StatusGatewayTimeout, "timeout")
	wantError(t, follower, http.StatusGatewayTimeout, "timeout")
	if got := leader.Header().Get("X-Cache"); got != "miss" {
		t.Fatalf("leader X-Cache = %q, want miss", got)
	}
	if got := s.flights.Coalesced(); got < 1 {
		t.Fatalf("Coalesced() = %d, want >= 1", got)
	}
}

// TestCoalescedSuccessSharesOneComputation exercises the success path
// with a fast request: concurrent identical requests produce one
// computation and byte-identical bodies.
func TestCoalescedSuccessSharesOneComputation(t *testing.T) {
	s := mustNew(t, Config{})
	h := s.Handler()
	body := selectBody(inlineObjects)

	const clients = 4
	recs := make(chan *httptest.ResponseRecorder, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			recs <- do(t, h, "POST", "/v1/select", body)
		}()
	}
	wg.Wait()
	close(recs)
	var first string
	for rec := range recs {
		if rec.Code != http.StatusOK {
			t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
		if first == "" {
			first = rec.Body.String()
		} else if rec.Body.String() != first {
			t.Fatal("coalesced/cached responses differ")
		}
		switch rec.Header().Get("X-Cache") {
		case "hit", "miss", "coalesced":
		default:
			t.Fatalf("unexpected X-Cache %q", rec.Header().Get("X-Cache"))
		}
	}
}

// --- byte accounting --------------------------------------------------------

func TestDatasetStoreByteEviction(t *testing.T) {
	mkDS := func(name string, current float64) wire.Dataset {
		return wire.Dataset{Name: name, Objects: []wire.Object{{
			Name: name, Current: current, Cost: 1, Values: []float64{1, 2}, Probs: []float64{1, 1},
		}}}
	}
	// Measure one upload's accounted size, then budget for two.
	probe, err := newDatasetStore(0, 0, nil).Add(mkDS("aaaa", 1))
	if err != nil {
		t.Fatal(err)
	}
	if probe.Bytes <= 0 {
		t.Fatalf("dataset size not accounted: %d", probe.Bytes)
	}
	budget := 2*probe.Bytes + probe.Bytes/2
	st := newDatasetStore(0, budget, nil) // byte-bounded only
	recA, err := st.Add(mkDS("aaaa", 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Add(mkDS("bbbb", 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Add(mkDS("cccc", 3)); err != nil {
		t.Fatal(err)
	}
	if got := st.Bytes(); got > budget {
		t.Fatalf("store bytes %d exceed the %d-byte budget", got, budget)
	}
	if _, ok := st.Get(recA.ID); ok {
		t.Fatal("oldest dataset survived byte-budget eviction")
	}
	if st.Len() != 2 {
		t.Fatalf("store holds %d datasets, want 2", st.Len())
	}
}

// TestOversizedDatasetUploadRejected pins the 413 path: an upload that
// can never fit the byte budget must fail loudly instead of returning
// an ID for a dataset that was silently dropped (flushing the resident
// datasets on the way out).
func TestOversizedDatasetUploadRejected(t *testing.T) {
	srv := mustNew(t, Config{MaxDatasetBytes: 400})
	h := srv.Handler()
	if rec := do(t, h, "POST", "/v1/datasets", datasetBody); rec.Code != http.StatusOK {
		t.Fatalf("small upload: %d %s", rec.Code, rec.Body.String())
	}
	var big struct {
		Name    string        `json:"name"`
		Objects []wire.Object `json:"objects"`
	}
	big.Name = "big"
	for i := 0; i < 50; i++ {
		big.Objects = append(big.Objects, wire.Object{
			Name: fmt.Sprintf("o%d", i), Current: 1, Cost: 1,
			Values: []float64{1, 2}, Probs: []float64{1, 1},
		})
	}
	bigBody, err := json.Marshal(big)
	if err != nil {
		t.Fatal(err)
	}
	rec := do(t, h, "POST", "/v1/datasets", string(bigBody))
	wantError(t, rec, http.StatusRequestEntityTooLarge, "payload_too_large")
	// The resident dataset must have survived the rejected upload.
	if srv.store.Len() != 1 {
		t.Fatalf("store holds %d datasets after rejected upload, want 1", srv.store.Len())
	}
}

func TestHealthzReportsBytesAndCoalesced(t *testing.T) {
	h := newTestServer(Config{})
	if rec := do(t, h, "POST", "/v1/datasets", datasetBody); rec.Code != http.StatusOK {
		t.Fatalf("upload: %d %s", rec.Code, rec.Body.String())
	}
	rec := do(t, h, "GET", "/healthz", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz: %d", rec.Code)
	}
	m := decodeBody(t, rec)
	if v, ok := m["dataset_bytes"].(float64); !ok || v <= 0 {
		t.Fatalf("dataset_bytes = %v", m["dataset_bytes"])
	}
	if _, ok := m["coalesced"].(float64); !ok {
		t.Fatalf("coalesced missing: %v", m["coalesced"])
	}
	cache, ok := m["cache"].(map[string]any)
	if !ok {
		t.Fatalf("cache stats missing: %v", m["cache"])
	}
	if _, ok := cache["bytes"].(float64); !ok {
		t.Fatalf("cache.bytes missing: %v", cache["bytes"])
	}
}

// TestResultCacheByteFlag pins the -cache-bytes semantics end to end:
// with a tiny byte budget the encoded result cannot be retained, so a
// repeated request is a miss instead of a hit.
func TestResultCacheByteFlag(t *testing.T) {
	h := newTestServer(Config{CacheBytes: 10})
	body := selectBody(inlineObjects)
	if rec := do(t, h, "POST", "/v1/select", body); rec.Header().Get("X-Cache") != "miss" {
		t.Fatalf("first request X-Cache = %q", rec.Header().Get("X-Cache"))
	}
	if rec := do(t, h, "POST", "/v1/select", body); rec.Header().Get("X-Cache") != "miss" {
		t.Fatalf("oversized result was cached: X-Cache = %q", rec.Header().Get("X-Cache"))
	}
	// And with room, the repeat is a hit (unchanged behaviour).
	h = newTestServer(Config{})
	if rec := do(t, h, "POST", "/v1/select", body); rec.Code != http.StatusOK {
		t.Fatal("warmup failed")
	}
	if rec := do(t, h, "POST", "/v1/select", body); rec.Header().Get("X-Cache") != "hit" {
		t.Fatalf("repeat X-Cache = %q, want hit", rec.Header().Get("X-Cache"))
	}
}
