package server

import (
	"fmt"
	"sync"
	"testing"
)

func TestLRUBasics(t *testing.T) {
	c := newLRU[int](2, 0)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache hit")
	}
	c.Put("a", 1, 1)
	c.Put("b", 2, 1)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
	// "b" is now least recently used; inserting "c" evicts it.
	c.Put("c", 3, 1)
	if _, ok := c.Get("b"); ok {
		t.Fatal("least-recently-used entry survived eviction")
	}
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("recently-used entry evicted: %v, %v", v, ok)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
	hits, misses := c.Stats()
	if hits != 2 || misses != 2 {
		t.Fatalf("stats = %d/%d, want 2/2", hits, misses)
	}
}

func TestLRUUpdateRefreshes(t *testing.T) {
	c := newLRU[int](2, 0)
	c.Put("a", 1, 1)
	c.Put("b", 2, 1)
	c.Put("a", 10, 1) // refresh, not insert
	c.Put("c", 3, 1)  // evicts b, not a
	if v, ok := c.Get("a"); !ok || v != 10 {
		t.Fatalf("refreshed entry = %v, %v", v, ok)
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("stale entry survived")
	}
}

func TestLRUDisabled(t *testing.T) {
	c := newLRU[int](-1, 0)
	c.Put("a", 1, 1)
	if _, ok := c.Get("a"); ok {
		t.Fatal("disabled cache stored an entry")
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestLRUConcurrentAccess(t *testing.T) {
	c := newLRU[int](16, 0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", (g+i)%32)
				c.Put(key, i, 1)
				c.Get(key)
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 16 {
		t.Fatalf("capacity exceeded: %d", c.Len())
	}
}

func TestLRUByteBound(t *testing.T) {
	c := newLRU[string](0, 100) // unbounded count, 100-byte budget
	c.Put("a", "x", 40)
	c.Put("b", "y", 40)
	c.Put("c", "z", 40) // 120 bytes total: evicts "a"
	if _, ok := c.Get("a"); ok {
		t.Fatal("byte budget not enforced")
	}
	if got := c.Bytes(); got != 80 {
		t.Fatalf("Bytes = %d, want 80", got)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	// Refreshing an entry with a larger size re-evicts.
	c.Put("b", "yy", 80) // b=80 + c=40 = 120: evicts c (LRU)
	if _, ok := c.Get("c"); ok {
		t.Fatal("grown refresh did not evict")
	}
	if got := c.Bytes(); got != 80 {
		t.Fatalf("Bytes after refresh = %d, want 80", got)
	}
}

func TestLRUOversizedEntryNotRetained(t *testing.T) {
	c := newLRU[string](0, 100)
	c.Put("big", "v", 500)
	if _, ok := c.Get("big"); ok {
		t.Fatal("entry larger than the byte budget was retained")
	}
	if c.Bytes() != 0 || c.Len() != 0 {
		t.Fatalf("cache not empty: %d entries, %d bytes", c.Len(), c.Bytes())
	}
}

// TestLRUOversizedEntryPreservesResidents pins the rejection order: an
// entry that can never fit must be refused up front, not flush the
// warm entries making room for it.
func TestLRUOversizedEntryPreservesResidents(t *testing.T) {
	c := newLRU[string](0, 100)
	c.Put("a", "x", 40)
	c.Put("b", "y", 40)
	c.Put("big", "v", 500)
	if _, ok := c.Get("a"); !ok {
		t.Fatal("resident entry flushed by an oversized Put")
	}
	if _, ok := c.Get("b"); !ok {
		t.Fatal("resident entry flushed by an oversized Put")
	}
	if c.Len() != 2 || c.Bytes() != 80 {
		t.Fatalf("cache = %d entries / %d bytes, want 2 / 80", c.Len(), c.Bytes())
	}
	// A refresh that outgrows the budget drops the stale entry rather
	// than serving it.
	c.Put("a", "xxl", 500)
	if _, ok := c.Get("a"); ok {
		t.Fatal("stale undersized entry served after oversized refresh")
	}
	if _, ok := c.Get("b"); !ok {
		t.Fatal("unrelated entry lost on oversized refresh")
	}
}
