package server

import (
	"fmt"
	"sync"
	"testing"
)

func TestLRUBasics(t *testing.T) {
	c := newLRU[int](2)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache hit")
	}
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
	// "b" is now least recently used; inserting "c" evicts it.
	c.Put("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Fatal("least-recently-used entry survived eviction")
	}
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("recently-used entry evicted: %v, %v", v, ok)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
	hits, misses := c.Stats()
	if hits != 2 || misses != 2 {
		t.Fatalf("stats = %d/%d, want 2/2", hits, misses)
	}
}

func TestLRUUpdateRefreshes(t *testing.T) {
	c := newLRU[int](2)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("a", 10) // refresh, not insert
	c.Put("c", 3)  // evicts b, not a
	if v, ok := c.Get("a"); !ok || v != 10 {
		t.Fatalf("refreshed entry = %v, %v", v, ok)
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("stale entry survived")
	}
}

func TestLRUDisabled(t *testing.T) {
	c := newLRU[int](-1)
	c.Put("a", 1)
	if _, ok := c.Get("a"); ok {
		t.Fatal("disabled cache stored an entry")
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestLRUConcurrentAccess(t *testing.T) {
	c := newLRU[int](16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", (g+i)%32)
				c.Put(key, i)
				c.Get(key)
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 16 {
		t.Fatalf("capacity exceeded: %d", c.Len())
	}
}
