package server

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestComputeEnforcesInflightCap(t *testing.T) {
	s := mustNew(t, Config{Timeout: 50 * time.Millisecond, MaxInflight: 1})
	started := make(chan struct{})
	block := make(chan struct{})
	hogDone := make(chan error, 1)
	go func() {
		_, err := s.compute(context.Background(), func(context.Context) (any, error) {
			close(started)
			<-block
			return "slow", nil
		})
		hogDone <- err
	}()
	<-started

	// The only slot is held by a worker that outlives its deadline, so a
	// second request must time out waiting for admission.
	_, err := s.compute(context.Background(), func(context.Context) (any, error) { return "fast", nil })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("saturated compute returned %v, want deadline exceeded", err)
	}

	// Once the hog finishes (releasing its slot), computes run again.
	// Its own caller may observe either the deadline or — if the
	// scheduler only ran its select after block closed — the late
	// result; both are fine, the cap is what matters.
	close(block)
	if err := <-hogDone; err != nil && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("hog compute failed unexpectedly: %v", err)
	}
	v, err := s.compute(context.Background(), func(context.Context) (any, error) { return "fast", nil })
	if err != nil || v != "fast" {
		t.Fatalf("compute after release = %v, %v", v, err)
	}
}
