package server

import (
	"encoding/json"
	"net/http"
	"testing"

	"github.com/factcheck/cleansel/internal/server/wire"
)

// wideSelectBody is a maxpr select over integer supports whose reachable
// drop magnitude is ~3e12 — the workload class the fixed 1e-9
// quantization grid used to bounce off (`dist:` grid errors inside the
// exact evaluator, silently degrading the solve to Monte Carlo). With
// the scale-aware grid the exact convolution path applies, so the
// response probability is the oracle-exact 7/8: each of the three
// objects independently reveals a 2e9 overstatement with probability
// 1/2, and any one of them drops the grand total past tau = 1e9.
const wideSelectBody = `{
  "objects": [
    {"name": "a", "current": 1000000000000, "cost": 1, "values": [1000000000000, 998000000000], "probs": [1, 1]},
    {"name": "b", "current": 1003000000000, "cost": 1, "values": [1003000000000, 1001000000000], "probs": [1, 1]},
    {"name": "c", "current": 993000000000, "cost": 1, "values": [993000000000, 991000000000], "probs": [1, 1]}
  ],
  "claim": {"name": "grand-total", "coef": {"0": 1, "1": 1, "2": 1}},
  "direction": "higher",
  "reference": 2996000000000,
  "perturbations": [
    {"claim": {"name": "grand-total", "coef": {"0": 1, "1": 1, "2": 1}}, "sensibility": 1}
  ],
  "measure": "fairness",
  "goal": "maxpr",
  "budget": 3,
  "tau": 1000000000
}`

// TestSelectWideMagnitudeEndToEnd drives the new large-magnitude
// coverage through the wire codec and /v1/select: the request succeeds
// and the objective comes back exactly 7/8 from the exact integer
// convolution grid.
func TestSelectWideMagnitudeEndToEnd(t *testing.T) {
	h := newTestServer(Config{})
	rec := do(t, h, http.MethodPost, "/v1/select", wideSelectBody)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var res wire.Result
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if len(res.IDs) != 3 || res.CostSpent != 3 {
		t.Fatalf("selection = %+v, want all three objects", res)
	}
	if res.Before != 0 {
		t.Fatalf("objective_before = %v, want 0", res.Before)
	}
	if res.After != 0.875 {
		t.Fatalf("objective_after = %v, want exactly 0.875", res.After)
	}

	// The repeated request answers identically from the result cache.
	rec = do(t, h, http.MethodPost, "/v1/select", wideSelectBody)
	if rec.Code != http.StatusOK || rec.Header().Get("X-Cache") != "hit" {
		t.Fatalf("repeat: status %d, X-Cache %q", rec.Code, rec.Header().Get("X-Cache"))
	}
}

// TestRankAndAssessWideMagnitude exercises the sibling endpoints on the
// same dataset: both must solve (no grid errors) with exact modular
// numbers where they apply.
func TestRankAndAssessWideMagnitude(t *testing.T) {
	h := newTestServer(Config{})
	body := `{
  "objects": [
    {"name": "a", "current": 1000000000000, "cost": 1, "values": [1000000000000, 998000000000], "probs": [1, 1]},
    {"name": "b", "current": 1003000000000, "cost": 1, "values": [1003000000000, 1001000000000], "probs": [1, 1]}
  ],
  "claim": {"name": "total", "coef": {"0": 1, "1": 1}},
  "perturbations": [
    {"claim": {"name": "total", "coef": {"0": 1, "1": 1}}, "sensibility": 1}
  ]`
	rec := do(t, h, http.MethodPost, "/v1/rank", body+`, "measure": "fairness"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("rank status %d: %s", rec.Code, rec.Body.String())
	}
	var ranked struct {
		Objects []wire.Benefit `json:"objects"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &ranked); err != nil {
		t.Fatal(err)
	}
	benefits := ranked.Objects
	if len(benefits) != 2 {
		t.Fatalf("benefits = %+v", benefits)
	}
	for _, b := range benefits {
		if b.Benefit != 1e18 { // a_i²·Var[X_i] = 1·(1e9)²
			t.Fatalf("benefit %v, want exactly 1e18", b.Benefit)
		}
	}
	rec = do(t, h, http.MethodPost, "/v1/assess", body+`}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("assess status %d: %s", rec.Code, rec.Body.String())
	}
	var rep wire.Report
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.BiasVariance != 2e18 {
		t.Fatalf("bias variance %v, want exactly 2e18", rep.BiasVariance)
	}
}
