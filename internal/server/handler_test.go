package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

const datasetBody = `{
  "name": "quickstart",
  "objects": [
    {"name": "jan", "current": 100, "cost": 1, "values": [95, 100, 105], "probs": [1, 1, 1]},
    {"name": "feb", "current": 120, "cost": 1, "values": [90, 120, 150], "probs": [1, 1, 1]},
    {"name": "mar", "current": 140, "cost": 1, "values": [130, 140, 150], "probs": [1, 1, 1]}
  ]
}`

const problemBody = `
  "claim": {"name": "mar-vs-jan", "coef": {"2": 1, "0": -1}},
  "direction": "higher",
  "perturbations": [
    {"claim": {"name": "feb-vs-jan", "coef": {"1": 1, "0": -1}}, "sensibility": 1},
    {"claim": {"name": "mar-vs-feb", "coef": {"2": 1, "1": -1}}, "sensibility": 1}
  ]`

// inlineObjects is the quickstart dataset as an inline-objects fragment.
const inlineObjects = `"objects": [
    {"name": "jan", "current": 100, "cost": 1, "values": [95, 100, 105], "probs": [1, 1, 1]},
    {"name": "feb", "current": 120, "cost": 1, "values": [90, 120, 150], "probs": [1, 1, 1]},
    {"name": "mar", "current": 140, "cost": 1, "values": [130, 140, 150], "probs": [1, 1, 1]}
  ],`

// selectBody builds a select request around a data reference: either
// inlineObjects or a `"dataset_id": "...",` fragment.
func selectBody(dataRef string) string {
	return `{` + dataRef + problemBody + `,
  "measure": "uniqueness",
  "goal": "minvar",
  "algorithm": "greedy",
  "budget": 1
}`
}

// mustNew builds a Server, failing the test on configuration errors
// (only possible when durable state is requested).
func mustNew(t testing.TB, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func newTestServer(cfg Config) http.Handler {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s.Handler()
}

// do runs one request through the handler and returns the recorder.
func do(t testing.TB, h http.Handler, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	var req *http.Request
	if body == "" {
		req = httptest.NewRequest(method, path, nil)
	} else {
		req = httptest.NewRequest(method, path, strings.NewReader(body))
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// decodeBody unmarshals a response body into a generic map.
func decodeBody(t *testing.T, rec *httptest.ResponseRecorder) map[string]any {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
		t.Fatalf("invalid JSON response %q: %v", rec.Body.String(), err)
	}
	return m
}

// wantError asserts a structured error response with the given status
// and code.
func wantError(t *testing.T, rec *httptest.ResponseRecorder, status int, code string) {
	t.Helper()
	if rec.Code != status {
		t.Fatalf("status %d, want %d (body: %s)", rec.Code, status, rec.Body.String())
	}
	m := decodeBody(t, rec)
	e, ok := m["error"].(map[string]any)
	if !ok {
		t.Fatalf("no structured error in %s", rec.Body.String())
	}
	if e["code"] != code {
		t.Fatalf("error code %v, want %s", e["code"], code)
	}
	if msg, _ := e["message"].(string); msg == "" {
		t.Fatal("error has no message")
	}
}

func TestSelectInlineObjects(t *testing.T) {
	h := newTestServer(Config{})
	rec := do(t, h, "POST", "/v1/select", selectBody(inlineObjects))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("X-Cache"); got != "miss" {
		t.Fatalf("X-Cache = %q, want miss", got)
	}
	m := decodeBody(t, rec)
	for _, key := range []string{"chosen", "ids", "cost_spent", "objective_before", "objective_after"} {
		if _, ok := m[key]; !ok {
			t.Fatalf("response missing %q: %s", key, rec.Body.String())
		}
	}
	if m["objective_before"].(float64) < m["objective_after"].(float64) {
		t.Fatalf("uncertainty rose: %s", rec.Body.String())
	}
}

func TestSelectOnStoredDatasetIsCacheHitOnRepeat(t *testing.T) {
	h := newTestServer(Config{})

	up := do(t, h, "POST", "/v1/datasets", datasetBody)
	if up.Code != http.StatusOK {
		t.Fatalf("upload status %d: %s", up.Code, up.Body.String())
	}
	id, _ := decodeBody(t, up)["id"].(string)
	if !strings.HasPrefix(id, "ds_") {
		t.Fatalf("bad dataset id %q", id)
	}

	body := selectBody(`"dataset_id": "` + id + `",`)
	first := do(t, h, "POST", "/v1/select", body)
	if first.Code != http.StatusOK {
		t.Fatalf("first select status %d: %s", first.Code, first.Body.String())
	}
	if got := first.Header().Get("X-Cache"); got != "miss" {
		t.Fatalf("first X-Cache = %q, want miss", got)
	}

	second := do(t, h, "POST", "/v1/select", body)
	if second.Code != http.StatusOK {
		t.Fatalf("second select status %d: %s", second.Code, second.Body.String())
	}
	if got := second.Header().Get("X-Cache"); got != "hit" {
		t.Fatalf("second X-Cache = %q, want hit (repeated identical request must be served from cache)", got)
	}
	if first.Body.String() != second.Body.String() {
		t.Fatalf("cache returned a different answer:\n%s\nvs\n%s", first.Body.String(), second.Body.String())
	}

	// A different request on the same dataset must not alias the entry.
	other := strings.Replace(body, `"budget": 1`, `"budget": 2`, 1)
	third := do(t, h, "POST", "/v1/select", other)
	if third.Code != http.StatusOK {
		t.Fatalf("third select status %d: %s", third.Code, third.Body.String())
	}
	if got := third.Header().Get("X-Cache"); got != "miss" {
		t.Fatalf("different budget served from cache: X-Cache = %q", got)
	}
}

func TestDatasetUploadIsIdempotent(t *testing.T) {
	h := newTestServer(Config{})
	a := decodeBody(t, do(t, h, "POST", "/v1/datasets", datasetBody))
	b := decodeBody(t, do(t, h, "POST", "/v1/datasets", datasetBody))
	if a["id"] != b["id"] {
		t.Fatalf("same content, different ids: %v vs %v", a["id"], b["id"])
	}
	if a["objects"].(float64) != 3 {
		t.Fatalf("objects = %v", a["objects"])
	}
	rec := do(t, h, "GET", "/v1/datasets/"+a["id"].(string), "")
	if rec.Code != http.StatusOK {
		t.Fatalf("metadata status %d", rec.Code)
	}
	if decodeBody(t, rec)["name"] != "quickstart" {
		t.Fatalf("metadata: %s", rec.Body.String())
	}
}

func TestRankEndpoint(t *testing.T) {
	h := newTestServer(Config{})
	body := `{` + problemBody + `, "measure": "uniqueness",
  "objects": [
    {"name": "jan", "current": 100, "cost": 1, "values": [95, 100, 105], "probs": [1, 1, 1]},
    {"name": "feb", "current": 120, "cost": 1, "values": [90, 120, 150], "probs": [1, 1, 1]},
    {"name": "mar", "current": 140, "cost": 1, "values": [130, 140, 150], "probs": [1, 1, 1]}
  ]}`
	rec := do(t, h, "POST", "/v1/rank", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	objs, ok := decodeBody(t, rec)["objects"].([]any)
	if !ok || len(objs) != 3 {
		t.Fatalf("rank response: %s", rec.Body.String())
	}
	first := objs[0].(map[string]any)
	// feb has by far the widest support, so it must rank first.
	if first["name"] != "feb" {
		t.Fatalf("top-ranked object %v, want feb", first["name"])
	}
	if do(t, h, "POST", "/v1/rank", body).Header().Get("X-Cache") != "hit" {
		t.Fatal("repeated rank request missed the cache")
	}
}

func TestAssessEndpoint(t *testing.T) {
	h := newTestServer(Config{})
	body := `{` + problemBody + `,
  "objects": [
    {"name": "jan", "current": 100, "cost": 1, "values": [95, 100, 105], "probs": [1, 1, 1]},
    {"name": "feb", "current": 120, "cost": 1, "values": [90, 120, 150], "probs": [1, 1, 1]},
    {"name": "mar", "current": 140, "cost": 1, "values": [130, 140, 150], "probs": [1, 1, 1]}
  ]}`
	rec := do(t, h, "POST", "/v1/assess", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	m := decodeBody(t, rec)
	for _, key := range []string{"bias", "bias_variance", "duplicity", "fragility", "perturbations"} {
		if _, ok := m[key]; !ok {
			t.Fatalf("assess response missing %q: %s", key, rec.Body.String())
		}
	}
}

func TestErrorPaths(t *testing.T) {
	h := newTestServer(Config{})
	badProbs := strings.Replace(selectBody(inlineObjects), `"probs": [1, 1, 1]`, `"probs": [1, -1, 1]`, 1)
	unknownMeasure := strings.Replace(selectBody(inlineObjects), `"measure": "uniqueness"`, `"measure": "vibes"`, 1)

	cases := []struct {
		name   string
		method string
		path   string
		body   string
		status int
		code   string
	}{
		{"bad probabilities", "POST", "/v1/select", badProbs, http.StatusBadRequest, "bad_request"},
		{"unknown measure", "POST", "/v1/select", unknownMeasure, http.StatusBadRequest, "bad_request"},
		{"malformed json", "POST", "/v1/select", `{"objects": [`, http.StatusBadRequest, "bad_request"},
		{"unknown field", "POST", "/v1/select", `{"wat": 1}`, http.StatusBadRequest, "bad_request"},
		{"unknown dataset", "POST", "/v1/select", selectBody(`"dataset_id": "ds_missing",`), http.StatusNotFound, "not_found"},
		{"objects and dataset_id", "POST", "/v1/select", strings.Replace(selectBody(`"dataset_id": "ds_x",`), `"claim"`, `"objects": [{"name": "a", "current": 1, "cost": 1, "values": [1], "probs": [1]}], "claim"`, 1), http.StatusBadRequest, "bad_request"},
		{"bad dataset upload", "POST", "/v1/datasets", `{"objects": [{"name": "x", "current": 1, "cost": 1}]}`, http.StatusBadRequest, "bad_request"},
		{"dataset metadata missing", "GET", "/v1/datasets/ds_nope", "", http.StatusNotFound, "not_found"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantError(t, do(t, h, tc.method, tc.path, tc.body), tc.status, tc.code)
		})
	}
}

func TestOversizedPayloadIs413(t *testing.T) {
	h := newTestServer(Config{MaxBodyBytes: 128})
	wantError(t, do(t, h, "POST", "/v1/select", selectBody(inlineObjects)),
		http.StatusRequestEntityTooLarge, "payload_too_large")
}

func TestComputeTimeoutIs504(t *testing.T) {
	h := newTestServer(Config{Timeout: time.Nanosecond})
	wantError(t, do(t, h, "POST", "/v1/select", selectBody(inlineObjects)),
		http.StatusGatewayTimeout, "timeout")
}

func TestHealthz(t *testing.T) {
	h := newTestServer(Config{})
	do(t, h, "POST", "/v1/select", selectBody(inlineObjects))
	do(t, h, "POST", "/v1/select", selectBody(inlineObjects))
	rec := do(t, h, "GET", "/healthz", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	m := decodeBody(t, rec)
	if m["status"] != "ok" {
		t.Fatalf("health: %s", rec.Body.String())
	}
	cache, ok := m["cache"].(map[string]any)
	if !ok {
		t.Fatalf("no cache stats: %s", rec.Body.String())
	}
	if cache["hits"].(float64) < 1 || cache["misses"].(float64) < 1 {
		t.Fatalf("cache stats not tracking: %s", rec.Body.String())
	}
	if m["requests"].(float64) < 3 {
		t.Fatalf("request counter not tracking: %s", rec.Body.String())
	}
}

func TestMethodNotAllowed(t *testing.T) {
	h := newTestServer(Config{})
	if rec := do(t, h, "GET", "/v1/select", ""); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/select status %d, want 405", rec.Code)
	}
}
