package persist

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
)

// SnapshotVersion is the current cache snapshot format version.
//
// A snapshot is the 8-byte magic "CLEANSNP", a big-endian uint32
// version, a big-endian uint64 entry count, the entries (uint32 key
// length, key bytes, uint64 value length, value bytes), and finally
// the SHA-256 of everything before it. Any truncation or corruption —
// short file, bad magic, unknown version, checksum mismatch, stray
// trailing bytes — fails ReadSnapshot with a descriptive error; it can
// never yield a partially or wrongly restored cache.
const SnapshotVersion = 1

const snapshotMagic = "CLEANSNP"

// Entry is one cache entry in a snapshot. Snapshots hold entries least
// recently used first, so re-inserting them in order reproduces the
// cache's recency order.
type Entry struct {
	Key   string
	Value []byte
}

// WriteSnapshot atomically replaces the snapshot at path with the
// given entries (a temp-file write and rename, like dataset files, so
// a crash mid-snapshot leaves the previous snapshot intact).
func WriteSnapshot(path string, entries []Entry) error {
	var buf bytes.Buffer
	buf.WriteString(snapshotMagic)
	var u32 [4]byte
	var u64 [8]byte
	binary.BigEndian.PutUint32(u32[:], SnapshotVersion)
	buf.Write(u32[:])
	binary.BigEndian.PutUint64(u64[:], uint64(len(entries)))
	buf.Write(u64[:])
	for _, e := range entries {
		binary.BigEndian.PutUint32(u32[:], uint32(len(e.Key)))
		buf.Write(u32[:])
		buf.WriteString(e.Key)
		binary.BigEndian.PutUint64(u64[:], uint64(len(e.Value)))
		buf.Write(u64[:])
		buf.Write(e.Value)
	}
	sum := sha256.Sum256(buf.Bytes())
	buf.Write(sum[:])
	if err := atomicWrite(path, buf.Bytes()); err != nil {
		return fmt.Errorf("writing snapshot: %w", err)
	}
	return nil
}

// ReadSnapshot reads and verifies the snapshot at path. A missing file
// returns an error satisfying errors.Is(err, fs.ErrNotExist) (the
// normal first-boot case); anything structurally wrong returns a
// descriptive error and no entries.
func ReadSnapshot(path string) ([]Entry, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	header := len(snapshotMagic) + 4 + 8
	if len(raw) < header+sha256.Size {
		return nil, fmt.Errorf("snapshot truncated: %d bytes", len(raw))
	}
	payload, sum := raw[:len(raw)-sha256.Size], raw[len(raw)-sha256.Size:]
	if string(payload[:len(snapshotMagic)]) != snapshotMagic {
		return nil, errors.New("snapshot: bad magic")
	}
	if v := binary.BigEndian.Uint32(payload[len(snapshotMagic):]); v != SnapshotVersion {
		return nil, fmt.Errorf("snapshot: unsupported version %d", v)
	}
	if want := sha256.Sum256(payload); !bytes.Equal(want[:], sum) {
		return nil, errors.New("snapshot: checksum mismatch (truncated or corrupt)")
	}
	count := binary.BigEndian.Uint64(payload[len(snapshotMagic)+4:])
	rest := payload[header:]
	// The checksum already vouches for the structure; the bounds checks
	// below are defense in depth against writer bugs.
	var entries []Entry
	for i := uint64(0); i < count; i++ {
		if len(rest) < 4 {
			return nil, fmt.Errorf("snapshot: entry %d key length missing", i)
		}
		klen := binary.BigEndian.Uint32(rest)
		rest = rest[4:]
		if uint64(len(rest)) < uint64(klen) {
			return nil, fmt.Errorf("snapshot: entry %d key truncated", i)
		}
		key := string(rest[:klen])
		rest = rest[klen:]
		if len(rest) < 8 {
			return nil, fmt.Errorf("snapshot: entry %d value length missing", i)
		}
		vlen := binary.BigEndian.Uint64(rest)
		rest = rest[8:]
		if uint64(len(rest)) < vlen {
			return nil, fmt.Errorf("snapshot: entry %d value truncated", i)
		}
		entries = append(entries, Entry{Key: key, Value: append([]byte(nil), rest[:vlen]...)})
		rest = rest[vlen:]
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("snapshot: %d trailing bytes after %d entries", len(rest), count)
	}
	return entries, nil
}
