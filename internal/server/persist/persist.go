// Package persist gives the cleanseld serving layer durable state.
//
// It has two halves, both optional and both off by default (the server
// stays in-memory only unless configured otherwise):
//
//   - DatasetDir: a disk-backed index for the content-addressed dataset
//     store. Each dataset is one file named by its content hash
//     (ds_<sha256>.json), written via a same-directory temp file and
//     atomic rename so a crash can never leave a half-written dataset
//     under a valid name. Files are indexed (not parsed) on open and
//     loaded lazily on first Get; entry and byte budgets are enforced
//     against the on-disk index, evicting least-recently-used files.
//
//   - Snapshot: a versioned, checksummed on-disk format for the LRU
//     result cache, written periodically and on graceful shutdown and
//     restored on startup.
//
// Recovery never crashes and never serves wrong bytes: a truncated or
// corrupt dataset file (bad JSON, wrong format version, content hash
// not matching the file name) is quarantined, logged, and counted; a
// damaged snapshot is detected by its checksum and skipped, starting
// the cache cold.
package persist

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
)

const (
	// DatasetFormat is the current dataset file format version.
	DatasetFormat = 1

	tmpPrefix     = ".tmp-"
	corruptSuffix = ".corrupt"
)

// ErrTooLarge rejects a dataset that can never fit the on-disk byte
// budget; callers treat it as the client's fault (413), not a server
// persistence failure.
var ErrTooLarge = errors.New("dataset exceeds the on-disk byte budget")

// datasetFile is the on-disk representation of one uploaded dataset.
// Objects holds the canonical JSON encoding of the upload's objects —
// exactly the bytes whose SHA-256 is the dataset's content-addressed
// ID — so integrity is verified against the file's own name on load
// and a Get round-trips the upload bit-identically.
type datasetFile struct {
	Format  int             `json:"format"`
	Name    string          `json:"name,omitempty"`
	Objects json.RawMessage `json:"objects"`
}

// DatasetDir manages the content-hash-named dataset files under one
// directory. All methods are safe for concurrent use.
type DatasetDir struct {
	dir        string
	log        *slog.Logger
	maxEntries int
	maxBytes   int64

	mu    sync.Mutex
	order *list.List               // recency order; front = most recent
	index map[string]*list.Element // id -> element holding *dsEntry
	bytes int64

	loadErrors atomic.Uint64
}

type dsEntry struct {
	id   string
	size int64
}

// OpenDatasets opens (creating if needed) a dataset directory bounded
// by maxEntries entries (0 = unbounded) and maxBytes total file bytes
// (0 = unbounded). Existing dataset files are indexed by name and size
// only — parsing and integrity checks happen lazily on Get — with
// recency seeded from file modification times. Leftover temp files
// from a crashed write are removed and counted as load errors (the
// interrupted upload was never acknowledged, but the operator should
// see that it happened).
func OpenDatasets(dir string, maxEntries int, maxBytes int64, log *slog.Logger) (*DatasetDir, error) {
	if log == nil {
		log = slog.New(slog.DiscardHandler)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("creating dataset dir: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("scanning dataset dir: %w", err)
	}
	d := &DatasetDir{
		dir:        dir,
		log:        log,
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		order:      list.New(),
		index:      make(map[string]*list.Element),
	}
	type found struct {
		id    string
		size  int64
		mtime int64
	}
	var scan []found
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		switch {
		case strings.HasPrefix(name, tmpPrefix):
			// A crash between temp write and rename: the upload was
			// never acknowledged, so nothing is lost, but surface it.
			d.loadErrors.Add(1)
			log.Warn("persist: removing leftover temp file", "file", name)
			if err := os.Remove(filepath.Join(dir, name)); err != nil {
				log.Warn("persist: removing temp file", "file", name, "err", err)
			}
			continue
		case strings.HasSuffix(name, corruptSuffix):
			// Quarantined on an earlier run; kept for post-mortem.
			continue
		}
		id, ok := idFromFileName(name)
		if !ok {
			log.Warn("persist: ignoring unrecognized file in dataset dir", "file", name)
			continue
		}
		info, err := e.Info()
		if err != nil {
			d.loadErrors.Add(1)
			log.Warn("persist: stat dataset file", "file", name, "err", err)
			continue
		}
		scan = append(scan, found{id: id, size: info.Size(), mtime: info.ModTime().UnixNano()})
	}
	sort.Slice(scan, func(i, j int) bool { // oldest first; ties by id for determinism
		if scan[i].mtime != scan[j].mtime {
			return scan[i].mtime < scan[j].mtime
		}
		return scan[i].id < scan[j].id
	})
	for _, f := range scan {
		d.index[f.id] = d.order.PushFront(&dsEntry{id: f.id, size: f.size})
		d.bytes += f.size
	}
	d.mu.Lock()
	d.enforceBudgetsLocked()
	d.mu.Unlock()
	return d, nil
}

// idFromFileName recovers a dataset ID from its file name, rejecting
// anything that is not ds_<64 hex digits>.json.
func idFromFileName(name string) (string, bool) {
	id, ok := strings.CutSuffix(name, ".json")
	if !ok {
		return "", false
	}
	hexPart, ok := strings.CutPrefix(id, "ds_")
	if !ok || len(hexPart) != 2*sha256.Size {
		return "", false
	}
	if _, err := hex.DecodeString(hexPart); err != nil {
		return "", false
	}
	return id, true
}

func (d *DatasetDir) path(id string) string { return filepath.Join(d.dir, id+".json") }

// Put durably stores a dataset under its content-addressed id. The
// canonical objects encoding must be the bytes the id hashes; name is
// the display label (latest wins on re-upload). The file reaches its
// final name only through an atomic rename of a fully written temp
// file. Oversized datasets are rejected up front rather than flushing
// every resident file for something that can never fit.
func (d *DatasetDir) Put(id, name string, canonicalObjects []byte) error {
	body, err := json.Marshal(datasetFile{Format: DatasetFormat, Name: name, Objects: canonicalObjects})
	if err != nil {
		return fmt.Errorf("encoding dataset file: %w", err)
	}
	size := int64(len(body))
	if d.maxBytes > 0 && size > d.maxBytes {
		return fmt.Errorf("%w: dataset %s file is %d bytes, budget %d", ErrTooLarge, id, size, d.maxBytes)
	}
	if err := atomicWrite(d.path(id), body); err != nil {
		return fmt.Errorf("writing dataset file: %w", err)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if el, ok := d.index[id]; ok {
		e := el.Value.(*dsEntry)
		d.bytes += size - e.size
		e.size = size
		d.order.MoveToFront(el)
	} else {
		d.index[id] = d.order.PushFront(&dsEntry{id: id, size: size})
		d.bytes += size
	}
	d.enforceBudgetsLocked()
	return nil
}

// Get loads a dataset by id, verifying integrity: the file must parse
// as the current format and the SHA-256 of its canonical objects
// encoding must reproduce the content-addressed file name. A missing
// id returns fs.ErrNotExist; a truncated or corrupt file is
// quarantined (counted, logged, moved aside) and reported as missing —
// never a crash, never silently wrong bytes.
func (d *DatasetDir) Get(id string) (name string, canonicalObjects []byte, err error) {
	d.mu.Lock()
	el, ok := d.index[id]
	if ok {
		d.order.MoveToFront(el)
	}
	d.mu.Unlock()
	if !ok {
		return "", nil, fs.ErrNotExist
	}
	raw, err := os.ReadFile(d.path(id))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			// Not corruption: the file was removed under us (most
			// likely a concurrent budget eviction between the index
			// check and the read). Drop the stale index entry silently.
			d.drop(id)
			return "", nil, fs.ErrNotExist
		}
		d.Quarantine(id, err)
		return "", nil, fs.ErrNotExist
	}
	f, err := decodeDatasetFile(raw)
	if err != nil {
		d.Quarantine(id, err)
		return "", nil, fs.ErrNotExist
	}
	if sum := sha256.Sum256(f.Objects); "ds_"+hex.EncodeToString(sum[:]) != id {
		d.Quarantine(id, errors.New("content hash does not match file name"))
		return "", nil, fs.ErrNotExist
	}
	return f.Name, f.Objects, nil
}

// decodeDatasetFile strictly parses a dataset file.
func decodeDatasetFile(raw []byte) (datasetFile, error) {
	var f datasetFile
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return f, fmt.Errorf("parsing dataset file: %w", err)
	}
	if dec.More() {
		return f, errors.New("trailing data after dataset file")
	}
	if f.Format != DatasetFormat {
		return f, fmt.Errorf("unsupported dataset format %d", f.Format)
	}
	if len(f.Objects) == 0 {
		return f, errors.New("dataset file has no objects")
	}
	return f, nil
}

// drop removes id from the index without counting a load error (used
// when the file legitimately disappeared, e.g. a concurrent eviction).
func (d *DatasetDir) drop(id string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if el, ok := d.index[id]; ok {
		e := el.Value.(*dsEntry)
		d.order.Remove(el)
		delete(d.index, id)
		d.bytes -= e.size
	}
}

// Touch marks id most recently used in the on-disk index, if present.
// The serving layer calls it on in-memory cache hits so that a hot
// dataset's durable copy cannot age out of the disk budget while the
// compiled copy keeps absorbing every request.
func (d *DatasetDir) Touch(id string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if el, ok := d.index[id]; ok {
		d.order.MoveToFront(el)
	}
}

// Quarantine drops id from the index and moves its file aside
// (*.corrupt, kept for post-mortem), counting the load error. The
// daemon keeps serving; the caller sees the dataset as missing.
func (d *DatasetDir) Quarantine(id string, cause error) {
	d.loadErrors.Add(1)
	d.log.Warn("persist: dataset unusable, quarantined", "id", id, "err", cause)
	d.drop(id)
	if err := os.Rename(d.path(id), d.path(id)+corruptSuffix); err != nil && !errors.Is(err, fs.ErrNotExist) {
		d.log.Warn("persist: quarantining dataset file", "id", id, "err", err)
	}
}

// enforceBudgetsLocked deletes least-recently-used dataset files while
// either budget is exceeded. Callers hold d.mu.
func (d *DatasetDir) enforceBudgetsLocked() {
	for d.order.Len() > 0 &&
		((d.maxEntries > 0 && d.order.Len() > d.maxEntries) ||
			(d.maxBytes > 0 && d.bytes > d.maxBytes)) {
		oldest := d.order.Back()
		e := oldest.Value.(*dsEntry)
		d.order.Remove(oldest)
		delete(d.index, e.id)
		d.bytes -= e.size
		if err := os.Remove(d.path(e.id)); err != nil && !errors.Is(err, fs.ErrNotExist) {
			d.log.Warn("persist: removing evicted dataset file", "id", e.id, "err", err)
		} else {
			d.log.Info("persist: evicted dataset beyond budget", "id", e.id, "bytes", e.size)
		}
	}
}

// Has reports whether id is present in the on-disk index (without
// touching recency or reading the file).
func (d *DatasetDir) Has(id string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	_, ok := d.index[id]
	return ok
}

// Len returns the number of indexed on-disk datasets.
func (d *DatasetDir) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.order.Len()
}

// Bytes returns the total size of the indexed on-disk dataset files.
func (d *DatasetDir) Bytes() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.bytes
}

// LoadErrors returns the cumulative count of unusable state detected:
// leftover temp files at open plus files quarantined on load.
func (d *DatasetDir) LoadErrors() uint64 { return d.loadErrors.Load() }

// atomicWrite writes data to path via a same-directory temp file,
// fsync, rename, and a directory fsync, so readers never observe a
// partial file under the final name and an acknowledged write survives
// power loss (the rename's directory entry is on disk before we
// report success).
func atomicWrite(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, tmpPrefix+"*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	_, werr := tmp.Write(data)
	serr := tmp.Sync()
	cerr := tmp.Close()
	if err := errors.Join(werr, serr, cerr); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory; filesystems and platforms that refuse
// to fsync directories (EINVAL/ENOTSUP, or directories unopenable for
// sync) are reported as success — the rename itself succeeded and
// there is nothing more this process can do.
func syncDir(dir string) error {
	df, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer df.Close()
	if err := df.Sync(); err != nil &&
		!errors.Is(err, errors.ErrUnsupported) &&
		!errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) {
		return err
	}
	return nil
}
