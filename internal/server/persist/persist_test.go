package persist

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// canonical builds a canonical objects encoding and its dataset id the
// same way the server's store does.
func canonical(t *testing.T, body string) (string, []byte) {
	t.Helper()
	sum := sha256.Sum256([]byte(body))
	return "ds_" + hex.EncodeToString(sum[:]), []byte(body)
}

func mustOpen(t *testing.T, dir string, maxEntries int, maxBytes int64) *DatasetDir {
	t.Helper()
	d, err := OpenDatasets(dir, maxEntries, maxBytes, nil)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDatasetRoundTripAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	d := mustOpen(t, dir, 0, 0)
	id, obj := canonical(t, `[{"name":"x","current":1}]`)
	if err := d.Put(id, "first", obj); err != nil {
		t.Fatal(err)
	}
	name, got, err := d.Get(id)
	if err != nil || name != "first" || !bytes.Equal(got, obj) {
		t.Fatalf("Get = %q, %q, %v; want bit-identical round trip", name, got, err)
	}

	// Re-upload under a new label: latest name wins, bytes unchanged.
	if err := d.Put(id, "second", obj); err != nil {
		t.Fatal(err)
	}

	// A fresh index over the same directory must serve the same bytes
	// (lazy load: Open does not parse, Get verifies).
	d2 := mustOpen(t, dir, 0, 0)
	if d2.Len() != 1 || d2.LoadErrors() != 0 {
		t.Fatalf("reopened: Len=%d LoadErrors=%d", d2.Len(), d2.LoadErrors())
	}
	name, got, err = d2.Get(id)
	if err != nil || name != "second" || !bytes.Equal(got, obj) {
		t.Fatalf("reopened Get = %q, %q, %v", name, got, err)
	}
}

func TestGetMissingIsNotExist(t *testing.T) {
	d := mustOpen(t, t.TempDir(), 0, 0)
	id, _ := canonical(t, `[1]`)
	if _, _, err := d.Get(id); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("missing Get err = %v, want fs.ErrNotExist", err)
	}
	if d.LoadErrors() != 0 {
		t.Fatal("a plain miss must not count as a load error")
	}
}

func TestCorruptDatasetFileQuarantined(t *testing.T) {
	// Three corruption shapes: truncation (unparseable JSON), a valid
	// file whose content no longer matches its name, and raw garbage.
	cases := []struct {
		name    string
		corrupt func(path string) error
	}{
		{"truncated", func(path string) error {
			raw, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			return os.WriteFile(path, raw[:len(raw)/2], 0o644)
		}},
		{"hash mismatch", func(path string) error {
			// Valid format, wrong content for the name.
			return os.WriteFile(path, []byte(`{"format":1,"name":"evil","objects":[2]}`), 0o644)
		}},
		{"garbage", func(path string) error {
			return os.WriteFile(path, []byte("\x00\x01not json"), 0o644)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			d := mustOpen(t, dir, 0, 0)
			id, obj := canonical(t, `[{"v":1}]`)
			if err := d.Put(id, "ok", obj); err != nil {
				t.Fatal(err)
			}
			if err := tc.corrupt(filepath.Join(dir, id+".json")); err != nil {
				t.Fatal(err)
			}
			d2 := mustOpen(t, dir, 0, 0) // index sees the file; damage is caught on Get
			if _, _, err := d2.Get(id); !errors.Is(err, fs.ErrNotExist) {
				t.Fatalf("corrupt Get err = %v, want fs.ErrNotExist", err)
			}
			if d2.LoadErrors() != 1 {
				t.Fatalf("LoadErrors = %d, want 1", d2.LoadErrors())
			}
			if d2.Len() != 0 {
				t.Fatalf("quarantined entry still indexed: Len = %d", d2.Len())
			}
			if _, err := os.Stat(filepath.Join(dir, id+".json"+corruptSuffix)); err != nil {
				t.Fatalf("no quarantine file: %v", err)
			}
			// Repeated Gets stay a plain miss, not repeated errors.
			d2.Get(id)
			if d2.LoadErrors() != 1 {
				t.Fatalf("LoadErrors grew on repeat miss: %d", d2.LoadErrors())
			}
			// A reopen skips the quarantined file silently.
			d3 := mustOpen(t, dir, 0, 0)
			if d3.Len() != 0 || d3.LoadErrors() != 0 {
				t.Fatalf("reopen after quarantine: Len=%d LoadErrors=%d", d3.Len(), d3.LoadErrors())
			}
		})
	}
}

func TestLeftoverTempFileRemovedAndCounted(t *testing.T) {
	dir := t.TempDir()
	tmp := filepath.Join(dir, tmpPrefix+"123456")
	if err := os.WriteFile(tmp, []byte("partial write"), 0o644); err != nil {
		t.Fatal(err)
	}
	d := mustOpen(t, dir, 0, 0)
	if d.LoadErrors() != 1 {
		t.Fatalf("LoadErrors = %d, want 1 for the leftover temp file", d.LoadErrors())
	}
	if _, err := os.Stat(tmp); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("temp file not removed: %v", err)
	}
	if d.Len() != 0 {
		t.Fatalf("temp file indexed: Len = %d", d.Len())
	}
}

func TestByteBudgetEvictsOldestFromDisk(t *testing.T) {
	dir := t.TempDir()
	// Budget fits roughly two of the three files.
	idA, objA := canonical(t, `[{"v":"aaaaaaaaaa"}]`)
	idB, objB := canonical(t, `[{"v":"bbbbbbbbbb"}]`)
	idC, objC := canonical(t, `[{"v":"cccccccccc"}]`)
	fileSize := int64(len(objA)) + 40 // wrapper overhead, measured loosely
	d := mustOpen(t, dir, 0, 2*fileSize)
	for _, p := range []struct {
		id  string
		obj []byte
	}{{idA, objA}, {idB, objB}, {idC, objC}} {
		if err := d.Put(p.id, "", p.obj); err != nil {
			t.Fatal(err)
		}
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d, want 2 after eviction", d.Len())
	}
	if _, _, err := d.Get(idA); !errors.Is(err, fs.ErrNotExist) {
		t.Fatal("oldest dataset survived the byte budget")
	}
	if _, err := os.Stat(filepath.Join(dir, idA+".json")); !errors.Is(err, fs.ErrNotExist) {
		t.Fatal("evicted dataset file still on disk")
	}
	for _, id := range []string{idB, idC} {
		if _, _, err := d.Get(id); err != nil {
			t.Fatalf("recent dataset %s evicted: %v", id, err)
		}
	}
	if d.LoadErrors() != 0 {
		t.Fatalf("evictions counted as load errors: %d", d.LoadErrors())
	}
}

func TestEntryBudgetAppliesOnReopen(t *testing.T) {
	dir := t.TempDir()
	d := mustOpen(t, dir, 0, 0)
	ids := make([]string, 3)
	for i, body := range []string{`[1]`, `[2]`, `[3]`} {
		id, obj := canonical(t, body)
		ids[i] = id
		if err := d.Put(id, "", obj); err != nil {
			t.Fatal(err)
		}
		// Distinct mtimes so the reopen scan has a deterministic order.
		old := time.Now().Add(time.Duration(i-3) * time.Hour)
		if err := os.Chtimes(filepath.Join(dir, id+".json"), old, old); err != nil {
			t.Fatal(err)
		}
	}
	d2 := mustOpen(t, dir, 2, 0)
	if d2.Len() != 2 {
		t.Fatalf("reopened Len = %d, want 2", d2.Len())
	}
	if _, _, err := d2.Get(ids[0]); !errors.Is(err, fs.ErrNotExist) {
		t.Fatal("oldest-mtime dataset survived the entry budget on reopen")
	}
}

func TestFileRemovedBehindIndexIsNotALoadError(t *testing.T) {
	dir := t.TempDir()
	d := mustOpen(t, dir, 0, 0)
	id, obj := canonical(t, `[{"v":1}]`)
	if err := d.Put(id, "", obj); err != nil {
		t.Fatal(err)
	}
	// Simulate the eviction race: the file vanishes while the index
	// still lists it (a concurrent budget eviction, not corruption).
	if err := os.Remove(filepath.Join(dir, id+".json")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.Get(id); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("Get err = %v, want fs.ErrNotExist", err)
	}
	if d.LoadErrors() != 0 {
		t.Fatalf("a vanished file counted as a load error: %d", d.LoadErrors())
	}
	if d.Len() != 0 {
		t.Fatalf("stale index entry survived: Len = %d", d.Len())
	}
}

func TestTouchKeepsEntryHotAcrossEviction(t *testing.T) {
	d := mustOpen(t, t.TempDir(), 2, 0)
	idA, objA := canonical(t, `[1]`)
	idB, objB := canonical(t, `[2]`)
	idC, objC := canonical(t, `[3]`)
	if err := d.Put(idA, "", objA); err != nil {
		t.Fatal(err)
	}
	if err := d.Put(idB, "", objB); err != nil {
		t.Fatal(err)
	}
	d.Touch(idA) // an in-memory cache hit refreshes the durable copy too
	if err := d.Put(idC, "", objC); err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.Get(idA); err != nil {
		t.Fatal("touched dataset was evicted")
	}
	if _, _, err := d.Get(idB); !errors.Is(err, fs.ErrNotExist) {
		t.Fatal("untouched oldest dataset survived the entry budget")
	}
}

func TestPutRejectsOversizedDataset(t *testing.T) {
	d := mustOpen(t, t.TempDir(), 0, 16)
	id, obj := canonical(t, `[{"much":"too big for sixteen bytes"}]`)
	if err := d.Put(id, "", obj); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized Put err = %v, want ErrTooLarge", err)
	}
	if d.Len() != 0 || d.Bytes() != 0 {
		t.Fatalf("oversized Put left state: Len=%d Bytes=%d", d.Len(), d.Bytes())
	}
}

// --- Snapshot ---------------------------------------------------------------

func TestSnapshotRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.snap")
	in := []Entry{
		{Key: "old", Value: []byte(`{"a":1}`)},
		{Key: "empty", Value: nil},
		{Key: "new", Value: []byte{0, 1, 2, 255}},
	}
	if err := WriteSnapshot(path, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("restored %d entries, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].Key != in[i].Key || !bytes.Equal(out[i].Value, in[i].Value) {
			t.Fatalf("entry %d = %+v, want %+v (order and bytes must survive)", i, out[i], in[i])
		}
	}

	// Rewriting is atomic-by-rename: the old snapshot is replaced whole.
	if err := WriteSnapshot(path, in[:1]); err != nil {
		t.Fatal(err)
	}
	if out, err = ReadSnapshot(path); err != nil || len(out) != 1 {
		t.Fatalf("rewritten snapshot: %d entries, %v", len(out), err)
	}
}

func TestSnapshotEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.snap")
	if err := WriteSnapshot(path, nil); err != nil {
		t.Fatal(err)
	}
	out, err := ReadSnapshot(path)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty snapshot: %v entries, %v", out, err)
	}
}

func TestSnapshotMissingIsNotExist(t *testing.T) {
	_, err := ReadSnapshot(filepath.Join(t.TempDir(), "nope.snap"))
	if !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("err = %v, want fs.ErrNotExist", err)
	}
}

func TestSnapshotDamageDetected(t *testing.T) {
	write := func(t *testing.T) (string, []byte) {
		t.Helper()
		path := filepath.Join(t.TempDir(), "cache.snap")
		if err := WriteSnapshot(path, []Entry{{Key: "k", Value: []byte("value bytes")}}); err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return path, raw
	}
	cases := []struct {
		name   string
		mangle func(raw []byte) []byte
	}{
		{"truncated mid-entry", func(raw []byte) []byte { return raw[:len(raw)-40] }},
		{"truncated to header", func(raw []byte) []byte { return raw[:10] }},
		{"flipped payload byte", func(raw []byte) []byte { raw[25] ^= 0x40; return raw }},
		{"flipped checksum byte", func(raw []byte) []byte { raw[len(raw)-1] ^= 1; return raw }},
		{"bad magic", func(raw []byte) []byte { raw[0] = 'X'; return raw }},
		{"future version", func(raw []byte) []byte { raw[len(snapshotMagic)+3] = 99; return raw }},
		{"trailing bytes", func(raw []byte) []byte { return append(raw, 0) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path, raw := write(t)
			if err := os.WriteFile(path, tc.mangle(raw), 0o644); err != nil {
				t.Fatal(err)
			}
			if got, err := ReadSnapshot(path); err == nil {
				t.Fatalf("damaged snapshot read back %d entries without error", len(got))
			}
		})
	}
}
