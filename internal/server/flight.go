package server

import (
	"context"
	"errors"
	"sync"

	"github.com/factcheck/cleansel/internal/obs"
)

// flightGroup coalesces concurrent identical computations: while a
// result for a key is being computed, later callers with the same key
// wait for that in-flight call instead of starting their own — the
// thundering-herd pattern when many checkers fire the same viral-claim
// request at once computes exactly once.
//
// The computation runs on its own goroutine under a context detached
// from any single request: it is cancelled only when every waiter has
// abandoned (each waiter leaves when its own request context is done),
// so one impatient client cannot kill a solve that others still want —
// and a solve nobody wants any more stops instead of burning a core.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
	// coalesced counts callers served by joining an in-flight call. It
	// is an obs.Counter so the server can register the same object on
	// /metrics — one source for both the scrape and /healthz.
	coalesced *obs.Counter
}

type flightCall struct {
	cancel  context.CancelFunc
	done    chan struct{}
	waiters int
	// abandoned marks a call whose last waiter left: its context is
	// cancelled but its goroutine may not have returned yet. New
	// callers must not join it — they would inherit a doomed
	// context.Canceled — so Do replaces it with a fresh call.
	abandoned bool
	body      []byte
	err       error
}

func newFlightGroup() *flightGroup {
	return newFlightGroupCounting(&obs.Counter{})
}

// newFlightGroupCounting builds a group ticking coalesced joins into
// the given (typically metrics-registered) counter.
func newFlightGroupCounting(coalesced *obs.Counter) *flightGroup {
	return &flightGroup{calls: make(map[string]*flightCall), coalesced: coalesced}
}

// Coalesced returns how many callers have been served by joining an
// already in-flight computation.
func (g *flightGroup) Coalesced() uint64 {
	return uint64(g.coalesced.Value())
}

// InFlight returns the number of joinable computations currently
// running (abandoned calls winding down are not counted).
func (g *flightGroup) InFlight() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	n := 0
	for _, c := range g.calls {
		if !c.abandoned {
			n++
		}
	}
	return n
}

// Do returns fn's result for key, starting fn only if no call for key
// is in flight; otherwise it waits on the existing call. shared
// reports whether this caller joined rather than started the call.
// When ctx is done before the call finishes, Do returns the context's
// cause and the caller stops waiting; the computation itself keeps
// running until its last waiter is gone.
func (g *flightGroup) Do(ctx context.Context, key string, fn func(context.Context) ([]byte, error)) (body []byte, shared bool, err error) {
	g.mu.Lock()
	if c, ok := g.calls[key]; ok && !c.abandoned {
		c.waiters++
		g.coalesced.Inc()
		g.mu.Unlock()
		body, shared, err = g.wait(ctx, c, true)
		// A joined call that died of the *leader's* budget (its context
		// expired or was cancelled) says nothing about this caller,
		// whose own context is still live — e.g. a request joining at
		// t=29.9s of the leader's 30s timeout. Retry as a starter
		// instead of propagating someone else's deadline.
		if err != nil && ctx.Err() == nil &&
			(errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)) {
			return g.Do(ctx, key, fn)
		}
		return body, shared, err
	}
	// No live call (none, or only an abandoned one still winding
	// down): start fresh. Inherit request values but not cancellation —
	// the call may outlive this request if other waiters join.
	callCtx, cancel := context.WithCancel(context.WithoutCancel(ctx))
	c := &flightCall{cancel: cancel, done: make(chan struct{}), waiters: 1}
	g.calls[key] = c
	g.mu.Unlock()
	go func() {
		body, err := fn(callCtx)
		g.mu.Lock()
		c.body, c.err = body, err
		// A replaced abandoned call must not delete its successor.
		if g.calls[key] == c {
			delete(g.calls, key)
		}
		g.mu.Unlock()
		close(c.done)
		cancel()
	}()
	return g.wait(ctx, c, false)
}

func (g *flightGroup) wait(ctx context.Context, c *flightCall, shared bool) ([]byte, bool, error) {
	select {
	case <-c.done:
		return c.body, shared, c.err
	case <-ctx.Done():
		g.mu.Lock()
		c.waiters--
		abandon := c.waiters == 0
		if abandon {
			c.abandoned = true
		}
		g.mu.Unlock()
		if abandon {
			c.cancel()
		}
		return nil, shared, context.Cause(ctx)
	}
}
