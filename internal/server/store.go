package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"

	cleansel "github.com/factcheck/cleansel"
	"github.com/factcheck/cleansel/internal/server/wire"
)

// errDatasetTooLarge rejects uploads that could never be retained
// under the store's byte budget; callers map it to 413.
var errDatasetTooLarge = errors.New("dataset exceeds the store's byte budget")

// storedDataset is one uploaded dataset: the compiled database plus the
// metadata the API reports back. Bytes is the approximate in-memory
// size, taken from the canonical JSON encoding of the upload — the
// same measure the store's byte budget uses.
type storedDataset struct {
	ID      string
	Name    string
	DB      *cleansel.DB
	Objects int
	Bytes   int64
}

// datasetStore holds uploaded datasets keyed by content-addressed IDs,
// evicting least-recently-used entries beyond its entry or byte
// capacity. Content addressing makes uploads idempotent — re-uploading
// the same objects returns the same ID — and keeps result-cache keys
// valid across evict/re-upload cycles.
type datasetStore struct {
	cache *lru[*storedDataset]
}

func newDatasetStore(maxEntries int, maxBytes int64) *datasetStore {
	return &datasetStore{cache: newLRU[*storedDataset](maxEntries, maxBytes)}
}

// datasetID derives the content-addressed ID of an object list and the
// canonical encoding's size. The canonical form is encoding/json's
// deterministic marshaling (struct fields in declaration order, map
// keys sorted). The full 32-byte digest is kept: IDs double as
// result-cache key material, so they must not be forgeable by birthday
// collisions on a truncated hash.
func datasetID(objects []wire.Object) (string, int64, error) {
	canonical, err := json.Marshal(objects)
	if err != nil {
		return "", 0, fmt.Errorf("canonicalizing dataset: %w", err)
	}
	sum := sha256.Sum256(canonical)
	return "ds_" + hex.EncodeToString(sum[:]), int64(len(canonical)), nil
}

// Add compiles and stores a dataset, returning its content-addressed
// record. Re-uploading identical objects is a no-op returning the same
// ID. A dataset too large to ever fit the byte budget is rejected with
// errDatasetTooLarge: answering success for an ID that was silently
// dropped would turn every follow-up select into a 404.
func (s *datasetStore) Add(ds wire.Dataset) (*storedDataset, error) {
	id, size, err := datasetID(ds.Objects)
	if err != nil {
		return nil, err
	}
	if max := s.cache.maxBytes; max > 0 && size > max {
		return nil, fmt.Errorf("%w (%d > %d bytes)", errDatasetTooLarge, size, max)
	}
	if got, ok := s.cache.Get(id); ok {
		if ds.Name == "" || got.Name == ds.Name {
			return got, nil
		}
		// Same content under a new label: honour the latest name (the
		// compiled database is shared; only the metadata changes).
		rec := &storedDataset{ID: id, Name: ds.Name, DB: got.DB, Objects: got.Objects, Bytes: got.Bytes}
		s.cache.Put(id, rec, rec.Bytes)
		return rec, nil
	}
	db, err := wire.BuildDB(ds.Objects)
	if err != nil {
		return nil, err
	}
	rec := &storedDataset{ID: id, Name: ds.Name, DB: db, Objects: db.N(), Bytes: size}
	s.cache.Put(id, rec, size)
	return rec, nil
}

// Get returns a stored dataset by ID.
func (s *datasetStore) Get(id string) (*storedDataset, bool) {
	return s.cache.Get(id)
}

// Len returns the number of stored datasets.
func (s *datasetStore) Len() int { return s.cache.Len() }

// Bytes returns the approximate total size of the stored datasets.
func (s *datasetStore) Bytes() int64 { return s.cache.Bytes() }
