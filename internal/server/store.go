package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	cleansel "github.com/factcheck/cleansel"
	"github.com/factcheck/cleansel/internal/server/wire"
)

// storedDataset is one uploaded dataset: the compiled database plus the
// metadata the API reports back.
type storedDataset struct {
	ID      string
	Name    string
	DB      *cleansel.DB
	Objects int
}

// datasetStore holds uploaded datasets keyed by content-addressed IDs,
// evicting least-recently-used entries beyond its capacity. Content
// addressing makes uploads idempotent — re-uploading the same objects
// returns the same ID — and keeps result-cache keys valid across
// evict/re-upload cycles.
type datasetStore struct {
	cache *lru[*storedDataset]
}

func newDatasetStore(max int) *datasetStore {
	return &datasetStore{cache: newLRU[*storedDataset](max)}
}

// datasetID derives the content-addressed ID of an object list. The
// canonical form is encoding/json's deterministic marshaling (struct
// fields in declaration order, map keys sorted). The full 32-byte
// digest is kept: IDs double as result-cache key material, so they
// must not be forgeable by birthday collisions on a truncated hash.
func datasetID(objects []wire.Object) (string, error) {
	canonical, err := json.Marshal(objects)
	if err != nil {
		return "", fmt.Errorf("canonicalizing dataset: %w", err)
	}
	sum := sha256.Sum256(canonical)
	return "ds_" + hex.EncodeToString(sum[:]), nil
}

// Add compiles and stores a dataset, returning its content-addressed
// record. Re-uploading identical objects is a no-op returning the same
// ID.
func (s *datasetStore) Add(ds wire.Dataset) (*storedDataset, error) {
	id, err := datasetID(ds.Objects)
	if err != nil {
		return nil, err
	}
	if got, ok := s.cache.Get(id); ok {
		if ds.Name == "" || got.Name == ds.Name {
			return got, nil
		}
		// Same content under a new label: honour the latest name (the
		// compiled database is shared; only the metadata changes).
		rec := &storedDataset{ID: id, Name: ds.Name, DB: got.DB, Objects: got.Objects}
		s.cache.Put(id, rec)
		return rec, nil
	}
	db, err := wire.BuildDB(ds.Objects)
	if err != nil {
		return nil, err
	}
	rec := &storedDataset{ID: id, Name: ds.Name, DB: db, Objects: db.N()}
	s.cache.Put(id, rec)
	return rec, nil
}

// Get returns a stored dataset by ID.
func (s *datasetStore) Get(id string) (*storedDataset, bool) {
	return s.cache.Get(id)
}

// Len returns the number of stored datasets.
func (s *datasetStore) Len() int { return s.cache.Len() }
