package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"

	cleansel "github.com/factcheck/cleansel"
	"github.com/factcheck/cleansel/internal/obs"
	"github.com/factcheck/cleansel/internal/server/persist"
	"github.com/factcheck/cleansel/internal/server/wire"
)

// errDatasetTooLarge rejects uploads that could never be retained
// under the store's byte budget; callers map it to 413.
var errDatasetTooLarge = errors.New("dataset exceeds the store's byte budget")

// errPersist marks a failure to durably store an acknowledged upload;
// callers map it to 500 (the daemon promised durability and could not
// deliver, which is a server-side fault, not a client one).
var errPersist = errors.New("persisting dataset")

// storedDataset is one uploaded dataset: the compiled database plus the
// metadata the API reports back. Bytes is the approximate in-memory
// size, taken from the canonical JSON encoding of the upload — the
// same measure the store's byte budget uses.
type storedDataset struct {
	ID      string
	Name    string
	DB      *cleansel.DB
	Objects int
	Bytes   int64
}

// datasetStore holds uploaded datasets keyed by content-addressed IDs,
// evicting least-recently-used entries beyond its entry or byte
// capacity. Content addressing makes uploads idempotent — re-uploading
// the same objects returns the same ID — and keeps result-cache keys
// valid across evict/re-upload cycles.
//
// With a disk directory attached, the store is durable: every
// acknowledged upload is also an atomically written content-hash-named
// file, budgets are enforced against the on-disk index, and a Get that
// misses the in-memory cache lazily reloads — verifying the content
// hash — from disk. Without one (the default), behavior is exactly the
// historical in-memory semantics.
type datasetStore struct {
	cache *lru[*storedDataset]
	disk  *persist.DatasetDir // nil = in-memory only
	// reloads counts datasets recompiled from their disk file after an
	// in-memory eviction or restart — each is a full decode + engine
	// compile, so a climbing rate means the memory budget is too small
	// for the working set. Swapped for a metrics-registered counter by
	// the server.
	reloads *obs.Counter
}

func newDatasetStore(maxEntries int, maxBytes int64, disk *persist.DatasetDir) *datasetStore {
	return &datasetStore{
		cache:   newLRU[*storedDataset](maxEntries, maxBytes),
		disk:    disk,
		reloads: &obs.Counter{},
	}
}

// datasetID derives the content-addressed ID of an object list and the
// canonical encoding it hashes. The canonical form is encoding/json's
// deterministic marshaling (struct fields in declaration order, map
// keys sorted). The full 32-byte digest is kept: IDs double as
// result-cache key material, so they must not be forgeable by birthday
// collisions on a truncated hash.
func datasetID(objects []wire.Object) (string, []byte, error) {
	canonical, err := json.Marshal(objects)
	if err != nil {
		return "", nil, fmt.Errorf("canonicalizing dataset: %w", err)
	}
	sum := sha256.Sum256(canonical)
	return "ds_" + hex.EncodeToString(sum[:]), canonical, nil
}

// Add compiles and stores a dataset, returning its content-addressed
// record. Re-uploading identical objects is a no-op returning the same
// ID. A dataset too large to ever fit the byte budget is rejected with
// errDatasetTooLarge: answering success for an ID that was silently
// dropped would turn every follow-up select into a 404. In durable
// mode the upload is acknowledged only after the dataset file is
// atomically on disk.
func (s *datasetStore) Add(ds wire.Dataset) (*storedDataset, error) {
	id, canonical, err := datasetID(ds.Objects)
	if err != nil {
		return nil, err
	}
	size := int64(len(canonical))
	if max := s.cache.maxBytes; max > 0 && size > max {
		return nil, fmt.Errorf("%w (%d > %d bytes)", errDatasetTooLarge, size, max)
	}
	rec, ok := s.cache.Get(id)
	fresh := false
	switch {
	case ok && (ds.Name == "" || rec.Name == ds.Name):
		// Identical content and label: nothing to recompute.
	case ok:
		// Same content under a new label: honour the latest name (the
		// compiled database is shared; only the metadata changes).
		rec = &storedDataset{ID: id, Name: ds.Name, DB: rec.DB, Objects: rec.Objects, Bytes: rec.Bytes}
		fresh = true
	default:
		db, err := wire.BuildDB(ds.Objects)
		if err != nil {
			return nil, err
		}
		rec = &storedDataset{ID: id, Name: ds.Name, DB: db, Objects: db.N(), Bytes: size}
		fresh = true
	}
	if s.disk != nil {
		// Re-uploads rewrite the file too: that refreshes the label,
		// and restores the disk copy if the budget evicted it while the
		// compiled record was still cached in memory.
		if err := s.disk.Put(id, rec.Name, canonical); err != nil {
			if errors.Is(err, persist.ErrTooLarge) {
				// The file envelope pushed a boundary-sized upload past
				// the budget: the client's problem (413), not ours.
				return nil, fmt.Errorf("%w (%v)", errDatasetTooLarge, err)
			}
			return nil, fmt.Errorf("%w: %v", errPersist, err)
		}
	}
	// Publish in memory only after the durable write: a failed persist
	// must leave no acknowledged-looking record behind.
	if fresh {
		s.cache.Put(id, rec, rec.Bytes)
	}
	return rec, nil
}

// Get returns a stored dataset by ID, lazily reloading and recompiling
// it from disk in durable mode when the in-memory cache has evicted it
// (or after a restart).
func (s *datasetStore) Get(id string) (*storedDataset, bool) {
	if rec, ok := s.cache.Get(id); ok {
		if s.disk != nil {
			// Keep the durable copy as hot as the compiled one, or the
			// disk budget would evict the most-used dataset's file
			// while memory keeps absorbing its requests.
			s.disk.Touch(id)
		}
		return rec, true
	}
	if s.disk == nil {
		return nil, false
	}
	name, canonical, err := s.disk.Get(id)
	if err != nil {
		return nil, false
	}
	var objects []wire.Object
	if err := json.Unmarshal(canonical, &objects); err != nil {
		// Unreachable after the hash check unless the writer was buggy;
		// treat it like any other unusable file.
		s.disk.Quarantine(id, err)
		return nil, false
	}
	db, err := wire.BuildDB(objects)
	if err != nil {
		s.disk.Quarantine(id, err)
		return nil, false
	}
	rec := &storedDataset{ID: id, Name: name, DB: db, Objects: db.N(), Bytes: int64(len(canonical))}
	s.cache.Put(id, rec, rec.Bytes)
	s.reloads.Inc()
	return rec, true
}

// Len returns the number of stored datasets in memory.
func (s *datasetStore) Len() int { return s.cache.Len() }

// Bytes returns the approximate total size of the in-memory datasets.
func (s *datasetStore) Bytes() int64 { return s.cache.Bytes() }
