package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"

	"github.com/factcheck/cleansel/internal/obs"
	"github.com/factcheck/cleansel/internal/server/wire"
	"github.com/factcheck/cleansel/internal/session"
)

// The session endpoints serve the paper's adaptive loop as a stateful
// protocol: create an episode, follow its recommendation, clean the
// object out of band, report the revealed value, repeat until the
// session is countered or exhausted. Unlike select/rank/assess these
// are inherently stateful — every /clean changes the episode — so they
// bypass the result cache and the coalescer entirely; they still ride
// the access-log middleware (request IDs, metrics, traces) and the
// compute pool for the create-time compile.

// buildSessionStepper compiles a create request into an episode
// stepper: resolve the database, compile the claim's bias function, and
// validate the episode parameters. It is also the restore path — the
// manager rebuilds snapshotted sessions through it — so it must stay a
// pure function of the request bytes and the dataset store.
func (s *Server) buildSessionStepper(req wire.SessionRequest) (*session.Stepper, error) {
	goal, err := session.ParseGoal(req.Goal)
	if err != nil {
		return nil, err
	}
	db, err := s.resolveDB(req.Problem)
	if err != nil {
		return nil, err
	}
	set, err := req.Problem.BuildSet(db)
	if err != nil {
		return nil, err
	}
	return session.NewStepper(db, set.Bias(), goal, req.Tau, req.Budget)
}

// rebuildSession is the manager's restore callback: spec holds the
// canonical create-request bytes.
func (s *Server) rebuildSession(spec []byte) (*session.Stepper, error) {
	req, err := wire.DecodeSession(bytes.NewReader(spec))
	if err != nil {
		return nil, err
	}
	return s.buildSessionStepper(req)
}

// sessionError maps the session layer's sentinels onto the protocol:
// 404 unknown, 409 conflicting (out-of-order/duplicate step, reveal
// inconsistent with state), 410 expired. Anything else is a bad
// request.
func sessionError(err error) error {
	switch {
	case errors.Is(err, session.ErrNotFound):
		return &apiError{Status: http.StatusNotFound, Code: "not_found", Message: err.Error()}
	case errors.Is(err, session.ErrExpired):
		return &apiError{Status: http.StatusGone, Code: "expired", Message: err.Error()}
	case errors.Is(err, session.ErrStep), errors.Is(err, session.ErrRevealConflict):
		return &apiError{Status: http.StatusConflict, Code: "conflict", Message: err.Error()}
	default:
		return err
	}
}

// writeSessionState answers with the episode state, honouring the
// ?trace=1 envelope (session responses are never cached, so the trace's
// cache field reports "none").
func (s *Server) writeSessionState(w http.ResponseWriter, r *http.Request, st session.State) {
	body, err := json.Marshal(wire.EncodeSessionState(st))
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeResult(w, r, append(body, '\n'), "none")
}

func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	s.limitBody(w, r)
	req, err := wire.DecodeSession(r.Body)
	if err != nil {
		s.writeError(w, err)
		return
	}
	// Canonical spec: the decoded request re-marshaled, so equal
	// requests persist equal bytes regardless of client formatting.
	spec, err := json.Marshal(req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	// The create-time compile (dataset build, claim compilation, first
	// recommendation) is the one potentially expensive session step;
	// run it under the compute pool and timeout like any other solve.
	v, err := s.compute(r.Context(), func(ctx context.Context) (any, error) {
		rec := obs.FromContext(ctx)
		endCompile := rec.Span("compile")
		st, err := s.buildSessionStepper(req)
		endCompile()
		if err != nil {
			return nil, err
		}
		endStep := rec.Span("step")
		state, err := s.sessions.Create(spec, st, rec)
		endStep()
		if err != nil {
			return nil, err
		}
		return state, nil
	})
	if err != nil {
		s.writeError(w, sessionError(err))
		return
	}
	s.writeSessionState(w, r, v.(session.State))
}

func (s *Server) handleSessionGet(w http.ResponseWriter, r *http.Request) {
	rec := obs.FromContext(r.Context())
	st, err := s.sessions.Get(r.PathValue("id"), rec)
	if err != nil {
		s.writeError(w, sessionError(err))
		return
	}
	s.writeSessionState(w, r, st)
}

func (s *Server) handleSessionClean(w http.ResponseWriter, r *http.Request) {
	s.limitBody(w, r)
	req, err := wire.DecodeClean(r.Body)
	if err != nil {
		s.writeError(w, err)
		return
	}
	rec := obs.FromContext(r.Context())
	endStep := rec.Span("step")
	st, err := s.sessions.Clean(r.PathValue("id"), req.Step, req.Object, req.Value, rec)
	endStep()
	if err != nil {
		s.writeError(w, sessionError(err))
		return
	}
	s.writeSessionState(w, r, st)
}

func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	if err := s.sessions.Delete(r.PathValue("id")); err != nil {
		s.writeError(w, sessionError(err))
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]string{"deleted": r.PathValue("id")})
}

// sessionStats is the /healthz sessions block, read from the same
// counters the /metrics registry serves.
func (s *Server) sessionStats() map[string]any {
	st := s.sessions.Stats()
	return map[string]any{
		"active":         st.Active,
		"created":        st.Created,
		"expired":        st.Expired,
		"evicted":        st.Evicted,
		"restored":       st.Restored,
		"load_errors":    st.LoadErrors,
		"persist_errors": st.PersistErrors,
	}
}
