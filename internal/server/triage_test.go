package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"github.com/factcheck/cleansel/internal/claims"
	"github.com/factcheck/cleansel/internal/datasets"
	"github.com/factcheck/cleansel/internal/dist"
	"github.com/factcheck/cleansel/internal/expt"
	"github.com/factcheck/cleansel/internal/model"
	"github.com/factcheck/cleansel/internal/server/wire"
)

// encodeWireObjects maps a model database onto the wire object format.
func encodeWireObjects(db *model.DB) []wire.Object {
	objs := make([]wire.Object, db.N())
	for i, o := range db.Objects {
		w := wire.Object{Name: o.Name, Current: o.Current, Cost: o.Cost}
		switch v := o.Value.(type) {
		case *dist.Discrete:
			w.Values = v.Values
			w.Probs = v.Probs
		case *dist.Normal:
			w.Normal = &wire.Normal{Mean: v.Mu, Sigma: v.Sigma}
		default:
			panic("unencodable value model")
		}
		objs[i] = w
	}
	return objs
}

// encodeWireClaim maps an internal claim onto the wire, optionally
// renamed (the arrival's "paraphrase" name).
func encodeWireClaim(c *claims.Claim, name string) wire.Claim {
	if name == "" {
		name = c.Name
	}
	coef := make(map[string]float64, len(c.Coef))
	for _, id := range c.Vars() {
		coef[strconv.Itoa(id)] = c.Coef[id]
	}
	return wire.Claim{Name: name, Const: c.Const, Coef: coef}
}

// encodeTriageClaim maps one stream arrival onto the wire.
func encodeTriageClaim(name string, s *claims.Set) wire.TriageClaim {
	dir := "higher"
	if s.Dir == claims.LowerIsStronger {
		dir = "lower"
	}
	ref := s.Ref
	tc := wire.TriageClaim{
		Claim:     encodeWireClaim(s.Original, name),
		Direction: dir,
		Reference: &ref,
	}
	for _, p := range s.Perturbs {
		tc.Perturbations = append(tc.Perturbations, wire.Perturbation{
			Claim:       encodeWireClaim(p.Claim, ""),
			Sensibility: p.Sensibility,
		})
	}
	return tc
}

// triageFixture returns wire objects and triage claims for a stream
// over one shared synthetic dataset.
func triageFixture(n, arrivals, families int) ([]wire.Object, []wire.TriageClaim) {
	db, stream := expt.ClaimStream(datasets.UR, n, 4, arrivals, families, 3)
	objs := encodeWireObjects(db)
	tcs := make([]wire.TriageClaim, len(stream))
	for i, sc := range stream {
		tcs[i] = encodeTriageClaim(sc.Name, sc.Set)
	}
	return objs, tcs
}

func marshalJSON(t testing.TB, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// assessBodyFor builds the /v1/assess request equivalent to one triage
// claim over the same inline objects.
func assessBodyFor(t testing.TB, objs []wire.Object, tc wire.TriageClaim) string {
	t.Helper()
	req := wire.AssessRequest{Problem: wire.Problem{
		Objects:       objs,
		Claim:         tc.Claim,
		Direction:     tc.Direction,
		Reference:     tc.Reference,
		Perturbations: tc.Perturbations,
	}}
	return marshalJSON(t, req)
}

// TestTriageEndpointMatchesAssess is the end-to-end amortization pin:
// every per-claim report served by POST /v1/triage is byte-identical
// (as JSON numbers) to what POST /v1/assess returns for that claim
// alone over the same inline dataset.
func TestTriageEndpointMatchesAssess(t *testing.T) {
	objs, tcs := triageFixture(16, 6, 3)
	h := newTestServer(Config{})

	want := make([]wire.Report, len(tcs))
	for i, tc := range tcs {
		rec := do(t, h, http.MethodPost, "/v1/assess", assessBodyFor(t, objs, tc))
		if rec.Code != http.StatusOK {
			t.Fatalf("assess %d: status %d: %s", i, rec.Code, rec.Body.String())
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &want[i]); err != nil {
			t.Fatal(err)
		}
	}

	body := marshalJSON(t, wire.TriageRequest{Objects: objs, Measure: "uniqueness", Claims: tcs})
	rec := do(t, h, http.MethodPost, "/v1/triage", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("triage: status %d: %s", rec.Code, rec.Body.String())
	}
	var resp wire.TriageResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Claims) != len(tcs) {
		t.Fatalf("triage returned %d entries for %d claims", len(resp.Claims), len(tcs))
	}
	if resp.Stats.Claims != len(tcs) || resp.Stats.Unique != 3 || resp.Stats.Errors != 0 {
		t.Fatalf("stats = %+v, want {Claims:%d Unique:3 Errors:0}", resp.Stats, len(tcs))
	}
	prevScore := 0.0
	for r, e := range resp.Claims {
		if e.Error != nil {
			t.Fatalf("entry %d errored: %+v", e.Index, e.Error)
		}
		if e.Rank != r+1 {
			t.Fatalf("entry %d has rank %d, want %d", r, e.Rank, r+1)
		}
		if r > 0 && e.Score > prevScore {
			t.Fatalf("ranking not descending at rank %d: %v after %v", e.Rank, e.Score, prevScore)
		}
		prevScore = e.Score
		if e.Report == nil || *e.Report != want[e.Index] {
			t.Fatalf("claim %d: triage report %+v != assess report %+v", e.Index, e.Report, want[e.Index])
		}
		if e.Score != want[e.Index].DupVariance {
			t.Fatalf("claim %d: uniqueness score %v != duplicity variance %v", e.Index, e.Score, want[e.Index].DupVariance)
		}
	}

	// A byte-identical repeat must come from the result cache.
	rec = do(t, h, http.MethodPost, "/v1/triage", body)
	if got := rec.Header().Get("X-Cache"); got != "hit" {
		t.Fatalf("repeat triage X-Cache = %q, want hit", got)
	}
}

// TestTriageEmptyClaims pins the empty-batch contract: 400 before any
// solve is attempted.
func TestTriageEmptyClaims(t *testing.T) {
	objs, _ := triageFixture(16, 1, 1)
	h := newTestServer(Config{})
	body := marshalJSON(t, wire.TriageRequest{Objects: objs})
	rec := do(t, h, http.MethodPost, "/v1/triage", body)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("empty claims: status %d, want 400: %s", rec.Code, rec.Body.String())
	}
	m := decodeBody(t, rec)
	env, _ := m["error"].(map[string]any)
	if env["code"] != "bad_request" {
		t.Fatalf("empty claims error envelope: %v", m)
	}
}

// TestTriageMalformedClaimIsolated pins per-claim failure isolation on
// the wire: a claim referencing an unknown object gets an error entry
// ranked last; its batchmates are scored normally.
func TestTriageMalformedClaimIsolated(t *testing.T) {
	objs, tcs := triageFixture(16, 3, 3)
	tcs[1].Claim.Coef = map[string]float64{"99": 1}
	h := newTestServer(Config{})
	body := marshalJSON(t, wire.TriageRequest{Objects: objs, Claims: tcs})
	rec := do(t, h, http.MethodPost, "/v1/triage", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var resp wire.TriageResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Stats.Errors != 1 || resp.Stats.Claims != 3 {
		t.Fatalf("stats = %+v, want 1 error of 3 claims", resp.Stats)
	}
	last := resp.Claims[len(resp.Claims)-1]
	if last.Index != 1 || last.Error == nil || last.Rank != 0 {
		t.Fatalf("malformed claim entry = %+v, want index 1, rank 0, error set", last)
	}
	if !strings.Contains(last.Error.Message, "bad object id") {
		t.Fatalf("error message %q does not name the bad object id", last.Error.Message)
	}
	for _, e := range resp.Claims[:len(resp.Claims)-1] {
		if e.Error != nil || e.Report == nil {
			t.Fatalf("healthy entry %+v poisoned by batchmate", e)
		}
	}
}

// TestTriageTraceEnvelope pins ?trace=1: the result is wrapped in the
// standard envelope and the trace records triage dedup activity.
func TestTriageTraceEnvelope(t *testing.T) {
	objs, tcs := triageFixture(16, 4, 2) // two renamed duplicates
	h := newTestServer(Config{})
	body := marshalJSON(t, wire.TriageRequest{Objects: objs, Claims: tcs})
	rec := do(t, h, http.MethodPost, "/v1/triage?trace=1", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	m := decodeBody(t, rec)
	if m["result"] == nil || m["request_id"] == "" || m["trace"] == nil {
		t.Fatalf("trace envelope missing fields: %v", m)
	}
	trace := marshalJSON(t, m["trace"])
	if !strings.Contains(trace, "triage_dedup_hits") {
		t.Fatalf("trace has no triage_dedup_hits counter: %s", trace)
	}
}

// TestTriageMetrics pins cleanseld_triage_claims_total: processed
// claims counted by outcome, cache-served repeats not re-counted.
func TestTriageMetrics(t *testing.T) {
	objs, tcs := triageFixture(16, 3, 3)
	tcs[2].Claim.Coef = map[string]float64{"99": 1}
	h := newTestServer(Config{})
	body := marshalJSON(t, wire.TriageRequest{Objects: objs, Claims: tcs})
	for i := 0; i < 2; i++ { // second round is a cache hit
		if rec := do(t, h, http.MethodPost, "/v1/triage", body); rec.Code != http.StatusOK {
			t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
	}
	rec := do(t, h, http.MethodGet, "/metrics", "")
	metrics := rec.Body.String()
	for _, line := range []string{
		`cleanseld_triage_claims_total{outcome="ok"} 2`,
		`cleanseld_triage_claims_total{outcome="error"} 1`,
	} {
		if !strings.Contains(metrics, line) {
			t.Fatalf("metrics missing %q:\n%s", line, metrics)
		}
	}
}

// BenchmarkTriageThroughput compares the amortized bulk path against
// the naive loop a client would otherwise run: N sequential /v1/assess
// calls, each arrival under a fresh paraphrase name (so the result
// cache cannot collapse them — the honest model of a viral claim
// reworded at every repost). Parsed by scripts/bench.sh into
// BENCH_triage.json.
func BenchmarkTriageThroughput(b *testing.B) {
	const n, families, benchW = 40, 5, 6
	for _, batch := range []int{1, 10, 100} {
		db, stream := expt.ClaimStream(datasets.UR, n, benchW, batch, families, 3)
		objs := encodeWireObjects(db)
		h := newTestServer(Config{})

		// Request bodies are built before the timer starts on both paths
		// (renamed per iteration so the result cache never shortcuts a
		// repeat): the measurement is server throughput, not client
		// encoding.
		b.Run(fmt.Sprintf("naive/batch=%d", batch), func(b *testing.B) {
			bodies := make([][]string, 0, b.N)
			for i := 0; i < b.N; i++ {
				iter := make([]string, len(stream))
				for j, sc := range stream {
					tc := encodeTriageClaim(fmt.Sprintf("iter%d-%s", i, sc.Name), sc.Set)
					iter[j] = assessBodyFor(b, objs, tc)
				}
				bodies = append(bodies, iter)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j, body := range bodies[i] {
					rec := do(b, h, http.MethodPost, "/v1/assess", body)
					if rec.Code != http.StatusOK {
						b.Fatalf("assess %d: status %d: %s", j, rec.Code, rec.Body.String())
					}
				}
			}
			b.ReportMetric(float64(batch)*float64(b.N)/b.Elapsed().Seconds(), "claims/s")
		})
		b.Run(fmt.Sprintf("amortized/batch=%d", batch), func(b *testing.B) {
			bodies := make([]string, 0, b.N)
			for i := 0; i < b.N; i++ {
				tcs := make([]wire.TriageClaim, len(stream))
				for j, sc := range stream {
					tcs[j] = encodeTriageClaim(fmt.Sprintf("iter%d-%s", i, sc.Name), sc.Set)
				}
				bodies = append(bodies, marshalJSON(b, wire.TriageRequest{Objects: objs, Claims: tcs}))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rec := do(b, h, http.MethodPost, "/v1/triage", bodies[i])
				if rec.Code != http.StatusOK {
					b.Fatalf("triage: status %d: %s", rec.Code, rec.Body.String())
				}
			}
			b.ReportMetric(float64(batch)*float64(b.N)/b.Elapsed().Seconds(), "claims/s")
		})
	}
}
