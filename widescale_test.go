package cleansel_test

import (
	"math/big"
	"testing"

	cleansel "github.com/factcheck/cleansel"
	"github.com/factcheck/cleansel/internal/dist/oracle"
)

// wideDB is a CDC-style integer-count workload whose reachable drop
// magnitude (~3e12) is far beyond the old ±1e8 quantization ceiling:
// three yearly totals around 1e12, each possibly overstated by 2e9.
func wideDB(t *testing.T) (*cleansel.DB, []float64) {
	t.Helper()
	currents := []float64{1e12, 1e12 + 3e9, 1e12 - 7e9}
	objs := make([]cleansel.Object, len(currents))
	for i, c := range currents {
		objs[i] = cleansel.Object{
			Name:    "totals/" + string(rune('a'+i)),
			Current: c,
			Cost:    1,
			Value:   cleansel.UniformOver([]float64{c, c - 2e9}),
		}
	}
	return cleansel.NewDB(objs), currents
}

// TestSelectWideIntegerMagnitude is the acceptance workload of the
// scale-aware grid: integer supports with reachable magnitude ≥ 1e12
// solve through Select on the exact convolution path (the fixed grid
// used to bounce these to Monte Carlo), and the resulting surprise
// probability matches the big.Rat oracle exactly.
func TestSelectWideIntegerMagnitude(t *testing.T) {
	db, currents := wideDB(t)
	claim := cleansel.NewClaim("grand-total", 0, map[int]float64{0: 1, 1: 1, 2: 1})
	set, err := cleansel.NewPerturbationSet(claim, cleansel.HigherIsStronger, 3e12,
		[]cleansel.Perturbed{{Claim: claim, Sensibility: 1}})
	if err != nil {
		t.Fatal(err)
	}
	const tau = 1e9
	res, err := cleansel.Select(cleansel.Task{
		DB: db, Claims: set,
		Measure: cleansel.Fairness,
		Goal:    cleansel.MaximizeSurprise,
		Budget:  3,
		Tau:     tau,
		Seed:    1,
	})
	if err != nil {
		t.Fatalf("wide integer workload rejected: %v", err)
	}
	if len(res.Set) != 3 {
		t.Fatalf("chose %v, want all three objects", res.Set)
	}
	if res.Before != 0 {
		t.Fatalf("P(∅) = %v, want 0", res.Before)
	}

	// Reference drop law, exactly: D = Σ (X_i − u_i) with dyadic masses.
	values := make([][]float64, len(currents))
	probs := make([][]float64, len(currents))
	weights := make([]float64, len(currents))
	offset := 0.0
	for i, c := range currents {
		values[i] = []float64{c, c - 2e9}
		probs[i] = []float64{0.5, 0.5}
		weights[i] = 1
		offset -= c
	}
	atoms := oracle.WeightedSum(offset, weights, values, probs)
	want, exactFloat := oracle.PrBelow(atoms, big.NewRat(-tau, 1)).Float64()
	if !exactFloat {
		t.Fatal("oracle probability is not exactly representable; pick dyadic masses")
	}
	if want != 0.875 { // sanity: surprise unless all three reveal no drop
		t.Fatalf("oracle P = %v, want 7/8", want)
	}
	if res.After != want {
		t.Fatalf("After = %v, oracle says exactly %v", res.After, want)
	}
}

// TestAssessClaimWideIntegerMagnitude pins the sibling engines at the
// same scale: the quality report solves and the bias variance is the
// exact modular value Σ a_i²·Var[X_i] = 3·(1e9)².
func TestAssessClaimWideIntegerMagnitude(t *testing.T) {
	db, _ := wideDB(t)
	claim := cleansel.NewClaim("grand-total", 0, map[int]float64{0: 1, 1: 1, 2: 1})
	set, err := cleansel.NewPerturbationSet(claim, cleansel.HigherIsStronger, 3e12,
		[]cleansel.Perturbed{{Claim: claim, Sensibility: 1}})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := cleansel.AssessClaim(db, set)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BiasVariance != 3e18 {
		t.Fatalf("bias variance %v, want 3e18", rep.BiasVariance)
	}
}
