package cleansel_test

import (
	"context"
	"reflect"
	"testing"

	cleansel "github.com/factcheck/cleansel"
	"github.com/factcheck/cleansel/internal/obs"
)

// TestRecorderIsOffPath pins the observability contract: a Select run
// with a trace recorder attached must return a bit-identical Result to
// the same run without one — recording is strictly write-only. The
// test also asserts the recorder saw real engine activity, so the
// guarantee is not satisfied vacuously by a recorder nothing ticks.
func TestRecorderIsOffPath(t *testing.T) {
	db := crimeDB(t)
	set := crimeSet(t, db)
	tasks := map[string]cleansel.Task{
		"minvar-uniqueness": {
			DB: db, Claims: set,
			Measure: cleansel.Uniqueness, Goal: cleansel.MinimizeUncertainty,
			Algorithm: cleansel.AlgoGreedy, Budget: 2,
		},
		"minvar-robustness": {
			DB: db, Claims: set,
			Measure: cleansel.Robustness, Goal: cleansel.MinimizeUncertainty,
			Algorithm: cleansel.AlgoGreedy, Budget: 2,
		},
		"maxpr-hybrid": {
			DB: db, Claims: set,
			Measure: cleansel.Fairness, Goal: cleansel.MaximizeSurprise,
			Budget: 2, Tau: 10, Seed: 3,
		},
	}
	for name, task := range tasks {
		t.Run(name, func(t *testing.T) {
			plain, err := cleansel.SelectContext(context.Background(), task)
			if err != nil {
				t.Fatal(err)
			}
			rec := obs.NewRecorder(nil)
			traced, err := cleansel.SelectContext(obs.WithRecorder(context.Background(), rec), task)
			if err != nil {
				t.Fatal(err)
			}
			// Bit-identical, not approximately equal: Before/After are
			// float64s compared with ==, the set and names exactly.
			if !reflect.DeepEqual(plain, traced) {
				t.Fatalf("recorder changed the result:\nwithout: %+v\nwith:    %+v", plain, traced)
			}
			tr := rec.Snapshot()
			if len(tr.Counters) == 0 && len(tr.Stages) == 0 {
				t.Fatal("recorder saw no activity; the off-path guarantee was tested vacuously")
			}
		})
	}
}

// TestRecorderCountersNameTheEngines asserts the solve ticks land under
// the documented counter names, per goal.
func TestRecorderCountersNameTheEngines(t *testing.T) {
	db := crimeDB(t)
	set := crimeSet(t, db)

	rec := obs.NewRecorder(nil)
	ctx := obs.WithRecorder(context.Background(), rec)
	if _, err := cleansel.SelectContext(ctx, cleansel.Task{
		DB: db, Claims: set,
		Measure: cleansel.Uniqueness, Goal: cleansel.MinimizeUncertainty,
		Algorithm: cleansel.AlgoGreedy, Budget: 2,
	}); err != nil {
		t.Fatal(err)
	}
	got := map[string]int64{}
	for _, c := range rec.Snapshot().Counters {
		got[c.Name] = c.Value
	}
	for _, want := range []string{"ev_cache_hits", "ev_cache_misses", "parallel_items"} {
		if _, ok := got[want]; !ok {
			t.Errorf("minvar solve did not tick %q (got %v)", want, got)
		}
	}

	rec = obs.NewRecorder(nil)
	ctx = obs.WithRecorder(context.Background(), rec)
	if _, err := cleansel.SelectContext(ctx, cleansel.Task{
		DB: db, Claims: set,
		Measure: cleansel.Fairness, Goal: cleansel.MaximizeSurprise,
		Budget: 2, Tau: 10, Seed: 3,
	}); err != nil {
		t.Fatal(err)
	}
	got = map[string]int64{}
	for _, c := range rec.Snapshot().Counters {
		got[c.Name] = c.Value
	}
	if got["maxpr_exact"] == 0 {
		t.Errorf("maxpr solve did not count exact evaluations (got %v)", got)
	}
	if got["conv_ops"] == 0 {
		t.Errorf("maxpr solve did not count convolution work (got %v)", got)
	}
}
