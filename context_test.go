package cleansel_test

import (
	"context"
	"errors"
	"testing"
	"time"

	cleansel "github.com/factcheck/cleansel"
	"github.com/factcheck/cleansel/internal/parallel"
)

// slowUniquenessTask builds a deliberately expensive Uniqueness solve:
// 6-point supports under width-8 claim windows cost 6^8 ≈ 1.7M
// enumerations per term, and 50 terms keep a sequential solve busy for
// many seconds — while any single term (the cancellation granularity)
// stays well under a second.
func slowUniquenessTask(t *testing.T) cleansel.Task {
	t.Helper()
	const n, w = 400, 8
	objs := make([]cleansel.Object, n)
	for i := range objs {
		vals := make([]float64, 6)
		for j := range vals {
			vals[j] = float64(10*i + j)
		}
		objs[i] = cleansel.Object{
			Name:    "o",
			Current: vals[3],
			Cost:    1,
			Value:   cleansel.UniformOver(vals),
		}
	}
	db := cleansel.NewDB(objs)
	orig := cleansel.WindowSum("orig", n-w, w)
	perturbs := cleansel.NonOverlappingWindows("w", n, w, n-w, 0.5)
	set, err := cleansel.NewPerturbationSet(orig, cleansel.LowerIsStronger, 100, perturbs)
	if err != nil {
		t.Fatal(err)
	}
	return cleansel.Task{
		DB:      db,
		Claims:  set,
		Measure: cleansel.Uniqueness,
		Goal:    cleansel.MinimizeUncertainty,
		Budget:  float64(n) / 4,
	}
}

// TestSelectContextCancelsPromptly is the acceptance test for
// end-to-end cancellation: a cancelled context must surface out of a
// multi-second solve within the per-work-item granularity.
func TestSelectContextCancelsPromptly(t *testing.T) {
	task := slowUniquenessTask(t)
	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(50*time.Millisecond, cancel)
	start := time.Now()
	_, err := cleansel.SelectContext(ctx, task)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("SelectContext returned %v, want context.Canceled", err)
	}
	if elapsed > 3*time.Second {
		t.Fatalf("SelectContext took %v to notice cancellation", elapsed)
	}
}

func TestSelectContextPreCancelled(t *testing.T) {
	task := slowUniquenessTask(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, algo := range []cleansel.Algorithm{cleansel.AlgoGreedy, cleansel.AlgoBest} {
		task.Algorithm = algo
		start := time.Now()
		if _, err := cleansel.SelectContext(ctx, task); !errors.Is(err, context.Canceled) {
			t.Fatalf("%v: err = %v, want context.Canceled", algo, err)
		}
		if elapsed := time.Since(start); elapsed > time.Second {
			t.Fatalf("%v: pre-cancelled SelectContext still ran for %v", algo, elapsed)
		}
	}
}

// TestRankAndAssessContextCancelled covers the other two context APIs.
func TestRankAndAssessContextCancelled(t *testing.T) {
	task := slowUniquenessTask(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := cleansel.RankObjectsContext(ctx, task.DB, task.Claims, cleansel.Uniqueness); !errors.Is(err, context.Canceled) {
		t.Fatalf("RankObjectsContext: err = %v, want context.Canceled", err)
	}
	if _, err := cleansel.AssessClaimContext(ctx, task.DB, task.Claims); !errors.Is(err, context.Canceled) {
		t.Fatalf("AssessClaimContext: err = %v, want context.Canceled", err)
	}
}

// TestSelectBitIdenticalAcrossWorkerCounts pins the public-API
// determinism contract: CLEANSEL_WORKERS=1 and many-worker runs agree
// bit for bit on the full Result.
func TestSelectBitIdenticalAcrossWorkerCounts(t *testing.T) {
	db := cleansel.URx(48, 7)
	orig := cleansel.WindowSum("orig", 44, 4)
	set, err := cleansel.NewPerturbationSet(
		orig, cleansel.LowerIsStronger, 100,
		cleansel.NonOverlappingWindows("w", 48, 4, 44, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	for _, measure := range []cleansel.Measure{cleansel.Uniqueness, cleansel.Robustness, cleansel.Fairness} {
		task := cleansel.Task{
			DB: db, Claims: set,
			Measure: measure,
			Goal:    cleansel.MinimizeUncertainty,
			Budget:  db.Budget(0.3),
		}
		t.Setenv(parallel.EnvWorkers, "1")
		want, err := cleansel.Select(task)
		if err != nil {
			t.Fatalf("%v workers=1: %v", measure, err)
		}
		t.Setenv(parallel.EnvWorkers, "8")
		got, err := cleansel.Select(task)
		if err != nil {
			t.Fatalf("%v workers=8: %v", measure, err)
		}
		if got.Before != want.Before || got.After != want.After || got.CostSpent != want.CostSpent {
			t.Fatalf("%v: workers=8 result %+v != workers=1 result %+v", measure, got, want)
		}
		if len(got.Set) != len(want.Set) {
			t.Fatalf("%v: chosen sets differ: %v vs %v", measure, got.Set, want.Set)
		}
		for i := range got.Set {
			if got.Set[i] != want.Set[i] {
				t.Fatalf("%v: chosen sets differ: %v vs %v", measure, got.Set, want.Set)
			}
		}
		// The ranking path must agree too.
		t.Setenv(parallel.EnvWorkers, "1")
		wantRank, err := cleansel.RankObjects(db, set, measure)
		if err != nil {
			t.Fatal(err)
		}
		t.Setenv(parallel.EnvWorkers, "8")
		gotRank, err := cleansel.RankObjects(db, set, measure)
		if err != nil {
			t.Fatal(err)
		}
		for i := range wantRank {
			if gotRank[i] != wantRank[i] {
				t.Fatalf("%v: rank[%d] %+v != %+v", measure, i, gotRank[i], wantRank[i])
			}
		}
	}
}
